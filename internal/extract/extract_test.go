package extract

import (
	"math"
	"testing"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// unitCost charges 1 per node, ignoring structure.
type unitCost struct{}

func (unitCost) NodeCost(egraph.ENode, []cost.ChildInfo) float64 { return 1 }

func TestExtractPicksSmallerEquivalent(t *testing.T) {
	g := egraph.New()
	big := g.AddExpr(expr.MustParse("(+ (+ x 0) 0)"))
	small := g.AddExpr(expr.Sym("x"))
	g.Union(big, small)
	g.Rebuild()
	ex := New(g, unitCost{})
	out, err := ex.Expr(big)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "x" {
		t.Fatalf("extracted %s, want x", out)
	}
	if c := ex.Cost(big); c != 1 {
		t.Fatalf("cost = %g, want 1", c)
	}
}

func TestExtractHandlesCyclicClasses(t *testing.T) {
	// Union x with (+ x 0): the class is cyclic but extraction must
	// terminate and pick the leaf.
	g := egraph.New()
	x := g.AddExpr(expr.Sym("x"))
	plus := g.AddExpr(expr.MustParse("(+ x 0)"))
	g.Union(x, plus)
	g.Rebuild()
	ex := New(g, unitCost{})
	out, err := ex.Expr(plus)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "x" {
		t.Fatalf("extracted %s, want x", out)
	}
}

func TestExtractSharedSubterms(t *testing.T) {
	// (+ (* a b) (* a b)): both children must extract to the same pointer.
	g := egraph.New()
	root := g.AddExpr(expr.MustParse("(+ (* a b) (* a b))"))
	ex := New(g, unitCost{})
	out, err := ex.Expr(root)
	if err != nil {
		t.Fatal(err)
	}
	if out.Args[0] != out.Args[1] {
		t.Fatal("shared subterm not shared in extracted DAG")
	}
}

func TestExtractRespectsForbidden(t *testing.T) {
	// ScalarOnly makes vector nodes effectively unusable; when a scalar
	// alternative exists in the class it must win.
	g := egraph.New()
	vecForm := g.AddExpr(expr.MustParse("(VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)))"))
	scalarForm := g.AddExpr(expr.MustParse("(Vec (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)))"))
	g.Union(vecForm, scalarForm)
	g.Rebuild()
	ex := New(g, cost.ScalarOnly{})
	out, err := ex.Expr(vecForm)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != expr.OpVec {
		t.Fatalf("got %s, want the Vec-of-scalars form", out)
	}
	found := false
	out.Walk(func(n *expr.Expr) bool {
		if n.Op == expr.OpVecAdd {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("forbidden VecAdd extracted")
	}
}

func TestCostOfMissingClass(t *testing.T) {
	g := egraph.New()
	id := g.AddExpr(expr.Sym("x"))
	ex := New(g, unitCost{})
	if c := ex.Cost(id); c != 1 {
		t.Fatalf("cost = %g", c)
	}
	if !math.IsInf(ex.Cost(egraph.ClassID(999)), 1) {
		t.Fatal("missing class should cost +Inf")
	}
}

func TestClassifyVec(t *testing.T) {
	syms := map[string]egraph.SymID{}
	get := func(arr string, i int) cost.ChildInfo {
		id, ok := syms[arr]
		if !ok {
			id = egraph.SymID(len(syms) + 1)
			syms[arr] = id
		}
		return cost.ChildInfo{Node: egraph.ENode{Op: expr.OpGet, Sym: id, Idx: i}}
	}
	lit := func(v float64) cost.ChildInfo {
		return cost.ChildInfo{Node: egraph.ENode{Op: expr.OpLit, Lit: v}}
	}
	op := func() cost.ChildInfo {
		return cost.ChildInfo{Node: egraph.ENode{Op: expr.OpAdd}}
	}
	cases := []struct {
		children []cost.ChildInfo
		want     cost.MovementClass
	}{
		{[]cost.ChildInfo{lit(0), lit(1), lit(2), lit(3)}, cost.MoveLiteral},
		{[]cost.ChildInfo{get("a", 0), get("a", 1), get("a", 2), get("a", 3)}, cost.MoveContiguous},
		{[]cost.ChildInfo{get("a", 4), get("a", 5), get("a", 6), get("a", 7)}, cost.MoveContiguous},
		// Unaligned run is not a plain vector load.
		{[]cost.ChildInfo{get("a", 1), get("a", 2), get("a", 3), get("a", 4)}, cost.MoveSingleArray},
		{[]cost.ChildInfo{get("a", 3), get("a", 0), get("a", 5), get("a", 1)}, cost.MoveSingleArray},
		{[]cost.ChildInfo{get("a", 0), lit(0), get("a", 5), lit(0)}, cost.MoveSingleArray},
		{[]cost.ChildInfo{get("a", 0), get("b", 0), get("a", 1), get("b", 1)}, cost.MoveTwoArrays},
		{[]cost.ChildInfo{get("a", 0), get("b", 0), get("c", 0), get("a", 1)}, cost.MoveManyArrays},
		{[]cost.ChildInfo{get("a", 0), op(), get("a", 2), get("a", 3)}, cost.MoveScalarLanes},
	}
	for i, c := range cases {
		got, _ := cost.ClassifyVec(c.children)
		if got != c.want {
			t.Errorf("case %d: ClassifyVec = %v, want %v", i, got, c.want)
		}
	}
}

func TestMovementCostOrdering(t *testing.T) {
	// The §3.4 ordering: literal < contiguous < single-array shuffle <
	// two-array select < many-array < scalar lanes.
	mk := func(children []cost.ChildInfo) float64 {
		n := egraph.ENode{Op: expr.OpVec, Args: make([]egraph.ClassID, len(children))}
		return cost.Diospyros{Width: 4}.NodeCost(n, children)
	}
	syms := map[string]egraph.SymID{}
	get := func(arr string, i int) cost.ChildInfo {
		id, ok := syms[arr]
		if !ok {
			id = egraph.SymID(len(syms) + 1)
			syms[arr] = id
		}
		return cost.ChildInfo{Node: egraph.ENode{Op: expr.OpGet, Sym: id, Idx: i}}
	}
	lit := cost.ChildInfo{Node: egraph.ENode{Op: expr.OpLit}}
	opc := cost.ChildInfo{Node: egraph.ENode{Op: expr.OpMul}}
	seq := []float64{
		mk([]cost.ChildInfo{lit, lit, lit, lit}),
		mk([]cost.ChildInfo{get("a", 0), get("a", 1), get("a", 2), get("a", 3)}),
		mk([]cost.ChildInfo{get("a", 3), get("a", 1), get("a", 0), get("a", 2)}),
		mk([]cost.ChildInfo{get("a", 0), get("b", 1), get("a", 2), get("b", 3)}),
		mk([]cost.ChildInfo{get("a", 0), get("b", 1), get("c", 2), get("d", 3)}),
		mk([]cost.ChildInfo{get("a", 0), opc, get("a", 2), get("a", 3)}),
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatalf("cost ordering violated at %d: %v", i, seq)
		}
	}
}
