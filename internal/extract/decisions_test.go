package extract

import (
	"strings"
	"testing"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// TestDecisionsContestedClass saturates (+ a 0) with add-zero so the root
// class holds both the Add node and the bare symbol, then checks the
// decision trace names the winner (a), the runner-up (the Add), and a
// positive margin.
func TestDecisionsContestedClass(t *testing.T) {
	g := egraph.New()
	root := g.AddExpr(expr.MustParse("(+ a 0)"))
	rules := []egraph.Rewrite{egraph.MustRewrite("add-zero", "(+ ?a 0)", "?a")}
	egraph.Run(g, rules, egraph.Limits{})

	ex := New(g, cost.Diospyros{Width: 4})
	ds := ex.Decisions(root)
	if len(ds) == 0 {
		t.Fatal("no decisions recorded")
	}
	var rootD *Decision
	for i := range ds {
		if ds[i].Class == g.Find(root) {
			rootD = &ds[i]
		}
	}
	if rootD == nil {
		t.Fatal("no decision for the root class")
	}
	if rootD.Winner != "a" {
		t.Fatalf("winner = %q, want the bare symbol a", rootD.Winner)
	}
	if !rootD.Contested() || rootD.RunnerUp == "" {
		t.Fatalf("root class should be contested: %+v", rootD)
	}
	if !strings.Contains(rootD.RunnerUp, "+") {
		t.Fatalf("runner-up = %q, want the Add node", rootD.RunnerUp)
	}
	if rootD.Margin <= 0 {
		t.Fatalf("margin = %v, want > 0", rootD.Margin)
	}
	if rootD.RunnerUpCost != rootD.WinnerCost+rootD.Margin {
		t.Fatalf("cost breakdown inconsistent: %+v", rootD)
	}
	// Contested decisions sort before uncontested ones.
	seenUncontested := false
	for _, d := range ds {
		if !d.Contested() {
			seenUncontested = true
		} else if seenUncontested {
			t.Fatal("contested decision after an uncontested one")
		}
	}
}

// TestDecisionsWinnerOwnCost checks the own/subtree cost split: the chosen
// node's own cost plus its children's totals equals its total.
func TestDecisionsWinnerOwnCost(t *testing.T) {
	g := egraph.New()
	root := g.AddExpr(expr.MustParse("(* (+ a b) c)"))
	ex := New(g, cost.Diospyros{Width: 4})
	for _, d := range ex.Decisions(root) {
		if d.WinnerOwn <= 0 {
			t.Fatalf("class %d: own cost %v, want > 0 (strict monotonicity)", d.Class, d.WinnerOwn)
		}
		if d.WinnerOwn > d.WinnerCost {
			t.Fatalf("class %d: own cost %v exceeds total %v", d.Class, d.WinnerOwn, d.WinnerCost)
		}
	}
}

// TestMovementCensus builds Vec nodes of known movement classes directly
// and checks the census.
func TestMovementCensus(t *testing.T) {
	g := egraph.New()
	// One contiguous load: lanes a[0..3].
	contig := expr.MustParse("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))")
	// One single-array shuffle: lanes gather within a.
	shuffle := expr.MustParse("(Vec (Get a 3) (Get a 0) (Get a 2) (Get a 1))")
	// One two-array select.
	sel := expr.MustParse("(Vec (Get a 0) (Get b 0) (Get a 1) (Get b 1))")
	root := g.AddExpr(&expr.Expr{Op: expr.OpList, Args: []*expr.Expr{contig, shuffle, sel}})

	ex := New(g, cost.Diospyros{Width: 4})
	mc := ex.Movement(root)
	if mc.Contiguous != 1 || mc.Shuffles != 1 || mc.Selects != 1 {
		t.Fatalf("census = %+v, want contiguous 1, shuffles 1, selects 1", mc)
	}
	if mc.Gathers != 0 || mc.ScalarLanes != 0 {
		t.Fatalf("census = %+v, want no gathers or scalar lanes", mc)
	}
}
