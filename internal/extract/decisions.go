// Extraction decision traces (the flight recorder's extract layer): for
// every e-class reachable from the chosen program, which node won, what it
// cost, and how close the runner-up came — plus the data-movement census
// (shuffle vs. select vs. gather, the paper's §4 cost distinction) of the
// chosen Vec nodes. Computed on demand after the fixpoint, so extraction
// itself pays nothing.
package extract

import (
	"fmt"
	"sort"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// Decision explains extraction's choice for one e-class: the winning node,
// its cost split into own vs. subtree cost, and the cheapest alternative
// the class offered.
type Decision struct {
	// Class is the canonical e-class ID.
	Class egraph.ClassID `json:"class"`
	// Winner renders the chosen node (head symbol plus payload/arity).
	Winner string `json:"winner"`
	// WinnerCost is the winner's total (subtree) cost.
	WinnerCost float64 `json:"winner_cost"`
	// WinnerOwn is the winner's own cost, excluding children — the part the
	// cost model attributes to this node (movement class, op latency).
	WinnerOwn float64 `json:"winner_own"`
	// RunnerUp renders the second-cheapest node; empty when the class
	// offered no finite-cost alternative.
	RunnerUp string `json:"runner_up,omitempty"`
	// RunnerUpCost is the runner-up's total cost (0 when uncontested).
	RunnerUpCost float64 `json:"runner_up_cost,omitempty"`
	// Margin is RunnerUpCost - WinnerCost: how decisively the winner won.
	Margin float64 `json:"margin,omitempty"`
	// Candidates counts the class's finite-cost implementations.
	Candidates int `json:"candidates"`
}

// Contested reports whether the class offered a real alternative.
func (d Decision) Contested() bool { return d.Candidates > 1 }

// MovementCounts is the data-movement census of the chosen program's Vec
// nodes, by movement class (cost.ClassifyVec). Shuffles (one-register
// permutes) against Selects+Gathers (two or more source registers) is the
// §4 distinction that decides whether vectorization pays off.
type MovementCounts struct {
	Literal     int `json:"literal,omitempty"`      // constant vectors
	Contiguous  int `json:"contiguous,omitempty"`   // aligned loads
	Shuffles    int `json:"shuffles,omitempty"`     // one-array gathers (single-register shuffle)
	Selects     int `json:"selects,omitempty"`      // two-array gathers (two-register select)
	Gathers     int `json:"gathers,omitempty"`      // three-plus-array gathers (nested selects)
	ScalarLanes int `json:"scalar_lanes,omitempty"` // lanes needing scalar inserts
}

// Decisions explains extraction's choice for every class reachable from
// root through the chosen program. Contested classes come first, closest
// margin first (the decisions worth a human's attention), then uncontested
// classes by class ID.
func (ex *Extractor) Decisions(root egraph.ClassID) []Decision {
	var out []Decision
	for _, c := range ex.reachable(root) {
		cls := ex.g.Class(c)
		if cls == nil {
			continue
		}
		best := ex.best[c]
		if best == nil || !best.ok {
			continue
		}
		d := Decision{Class: c, Winner: ex.describeNode(best.Node), WinnerCost: best.Cost}
		if _, own, ok := ex.nodeCostParts(best.Node); ok {
			d.WinnerOwn = own
		}
		runnerCost, runnerNode, haveRunner := 0.0, egraph.ENode{}, false
		for _, n := range cls.Nodes {
			total, _, ok := ex.nodeCostParts(n)
			if !ok {
				continue
			}
			d.Candidates++
			if ex.sameNode(n, best.Node) {
				continue
			}
			if !haveRunner || total < runnerCost {
				runnerCost, runnerNode, haveRunner = total, n, true
			}
		}
		if haveRunner {
			d.RunnerUp = ex.describeNode(runnerNode)
			d.RunnerUpCost = runnerCost
			d.Margin = runnerCost - best.Cost
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := out[i].Contested(), out[j].Contested()
		if ci != cj {
			return ci
		}
		if ci && out[i].Margin != out[j].Margin {
			return out[i].Margin < out[j].Margin
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Movement runs the data-movement census over the chosen program.
func (ex *Extractor) Movement(root egraph.ClassID) MovementCounts {
	var mc MovementCounts
	for _, c := range ex.reachable(root) {
		b := ex.best[c]
		if b == nil || !b.ok || b.Node.Op != expr.OpVec {
			continue
		}
		children, ok := ex.childInfo(b.Node)
		if !ok {
			continue
		}
		class, scalarLanes := cost.ClassifyVec(children)
		switch class {
		case cost.MoveLiteral:
			mc.Literal++
		case cost.MoveContiguous:
			mc.Contiguous++
		case cost.MoveSingleArray:
			mc.Shuffles++
		case cost.MoveTwoArrays:
			mc.Selects++
		case cost.MoveManyArrays:
			mc.Gathers++
		case cost.MoveScalarLanes:
			mc.Gathers++
			mc.ScalarLanes += scalarLanes
		}
	}
	return mc
}

// reachable returns the canonical classes reachable from root through the
// chosen nodes, in deterministic (BFS) order.
func (ex *Extractor) reachable(root egraph.ClassID) []egraph.ClassID {
	root = ex.g.Find(root)
	seen := map[egraph.ClassID]bool{root: true}
	order := []egraph.ClassID{root}
	for i := 0; i < len(order); i++ {
		b := ex.best[order[i]]
		if b == nil || !b.ok {
			continue
		}
		for _, a := range b.Node.Args {
			a = ex.g.Find(a)
			if !seen[a] {
				seen[a] = true
				order = append(order, a)
			}
		}
	}
	return order
}

// childInfo assembles the cost.ChildInfo slice for a node from the final
// best choices (false when any child lacks an implementation).
func (ex *Extractor) childInfo(n egraph.ENode) ([]cost.ChildInfo, bool) {
	children := make([]cost.ChildInfo, len(n.Args))
	for i, a := range n.Args {
		b := ex.best[ex.g.Find(a)]
		if b == nil || !b.ok {
			return nil, false
		}
		children[i] = cost.ChildInfo{Cost: b.Cost, Node: b.Node}
	}
	return children, true
}

// nodeCostParts prices a node with the final best choices, returning the
// total (subtree) cost and the node's own share.
func (ex *Extractor) nodeCostParts(n egraph.ENode) (total, own float64, ok bool) {
	children, ok := ex.childInfo(n)
	if !ok {
		return 0, 0, false
	}
	sum := 0.0
	for _, c := range children {
		sum += c.Cost
	}
	own = ex.model.NodeCost(n, children)
	total = sum + own
	if total != total || total > 1e300 { // NaN or effectively infinite
		return 0, 0, false
	}
	return total, own, true
}

// sameNode compares nodes structurally under the current union-find.
func (ex *Extractor) sameNode(a, b egraph.ENode) bool {
	if a.Op != b.Op || a.Lit != b.Lit || a.Sym != b.Sym || a.Idx != b.Idx ||
		len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if ex.g.Find(a.Args[i]) != ex.g.Find(b.Args[i]) {
			return false
		}
	}
	return true
}

// describeNode renders a node for the decision trace: literals and symbols
// by value (resolved through the graph's intern table), Gets with their
// source, operators with their arity.
func (ex *Extractor) describeNode(n egraph.ENode) string {
	switch n.Op {
	case expr.OpLit:
		return fmt.Sprintf("%g", n.Lit)
	case expr.OpSym:
		return ex.g.SymName(n.Sym)
	case expr.OpGet:
		return fmt.Sprintf("(Get %s %d)", ex.g.SymName(n.Sym), n.Idx)
	}
	if len(n.Args) == 0 {
		return n.Op.String()
	}
	return fmt.Sprintf("(%s /%d)", n.Op.String(), len(n.Args))
}
