// Package extract selects the cheapest program represented by an e-graph
// under a cost model (paper §3.4). Extraction runs a Bellman-style
// relaxation to a fixpoint, which is linear in the number of e-nodes per
// pass and terminates because the cost model is strictly monotonic.
package extract

import (
	"fmt"
	"math"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// Choice records the selected implementation of one e-class.
type Choice struct {
	Cost float64
	Node egraph.ENode
	ok   bool
}

// Extractor computes best choices for every class of a graph.
type Extractor struct {
	g     *egraph.EGraph
	model cost.Model
	best  map[egraph.ClassID]*Choice
}

// New prepares an extractor and runs the fixpoint computation. Models that
// price by symbol payload (cost.NeedsSyms, e.g. per-function overrides)
// are bound to this graph's intern table before any node is priced.
func New(g *egraph.EGraph, model cost.Model) *Extractor {
	if ns, ok := model.(cost.NeedsSyms); ok {
		model = ns.WithSyms(g.SymName)
	}
	ex := &Extractor{g: g, model: model, best: map[egraph.ClassID]*Choice{}}
	ex.run()
	return ex
}

func (ex *Extractor) run() {
	// Relax until no class's best cost improves. Costs only decrease, and
	// each node's own cost is strictly positive, so cyclic choices can
	// never undercut acyclic ones and the loop terminates.
	for {
		changed := false
		ex.g.Classes(func(cls *egraph.EClass) {
			cur := ex.best[cls.ID]
			for _, n := range cls.Nodes {
				c, ok := ex.nodeCost(n)
				if !ok {
					continue
				}
				if cur == nil || !cur.ok || c < cur.Cost {
					cur = &Choice{Cost: c, Node: n, ok: true}
					ex.best[cls.ID] = cur
					changed = true
				}
			}
		})
		if !changed {
			return
		}
	}
}

// nodeCost prices node n using the current best choices of its children.
func (ex *Extractor) nodeCost(n egraph.ENode) (float64, bool) {
	children := make([]cost.ChildInfo, len(n.Args))
	sum := 0.0
	for i, a := range n.Args {
		b := ex.best[ex.g.Find(a)]
		if b == nil || !b.ok {
			return 0, false
		}
		children[i] = cost.ChildInfo{Cost: b.Cost, Node: b.Node}
		sum += b.Cost
	}
	own := ex.model.NodeCost(n, children)
	total := sum + own
	if math.IsInf(total, 0) || math.IsNaN(total) {
		return 0, false
	}
	return total, true
}

// Best returns the chosen implementation of a class.
func (ex *Extractor) Best(id egraph.ClassID) (Choice, bool) {
	b := ex.best[ex.g.Find(id)]
	if b == nil || !b.ok {
		return Choice{}, false
	}
	return *b, true
}

// Expr materializes the extracted term for a class as an expression tree.
// Shared subterms are shared pointers in the result (a DAG), which the
// later LVN pass exploits.
func (ex *Extractor) Expr(id egraph.ClassID) (*expr.Expr, error) {
	memo := map[egraph.ClassID]*expr.Expr{}
	var build func(egraph.ClassID) (*expr.Expr, error)
	building := map[egraph.ClassID]bool{}
	build = func(c egraph.ClassID) (*expr.Expr, error) {
		c = ex.g.Find(c)
		if e, ok := memo[c]; ok {
			return e, nil
		}
		if building[c] {
			return nil, fmt.Errorf("extract: cyclic best choice at class %d (cost model not strictly monotonic?)", c)
		}
		b := ex.best[c]
		if b == nil || !b.ok {
			return nil, fmt.Errorf("extract: no finite-cost implementation for class %d", c)
		}
		building[c] = true
		defer delete(building, c)
		e := &expr.Expr{Op: b.Node.Op, Lit: b.Node.Lit, Sym: ex.g.SymName(b.Node.Sym), Idx: b.Node.Idx}
		for _, a := range b.Node.Args {
			child, err := build(a)
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, child)
		}
		memo[c] = e
		return e, nil
	}
	return build(id)
}

// Cost returns the total extracted cost of a class, or +Inf when the class
// has no implementation under the model.
func (ex *Extractor) Cost(id egraph.ClassID) float64 {
	b, ok := ex.Best(id)
	if !ok {
		return math.Inf(1)
	}
	return b.Cost
}
