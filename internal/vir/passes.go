package vir

// LVN performs local value numbering over the straight-line program:
// pure instructions computing a value already computed are removed and
// their uses redirected. Because the IR is SSA and stores never write
// memory that loads read (kernels read inputs and write outputs, and
// outputs are distinct arrays), loads participate in numbering too.
//
// This is the pass the paper credits (§4) with shrinking the quaternion
// product kernel from over 100k lines of C++ to under 500.
func LVN(p *Program) *Program {
	out := NewProgram(p.Name, p.Width, p.Inputs, p.Outputs)
	seen := map[string]ID{}
	remap := map[ID]ID{}
	for _, in := range p.Instrs {
		n := in
		n.Args = make([]ID, len(in.Args))
		for i, a := range in.Args {
			if r, ok := remap[a]; ok {
				n.Args[i] = r
			} else {
				n.Args[i] = a
			}
		}
		if n.Op.IsStore() {
			out.Emit(n)
			continue
		}
		k := n.key()
		if prev, ok := seen[k]; ok {
			remap[in.ID] = prev
			continue
		}
		newID := out.Emit(n)
		remap[in.ID] = newID
		seen[k] = newID
	}
	return out
}

// DCE removes pure instructions whose values are never used (directly or
// transitively) by a store.
func DCE(p *Program) *Program {
	live := make([]bool, p.NumValues())
	var mark func(ID)
	uses := make(map[ID][]ID) // value -> argument values of its defining instr
	for _, in := range p.Instrs {
		if in.ID != None {
			uses[in.ID] = in.Args
		}
	}
	mark = func(id ID) {
		if id == None || live[id] {
			return
		}
		live[id] = true
		for _, a := range uses[id] {
			mark(a)
		}
	}
	for _, in := range p.Instrs {
		if in.Op.IsStore() {
			for _, a := range in.Args {
				mark(a)
			}
		}
	}
	out := NewProgram(p.Name, p.Width, p.Inputs, p.Outputs)
	remap := map[ID]ID{}
	for _, in := range p.Instrs {
		if in.ID != None && !live[in.ID] {
			continue
		}
		n := in
		n.Args = make([]ID, len(in.Args))
		for i, a := range in.Args {
			n.Args[i] = remap[a]
		}
		id := out.Emit(n)
		if in.ID != None {
			remap[in.ID] = id
		}
	}
	return out
}

// Optimize runs the standard backend cleanup pipeline: value numbering,
// shuffle/select fusion (which exposes more value numbering), and dead-code
// elimination.
func Optimize(p *Program) *Program { return DCE(LVN(FuseShuffles(LVN(p)))) }

// UseCounts returns, for each value, how many times it is used as an
// argument. The code generator uses this for last-use register reuse.
func (p *Program) UseCounts() []int {
	counts := make([]int, p.NumValues())
	for _, in := range p.Instrs {
		for _, a := range in.Args {
			if a != None {
				counts[a]++
			}
		}
	}
	return counts
}
