package vir

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"diospyros/internal/kernel"
)

func decls(names []string, n int) []kernel.ArrayDecl {
	var out []kernel.ArrayDecl
	for _, name := range names {
		out = append(out, kernel.ArrayDecl{Name: name, Rows: n, Cols: 1})
	}
	return out
}

// buildRedundant emits the same subexpression repeatedly: (a+b)*(a+b) per
// output element, each time recomputing the loads and the add.
func buildRedundant(n int) *Program {
	p := NewProgram("red", 4, decls([]string{"a", "b"}, n), decls([]string{"c"}, n))
	for i := 0; i < n; i++ {
		la := p.Emit(Instr{Op: LoadS, Array: "a", Off: i})
		lb := p.Emit(Instr{Op: LoadS, Array: "b", Off: i})
		s1 := p.Emit(Instr{Op: AddS, Args: []ID{la, lb}})
		la2 := p.Emit(Instr{Op: LoadS, Array: "a", Off: i})
		lb2 := p.Emit(Instr{Op: LoadS, Array: "b", Off: i})
		s2 := p.Emit(Instr{Op: AddS, Args: []ID{la2, lb2}})
		m := p.Emit(Instr{Op: MulS, Args: []ID{s1, s2}})
		p.Emit(Instr{Op: StoreS, Args: []ID{m}, Array: "c", Off: i})
	}
	return p
}

func randInputs(r *rand.Rand, names []string, n int) map[string][]float64 {
	out := map[string][]float64{}
	for _, name := range names {
		s := make([]float64, n)
		for i := range s {
			s[i] = r.Float64()*4 - 2
		}
		out[name] = s
	}
	return out
}

func TestLVNRemovesRedundancy(t *testing.T) {
	p := buildRedundant(4)
	before := len(p.Instrs)
	q := LVN(p)
	after := len(q.Instrs)
	// Each element had 3 redundant instructions (2 loads + 1 add).
	if after != before-3*4 {
		t.Fatalf("LVN: %d -> %d instrs, want %d", before, after, before-12)
	}
	// Semantics preserved.
	r := rand.New(rand.NewSource(1))
	in := randInputs(r, []string{"a", "b"}, 4)
	want, err := Interp(p, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(q, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if want["c"][i] != got["c"][i] {
			t.Fatalf("LVN changed semantics at %d", i)
		}
	}
}

func TestLVNLargeReductionFactor(t *testing.T) {
	// The paper's §4 reports LVN shrinking the quaternion-product kernel
	// from >100k lines to <500 — a two-orders-of-magnitude reduction on
	// heavily redundant code. Reproduce the effect at scale: 64 outputs,
	// each recomputing the same shared subexpression tower 8 times.
	p := NewProgram("tower", 4, decls([]string{"a"}, 8), decls([]string{"c"}, 64))
	for i := 0; i < 64; i++ {
		var acc ID = None
		for rep := 0; rep < 8; rep++ {
			x := p.Emit(Instr{Op: LoadS, Array: "a", Off: 0})
			for d := 1; d < 8; d++ {
				y := p.Emit(Instr{Op: LoadS, Array: "a", Off: d})
				x = p.Emit(Instr{Op: MulS, Args: []ID{x, y}})
			}
			if acc == None {
				acc = x
			} else {
				acc = p.Emit(Instr{Op: AddS, Args: []ID{acc, x}})
			}
		}
		p.Emit(Instr{Op: StoreS, Args: []ID{acc}, Array: "c", Off: i})
	}
	q := Optimize(p)
	factor := float64(len(p.Instrs)) / float64(len(q.Instrs))
	if factor < 50 {
		t.Fatalf("LVN reduction factor %.1f (%d -> %d), want >= 50",
			factor, len(p.Instrs), len(q.Instrs))
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	p := NewProgram("dead", 4, decls([]string{"a"}, 4), decls([]string{"c"}, 1))
	live := p.Emit(Instr{Op: LoadS, Array: "a", Off: 0})
	dead := p.Emit(Instr{Op: LoadS, Array: "a", Off: 1})
	deadMul := p.Emit(Instr{Op: MulS, Args: []ID{dead, dead}})
	_ = deadMul
	p.Emit(Instr{Op: StoreS, Args: []ID{live}, Array: "c", Off: 0})
	q := DCE(p)
	if len(q.Instrs) != 2 {
		t.Fatalf("DCE left %d instrs, want 2:\n%s", len(q.Instrs), q)
	}
}

func TestFuseShuffleChains(t *testing.T) {
	p := NewProgram("fuse", 4, decls([]string{"a", "b"}, 8), decls([]string{"c"}, 4))
	la := p.Emit(Instr{Op: LoadV, Array: "a", Off: 0})
	lb := p.Emit(Instr{Op: LoadV, Array: "b", Off: 0})
	sh := p.Emit(Instr{Op: Shuffle, Args: []ID{la}, Idx: []int{3, 2, 1, 0}})
	sel := p.Emit(Instr{Op: Select, Args: []ID{sh, lb}, Idx: []int{0, 5, 2, 7}})
	sh2 := p.Emit(Instr{Op: Shuffle, Args: []ID{sel}, Idx: []int{1, 0, 3, 2}})
	p.Emit(Instr{Op: StoreV, Args: []ID{sh2}, Array: "c", Off: 0})

	r := rand.New(rand.NewSource(2))
	in := randInputs(r, []string{"a", "b"}, 8)
	want, err := Interp(p, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Optimize(p)
	got, err := Interp(q, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if want["c"][i] != got["c"][i] {
			t.Fatalf("fusion changed semantics at lane %d: %g vs %g", i, got["c"][i], want["c"][i])
		}
	}
	// The chain shuffle→select→shuffle must collapse into one movement op.
	moves := 0
	for _, in := range q.Instrs {
		if in.Op == Shuffle || in.Op == Select {
			moves++
		}
	}
	if moves > 1 {
		t.Fatalf("fusion left %d movement ops, want <= 1:\n%s", moves, q)
	}
}

func TestFuseOneSidedSelect(t *testing.T) {
	p := NewProgram("oneside", 4, decls([]string{"a", "b"}, 8), decls([]string{"c"}, 4))
	la := p.Emit(Instr{Op: LoadV, Array: "a", Off: 0})
	lb := p.Emit(Instr{Op: LoadV, Array: "b", Off: 0})
	sel := p.Emit(Instr{Op: Select, Args: []ID{la, lb}, Idx: []int{5, 4, 7, 6}}) // all from b
	p.Emit(Instr{Op: StoreV, Args: []ID{sel}, Array: "c", Off: 0})
	q := Optimize(p)
	for _, in := range q.Instrs {
		if in.Op == Select {
			t.Fatalf("one-sided select not converted to shuffle:\n%s", q)
		}
	}
	r := rand.New(rand.NewSource(3))
	in := randInputs(r, []string{"a", "b"}, 8)
	got, err := Interp(q, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{in["b"][1], in["b"][0], in["b"][3], in["b"][2]}
	for i := range want {
		if got["c"][i] != want[i] {
			t.Fatalf("lane %d: %g want %g", i, got["c"][i], want[i])
		}
	}
}

func TestFuseIdentityShuffle(t *testing.T) {
	p := NewProgram("ident", 4, decls([]string{"a"}, 4), decls([]string{"c"}, 4))
	la := p.Emit(Instr{Op: LoadV, Array: "a", Off: 0})
	sh := p.Emit(Instr{Op: Shuffle, Args: []ID{la}, Idx: []int{0, 1, 2, 3}})
	p.Emit(Instr{Op: StoreV, Args: []ID{sh}, Array: "c", Off: 0})
	q := Optimize(p)
	for _, in := range q.Instrs {
		if in.Op == Shuffle {
			t.Fatalf("identity shuffle survived:\n%s", q)
		}
	}
}

// Property: Optimize preserves semantics on random straight-line programs.
func TestPropertyOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		p := randomProgram(r)
		in := randInputs(r, []string{"a", "b"}, 8)
		want, err := Interp(p, in, nil)
		if err != nil {
			t.Fatalf("trial %d: interp original: %v\n%s", trial, err, p)
		}
		q := Optimize(p)
		got, err := Interp(q, in, nil)
		if err != nil {
			t.Fatalf("trial %d: interp optimized: %v\n%s", trial, err, q)
		}
		for i := range want["c"] {
			w, g := want["c"][i], got["c"][i]
			if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
				t.Fatalf("trial %d lane %d: %g vs %g\nbefore:\n%s\nafter:\n%s",
					trial, i, g, w, p, q)
			}
		}
	}
}

// randomProgram emits a random DAG of vector ops over two 8-element inputs
// and stores 4 outputs.
func randomProgram(r *rand.Rand) *Program {
	p := NewProgram("rand", 4, decls([]string{"a", "b"}, 8), decls([]string{"c"}, 4))
	var vecs []ID
	vecs = append(vecs,
		p.Emit(Instr{Op: LoadV, Array: "a", Off: 0}),
		p.Emit(Instr{Op: LoadV, Array: "b", Off: 0}),
		p.Emit(Instr{Op: LoadV, Array: "a", Off: 4}),
	)
	idx4 := func() []int {
		out := make([]int, 4)
		for i := range out {
			out[i] = r.Intn(4)
		}
		return out
	}
	idx8 := func() []int {
		out := make([]int, 4)
		for i := range out {
			out[i] = r.Intn(8)
		}
		return out
	}
	pick := func() ID { return vecs[r.Intn(len(vecs))] }
	for k := 0; k < 3+r.Intn(10); k++ {
		switch r.Intn(6) {
		case 0:
			vecs = append(vecs, p.Emit(Instr{Op: Shuffle, Args: []ID{pick()}, Idx: idx4()}))
		case 1:
			vecs = append(vecs, p.Emit(Instr{Op: Select, Args: []ID{pick(), pick()}, Idx: idx8()}))
		case 2:
			vecs = append(vecs, p.Emit(Instr{Op: AddV, Args: []ID{pick(), pick()}}))
		case 3:
			vecs = append(vecs, p.Emit(Instr{Op: MulV, Args: []ID{pick(), pick()}}))
		case 4:
			vecs = append(vecs, p.Emit(Instr{Op: MacV, Args: []ID{pick(), pick(), pick()}}))
		default:
			vecs = append(vecs, p.Emit(Instr{Op: SubV, Args: []ID{pick(), pick()}}))
		}
	}
	p.Emit(Instr{Op: StoreV, Args: []ID{vecs[len(vecs)-1]}, Array: "c", Off: 0})
	return p
}

func TestInterpErrors(t *testing.T) {
	mk := func(f func(p *Program)) error {
		p := NewProgram("err", 4, decls([]string{"a"}, 4), decls([]string{"c"}, 4))
		f(p)
		_, err := Interp(p, map[string][]float64{"a": make([]float64, 4)}, nil)
		return err
	}
	cases := []func(p *Program){
		func(p *Program) { p.Emit(Instr{Op: LoadS, Array: "zzz", Off: 0}) },
		func(p *Program) { p.Emit(Instr{Op: LoadS, Array: "a", Off: 99}) },
		func(p *Program) {
			id := p.Emit(Instr{Op: ConstS, F: 1})
			p.Emit(Instr{Op: Shuffle, Args: []ID{id}, Idx: []int{0, 1, 2, 3}})
		},
		func(p *Program) {
			id := p.Emit(Instr{Op: ConstV, Fs: []float64{1, 2, 3, 4}})
			p.Emit(Instr{Op: Shuffle, Args: []ID{id}, Idx: []int{0, 1, 2, 9}})
		},
		func(p *Program) { p.Emit(Instr{Op: CallS, Sym: "nosuch"}) },
	}
	for i, f := range cases {
		if err := mk(f); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := buildRedundant(1)
	s := p.String()
	for _, want := range []string{"load.s", "add.s", "mul.s", "store.s"} {
		if !strings.Contains(s, want) {
			t.Errorf("program dump missing %q:\n%s", want, s)
		}
	}
}

func TestRematerializePreservesSemanticsAndSplitsRanges(t *testing.T) {
	// A load used at the start and again far later: rematerialization must
	// clone the load rather than keep its value live across the gap.
	p := NewProgram("remat", 4, decls([]string{"a", "b"}, 8), decls([]string{"c"}, 8))
	hot := p.Emit(Instr{Op: LoadV, Array: "a", Off: 0})
	cur := p.Emit(Instr{Op: LoadV, Array: "b", Off: 0})
	first := p.Emit(Instr{Op: AddV, Args: []ID{cur, hot}})
	p.Emit(Instr{Op: StoreV, Args: []ID{first}, Array: "c", Off: 0})
	for k := 0; k < 50; k++ {
		cur = p.Emit(Instr{Op: AddV, Args: []ID{cur, cur}})
	}
	late := p.Emit(Instr{Op: AddV, Args: []ID{cur, hot}}) // stale use of hot
	p.Emit(Instr{Op: StoreV, Args: []ID{late}, Array: "c", Off: 4})

	q := Rematerialize(p, 16)
	loads := 0
	for _, in := range q.Instrs {
		if in.Op == LoadV && in.Array == "a" {
			loads++
		}
	}
	if loads < 2 {
		t.Fatalf("stale load not rematerialized (%d loads of a)", loads)
	}
	in := map[string][]float64{
		"a": {1, 2, 3, 4, 5, 6, 7, 8},
		"b": {1, 1, 1, 1, 2, 2, 2, 2},
	}
	want, err := Interp(p, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(q, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if want["c"][i] != got["c"][i] {
			t.Fatalf("remat changed semantics at %d: %g vs %g", i, got["c"][i], want["c"][i])
		}
	}
}

func TestRematerializeClonesMovementCones(t *testing.T) {
	// A shuffle-of-load cone reused far later is cloned whole.
	p := NewProgram("cone", 4, decls([]string{"a"}, 8), decls([]string{"c"}, 8))
	ld := p.Emit(Instr{Op: LoadV, Array: "a", Off: 0})
	sh := p.Emit(Instr{Op: Shuffle, Args: []ID{ld}, Idx: []int{3, 2, 1, 0}})
	p.Emit(Instr{Op: StoreV, Args: []ID{sh}, Array: "c", Off: 0})
	cur := p.Emit(Instr{Op: LoadV, Array: "a", Off: 4})
	for k := 0; k < 50; k++ {
		cur = p.Emit(Instr{Op: AddV, Args: []ID{cur, cur}})
	}
	late := p.Emit(Instr{Op: AddV, Args: []ID{cur, sh}})
	p.Emit(Instr{Op: StoreV, Args: []ID{late}, Array: "c", Off: 4})
	q := Rematerialize(p, 16)
	shuffles := 0
	for _, in := range q.Instrs {
		if in.Op == Shuffle {
			shuffles++
		}
	}
	if shuffles < 2 {
		t.Fatalf("movement cone not cloned (%d shuffles)", shuffles)
	}
	in := map[string][]float64{"a": {1, 2, 3, 4, 5, 6, 7, 8}}
	want, _ := Interp(p, in, nil)
	got, err := Interp(q, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if want["c"][i] != got["c"][i] {
			t.Fatalf("cone remat changed semantics at %d", i)
		}
	}
}
