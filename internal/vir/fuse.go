package vir

// FuseShuffles composes adjacent data-movement operations:
//
//   - shuffle(shuffle(a, s1), s2)      → shuffle(a, s1∘s2)
//   - select(shuffle(a, s), b, idx)    → select(a, b, idx′)
//   - select(a, shuffle(b, s), idx)    → select(a, b, idx′)
//   - shuffle(select(a, b, idx), s)    → select(a, b, idx∘s)
//   - select with all lanes from one side → shuffle
//   - identity shuffle                 → pass-through
//
// Each rewrite removes one data-movement instruction from every dependent
// chain; a following DCE pass collects the orphaned producers. The pass
// iterates to a fixpoint.
func FuseShuffles(p *Program) *Program {
	w := p.Width
	for {
		defs := make([]*Instr, p.NumValues())
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.ID != None {
				defs[in.ID] = in
			}
		}
		changed := false
		for i := range p.Instrs {
			in := &p.Instrs[i]
			switch in.Op {
			case Shuffle:
				src := defs[in.Args[0]]
				switch {
				case src != nil && src.Op == Shuffle:
					// shuffle(shuffle(a, s1), s2): lane k reads s1[s2[k]].
					idx := make([]int, w)
					for k := 0; k < w; k++ {
						idx[k] = src.Idx[in.Idx[k]]
					}
					in.Args = []ID{src.Args[0]}
					in.Idx = idx
					changed = true
				case src != nil && src.Op == Select:
					// shuffle(select(a, b, idx), s): lane k reads idx[s[k]].
					idx := make([]int, w)
					for k := 0; k < w; k++ {
						idx[k] = src.Idx[in.Idx[k]]
					}
					in.Op = Select
					in.Args = []ID{src.Args[0], src.Args[1]}
					in.Idx = idx
					changed = true
				case isIdentityIdx(in.Idx):
					// Identity shuffle: forward the operand to all later
					// uses; DCE removes the orphaned shuffle afterwards.
					if replaceUses(p, in.ID, in.Args[0], i+1) > 0 {
						changed = true
					}
				}
			case Select:
				a := defs[in.Args[0]]
				b := defs[in.Args[1]]
				if a != nil && a.Op == Shuffle {
					idx := make([]int, w)
					for k := 0; k < w; k++ {
						if in.Idx[k] < w {
							idx[k] = a.Idx[in.Idx[k]]
						} else {
							idx[k] = in.Idx[k]
						}
					}
					in.Args = []ID{a.Args[0], in.Args[1]}
					in.Idx = idx
					changed = true
					break
				}
				if b != nil && b.Op == Shuffle {
					idx := make([]int, w)
					for k := 0; k < w; k++ {
						if in.Idx[k] >= w {
							idx[k] = w + b.Idx[in.Idx[k]-w]
						} else {
							idx[k] = in.Idx[k]
						}
					}
					in.Args = []ID{in.Args[0], b.Args[0]}
					in.Idx = idx
					changed = true
					break
				}
				// One-sided select → shuffle.
				allA, allB := true, true
				for k := 0; k < w; k++ {
					if in.Idx[k] < w {
						allB = false
					} else {
						allA = false
					}
				}
				if allA {
					in.Op = Shuffle
					in.Args = []ID{in.Args[0]}
					changed = true
				} else if allB {
					idx := make([]int, w)
					for k := 0; k < w; k++ {
						idx[k] = in.Idx[k] - w
					}
					in.Op = Shuffle
					in.Args = []ID{in.Args[1]}
					in.Idx = idx
					changed = true
				}
			}
		}
		if !changed {
			return p
		}
	}
}

func isIdentityIdx(idx []int) bool {
	for k, v := range idx {
		if v != k {
			return false
		}
	}
	return true
}

// replaceUses rewrites argument references to `from` with `to` in
// instructions from index `start` onward (SSA: uses follow the
// definition), returning how many references changed.
func replaceUses(p *Program, from, to ID, start int) int {
	n := 0
	for i := start; i < len(p.Instrs); i++ {
		for j, a := range p.Instrs[i].Args {
			if a == from {
				p.Instrs[i].Args[j] = to
				n++
			}
		}
	}
	return n
}
