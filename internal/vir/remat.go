package vir

// Rematerialize bounds register live ranges in straight-line code: when a
// value produced by a cheap, pure data-movement cone (loads, constants,
// splats, shuffles, selects) is next used more than `window` emitted
// instructions after its previous touch, the cone is cloned at the use
// instead of keeping the register alive across the gap. This is the
// live-range splitting a real compiler's register allocator performs via
// rematerialization, and it is what lets LVN-deduplicated loads be shared
// *locally* without inflating register pressure globally.
//
// The pass runs after Optimize (a later LVN would undo it). Cloned cones
// are bounded to maxConeSize instructions so rematerialization never
// re-introduces meaningful compute.
func Rematerialize(p *Program, window int) *Program {
	if window <= 0 {
		window = 32
	}
	const maxConeSize = 4

	defs := make([]*Instr, p.NumValues())
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.ID != None {
			defs[in.ID] = in
		}
	}
	rematable := func(id ID) bool {
		d := defs[id]
		if d == nil {
			return false
		}
		switch d.Op {
		case LoadV, LoadS, ConstV, ConstS, Splat, Shuffle, Select:
			return true
		}
		return false
	}
	// coneSize counts the instructions a clone of id would need,
	// following remat-able args only.
	var coneSize func(id ID, budget int) int
	coneSize = func(id ID, budget int) int {
		if budget <= 0 {
			return 1 << 20
		}
		n := 1
		for _, a := range defs[id].Args {
			if rematable(a) {
				n += coneSize(a, budget-n)
			}
		}
		return n
	}

	out := NewProgram(p.Name, p.Width, p.Inputs, p.Outputs)
	remap := make([]ID, p.NumValues())
	lastTouch := make([]int, p.NumValues())
	for i := range remap {
		remap[i] = None
		lastTouch[i] = -1
	}

	// clone re-emits the movement cone for id, returning the fresh value.
	var clone func(id ID) ID
	clone = func(id ID) ID {
		d := defs[id]
		n := *d
		n.Args = make([]ID, len(d.Args))
		for i, a := range d.Args {
			if rematable(a) && coneSize(a, maxConeSize) <= maxConeSize {
				n.Args[i] = clone(a)
			} else {
				// Keep referencing the live (or revived) original.
				n.Args[i] = remap[a]
				lastTouch[a] = len(out.Instrs)
			}
		}
		return out.Emit(n)
	}

	for i := range p.Instrs {
		in := p.Instrs[i]
		n := in
		n.Args = make([]ID, len(in.Args))
		for j, a := range in.Args {
			stale := lastTouch[a] >= 0 && len(out.Instrs)-lastTouch[a] > window
			if stale && rematable(a) && coneSize(a, maxConeSize) <= maxConeSize {
				fresh := clone(a)
				remap[a] = fresh
				lastTouch[a] = len(out.Instrs) - 1
			}
			n.Args[j] = remap[a]
			lastTouch[a] = len(out.Instrs)
		}
		id := out.Emit(n)
		if in.ID != None {
			remap[in.ID] = id
			lastTouch[in.ID] = len(out.Instrs) - 1
		}
	}
	return out
}

// MaxLive computes the peak number of simultaneously live vector and
// scalar values in the straight-line program — the register pressure a
// linear-scan allocator faces.
func MaxLive(p *Program) (vectors, scalars int) {
	lastUse := make([]int, p.NumValues())
	for i := range lastUse {
		lastUse[i] = -1
	}
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			lastUse[a] = i
		}
	}
	liveV, liveS := 0, 0
	// endsAt[i] lists values whose last use is instruction i.
	endsAt := make([][]ID, len(p.Instrs))
	for id, end := range lastUse {
		if end >= 0 {
			endsAt[end] = append(endsAt[end], ID(id))
		}
	}
	isVec := make([]bool, p.NumValues())
	for _, in := range p.Instrs {
		if in.ID != None {
			isVec[in.ID] = in.Op.IsVectorValue()
		}
	}
	for i, in := range p.Instrs {
		if in.ID != None && lastUse[in.ID] >= 0 {
			if isVec[in.ID] {
				liveV++
				if liveV > vectors {
					vectors = liveV
				}
			} else {
				liveS++
				if liveS > scalars {
					scalars = liveS
				}
			}
		}
		for _, id := range endsAt[i] {
			if isVec[id] {
				liveV--
			} else {
				liveS--
			}
		}
	}
	return vectors, scalars
}

// BoundPressure applies Rematerialize with progressively smaller windows
// until the program's register pressure fits the budget (or the window
// floor is reached). Programs already within budget are returned unchanged,
// so small kernels pay nothing.
func BoundPressure(p *Program, budget int) *Program {
	for window := 128; window >= 8; window /= 2 {
		v, s := MaxLive(p)
		if v <= budget && s <= budget {
			return p
		}
		p = Rematerialize(p, window)
	}
	return p
}
