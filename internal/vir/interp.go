package vir

import (
	"fmt"
	"math"

	"diospyros/internal/expr"
)

// Interp executes the IR program over concrete inputs, returning the output
// arrays. It is the reference semantics for the IR, used to check that LVN
// and DCE preserve behaviour and that code generation agrees with it.
func Interp(p *Program, inputs map[string][]float64, funcs map[string]func([]float64) float64) (map[string][]float64, error) {
	w := p.Width
	scalars := make([]float64, p.NumValues())
	vectors := make([][]float64, p.NumValues())
	// All arrays are allocated width-padded — rounded up to a multiple of
	// the vector width plus one extra vector of slack — matching the memory
	// layout the code generator assumes: vector loads of any in-bounds
	// element's aligned window, and unaligned loads whose live lanes are in
	// bounds, are legal. Over-allocating buffers this way is standard
	// practice for DSP vector code.
	pad := func(n int) int { return (n+w-1)/w*w + w }
	arrays := map[string][]float64{}
	for _, d := range p.Inputs {
		data, ok := inputs[d.Name]
		if !ok {
			return nil, fmt.Errorf("vir: missing input %q", d.Name)
		}
		if len(data) != d.Len() {
			return nil, fmt.Errorf("vir: input %q has %d elements, want %d", d.Name, len(data), d.Len())
		}
		arr := make([]float64, pad(d.Len()))
		copy(arr, data)
		arrays[d.Name] = arr
	}
	outputs := map[string][]float64{}
	for _, d := range p.Outputs {
		arr := make([]float64, pad(d.Len()))
		arrays[d.Name] = arr
		outputs[d.Name] = arr[:d.Len()]
	}

	vec := func(id ID) ([]float64, error) {
		if v := vectors[id]; v != nil {
			return v, nil
		}
		return nil, fmt.Errorf("vir: %%%d is not a vector value", id)
	}

	for _, in := range p.Instrs {
		switch in.Op {
		case ConstS:
			scalars[in.ID] = in.F
		case LoadS:
			arr, ok := arrays[in.Array]
			if !ok {
				return nil, fmt.Errorf("vir: unknown array %q", in.Array)
			}
			if in.Off < 0 || in.Off >= len(arr) {
				return nil, fmt.Errorf("vir: load.s %s+%d out of bounds", in.Array, in.Off)
			}
			scalars[in.ID] = arr[in.Off]
		case AddS:
			scalars[in.ID] = scalars[in.Args[0]] + scalars[in.Args[1]]
		case SubS:
			scalars[in.ID] = scalars[in.Args[0]] - scalars[in.Args[1]]
		case MulS:
			scalars[in.ID] = scalars[in.Args[0]] * scalars[in.Args[1]]
		case DivS:
			scalars[in.ID] = scalars[in.Args[0]] / scalars[in.Args[1]]
		case NegS:
			scalars[in.ID] = -scalars[in.Args[0]]
		case SqrtS:
			scalars[in.ID] = math.Sqrt(scalars[in.Args[0]])
		case SgnS:
			scalars[in.ID] = expr.Sign(scalars[in.Args[0]])
		case CallS:
			fn, ok := funcs[in.Sym]
			if !ok {
				return nil, fmt.Errorf("vir: no semantics for %q", in.Sym)
			}
			args := make([]float64, len(in.Args))
			for i, a := range in.Args {
				args[i] = scalars[a]
			}
			scalars[in.ID] = fn(args)
		case ExtractLane:
			v, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			if in.Lane < 0 || in.Lane >= w {
				return nil, fmt.Errorf("vir: extract lane %d out of range", in.Lane)
			}
			scalars[in.ID] = v[in.Lane]

		case ConstV:
			if len(in.Fs) != w {
				return nil, fmt.Errorf("vir: const.v arity %d != width %d", len(in.Fs), w)
			}
			vectors[in.ID] = append([]float64(nil), in.Fs...)
		case LoadV:
			arr, ok := arrays[in.Array]
			if !ok {
				return nil, fmt.Errorf("vir: unknown array %q", in.Array)
			}
			if in.Off < 0 || in.Off+w > len(arr) {
				return nil, fmt.Errorf("vir: load.v %s+%d out of bounds", in.Array, in.Off)
			}
			vectors[in.ID] = append([]float64(nil), arr[in.Off:in.Off+w]...)
		case Splat:
			v := make([]float64, w)
			for k := range v {
				v[k] = scalars[in.Args[0]]
			}
			vectors[in.ID] = v
		case Insert:
			src, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			if in.Lane < 0 || in.Lane >= w {
				return nil, fmt.Errorf("vir: insert lane %d out of range", in.Lane)
			}
			v := append([]float64(nil), src...)
			v[in.Lane] = scalars[in.Args[1]]
			vectors[in.ID] = v
		case Shuffle:
			src, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			if len(in.Idx) != w {
				return nil, fmt.Errorf("vir: shuffle needs %d indices", w)
			}
			v := make([]float64, w)
			for k, idx := range in.Idx {
				if idx < 0 || idx >= w {
					return nil, fmt.Errorf("vir: shuffle index %d out of range", idx)
				}
				v[k] = src[idx]
			}
			vectors[in.ID] = v
		case Select:
			a, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			b, err := vec(in.Args[1])
			if err != nil {
				return nil, err
			}
			if len(in.Idx) != w {
				return nil, fmt.Errorf("vir: select needs %d indices", w)
			}
			v := make([]float64, w)
			for k, idx := range in.Idx {
				switch {
				case idx >= 0 && idx < w:
					v[k] = a[idx]
				case idx >= w && idx < 2*w:
					v[k] = b[idx-w]
				default:
					return nil, fmt.Errorf("vir: select index %d out of range", idx)
				}
			}
			vectors[in.ID] = v
		case AddV, SubV, MulV, DivV:
			a, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			b, err := vec(in.Args[1])
			if err != nil {
				return nil, err
			}
			v := make([]float64, w)
			for k := 0; k < w; k++ {
				switch in.Op {
				case AddV:
					v[k] = a[k] + b[k]
				case SubV:
					v[k] = a[k] - b[k]
				case MulV:
					v[k] = a[k] * b[k]
				default:
					v[k] = a[k] / b[k]
				}
			}
			vectors[in.ID] = v
		case MacV:
			acc, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			a, err := vec(in.Args[1])
			if err != nil {
				return nil, err
			}
			b, err := vec(in.Args[2])
			if err != nil {
				return nil, err
			}
			v := make([]float64, w)
			for k := 0; k < w; k++ {
				v[k] = acc[k] + a[k]*b[k]
			}
			vectors[in.ID] = v
		case NegV, SqrtV, SgnV:
			a, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			v := make([]float64, w)
			for k := 0; k < w; k++ {
				switch in.Op {
				case NegV:
					v[k] = -a[k]
				case SqrtV:
					v[k] = math.Sqrt(a[k])
				default:
					v[k] = expr.Sign(a[k])
				}
			}
			vectors[in.ID] = v
		case CallV:
			fn, ok := funcs[in.Sym]
			if !ok {
				return nil, fmt.Errorf("vir: no semantics for %q", in.Sym)
			}
			args := make([][]float64, len(in.Args))
			for i, a := range in.Args {
				av, err := vec(a)
				if err != nil {
					return nil, err
				}
				args[i] = av
			}
			v := make([]float64, w)
			for k := 0; k < w; k++ {
				lane := make([]float64, len(args))
				for i := range args {
					lane[i] = args[i][k]
				}
				v[k] = fn(lane)
			}
			vectors[in.ID] = v

		case StoreS:
			arr, ok := arrays[in.Array]
			if !ok {
				return nil, fmt.Errorf("vir: unknown array %q", in.Array)
			}
			if in.Off < 0 || in.Off >= len(arr) {
				return nil, fmt.Errorf("vir: store.s %s+%d out of bounds", in.Array, in.Off)
			}
			arr[in.Off] = scalars[in.Args[0]]
		case StoreV, StoreVN:
			arr, ok := arrays[in.Array]
			if !ok {
				return nil, fmt.Errorf("vir: unknown array %q", in.Array)
			}
			v, err := vec(in.Args[0])
			if err != nil {
				return nil, err
			}
			n := w
			if in.Op == StoreVN {
				n = in.N
				if n < 1 || n > w {
					return nil, fmt.Errorf("vir: store.vn n=%d out of range", n)
				}
			}
			if in.Off < 0 || in.Off+n > len(arr) {
				return nil, fmt.Errorf("vir: store %s+%d..+%d out of bounds", in.Array, in.Off, n)
			}
			copy(arr[in.Off:in.Off+n], v[:n])
		default:
			return nil, fmt.Errorf("vir: unimplemented op %s", in.Op)
		}
	}
	return outputs, nil
}
