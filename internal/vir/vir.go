// Package vir defines Diospyros's machine-independent low-level vector IR
// (paper §4): straight-line SSA code over scalar and vector values, with
// named-array loads/stores, arbitrary-index shuffles and selects, and
// uninterpreted function calls. The extracted DSL program is lowered into
// this IR, cleaned up by local value numbering (LVN) and dead-code
// elimination, and then translated to either C-with-intrinsics text or
// FG3-lite assembly.
package vir

import (
	"fmt"
	"strings"

	"diospyros/internal/kernel"
)

// ID identifies an SSA value. Stores produce no value and use ID -1.
type ID int

// None marks the absence of a value.
const None ID = -1

// Op enumerates IR operations.
type Op uint8

const (
	// Scalar values.
	ConstS Op = iota // F
	LoadS            // Array, Off
	AddS             // Args[0] + Args[1]
	SubS
	MulS
	DivS
	NegS
	SqrtS
	SgnS
	CallS // Sym, Args
	ExtractLane

	// Vector values (width W fixed by the target).
	ConstV  // Fs
	LoadV   // Array, Off (contiguous, any alignment)
	Splat   // broadcast Args[0]
	Insert  // Args[0] with lane Lane replaced by scalar Args[1]
	Shuffle // lane k = Args[0][Idx[k]]
	Select  // lane k = concat(Args[0], Args[1])[Idx[k]]
	AddV
	SubV
	MulV
	DivV
	MacV // Args[0] + Args[1]*Args[2] elementwise (functional SSA form)
	NegV
	SqrtV
	SgnV
	CallV // Sym, Args

	// Effects.
	StoreS  // mem: Array[Off] = Args[0]
	StoreV  // mem: Array[Off : Off+W] = Args[0]
	StoreVN // mem: Array[Off : Off+N] = first N lanes of Args[0]

	NumOps
)

var opNames = [NumOps]string{
	ConstS: "const.s", LoadS: "load.s", AddS: "add.s", SubS: "sub.s",
	MulS: "mul.s", DivS: "div.s", NegS: "neg.s", SqrtS: "sqrt.s",
	SgnS: "sgn.s", CallS: "call.s", ExtractLane: "extract",
	ConstV: "const.v", LoadV: "load.v", Splat: "splat", Insert: "insert",
	Shuffle: "shuffle", Select: "select",
	AddV: "add.v", SubV: "sub.v", MulV: "mul.v", DivV: "div.v",
	MacV: "mac.v", NegV: "neg.v", SqrtV: "sqrt.v", SgnV: "sgn.v",
	CallV:  "call.v",
	StoreS: "store.s", StoreV: "store.v", StoreVN: "store.vn",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("virop(%d)", uint8(o))
}

// IsStore reports whether the op is a memory effect (produces no value).
func (o Op) IsStore() bool { return o == StoreS || o == StoreV || o == StoreVN }

// IsVectorValue reports whether the op produces a vector value.
func (o Op) IsVectorValue() bool {
	switch o {
	case ConstV, LoadV, Splat, Insert, Shuffle, Select,
		AddV, SubV, MulV, DivV, MacV, NegV, SqrtV, SgnV, CallV:
		return true
	}
	return false
}

// Instr is one IR instruction.
type Instr struct {
	ID    ID // -1 for stores
	Op    Op
	Args  []ID
	Array string    // for loads/stores
	Off   int       // element offset within Array
	Lane  int       // for Insert/ExtractLane
	N     int       // for StoreVN
	F     float64   // for ConstS
	Fs    []float64 // for ConstV
	Idx   []int     // for Shuffle/Select
	Sym   string    // for CallS/CallV
}

// Program is a straight-line IR program together with its interface
// metadata (which arrays are inputs and outputs, and their shapes).
type Program struct {
	Name    string
	Width   int
	Instrs  []Instr
	Inputs  []kernel.ArrayDecl
	Outputs []kernel.ArrayDecl
	next    ID
}

// NewProgram creates an empty program for the given kernel interface.
func NewProgram(name string, width int, inputs, outputs []kernel.ArrayDecl) *Program {
	return &Program{Name: name, Width: width, Inputs: inputs, Outputs: outputs}
}

// Emit appends an instruction, assigning it a fresh ID unless it is a store.
func (p *Program) Emit(in Instr) ID {
	if in.Op.IsStore() {
		in.ID = None
	} else {
		in.ID = p.next
		p.next++
	}
	p.Instrs = append(p.Instrs, in)
	return in.ID
}

// NumValues returns the number of SSA values defined.
func (p *Program) NumValues() int { return int(p.next) }

// String renders the program in a readable text form.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; vir %s (width %d, %d instrs)\n", p.Name, p.Width, len(p.Instrs))
	for _, in := range p.Instrs {
		b.WriteString("  ")
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (in Instr) String() string {
	var b strings.Builder
	if in.ID != None {
		fmt.Fprintf(&b, "%%%-3d = ", in.ID)
	} else {
		b.WriteString("       ")
	}
	fmt.Fprintf(&b, "%-9s", in.Op)
	switch in.Op {
	case ConstS:
		fmt.Fprintf(&b, "%g", in.F)
	case ConstV:
		fmt.Fprintf(&b, "%v", in.Fs)
	case LoadS, LoadV:
		fmt.Fprintf(&b, "%s+%d", in.Array, in.Off)
	case StoreS, StoreV:
		fmt.Fprintf(&b, "%s+%d, %%%d", in.Array, in.Off, in.Args[0])
	case StoreVN:
		fmt.Fprintf(&b, "%s+%d, %%%d, n=%d", in.Array, in.Off, in.Args[0], in.N)
	case Shuffle:
		fmt.Fprintf(&b, "%%%d, %v", in.Args[0], in.Idx)
	case Select:
		fmt.Fprintf(&b, "%%%d, %%%d, %v", in.Args[0], in.Args[1], in.Idx)
	case Insert:
		fmt.Fprintf(&b, "%%%d[%d] <- %%%d", in.Args[0], in.Lane, in.Args[1])
	case ExtractLane:
		fmt.Fprintf(&b, "%%%d[%d]", in.Args[0], in.Lane)
	case CallS, CallV:
		fmt.Fprintf(&b, "%s(", in.Sym)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%%%d", a)
		}
		b.WriteString(")")
	default:
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%%%d", a)
		}
	}
	return b.String()
}

// key builds the LVN hash key for a pure instruction.
func (in Instr) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|%d|%d|%d|%g|%v|%v|%s", in.Op, in.Array, in.Off,
		in.Lane, in.N, in.F, in.Fs, in.Idx, in.Sym)
	for _, a := range in.Args {
		fmt.Fprintf(&b, "|%d", a)
	}
	return b.String()
}
