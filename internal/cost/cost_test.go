package cost

import (
	"testing"

	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// get builds a Get child. Symbol payloads are interned IDs since the
// layout overhaul; the model only compares them for equality, so tests use
// a tiny hand-rolled intern table.
func get(arr string, i int) ChildInfo {
	return ChildInfo{Node: egraph.ENode{Op: expr.OpGet, Sym: testSym(arr), Idx: i}}
}

var testSyms = map[string]egraph.SymID{}

func testSym(name string) egraph.SymID {
	id, ok := testSyms[name]
	if !ok {
		id = egraph.SymID(len(testSyms) + 1)
		testSyms[name] = id
	}
	return id
}

func testSymName(id egraph.SymID) string {
	for n, i := range testSyms {
		if i == id {
			return n
		}
	}
	return ""
}

func lit(v float64) ChildInfo {
	return ChildInfo{Node: egraph.ENode{Op: expr.OpLit, Lit: v}}
}

func TestDiospyrosVectorAmortization(t *testing.T) {
	m := Diospyros{Width: 4}
	scalarAdd := m.NodeCost(egraph.ENode{Op: expr.OpAdd}, []ChildInfo{lit(0), lit(0)})
	vecAdd := m.NodeCost(egraph.ENode{Op: expr.OpVecAdd}, nil)
	// One vector op covers Width lanes for about the price of one scalar op.
	if vecAdd > scalarAdd {
		t.Fatalf("VecAdd (%g) should not cost more than one scalar add (%g)", vecAdd, scalarAdd)
	}
}

func TestScalarLoadCharge(t *testing.T) {
	m := Diospyros{Width: 4}
	noLoads := m.NodeCost(egraph.ENode{Op: expr.OpAdd}, []ChildInfo{lit(0), lit(0)})
	twoLoads := m.NodeCost(egraph.ENode{Op: expr.OpAdd}, []ChildInfo{get("a", 0), get("b", 0)})
	if twoLoads-noLoads != 2*ScalarLoadCost {
		t.Fatalf("load charge = %g, want %g", twoLoads-noLoads, 2*ScalarLoadCost)
	}
}

func TestLongLatencyOpsCostMore(t *testing.T) {
	m := Diospyros{Width: 4}
	add := m.NodeCost(egraph.ENode{Op: expr.OpAdd}, []ChildInfo{lit(0), lit(0)})
	div := m.NodeCost(egraph.ENode{Op: expr.OpDiv}, []ChildInfo{lit(0), lit(1)})
	vadd := m.NodeCost(egraph.ENode{Op: expr.OpVecAdd}, nil)
	vdiv := m.NodeCost(egraph.ENode{Op: expr.OpVecDiv}, nil)
	if div <= add || vdiv <= vadd {
		t.Fatal("division should cost more than addition")
	}
}

func TestAllOpsStrictlyPositive(t *testing.T) {
	// Strict monotonicity requires every node's own cost to be positive.
	m := Diospyros{Width: 4}
	for op := expr.Op(0); op < expr.NumOps; op++ {
		n := egraph.ENode{Op: op}
		var children []ChildInfo
		switch expr.Arity(op) {
		case 1:
			children = []ChildInfo{lit(1)}
		case 2:
			children = []ChildInfo{lit(1), lit(1)}
		case 3:
			children = []ChildInfo{lit(1), lit(1), lit(1)}
		}
		if c := m.NodeCost(n, children); c <= 0 {
			t.Errorf("op %s has non-positive cost %g", op, c)
		}
	}
}

func TestScalarOnlyForbidsVectors(t *testing.T) {
	m := ScalarOnly{}
	if c := m.NodeCost(egraph.ENode{Op: expr.OpVecAdd}, nil); c < Forbidden {
		t.Fatalf("VecAdd allowed by ScalarOnly (cost %g)", c)
	}
	if c := m.NodeCost(egraph.ENode{Op: expr.OpAdd}, []ChildInfo{lit(0), lit(0)}); c >= Forbidden {
		t.Fatalf("scalar add forbidden by ScalarOnly (cost %g)", c)
	}
	// List is the scalar program container and must stay allowed.
	if c := m.NodeCost(egraph.ENode{Op: expr.OpList}, nil); c >= Forbidden {
		t.Fatal("List forbidden by ScalarOnly")
	}
}

func TestOverrides(t *testing.T) {
	base := Diospyros{Width: 4}
	m := Overrides{Base: base, PerOp: map[string]float64{
		"VecDiv":        100,
		"func:recip":    0.25,
		"VecFunc:recip": 0.5,
	}}.WithSyms(testSymName)
	if c := m.NodeCost(egraph.ENode{Op: expr.OpVecDiv}, nil); c != 100 {
		t.Fatalf("VecDiv override = %g", c)
	}
	if c := m.NodeCost(egraph.ENode{Op: expr.OpFunc, Sym: testSym("recip")}, nil); c != 0.25 {
		t.Fatalf("func:recip override = %g", c)
	}
	if c := m.NodeCost(egraph.ENode{Op: expr.OpVecFunc, Sym: testSym("recip")}, nil); c != 0.5 {
		t.Fatalf("VecFunc:recip override = %g", c)
	}
	// Other functions and ops fall through to the base model.
	if c := m.NodeCost(egraph.ENode{Op: expr.OpFunc, Sym: testSym("other")}, nil); c == 0.25 {
		t.Fatal("override leaked to a different function")
	}
	if c := m.NodeCost(egraph.ENode{Op: expr.OpVecAdd}, nil); c != base.NodeCost(egraph.ENode{Op: expr.OpVecAdd}, nil) {
		t.Fatal("non-overridden op changed")
	}
}

func TestClassifyVecSplatOfGet(t *testing.T) {
	// Repeated identical Gets are a single-array gather, not contiguous.
	mc, _ := ClassifyVec([]ChildInfo{get("a", 2), get("a", 2), get("a", 2), get("a", 2)})
	if mc != MoveSingleArray {
		t.Fatalf("splat-like Vec classified as %v", mc)
	}
}
