// Package cost defines the abstract cost model used to extract an efficient
// program from the saturated e-graph (paper §3.4).
//
// The model must be strictly monotonic — every node contributes positive
// cost on top of the sum of its children — which keeps extraction linear in
// the number of e-nodes. Data movement is priced abstractly: a Vec whose
// lanes gather from a single input array (or zeros) is cheaper than one that
// gathers across arrays, which in turn is cheaper than one that needs
// scalar computation inserted into lanes. This mirrors the Fusion G3's
// fast single-register shuffle vs. two-register select vs. scalar insert.
package cost

import (
	"math"

	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/isa"
)

// ChildInfo describes the currently chosen best implementation of a child
// e-class during extraction, letting the model classify data movement.
type ChildInfo struct {
	Cost float64
	Node egraph.ENode
}

// Model prices a single e-node given its children's chosen implementations.
// The returned value is the node's own cost, excluding children (which the
// extractor sums separately); it must be strictly positive.
type Model interface {
	NodeCost(n egraph.ENode, children []ChildInfo) float64
}

// MovementClass classifies how a Vec literal's lanes can be materialized.
type MovementClass int

const (
	// MoveLiteral: every lane is a literal constant (one constant vector).
	MoveLiteral MovementClass = iota
	// MoveContiguous: lanes are consecutive elements of one array.
	MoveContiguous
	// MoveSingleArray: lanes gather arbitrarily from one array (or zeros);
	// one shuffle after loading.
	MoveSingleArray
	// MoveTwoArrays: lanes gather from two arrays/windows; one select.
	MoveTwoArrays
	// MoveManyArrays: lanes gather from three or more arrays; nested selects.
	MoveManyArrays
	// MoveScalarLanes: at least one lane requires scalar computation
	// inserted into the vector.
	MoveScalarLanes
)

// ClassifyVec determines the movement class of a Vec node from its chosen
// child nodes, plus the number of scalar-computed lanes.
func ClassifyVec(children []ChildInfo) (MovementClass, int) {
	arrays := map[egraph.SymID]bool{}
	scalarLanes := 0
	allLit := true
	contiguous := true
	var firstArr egraph.SymID
	firstIdx, haveFirst := 0, false
	for i, c := range children {
		switch c.Node.Op {
		case expr.OpLit:
			contiguous = false
		case expr.OpGet:
			allLit = false
			arrays[c.Node.Sym] = true
			if !haveFirst {
				firstArr, firstIdx, haveFirst = c.Node.Sym, c.Node.Idx, true
				if i != 0 {
					contiguous = false
				}
			} else if c.Node.Sym != firstArr || c.Node.Idx != firstIdx+i {
				contiguous = false
			}
		default:
			allLit = false
			contiguous = false
			scalarLanes++
		}
	}
	switch {
	case scalarLanes > 0:
		return MoveScalarLanes, scalarLanes
	case allLit:
		return MoveLiteral, 0
	case contiguous && len(arrays) == 1 && haveFirst && firstIdx%len(children) == 0:
		return MoveContiguous, 0
	case len(arrays) <= 1:
		return MoveSingleArray, 0
	case len(arrays) == 2:
		return MoveTwoArrays, 0
	default:
		return MoveManyArrays, 0
	}
}

// Diospyros is the default cost model, with weights chosen so that a fully
// vectorized kernel with cheap shuffles beats its scalar form, while heavy
// cross-array gathers or scalar-insert lanes can lose to scalar code.
//
// The zero value prices with the package-default weights and accepts Vec
// nodes of any width. ForTarget derives a model from an isa.Target, which
// is how multi-target extraction prices the same saturated e-graph
// differently per machine.
type Diospyros struct {
	// Width, when positive, is load-bearing: a Vec node whose lane count
	// differs from Width costs +Inf, so extraction can never choose a
	// decomposition chunked for another machine. With several chunk widths
	// coexisting in one e-graph (rules.Config.Widths), this is what makes
	// per-target extraction pick the right one. Zero accepts any width.
	Width int

	// Per-target weight overrides; zero means the package default. See
	// ForTarget for how an isa.Target's latencies and shuffle capabilities
	// map onto them.
	ShuffleWeight float64 // MoveSingleArray Vec (default VecShuffleCost)
	SelectWeight  float64 // MoveTwoArrays Vec (default VecSelectCost)
	ManyWeight    float64 // MoveManyArrays Vec (default VecManyCost)
	DivWeight     float64 // VecDiv multiplier on VectorOpCost (default 2)
	SqrtWeight    float64 // VecSqrt multiplier on VectorOpCost (default 2)
}

// Default weights. Scalar arithmetic costs 1 per operation; vector
// arithmetic costs 1 for Width lanes of work, which is the vectorization
// incentive. Vec construction is priced by movement class.
const (
	LeafCost        = 0.01
	ScalarOpCost    = 1.0
	VectorOpCost    = 1.0
	ListCost        = 0.1
	ConcatCost      = 0.1
	VecLiteralCost  = 0.5
	VecContigCost   = 0.6
	VecShuffleCost  = 1.6
	VecSelectCost   = 2.6
	VecManyCost     = 4.6
	VecScalarLane   = 3.0 // per scalar-computed lane, on top of VecManyCost
	UninterpPenalty = 2.0
	// ScalarLoadCost is charged to a scalar operation per Get operand: a
	// scalar op must load its own elements one by one, whereas the lanes
	// of a Vec are covered by that Vec's movement-class cost.
	ScalarLoadCost = 0.5
)

var _ Model = Diospyros{}

// weight returns override when positive, else the package default.
func weight(override, def float64) float64 {
	if override > 0 {
		return override
	}
	return def
}

// NodeCost implements Model.
func (d Diospyros) NodeCost(n egraph.ENode, children []ChildInfo) float64 {
	switch n.Op {
	case expr.OpLit, expr.OpSym, expr.OpGet:
		return LeafCost
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpNeg, expr.OpSgn:
		return ScalarOpCost + loadCharge(children)
	case expr.OpDiv, expr.OpSqrt:
		return ScalarOpCost*2 + loadCharge(children) // long-latency scalar ops
	case expr.OpFunc:
		return ScalarOpCost*UninterpPenalty + loadCharge(children)
	case expr.OpList:
		return ListCost
	case expr.OpConcat:
		return ConcatCost
	case expr.OpVec:
		if d.Width > 0 && len(children) != d.Width {
			// Wrong lane count for this machine: unextractable. The
			// extractor discards +Inf candidates, which prunes the whole
			// decomposition built on this Vec.
			return math.Inf(1)
		}
		mc, scalarLanes := ClassifyVec(children)
		switch mc {
		case MoveLiteral:
			return VecLiteralCost
		case MoveContiguous:
			return VecContigCost
		case MoveSingleArray:
			return weight(d.ShuffleWeight, VecShuffleCost)
		case MoveTwoArrays:
			return weight(d.SelectWeight, VecSelectCost)
		case MoveManyArrays:
			return weight(d.ManyWeight, VecManyCost)
		default:
			return weight(d.ManyWeight, VecManyCost) + VecScalarLane*float64(scalarLanes)
		}
	case expr.OpVecAdd, expr.OpVecMinus, expr.OpVecMul, expr.OpVecMAC,
		expr.OpVecNeg, expr.OpVecSgn:
		return VectorOpCost
	case expr.OpVecDiv:
		return VectorOpCost * weight(d.DivWeight, 2)
	case expr.OpVecSqrt:
		return VectorOpCost * weight(d.SqrtWeight, 2)
	case expr.OpVecFunc:
		return VectorOpCost * UninterpPenalty
	}
	return ScalarOpCost
}

// ForTarget derives the extraction cost model for a machine descriptor:
// scalar targets get the vector-forbidding model; vector targets get a
// width-gated Diospyros whose movement weights scale with the target's
// shuffle/select latencies and whose long-op multipliers follow its VDiv
// and VSqrt latencies. A machine without a single-register shuffle prices
// single-array gathers like selects; one without a two-register select
// prices any cross-register gather near the scalar-insert ceiling.
// ForTarget(isa.Default()) reproduces the package-default weights exactly.
func ForTarget(t *isa.Target) Model {
	if t.IsScalar() {
		return ScalarOnly{}
	}
	d := Diospyros{
		Width:         t.Width,
		ShuffleWeight: VecShuffleCost * float64(t.LatencyOf(isa.VShfl)),
		SelectWeight:  VecSelectCost * float64(t.LatencyOf(isa.VSel)),
		ManyWeight:    VecManyCost * float64(t.LatencyOf(isa.VSel)),
		DivWeight:     float64(t.LatencyOf(isa.VDiv)) / 5,
		SqrtWeight:    float64(t.LatencyOf(isa.VSqrt)) / 7,
	}
	if !t.ShuffleCaps.SingleRegister {
		d.ShuffleWeight = d.SelectWeight
	}
	if !t.ShuffleCaps.TwoRegister {
		d.SelectWeight = VecManyCost * 2
		d.ManyWeight = VecManyCost * 3
	}
	return d
}

// loadCharge prices the scalar loads implied by Get operands of a scalar
// operation.
func loadCharge(children []ChildInfo) float64 {
	c := 0.0
	for _, ch := range children {
		if ch.Node.Op == expr.OpGet {
			c += ScalarLoadCost
		}
	}
	return c
}

// NeedsSyms is implemented by models whose pricing depends on symbol
// payloads. Since the data-layout overhaul (DESIGN.md §14) an e-node
// carries an interned SymID, not the symbol string, so such models must be
// bound to the graph's resolver before pricing; extraction does this
// automatically (extract.New).
type NeedsSyms interface {
	// WithSyms returns the model bound to a resolver from interned symbol
	// IDs back to names. The receiver is not mutated.
	WithSyms(resolve func(egraph.SymID) string) Model
}

// Overrides wraps a base model with per-operator cost replacements, keyed
// by the DSL operator head symbol ("VecDiv", "/", "sqrt", ...). Calls to
// user-defined functions can be priced per function with "func:NAME" and
// "VecFunc:NAME" keys — the hook a designer uses to tell the extraction
// engine that a target-specific instruction (e.g. a fast reciprocal, §6)
// is cheap. Function-name keys require the graph's symbol resolver
// (NeedsSyms); unbound, they are inert and only operator-head keys apply.
type Overrides struct {
	Base    Model
	PerOp   map[string]float64
	resolve func(egraph.SymID) string
}

var _ Model = Overrides{}
var _ NeedsSyms = Overrides{}

// WithSyms implements NeedsSyms, activating "func:NAME"/"VecFunc:NAME"
// keys against the graph the resolver belongs to. The binding is forwarded
// to the base model when it needs symbols too.
func (o Overrides) WithSyms(resolve func(egraph.SymID) string) Model {
	o.resolve = resolve
	if b, ok := o.Base.(NeedsSyms); ok {
		o.Base = b.WithSyms(resolve)
	}
	return o
}

// NodeCost implements Model.
func (o Overrides) NodeCost(n egraph.ENode, children []ChildInfo) float64 {
	if len(o.PerOp) > 0 {
		if n.Op == expr.OpFunc && o.resolve != nil {
			if c, ok := o.PerOp["func:"+o.resolve(n.Sym)]; ok {
				return c
			}
		}
		if n.Op == expr.OpVecFunc && o.resolve != nil {
			if c, ok := o.PerOp["VecFunc:"+o.resolve(n.Sym)]; ok {
				return c
			}
		}
		if c, ok := o.PerOp[n.Op.String()]; ok {
			return c
		}
	}
	return o.Base.NodeCost(n, children)
}

// ScalarOnly is a cost model that forbids vector operations entirely; it is
// used by the §5.6 ablation (vector rewriting disabled) and by tests.
type ScalarOnly struct{}

var _ Model = ScalarOnly{}

// Forbidden is a node cost large enough that extraction never chooses the
// node unless no alternative exists.
const Forbidden = 1e12

// NodeCost implements Model.
func (ScalarOnly) NodeCost(n egraph.ENode, children []ChildInfo) float64 {
	if n.Op.IsVector() && n.Op != expr.OpList {
		return Forbidden
	}
	return Diospyros{}.NodeCost(n, children)
}
