package sim

import (
	"strings"
	"testing"

	"diospyros/internal/isa"
)

// checkProfile asserts the profiler's two reconciliation invariants and
// that the per-opcode counts match the result's dynamic mix.
func checkProfile(t *testing.T, res *Result) {
	t.Helper()
	p := res.Profile
	if p == nil {
		t.Fatal("Result.Profile is nil")
	}
	if err := p.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if p.Cycles != res.Cycles {
		t.Fatalf("Profile.Cycles = %d, Result.Cycles = %d", p.Cycles, res.Cycles)
	}
	got := map[string]int64{}
	for _, o := range p.PerOp {
		got[o.Op] = o.Count
	}
	for op, n := range res.OpCounts {
		if got[op.String()] != n {
			t.Fatalf("PerOp[%s] = %d, OpCounts = %d", op, got[op.String()], n)
		}
	}
}

func TestProfileLoopBreakdown(t *testing.T) {
	// A counted loop: taken branches every iteration (bubbles) and a
	// load→use→store dependency chain (operand stalls).
	lay := isa.NewLayout()
	lay.Add("a", 8)
	lay.Add("out", 8)
	b := isa.NewBuilder("profloop", lay)
	base, i, n, ptr := b.IReg(), b.IReg(), b.IReg(), b.IReg()
	tmp := b.FReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: i, IImm: 0})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: n, IImm: 8})
	b.Label("loop")
	b.Emit(isa.Instr{Op: isa.BrGE, A: i, B: n, Target: "done"})
	b.Emit(isa.Instr{Op: isa.IAdd, Dst: ptr, A: base, B: i})
	b.Emit(isa.Instr{Op: isa.SLoad, Dst: tmp, A: ptr, IImm: 0})
	b.Emit(isa.Instr{Op: isa.SMul, Dst: tmp, A: tmp, B: tmp})
	b.Emit(isa.Instr{Op: isa.SStore, A: ptr, IImm: 8, B: tmp})
	b.Emit(isa.Instr{Op: isa.IAddI, Dst: i, A: i, IImm: 1})
	b.Emit(isa.Instr{Op: isa.Jmp, Target: "loop"})
	b.Label("done")

	res := run(t, b, make([]float64, 16), Config{})
	checkProfile(t, res)
	p := res.Profile

	if p.BranchBubble == 0 {
		t.Error("loop produced no branch bubbles")
	}
	if p.OperandStall == 0 {
		t.Error("load→use chain produced no operand stalls")
	}
	var ctrl SlotProfile
	for _, s := range p.Slots {
		if s.Slot == "ctrl" {
			ctrl = s
		}
	}
	// 8 taken backward jumps + 9 branch tests (8 not-taken + 1 taken).
	if ctrl.Issued != 17 {
		t.Errorf("ctrl slot issued = %d, want 17", ctrl.Issued)
	}
}

func TestProfileMemoryStall(t *testing.T) {
	// A load issued right behind a store waits for the store barrier; the
	// wait must land in MemoryStall, not OperandStall.
	lay := isa.NewLayout()
	lay.Add("a", 2)
	b := isa.NewBuilder("membar", lay)
	base := b.IReg()
	f0, f1 := b.FReg(), b.FReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
	b.Emit(isa.Instr{Op: isa.SConst, Dst: f0, Imm: 7})
	b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 0, B: f0})
	b.Emit(isa.Instr{Op: isa.SLoad, Dst: f1, A: base, IImm: 0})
	res := run(t, b, make([]float64, 2), Config{})
	checkProfile(t, res)
	if res.Profile.MemoryStall == 0 {
		t.Error("load behind store barrier produced no memory stall")
	}
}

func TestProfileDualIssuePairing(t *testing.T) {
	// An independent load (MEM slot) and const (ALU slot) can share a
	// cycle under dual issue; single issue forbids it.
	build := func() *isa.Builder {
		lay := isa.NewLayout()
		lay.Add("a", 4)
		b := isa.NewBuilder("pair", lay)
		base := b.IReg()
		f0, f1 := b.FReg(), b.FReg()
		b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
		b.Emit(isa.Instr{Op: isa.SLoad, Dst: f0, A: base, IImm: 0})
		b.Emit(isa.Instr{Op: isa.SConst, Dst: f1, Imm: 3})
		return b
	}
	dual := run(t, build(), make([]float64, 4), Config{DualIssue: true})
	checkProfile(t, dual)
	if dual.Profile.DualIssued == 0 {
		t.Error("independent MEM+ALU ops did not pair under dual issue")
	}
	single := run(t, build(), make([]float64, 4), Config{DualIssue: false})
	checkProfile(t, single)
	if single.Profile.DualIssued != 0 {
		t.Errorf("single-issue machine paired %d instructions", single.Profile.DualIssued)
	}
	if single.Cycles <= dual.Cycles {
		t.Errorf("single-issue (%d cycles) not slower than dual (%d)", single.Cycles, dual.Cycles)
	}
}

func TestProfileHotspotsAndFormat(t *testing.T) {
	p := &Profile{
		PerOp: []OpProfile{
			{Op: "vadd", Count: 4, Cycles: 4},
			{Op: "vmac", Count: 9, Cycles: 9},
			{Op: "sload", Count: 2, Cycles: 9}, // ties with vmac; name breaks it
		},
		Cycles: 23,
	}
	hs := p.Hotspots(2)
	if len(hs) != 2 || hs[0].Op != "sload" || hs[1].Op != "vmac" {
		t.Fatalf("Hotspots(2) = %+v, want [sload vmac]", hs)
	}
	if hs := p.Hotspots(0); len(hs) != 3 {
		t.Fatalf("Hotspots(0) = %d entries, want all 3", len(hs))
	}
	out := p.Format(2)
	if !strings.Contains(out, "sload") || strings.Contains(out, "vadd") {
		t.Fatalf("Format(2) should keep the top 2 ops only:\n%s", out)
	}
}

func TestSimLoadOutOfBounds(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("a", 2)
	b := isa.NewBuilder("oob", lay)
	base := b.IReg()
	f := b.FReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
	b.Emit(isa.Instr{Op: isa.SLoad, Dst: f, A: base, IImm: 5})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, make([]float64, 2), Config{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-bounds load: err = %v, want out-of-range", err)
	}
}

func TestSimStoreOutOfBounds(t *testing.T) {
	p := &isa.Program{Name: "oob-store", Instrs: []isa.Instr{
		{Op: isa.IConst, Dst: 0, IImm: -1},
		{Op: isa.SStore, A: 0, IImm: 0, B: 0},
		{Op: isa.Halt},
	}}
	_, err := Run(p, make([]float64, 2), Config{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("negative store address: err = %v, want out-of-range", err)
	}
}

func TestSimUnknownOpcode(t *testing.T) {
	p := &isa.Program{Name: "bad-op", Instrs: []isa.Instr{
		{Op: isa.NumOpcodes},
		{Op: isa.Halt},
	}}
	_, err := Run(p, make([]float64, 1), Config{})
	if err == nil || !strings.Contains(err.Error(), "unimplemented opcode") {
		t.Fatalf("unknown opcode: err = %v, want unimplemented-opcode", err)
	}
}

func TestSimVectorRegisterOutOfBounds(t *testing.T) {
	// A VMov from a register index beyond the configured file.
	p := &isa.Program{Name: "bad-reg", Instrs: []isa.Instr{
		{Op: isa.VMov, Dst: 0, A: 9},
		{Op: isa.Halt},
	}}
	_, err := Run(p, make([]float64, 1), Config{VRegs: 2, FRegs: 1, IRegs: 1})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("register index: err = %v, want out-of-range", err)
	}
}
