package sim

import (
	"fmt"
	"math"

	"diospyros/internal/expr"
	"diospyros/internal/isa"
)

// exec executes one instruction, returning the next pc.
func (m *machine) exec(pc int, in *isa.Instr) (int, error) {
	lat := int64(1)
	if in.Op < isa.NumOpcodes {
		lat = m.lat[in.Op] // per-target latency (Target.LatencyOf)
	}
	switch in.Op {
	case isa.SConst:
		at := m.issue(in, 0)
		return pc + 1, m.setF(in.Dst, in.Imm, at+lat)
	case isa.SMov:
		a, r, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		return pc + 1, m.setF(in.Dst, a, at+lat)
	case isa.SLoad:
		base, r, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		addr := base + in.IImm
		if err := m.checkAddr(addr, 1); err != nil {
			return 0, err
		}
		at := m.issueMem(in, r, m.memReady)
		return pc + 1, m.setF(in.Dst, m.mem[addr], at+lat)
	case isa.SStore:
		base, r1, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		v, r2, err := m.fr(in.B)
		if err != nil {
			return 0, err
		}
		addr := base + in.IImm
		if err := m.checkAddr(addr, 1); err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r1, r2))
		m.mem[addr] = v
		m.memReady = max64(m.memReady, at+lat)
		return pc + 1, nil
	case isa.SAdd, isa.SSub, isa.SMul, isa.SDiv:
		a, r1, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.fr(in.B)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r1, r2))
		var v float64
		switch in.Op {
		case isa.SAdd:
			v = a + b
		case isa.SSub:
			v = a - b
		case isa.SMul:
			v = a * b
		default:
			v = a / b
		}
		return pc + 1, m.setF(in.Dst, v, at+lat)
	case isa.SNeg, isa.SSqrt, isa.SSgn, isa.SAbs:
		a, r, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		var v float64
		switch in.Op {
		case isa.SNeg:
			v = -a
		case isa.SSqrt:
			v = math.Sqrt(a)
		case isa.SSgn:
			v = expr.Sign(a)
		default:
			v = math.Abs(a)
		}
		return pc + 1, m.setF(in.Dst, v, at+lat)

	case isa.IConst:
		at := m.issue(in, 0)
		return pc + 1, m.setI(in.Dst, in.IImm, at+lat)
	case isa.ILoad:
		base, r, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		addr := base + in.IImm
		if err := m.checkAddr(addr, 1); err != nil {
			return 0, err
		}
		at := m.issueMem(in, r, m.memReady)
		return pc + 1, m.setI(in.Dst, int(m.mem[addr]), at+lat)
	case isa.IMov:
		a, r, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		return pc + 1, m.setI(in.Dst, a, at+lat)
	case isa.IAdd, isa.ISub, isa.IMul, isa.IDiv, isa.IMod:
		a, r1, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.ir(in.B)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r1, r2))
		var v int
		switch in.Op {
		case isa.IAdd:
			v = a + b
		case isa.ISub:
			v = a - b
		case isa.IMul:
			v = a * b
		case isa.IDiv:
			if b == 0 {
				return 0, fmt.Errorf("integer division by zero")
			}
			v = a / b
		default:
			if b == 0 {
				return 0, fmt.Errorf("integer modulo by zero")
			}
			v = a % b
		}
		return pc + 1, m.setI(in.Dst, v, at+lat)
	case isa.IAddI, isa.IMulI:
		a, r, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		v := a + in.IImm
		if in.Op == isa.IMulI {
			v = a * in.IImm
		}
		return pc + 1, m.setI(in.Dst, v, at+lat)

	case isa.Jmp:
		m.issue(in, 0)
		m.cycle++ // taken-branch bubble
		m.prof.branchBubble++
		return m.prog.Labels[in.Target], nil
	case isa.BrLT, isa.BrGE, isa.BrEQ, isa.BrNE:
		a, r1, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.ir(in.B)
		if err != nil {
			return 0, err
		}
		m.issue(in, max64(r1, r2))
		var taken bool
		switch in.Op {
		case isa.BrLT:
			taken = a < b
		case isa.BrGE:
			taken = a >= b
		case isa.BrEQ:
			taken = a == b
		default:
			taken = a != b
		}
		if taken {
			m.cycle++
			m.prof.branchBubble++
			return m.prog.Labels[in.Target], nil
		}
		return pc + 1, nil
	case isa.BrLTF, isa.BrGEF:
		a, r1, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.fr(in.B)
		if err != nil {
			return 0, err
		}
		m.issue(in, max64(r1, r2))
		taken := a < b
		if in.Op == isa.BrGEF {
			taken = a >= b
		}
		if taken {
			m.cycle++
			m.prof.branchBubble++
			return m.prog.Labels[in.Target], nil
		}
		return pc + 1, nil

	case isa.CallFn:
		fn, ok := m.cfg.Funcs[in.Sym]
		if !ok {
			return 0, fmt.Errorf("no semantics for function %q", in.Sym)
		}
		args := make([]float64, len(in.Args))
		var ready int64
		for i, reg := range in.Args {
			v, r, err := m.fr(reg)
			if err != nil {
				return 0, err
			}
			args[i] = v
			ready = max64(ready, r)
		}
		at := m.issue(in, ready)
		return pc + 1, m.setF(in.Dst, fn(args), at+lat)

	case isa.VConst:
		if len(in.Vals) != m.w {
			return 0, fmt.Errorf("vconst needs %d values, got %d", m.w, len(in.Vals))
		}
		at := m.issue(in, 0)
		v := make([]float64, m.w)
		copy(v, in.Vals)
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VMov:
		a, r, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		return pc + 1, m.setV(in.Dst, append([]float64(nil), a...), at+lat)
	case isa.VBcast:
		a, r, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		v := make([]float64, m.w)
		for i := range v {
			v[i] = a
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VLoad:
		base, r, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		addr := base + in.IImm
		if err := m.checkAddr(addr, m.w); err != nil {
			return 0, err
		}
		at := m.issueMem(in, r, m.memReady)
		v := make([]float64, m.w)
		copy(v, m.mem[addr:addr+m.w])
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VStore, isa.VStoreN:
		base, r1, err := m.ir(in.A)
		if err != nil {
			return 0, err
		}
		v, r2, err := m.vr(in.B)
		if err != nil {
			return 0, err
		}
		n := m.w
		if in.Op == isa.VStoreN {
			n = in.IImm2
			if n < 1 || n > m.w {
				return 0, fmt.Errorf("vstoren lane count %d out of range", n)
			}
		}
		addr := base + in.IImm
		if err := m.checkAddr(addr, n); err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r1, r2))
		copy(m.mem[addr:addr+n], v[:n])
		m.memReady = max64(m.memReady, at+lat)
		return pc + 1, nil
	case isa.VInsert:
		a, r1, err := m.fr(in.A)
		if err != nil {
			return 0, err
		}
		cur, r2, err := m.vr(in.Dst)
		if err != nil {
			return 0, err
		}
		if in.IImm < 0 || in.IImm >= m.w {
			return 0, fmt.Errorf("vinsert lane %d out of range", in.IImm)
		}
		at := m.issue(in, max64(r1, r2))
		v := append([]float64(nil), cur...)
		v[in.IImm] = a
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VExtract:
		a, r, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		if in.IImm < 0 || in.IImm >= m.w {
			return 0, fmt.Errorf("vextract lane %d out of range", in.IImm)
		}
		at := m.issue(in, r)
		return pc + 1, m.setF(in.Dst, a[in.IImm], at+lat)
	case isa.VShfl:
		a, r, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		if len(in.Idx) != m.w {
			return 0, fmt.Errorf("vshfl needs %d indices", m.w)
		}
		at := m.issue(in, r)
		v := make([]float64, m.w)
		for k, idx := range in.Idx {
			if idx < 0 || idx >= m.w {
				return 0, fmt.Errorf("vshfl index %d out of range", idx)
			}
			v[k] = a[idx]
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VSel:
		a, r1, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.vr(in.B)
		if err != nil {
			return 0, err
		}
		if len(in.Idx) != m.w {
			return 0, fmt.Errorf("vsel needs %d indices", m.w)
		}
		at := m.issue(in, max64(r1, r2))
		v := make([]float64, m.w)
		for k, idx := range in.Idx {
			switch {
			case idx >= 0 && idx < m.w:
				v[k] = a[idx]
			case idx >= m.w && idx < 2*m.w:
				v[k] = b[idx-m.w]
			default:
				return 0, fmt.Errorf("vsel index %d out of range", idx)
			}
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VAdd, isa.VSub, isa.VMul, isa.VDiv:
		a, r1, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.vr(in.B)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r1, r2))
		v := make([]float64, m.w)
		for k := 0; k < m.w; k++ {
			switch in.Op {
			case isa.VAdd:
				v[k] = a[k] + b[k]
			case isa.VSub:
				v[k] = a[k] - b[k]
			case isa.VMul:
				v[k] = a[k] * b[k]
			default:
				v[k] = a[k] / b[k]
			}
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VMac:
		acc, r0, err := m.vr(in.Dst)
		if err != nil {
			return 0, err
		}
		a, r1, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		b, r2, err := m.vr(in.B)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, max64(r0, max64(r1, r2)))
		v := append([]float64(nil), acc...)
		for k := 0; k < m.w; k++ {
			v[k] += a[k] * b[k]
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VNeg, isa.VSqrt, isa.VSgn:
		a, r, err := m.vr(in.A)
		if err != nil {
			return 0, err
		}
		at := m.issue(in, r)
		v := make([]float64, m.w)
		for k := 0; k < m.w; k++ {
			switch in.Op {
			case isa.VNeg:
				v[k] = -a[k]
			case isa.VSqrt:
				v[k] = math.Sqrt(a[k])
			default:
				v[k] = expr.Sign(a[k])
			}
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	case isa.VCallFn:
		fn, ok := m.cfg.Funcs[in.Sym]
		if !ok {
			return 0, fmt.Errorf("no semantics for function %q", in.Sym)
		}
		var ready int64
		vals := make([][]float64, len(in.Args))
		for i, reg := range in.Args {
			v, r, err := m.vr(reg)
			if err != nil {
				return 0, err
			}
			vals[i] = v
			ready = max64(ready, r)
		}
		at := m.issue(in, ready)
		v := make([]float64, m.w)
		for k := 0; k < m.w; k++ {
			args := make([]float64, len(vals))
			for i := range vals {
				args[i] = vals[i][k]
			}
			v[k] = fn(args)
		}
		return pc + 1, m.setV(in.Dst, v, at+lat)
	}
	return 0, fmt.Errorf("unimplemented opcode %s", in.Op)
}
