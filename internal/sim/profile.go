package sim

import (
	"fmt"
	"sort"
	"strings"

	"diospyros/internal/isa"
)

// Cycle profiler: the scoreboard attributes every cycle the machine
// advances to exactly one cause, so the breakdown reconciles with the total
// cycle count (asserted in tests and usable for regression gates):
//
//	Cycles = 1 + operand stalls + memory stalls + slot issue cycles
//	           + branch bubbles
//
// Per-instruction, the advance decomposes as: waiting for source registers
// (operand-not-ready), waiting for an outstanding store to commit
// (memory-port busy), opening a new cycle because the instruction's issue
// slot was occupied (per-slot issue cycles — for a dual-issue machine this
// is the serial-issue cost), and the one-cycle taken-branch bubble.
// Instructions that slip into an already-open cycle (dual issue) advance
// nothing and are counted as paired.

// OpProfile aggregates the cycles attributed to one opcode.
type OpProfile struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Cycles int64  `json:"cycles"` // cycles this opcode advanced the machine
	Stall  int64  `json:"stall"`  // of Cycles: operand + memory stalls
}

// SlotProfile aggregates one VLIW issue slot.
type SlotProfile struct {
	Slot   string `json:"slot"`
	Issued int64  `json:"issued"` // instructions issued into the slot
	Cycles int64  `json:"cycles"` // new cycles opened because the slot was busy
}

// Profile is the per-run cycle attribution (Result.Profile).
type Profile struct {
	PerOp []OpProfile   `json:"per_op"` // executed opcodes, in opcode order
	Slots []SlotProfile `json:"slots"`  // mem, alu, ctrl

	OperandStall int64 `json:"operand_stall_cycles"` // source register not ready
	MemoryStall  int64 `json:"memory_stall_cycles"`  // outstanding store (memory port busy)
	BranchBubble int64 `json:"branch_bubble_cycles"` // taken-branch bubbles
	DualIssued   int64 `json:"dual_issued"`          // instructions paired into an open cycle

	Cycles int64 `json:"cycles"` // total, mirrors Result.Cycles
}

// SlotCycles sums the per-slot issue cycles.
func (p *Profile) SlotCycles() int64 {
	var n int64
	for _, s := range p.Slots {
		n += s.Cycles
	}
	return n
}

// StallCycles sums the cycles lost to stalls and bubbles (everything that
// is not serial issue).
func (p *Profile) StallCycles() int64 {
	return p.OperandStall + p.MemoryStall + p.BranchBubble
}

// CheckSum verifies the attribution invariant: all categories plus the
// startup cycle equal the total. A non-nil error means the profiler and
// the scoreboard disagree — a simulator bug.
func (p *Profile) CheckSum() error {
	sum := 1 + p.OperandStall + p.MemoryStall + p.BranchBubble + p.SlotCycles()
	if sum != p.Cycles {
		return fmt.Errorf("sim: profile breakdown %d != total cycles %d (operand %d + memory %d + bubble %d + slots %d + 1)",
			sum, p.Cycles, p.OperandStall, p.MemoryStall, p.BranchBubble, p.SlotCycles())
	}
	var perOp int64
	for _, o := range p.PerOp {
		perOp += o.Cycles
	}
	if perOp+1 != p.Cycles {
		return fmt.Errorf("sim: per-opcode cycles %d + 1 != total cycles %d", perOp, p.Cycles)
	}
	return nil
}

// Hotspots returns the top-n opcodes by attributed cycles, descending
// (ties broken by opcode name for determinism).
func (p *Profile) Hotspots(n int) []OpProfile {
	out := append([]OpProfile(nil), p.PerOp...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Op < out[j].Op
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Format renders the profile as the top-n hotspot table plus the stall and
// slot breakdown (the diosbench -profile view).
func (p *Profile) Format(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %7s\n", "op", "count", "cycles", "stall", "share")
	for _, o := range p.Hotspots(n) {
		share := 0.0
		if p.Cycles > 0 {
			share = 100 * float64(o.Cycles) / float64(p.Cycles)
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %6.1f%%\n", o.Op, o.Count, o.Cycles, o.Stall, share)
	}
	for _, s := range p.Slots {
		fmt.Fprintf(&b, "slot %-5s %10d issued %6d cycles\n", s.Slot, s.Issued, s.Cycles)
	}
	fmt.Fprintf(&b, "stalls: operand %d, memory %d, branch bubbles %d; dual-issued %d of %d cycles total\n",
		p.OperandStall, p.MemoryStall, p.BranchBubble, p.DualIssued, p.Cycles)
	return b.String()
}

// counters is the machine's in-flight profiling state; arrays indexed by
// opcode and slot keep the per-instruction cost to a few increments.
type counters struct {
	opCount  [isa.NumOpcodes]int64
	opCycles [isa.NumOpcodes]int64
	opStall  [isa.NumOpcodes]int64

	slotIssued [3]int64 // indexed by isa.Slot
	slotCycles [3]int64

	operandStall int64
	memoryStall  int64
	branchBubble int64
	dualIssued   int64
}

var slotNames = [3]string{isa.SlotALU: "alu", isa.SlotMem: "mem", isa.SlotCtrl: "ctrl"}

// finish folds the counters into the exported Profile.
func (c *counters) finish(totalCycles int64) *Profile {
	p := &Profile{
		OperandStall: c.operandStall,
		MemoryStall:  c.memoryStall,
		BranchBubble: c.branchBubble,
		DualIssued:   c.dualIssued,
		Cycles:       totalCycles,
	}
	for op := isa.Opcode(0); op < isa.NumOpcodes; op++ {
		if c.opCount[op] == 0 {
			continue
		}
		p.PerOp = append(p.PerOp, OpProfile{
			Op: op.String(), Count: c.opCount[op],
			Cycles: c.opCycles[op], Stall: c.opStall[op],
		})
	}
	for _, slot := range []isa.Slot{isa.SlotMem, isa.SlotALU, isa.SlotCtrl} {
		p.Slots = append(p.Slots, SlotProfile{
			Slot: slotNames[slot], Issued: c.slotIssued[slot], Cycles: c.slotCycles[slot],
		})
	}
	return p
}
