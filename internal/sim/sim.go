// Package sim is a deterministic cycle-level simulator for FG3-lite
// programs, standing in for the proprietary Tensilica xt-run simulator used
// in the paper's evaluation (§5.2). Like xt-run's default configuration it
// models an ideal unit-delay memory; cycle counts come from an in-order
// scoreboard with dual issue (one memory-slot plus one ALU-slot operation
// per cycle when independent), per-opcode latencies for long operations
// (divide, square root), and a one-cycle taken-branch bubble.
package sim

import (
	"fmt"
	"io"

	"diospyros/internal/isa"
)

// Config parameterizes a simulation run. The zero value gets sensible
// defaults from Defaults.
type Config struct {
	// Register file sizes. FG3-lite is generous with registers (the
	// compilers in this repo use virtual registers freely and model
	// register pressure at compile time; see DESIGN.md). When zero, each
	// file is sized to the largest register index the program names.
	FRegs, IRegs, VRegs int
	// MaxInstrs guards against runaway loops.
	MaxInstrs int64
	// DualIssue enables the MEM+ALU pairing model; disabling it makes the
	// machine strictly single-issue (used in tests and ablations).
	DualIssue bool
	// Funcs supplies semantics for uninterpreted functions (CallFn).
	Funcs map[string]func([]float64) float64
	// Trace, when non-nil, receives one line per executed instruction.
	Trace io.Writer
}

// Defaults returns the standard configuration.
func Defaults() Config {
	return Config{MaxInstrs: 200_000_000, DualIssue: true}
}

func (c Config) withDefaults(p *isa.Program) Config {
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 200_000_000
	}
	f, i, v := maxRegs(p)
	if c.FRegs == 0 {
		c.FRegs = f + 1
	}
	if c.IRegs == 0 {
		c.IRegs = i + 1
	}
	if c.VRegs == 0 {
		c.VRegs = v + 1
	}
	return c
}

// maxRegs scans the program for the largest register index per file.
func maxRegs(p *isa.Program) (f, i, v int) {
	up := func(cur *int, idx int) {
		if idx > *cur {
			*cur = idx
		}
	}
	for _, in := range p.Instrs {
		switch in.Op {
		case isa.SConst, isa.SMov, isa.SNeg, isa.SSqrt, isa.SSgn, isa.SAbs:
			up(&f, in.Dst)
			up(&f, in.A)
		case isa.SLoad:
			up(&f, in.Dst)
			up(&i, in.A)
		case isa.SStore:
			up(&i, in.A)
			up(&f, in.B)
		case isa.SAdd, isa.SSub, isa.SMul, isa.SDiv:
			up(&f, in.Dst)
			up(&f, in.A)
			up(&f, in.B)
		case isa.IConst:
			up(&i, in.Dst)
		case isa.ILoad:
			up(&i, in.Dst)
			up(&i, in.A)
		case isa.IMov, isa.IAddI, isa.IMulI:
			up(&i, in.Dst)
			up(&i, in.A)
		case isa.IAdd, isa.ISub, isa.IMul, isa.IDiv, isa.IMod:
			up(&i, in.Dst)
			up(&i, in.A)
			up(&i, in.B)
		case isa.BrLT, isa.BrGE, isa.BrEQ, isa.BrNE:
			up(&i, in.A)
			up(&i, in.B)
		case isa.BrLTF, isa.BrGEF:
			up(&f, in.A)
			up(&f, in.B)
		case isa.CallFn:
			up(&f, in.Dst)
			for _, a := range in.Args {
				up(&f, a)
			}
		case isa.VConst, isa.VMov, isa.VNeg, isa.VSqrt, isa.VSgn:
			up(&v, in.Dst)
			up(&v, in.A)
		case isa.VBcast:
			up(&v, in.Dst)
			up(&f, in.A)
		case isa.VLoad:
			up(&v, in.Dst)
			up(&i, in.A)
		case isa.VStore, isa.VStoreN:
			up(&i, in.A)
			up(&v, in.B)
		case isa.VInsert:
			up(&v, in.Dst)
			up(&f, in.A)
		case isa.VExtract:
			up(&f, in.Dst)
			up(&v, in.A)
		case isa.VShfl:
			up(&v, in.Dst)
			up(&v, in.A)
		case isa.VSel, isa.VAdd, isa.VSub, isa.VMul, isa.VDiv, isa.VMac:
			up(&v, in.Dst)
			up(&v, in.A)
			up(&v, in.B)
		case isa.VCallFn:
			up(&v, in.Dst)
			for _, a := range in.Args {
				up(&v, a)
			}
		}
	}
	return f, i, v
}

// Result reports the outcome of a simulation.
type Result struct {
	Cycles   int64
	Instrs   int64
	OpCounts map[isa.Opcode]int64 // dynamic instruction mix
	Mem      []float64            // final memory image
	// Profile attributes every cycle to an opcode, an issue slot, and a
	// stall cause; Profile.CheckSum() == nil guarantees the breakdown sums
	// to Cycles. Always populated (the counters are cheap fixed arrays).
	Profile *Profile
}

// VectorOps returns the dynamic count of vector-arithmetic operations
// (excluding loads/stores/moves), used by the expert-comparison experiment.
func (r *Result) VectorOps() int64 {
	n := int64(0)
	for op, c := range r.OpCounts {
		switch op {
		case isa.VAdd, isa.VSub, isa.VMul, isa.VDiv, isa.VMac, isa.VNeg,
			isa.VSqrt, isa.VSgn, isa.VShfl, isa.VSel:
			n += c
		}
	}
	return n
}

// machine is the architectural state. Vector registers are w-sized slices
// where w comes from the program's Target descriptor (Program.VecWidth),
// not a compile-time constant; every vector instruction validates its
// payload (VConst values, VShfl/VSel indices, VStoreN lane counts) against
// that width. Stored register slices are never mutated in place — each
// write installs a fresh slice — so aliasing through VMov is safe.
type machine struct {
	cfg  Config
	prog *isa.Program
	w    int // vector width of the program's target
	lat  [isa.NumOpcodes]int64
	f    []float64
	i    []int
	v    [][]float64
	mem  []float64

	// Scoreboard state for cycle accounting.
	cycle    int64 // earliest cycle the next instruction may issue
	fReady   []int64
	iReady   []int64
	vReady   []int64
	memReady int64 // cycle after which memory is coherent (store barrier)
	slotMem  int64 // cycle currently holding a MEM-slot issue
	slotALU  int64
	slotCtrl int64

	prof counters // cycle-attribution counters (see profile.go)
}

// Run executes the program on a copy of the given memory image.
func Run(p *isa.Program, mem []float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(p)
	m := &machine{
		cfg:     cfg,
		prog:    p,
		w:       p.VecWidth(),
		f:       make([]float64, cfg.FRegs),
		i:       make([]int, cfg.IRegs),
		v:       make([][]float64, cfg.VRegs),
		mem:     append([]float64(nil), mem...),
		fReady:  make([]int64, cfg.FRegs),
		iReady:  make([]int64, cfg.IRegs),
		vReady:  make([]int64, cfg.VRegs),
		slotMem: -1, slotALU: -1, slotCtrl: -1,
	}
	if m.w < 1 {
		return nil, fmt.Errorf("sim: program %s has vector width %d", p.Name, m.w)
	}
	for op := isa.Opcode(0); op < isa.NumOpcodes; op++ {
		m.lat[op] = int64(p.Target.LatencyOf(op))
	}
	for i := range m.v {
		m.v[i] = make([]float64, m.w)
	}
	res := &Result{OpCounts: map[isa.Opcode]int64{}}
	pc := 0
	for {
		if pc < 0 || pc >= len(p.Instrs) {
			return nil, fmt.Errorf("sim: pc %d out of range in %s", pc, p.Name)
		}
		in := &p.Instrs[pc]
		if in.Op == isa.Halt {
			break
		}
		res.Instrs++
		res.OpCounts[in.Op]++
		if in.Op < isa.NumOpcodes {
			// Out-of-range opcodes are rejected by exec below; don't let
			// the profiler's fixed-size counters index past their end.
			m.prof.opCount[in.Op]++
		}
		if res.Instrs > cfg.MaxInstrs {
			return nil, fmt.Errorf("sim: instruction budget exhausted (%d) in %s", cfg.MaxInstrs, p.Name)
		}
		cycleBefore := m.cycle
		next, err := m.exec(pc, in)
		if err != nil {
			return nil, fmt.Errorf("sim: %s pc=%d (%s): %w", p.Name, pc, in, err)
		}
		// Attribute every cycle this instruction advanced the machine —
		// stalls, issue, and any branch bubble — to its opcode.
		m.prof.opCycles[in.Op] += m.cycle - cycleBefore
		if cfg.Trace != nil {
			fmt.Fprintf(cfg.Trace, "%6d  %3d  %s\n", m.cycle, pc, in)
		}
		pc = next
	}
	res.Cycles = m.cycle + 1
	res.Mem = m.mem
	res.Profile = m.prof.finish(res.Cycles)
	return res, nil
}

// issue performs the scoreboard accounting for one instruction: it issues
// no earlier than the current cycle, waits for its source operands, shares
// a cycle with at most one instruction of a different slot (dual issue),
// and marks its destination ready after the opcode latency.
func (m *machine) issue(in *isa.Instr, srcReady int64) int64 {
	return m.issueMem(in, srcReady, 0)
}

// issueMem is issue with the memory barrier passed separately from register
// readiness (loads), so the profiler attributes the wait to the right
// cause: operand-not-ready vs memory-port busy. Every cycle the machine
// advances here lands in exactly one profiler bucket, which is what makes
// Profile.CheckSum hold.
func (m *machine) issueMem(in *isa.Instr, regReady, memReady int64) int64 {
	start := m.cycle
	at := start
	if regReady > at {
		m.prof.operandStall += regReady - at
		m.prof.opStall[in.Op] += regReady - at
		at = regReady
	}
	if memReady > at {
		m.prof.memoryStall += memReady - at
		m.prof.opStall[in.Op] += memReady - at
		at = memReady
	}
	slot := in.Op.Slot()
	m.prof.slotIssued[slot]++
	for {
		var taken *int64
		switch slot {
		case isa.SlotMem:
			taken = &m.slotMem
		case isa.SlotALU:
			taken = &m.slotALU
		default:
			taken = &m.slotCtrl
		}
		conflict := *taken == at
		if !m.cfg.DualIssue {
			conflict = m.slotMem == at || m.slotALU == at || m.slotCtrl == at
		}
		if !conflict {
			// Pairing is only possible when the instruction did not
			// advance the machine: slot marks never exceed m.cycle, so a
			// stalled (at > start) issue always lands in a fresh cycle.
			if at == start && (m.slotMem == at || m.slotALU == at || m.slotCtrl == at) {
				m.prof.dualIssued++
			}
			*taken = at
			break
		}
		at++
		m.prof.slotCycles[slot]++
	}
	m.cycle = at
	return at
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Operand-readiness helpers.
func (m *machine) fr(idx int) (float64, int64, error) {
	if idx < 0 || idx >= len(m.f) {
		return 0, 0, fmt.Errorf("f register %d out of range", idx)
	}
	return m.f[idx], m.fReady[idx], nil
}

func (m *machine) ir(idx int) (int, int64, error) {
	if idx < 0 || idx >= len(m.i) {
		return 0, 0, fmt.Errorf("i register %d out of range", idx)
	}
	return m.i[idx], m.iReady[idx], nil
}

// vr returns a vector register's value. The slice is shared with the
// register file; callers must treat it as read-only and install results
// via setV with a fresh slice.
func (m *machine) vr(idx int) ([]float64, int64, error) {
	if idx < 0 || idx >= len(m.v) {
		return nil, 0, fmt.Errorf("v register %d out of range", idx)
	}
	return m.v[idx], m.vReady[idx], nil
}

func (m *machine) setF(idx int, v float64, ready int64) error {
	if idx < 0 || idx >= len(m.f) {
		return fmt.Errorf("f register %d out of range", idx)
	}
	m.f[idx] = v
	m.fReady[idx] = ready
	return nil
}

func (m *machine) setI(idx int, v int, ready int64) error {
	if idx < 0 || idx >= len(m.i) {
		return fmt.Errorf("i register %d out of range", idx)
	}
	m.i[idx] = v
	m.iReady[idx] = ready
	return nil
}

// setV installs a vector register value, taking ownership of the slice.
func (m *machine) setV(idx int, v []float64, ready int64) error {
	if idx < 0 || idx >= len(m.v) {
		return fmt.Errorf("v register %d out of range", idx)
	}
	m.v[idx] = v
	m.vReady[idx] = ready
	return nil
}

func (m *machine) checkAddr(base, n int) error {
	if base < 0 || base+n > len(m.mem) {
		return fmt.Errorf("memory access [%d, %d) out of range (size %d)", base, base+n, len(m.mem))
	}
	return nil
}
