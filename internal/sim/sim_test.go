package sim

import (
	"math"
	"strings"
	"testing"

	"diospyros/internal/isa"
)

func run(t *testing.T, b *isa.Builder, mem []float64, cfg Config) *Result {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScalarArithmetic(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("out", 8)
	b := isa.NewBuilder("scalar", lay)
	base := b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
	f0, f1, f2 := b.FReg(), b.FReg(), b.FReg()
	b.Emit(isa.Instr{Op: isa.SConst, Dst: f0, Imm: 6})
	b.Emit(isa.Instr{Op: isa.SConst, Dst: f1, Imm: 2})
	emits := []struct {
		op   isa.Opcode
		want float64
	}{
		{isa.SAdd, 8}, {isa.SSub, 4}, {isa.SMul, 12}, {isa.SDiv, 3},
	}
	for i, e := range emits {
		b.Emit(isa.Instr{Op: e.op, Dst: f2, A: f0, B: f1})
		b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: i, B: f2})
	}
	b.Emit(isa.Instr{Op: isa.SNeg, Dst: f2, A: f0})
	b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 4, B: f2})
	b.Emit(isa.Instr{Op: isa.SSqrt, Dst: f2, A: f0})
	b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 5, B: f2})
	b.Emit(isa.Instr{Op: isa.SSgn, Dst: f2, A: f2})
	b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 6, B: f2})
	b.Emit(isa.Instr{Op: isa.SAbs, Dst: f2, A: f1})
	b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 7, B: f2})

	res := run(t, b, make([]float64, 8), Config{})
	want := []float64{8, 4, 12, 3, -6, math.Sqrt(6), 1, 2}
	for i, w := range want {
		if math.Abs(res.Mem[i]-w) > 1e-12 {
			t.Errorf("mem[%d] = %g, want %g", i, res.Mem[i], w)
		}
	}
}

func TestLoopSum(t *testing.T) {
	// Sum a[0..9] into out[0] with a counted loop.
	lay := isa.NewLayout()
	lay.Add("a", 10)
	lay.Add("out", 1)
	b := isa.NewBuilder("loop", lay)
	base := b.IReg()
	i := b.IReg()
	n := b.IReg()
	acc := b.FReg()
	tmp := b.FReg()
	ptr := b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: i, IImm: 0})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: n, IImm: 10})
	b.Emit(isa.Instr{Op: isa.SConst, Dst: acc, Imm: 0})
	b.Label("loop")
	b.Emit(isa.Instr{Op: isa.BrGE, A: i, B: n, Target: "done"})
	b.Emit(isa.Instr{Op: isa.IAdd, Dst: ptr, A: base, B: i})
	b.Emit(isa.Instr{Op: isa.SLoad, Dst: tmp, A: ptr, IImm: 0})
	b.Emit(isa.Instr{Op: isa.SAdd, Dst: acc, A: acc, B: tmp})
	b.Emit(isa.Instr{Op: isa.IAddI, Dst: i, A: i, IImm: 1})
	b.Emit(isa.Instr{Op: isa.Jmp, Target: "loop"})
	b.Label("done")
	outp := b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: outp, IImm: lay.Base("out")})
	b.Emit(isa.Instr{Op: isa.SStore, A: outp, IImm: 0, B: acc})

	mem := make([]float64, 11)
	for k := 0; k < 10; k++ {
		mem[k] = float64(k + 1)
	}
	res := run(t, b, mem, Config{})
	if res.Mem[10] != 55 {
		t.Fatalf("sum = %g, want 55", res.Mem[10])
	}
	if res.Instrs < 50 {
		t.Fatalf("dynamic instruction count %d suspiciously low", res.Instrs)
	}
}

func TestVectorOps(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("a", 4)
	lay.Add("b", 4)
	lay.Add("out", 24)
	b := isa.NewBuilder("vec", lay)
	ab, bb, ob := b.IReg(), b.IReg(), b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: ab, IImm: lay.Base("a")})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: bb, IImm: lay.Base("b")})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: ob, IImm: lay.Base("out")})
	va, vb, vc := b.VReg(), b.VReg(), b.VReg()
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: va, A: ab})
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: vb, A: bb})
	ops := []isa.Opcode{isa.VAdd, isa.VSub, isa.VMul, isa.VDiv}
	for i, op := range ops {
		b.Emit(isa.Instr{Op: op, Dst: vc, A: va, B: vb})
		b.Emit(isa.Instr{Op: isa.VStore, A: ob, IImm: i * 4, B: vc})
	}
	// MAC: vc = va; vc += va*vb.
	b.Emit(isa.Instr{Op: isa.VMov, Dst: vc, A: va})
	b.Emit(isa.Instr{Op: isa.VMac, Dst: vc, A: va, B: vb})
	b.Emit(isa.Instr{Op: isa.VStore, A: ob, IImm: 16, B: vc})
	// Shuffle then select.
	b.Emit(isa.Instr{Op: isa.VShfl, Dst: vc, A: va, Idx: []int{3, 2, 1, 0}})
	b.Emit(isa.Instr{Op: isa.VSel, Dst: vc, A: vc, B: vb, Idx: []int{0, 5, 2, 7}})
	b.Emit(isa.Instr{Op: isa.VStore, A: ob, IImm: 20, B: vc})

	mem := make([]float64, 32)
	copy(mem, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	res := run(t, b, mem, Config{})
	out := res.Mem[8:]
	want := []float64{
		11, 22, 33, 44, // add
		-9, -18, -27, -36, // sub
		10, 40, 90, 160, // mul
		0.1, 0.1, 0.1, 0.1, // div
		11, 42, 93, 164, // mac: a + a*b
		4, 20, 2, 40, // shfl(3,2,1,0) then sel
	}
	for i, w := range want {
		if math.Abs(out[i]-w) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], w)
		}
	}
}

func TestVStoreNAndInsertExtract(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("out", 8)
	b := isa.NewBuilder("vstoren", lay)
	ob := b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: ob, IImm: 0})
	v := b.VReg()
	f := b.FReg()
	b.Emit(isa.Instr{Op: isa.VConst, Dst: v, Vals: []float64{1, 2, 3, 4}})
	b.Emit(isa.Instr{Op: isa.SConst, Dst: f, Imm: 9})
	b.Emit(isa.Instr{Op: isa.VInsert, Dst: v, A: f, IImm: 2})
	b.Emit(isa.Instr{Op: isa.VStoreN, A: ob, IImm: 0, B: v, IImm2: 3})
	b.Emit(isa.Instr{Op: isa.VExtract, Dst: f, A: v, IImm: 3})
	b.Emit(isa.Instr{Op: isa.SStore, A: ob, IImm: 7, B: f})
	res := run(t, b, make([]float64, 8), Config{})
	want := []float64{1, 2, 9, 0, 0, 0, 0, 4}
	for i, w := range want {
		if res.Mem[i] != w {
			t.Errorf("mem[%d] = %g, want %g", i, res.Mem[i], w)
		}
	}
}

func TestBcastAndCall(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("out", 5)
	b := isa.NewBuilder("misc", lay)
	ob := b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: ob, IImm: 0})
	f := b.FReg()
	v := b.VReg()
	b.Emit(isa.Instr{Op: isa.SConst, Dst: f, Imm: 7})
	b.Emit(isa.Instr{Op: isa.VBcast, Dst: v, A: f})
	b.Emit(isa.Instr{Op: isa.VStore, A: ob, IImm: 0, B: v})
	g := b.FReg()
	b.Emit(isa.Instr{Op: isa.CallFn, Dst: g, Sym: "half", Args: []int{f}})
	b.Emit(isa.Instr{Op: isa.SStore, A: ob, IImm: 4, B: g})
	cfg := Config{Funcs: map[string]func([]float64) float64{
		"half": func(a []float64) float64 { return a[0] / 2 },
	}}
	res := run(t, b, make([]float64, 5), cfg)
	want := []float64{7, 7, 7, 7, 3.5}
	for i, w := range want {
		if res.Mem[i] != w {
			t.Errorf("mem[%d] = %g, want %g", i, res.Mem[i], w)
		}
	}
}

func TestDualIssuePairsMemAndALU(t *testing.T) {
	// Independent load+add streams should pack tighter with dual issue.
	build := func() *isa.Builder {
		lay := isa.NewLayout()
		lay.Add("a", 16)
		b := isa.NewBuilder("pair", lay)
		base := b.IReg()
		b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
		for k := 0; k < 8; k++ {
			f := b.FReg()
			g := b.FReg()
			b.Emit(isa.Instr{Op: isa.SLoad, Dst: f, A: base, IImm: k})
			b.Emit(isa.Instr{Op: isa.SConst, Dst: g, Imm: 1}) // ALU, independent
		}
		return b
	}
	dual := run(t, build(), make([]float64, 16), Config{DualIssue: true})
	single := run(t, build(), make([]float64, 16), Config{DualIssue: false})
	if dual.Cycles >= single.Cycles {
		t.Fatalf("dual issue (%d cycles) not faster than single issue (%d)", dual.Cycles, single.Cycles)
	}
}

func TestLongLatencyStalls(t *testing.T) {
	// A dependent chain through sqrt must cost ≈ latency each.
	lay := isa.NewLayout()
	lay.Add("out", 1)
	mk := func(op isa.Opcode, n int) int64 {
		b := isa.NewBuilder("lat", lay)
		f := b.FReg()
		b.Emit(isa.Instr{Op: isa.SConst, Dst: f, Imm: 2})
		for k := 0; k < n; k++ {
			b.Emit(isa.Instr{Op: op, Dst: f, A: f, B: f})
		}
		base := b.IReg()
		b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
		b.Emit(isa.Instr{Op: isa.SStore, A: base, IImm: 0, B: f})
		return run(t, b, make([]float64, 1), Config{}).Cycles
	}
	addChain := mk(isa.SAdd, 10)
	divChain := mk(isa.SDiv, 10)
	if divChain <= addChain+9*7 {
		t.Fatalf("div chain %d cycles vs add chain %d: latency not modeled", divChain, addChain)
	}
}

func TestBranchBubble(t *testing.T) {
	// A taken-branch loop has per-iteration overhead beyond its body.
	lay := isa.NewLayout()
	b := isa.NewBuilder("br", lay)
	i, n := b.IReg(), b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: i, IImm: 0})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: n, IImm: 100})
	b.Label("top")
	b.Emit(isa.Instr{Op: isa.BrGE, A: i, B: n, Target: "end"})
	b.Emit(isa.Instr{Op: isa.IAddI, Dst: i, A: i, IImm: 1})
	b.Emit(isa.Instr{Op: isa.Jmp, Target: "top"})
	b.Label("end")
	res := run(t, b, nil, Config{})
	if res.Cycles < 300 {
		t.Fatalf("loop of 100 iterations took %d cycles; branch overhead missing", res.Cycles)
	}
}

func TestRunawayGuard(t *testing.T) {
	lay := isa.NewLayout()
	b := isa.NewBuilder("spin", lay)
	b.Label("top")
	b.Emit(isa.Instr{Op: isa.Jmp, Target: "top"})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, nil, Config{MaxInstrs: 1000}); err == nil {
		t.Fatal("expected instruction-budget error")
	}
}

func TestErrors(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("a", 2)
	cases := []isa.Instr{
		{Op: isa.SLoad, Dst: 0, A: 0, IImm: 99},               // OOB load
		{Op: isa.VShfl, Dst: 0, A: 0, Idx: []int{0, 1, 2, 9}}, // bad index
		{Op: isa.VSel, Dst: 0, A: 0, B: 0, Idx: []int{0, 1, 2, 8}},
		{Op: isa.VConst, Dst: 0, Vals: []float64{1}},
		{Op: isa.CallFn, Dst: 0, Sym: "nosuch"},
		{Op: isa.VInsert, Dst: 0, A: 0, IImm: 7},
		{Op: isa.VStoreN, A: 0, B: 0, IImm2: 9},
	}
	for _, in := range cases {
		b := isa.NewBuilder("err", lay)
		b.Emit(isa.Instr{Op: isa.IConst, Dst: 0, IImm: 0})
		b.Emit(in)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, make([]float64, 2), Config{}); err == nil {
			t.Errorf("instruction %s: expected runtime error", in)
		}
	}
}

func TestBuilderRejectsUndefinedLabel(t *testing.T) {
	lay := isa.NewLayout()
	b := isa.NewBuilder("bad", lay)
	b.Emit(isa.Instr{Op: isa.Jmp, Target: "nowhere"})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestDisassembleReadable(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("a", 4)
	b := isa.NewBuilder("dis", lay)
	b.Label("start")
	b.Emit(isa.Instr{Op: isa.IConst, Dst: 0, IImm: 0})
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: 0, A: 0})
	b.Emit(isa.Instr{Op: isa.VShfl, Dst: 1, A: 0, Idx: []int{1, 2, 0, 3}})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := p.Disassemble()
	for _, want := range []string{"start:", "vload", "vshfl", "region a"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestDeterminism(t *testing.T) {
	lay := isa.NewLayout()
	lay.Add("a", 8)
	mk := func() *Result {
		b := isa.NewBuilder("det", lay)
		base := b.IReg()
		b.Emit(isa.Instr{Op: isa.IConst, Dst: base, IImm: 0})
		v := b.VReg()
		b.Emit(isa.Instr{Op: isa.VLoad, Dst: v, A: base})
		b.Emit(isa.Instr{Op: isa.VMul, Dst: v, A: v, B: v})
		b.Emit(isa.Instr{Op: isa.VStore, A: base, IImm: 4, B: v})
		mem := []float64{1, 2, 3, 4, 0, 0, 0, 0}
		return run(t, b, mem, Config{})
	}
	a, b2 := mk(), mk()
	if a.Cycles != b2.Cycles || a.Instrs != b2.Instrs {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b2)
	}
}
