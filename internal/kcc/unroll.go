package kcc

import (
	"fmt"

	"diospyros/internal/frontend"
	"diospyros/internal/isa"
)

// unroller is the FixedSize-mode compiler: a partial evaluator that runs
// all integer control flow at compile time, emitting straight-line scalar
// float code with constant addressing — the effect of `-O3` on loop nests
// with #define'd sizes.
//
// Array elements are promoted to registers through a *bounded* LRU cache
// with dirty writeback, modelling what register allocation achieves on a
// real DSP register file: a hot accumulator (e.g. c[i][j] across the inner
// k loop) stays in a register, but a 16×16 matrix cannot live in registers
// wholesale. Scalar let-variables and shared constants stay in registers.
// Float arithmetic is *not* globally value numbered; recovering that CSE
// via symbolic evaluation is Diospyros's §5.6 advantage.
type unroller struct {
	k *frontend.Kernel
	b *isa.Builder

	consts map[float64]int // literal -> f-register
	cache  *promoCache
	arrays map[string]*uArray
	scopes []*uScope
	steps  int
	locals int // counter for var-array region names
}

// promoteCap is the number of array elements the modelled register
// allocator can keep live at once.
const promoteCap = 12

// uArray is an array backed by a memory region, addressed by constant
// offsets in fixed-size mode.
type uArray struct {
	dims    []int
	input   bool
	name    string
	baseReg int
}

type uScope struct {
	ints   map[string]int // concrete integer values
	floats map[string]int // float variable -> current f-register
	arrays map[string]*uArray
}

const maxUnrollSteps = 4_000_000

func newUnroller(k *frontend.Kernel, b *isa.Builder) *unroller {
	return &unroller{k: k, b: b, consts: map[float64]int{}, arrays: map[string]*uArray{}}
}

// promoCache is the bounded element-promotion cache.
type promoCache struct {
	u       *unroller
	cap     int
	entries map[promoKey]*promoEnt
	clock   int
}

type promoKey struct {
	arr *uArray
	off int
}

type promoEnt struct {
	reg   int
	dirty bool
	used  int // LRU clock
}

func (c *promoCache) touch(e *promoEnt) {
	c.clock++
	e.used = c.clock
}

// evictIfFull writes back and drops the least-recently-used entry.
func (c *promoCache) evictIfFull() {
	if len(c.entries) < c.cap {
		return
	}
	var victimKey promoKey
	var victim *promoEnt
	for k, e := range c.entries {
		if victim == nil || e.used < victim.used ||
			(e.used == victim.used && (k.off < victimKey.off)) {
			victim, victimKey = e, k
		}
	}
	if victim.dirty {
		c.u.b.Emit(isa.Instr{Op: isa.SStore, A: victimKey.arr.baseReg, IImm: victimKey.off, B: victim.reg})
	}
	delete(c.entries, victimKey)
}

// read returns a register holding arr[off].
func (c *promoCache) read(arr *uArray, off int) int {
	key := promoKey{arr: arr, off: off}
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		return e.reg
	}
	c.evictIfFull()
	r := c.u.b.FReg()
	c.u.b.Emit(isa.Instr{Op: isa.SLoad, Dst: r, A: arr.baseReg, IImm: off})
	e := &promoEnt{reg: r}
	c.entries[key] = e
	c.touch(e)
	return r
}

// write binds arr[off] to the value register, deferring the store.
func (c *promoCache) write(arr *uArray, off int, reg int) {
	key := promoKey{arr: arr, off: off}
	if e, ok := c.entries[key]; ok {
		e.reg = reg
		e.dirty = true
		c.touch(e)
		return
	}
	c.evictIfFull()
	e := &promoEnt{reg: reg, dirty: true}
	c.entries[key] = e
	c.touch(e)
}

// flush writes back every dirty entry (end of kernel).
func (c *promoCache) flush() {
	// Deterministic order: collect and sort by (array name, offset).
	type item struct {
		key promoKey
		e   *promoEnt
	}
	var items []item
	for k, e := range c.entries {
		if e.dirty {
			items = append(items, item{k, e})
		}
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			a, b := items[i].key, items[j].key
			if b.arr.name < a.arr.name || (b.arr.name == a.arr.name && b.off < a.off) {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	for _, it := range items {
		c.u.b.Emit(isa.Instr{Op: isa.SStore, A: it.key.arr.baseReg, IImm: it.key.off, B: it.e.reg})
		it.e.dirty = false
	}
}

func (c *unroller) push() {
	c.scopes = append(c.scopes, &uScope{ints: map[string]int{}, floats: map[string]int{}, arrays: map[string]*uArray{}})
}
func (c *unroller) pop() { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *unroller) top() *uScope { return c.scopes[len(c.scopes)-1] }

func (c *unroller) run() error {
	c.cache = &promoCache{u: c, cap: promoteCap, entries: map[promoKey]*promoEnt{}}
	bind := func(p frontend.Param, input bool) {
		reg := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: reg, IImm: c.b.Layout().Base(p.Name)})
		c.arrays[p.Name] = &uArray{dims: p.Dims, input: input, name: p.Name, baseReg: reg}
	}
	for _, p := range c.k.Params {
		bind(p, true)
	}
	for _, p := range c.k.Outs {
		bind(p, false)
	}
	c.push()
	err := c.block(c.k.Body)
	c.pop()
	if err != nil {
		return err
	}
	c.cache.flush()
	return nil
}

func (c *unroller) constReg(v float64) int {
	if r, ok := c.consts[v]; ok {
		return r
	}
	r := c.b.FReg()
	c.b.Emit(isa.Instr{Op: isa.SConst, Dst: r, Imm: v})
	c.consts[v] = r
	return r
}

func (c *unroller) findInt(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i].ints[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func (c *unroller) setInt(name string, v int) bool {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if _, ok := c.scopes[i].ints[name]; ok {
			c.scopes[i].ints[name] = v
			return true
		}
	}
	return false
}

func (c *unroller) findFloatScope(name string) (*uScope, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if _, ok := c.scopes[i].floats[name]; ok {
			return c.scopes[i], true
		}
	}
	return nil, false
}

func (c *unroller) findArray(name string) (*uArray, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if a, ok := c.scopes[i].arrays[name]; ok {
			return a, true
		}
	}
	a, ok := c.arrays[name]
	return a, ok
}

func (c *unroller) block(blk *frontend.Block) error {
	c.push()
	defer c.pop()
	for _, st := range blk.Stmts {
		if err := c.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *unroller) stmt(st frontend.Stmt) error {
	c.steps++
	if c.steps > maxUnrollSteps {
		return fmt.Errorf("kcc: fixed-size unrolling exceeded %d steps", maxUnrollSteps)
	}
	switch s := st.(type) {
	case *frontend.ForStmt:
		lo, err := c.intExpr(s.Lo)
		if err != nil {
			return err
		}
		hi, err := c.intExpr(s.Hi)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			c.push()
			c.top().ints[s.Var] = i
			err := c.block(s.Body)
			c.pop()
			if err != nil {
				return err
			}
		}
		return nil
	case *frontend.WhileStmt:
		for {
			cond, err := c.boolExpr(s.Cond)
			if err != nil {
				return err
			}
			if !cond {
				return nil
			}
			if err := c.block(s.Body); err != nil {
				return err
			}
			c.steps++
			if c.steps > maxUnrollSteps {
				return fmt.Errorf("kcc: fixed-size unrolling exceeded %d steps", maxUnrollSteps)
			}
		}
	case *frontend.IfStmt:
		cond, err := c.boolExpr(s.Cond)
		if err != nil {
			return err
		}
		if cond {
			return c.block(s.Then)
		}
		if s.Else != nil {
			return c.block(s.Else)
		}
		return nil
	case *frontend.LetStmt:
		if s.Type == frontend.TypeInt {
			v, err := c.intExpr(s.Val)
			if err != nil {
				return err
			}
			c.top().ints[s.Name] = v
			return nil
		}
		r, err := c.floatExpr(s.Val)
		if err != nil {
			return err
		}
		c.top().floats[s.Name] = r
		return nil
	case *frontend.VarArrayStmt:
		n := 1
		for _, d := range s.Dims {
			n *= d
		}
		c.locals++
		name := fmt.Sprintf("%s$%d", s.Name, c.locals)
		w := c.b.VecWidth()
		base := c.b.Layout().Add(name, (n+w-1)/w*w)
		reg := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: reg, IImm: base})
		arr := &uArray{dims: s.Dims, name: name, baseReg: reg}
		// Zero-initialize at the declaration point (its declared
		// semantics; the zeros flow through the promotion cache).
		z := c.constReg(0)
		for i := 0; i < n; i++ {
			c.cache.write(arr, i, z)
		}
		c.top().arrays[s.Name] = arr
		return nil
	case *frontend.AssignStmt:
		if len(s.Indices) == 0 {
			if _, ok := c.findInt(s.Name); ok {
				v, err := c.intExpr(s.Val)
				if err != nil {
					return err
				}
				c.setInt(s.Name, v)
				return nil
			}
			sc, ok := c.findFloatScope(s.Name)
			if !ok {
				return fmt.Errorf("kcc: assignment to undefined %q", s.Name)
			}
			r, err := c.floatExpr(s.Val)
			if err != nil {
				return err
			}
			sc.floats[s.Name] = r
			return nil
		}
		arr, ok := c.findArray(s.Name)
		if !ok {
			return fmt.Errorf("kcc: unknown array %q", s.Name)
		}
		if arr.input {
			return fmt.Errorf("kcc: write to input array %q", s.Name)
		}
		off, err := c.flatIndex(arr, s.Indices)
		if err != nil {
			return err
		}
		r, err := c.floatExpr(s.Val)
		if err != nil {
			return err
		}
		c.cache.write(arr, off, r)
		return nil
	}
	return fmt.Errorf("kcc: unknown statement %T", st)
}

func (c *unroller) flatIndex(arr *uArray, indices []frontend.Expr) (int, error) {
	if len(indices) != len(arr.dims) {
		return 0, fmt.Errorf("kcc: wrong index arity")
	}
	off := 0
	for d, ix := range indices {
		v, err := c.intExpr(ix)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= arr.dims[d] {
			return 0, fmt.Errorf("kcc: index %d out of bounds (dim %d, size %d)", v, d, arr.dims[d])
		}
		off = off*arr.dims[d] + v
	}
	return off, nil
}

func (c *unroller) intExpr(x frontend.Expr) (int, error) {
	switch v := x.(type) {
	case *frontend.NumLit:
		return int(v.I), nil
	case *frontend.VarRef:
		if val, ok := c.findInt(v.Name); ok {
			return val, nil
		}
		return 0, fmt.Errorf("kcc: undefined int %q", v.Name)
	case *frontend.BinExpr:
		l, err := c.intExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := c.intExpr(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("kcc: division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("kcc: modulo by zero")
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("kcc: bad int operator %q", v.Op)
	case *frontend.UnExpr:
		val, err := c.intExpr(v.X)
		if err != nil {
			return 0, err
		}
		return -val, nil
	}
	return 0, fmt.Errorf("kcc: unsupported int expression %T", x)
}

func (c *unroller) floatExpr(x frontend.Expr) (int, error) {
	switch v := x.(type) {
	case *frontend.NumLit:
		f := v.F
		if v.IsInt {
			f = float64(v.I)
		}
		return c.constReg(f), nil
	case *frontend.CastExpr:
		i, err := c.intExpr(v.X)
		if err != nil {
			return 0, err
		}
		return c.constReg(float64(i)), nil
	case *frontend.VarRef:
		if sc, ok := c.findFloatScope(v.Name); ok {
			return sc.floats[v.Name], nil
		}
		return 0, fmt.Errorf("kcc: undefined float %q", v.Name)
	case *frontend.IndexExpr:
		arr, ok := c.findArray(v.Name)
		if !ok {
			return 0, fmt.Errorf("kcc: unknown array %q", v.Name)
		}
		off, err := c.flatIndex(arr, v.Indices)
		if err != nil {
			return 0, err
		}
		return c.cache.read(arr, off), nil
	case *frontend.BinExpr:
		l, err := c.floatExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := c.floatExpr(v.R)
		if err != nil {
			return 0, err
		}
		op := map[string]isa.Opcode{"+": isa.SAdd, "-": isa.SSub, "*": isa.SMul, "/": isa.SDiv}[v.Op]
		if op == isa.Invalid {
			return 0, fmt.Errorf("kcc: bad float operator %q", v.Op)
		}
		d := c.b.FReg()
		c.b.Emit(isa.Instr{Op: op, Dst: d, A: l, B: r})
		return d, nil
	case *frontend.UnExpr:
		r, err := c.floatExpr(v.X)
		if err != nil {
			return 0, err
		}
		d := c.b.FReg()
		c.b.Emit(isa.Instr{Op: isa.SNeg, Dst: d, A: r})
		return d, nil
	case *frontend.CallExpr:
		args := make([]int, len(v.Args))
		for i, a := range v.Args {
			r, err := c.floatExpr(a)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		d := c.b.FReg()
		switch v.Name {
		case "sqrt":
			c.b.Emit(isa.Instr{Op: isa.SSqrt, Dst: d, A: args[0]})
		case "abs":
			c.b.Emit(isa.Instr{Op: isa.SAbs, Dst: d, A: args[0]})
		case "sgn":
			c.b.Emit(isa.Instr{Op: isa.SSgn, Dst: d, A: args[0]})
		default:
			c.b.Emit(isa.Instr{Op: isa.CallFn, Dst: d, Sym: v.Name, Args: args})
		}
		return d, nil
	}
	return 0, fmt.Errorf("kcc: unsupported float expression %T", x)
}

// boolExpr evaluates a condition at compile time. Data-dependent (float)
// conditions cannot be unrolled; the caller should use Parametric mode.
func (c *unroller) boolExpr(x frontend.Expr) (bool, error) {
	switch v := x.(type) {
	case *frontend.BinExpr:
		switch v.Op {
		case "&&":
			l, err := c.boolExpr(v.L)
			if err != nil || !l {
				return false, err
			}
			return c.boolExpr(v.R)
		case "||":
			l, err := c.boolExpr(v.L)
			if err != nil || l {
				return l, err
			}
			return c.boolExpr(v.R)
		case "<", "<=", ">", ">=", "==", "!=":
			if v.L.ExprType() == frontend.TypeFloat {
				return false, fmt.Errorf("kcc: data-dependent condition cannot be compiled in fixed-size mode (use Parametric)")
			}
			l, err := c.intExpr(v.L)
			if err != nil {
				return false, err
			}
			r, err := c.intExpr(v.R)
			if err != nil {
				return false, err
			}
			switch v.Op {
			case "<":
				return l < r, nil
			case "<=":
				return l <= r, nil
			case ">":
				return l > r, nil
			case ">=":
				return l >= r, nil
			case "==":
				return l == r, nil
			default:
				return l != r, nil
			}
		}
	case *frontend.UnExpr:
		if v.Op == "!" {
			b, err := c.boolExpr(v.X)
			return !b, err
		}
	}
	return false, fmt.Errorf("kcc: unsupported condition %T", x)
}
