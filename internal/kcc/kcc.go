// Package kcc is the baseline kernel compiler: it compiles imperative
// frontend kernels to FG3-lite scalar code, standing in for the vendor's
// xt-xcc C compiler in the paper's evaluation (§5.2).
//
// Two modes reproduce the paper's two loop-nest baselines:
//
//   - Parametric ("Naive"): structured code with runtime loop bounds and
//     runtime index arithmetic, exactly what a compiler emits for
//     size-generic code. Every iteration pays loop-counter updates,
//     address computation, and branch overhead.
//   - FixedSize ("Naive (fixed size)"): bounds are compile-time constants,
//     so loops are fully unrolled, all indices constant-folded, each input
//     element is loaded once, and output elements are promoted to
//     registers until a final store — the effect of `-O3` on kernels with
//     #define'd sizes. Repeated arithmetic is *not* globally value
//     numbered; that additional CSE is what Diospyros's symbolic
//     evaluation provides on top (§5.6).
//
// FixedSize requires input-independent control flow (like lifting);
// kernels with data-dependent branches (e.g. iterative library routines)
// compile in Parametric mode only.
package kcc

import (
	"fmt"

	"diospyros/internal/frontend"
	"diospyros/internal/isa"
)

// Mode selects the compilation strategy.
type Mode int

const (
	// Parametric keeps loops and computes indices at run time.
	Parametric Mode = iota
	// FixedSize fully unrolls and constant-folds control flow.
	FixedSize
)

func (m Mode) String() string {
	if m == FixedSize {
		return "fixed-size"
	}
	return "parametric"
}

// Compile compiles a typed kernel to FG3-lite for the default target.
func Compile(k *frontend.Kernel, mode Mode) (*isa.Program, error) {
	return CompileTarget(k, mode, nil)
}

// CompileTarget compiles a typed kernel for the given target machine (nil
// means the default fg3lite-4). kcc emits scalar code only, so the target
// affects just the memory layout's width padding and the latency table the
// simulator applies to the emitted program.
func CompileTarget(k *frontend.Kernel, mode Mode, t *isa.Target) (*isa.Program, error) {
	if t == nil {
		t = isa.Default()
	}
	w := t.Width
	if w < 1 {
		w = 1
	}
	lay := isa.NewLayout()
	pad := func(n int) int { return (n + w - 1) / w * w }
	for _, p := range k.Params {
		lay.Add(p.Name, pad(p.Len()))
	}
	for _, p := range k.Outs {
		lay.Add(p.Name, pad(p.Len()))
	}
	name := fmt.Sprintf("%s_%s", k.Name, mode)
	b := isa.NewBuilder(name, lay)
	b.SetTarget(t)
	if mode == FixedSize {
		c := newUnroller(k, b)
		if err := c.run(); err != nil {
			return nil, err
		}
	} else {
		c := newStructured(k, b)
		if err := c.run(); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
