package kcc

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/frontend"
	"diospyros/internal/isa"
	"diospyros/internal/kernels"
	"diospyros/internal/sim"
)

// runKernel compiles and simulates a kernel, returning outputs and cycles.
func runKernel(t *testing.T, k *frontend.Kernel, mode Mode, inputs map[string][]float64) (map[string][]float64, *sim.Result) {
	t.Helper()
	p, err := Compile(k, mode)
	if err != nil {
		t.Fatalf("%s %s: %v", k.Name, mode, err)
	}
	mem := make([]float64, p.Layout.Size())
	for _, prm := range k.Params {
		copy(mem[p.Layout.Base(prm.Name):], inputs[prm.Name])
	}
	res, err := sim.Run(p, mem, sim.Config{})
	if err != nil {
		t.Fatalf("%s %s: sim: %v\n%s", k.Name, mode, err, p.Disassemble())
	}
	out := map[string][]float64{}
	for _, prm := range k.Outs {
		b := p.Layout.Base(prm.Name)
		out[prm.Name] = res.Mem[b : b+prm.Len()]
	}
	return out, res
}

func checkAgainstInterp(t *testing.T, src string, inputs map[string][]float64) (paramCycles, fixedCycles int64) {
	t.Helper()
	k := frontend.MustParse(src)
	want, err := frontend.Interp(k, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Parametric, FixedSize} {
		got, res := runKernel(t, k, mode, inputs)
		for name, w := range want {
			for i := range w {
				if math.Abs(got[name][i]-w[i]) > 1e-9*math.Max(1, math.Abs(w[i])) {
					t.Fatalf("%s %s: %s[%d] = %g, want %g", k.Name, mode, name, i, got[name][i], w[i])
				}
			}
		}
		if mode == Parametric {
			paramCycles = res.Cycles
		} else {
			fixedCycles = res.Cycles
		}
	}
	return paramCycles, fixedCycles
}

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*4 - 2
	}
	return s
}

const matmulSrc = `
kernel matmul(a[3][3], b[3][3]) -> (c[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            c[i][j] = 0.0;
            for k in 0..3 {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
}
`

func TestMatMulBothModes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	in := map[string][]float64{"a": randSlice(r, 9), "b": randSlice(r, 9)}
	pc, fc := checkAgainstInterp(t, matmulSrc, in)
	// The paper's fixed-size effect: unrolling removes loop overhead
	// (≈1.6× on their example); require a clear improvement here.
	if fc*13 >= pc*10 {
		t.Fatalf("fixed-size (%d cycles) not ≥1.3x faster than parametric (%d)", fc, pc)
	}
}

func TestConvWithBoundaryConditions(t *testing.T) {
	src := `
kernel conv2d(i[3][5], f[3][3]) -> (o[5][7]) {
    for oRow in 0..5 {
        for oCol in 0..7 {
            for fRow in 0..3 {
                for fCol in 0..3 {
                    let fRT = 3 - 1 - fRow;
                    let fCT = 3 - 1 - fCol;
                    let iRow = oRow - fRT;
                    let iCol = oCol - fCT;
                    if iRow >= 0 && iRow < 3 && iCol >= 0 && iCol < 5 {
                        o[oRow][oCol] = o[oRow][oCol] + i[iRow][iCol] * f[fRT][fCT];
                    }
                }
            }
        }
    }
}
`
	r := rand.New(rand.NewSource(2))
	in := map[string][]float64{"i": randSlice(r, 15), "f": randSlice(r, 9)}
	k := frontend.MustParse(src)
	got, _ := runKernel(t, k, Parametric, in)
	want := kernels.Conv2DRef(3, 5, 3, 3, in["i"], in["f"])
	for i := range want {
		if math.Abs(got["o"][i]-want[i]) > 1e-9 {
			t.Fatalf("o[%d] = %g, want %g", i, got["o"][i], want[i])
		}
	}
	gotF, _ := runKernel(t, k, FixedSize, in)
	for i := range want {
		if math.Abs(gotF["o"][i]-want[i]) > 1e-9 {
			t.Fatalf("fixed: o[%d] = %g, want %g", i, gotF["o"][i], want[i])
		}
	}
}

func TestLocalArraysAndLets(t *testing.T) {
	src := `
kernel scale(a[4]) -> (o[4]) {
    var t[4];
    let s = 2.0;
    for i in 0..4 {
        t[i] = a[i] * s;
    }
    for i in 0..4 {
        o[i] = t[i] + 1.0;
    }
}
`
	r := rand.New(rand.NewSource(3))
	in := map[string][]float64{"a": randSlice(r, 4)}
	checkAgainstInterp(t, src, in)
}

func TestDataDependentWhileParametricOnly(t *testing.T) {
	// Newton iteration for sqrt: converges data-dependently.
	src := `
kernel newton(a[1]) -> (o[1]) {
    let x = a[0];
    let guess = 1.0;
    let err = 1.0;
    while err > 0.000001 {
        guess = 0.5 * (guess + x / guess);
        err = abs(guess * guess - x);
    }
    o[0] = guess;
}
`
	k := frontend.MustParse(src)
	in := map[string][]float64{"a": {7}}
	got, _ := runKernel(t, k, Parametric, in)
	if math.Abs(got["o"][0]-math.Sqrt(7)) > 1e-5 {
		t.Fatalf("newton sqrt = %g", got["o"][0])
	}
	// Fixed-size mode must refuse.
	if _, err := Compile(k, FixedSize); err == nil {
		t.Fatal("fixed-size mode accepted data-dependent while")
	}
}

func TestElseBranches(t *testing.T) {
	src := `
kernel stripe(a[6]) -> (o[6]) {
    for i in 0..6 {
        if i % 2 == 0 {
            o[i] = a[i];
        } else {
            o[i] = 0.0 - a[i];
        }
    }
}
`
	r := rand.New(rand.NewSource(4))
	in := map[string][]float64{"a": randSlice(r, 6)}
	checkAgainstInterp(t, src, in)
}

func TestShortCircuitConditions(t *testing.T) {
	src := `
kernel border(a[4][4]) -> (o[4][4]) {
    for i in 0..4 {
        for j in 0..4 {
            if i == 0 || j == 0 || i == 3 || j == 3 {
                o[i][j] = 0.0;
            } else {
                o[i][j] = a[i][j];
            }
            if i > 0 && j > 0 && i < 3 && j < 3 {
                o[i][j] = o[i][j] * 2.0;
            }
        }
    }
}
`
	r := rand.New(rand.NewSource(5))
	in := map[string][]float64{"a": randSlice(r, 16)}
	checkAgainstInterp(t, src, in)
}

func TestFixedSizePromotionBounds(t *testing.T) {
	k := frontend.MustParse(matmulSrc)
	p, err := Compile(k, FixedSize)
	if err != nil {
		t.Fatal(err)
	}
	// 3×3·3×3 matmul touches 18 input elements 27 times each side (54
	// reads total). Bounded register promotion must eliminate some reuse
	// but cannot keep everything live: strictly between the two extremes.
	loads := int(p.OpHistogram()[isa.SLoad])
	if loads < 18 || loads >= 54 {
		t.Fatalf("fixed-size matmul has %d scalar loads, want within (18, 54)", loads)
	}
	// The c[i][j] accumulator must be promoted across the k loop: exactly
	// one store per output element.
	if stores := int(p.OpHistogram()[isa.SStore]); stores != 9 {
		t.Fatalf("fixed-size matmul has %d stores, want 9 (promoted accumulators)", stores)
	}
	// No runtime control flow remains.
	for _, in := range p.Instrs {
		if in.Op.IsBranch() {
			t.Fatalf("fixed-size code contains branch %s", in)
		}
	}
}

func TestUninterpretedFunctionCall(t *testing.T) {
	src := `
kernel f(a[2]) -> (o[2]) {
    for i in 0..2 {
        o[i] = half(a[i]) + 1.0;
    }
}
`
	k := frontend.MustParse(src)
	p, err := Compile(k, Parametric)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]float64, p.Layout.Size())
	copy(mem[p.Layout.Base("a"):], []float64{4, 10})
	cfg := sim.Config{Funcs: map[string]func([]float64) float64{
		"half": func(args []float64) float64 { return args[0] / 2 },
	}}
	res, err := sim.Run(p, mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Layout.Base("o")
	if res.Mem[b] != 3 || res.Mem[b+1] != 6 {
		t.Fatalf("o = %v", res.Mem[b:b+2])
	}
}
