package kcc

import (
	"fmt"

	"diospyros/internal/frontend"
	"diospyros/internal/isa"
)

// structured is the Parametric-mode compiler: a plain tree-walking code
// generator with runtime loops, runtime index arithmetic, and short-circuit
// conditions.
type structured struct {
	k *frontend.Kernel
	b *isa.Builder
	// Array metadata: base address register and dimensions.
	arrays map[string]*sArrayInfo
	scopes []*sScope
}

type sArrayInfo struct {
	baseReg int
	dims    []int
}

type sScope struct {
	ints   map[string]int // int variable -> i-register
	floats map[string]int // float variable -> f-register
	arrays map[string]*sArrayInfo
}

func newStructured(k *frontend.Kernel, b *isa.Builder) *structured {
	return &structured{k: k, b: b, arrays: map[string]*sArrayInfo{}}
}

func (c *structured) push() {
	c.scopes = append(c.scopes, &sScope{ints: map[string]int{}, floats: map[string]int{}, arrays: map[string]*sArrayInfo{}})
}
func (c *structured) pop() { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *structured) top() *sScope { return c.scopes[len(c.scopes)-1] }

func (c *structured) findInt(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i].ints[name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (c *structured) findFloat(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i].floats[name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (c *structured) findArray(name string) (*sArrayInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if a, ok := c.scopes[i].arrays[name]; ok {
			return a, true
		}
	}
	a, ok := c.arrays[name]
	return a, ok
}

func (c *structured) run() error {
	// Bind parameter/output arrays to base-address registers.
	for _, p := range append(append([]frontend.Param{}, c.k.Params...), c.k.Outs...) {
		reg := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: reg, IImm: c.b.Layout().Base(p.Name)})
		c.arrays[p.Name] = &sArrayInfo{baseReg: reg, dims: p.Dims}
	}
	c.push()
	defer c.pop()
	return c.block(c.k.Body)
}

func (c *structured) block(blk *frontend.Block) error {
	c.push()
	defer c.pop()
	for _, st := range blk.Stmts {
		if err := c.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *structured) stmt(st frontend.Stmt) error {
	switch s := st.(type) {
	case *frontend.ForStmt:
		lo, err := c.intExpr(s.Lo)
		if err != nil {
			return err
		}
		hi, err := c.intExpr(s.Hi)
		if err != nil {
			return err
		}
		iv := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IMov, Dst: iv, A: lo})
		topL := c.b.FreshLabel("for")
		endL := c.b.FreshLabel("endfor")
		c.b.Label(topL)
		c.b.Emit(isa.Instr{Op: isa.BrGE, A: iv, B: hi, Target: endL})
		c.push()
		c.top().ints[s.Var] = iv
		err = c.block(s.Body)
		c.pop()
		if err != nil {
			return err
		}
		c.b.Emit(isa.Instr{Op: isa.IAddI, Dst: iv, A: iv, IImm: 1})
		c.b.Emit(isa.Instr{Op: isa.Jmp, Target: topL})
		c.b.Label(endL)
		return nil

	case *frontend.WhileStmt:
		topL := c.b.FreshLabel("while")
		endL := c.b.FreshLabel("endwhile")
		c.b.Label(topL)
		if err := c.condBranch(s.Cond, false, endL); err != nil {
			return err
		}
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.b.Emit(isa.Instr{Op: isa.Jmp, Target: topL})
		c.b.Label(endL)
		return nil

	case *frontend.IfStmt:
		elseL := c.b.FreshLabel("else")
		endL := c.b.FreshLabel("endif")
		if err := c.condBranch(s.Cond, false, elseL); err != nil {
			return err
		}
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			c.b.Emit(isa.Instr{Op: isa.Jmp, Target: endL})
		}
		c.b.Label(elseL)
		if s.Else != nil {
			if err := c.block(s.Else); err != nil {
				return err
			}
		}
		c.b.Label(endL)
		return nil

	case *frontend.LetStmt:
		if s.Type == frontend.TypeInt {
			r, err := c.intExpr(s.Val)
			if err != nil {
				return err
			}
			reg := c.b.IReg()
			c.b.Emit(isa.Instr{Op: isa.IMov, Dst: reg, A: r})
			c.top().ints[s.Name] = reg
			return nil
		}
		r, err := c.floatExpr(s.Val)
		if err != nil {
			return err
		}
		reg := c.b.FReg()
		c.b.Emit(isa.Instr{Op: isa.SMov, Dst: reg, A: r})
		c.top().floats[s.Name] = reg
		return nil

	case *frontend.VarArrayStmt:
		// Local arrays live in a dedicated memory region, zero-filled at
		// the declaration point (declaration semantics in loops).
		n := 1
		for _, d := range s.Dims {
			n *= d
		}
		name := fmt.Sprintf("%s$%d", s.Name, len(c.arrays))
		w := c.b.VecWidth()
		base := c.b.Layout().Add(name, (n+w-1)/w*w)
		reg := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: reg, IImm: base})
		zero := c.b.FReg()
		c.b.Emit(isa.Instr{Op: isa.SConst, Dst: zero, Imm: 0})
		for i := 0; i < n; i++ {
			c.b.Emit(isa.Instr{Op: isa.SStore, A: reg, IImm: i, B: zero})
		}
		c.top().arrays[s.Name] = &sArrayInfo{baseReg: reg, dims: s.Dims}
		return nil

	case *frontend.AssignStmt:
		if len(s.Indices) == 0 {
			if reg, ok := c.findInt(s.Name); ok {
				r, err := c.intExpr(s.Val)
				if err != nil {
					return err
				}
				c.b.Emit(isa.Instr{Op: isa.IMov, Dst: reg, A: r})
				return nil
			}
			reg, ok := c.findFloat(s.Name)
			if !ok {
				return fmt.Errorf("kcc: assignment to undefined %q", s.Name)
			}
			r, err := c.floatExpr(s.Val)
			if err != nil {
				return err
			}
			c.b.Emit(isa.Instr{Op: isa.SMov, Dst: reg, A: r})
			return nil
		}
		addr, err := c.address(s.Name, s.Indices)
		if err != nil {
			return err
		}
		v, err := c.floatExpr(s.Val)
		if err != nil {
			return err
		}
		c.b.Emit(isa.Instr{Op: isa.SStore, A: addr, IImm: 0, B: v})
		return nil
	}
	return fmt.Errorf("kcc: unknown statement %T", st)
}

// address computes base + flattened index into an i-register.
func (c *structured) address(name string, indices []frontend.Expr) (int, error) {
	info, ok := c.findArray(name)
	if !ok {
		return 0, fmt.Errorf("kcc: unknown array %q", name)
	}
	if len(indices) != len(info.dims) {
		return 0, fmt.Errorf("kcc: array %q expects %d indices", name, len(info.dims))
	}
	idx, err := c.intExpr(indices[0])
	if err != nil {
		return 0, err
	}
	for d := 1; d < len(indices); d++ {
		// idx = idx * dims[d] + indices[d]; the stride multiply stays a
		// runtime operation, as in size-generic library code.
		scaled := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IMulI, Dst: scaled, A: idx, IImm: info.dims[d]})
		next, err := c.intExpr(indices[d])
		if err != nil {
			return 0, err
		}
		sum := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IAdd, Dst: sum, A: scaled, B: next})
		idx = sum
	}
	addr := c.b.IReg()
	c.b.Emit(isa.Instr{Op: isa.IAdd, Dst: addr, A: info.baseReg, B: idx})
	return addr, nil
}

func (c *structured) intExpr(x frontend.Expr) (int, error) {
	switch v := x.(type) {
	case *frontend.NumLit:
		r := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: r, IImm: int(v.I)})
		return r, nil
	case *frontend.VarRef:
		r, ok := c.findInt(v.Name)
		if !ok {
			return 0, fmt.Errorf("kcc: undefined int %q", v.Name)
		}
		return r, nil
	case *frontend.BinExpr:
		l, err := c.intExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := c.intExpr(v.R)
		if err != nil {
			return 0, err
		}
		d := c.b.IReg()
		switch v.Op {
		case "+":
			c.b.Emit(isa.Instr{Op: isa.IAdd, Dst: d, A: l, B: r})
		case "-":
			c.b.Emit(isa.Instr{Op: isa.ISub, Dst: d, A: l, B: r})
		case "*":
			c.b.Emit(isa.Instr{Op: isa.IMul, Dst: d, A: l, B: r})
		case "/":
			c.b.Emit(isa.Instr{Op: isa.IDiv, Dst: d, A: l, B: r})
		case "%":
			c.b.Emit(isa.Instr{Op: isa.IMod, Dst: d, A: l, B: r})
		default:
			return 0, fmt.Errorf("kcc: integer operator %q unsupported at runtime", v.Op)
		}
		return d, nil
	case *frontend.UnExpr:
		r, err := c.intExpr(v.X)
		if err != nil {
			return 0, err
		}
		z := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.IConst, Dst: z, IImm: 0})
		d := c.b.IReg()
		c.b.Emit(isa.Instr{Op: isa.ISub, Dst: d, A: z, B: r})
		return d, nil
	}
	return 0, fmt.Errorf("kcc: unsupported int expression %T", x)
}

func (c *structured) floatExpr(x frontend.Expr) (int, error) {
	switch v := x.(type) {
	case *frontend.NumLit:
		r := c.b.FReg()
		f := v.F
		if v.IsInt {
			f = float64(v.I)
		}
		c.b.Emit(isa.Instr{Op: isa.SConst, Dst: r, Imm: f})
		return r, nil
	case *frontend.CastExpr:
		// Runtime int→float conversion: move through a const multiply is
		// not expressible; FG3-lite converts via an IAdd trick. Casts of
		// constants are folded; runtime casts are rare in kernels.
		if lit, ok := v.X.(*frontend.NumLit); ok {
			r := c.b.FReg()
			c.b.Emit(isa.Instr{Op: isa.SConst, Dst: r, Imm: float64(lit.I)})
			return r, nil
		}
		return 0, fmt.Errorf("kcc: runtime int→float casts are not supported; use float literals")
	case *frontend.VarRef:
		r, ok := c.findFloat(v.Name)
		if !ok {
			return 0, fmt.Errorf("kcc: undefined float %q", v.Name)
		}
		return r, nil
	case *frontend.IndexExpr:
		addr, err := c.address(v.Name, v.Indices)
		if err != nil {
			return 0, err
		}
		r := c.b.FReg()
		c.b.Emit(isa.Instr{Op: isa.SLoad, Dst: r, A: addr, IImm: 0})
		return r, nil
	case *frontend.BinExpr:
		l, err := c.floatExpr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := c.floatExpr(v.R)
		if err != nil {
			return 0, err
		}
		d := c.b.FReg()
		op := map[string]isa.Opcode{"+": isa.SAdd, "-": isa.SSub, "*": isa.SMul, "/": isa.SDiv}[v.Op]
		if op == isa.Invalid {
			return 0, fmt.Errorf("kcc: float operator %q unsupported", v.Op)
		}
		c.b.Emit(isa.Instr{Op: op, Dst: d, A: l, B: r})
		return d, nil
	case *frontend.UnExpr:
		r, err := c.floatExpr(v.X)
		if err != nil {
			return 0, err
		}
		d := c.b.FReg()
		c.b.Emit(isa.Instr{Op: isa.SNeg, Dst: d, A: r})
		return d, nil
	case *frontend.CallExpr:
		args := make([]int, len(v.Args))
		for i, a := range v.Args {
			r, err := c.floatExpr(a)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		d := c.b.FReg()
		switch v.Name {
		case "sqrt":
			c.b.Emit(isa.Instr{Op: isa.SSqrt, Dst: d, A: args[0]})
		case "abs":
			c.b.Emit(isa.Instr{Op: isa.SAbs, Dst: d, A: args[0]})
		case "sgn":
			c.b.Emit(isa.Instr{Op: isa.SSgn, Dst: d, A: args[0]})
		default:
			c.b.Emit(isa.Instr{Op: isa.CallFn, Dst: d, Sym: v.Name, Args: args})
		}
		return d, nil
	}
	return 0, fmt.Errorf("kcc: unsupported float expression %T", x)
}

// condBranch emits a branch to target when the condition evaluates to
// `jumpIf`. Short-circuit && and || are compiled structurally.
func (c *structured) condBranch(cond frontend.Expr, jumpIf bool, target string) error {
	switch v := cond.(type) {
	case *frontend.BinExpr:
		switch v.Op {
		case "&&":
			if jumpIf {
				// jump to target iff both true: skip around when left false.
				skip := c.b.FreshLabel("and")
				if err := c.condBranch(v.L, false, skip); err != nil {
					return err
				}
				if err := c.condBranch(v.R, true, target); err != nil {
					return err
				}
				c.b.Label(skip)
				return nil
			}
			// jump to target iff any false.
			if err := c.condBranch(v.L, false, target); err != nil {
				return err
			}
			return c.condBranch(v.R, false, target)
		case "||":
			if jumpIf {
				if err := c.condBranch(v.L, true, target); err != nil {
					return err
				}
				return c.condBranch(v.R, true, target)
			}
			skip := c.b.FreshLabel("or")
			if err := c.condBranch(v.L, true, skip); err != nil {
				return err
			}
			if err := c.condBranch(v.R, false, target); err != nil {
				return err
			}
			c.b.Label(skip)
			return nil
		case "<", "<=", ">", ">=", "==", "!=":
			return c.cmpBranch(v, jumpIf, target)
		}
	case *frontend.UnExpr:
		if v.Op == "!" {
			return c.condBranch(v.X, !jumpIf, target)
		}
	}
	return fmt.Errorf("kcc: unsupported condition %T", cond)
}

func (c *structured) cmpBranch(v *frontend.BinExpr, jumpIf bool, target string) error {
	isFloat := v.L.ExprType() == frontend.TypeFloat
	if isFloat && (v.Op == "==" || v.Op == "!=") {
		return fmt.Errorf("kcc: float equality comparisons are not supported; compare with < or >")
	}
	op, swap := branchFor(v.Op, jumpIf, isFloat)
	var l, r int
	var err error
	if isFloat {
		l, err = c.floatExpr(v.L)
		if err != nil {
			return err
		}
		r, err = c.floatExpr(v.R)
		if err != nil {
			return err
		}
	} else {
		l, err = c.intExpr(v.L)
		if err != nil {
			return err
		}
		r, err = c.intExpr(v.R)
		if err != nil {
			return err
		}
	}
	if swap {
		l, r = r, l
	}
	c.b.Emit(isa.Instr{Op: op, A: l, B: r, Target: target})
	return nil
}

// branchFor maps (comparison, polarity, type) to a branch opcode, possibly
// with swapped operands.
func branchFor(op string, jumpIf, isFloat bool) (isa.Opcode, bool) {
	if !jumpIf {
		// jump when condition is FALSE: invert the comparison.
		op = map[string]string{"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}[op]
	}
	if isFloat {
		switch op {
		case "<":
			return isa.BrLTF, false
		case ">":
			return isa.BrLTF, true
		case "<=":
			return isa.BrGEF, true
		default: // ">="
			return isa.BrGEF, false
		}
	}
	switch op {
	case "<":
		return isa.BrLT, false
	case ">":
		return isa.BrLT, true
	case "<=":
		return isa.BrGE, true
	case ">=":
		return isa.BrGE, false
	case "==":
		return isa.BrEQ, false
	default:
		return isa.BrNE, false
	}
}
