package kernels

import (
	"fmt"
	"math"

	"diospyros/internal/kernel"
)

// QRDecomp lifts an n×n Householder QR decomposition: A = Q·R with Q
// orthogonal and R right-triangular (paper §5.7 uses the same Householder
// algorithm). The fully unrolled symbolic form grows very quickly with n —
// the paper's 4×4 instance produced a 509 MB specification text and timed
// out in saturation; here the expression is built as a shared DAG, but its
// e-graph is still by far the largest of the suite.
func QRDecomp(n int) *kernel.Lifted {
	b := kernel.NewBuilder(fmt.Sprintf("qrdecomp_%dx%d", n, n))
	A := b.Input("a", n, n)
	Q := b.Output("q", n, n)
	R := b.Output("r", n, n)

	add, sub, mul, div := kernel.Add, kernel.Sub, kernel.Mul, kernel.DivS
	// Working copies as Go matrices of symbolic scalars.
	r := make([][]kernel.Scalar, n)
	q := make([][]kernel.Scalar, n)
	for i := 0; i < n; i++ {
		r[i] = make([]kernel.Scalar, n)
		q[i] = make([]kernel.Scalar, n)
		for j := 0; j < n; j++ {
			r[i][j] = A.At(i, j)
			if i == j {
				q[i][j] = kernel.Const(1)
			} else {
				q[i][j] = kernel.Const(0)
			}
		}
	}

	for k := 0; k < n-1; k++ {
		// Householder vector v for column k below the diagonal.
		norm2 := kernel.Const(0)
		for i := k; i < n; i++ {
			norm2 = add(norm2, mul(r[i][k], r[i][k]))
		}
		norm := kernel.SqrtS(norm2)
		alpha := kernel.NegS(mul(kernel.SgnS(r[k][k]), norm))
		v := make([]kernel.Scalar, n)
		for i := 0; i < n; i++ {
			switch {
			case i < k:
				v[i] = kernel.Const(0)
			case i == k:
				v[i] = sub(r[k][k], alpha)
			default:
				v[i] = r[i][k]
			}
		}
		vnorm2 := kernel.Const(0)
		for i := k; i < n; i++ {
			vnorm2 = add(vnorm2, mul(v[i], v[i]))
		}
		beta := div(kernel.Const(2), vnorm2)

		// R ← (I − β v vᵀ) R.
		for j := 0; j < n; j++ {
			dot := kernel.Const(0)
			for i := k; i < n; i++ {
				dot = add(dot, mul(v[i], r[i][j]))
			}
			s := mul(beta, dot)
			for i := k; i < n; i++ {
				r[i][j] = sub(r[i][j], mul(v[i], s))
			}
		}
		// Q ← Q (I − β v vᵀ).
		for i := 0; i < n; i++ {
			dot := kernel.Const(0)
			for j := k; j < n; j++ {
				dot = add(dot, mul(q[i][j], v[j]))
			}
			s := mul(beta, dot)
			for j := k; j < n; j++ {
				q[i][j] = sub(q[i][j], mul(v[j], s))
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			Q.Set(i, j, q[i][j])
			R.Set(i, j, r[i][j])
		}
	}
	return b.Lift()
}

// QRDecompRef computes the same Householder QR over concrete data,
// returning Q and R (row-major n×n). It follows the lifted algorithm
// step for step, including sgn(0)=1, so results match symbolically lifted
// code to rounding error.
func QRDecompRef(n int, a []float64) (qOut, rOut []float64) {
	r := make([]float64, n*n)
	q := make([]float64, n*n)
	copy(r, a)
	for i := 0; i < n; i++ {
		q[i*n+i] = 1
	}
	v := make([]float64, n)
	for k := 0; k < n-1; k++ {
		norm2 := 0.0
		for i := k; i < n; i++ {
			norm2 += r[i*n+k] * r[i*n+k]
		}
		norm := math.Sqrt(norm2)
		sign := 1.0
		if r[k*n+k] < 0 {
			sign = -1
		}
		alpha := -sign * norm
		for i := 0; i < n; i++ {
			switch {
			case i < k:
				v[i] = 0
			case i == k:
				v[i] = r[k*n+k] - alpha
			default:
				v[i] = r[i*n+k]
			}
		}
		vnorm2 := 0.0
		for i := k; i < n; i++ {
			vnorm2 += v[i] * v[i]
		}
		beta := 2 / vnorm2
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := k; i < n; i++ {
				dot += v[i] * r[i*n+j]
			}
			s := beta * dot
			for i := k; i < n; i++ {
				r[i*n+j] -= v[i] * s
			}
		}
		for i := 0; i < n; i++ {
			dot := 0.0
			for j := k; j < n; j++ {
				dot += q[i*n+j] * v[j]
			}
			s := beta * dot
			for j := k; j < n; j++ {
				q[i*n+j] -= v[j] * s
			}
		}
	}
	return q, r
}
