package kernels

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
)

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*4 - 2
	}
	return s
}

// liftEval evaluates a lifted spec on an environment.
func liftEval(t *testing.T, l *kernel.Lifted, env *expr.Env) []float64 {
	t.Helper()
	v, err := l.Spec.Eval(env)
	if err != nil {
		t.Fatalf("%s: eval: %v", l.Name, err)
	}
	if len(v.Elems) != l.OutputLen() {
		t.Fatalf("%s: spec has %d elems, metadata says %d", l.Name, len(v.Elems), l.OutputLen())
	}
	return v.Elems
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulLiftMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, sz := range [][3]int{{2, 2, 2}, {2, 3, 3}, {3, 3, 3}, {4, 4, 4}, {1, 5, 2}} {
		m, n, p := sz[0], sz[1], sz[2]
		l := MatMul(m, n, p)
		if l.OutputLen() != m*p {
			t.Fatalf("matmul %v: OutputLen = %d", sz, l.OutputLen())
		}
		for trial := 0; trial < 3; trial++ {
			a, b := randSlice(r, m*n), randSlice(r, n*p)
			env := expr.NewEnv()
			env.Arrays["a"], env.Arrays["b"] = a, b
			got := liftEval(t, l, env)
			want := MatMulRef(m, n, p, a, b)
			if !almostEqual(got, want, 1e-12) {
				t.Fatalf("matmul %v: lift %v != ref %v", sz, got, want)
			}
		}
	}
}

// TestConvSpecMatchesPaperExample checks the lifted specification of the
// §2 example (3×5 input, 3×3 filter) against the four expressions printed
// in the paper for the first four output values.
func TestConvSpecMatchesPaperExample(t *testing.T) {
	l := Conv2D(3, 5, 3, 3)
	if l.OutputLen() != 5*7 {
		t.Fatalf("conv output len = %d, want 35", l.OutputLen())
	}
	// The paper's §2 lists "the first four values of the output matrix" as
	// starting with i00×f11 + i01×f10 + i10×f01 + i11×f00 — which under the
	// loop nest it prints is output element o[1][1] (the first four
	// *interior* values; the literal o[0][0] is the single corner product
	// i00×f00). Check o[1][1] (flat index 1*7+1 = 8) against the paper's
	// expression, flattened: i[r][c] = Get i (5r+c), f[r][c] = Get f (3r+c).
	want0 := "(+ (+ (+ (* (Get i 0) (Get f 4)) (* (Get i 1) (Get f 3))) (* (Get i 5) (Get f 1))) (* (Get i 6) (Get f 0)))"
	got0 := l.Spec.Args[8].String()
	if got0 != want0 {
		t.Errorf("o[1][1]:\n got %s\nwant %s", got0, want0)
	}
	if got := l.Spec.Args[0].String(); got != "(* (Get i 0) (Get f 0))" {
		t.Errorf("o[0][0] = %s, want the corner product", got)
	}
	// The paper's second displayed value (o[1][2]) has 6 products.
	prodCount := 0
	l.Spec.Args[9].Walk(func(e *expr.Expr) bool {
		if e.Op == expr.OpMul {
			prodCount++
		}
		return true
	})
	if prodCount != 6 {
		t.Errorf("second output has %d products, want 6", prodCount)
	}
}

func TestConvLiftMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, sz := range [][4]int{{3, 3, 2, 2}, {3, 5, 3, 3}, {4, 4, 3, 3}, {8, 8, 3, 3}} {
		ir, ic, fr, fc := sz[0], sz[1], sz[2], sz[3]
		l := Conv2D(ir, ic, fr, fc)
		in, f := randSlice(r, ir*ic), randSlice(r, fr*fc)
		env := expr.NewEnv()
		env.Arrays["i"], env.Arrays["f"] = in, f
		got := liftEval(t, l, env)
		want := Conv2DRef(ir, ic, fr, fc, in, f)
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("conv %v mismatch", sz)
		}
	}
}

func TestQProdLiftMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	l := QProd()
	if l.OutputLen() != 7 {
		t.Fatalf("qprod output len = %d, want 7", l.OutputLen())
	}
	for trial := 0; trial < 5; trial++ {
		aq, at := randSlice(r, 4), randSlice(r, 3)
		bq, bt := randSlice(r, 4), randSlice(r, 3)
		env := expr.NewEnv()
		env.Arrays["aq"], env.Arrays["at"] = aq, at
		env.Arrays["bq"], env.Arrays["bt"] = bq, bt
		got := liftEval(t, l, env)
		rq, rt := QProdRef(aq, at, bq, bt)
		want := append(append([]float64{}, rq...), rt...)
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("qprod: lift %v != ref %v", got, want)
		}
	}
}

// QProd composition sanity: rotating by a unit quaternion preserves norm.
func TestQProdRotationPreservesNorm(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		q := randSlice(r, 4)
		n := math.Sqrt(q[0]*q[0] + q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
		for i := range q {
			q[i] /= n
		}
		tvec := randSlice(r, 3)
		_, rt := QProdRef(q, []float64{0, 0, 0}, []float64{1, 0, 0, 0}, tvec)
		n1 := math.Sqrt(tvec[0]*tvec[0] + tvec[1]*tvec[1] + tvec[2]*tvec[2])
		n2 := math.Sqrt(rt[0]*rt[0] + rt[1]*rt[1] + rt[2]*rt[2])
		if math.Abs(n1-n2) > 1e-9 {
			t.Fatalf("rotation changed norm: %g -> %g", n1, n2)
		}
	}
}

func TestQRDecompRefReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 3; trial++ {
			a := randSlice(r, n*n)
			q, rr := QRDecompRef(n, a)
			// A = Q·R.
			qr := MatMulRef(n, n, n, q, rr)
			if !almostEqual(qr, a, 1e-9) {
				t.Fatalf("n=%d: Q*R != A", n)
			}
			// Q orthogonal: QᵀQ = I.
			qt := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					qt[j*n+i] = q[i*n+j]
				}
			}
			qtq := MatMulRef(n, n, n, qt, q)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(qtq[i*n+j]-want) > 1e-9 {
						t.Fatalf("n=%d: QtQ[%d][%d] = %g", n, i, j, qtq[i*n+j])
					}
				}
			}
			// R right-triangular.
			for i := 1; i < n; i++ {
				for j := 0; j < i; j++ {
					if math.Abs(rr[i*n+j]) > 1e-9 {
						t.Fatalf("n=%d: R[%d][%d] = %g, want ~0", n, i, j, rr[i*n+j])
					}
				}
			}
		}
	}
}

func TestQRDecompLiftMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 3} {
		l := QRDecomp(n)
		if l.OutputLen() != 2*n*n {
			t.Fatalf("qr %d output len = %d", n, l.OutputLen())
		}
		a := randSlice(r, n*n)
		env := expr.NewEnv()
		env.Arrays["a"] = a
		got := liftEval(t, l, env)
		q, rr := QRDecompRef(n, a)
		want := append(append([]float64{}, q...), rr...)
		if !almostEqual(got, want, 1e-9) {
			t.Fatalf("qr %d: lift %v != ref %v", n, got, want)
		}
	}
}

func TestQRDecomp4x4LiftsWithoutBlowup(t *testing.T) {
	// The 4×4 QR spec is huge as a tree but must stay polynomial as a DAG
	// and still evaluate correctly (DAG-memoized evaluation).
	l := QRDecomp(4)
	r := rand.New(rand.NewSource(7))
	a := randSlice(r, 16)
	env := expr.NewEnv()
	env.Arrays["a"] = a
	got := liftEval(t, l, env)
	q, rr := QRDecompRef(4, a)
	want := append(append([]float64{}, q...), rr...)
	if !almostEqual(got, want, 1e-8) {
		t.Fatal("4x4 qr lift mismatch")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("write to input", func() {
		b := kernel.NewBuilder("bad")
		in := b.Input("a", 2, 2)
		in.Set(0, 0, kernel.Const(1))
	})
	expectPanic("duplicate name", func() {
		b := kernel.NewBuilder("bad")
		b.Input("a", 2, 2)
		b.Input("a", 2, 2)
	})
	expectPanic("out of bounds", func() {
		b := kernel.NewBuilder("bad")
		in := b.Input("a", 2, 2)
		in.At(2, 0)
	})
	expectPanic("no outputs", func() {
		b := kernel.NewBuilder("bad")
		b.Input("a", 2, 2)
		b.Lift()
	})
}

func TestBuilderPeephole(t *testing.T) {
	z, one := kernel.Const(0), kernel.Const(1)
	x := kernel.Scalar{}
	_ = x
	b := kernel.NewBuilder("peep")
	in := b.Input("a", 1, 1)
	v := in.At(0, 0)
	if got := kernel.Add(z, v).Expr().String(); got != "(Get a 0)" {
		t.Errorf("0+x = %s", got)
	}
	if got := kernel.Mul(one, v).Expr().String(); got != "(Get a 0)" {
		t.Errorf("1*x = %s", got)
	}
	if got := kernel.Mul(z, v).Expr().String(); got != "0" {
		t.Errorf("0*x = %s", got)
	}
	if got := kernel.Add(kernel.Const(2), kernel.Const(3)).Expr().String(); got != "5" {
		t.Errorf("2+3 = %s", got)
	}
	if got := kernel.Call("rsqrt", v).Expr().String(); got != "(func rsqrt (Get a 0))" {
		t.Errorf("call = %s", got)
	}
}
