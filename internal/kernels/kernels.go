// Package kernels defines the benchmark kernels of the paper's evaluation
// (Table 1): fixed-size 2-D convolution, matrix multiply, quaternion
// (Euclidean Lie group) product, and QR decomposition — each as a scalar
// reference implementation over the symbolic kernel builder, which lifts it
// to the vector DSL, plus plain float64 references for differential testing.
package kernels

import (
	"fmt"

	"diospyros/internal/kernel"
)

// MatMul lifts an m×n by n×p matrix multiply.
func MatMul(m, n, p int) *kernel.Lifted {
	b := kernel.NewBuilder(fmt.Sprintf("matmul_%dx%d_%dx%d", m, n, n, p))
	A := b.Input("a", m, n)
	B := b.Input("b", n, p)
	C := b.Output("c", m, p)
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			acc := kernel.Const(0)
			for k := 0; k < n; k++ {
				acc = kernel.Add(acc, kernel.Mul(A.At(i, k), B.At(k, j)))
			}
			C.Set(i, j, acc)
		}
	}
	return b.Lift()
}

// MatMulRef computes the same product over concrete data (row-major).
func MatMulRef(m, n, p int, a, b []float64) []float64 {
	c := make([]float64, m*p)
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*p+j]
			}
			c[i*p+j] = s
		}
	}
	return c
}

// Conv2D lifts the paper's §2 motivating kernel: 2-D convolution of an
// ir×ic input with an fr×fc filter, producing a padded
// (ir+fr−1)×(ic+fc−1) output. The filter transposition (fRT, fCT) and the
// boundary-condition if mirror the paper's C code exactly.
func Conv2D(ir, ic, fr, fc int) *kernel.Lifted {
	b := kernel.NewBuilder(fmt.Sprintf("conv2d_%dx%d_%dx%d", ir, ic, fr, fc))
	in := b.Input("i", ir, ic)
	f := b.Input("f", fr, fc)
	oRows, oCols := ir+fr-1, ic+fc-1
	out := b.Output("o", oRows, oCols)
	for oRow := 0; oRow < oRows; oRow++ {
		for oCol := 0; oCol < oCols; oCol++ {
			for fRow := 0; fRow < fr; fRow++ {
				for fCol := 0; fCol < fc; fCol++ {
					fRT := fr - 1 - fRow
					fCT := fc - 1 - fCol
					iRow := oRow - fRT
					iCol := oCol - fCT
					if iRow >= 0 && iRow < ir && iCol >= 0 && iCol < ic {
						out.Set(oRow, oCol, kernel.Add(out.At(oRow, oCol),
							kernel.Mul(in.At(iRow, iCol), f.At(fRT, fCT))))
					}
				}
			}
		}
	}
	return b.Lift()
}

// Conv2DRef computes the same convolution over concrete data.
func Conv2DRef(ir, ic, fr, fc int, in, f []float64) []float64 {
	oRows, oCols := ir+fr-1, ic+fc-1
	out := make([]float64, oRows*oCols)
	for oRow := 0; oRow < oRows; oRow++ {
		for oCol := 0; oCol < oCols; oCol++ {
			for fRow := 0; fRow < fr; fRow++ {
				for fCol := 0; fCol < fc; fCol++ {
					fRT := fr - 1 - fRow
					fCT := fc - 1 - fCol
					iRow := oRow - fRT
					iCol := oCol - fCT
					if iRow >= 0 && iRow < ir && iCol >= 0 && iCol < ic {
						out[oRow*oCols+oCol] += in[iRow*ic+iCol] * f[fRT*fc+fCT]
					}
				}
			}
		}
	}
	return out
}

// QProd lifts the Euclidean Lie group product (paper §5.3): the product of
// two rigid transforms represented as quaternion+translation pairs
// (q1, t1)·(q2, t2) = (q1⊗q2, q1·t2 + t1), where q1·t2 rotates t2 by q1.
// Quaternions are stored (w, x, y, z). Sizes: 4, 3, 4, 3.
func QProd() *kernel.Lifted {
	b := kernel.NewBuilder("qprod")
	q1 := b.InputVec("aq", 4)
	t1 := b.InputVec("at", 3)
	q2 := b.InputVec("bq", 4)
	t2 := b.InputVec("bt", 3)
	qo := b.OutputVec("rq", 4)
	to := b.OutputVec("rt", 3)

	w1, x1, y1, z1 := q1.AtVec(0), q1.AtVec(1), q1.AtVec(2), q1.AtVec(3)
	w2, x2, y2, z2 := q2.AtVec(0), q2.AtVec(1), q2.AtVec(2), q2.AtVec(3)
	add, sub, mul := kernel.Add, kernel.Sub, kernel.Mul

	// Hamilton product q1 ⊗ q2.
	qo.SetVec(0, sub(sub(sub(mul(w1, w2), mul(x1, x2)), mul(y1, y2)), mul(z1, z2)))
	qo.SetVec(1, add(add(sub(mul(w1, x2), mul(z1, y2)), mul(x1, w2)), mul(y1, z2)))
	qo.SetVec(2, add(add(sub(mul(w1, y2), mul(x1, z2)), mul(y1, w2)), mul(z1, x2)))
	qo.SetVec(3, add(sub(add(mul(w1, z2), mul(x1, y2)), mul(y1, x2)), mul(z1, w2)))

	// Rotate t2 by q1: t' = t2 + 2*(u × (u × t2 + w1*t2)), u = (x1,y1,z1),
	// then translate by t1.
	u := [3]kernel.Scalar{x1, y1, z1}
	t := [3]kernel.Scalar{t2.AtVec(0), t2.AtVec(1), t2.AtVec(2)}
	cross := func(a, b [3]kernel.Scalar) [3]kernel.Scalar {
		return [3]kernel.Scalar{
			sub(mul(a[1], b[2]), mul(a[2], b[1])),
			sub(mul(a[2], b[0]), mul(a[0], b[2])),
			sub(mul(a[0], b[1]), mul(a[1], b[0])),
		}
	}
	var wt [3]kernel.Scalar
	for i := range wt {
		wt[i] = mul(w1, t[i])
	}
	inner := cross(u, t)
	for i := range inner {
		inner[i] = add(inner[i], wt[i])
	}
	outer := cross(u, inner)
	two := kernel.Const(2)
	for i := 0; i < 3; i++ {
		to.SetVec(i, add(add(t[i], mul(two, outer[i])), t1.AtVec(i)))
	}
	return b.Lift()
}

// QProdRef computes the Euclidean Lie group product over concrete data.
// Layout matches QProd: q = (w, x, y, z).
func QProdRef(aq, at, bq, bt []float64) (rq, rt []float64) {
	w1, x1, y1, z1 := aq[0], aq[1], aq[2], aq[3]
	w2, x2, y2, z2 := bq[0], bq[1], bq[2], bq[3]
	rq = []float64{
		w1*w2 - x1*x2 - y1*y2 - z1*z2,
		w1*x2 - z1*y2 + x1*w2 + y1*z2,
		w1*y2 - x1*z2 + y1*w2 + z1*x2,
		w1*z2 + x1*y2 - y1*x2 + z1*w2,
	}
	u := []float64{x1, y1, z1}
	t := bt
	cross := func(a, b []float64) []float64 {
		return []float64{
			a[1]*b[2] - a[2]*b[1],
			a[2]*b[0] - a[0]*b[2],
			a[0]*b[1] - a[1]*b[0],
		}
	}
	inner := cross(u, t)
	for i := range inner {
		inner[i] += w1 * t[i]
	}
	outer := cross(u, inner)
	rt = make([]float64, 3)
	for i := range rt {
		rt[i] = t[i] + 2*outer[i] + at[i]
	}
	return rq, rt
}
