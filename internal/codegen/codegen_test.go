package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/vir"
)

func decls(names []string, n int) []kernel.ArrayDecl {
	var out []kernel.ArrayDecl
	for _, name := range names {
		out = append(out, kernel.ArrayDecl{Name: name, Rows: n, Cols: 1})
	}
	return out
}

// buildVecAdd is a simple 4-wide c = a + b.
func buildVecAdd() *vir.Program {
	p := vir.NewProgram("vadd", 4, decls([]string{"a", "b"}, 4), decls([]string{"c"}, 4))
	la := p.Emit(vir.Instr{Op: vir.LoadV, Array: "a", Off: 0})
	lb := p.Emit(vir.Instr{Op: vir.LoadV, Array: "b", Off: 0})
	s := p.Emit(vir.Instr{Op: vir.AddV, Args: []vir.ID{la, lb}})
	p.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{s}, Array: "c", Off: 0})
	return p
}

func TestToISAMatchesVIRInterp(t *testing.T) {
	p := buildVecAdd()
	prog, err := ToISA(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	in := map[string][]float64{"a": make([]float64, 4), "b": make([]float64, 4)}
	for _, s := range in {
		for i := range s {
			s[i] = r.Float64()
		}
	}
	want, err := vir.Interp(p, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Execute(prog, in, p.Inputs, p.Outputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if got["c"][i] != want["c"][i] {
			t.Fatalf("c[%d] = %g, want %g", i, got["c"][i], want["c"][i])
		}
	}
}

func TestMacRegisterReuse(t *testing.T) {
	// A MAC whose accumulator dies at the MAC must not emit a VMov; one
	// whose accumulator is still live must.
	build := func(accLiveAfter bool) *isa.Program {
		p := vir.NewProgram("mac", 4, decls([]string{"a", "b"}, 4), decls([]string{"c"}, 8))
		la := p.Emit(vir.Instr{Op: vir.LoadV, Array: "a", Off: 0})
		lb := p.Emit(vir.Instr{Op: vir.LoadV, Array: "b", Off: 0})
		mac := p.Emit(vir.Instr{Op: vir.MacV, Args: []vir.ID{la, lb, lb}})
		p.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{mac}, Array: "c", Off: 0})
		if accLiveAfter {
			p.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{la}, Array: "c", Off: 4})
		}
		prog, err := ToISA(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	if n := build(false).OpHistogram()[isa.VMov]; n != 0 {
		t.Fatalf("dead accumulator still copied (%d VMov)", n)
	}
	if n := build(true).OpHistogram()[isa.VMov]; n != 1 {
		t.Fatalf("live accumulator not protected (%d VMov, want 1)", n)
	}
}

func TestToISARejectsWrongWidth(t *testing.T) {
	p := vir.NewProgram("w2", 2, decls([]string{"a"}, 2), decls([]string{"c"}, 2))
	if _, err := ToISA(p, nil); err == nil {
		t.Fatal("width-2 program accepted for the default width-4 target")
	}
	if _, err := ToISA(p, isa.NewFG3Lite(8)); err == nil {
		t.Fatal("width-2 program accepted for a width-8 target")
	}
	if _, err := ToISA(p, isa.NewFG3Lite(2)); err != nil {
		t.Fatalf("width-2 program rejected for a width-2 target: %v", err)
	}
}

func TestExecuteValidatesInputs(t *testing.T) {
	p := buildVecAdd()
	prog, err := ToISA(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Execute(prog, map[string][]float64{"a": make([]float64, 4)}, p.Inputs, p.Outputs, nil); err == nil {
		t.Fatal("missing input accepted")
	}
	if _, _, err := Execute(prog, map[string][]float64{
		"a": make([]float64, 3), "b": make([]float64, 4),
	}, p.Inputs, p.Outputs, nil); err == nil {
		t.Fatal("wrong-size input accepted")
	}
}

func TestToCContainsIntrinsics(t *testing.T) {
	p := vir.NewProgram("all", 4, decls([]string{"a", "b"}, 8), decls([]string{"c"}, 8))
	la := p.Emit(vir.Instr{Op: vir.LoadV, Array: "a", Off: 0})
	lb := p.Emit(vir.Instr{Op: vir.LoadV, Array: "b", Off: 0})
	sh := p.Emit(vir.Instr{Op: vir.Shuffle, Args: []vir.ID{la}, Idx: []int{1, 0, 3, 2}})
	sel := p.Emit(vir.Instr{Op: vir.Select, Args: []vir.ID{sh, lb}, Idx: []int{0, 5, 2, 7}})
	mac := p.Emit(vir.Instr{Op: vir.MacV, Args: []vir.ID{sel, la, lb}})
	sc := p.Emit(vir.Instr{Op: vir.ConstS, F: 2})
	sp := p.Emit(vir.Instr{Op: vir.Splat, Args: []vir.ID{sc}})
	d := p.Emit(vir.Instr{Op: vir.DivV, Args: []vir.ID{mac, sp}})
	p.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{d}, Array: "c", Off: 0})
	p.Emit(vir.Instr{Op: vir.StoreVN, Args: []vir.ID{d}, Array: "c", Off: 4, N: 3})
	c := ToC(p)
	for _, want := range []string{
		"PDX_LAV_MXF32", "PDX_SHFL_MXF32", "PDX_SEL_MXF32", "PDX_MAC_MXF32",
		"PDX_REP_MXF32", "PDX_DIV_MXF32", "PDX_SAV_MXF32", "PDX_SAVN_MXF32",
		"const float* a", "float* c", "kernel_all",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("C output missing %q:\n%s", want, c)
		}
	}
}

func TestBuildLayoutPadding(t *testing.T) {
	lay := BuildLayout(4, decls([]string{"a"}, 3), decls([]string{"c"}, 5))
	// 3 -> 4+4 slack = 8; 5 -> 8+4 = 12.
	if lay.Region("a").Len != 8 {
		t.Fatalf("a region len = %d", lay.Region("a").Len)
	}
	if lay.Region("c").Len != 12 {
		t.Fatalf("c region len = %d", lay.Region("c").Len)
	}
}

// TestRegisterPressureRealistic compiles representative kernels through the
// full pipeline elsewhere; here, check directly that the recycling
// allocator keeps generated code within a realistic DSP register file.
func TestRegisterPressureRealistic(t *testing.T) {
	// A long MAC reduction chain with interleaved shuffles: worst-case
	// straight-line pressure shape.
	p := vir.NewProgram("pressure", 4, decls([]string{"a", "b"}, 64), decls([]string{"c"}, 4))
	acc := p.Emit(vir.Instr{Op: vir.ConstV, Fs: make([]float64, 4)})
	for k := 0; k < 16; k++ {
		la := p.Emit(vir.Instr{Op: vir.LoadV, Array: "a", Off: 4 * k})
		lb := p.Emit(vir.Instr{Op: vir.LoadV, Array: "b", Off: 4 * k})
		sh := p.Emit(vir.Instr{Op: vir.Shuffle, Args: []vir.ID{lb}, Idx: []int{3, 2, 1, 0}})
		acc = p.Emit(vir.Instr{Op: vir.MacV, Args: []vir.ID{acc, la, sh}})
	}
	p.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{acc}, Array: "c", Off: 0})
	prog, err := ToISA(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct vector registers actually named.
	maxV := 0
	for _, in := range prog.Instrs {
		if in.Op.IsVector() && in.Dst > maxV {
			maxV = in.Dst
		}
	}
	if maxV >= 8 {
		t.Fatalf("reduction chain uses %d vector registers; recycling broken", maxV+1)
	}
	// And the program still computes the right thing.
	r := rand.New(rand.NewSource(4))
	in := map[string][]float64{"a": make([]float64, 64), "b": make([]float64, 64)}
	for _, s := range in {
		for i := range s {
			s[i] = r.Float64()
		}
	}
	want, err := vir.Interp(p, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Execute(prog, in, p.Inputs, p.Outputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want["c"] {
		if got["c"][i] != want["c"][i] {
			t.Fatalf("c[%d] = %g, want %g", i, got["c"][i], want["c"][i])
		}
	}
}
