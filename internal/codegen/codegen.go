// Package codegen translates the optimized low-level vector IR into
// (a) FG3-lite assembly for cycle-accurate simulation and (b) C++ with
// Fusion-G3-style vector intrinsics — the artifact Diospyros ships to the
// vendor toolchain (paper §4–5.1).
package codegen

import (
	"fmt"

	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/sim"
	"diospyros/internal/vir"
)

// BuildLayout packs a kernel's inputs then outputs into simulated memory.
// Every region is width-padded, with one extra vector of slack, so that
// aligned-window loads and unaligned loads with in-bounds live lanes never
// fault (standard over-allocation for DSP vector buffers).
func BuildLayout(width int, inputs, outputs []kernel.ArrayDecl) *isa.Layout {
	pad := func(n int) int { return (n+width-1)/width*width + width }
	lay := isa.NewLayout()
	for _, d := range inputs {
		lay.Add(d.Name, pad(d.Len()))
	}
	for _, d := range outputs {
		lay.Add(d.Name, pad(d.Len()))
	}
	return lay
}

// ToISA compiles a straight-line IR program to FG3-lite assembly for the
// given target machine. A nil target means the default (fg3lite-4). The IR's
// width must match the target's: the emitted program carries the target so
// the simulator sizes vector registers and latencies from it.
func ToISA(p *vir.Program, t *isa.Target) (*isa.Program, error) {
	if t == nil {
		t = isa.Default()
	}
	if p.Width != t.Width {
		return nil, fmt.Errorf("codegen: IR width %d does not match target %s width %d", p.Width, t, t.Width)
	}
	lay := BuildLayout(p.Width, p.Inputs, p.Outputs)
	b := isa.NewBuilder(p.Name, lay)
	b.SetTarget(t)

	// One address register per array.
	bases := map[string]int{}
	for _, r := range lay.Regions() {
		reg := b.IReg()
		bases[r.Name] = reg
		b.Emit(isa.Instr{Op: isa.IConst, Dst: reg, IImm: r.Base})
	}
	base := func(arr string) (int, error) {
		reg, ok := bases[arr]
		if !ok {
			return 0, fmt.Errorf("codegen: unknown array %q", arr)
		}
		return reg, nil
	}

	// Register management: SSA values are assigned physical registers from
	// free lists; a register is recycled as soon as its value's last use
	// has been consumed (FG3-lite, like the real G3, reads all operands
	// before writing the destination, so a source dying at an instruction
	// may serve as that instruction's destination). The resulting register
	// pressure is what a linear-scan allocator would achieve on
	// straight-line code; Build records the high-water marks.
	fregs := map[vir.ID]int{}
	vregs := map[vir.ID]int{}
	remaining := p.UseCounts()
	var freeF, freeV []int
	allocF := func() int {
		if n := len(freeF); n > 0 {
			r := freeF[n-1]
			freeF = freeF[:n-1]
			return r
		}
		return b.FReg()
	}
	allocV := func() int {
		if n := len(freeV); n > 0 {
			r := freeV[n-1]
			freeV = freeV[:n-1]
			return r
		}
		return b.VReg()
	}
	freg := func(id vir.ID) (int, error) {
		r, ok := fregs[id]
		if !ok {
			return 0, fmt.Errorf("codegen: %%%d is not a scalar value", id)
		}
		return r, nil
	}
	vreg := func(id vir.ID) (int, error) {
		r, ok := vregs[id]
		if !ok {
			return 0, fmt.Errorf("codegen: %%%d is not a vector value", id)
		}
		return r, nil
	}
	// takeV consumes one use of a vector operand; at the last use the
	// register is recycled (and reported reusable so in-place ops like
	// VMac can claim it as their destination).
	takeV := func(id vir.ID) (reg int, reusable bool, err error) {
		r, err := vreg(id)
		if err != nil {
			return 0, false, err
		}
		remaining[id]--
		if remaining[id] == 0 {
			freeV = append(freeV, r)
			return r, true, nil
		}
		return r, false, nil
	}
	takeF := func(id vir.ID) (int, error) {
		r, err := freg(id)
		if err != nil {
			return 0, err
		}
		remaining[id]--
		if remaining[id] == 0 {
			freeF = append(freeF, r)
		}
		return r, nil
	}
	// claimV removes a just-recycled register from the free list when an
	// in-place operation keeps it live as its destination.
	claimV := func(r int) {
		for i := len(freeV) - 1; i >= 0; i-- {
			if freeV[i] == r {
				freeV = append(freeV[:i], freeV[i+1:]...)
				return
			}
		}
	}

	binopS := map[vir.Op]isa.Opcode{
		vir.AddS: isa.SAdd, vir.SubS: isa.SSub, vir.MulS: isa.SMul, vir.DivS: isa.SDiv,
	}
	unopS := map[vir.Op]isa.Opcode{
		vir.NegS: isa.SNeg, vir.SqrtS: isa.SSqrt, vir.SgnS: isa.SSgn,
	}
	binopV := map[vir.Op]isa.Opcode{
		vir.AddV: isa.VAdd, vir.SubV: isa.VSub, vir.MulV: isa.VMul, vir.DivV: isa.VDiv,
	}
	unopV := map[vir.Op]isa.Opcode{
		vir.NegV: isa.VNeg, vir.SqrtV: isa.VSqrt, vir.SgnV: isa.VSgn,
	}

	for _, in := range p.Instrs {
		switch in.Op {
		case vir.ConstS:
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.SConst, Dst: d, Imm: in.F})
		case vir.LoadS:
			ar, err := base(in.Array)
			if err != nil {
				return nil, err
			}
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.SLoad, Dst: d, A: ar, IImm: in.Off})
		case vir.AddS, vir.SubS, vir.MulS, vir.DivS:
			a, err := takeF(in.Args[0])
			if err != nil {
				return nil, err
			}
			c, err := takeF(in.Args[1])
			if err != nil {
				return nil, err
			}
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: binopS[in.Op], Dst: d, A: a, B: c})
		case vir.NegS, vir.SqrtS, vir.SgnS:
			a, err := takeF(in.Args[0])
			if err != nil {
				return nil, err
			}
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: unopS[in.Op], Dst: d, A: a})
		case vir.CallS:
			args := make([]int, len(in.Args))
			for i, id := range in.Args {
				r, err := takeF(id)
				if err != nil {
					return nil, err
				}
				args[i] = r
			}
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.CallFn, Dst: d, Sym: in.Sym, Args: args})
		case vir.ExtractLane:
			a, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			d := allocF()
			fregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VExtract, Dst: d, A: a, IImm: in.Lane})

		case vir.ConstV:
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VConst, Dst: d, Vals: append([]float64(nil), in.Fs...)})
		case vir.LoadV:
			ar, err := base(in.Array)
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VLoad, Dst: d, A: ar, IImm: in.Off})
		case vir.Splat:
			a, err := takeF(in.Args[0])
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VBcast, Dst: d, A: a})
		case vir.Insert:
			src, reuse, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			s, err := takeF(in.Args[1])
			if err != nil {
				return nil, err
			}
			d := src
			if reuse {
				claimV(src) // stays live as the in-place destination
			} else {
				d = allocV()
				b.Emit(isa.Instr{Op: isa.VMov, Dst: d, A: src})
			}
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VInsert, Dst: d, A: s, IImm: in.Lane})
		case vir.Shuffle:
			a, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VShfl, Dst: d, A: a, Idx: append([]int(nil), in.Idx...)})
		case vir.Select:
			a, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			c, _, err := takeV(in.Args[1])
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VSel, Dst: d, A: a, B: c, Idx: append([]int(nil), in.Idx...)})
		case vir.AddV, vir.SubV, vir.MulV, vir.DivV:
			a, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			c, _, err := takeV(in.Args[1])
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: binopV[in.Op], Dst: d, A: a, B: c})
		case vir.MacV:
			// FG3-lite's VMac accumulates in place; reuse the accumulator
			// register when this is its last use, else copy first. Because
			// copy+MAC is a two-instruction sequence, dying source
			// registers are released only *after* both emit — the VMov's
			// destination must not alias a source the VMac still reads.
			takeDeferred := func(id vir.ID) (int, bool, error) {
				r, err := vreg(id)
				if err != nil {
					return 0, false, err
				}
				remaining[id]--
				return r, remaining[id] == 0, nil
			}
			acc, accDies, err := takeDeferred(in.Args[0])
			if err != nil {
				return nil, err
			}
			a, aDies, err := takeDeferred(in.Args[1])
			if err != nil {
				return nil, err
			}
			c, cDies, err := takeDeferred(in.Args[2])
			if err != nil {
				return nil, err
			}
			d := acc
			if !accDies {
				d = allocV()
				b.Emit(isa.Instr{Op: isa.VMov, Dst: d, A: acc})
			}
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VMac, Dst: d, A: a, B: c})
			for _, s := range []struct {
				reg  int
				dies bool
			}{{acc, accDies}, {a, aDies}, {c, cDies}} {
				if s.dies && s.reg != d {
					freeV = append(freeV, s.reg)
				}
			}
		case vir.NegV, vir.SqrtV, vir.SgnV:
			a, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: unopV[in.Op], Dst: d, A: a})
		case vir.CallV:
			args := make([]int, len(in.Args))
			for i, id := range in.Args {
				r, _, err := takeV(id)
				if err != nil {
					return nil, err
				}
				args[i] = r
			}
			d := allocV()
			vregs[in.ID] = d
			b.Emit(isa.Instr{Op: isa.VCallFn, Dst: d, Sym: in.Sym, Args: args})

		case vir.StoreS:
			ar, err := base(in.Array)
			if err != nil {
				return nil, err
			}
			s, err := takeF(in.Args[0])
			if err != nil {
				return nil, err
			}
			b.Emit(isa.Instr{Op: isa.SStore, A: ar, IImm: in.Off, B: s})
		case vir.StoreV:
			ar, err := base(in.Array)
			if err != nil {
				return nil, err
			}
			s, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			b.Emit(isa.Instr{Op: isa.VStore, A: ar, IImm: in.Off, B: s})
		case vir.StoreVN:
			ar, err := base(in.Array)
			if err != nil {
				return nil, err
			}
			s, _, err := takeV(in.Args[0])
			if err != nil {
				return nil, err
			}
			b.Emit(isa.Instr{Op: isa.VStoreN, A: ar, IImm: in.Off, B: s, IImm2: in.N})
		default:
			return nil, fmt.Errorf("codegen: unimplemented IR op %s", in.Op)
		}
	}
	return b.Build()
}

// Execute runs a compiled program on the simulator with the given inputs
// bound to their regions, returning outputs and the simulation result.
func Execute(p *isa.Program, inputs map[string][]float64,
	inDecls, outDecls []kernel.ArrayDecl,
	funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {

	mem := make([]float64, p.Layout.Size())
	for _, d := range inDecls {
		data, ok := inputs[d.Name]
		if !ok {
			return nil, nil, fmt.Errorf("codegen: missing input %q", d.Name)
		}
		if len(data) != d.Len() {
			return nil, nil, fmt.Errorf("codegen: input %q has %d elements, want %d", d.Name, len(data), d.Len())
		}
		copy(mem[p.Layout.Base(d.Name):], data)
	}
	cfg := sim.Defaults()
	cfg.Funcs = funcs
	res, err := sim.Run(p, mem, cfg)
	if err != nil {
		return nil, nil, err
	}
	outputs := map[string][]float64{}
	for _, d := range outDecls {
		b := p.Layout.Base(d.Name)
		outputs[d.Name] = append([]float64(nil), res.Mem[b:b+d.Len()]...)
	}
	return outputs, res, nil
}
