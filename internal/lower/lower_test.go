package lower

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
	"diospyros/internal/vir"
)

func lifted(name string, ins map[string]int, outs map[string]int, spec string) *kernel.Lifted {
	l := &kernel.Lifted{Name: name, Spec: expr.MustParse(spec)}
	for n, sz := range ins {
		l.Inputs = append(l.Inputs, kernel.ArrayDecl{Name: n, Rows: sz, Cols: 1})
	}
	for n, sz := range outs {
		l.Outputs = append(l.Outputs, kernel.ArrayDecl{Name: n, Rows: sz, Cols: 1})
	}
	return l
}

// lowerAndRun lowers a program and compares the IR interpreter against the
// spec's own evaluation.
func lowerAndRun(t *testing.T, l *kernel.Lifted, prog string, seed int64) *vir.Program {
	t.Helper()
	p, err := Lower(l.Name, expr.MustParse(prog), 4, l)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p = vir.Optimize(p)
	r := rand.New(rand.NewSource(seed))
	inputs := map[string][]float64{}
	env := expr.NewEnv()
	for _, d := range l.Inputs {
		s := make([]float64, d.Len())
		for i := range s {
			s[i] = r.Float64()*4 - 2
		}
		inputs[d.Name] = s
		env.Arrays[d.Name] = s
	}
	got, err := vir.Interp(p, inputs, nil)
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, p)
	}
	want, err := expr.MustParse(prog).Eval(env)
	if err != nil {
		t.Fatalf("spec eval: %v", err)
	}
	flat := want.AsSlice()
	idx := 0
	for _, d := range l.Outputs {
		for i := 0; i < d.Len(); i++ {
			if math.Abs(got[d.Name][i]-flat[idx]) > 1e-12 {
				t.Fatalf("%s[%d] = %g, want %g\n%s", d.Name, i, got[d.Name][i], flat[idx], p)
			}
			idx++
		}
	}
	return p
}

func countOps(p *vir.Program, ops ...vir.Op) int {
	n := 0
	for _, in := range p.Instrs {
		for _, op := range ops {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestContiguousVecIsOneLoad(t *testing.T) {
	l := lifted("contig", map[string]int{"a": 8}, map[string]int{"c": 4},
		"(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))")
	p := lowerAndRun(t, l, "(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))", 1)
	if countOps(p, vir.LoadV) != 1 || countOps(p, vir.Shuffle, vir.Select) != 0 {
		t.Fatalf("contiguous Vec not a single load:\n%s", p)
	}
}

func TestUnalignedContiguousIsOneLoad(t *testing.T) {
	l := lifted("unaligned", map[string]int{"a": 8}, map[string]int{"c": 4},
		"(Vec (Get a 3) (Get a 4) (Get a 5) (Get a 6))")
	p := lowerAndRun(t, l, "(Vec (Get a 3) (Get a 4) (Get a 5) (Get a 6))", 2)
	if countOps(p, vir.LoadV) != 1 || countOps(p, vir.Shuffle, vir.Select) != 0 {
		t.Fatalf("unaligned run not a single load:\n%s", p)
	}
}

func TestSingleWindowGatherIsShuffle(t *testing.T) {
	l := lifted("gather", map[string]int{"a": 4}, map[string]int{"c": 4},
		"(Vec (Get a 3) (Get a 0) (Get a 2) (Get a 1))")
	p := lowerAndRun(t, l, "(Vec (Get a 3) (Get a 0) (Get a 2) (Get a 1))", 3)
	if countOps(p, vir.LoadV) != 1 || countOps(p, vir.Shuffle) != 1 || countOps(p, vir.Select) != 0 {
		t.Fatalf("single-window gather should be load+shuffle:\n%s", p)
	}
}

func TestTwoWindowGatherIsSelect(t *testing.T) {
	l := lifted("sel", map[string]int{"a": 8}, map[string]int{"c": 4},
		"(Vec (Get a 1) (Get a 6) (Get a 2) (Get a 5))")
	p := lowerAndRun(t, l, "(Vec (Get a 1) (Get a 6) (Get a 2) (Get a 5))", 4)
	if countOps(p, vir.LoadV) != 2 || countOps(p, vir.Select) != 1 {
		t.Fatalf("two-window gather should be 2 loads + select:\n%s", p)
	}
}

func TestThreeWindowGatherNestsSelects(t *testing.T) {
	l := lifted("nest", map[string]int{"a": 12}, map[string]int{"c": 4},
		"(Vec (Get a 1) (Get a 6) (Get a 9) (Get a 2))")
	p := lowerAndRun(t, l, "(Vec (Get a 1) (Get a 6) (Get a 9) (Get a 2))", 5)
	if countOps(p, vir.LoadV) != 3 || countOps(p, vir.Select) != 2 {
		t.Fatalf("three-window gather should be 3 loads + 2 nested selects:\n%s", p)
	}
}

func TestBroadcast(t *testing.T) {
	// A Vec of four identical lane pointers becomes a splat.
	g := expr.Get("a", 2)
	l := lifted("splat", map[string]int{"a": 4}, map[string]int{"c": 4}, "(Vec 0 0 0 0)")
	p, err := Lower("splat", expr.Vec(g, g, g, g), 4, l)
	if err != nil {
		t.Fatal(err)
	}
	p = vir.Optimize(p)
	if countOps(p, vir.Splat) != 1 {
		t.Fatalf("identical lanes not splat:\n%s", p)
	}
}

func TestScalarLaneInsert(t *testing.T) {
	prog := "(Vec (Get a 0) (+ (Get a 1) (Get a 2)) (Get a 2) (Get a 3))"
	l := lifted("ins", map[string]int{"a": 4}, map[string]int{"c": 4}, prog)
	p := lowerAndRun(t, l, prog, 6)
	if countOps(p, vir.Insert) != 1 {
		t.Fatalf("computed lane should use one insert:\n%s", p)
	}
}

func TestScalarListProgram(t *testing.T) {
	prog := "(List (+ (Get a 0) (Get a 1)) (* (Get a 2) (Get a 3)))"
	l := lifted("scalars", map[string]int{"a": 4}, map[string]int{"c": 2}, prog)
	p := lowerAndRun(t, l, prog, 7)
	if countOps(p, vir.StoreS) != 2 {
		t.Fatalf("scalar program should emit scalar stores:\n%s", p)
	}
}

func TestChunkStoreStraddlesOutputs(t *testing.T) {
	// Two outputs of 3 and 5 elements: chunk 0 covers q[0..2]+r[0],
	// chunk 1 covers r[1..4].
	prog := "(Concat (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3)) (Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7)))"
	l := &kernel.Lifted{Name: "straddle", Spec: expr.MustParse("(List 0)")}
	l.Inputs = []kernel.ArrayDecl{{Name: "a", Rows: 8, Cols: 1}}
	l.Outputs = []kernel.ArrayDecl{{Name: "q", Rows: 3, Cols: 1}, {Name: "r", Rows: 5, Cols: 1}}
	p, err := Lower("straddle", expr.MustParse(prog), 4, l)
	if err != nil {
		t.Fatal(err)
	}
	p = vir.Optimize(p)
	inputs := map[string][]float64{"a": {10, 11, 12, 13, 14, 15, 16, 17}}
	got, err := vir.Interp(p, inputs, nil)
	if err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	wantQ := []float64{10, 11, 12}
	wantR := []float64{13, 14, 15, 16, 17}
	for i := range wantQ {
		if got["q"][i] != wantQ[i] {
			t.Fatalf("q[%d] = %g", i, got["q"][i])
		}
	}
	for i := range wantR {
		if got["r"][i] != wantR[i] {
			t.Fatalf("r[%d] = %g", i, got["r"][i])
		}
	}
}

func TestDeadLanesCostNothing(t *testing.T) {
	// Only 2 of 4 lanes are stored; the zero padding in the upper lanes
	// must not generate any extra data movement.
	prog := "(VecAdd (Vec (Get a 0) (Get a 1) 0 0) (Vec (Get a 2) (Get a 3) 0 0))"
	l := lifted("dead", map[string]int{"a": 4}, map[string]int{"c": 2}, prog)
	p := lowerAndRun(t, l, prog, 8)
	if n := countOps(p, vir.Select, vir.ConstV); n != 0 {
		t.Fatalf("dead-lane zeros generated %d movement ops:\n%s", n, p)
	}
}

func TestLowerErrors(t *testing.T) {
	l := lifted("err", map[string]int{"a": 4}, map[string]int{"c": 4}, "(List 0)")
	bad := []string{
		"(List 1 2)",                     // wrong element count
		"(Vec (Get a 0) (Get a 1))",      // wrong lane count
		"(VecAdd (List 1 2) (List 1 2))", // non-vector operand (List inside)
		"x",                              // free symbol
	}
	for _, src := range bad {
		if _, err := Lower("err", expr.MustParse(src), 4, l); err == nil {
			t.Errorf("Lower(%q) succeeded, want error", src)
		}
	}
}
