// Package lower translates an extracted vector-DSL program into the
// low-level vector IR (paper §4). Its central job is data-movement
// planning: each Vec term's lanes may name arbitrary memory locations, and
// the backend must realize them with the target's movement repertoire —
// contiguous vector loads, single-register shuffles, two-register selects,
// nested selects for three or more source windows, broadcasts, and scalar
// inserts as a last resort. This mirrors how Diospyros lowers Vec terms to
// PDX_SHFL_MX32 / PDX_SEL_MX32 sequences on the Fusion G3 (§5.1).
package lower

import (
	"fmt"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
	"diospyros/internal/vir"
)

// Lower converts the extracted program for the given kernel interface.
// The root may be scalar (a List of scalar expressions, as produced by the
// §5.6 scalar ablation or a timed-out search) or vector (a Concat spine of
// width-wide chunks).
func Lower(name string, root *expr.Expr, width int, l *kernel.Lifted) (*vir.Program, error) {
	lw := &lowerer{
		prog:    vir.NewProgram(name, width, l.Inputs, l.Outputs),
		width:   width,
		scalars: map[*expr.Expr]vir.ID{},
		vectors: map[vecKey]vir.ID{},
	}
	// Flat output index -> (array, offset) map.
	for _, d := range l.Outputs {
		for off := 0; off < d.Len(); off++ {
			lw.outSlots = append(lw.outSlots, slot{array: d.Name, off: off})
		}
	}
	if err := lw.root(root); err != nil {
		return nil, err
	}
	return lw.prog, nil
}

type slot struct {
	array string
	off   int
}

type lowerer struct {
	prog     *vir.Program
	width    int
	outSlots []slot
	scalars  map[*expr.Expr]vir.ID
	vectors  map[vecKey]vir.ID
}

// vecKey memoizes vector lowering per (term, live-lane count): the same
// shared subterm may feed chunks with different numbers of live lanes.
type vecKey struct {
	e    *expr.Expr
	live int
}

func (lw *lowerer) root(e *expr.Expr) error {
	if e.Op == expr.OpList {
		// Scalar program: one store per output element.
		if len(e.Args) != len(lw.outSlots) {
			return fmt.Errorf("lower: scalar program has %d elements, interface needs %d", len(e.Args), len(lw.outSlots))
		}
		for i, elem := range e.Args {
			id, err := lw.scalar(elem)
			if err != nil {
				return err
			}
			lw.prog.Emit(vir.Instr{Op: vir.StoreS, Args: []vir.ID{id},
				Array: lw.outSlots[i].array, Off: lw.outSlots[i].off})
		}
		return nil
	}
	// Vector program: flatten the Concat spine into chunks.
	var chunks []*expr.Expr
	var flatten func(*expr.Expr)
	flatten = func(x *expr.Expr) {
		if x.Op == expr.OpConcat {
			flatten(x.Args[0])
			flatten(x.Args[1])
			return
		}
		chunks = append(chunks, x)
	}
	flatten(e)
	covered := 0
	for _, chunk := range chunks {
		// Lanes beyond the kernel's real outputs are padding: they are
		// never stored, so the backend treats them as don't-care and
		// skips the data movement that would materialize them.
		live := len(lw.outSlots) - covered
		if live > lw.width {
			live = lw.width
		}
		if live <= 0 {
			break
		}
		id, err := lw.vector(chunk, live)
		if err != nil {
			return err
		}
		if err := lw.storeChunk(id, covered); err != nil {
			return err
		}
		covered += lw.width
	}
	if covered < len(lw.outSlots) {
		return fmt.Errorf("lower: program covers %d of %d outputs", covered, len(lw.outSlots))
	}
	return nil
}

// storeChunk stores the vector id to output slots [base, base+W), which may
// straddle output arrays; lanes beyond the real outputs are padding and are
// dropped.
func (lw *lowerer) storeChunk(id vir.ID, base int) error {
	lane := 0
	for lane < lw.width && base+lane < len(lw.outSlots) {
		s := lw.outSlots[base+lane]
		// Extend the run while consecutive lanes hit consecutive offsets
		// of the same array.
		end := lane + 1
		for end < lw.width && base+end < len(lw.outSlots) {
			nxt := lw.outSlots[base+end]
			if nxt.array != s.array || nxt.off != s.off+(end-lane) {
				break
			}
			end++
		}
		n := end - lane
		src := id
		if lane != 0 {
			// Rotate the run to the front so a partial store can emit it.
			idx := make([]int, lw.width)
			for k := range idx {
				if k < n {
					idx[k] = lane + k
				}
			}
			src = lw.prog.Emit(vir.Instr{Op: vir.Shuffle, Args: []vir.ID{id}, Idx: idx})
		}
		if n == lw.width {
			lw.prog.Emit(vir.Instr{Op: vir.StoreV, Args: []vir.ID{src}, Array: s.array, Off: s.off})
		} else {
			lw.prog.Emit(vir.Instr{Op: vir.StoreVN, Args: []vir.ID{src}, Array: s.array, Off: s.off, N: n})
		}
		lane = end
	}
	return nil
}

func (lw *lowerer) vector(e *expr.Expr, live int) (vir.ID, error) {
	key := vecKey{e: e, live: live}
	if id, ok := lw.vectors[key]; ok {
		return id, nil
	}
	id, err := lw.vectorUncached(e, live)
	if err != nil {
		return 0, err
	}
	lw.vectors[key] = id
	return id, nil
}

func (lw *lowerer) vectorUncached(e *expr.Expr, live int) (vir.ID, error) {
	switch e.Op {
	case expr.OpVec:
		if len(e.Args) != lw.width {
			return 0, fmt.Errorf("lower: Vec with %d lanes, width is %d", len(e.Args), lw.width)
		}
		return lw.planVec(e.Args, live)
	case expr.OpVecAdd, expr.OpVecMinus, expr.OpVecMul, expr.OpVecDiv:
		a, err := lw.vector(e.Args[0], live)
		if err != nil {
			return 0, err
		}
		b, err := lw.vector(e.Args[1], live)
		if err != nil {
			return 0, err
		}
		op := map[expr.Op]vir.Op{
			expr.OpVecAdd: vir.AddV, expr.OpVecMinus: vir.SubV,
			expr.OpVecMul: vir.MulV, expr.OpVecDiv: vir.DivV,
		}[e.Op]
		return lw.prog.Emit(vir.Instr{Op: op, Args: []vir.ID{a, b}}), nil
	case expr.OpVecMAC:
		acc, err := lw.vector(e.Args[0], live)
		if err != nil {
			return 0, err
		}
		a, err := lw.vector(e.Args[1], live)
		if err != nil {
			return 0, err
		}
		b, err := lw.vector(e.Args[2], live)
		if err != nil {
			return 0, err
		}
		return lw.prog.Emit(vir.Instr{Op: vir.MacV, Args: []vir.ID{acc, a, b}}), nil
	case expr.OpVecNeg, expr.OpVecSqrt, expr.OpVecSgn:
		a, err := lw.vector(e.Args[0], live)
		if err != nil {
			return 0, err
		}
		op := map[expr.Op]vir.Op{
			expr.OpVecNeg: vir.NegV, expr.OpVecSqrt: vir.SqrtV, expr.OpVecSgn: vir.SgnV,
		}[e.Op]
		return lw.prog.Emit(vir.Instr{Op: op, Args: []vir.ID{a}}), nil
	case expr.OpVecFunc:
		args := make([]vir.ID, len(e.Args))
		for i, a := range e.Args {
			id, err := lw.vector(a, live)
			if err != nil {
				return 0, err
			}
			args[i] = id
		}
		return lw.prog.Emit(vir.Instr{Op: vir.CallV, Args: args, Sym: e.Sym}), nil
	}
	return 0, fmt.Errorf("lower: expected vector expression, got %s", e.Op)
}

func (lw *lowerer) scalar(e *expr.Expr) (vir.ID, error) {
	if id, ok := lw.scalars[e]; ok {
		return id, nil
	}
	id, err := lw.scalarUncached(e)
	if err != nil {
		return 0, err
	}
	lw.scalars[e] = id
	return id, nil
}

func (lw *lowerer) scalarUncached(e *expr.Expr) (vir.ID, error) {
	switch e.Op {
	case expr.OpLit:
		return lw.prog.Emit(vir.Instr{Op: vir.ConstS, F: e.Lit}), nil
	case expr.OpGet:
		return lw.prog.Emit(vir.Instr{Op: vir.LoadS, Array: e.Sym, Off: e.Idx}), nil
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv:
		a, err := lw.scalar(e.Args[0])
		if err != nil {
			return 0, err
		}
		b, err := lw.scalar(e.Args[1])
		if err != nil {
			return 0, err
		}
		op := map[expr.Op]vir.Op{
			expr.OpAdd: vir.AddS, expr.OpSub: vir.SubS,
			expr.OpMul: vir.MulS, expr.OpDiv: vir.DivS,
		}[e.Op]
		return lw.prog.Emit(vir.Instr{Op: op, Args: []vir.ID{a, b}}), nil
	case expr.OpNeg, expr.OpSqrt, expr.OpSgn:
		a, err := lw.scalar(e.Args[0])
		if err != nil {
			return 0, err
		}
		op := map[expr.Op]vir.Op{
			expr.OpNeg: vir.NegS, expr.OpSqrt: vir.SqrtS, expr.OpSgn: vir.SgnS,
		}[e.Op]
		return lw.prog.Emit(vir.Instr{Op: op, Args: []vir.ID{a}}), nil
	case expr.OpFunc:
		args := make([]vir.ID, len(e.Args))
		for i, a := range e.Args {
			id, err := lw.scalar(a)
			if err != nil {
				return 0, err
			}
			args[i] = id
		}
		return lw.prog.Emit(vir.Instr{Op: vir.CallS, Args: args, Sym: e.Sym}), nil
	case expr.OpSym:
		return 0, fmt.Errorf("lower: free symbol %q has no storage", e.Sym)
	}
	return 0, fmt.Errorf("lower: expected scalar expression, got %s", e.Op)
}
