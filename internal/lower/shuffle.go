package lower

import (
	"sort"

	"diospyros/internal/expr"
	"diospyros/internal/vir"
)

// planVec materializes a Vec term: W lanes, each an arbitrary scalar
// expression. The planner picks the cheapest movement strategy available:
//
//  1. all-literal lanes            → one constant vector;
//  2. all lanes the same value     → broadcast;
//  3. contiguous run of one array  → one (possibly unaligned) vector load;
//  4. lanes from k aligned windows → k loads merged by a shuffle (k=1),
//     a select (k=2), or a chain of nested selects (k>2), exactly the
//     paper's PDX_SHFL / PDX_SEL / nested-select scheme;
//  5. computed lanes               → scalar code + lane inserts on top.
//
// Literal lanes ride along in their own constant-vector source. Arrays are
// width-padded in memory, so the aligned window containing any valid
// element can always be loaded whole.
//
// Lanes with index ≥ live are padding that no store ever reads; the planner
// treats them as don't-care and spends no data movement on them.
func (lw *lowerer) planVec(lanes []*expr.Expr, live int) (vir.ID, error) {
	w := lw.width
	if live <= 0 || live > w {
		live = w
	}
	liveLanes := lanes[:live]

	// Case 1: constant vector.
	allLit := true
	for _, l := range liveLanes {
		if l.Op != expr.OpLit {
			allLit = false
			break
		}
	}
	if allLit {
		vals := make([]float64, w)
		for k, l := range liveLanes {
			vals[k] = l.Lit
		}
		return lw.prog.Emit(vir.Instr{Op: vir.ConstV, Fs: vals}), nil
	}

	// Case 2: broadcast. Extraction shares equal subterms, so identical
	// lanes are pointer-identical.
	same := true
	for _, l := range liveLanes[1:] {
		if l != liveLanes[0] {
			same = false
			break
		}
	}
	if same && liveLanes[0].Op != expr.OpLit {
		s, err := lw.scalar(liveLanes[0])
		if err != nil {
			return 0, err
		}
		return lw.prog.Emit(vir.Instr{Op: vir.Splat, Args: []vir.ID{s}}), nil
	}

	// Case 3: one contiguous run of a single array.
	if liveLanes[0].Op == expr.OpGet {
		arr, base := liveLanes[0].Sym, liveLanes[0].Idx
		contig := true
		for k, l := range liveLanes {
			if l.Op != expr.OpGet || l.Sym != arr || l.Idx != base+k {
				contig = false
				break
			}
		}
		if contig {
			return lw.prog.Emit(vir.Instr{Op: vir.LoadV, Array: arr, Off: base}), nil
		}
	}

	// General plan: classify live lanes.
	type winKey struct {
		arr string
		win int
	}
	type getLane struct{ lane, idx int }
	windows := map[winKey][]getLane{}
	litLanes := map[int]float64{}
	scalarLanes := map[int]*expr.Expr{}
	for k, l := range liveLanes {
		switch l.Op {
		case expr.OpGet:
			win := l.Idx / w * w
			key := winKey{arr: l.Sym, win: win}
			windows[key] = append(windows[key], getLane{lane: k, idx: l.Idx - win})
		case expr.OpLit:
			litLanes[k] = l.Lit
		default:
			scalarLanes[k] = l
		}
	}
	winKeys := make([]winKey, 0, len(windows))
	for key := range windows {
		winKeys = append(winKeys, key)
	}
	sort.Slice(winKeys, func(i, j int) bool {
		if winKeys[i].arr != winKeys[j].arr {
			return winKeys[i].arr < winKeys[j].arr
		}
		return winKeys[i].win < winKeys[j].win
	})

	// source: a loadable vector that provides some final lanes.
	type source struct {
		emit     func() (vir.ID, error)
		provides map[int]int // final lane -> source lane
	}
	var sources []source
	for _, key := range winKeys {
		prov := map[int]int{}
		for _, g := range windows[key] {
			prov[g.lane] = g.idx
		}
		a, wn := key.arr, key.win
		sources = append(sources, source{
			emit: func() (vir.ID, error) {
				return lw.prog.Emit(vir.Instr{Op: vir.LoadV, Array: a, Off: wn}), nil
			},
			provides: prov,
		})
	}
	if len(litLanes) > 0 {
		vals := make([]float64, w)
		prov := map[int]int{}
		for k, v := range litLanes {
			vals[k] = v
			prov[k] = k
		}
		sources = append(sources, source{
			emit: func() (vir.ID, error) {
				return lw.prog.Emit(vir.Instr{Op: vir.ConstV, Fs: vals}), nil
			},
			provides: prov,
		})
	}

	var cur vir.ID
	haveCur := false

	if len(sources) > 0 {
		// First source: shuffle its lanes into final position (skipping
		// the shuffle when they are already in place).
		first := sources[0]
		id, err := first.emit()
		if err != nil {
			return 0, err
		}
		identity := true
		idx := make([]int, w)
		for k := 0; k < w; k++ {
			if src, ok := first.provides[k]; ok {
				idx[k] = src
				if src != k {
					identity = false
				}
			} else {
				idx[k] = 0 // don't-care lane
			}
		}
		cur = id
		if !identity {
			cur = lw.prog.Emit(vir.Instr{Op: vir.Shuffle, Args: []vir.ID{id}, Idx: idx})
		}
		haveCur = true

		// Remaining sources: nested selects.
		for _, src := range sources[1:] {
			id, err := src.emit()
			if err != nil {
				return 0, err
			}
			idx := make([]int, w)
			for k := 0; k < w; k++ {
				if s, ok := src.provides[k]; ok {
					idx[k] = w + s
				} else {
					idx[k] = k // keep lanes already in cur
				}
			}
			cur = lw.prog.Emit(vir.Instr{Op: vir.Select, Args: []vir.ID{cur, id}, Idx: idx})
		}
	}

	if !haveCur {
		// Every lane is computed: start from a zero vector.
		cur = lw.prog.Emit(vir.Instr{Op: vir.ConstV, Fs: make([]float64, w)})
	}

	// Insert computed lanes in deterministic order.
	var compLanes []int
	for k := range scalarLanes {
		compLanes = append(compLanes, k)
	}
	sort.Ints(compLanes)
	for _, k := range compLanes {
		s, err := lw.scalar(scalarLanes[k])
		if err != nil {
			return 0, err
		}
		cur = lw.prog.Emit(vir.Instr{Op: vir.Insert, Args: []vir.ID{cur, s}, Lane: k})
	}
	return cur, nil
}
