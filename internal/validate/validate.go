package validate

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
)

// Check validates that the optimized program computes the specification's
// outputs: it first runs the exact equivalence decision; if the kernel's
// normal form is too large (ErrInconclusive), it falls back to randomized
// differential testing, mirroring how the paper treats validation as an
// optional, best-effort safety net outside the trusted core.
func Check(l *kernel.Lifted, optimized *expr.Expr) error {
	err := Equivalent(l.Spec, optimized, l.OutputLen())
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrInconclusive) {
		return Randomized(l, optimized, 64, 1)
	}
	return err
}

// Equivalent decides, over the theory of real arithmetic, whether the
// first n output elements of the two programs are equal for all inputs.
// sqrt, sgn, and user functions are uninterpreted (keyed by canonicalized
// arguments), exactly as in the paper's validator: programs that are equal
// only because of special function semantics are reported inequivalent.
func Equivalent(spec, optimized *expr.Expr, n int) error {
	specLanes, err := Lanes(spec)
	if err != nil {
		return fmt.Errorf("validate: spec: %w", err)
	}
	optLanes, err := Lanes(optimized)
	if err != nil {
		return fmt.Errorf("validate: optimized program: %w", err)
	}
	if len(specLanes) < n || len(optLanes) < n {
		return fmt.Errorf("validate: need %d outputs; spec has %d, optimized has %d",
			n, len(specLanes), len(optLanes))
	}
	at := newAtoms()
	nm := &normalizer{atoms: at, memo: map[*expr.Expr]ratfn{}}
	for i := 0; i < n; i++ {
		a, err := nm.norm(specLanes[i])
		if err != nil {
			return err
		}
		b, err := nm.norm(optLanes[i])
		if err != nil {
			return err
		}
		eq, err := rfEqual(a, b)
		if err != nil {
			return err
		}
		if !eq {
			return fmt.Errorf("validate: output %d differs:\n  spec: %s\n  opt:  %s",
				i, specLanes[i], optLanes[i])
		}
	}
	return nil
}

// Lanes flattens a program into one scalar expression per output element,
// expanding vector operations lane-wise.
func Lanes(e *expr.Expr) ([]*expr.Expr, error) {
	switch e.Op {
	case expr.OpList, expr.OpVec:
		var out []*expr.Expr
		for _, a := range e.Args {
			ls, err := Lanes(a)
			if err != nil {
				return nil, err
			}
			out = append(out, ls...)
		}
		return out, nil
	case expr.OpConcat:
		l, err := Lanes(e.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := Lanes(e.Args[1])
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case expr.OpVecAdd, expr.OpVecMinus, expr.OpVecMul, expr.OpVecDiv:
		sop, _ := e.Op.ScalarEquivalent()
		a, err := Lanes(e.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := Lanes(e.Args[1])
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("lane mismatch in %s: %d vs %d", e.Op, len(a), len(b))
		}
		out := make([]*expr.Expr, len(a))
		for i := range a {
			out[i] = &expr.Expr{Op: sop, Args: []*expr.Expr{a[i], b[i]}}
		}
		return out, nil
	case expr.OpVecMAC:
		acc, err := Lanes(e.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := Lanes(e.Args[1])
		if err != nil {
			return nil, err
		}
		c, err := Lanes(e.Args[2])
		if err != nil {
			return nil, err
		}
		if len(acc) != len(b) || len(b) != len(c) {
			return nil, fmt.Errorf("lane mismatch in VecMAC")
		}
		out := make([]*expr.Expr, len(acc))
		for i := range acc {
			out[i] = expr.Add(acc[i], expr.Mul(b[i], c[i]))
		}
		return out, nil
	case expr.OpVecNeg, expr.OpVecSqrt, expr.OpVecSgn:
		sop, _ := e.Op.ScalarEquivalent()
		a, err := Lanes(e.Args[0])
		if err != nil {
			return nil, err
		}
		out := make([]*expr.Expr, len(a))
		for i := range a {
			out[i] = &expr.Expr{Op: sop, Args: []*expr.Expr{a[i]}}
		}
		return out, nil
	case expr.OpVecFunc:
		var argLanes [][]*expr.Expr
		n := -1
		for _, a := range e.Args {
			ls, err := Lanes(a)
			if err != nil {
				return nil, err
			}
			if n == -1 {
				n = len(ls)
			} else if len(ls) != n {
				return nil, fmt.Errorf("lane mismatch in VecFunc %s", e.Sym)
			}
			argLanes = append(argLanes, ls)
		}
		out := make([]*expr.Expr, n)
		for i := 0; i < n; i++ {
			args := make([]*expr.Expr, len(argLanes))
			for j := range argLanes {
				args[j] = argLanes[j][i]
			}
			out[i] = expr.Func(e.Sym, args...)
		}
		return out, nil
	default:
		// A scalar expression is a single lane.
		return []*expr.Expr{e}, nil
	}
}

type normalizer struct {
	atoms *atoms
	memo  map[*expr.Expr]ratfn
}

func (nm *normalizer) norm(e *expr.Expr) (ratfn, error) {
	if r, ok := nm.memo[e]; ok {
		return r, nil
	}
	r, err := nm.normUncached(e)
	if err != nil {
		return ratfn{}, err
	}
	nm.memo[e] = r
	return r, nil
}

func (nm *normalizer) normUncached(e *expr.Expr) (ratfn, error) {
	switch e.Op {
	case expr.OpLit:
		r := new(big.Rat)
		if _, ok := r.SetString(fmt.Sprintf("%g", e.Lit)); !ok {
			r.SetFloat64(e.Lit)
		}
		return rfConst(r), nil
	case expr.OpSym:
		return rfAtom(nm.atoms.id("sym:" + e.Sym)), nil
	case expr.OpGet:
		return rfAtom(nm.atoms.id(fmt.Sprintf("get:%s:%d", e.Sym, e.Idx))), nil
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv:
		a, err := nm.norm(e.Args[0])
		if err != nil {
			return ratfn{}, err
		}
		b, err := nm.norm(e.Args[1])
		if err != nil {
			return ratfn{}, err
		}
		switch e.Op {
		case expr.OpAdd:
			return rfAdd(a, b)
		case expr.OpSub:
			return rfSub(a, b)
		case expr.OpMul:
			return rfMul(a, b)
		default:
			return rfDiv(a, b)
		}
	case expr.OpNeg:
		a, err := nm.norm(e.Args[0])
		if err != nil {
			return ratfn{}, err
		}
		return rfNeg(a), nil
	case expr.OpSqrt, expr.OpSgn:
		a, err := nm.norm(e.Args[0])
		if err != nil {
			return ratfn{}, err
		}
		return rfAtom(nm.atoms.id(e.Op.String() + "(" + a.canon() + ")")), nil
	case expr.OpFunc:
		key := "fn:" + e.Sym + "("
		for i, arg := range e.Args {
			a, err := nm.norm(arg)
			if err != nil {
				return ratfn{}, err
			}
			if i > 0 {
				key += ","
			}
			key += a.canon()
		}
		key += ")"
		return rfAtom(nm.atoms.id(key)), nil
	}
	return ratfn{}, fmt.Errorf("validate: cannot normalize %s (vector op in scalar position?)", e.Op)
}

// Randomized differentially tests the two programs on random inputs drawn
// per the kernel's declared shapes. It is used when the exact check is
// inconclusive and directly by tests.
func Randomized(l *kernel.Lifted, optimized *expr.Expr, trials int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	n := l.OutputLen()
	for trial := 0; trial < trials; trial++ {
		env := expr.NewEnv()
		for _, d := range l.Inputs {
			arr := make([]float64, d.Len())
			for i := range arr {
				arr[i] = r.Float64()*4 - 2
			}
			env.Arrays[d.Name] = arr
		}
		want, err := l.Spec.Eval(env)
		if err != nil {
			return fmt.Errorf("validate: spec eval: %w", err)
		}
		got, err := optimized.Eval(env)
		if err != nil {
			return fmt.Errorf("validate: optimized eval: %w", err)
		}
		ws, gs := want.AsSlice(), got.AsSlice()
		if len(ws) < n || len(gs) < n {
			return fmt.Errorf("validate: output count mismatch: spec %d, optimized %d, need %d", len(ws), len(gs), n)
		}
		for i := 0; i < n; i++ {
			if !closeEnough(ws[i], gs[i]) {
				return fmt.Errorf("validate: trial %d output %d: spec %g, optimized %g", trial, i, ws[i], gs[i])
			}
		}
	}
	return nil
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*math.Max(scale, 1)
}
