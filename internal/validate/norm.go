// Package validate implements translation validation (paper §3.4): it
// decides whether the extracted vector program is equivalent to the scalar
// specification, modelling values in the theory of real arithmetic exactly
// as the paper's Rosette/SMT validator does.
//
// Instead of an SMT solver, equivalence over the +, −, ×, ÷ fragment is
// decided by normalizing each output element to a multivariate rational
// function with exact big.Rat coefficients; sqrt, sgn, and user-defined
// functions are treated as opaque atoms keyed by the canonical form of
// their arguments (matching the paper's uninterpreted-function treatment).
// Equality of rational functions is checked by cross-multiplication, which
// is sound and complete for formal rational expressions.
package validate

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// maxTerms bounds polynomial size during normalization. Kernels whose
// normal forms explode (deep division/sqrt towers such as 4×4 QR) yield
// ErrInconclusive, and callers fall back to randomized differential
// testing.
const maxTerms = 200_000

// ErrInconclusive reports that exact normalization was abandoned because
// the polynomials grew past the safety bound.
var ErrInconclusive = fmt.Errorf("validate: normal form too large; exact check inconclusive")

// atoms interns the indeterminates of the polynomial ring: input elements,
// free symbols, and opaque (uninterpreted/irrational) subterms.
type atoms struct {
	byKey map[string]int
	keys  []string
}

func newAtoms() *atoms { return &atoms{byKey: map[string]int{}} }

func (a *atoms) id(key string) int {
	if id, ok := a.byKey[key]; ok {
		return id
	}
	id := len(a.keys)
	a.byKey[key] = id
	a.keys = append(a.keys, key)
	return id
}

// monomial is a sorted multiset of atom ids, encoded canonically.
type monomial string

func mkMonomial(factors []int) monomial {
	sort.Ints(factors)
	var b strings.Builder
	for i, f := range factors {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	return monomial(b.String())
}

func (m monomial) factors() []int {
	if m == "" {
		return nil
	}
	parts := strings.Split(string(m), ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		fmt.Sscanf(p, "%d", &out[i])
	}
	return out
}

// poly is a multivariate polynomial: monomial → coefficient.
type poly map[monomial]*big.Rat

func polyConst(v *big.Rat) poly {
	p := poly{}
	if v.Sign() != 0 {
		p[""] = new(big.Rat).Set(v)
	}
	return p
}

func polyAtom(id int) poly {
	return poly{mkMonomial([]int{id}): big.NewRat(1, 1)}
}

func (p poly) clone() poly {
	q := make(poly, len(p))
	for m, c := range p {
		q[m] = new(big.Rat).Set(c)
	}
	return q
}

func (p poly) isZero() bool { return len(p) == 0 }

func (p poly) isConst() (*big.Rat, bool) {
	if len(p) == 0 {
		return big.NewRat(0, 1), true
	}
	if len(p) == 1 {
		if c, ok := p[""]; ok {
			return c, true
		}
	}
	return nil, false
}

func polyAdd(a, b poly) (poly, error) {
	out := a.clone()
	for m, c := range b {
		if cur, ok := out[m]; ok {
			cur.Add(cur, c)
			if cur.Sign() == 0 {
				delete(out, m)
			}
		} else {
			out[m] = new(big.Rat).Set(c)
		}
	}
	if len(out) > maxTerms {
		return nil, ErrInconclusive
	}
	return out, nil
}

func polyNeg(a poly) poly {
	out := make(poly, len(a))
	for m, c := range a {
		out[m] = new(big.Rat).Neg(c)
	}
	return out
}

func polyMul(a, b poly) (poly, error) {
	if len(a)*len(b) > 4*maxTerms {
		return nil, ErrInconclusive
	}
	out := poly{}
	for ma, ca := range a {
		fa := ma.factors()
		for mb, cb := range b {
			m := mkMonomial(append(append([]int{}, fa...), mb.factors()...))
			c := new(big.Rat).Mul(ca, cb)
			if cur, ok := out[m]; ok {
				cur.Add(cur, c)
				if cur.Sign() == 0 {
					delete(out, m)
				}
			} else if c.Sign() != 0 {
				out[m] = c
			}
		}
	}
	if len(out) > maxTerms {
		return nil, ErrInconclusive
	}
	return out, nil
}

func polyEqual(a, b poly) bool {
	if len(a) != len(b) {
		return false
	}
	for m, c := range a {
		d, ok := b[m]
		if !ok || c.Cmp(d) != 0 {
			return false
		}
	}
	return true
}

// canonScaled renders the polynomial with every coefficient multiplied by
// scale, in sorted monomial order.
func (p poly) canonScaled(scale *big.Rat) string {
	if len(p) == 0 {
		return "0"
	}
	ms := make([]string, 0, len(p))
	for m := range p {
		ms = append(ms, string(m))
	}
	sort.Strings(ms)
	var b strings.Builder
	for i, m := range ms {
		if i > 0 {
			b.WriteByte('+')
		}
		c := new(big.Rat).Mul(p[monomial(m)], scale)
		fmt.Fprintf(&b, "%s*[%s]", c.RatString(), m)
	}
	return b.String()
}

// ratfn is a formal rational function num/den.
type ratfn struct {
	num, den poly
}

func rfConst(v *big.Rat) ratfn {
	return ratfn{num: polyConst(v), den: polyConst(big.NewRat(1, 1))}
}

func rfAtom(id int) ratfn {
	return ratfn{num: polyAtom(id), den: polyConst(big.NewRat(1, 1))}
}

func rfAdd(a, b ratfn) (ratfn, error) {
	// a/b + c/d = (ad + cb) / bd. Share the denominator when equal.
	if polyEqual(a.den, b.den) {
		n, err := polyAdd(a.num, b.num)
		if err != nil {
			return ratfn{}, err
		}
		return ratfn{num: n, den: a.den}, nil
	}
	ad, err := polyMul(a.num, b.den)
	if err != nil {
		return ratfn{}, err
	}
	cb, err := polyMul(b.num, a.den)
	if err != nil {
		return ratfn{}, err
	}
	n, err := polyAdd(ad, cb)
	if err != nil {
		return ratfn{}, err
	}
	d, err := polyMul(a.den, b.den)
	if err != nil {
		return ratfn{}, err
	}
	return ratfn{num: n, den: d}, nil
}

func rfNeg(a ratfn) ratfn { return ratfn{num: polyNeg(a.num), den: a.den} }

func rfSub(a, b ratfn) (ratfn, error) { return rfAdd(a, rfNeg(b)) }

func rfMul(a, b ratfn) (ratfn, error) {
	n, err := polyMul(a.num, b.num)
	if err != nil {
		return ratfn{}, err
	}
	d, err := polyMul(a.den, b.den)
	if err != nil {
		return ratfn{}, err
	}
	return ratfn{num: n, den: d}, nil
}

func rfDiv(a, b ratfn) (ratfn, error) {
	if b.num.isZero() {
		return ratfn{}, fmt.Errorf("validate: division by syntactic zero")
	}
	n, err := polyMul(a.num, b.den)
	if err != nil {
		return ratfn{}, err
	}
	d, err := polyMul(a.den, b.num)
	if err != nil {
		return ratfn{}, err
	}
	return ratfn{num: n, den: d}, nil
}

// rfEqual decides equality by cross-multiplication.
func rfEqual(a, b ratfn) (bool, error) {
	l, err := polyMul(a.num, b.den)
	if err != nil {
		return false, err
	}
	r, err := polyMul(b.num, a.den)
	if err != nil {
		return false, err
	}
	return polyEqual(l, r), nil
}

// canon renders a canonical atom key for a rational function: both
// numerator and denominator are scaled by the same factor — the inverse of
// the denominator's lexicographically-least coefficient — so that P/Q and
// (cP)/(cQ) share a key. (Representations differing by a polynomial factor
// remain distinct; that only costs completeness for nested opaque terms,
// never soundness.)
func (r ratfn) canon() string {
	if r.num.isZero() {
		return "0"
	}
	ms := make([]string, 0, len(r.den))
	for m := range r.den {
		ms = append(ms, string(m))
	}
	sort.Strings(ms)
	scale := new(big.Rat).Inv(r.den[monomial(ms[0])])
	return r.num.canonScaled(scale) + "/" + r.den.canonScaled(scale)
}
