package validate

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
	"diospyros/internal/kernels"
)

func mustEquivalent(t *testing.T, a, b string, n int) {
	t.Helper()
	if err := Equivalent(expr.MustParse(a), expr.MustParse(b), n); err != nil {
		t.Fatalf("expected equivalent:\n  %s\n  %s\n  %v", a, b, err)
	}
}

func mustDiffer(t *testing.T, a, b string, n int) {
	t.Helper()
	err := Equivalent(expr.MustParse(a), expr.MustParse(b), n)
	if err == nil {
		t.Fatalf("expected inequivalent:\n  %s\n  %s", a, b)
	}
	if errors.Is(err, ErrInconclusive) {
		t.Fatalf("expected a definite verdict, got inconclusive")
	}
}

func TestEquivalentBasicIdentities(t *testing.T) {
	cases := [][2]string{
		// Commutativity and associativity over ℝ.
		{"(List (+ (Get a 0) (Get a 1)))", "(List (+ (Get a 1) (Get a 0)))"},
		{"(List (+ (+ (Get a 0) (Get a 1)) (Get a 2)))", "(List (+ (Get a 0) (+ (Get a 1) (Get a 2))))"},
		{"(List (* (Get a 0) (+ (Get a 1) (Get a 2))))", "(List (+ (* (Get a 0) (Get a 1)) (* (Get a 0) (Get a 2))))"},
		// Identity elimination, negation.
		{"(List (+ (Get a 0) 0))", "(List (Get a 0))"},
		{"(List (- (Get a 0) (Get a 0)))", "(List 0)"},
		{"(List (neg (neg (Get a 0))))", "(List (Get a 0))"},
		{"(List (* (Get a 0) 1))", "(List (Get a 0))"},
		// Rational functions: a/b + c/b = (a+c)/b; (a*b)/b = a.
		{"(List (+ (/ (Get a 0) (Get a 2)) (/ (Get a 1) (Get a 2))))",
			"(List (/ (+ (Get a 0) (Get a 1)) (Get a 2)))"},
		{"(List (/ (* (Get a 0) (Get a 1)) (Get a 1)))", "(List (Get a 0))"},
		// Opaque atoms: sqrt of equal (normalized) args.
		{"(List (sqrt (+ (Get a 0) 0)))", "(List (sqrt (Get a 0)))"},
		{"(List (* 2 (sgn (Get a 0))))", "(List (+ (sgn (+ (Get a 0) 0)) (sgn (Get a 0))))"},
		// Uninterpreted functions keyed by canonical args.
		{"(List (func f (+ (Get a 0) (Get a 1))))", "(List (func f (+ (Get a 1) (Get a 0))))"},
	}
	for _, c := range cases {
		mustEquivalent(t, c[0], c[1], 1)
	}
}

func TestInequivalentDetected(t *testing.T) {
	cases := [][2]string{
		{"(List (+ (Get a 0) (Get a 1)))", "(List (- (Get a 0) (Get a 1)))"},
		{"(List (Get a 0))", "(List (Get a 1))"},
		{"(List (* (Get a 0) 2))", "(List (+ (Get a 0) 2))"},
		{"(List (sqrt (Get a 0)))", "(List (sqrt (Get a 1)))"},
		{"(List (func f (Get a 0)))", "(List (func g (Get a 0)))"},
		// sqrt(x)² is NOT x to the uninterpreted checker (sound refusal).
		{"(List (* (sqrt (Get a 0)) (sqrt (Get a 0))))", "(List (Get a 0))"},
	}
	for _, c := range cases {
		mustDiffer(t, c[0], c[1], 1)
	}
}

func TestVectorProgramsFlatten(t *testing.T) {
	spec := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)))"
	vectorized := "(VecAdd (Vec (Get a 0) (Get a 1) (Get a 2) 0) (Vec (Get b 0) (Get b 1) (Get b 2) 0))"
	mustEquivalent(t, spec, vectorized, 3)
	// VecMAC expands to acc + b*c.
	spec2 := "(List (+ (Get x 0) (* (Get y 0) (Get z 0))))"
	mac := "(VecMAC (Vec (Get x 0) 0 0 0) (Vec (Get y 0) 0 0 0) (Vec (Get z 0) 0 0 0))"
	mustEquivalent(t, spec2, mac, 1)
	// A wrong shuffle is caught.
	wrong := "(VecAdd (Vec (Get a 1) (Get a 0) (Get a 2) 0) (Vec (Get b 0) (Get b 1) (Get b 2) 0))"
	mustDiffer(t, spec, wrong, 3)
}

func TestEquivalentWholeKernels(t *testing.T) {
	// The full Diospyros pipeline output is validated elsewhere; here check
	// the validator accepts an independently derived equivalent program.
	l := kernels.MatMul(2, 2, 2)
	// Hand-vectorized version of the same computation.
	vectorized := expr.MustParse(strings.ReplaceAll(`(VecMAC
		(VecMul (Vec (Get a 0) (Get a 0) (Get a 2) (Get a 2)) (Vec (Get b 0) (Get b 1) (Get b 0) (Get b 1)))
		(Vec (Get a 1) (Get a 1) (Get a 3) (Get a 3))
		(Vec (Get b 2) (Get b 3) (Get b 2) (Get b 3)))`, "\n", " "))
	if err := Equivalent(l.Spec, vectorized, l.OutputLen()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFallsBackToRandomized(t *testing.T) {
	// Randomized path, exercised directly.
	l := kernels.QProd()
	if err := Randomized(l, l.Spec, 8, 3); err != nil {
		t.Fatal(err)
	}
	// A wrong program fails randomized testing.
	wrong := l.Spec.Clone()
	wrong.Args[0] = expr.Lit(42)
	if err := Randomized(l, wrong, 8, 3); err == nil {
		t.Fatal("randomized testing accepted a wrong program")
	}
}

func TestLanesArity(t *testing.T) {
	ls, err := Lanes(expr.MustParse("(Concat (Vec 1 2 3 4) (VecAdd (Vec 1 2 3 4) (Vec 5 6 7 8)))"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 8 {
		t.Fatalf("got %d lanes, want 8", len(ls))
	}
	if _, err := Lanes(expr.MustParse("(VecAdd (Vec 1 2) (Vec 1 2 3))")); err == nil {
		t.Fatal("lane mismatch not caught")
	}
}

func TestExactDecidesRandomRewrites(t *testing.T) {
	// Random sum-of-products expressions compared against themselves with
	// shuffled association must validate exactly.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(5)
		terms := make([]*expr.Expr, n)
		for i := range terms {
			terms[i] = expr.Mul(expr.Get("a", r.Intn(6)), expr.Get("b", r.Intn(6)))
		}
		left := terms[0]
		for _, tm := range terms[1:] {
			left = expr.Add(left, tm)
		}
		// Right-nested, reversed order.
		right := terms[n-1]
		for i := n - 2; i >= 0; i-- {
			right = expr.Add(terms[i], right)
		}
		if err := Equivalent(expr.List(left), expr.List(right), 1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLitRationalExactness(t *testing.T) {
	// 0.1 + 0.2 must equal 0.3 over exact decimals (lit parsing goes
	// through decimal strings, not float bits).
	mustEquivalent(t, "(List (+ 0.1 0.2))", "(List 0.3)", 1)
	mustEquivalent(t, "(List (/ 1 3))", "(List (/ 2 6))", 1)
}

// TestInconclusiveFallsBackToRandomized constructs a kernel whose exact
// normal form exceeds the polynomial budget — the product of 18 distinct
// binomials has 2^18 monomials — and checks that the exact checker reports
// ErrInconclusive while Check succeeds via the randomized fallback.
func TestInconclusiveFallsBackToRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("expands a 2^18-monomial polynomial")
	}
	prod := func() *expr.Expr {
		e := expr.Add(expr.Get("a", 0), expr.Get("b", 0))
		for i := 1; i < 18; i++ {
			e = expr.Mul(e, expr.Add(expr.Get("a", i), expr.Get("b", i)))
		}
		return e
	}
	spec := expr.List(prod())
	same := expr.List(prod())
	err := Equivalent(spec, same, 1)
	if !errors.Is(err, ErrInconclusive) {
		t.Fatalf("expected inconclusive, got %v", err)
	}
	l := &kernel.Lifted{Name: "big", Spec: spec}
	l.Inputs = []kernel.ArrayDecl{
		{Name: "a", Rows: 18, Cols: 1},
		{Name: "b", Rows: 18, Cols: 1},
	}
	l.Outputs = []kernel.ArrayDecl{{Name: "o", Rows: 1, Cols: 1}}
	if err := Check(l, same); err != nil {
		t.Fatalf("Check fallback failed: %v", err)
	}
	// A wrong program is still caught by the fallback.
	wrong := expr.List(expr.Add(prod(), expr.Lit(1)))
	if err := Check(l, wrong); err == nil {
		t.Fatal("fallback accepted a wrong program")
	}
}
