// Package nature is a vendor-style optimized DSP kernel library for
// FG3-lite, standing in for the Nature DSP library shipped with the
// Tensilica SDK (paper §5.2). Like Nature, the kernels are hand-written
// with vector intrinsics but *size-generic*: matrix dimensions arrive at
// run time (in a parameter block), so every call pays parameterized loop
// control, bounds checks, and prologue/epilogue tail handling — the
// overhead that lets Diospyros's size-specialized code win on small
// kernels (Figure 5) while Nature stays competitive on larger ones.
package nature

import (
	"fmt"

	"diospyros/internal/isa"
	"diospyros/internal/sim"
)

// ParamsRegion is the reserved memory region holding runtime size
// parameters (as float-encoded integers, loaded into integer registers by
// a small prologue).
const ParamsRegion = "params"

// asm provides small structured-assembly helpers over the ISA builder.
type asm struct {
	b *isa.Builder
}

func (a *asm) emit(in isa.Instr) { a.b.Emit(in) }

func (a *asm) iconst(v int) int {
	r := a.b.IReg()
	a.emit(isa.Instr{Op: isa.IConst, Dst: r, IImm: v})
	return r
}

// Program bundles a built library routine with its calling convention.
type Program struct {
	ISA *isa.Program
	// In and Out name the regions for operands; Params is the size block.
	In, Out []string
}

// forLoop emits `for iv := lo; iv < hiReg; iv++ { body }` with iv fresh.
func (a *asm) forLoop(lo int, hiReg int, body func(iv int)) {
	iv := a.b.IReg()
	a.emit(isa.Instr{Op: isa.IConst, Dst: iv, IImm: lo})
	top := a.b.FreshLabel("loop")
	end := a.b.FreshLabel("endloop")
	a.b.Label(top)
	a.emit(isa.Instr{Op: isa.BrGE, A: iv, B: hiReg, Target: end})
	body(iv)
	a.emit(isa.Instr{Op: isa.IAddI, Dst: iv, A: iv, IImm: 1})
	a.emit(isa.Instr{Op: isa.Jmp, Target: top})
	a.b.Label(end)
}

// forLoopStep is forLoop with a step > 1.
func (a *asm) forLoopStep(lo int, hiReg, step int, body func(iv int)) {
	iv := a.b.IReg()
	a.emit(isa.Instr{Op: isa.IConst, Dst: iv, IImm: lo})
	top := a.b.FreshLabel("loop")
	end := a.b.FreshLabel("endloop")
	a.b.Label(top)
	a.emit(isa.Instr{Op: isa.BrGE, A: iv, B: hiReg, Target: end})
	body(iv)
	a.emit(isa.Instr{Op: isa.IAddI, Dst: iv, A: iv, IImm: step})
	a.emit(isa.Instr{Op: isa.Jmp, Target: top})
	a.b.Label(end)
}

// storeTail stores the first (hi-col) lanes of v (at most Width) to
// addrReg, handling the runtime tail with branches, as generic vector code
// must. colReg+Width <= hi means a full store.
func (a *asm) storeTail(addrReg, vreg, colReg, hiReg int) {
	full := a.b.FreshLabel("full")
	done := a.b.FreshLabel("done")
	// rem = hi - col
	rem := a.b.IReg()
	a.emit(isa.Instr{Op: isa.ISub, Dst: rem, A: hiReg, B: colReg})
	four := a.iconst(isa.Width)
	a.emit(isa.Instr{Op: isa.BrGE, A: rem, B: four, Target: full})
	// Tail: branch ladder over 1..Width-1 lanes.
	for n := 1; n < isa.Width; n++ {
		next := a.b.FreshLabel("tail")
		nval := a.iconst(n)
		a.emit(isa.Instr{Op: isa.BrNE, A: rem, B: nval, Target: next})
		a.emit(isa.Instr{Op: isa.VStoreN, A: addrReg, B: vreg, IImm2: n})
		a.emit(isa.Instr{Op: isa.Jmp, Target: done})
		a.b.Label(next)
	}
	a.emit(isa.Instr{Op: isa.Jmp, Target: done})
	a.b.Label(full)
	a.emit(isa.Instr{Op: isa.VStore, A: addrReg, B: vreg})
	a.b.Label(done)
}

// MatMul builds the library's generic matrix multiply: C[m×p] = A[m×n] ·
// B[n×p], with m, n, p read from the parameter block at run time. The inner
// kernel broadcasts A[i][k] and accumulates into a 4-wide column strip of C
// with VMac, handling the column tail with masked stores.
//
// Layout regions: a (aCap), b (bCap), c (cCap), params (3: m, n, p).
func MatMul(maxM, maxN, maxP int) *Program {
	pad := func(n int) int { return (n + isa.Width - 1) / isa.Width * isa.Width }
	lay := isa.NewLayout()
	lay.Add("a", pad(maxM*maxN))
	lay.Add("b", pad(maxN*maxP))
	lay.Add("c", pad(maxM*maxP))
	lay.Add(ParamsRegion, isa.Width)
	b := isa.NewBuilder("nature_matmul", lay)
	a := &asm{b: b}

	aBase := a.iconst(lay.Base("a"))
	bBase := a.iconst(lay.Base("b"))
	cBase := a.iconst(lay.Base("c"))
	m, n, p := a.intParams(lay)

	// for i in 0..m
	a.forLoop(0, m, func(i int) {
		// rowA = aBase + i*n
		rowA := a.b.IReg()
		a.emit(isa.Instr{Op: isa.IMul, Dst: rowA, A: i, B: n})
		a.emit(isa.Instr{Op: isa.IAdd, Dst: rowA, A: rowA, B: aBase})
		// rowC = cBase + i*p
		rowC := a.b.IReg()
		a.emit(isa.Instr{Op: isa.IMul, Dst: rowC, A: i, B: p})
		a.emit(isa.Instr{Op: isa.IAdd, Dst: rowC, A: rowC, B: cBase})
		// for j in 0..p step 4
		a.forLoopStep(0, p, isa.Width, func(j int) {
			acc := a.b.VReg()
			a.emit(isa.Instr{Op: isa.VConst, Dst: acc, Vals: make([]float64, isa.Width)})
			// for k in 0..n: acc += splat(A[i][k]) * B[k][j..j+4]
			a.forLoop(0, n, func(k int) {
				aAddr := a.b.IReg()
				a.emit(isa.Instr{Op: isa.IAdd, Dst: aAddr, A: rowA, B: k})
				af := a.b.FReg()
				a.emit(isa.Instr{Op: isa.SLoad, Dst: af, A: aAddr})
				av := a.b.VReg()
				a.emit(isa.Instr{Op: isa.VBcast, Dst: av, A: af})
				// bAddr = bBase + k*p + j
				bAddr := a.b.IReg()
				a.emit(isa.Instr{Op: isa.IMul, Dst: bAddr, A: k, B: p})
				a.emit(isa.Instr{Op: isa.IAdd, Dst: bAddr, A: bAddr, B: bBase})
				a.emit(isa.Instr{Op: isa.IAdd, Dst: bAddr, A: bAddr, B: j})
				bv := a.b.VReg()
				a.emit(isa.Instr{Op: isa.VLoad, Dst: bv, A: bAddr})
				a.emit(isa.Instr{Op: isa.VMac, Dst: acc, A: av, B: bv})
			})
			cAddr := a.b.IReg()
			a.emit(isa.Instr{Op: isa.IAdd, Dst: cAddr, A: rowC, B: j})
			a.storeTail(cAddr, acc, j, p)
		})
	})
	return &Program{ISA: b.MustBuild(), In: []string{"a", "b"}, Out: []string{"c"}}
}

// intParams loads m, n, p from the parameter block. Sizes are integers
// stored via the runner; the pseudo-load models register-passed arguments
// (one cycle each, like any load).
func (a *asm) intParams(lay *isa.Layout) (m, n, p int) {
	base := a.iconst(lay.Base(ParamsRegion))
	m, n, p = a.b.IReg(), a.b.IReg(), a.b.IReg()
	a.emit(isa.Instr{Op: isa.ILoad, Dst: m, A: base, IImm: 0})
	a.emit(isa.Instr{Op: isa.ILoad, Dst: n, A: base, IImm: 1})
	a.emit(isa.Instr{Op: isa.ILoad, Dst: p, A: base, IImm: 2})
	return m, n, p
}

// Run executes a library routine with the given operands and sizes.
func Run(p *Program, inputs map[string][]float64, sizes []int) (map[string][]float64, *sim.Result, error) {
	mem := make([]float64, p.ISA.Layout.Size())
	for name, data := range inputs {
		if !p.ISA.Layout.Has(name) {
			return nil, nil, fmt.Errorf("nature: unknown operand %q", name)
		}
		reg := p.ISA.Layout.Region(name)
		if len(data) > reg.Len {
			return nil, nil, fmt.Errorf("nature: operand %q larger than region (%d > %d)", name, len(data), reg.Len)
		}
		copy(mem[reg.Base:], data)
	}
	pb := p.ISA.Layout.Base(ParamsRegion)
	if len(sizes) > isa.Width {
		return nil, nil, fmt.Errorf("nature: too many size parameters")
	}
	for i, s := range sizes {
		mem[pb+i] = float64(s)
	}
	res, err := sim.Run(p.ISA, mem, sim.Defaults())
	if err != nil {
		return nil, nil, err
	}
	out := map[string][]float64{}
	for _, name := range p.Out {
		reg := p.ISA.Layout.Region(name)
		out[name] = append([]float64(nil), res.Mem[reg.Base:reg.Base+reg.Len]...)
	}
	return out, res, nil
}
