package nature

import (
	"diospyros/internal/isa"
)

// forLoopR is forLoop with a register lower bound and arbitrary step.
func (a *asm) forLoopR(loReg, hiReg, step int, body func(iv int)) {
	iv := a.b.IReg()
	a.emit(isa.Instr{Op: isa.IMov, Dst: iv, A: loReg})
	top := a.b.FreshLabel("loop")
	end := a.b.FreshLabel("endloop")
	a.b.Label(top)
	a.emit(isa.Instr{Op: isa.BrGE, A: iv, B: hiReg, Target: end})
	body(iv)
	a.emit(isa.Instr{Op: isa.IAddI, Dst: iv, A: iv, IImm: step})
	a.emit(isa.Instr{Op: isa.Jmp, Target: top})
	a.b.Label(end)
}

// Conv2D builds the library's generic padded 2-D convolution:
// o[(ir+fr−1)×(ic+fc−1)] from input i[ir×ic] and filter f[fr×fc], with all
// four sizes runtime parameters.
//
// The strategy is the classic vendor one: iterate over filter taps, and for
// each tap accumulate a shifted, broadcast-scaled strip of the input into
// the output with 4-wide MACs — unaligned loads for the shifted input strip
// and masked stores at the row tails. Genericity costs bounds arithmetic
// per tap, exactly the overhead Figure 5 shows on filter sizes near the
// vector width.
func Conv2D(maxIR, maxIC, maxFR, maxFC int) *Program {
	pad := func(n int) int { return (n + isa.Width - 1) / isa.Width * isa.Width }
	maxOR, maxOC := maxIR+maxFR-1, maxIC+maxFC-1
	lay := isa.NewLayout()
	// Extra Width slack allows harmless unaligned over-reads at row ends;
	// masked stores keep writes exact.
	lay.Add("i", pad(maxIR*maxIC)+isa.Width)
	lay.Add("f", pad(maxFR*maxFC)+isa.Width)
	lay.Add("o", pad(maxOR*maxOC)+isa.Width)
	lay.Add(ParamsRegion, isa.Width)
	b := isa.NewBuilder("nature_conv2d", lay)
	a := &asm{b: b}

	iBase := a.iconst(lay.Base("i"))
	fBase := a.iconst(lay.Base("f"))
	oBase := a.iconst(lay.Base("o"))
	pbase := a.iconst(lay.Base(ParamsRegion))
	ir, ic := a.b.IReg(), a.b.IReg()
	fr, fc := a.b.IReg(), a.b.IReg()
	a.emit(isa.Instr{Op: isa.ILoad, Dst: ir, A: pbase, IImm: 0})
	a.emit(isa.Instr{Op: isa.ILoad, Dst: ic, A: pbase, IImm: 1})
	a.emit(isa.Instr{Op: isa.ILoad, Dst: fr, A: pbase, IImm: 2})
	a.emit(isa.Instr{Op: isa.ILoad, Dst: fc, A: pbase, IImm: 3})

	// oCols = ic + fc - 1
	oCols := a.b.IReg()
	a.emit(isa.Instr{Op: isa.IAdd, Dst: oCols, A: ic, B: fc})
	a.emit(isa.Instr{Op: isa.IAddI, Dst: oCols, A: oCols, IImm: -1})

	zero := a.iconst(0)
	// For each filter tap (fRT, fCT):
	a.forLoop(0, fr, func(fRT int) {
		a.forLoop(0, fc, func(fCT int) {
			// fv = splat(f[fRT*fc + fCT])
			fAddr := a.b.IReg()
			a.emit(isa.Instr{Op: isa.IMul, Dst: fAddr, A: fRT, B: fc})
			a.emit(isa.Instr{Op: isa.IAdd, Dst: fAddr, A: fAddr, B: fCT})
			a.emit(isa.Instr{Op: isa.IAdd, Dst: fAddr, A: fAddr, B: fBase})
			ff := a.b.FReg()
			a.emit(isa.Instr{Op: isa.SLoad, Dst: ff, A: fAddr})
			fv := a.b.VReg()
			a.emit(isa.Instr{Op: isa.VBcast, Dst: fv, A: ff})

			// Valid output rows: oRow in [fRT, fRT+ir).
			rowHi := a.b.IReg()
			a.emit(isa.Instr{Op: isa.IAdd, Dst: rowHi, A: fRT, B: ir})
			// Valid output cols: oCol in [fCT, fCT+ic).
			colHi := a.b.IReg()
			a.emit(isa.Instr{Op: isa.IAdd, Dst: colHi, A: fCT, B: ic})

			a.forLoopR(fRT, rowHi, 1, func(oRow int) {
				// rowI = iBase + (oRow-fRT)*ic - fCT  (so rowI+oCol indexes
				// i[oRow-fRT][oCol-fCT])
				iRow := a.b.IReg()
				a.emit(isa.Instr{Op: isa.ISub, Dst: iRow, A: oRow, B: fRT})
				rowI := a.b.IReg()
				a.emit(isa.Instr{Op: isa.IMul, Dst: rowI, A: iRow, B: ic})
				a.emit(isa.Instr{Op: isa.IAdd, Dst: rowI, A: rowI, B: iBase})
				a.emit(isa.Instr{Op: isa.ISub, Dst: rowI, A: rowI, B: fCT})
				// rowO = oBase + oRow*oCols
				rowO := a.b.IReg()
				a.emit(isa.Instr{Op: isa.IMul, Dst: rowO, A: oRow, B: oCols})
				a.emit(isa.Instr{Op: isa.IAdd, Dst: rowO, A: rowO, B: oBase})
				_ = zero

				a.forLoopR(fCT, colHi, isa.Width, func(oCol int) {
					iAddr := a.b.IReg()
					a.emit(isa.Instr{Op: isa.IAdd, Dst: iAddr, A: rowI, B: oCol})
					vi := a.b.VReg()
					a.emit(isa.Instr{Op: isa.VLoad, Dst: vi, A: iAddr})
					oAddr := a.b.IReg()
					a.emit(isa.Instr{Op: isa.IAdd, Dst: oAddr, A: rowO, B: oCol})
					vo := a.b.VReg()
					a.emit(isa.Instr{Op: isa.VLoad, Dst: vo, A: oAddr})
					a.emit(isa.Instr{Op: isa.VMac, Dst: vo, A: vi, B: fv})
					a.storeTail(oAddr, vo, oCol, colHi)
				})
			})
		})
	})
	return &Program{ISA: b.MustBuild(), In: []string{"i", "f"}, Out: []string{"o"}}
}
