package nature

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/kernels"
)

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*4 - 2
	}
	return s
}

func TestMatMulAgainstRef(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, sz := range [][3]int{{2, 2, 2}, {2, 3, 3}, {3, 3, 3}, {4, 4, 4}, {5, 7, 3}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}} {
		m, n, p := sz[0], sz[1], sz[2]
		prog := MatMul(m, n, p)
		a := randSlice(r, m*n)
		b := randSlice(r, n*p)
		out, res, err := Run(prog, map[string][]float64{"a": a, "b": b}, []int{m, n, p})
		if err != nil {
			t.Fatalf("matmul %v: %v", sz, err)
		}
		want := kernels.MatMulRef(m, n, p, a, b)
		for i := range want {
			if math.Abs(out["c"][i]-want[i]) > 1e-9 {
				t.Fatalf("matmul %v: c[%d] = %g, want %g", sz, i, out["c"][i], want[i])
			}
		}
		if res.Cycles <= 0 {
			t.Fatal("no cycles recorded")
		}
	}
}

func TestMatMulIsGenericOverSizes(t *testing.T) {
	// One compiled routine (sized for 16×16) must serve smaller calls too,
	// like a real library function.
	prog := MatMul(16, 16, 16)
	r := rand.New(rand.NewSource(2))
	for _, sz := range [][3]int{{2, 2, 2}, {3, 3, 3}, {10, 10, 10}} {
		m, n, p := sz[0], sz[1], sz[2]
		a := randSlice(r, m*n)
		b := randSlice(r, n*p)
		out, _, err := Run(prog, map[string][]float64{"a": a, "b": b}, []int{m, n, p})
		if err != nil {
			t.Fatalf("%v: %v", sz, err)
		}
		want := kernels.MatMulRef(m, n, p, a, b)
		for i := range want {
			if math.Abs(out["c"][i]-want[i]) > 1e-9 {
				t.Fatalf("%v: c[%d] = %g, want %g", sz, i, out["c"][i], want[i])
			}
		}
	}
}

func TestConv2DAgainstRef(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, sz := range [][4]int{{3, 3, 2, 2}, {3, 5, 3, 3}, {4, 4, 3, 3}, {8, 8, 3, 3}, {10, 10, 4, 4}, {16, 16, 4, 4}} {
		ir, ic, fr, fc := sz[0], sz[1], sz[2], sz[3]
		prog := Conv2D(ir, ic, fr, fc)
		in := randSlice(r, ir*ic)
		f := randSlice(r, fr*fc)
		out, _, err := Run(prog, map[string][]float64{"i": in, "f": f}, []int{ir, ic, fr, fc})
		if err != nil {
			t.Fatalf("conv %v: %v", sz, err)
		}
		want := kernels.Conv2DRef(ir, ic, fr, fc, in, f)
		for i := range want {
			if math.Abs(out["o"][i]-want[i]) > 1e-9 {
				t.Fatalf("conv %v: o[%d] = %g, want %g", sz, i, out["o"][i], want[i])
			}
		}
	}
}

func TestVectorizedBeatsNothing(t *testing.T) {
	// Sanity: larger sizes take more cycles.
	prog := MatMul(16, 16, 16)
	r := rand.New(rand.NewSource(4))
	var last int64
	for _, n := range []int{2, 4, 8, 16} {
		a := randSlice(r, n*n)
		b := randSlice(r, n*n)
		_, res, err := Run(prog, map[string][]float64{"a": a, "b": b}, []int{n, n, n})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles <= last {
			t.Fatalf("cycles not increasing with size: %d then %d", last, res.Cycles)
		}
		last = res.Cycles
	}
}

func TestRunErrors(t *testing.T) {
	prog := MatMul(2, 2, 2)
	if _, _, err := Run(prog, map[string][]float64{"zzz": {1}}, []int{2, 2, 2}); err == nil {
		t.Error("unknown operand accepted")
	}
	if _, _, err := Run(prog, map[string][]float64{"a": make([]float64, 99)}, []int{2, 2, 2}); err == nil {
		t.Error("oversized operand accepted")
	}
	if _, _, err := Run(prog, nil, []int{1, 2, 3, 4, 5}); err == nil {
		t.Error("too many params accepted")
	}
}
