package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	diospyros "diospyros"
	"diospyros/internal/expr"
	"diospyros/internal/frontend"
	"diospyros/internal/kcc"
	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// Cycles holds simulated cycle counts per system for one kernel.
// Zero means "not available" (the paper's missing bars).
type Cycles struct {
	Naive      int64
	NaiveFixed int64
	Diospyros  int64
	Nature     int64
	Eigen      int64
}

// F5Row is one kernel's Figure 5 data point.
type F5Row struct {
	Kernel Kernel
	Cycles Cycles
	// Trace is the Diospyros compilation trace; DiosProfile is the cycle
	// breakdown of the Diospyros-compiled kernel's simulation.
	Trace       *telemetry.Trace
	DiosProfile *sim.Profile
}

// Speedup returns `sys` cycles as a speedup over the fixed-size naive
// baseline (the paper's normalization), or 0 when unavailable.
func (r F5Row) Speedup(c int64) float64 {
	if c == 0 || r.Cycles.NaiveFixed == 0 {
		return 0
	}
	return float64(r.Cycles.NaiveFixed) / float64(c)
}

// BestBaseline is the fastest non-Diospyros implementation.
func (r F5Row) BestBaseline() int64 {
	best := int64(0)
	for _, c := range []int64{r.Cycles.Naive, r.Cycles.NaiveFixed, r.Cycles.Nature, r.Cycles.Eigen} {
		if c > 0 && (best == 0 || c < best) {
			best = c
		}
	}
	return best
}

// F5Options parameterizes the Figure 5 run.
type F5Options struct {
	// Opts are the Diospyros compiler options (defaults match the paper's
	// §5.2 settings).
	Opts diospyros.Options
	// Seed for the shared random inputs.
	Seed int64
	// Only restricts the run to kernels whose ID contains any of the
	// comma-separated substrings.
	Only string
	// Verbose receives progress lines (may be nil).
	Progress func(string)
	// Context cancels the run between (and during) kernel compiles.
	// Nil means context.Background().
	Context context.Context
}

// ctx returns the run's context, defaulting to Background.
func (o F5Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// Figure5 compiles and simulates every suite kernel under all systems,
// cross-checking every system's outputs against the lifted specification.
func Figure5(opt F5Options) ([]F5Row, error) {
	var rows []F5Row
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		row, err := runKernelAllSystems(k, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.ID, err)
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s naive=%-7d fixed=%-7d dios=%-7d nature=%-7d eigen=%-7d",
				k.ID, row.Cycles.Naive, row.Cycles.NaiveFixed, row.Cycles.Diospyros,
				row.Cycles.Nature, row.Cycles.Eigen))
		}
	}
	return rows, nil
}

// GeomeanVsBestBaseline computes the paper's headline number: the geometric
// mean of Diospyros's speedup over the best non-Diospyros baseline.
func GeomeanVsBestBaseline(rows []F5Row) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		best := r.BestBaseline()
		if best == 0 || r.Cycles.Diospyros == 0 {
			continue
		}
		logSum += math.Log(float64(best) / float64(r.Cycles.Diospyros))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

func runKernelAllSystems(k Kernel, opt F5Options) (F5Row, error) {
	r := rand.New(rand.NewSource(opt.Seed + 7))
	inputs := k.Inputs(r)
	lifted := k.Lift()

	// Reference outputs from the lifted spec.
	env := expr.NewEnv()
	for name, data := range inputs {
		env.Arrays[name] = data
	}
	specVal, err := lifted.Spec.Eval(env)
	if err != nil {
		return F5Row{}, fmt.Errorf("spec eval: %w", err)
	}
	want := map[string][]float64{}
	flat := specVal.AsSlice()
	idx := 0
	for _, d := range lifted.Outputs {
		want[d.Name] = flat[idx : idx+d.Len()]
		idx += d.Len()
	}
	check := func(system string, got map[string][]float64) error {
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				return fmt.Errorf("%s: missing output %q", system, name)
			}
			for i := range w {
				if math.Abs(g[i]-w[i]) > 1e-4*math.Max(1, math.Abs(w[i])) {
					return fmt.Errorf("%s: output %s[%d] = %g, want %g", system, name, i, g[i], w[i])
				}
			}
		}
		return nil
	}

	row := F5Row{Kernel: k}

	// Naive and fixed-size baselines via kcc.
	ast, err := frontend.Parse(k.NaiveSrc)
	if err != nil {
		return F5Row{}, fmt.Errorf("naive source: %w", err)
	}
	for _, mode := range []kcc.Mode{kcc.Parametric, kcc.FixedSize} {
		out, cycles, err := runKCC(ast, mode, inputs)
		if err != nil {
			return F5Row{}, fmt.Errorf("kcc %s: %w", mode, err)
		}
		if err := check("naive-"+mode.String(), out); err != nil {
			return F5Row{}, err
		}
		if mode == kcc.Parametric {
			row.Cycles.Naive = cycles
		} else {
			row.Cycles.NaiveFixed = cycles
		}
	}

	// Diospyros.
	res, err := diospyros.CompileContext(opt.ctx(), lifted, opt.Opts)
	if err != nil {
		return F5Row{}, fmt.Errorf("diospyros: %w", err)
	}
	dout, dres, err := res.Run(inputs, nil)
	if err != nil {
		return F5Row{}, fmt.Errorf("diospyros run: %w", err)
	}
	if err := check("diospyros", dout); err != nil {
		return F5Row{}, err
	}
	row.Cycles.Diospyros = dres.Cycles
	row.Trace = res.Trace
	row.DiosProfile = dres.Profile

	// Nature, when the vendor library provides the kernel.
	if k.NatureRun != nil {
		nout, ncycles, err := k.NatureRun(inputs)
		if err != nil {
			return F5Row{}, fmt.Errorf("nature: %w", err)
		}
		// Library buffers are padded; compare only the declared prefix.
		trimmed := map[string][]float64{}
		for _, d := range lifted.Outputs {
			if full, ok := nout[d.Name]; ok {
				trimmed[d.Name] = full[:d.Len()]
			}
		}
		if err := check("nature", trimmed); err != nil {
			return F5Row{}, err
		}
		row.Cycles.Nature = ncycles
	}

	// Eigen-like library.
	if k.EigenSrc != "" {
		east, err := frontend.Parse(k.EigenSrc)
		if err != nil {
			return F5Row{}, fmt.Errorf("eigen source: %w", err)
		}
		out, cycles, err := runKCC(east, kcc.Parametric, inputs)
		if err != nil {
			return F5Row{}, fmt.Errorf("eigen: %w", err)
		}
		if err := check("eigen", out); err != nil {
			return F5Row{}, err
		}
		row.Cycles.Eigen = cycles
	}

	return row, nil
}

// runKCC compiles a frontend kernel and simulates it.
func runKCC(k *frontend.Kernel, mode kcc.Mode, inputs map[string][]float64) (map[string][]float64, int64, error) {
	p, err := kcc.Compile(k, mode)
	if err != nil {
		return nil, 0, err
	}
	mem := make([]float64, p.Layout.Size())
	for _, prm := range k.Params {
		data, ok := inputs[prm.Name]
		if !ok {
			return nil, 0, fmt.Errorf("missing input %q", prm.Name)
		}
		copy(mem[p.Layout.Base(prm.Name):], data)
	}
	res, err := sim.Run(p, mem, sim.Defaults())
	if err != nil {
		return nil, 0, err
	}
	out := map[string][]float64{}
	for _, prm := range k.Outs {
		b := p.Layout.Base(prm.Name)
		out[prm.Name] = append([]float64(nil), res.Mem[b:b+prm.Len()]...)
	}
	return out, res.Cycles, nil
}
