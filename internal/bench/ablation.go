package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	diospyros "diospyros"
	"diospyros/internal/cost"
	"diospyros/internal/egraph"
)

// AblRow compares full Diospyros against the §5.6 scalar ablation (all
// vector rewrite rules disabled) for one kernel.
type AblRow struct {
	Kernel       Kernel
	BestBaseline int64
	Vectorized   int64
	ScalarOnly   int64
}

// AblSummary aggregates the §5.6 ablation result.
type AblSummary struct {
	GeomeanVectorized float64 // speedup over best baseline, full rules
	GeomeanScalar     float64 // speedup over best baseline, scalar rules only
	ScalarWins        int     // kernels where the scalar ablation beats vectorized
	Total             int
}

// Ablation runs the §5.6 vectorization ablation over the whole suite.
func Ablation(opt F5Options) ([]AblRow, AblSummary, error) {
	var rows []AblRow
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		base, err := runKernelAllSystems(k, opt)
		if err != nil {
			return nil, AblSummary{}, fmt.Errorf("%s: %w", k.ID, err)
		}
		scalarOpts := opt.Opts
		scalarOpts.DisableVectorRules = true
		res, err := diospyros.CompileContext(opt.ctx(), k.Lift(), scalarOpts)
		if err != nil {
			return nil, AblSummary{}, fmt.Errorf("%s (scalar): %w", k.ID, err)
		}
		r := rand.New(rand.NewSource(opt.Seed + 7))
		inputs := k.Inputs(r)
		_, sres, err := res.Run(inputs, nil)
		if err != nil {
			return nil, AblSummary{}, fmt.Errorf("%s (scalar run): %w", k.ID, err)
		}
		row := AblRow{
			Kernel:       k,
			BestBaseline: base.BestBaseline(),
			Vectorized:   base.Cycles.Diospyros,
			ScalarOnly:   sres.Cycles,
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s baseline=%-7d vectorized=%-7d scalar-only=%-7d",
				k.ID, row.BestBaseline, row.Vectorized, row.ScalarOnly))
		}
	}
	return rows, summarizeAblation(rows), nil
}

func summarizeAblation(rows []AblRow) AblSummary {
	s := AblSummary{Total: len(rows)}
	logV, logS := 0.0, 0.0
	for _, r := range rows {
		logV += math.Log(float64(r.BestBaseline) / float64(r.Vectorized))
		logS += math.Log(float64(r.BestBaseline) / float64(r.ScalarOnly))
		if r.ScalarOnly < r.Vectorized {
			s.ScalarWins++
		}
	}
	if len(rows) > 0 {
		s.GeomeanVectorized = math.Exp(logV / float64(len(rows)))
		s.GeomeanScalar = math.Exp(logS / float64(len(rows)))
	}
	return s
}

// FormatAblation renders the §5.6 comparison.
func FormatAblation(rows []AblRow, s AblSummary) string {
	var b strings.Builder
	b.WriteString("§5.6 vectorization ablation (vector rewrite rules disabled)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s\n", "Kernel", "baseline", "diospyros", "scalar-only")
	for _, r := range rows {
		mark := ""
		if r.ScalarOnly < r.Vectorized {
			mark = "  <- scalar wins"
		}
		fmt.Fprintf(&b, "%-22s %12d %12d %12d%s\n",
			r.Kernel.ID, r.BestBaseline, r.Vectorized, r.ScalarOnly, mark)
	}
	fmt.Fprintf(&b, "\ngeomean speedup over best baseline: %.2fx with vector rules, %.2fx scalar-only\n",
		s.GeomeanVectorized, s.GeomeanScalar)
	fmt.Fprintf(&b, "scalar-only faster than vectorized on %d of %d kernels\n", s.ScalarWins, s.Total)
	fmt.Fprintf(&b, "(paper: 3.1x vs 2.2x, scalar faster on 4 of 21)\n")
	return b.String()
}

// uniformCost charges every operator the same, ignoring data movement —
// the ablated version of the §3.4 cost model. Strictly monotonic, so
// extraction still works; it just cannot tell cheap shuffles from
// expensive cross-array gathers.
type uniformCost struct{}

func (uniformCost) NodeCost(egraph.ENode, []cost.ChildInfo) float64 { return 1 }

// CostRow compares the movement-aware cost model against the uniform
// ablation on one kernel.
type CostRow struct {
	Kernel  Kernel
	Aware   int64 // cycles with the §3.4 data-movement cost model
	Uniform int64 // cycles with the uniform cost model
}

// CostModelAblation quantifies the design choice DESIGN.md §5 calls out:
// extraction guided by the data-movement-aware cost model versus a uniform
// per-node cost. Both use the same saturated e-graph; only extraction
// changes.
func CostModelAblation(opt F5Options) ([]CostRow, error) {
	var rows []CostRow
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		r := rand.New(rand.NewSource(opt.Seed + 7))
		inputs := k.Inputs(r)
		run := func(model cost.Model) (int64, error) {
			opts := opt.Opts
			opts.CostModel = model
			res, err := diospyros.CompileContext(opt.ctx(), k.Lift(), opts)
			if err != nil {
				return 0, err
			}
			_, sres, err := res.Run(inputs, nil)
			if err != nil {
				return 0, err
			}
			return sres.Cycles, nil
		}
		aware, err := run(nil) // default §3.4 model
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.ID, err)
		}
		uniform, err := run(uniformCost{})
		if err != nil {
			return nil, fmt.Errorf("%s (uniform): %w", k.ID, err)
		}
		rows = append(rows, CostRow{Kernel: k, Aware: aware, Uniform: uniform})
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s aware=%-7d uniform=%-7d", k.ID, aware, uniform))
		}
	}
	return rows, nil
}

// FormatCostAblation renders the cost-model ablation.
func FormatCostAblation(rows []CostRow) string {
	var b strings.Builder
	b.WriteString("cost-model ablation: movement-aware (§3.4) vs uniform per-node cost\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %8s\n", "Kernel", "aware", "uniform", "ratio")
	logSum, n := 0.0, 0
	for _, r := range rows {
		ratio := float64(r.Uniform) / float64(r.Aware)
		fmt.Fprintf(&b, "%-22s %12d %12d %7.2fx\n", r.Kernel.ID, r.Aware, r.Uniform, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if n > 0 {
		fmt.Fprintf(&b, "\ngeomean cost of ignoring data movement: %.2fx slower kernels\n",
			math.Exp(logSum/float64(n)))
	}
	return b.String()
}
