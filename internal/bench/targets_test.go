package bench

import (
	"strings"
	"testing"
	"time"

	diospyros "diospyros"
)

func targetOpts() diospyros.Options {
	// Multi-width saturation carries every width's decompositions in one
	// e-graph; modest budgets keep the full-suite runs fast.
	return diospyros.Options{Timeout: 20 * time.Second, NodeLimit: 200_000}
}

// TestCrossWidthParityFullSuite is the cross-width semantic validator: every
// suite kernel is compiled once with widths 2, 4, and 8 coexisting in one
// e-graph, each width's extracted program is simulated, and TargetTable
// checks every output element against the lifted specification — including
// the tail-padding partial stores (VStoreN) that widths 2 and 8 exercise on
// kernels whose output counts are not multiples of the width.
func TestCrossWidthParityFullSuite(t *testing.T) {
	rows, err := TargetTable(TTOptions{
		Opts:    targetOpts(),
		Targets: []string{"fg3lite-2", "fg3lite-4", "fg3lite-8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("parity run covered %d kernels, want 21", len(rows))
	}
	for _, r := range rows {
		for i, c := range r.Cycles {
			if c <= 0 {
				t.Errorf("%s: %s did not simulate", r.Kernel.ID, r.Targets[i])
			}
		}
	}
}

// TestEightWideWinsSomewhere is the headline multi-target claim: with one
// saturation search serving fg3lite-4, fg3lite-8, and scalar, the 8-wide
// machine wins at least one suite kernel outright (the large MatMuls, where
// twice the lanes halve the MAC chain).
func TestEightWideWinsSomewhere(t *testing.T) {
	rows, err := TargetTable(TTOptions{
		Opts:    targetOpts(),
		Targets: []string{"fg3lite-4", "fg3lite-8", "scalar"},
		Only:    "MatMul",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d MatMul rows, want 7", len(rows))
	}
	eightWins := 0
	for _, r := range rows {
		four, eight, scalar := r.Cycles[0], r.Cycles[1], r.Cycles[2]
		if eight > 0 && eight < four {
			eightWins++
		}
		// The scalar fallback must never beat a vector target here.
		if scalar < four || scalar < eight {
			t.Errorf("%s: scalar (%d) beat a vector target (%d/%d)", r.Kernel.ID, scalar, four, eight)
		}
	}
	if eightWins == 0 {
		t.Error("fg3lite-8 never beat fg3lite-4 on any MatMul kernel")
	}
	table := FormatTargetTable(rows)
	for _, want := range []string{"fg3lite-4", "fg3lite-8", "scalar", "best", "wins:"} {
		if !strings.Contains(table, want) {
			t.Errorf("formatted table missing %q:\n%s", want, table)
		}
	}
}
