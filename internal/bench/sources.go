package bench

import (
	"fmt"

	"diospyros/internal/eigenlite"
)

// Naive reference sources — straightforward loop nests, exactly what the
// paper's Naive / Naive-(fixed-size) baselines compile with xt-xcc. The
// naive forms accumulate through memory; the Eigen-library forms (from
// package eigenlite) accumulate in a register temporary.

func naiveMatMulSrc(m, n, p int) string {
	return fmt.Sprintf(`
kernel matmul(a[%d][%d], b[%d][%d]) -> (c[%d][%d]) {
    for i in 0..%d {
        for j in 0..%d {
            c[i][j] = 0.0;
            for k in 0..%d {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
}
`, m, n, n, p, m, p, m, p, n)
}

func naiveConvSrc(ir, ic, fr, fc int) string {
	or, oc := ir+fr-1, ic+fc-1
	return fmt.Sprintf(`
kernel conv2d(i[%d][%d], f[%d][%d]) -> (o[%d][%d]) {
    for oRow in 0..%d {
        for oCol in 0..%d {
            for fRow in 0..%d {
                for fCol in 0..%d {
                    let fRT = %d - 1 - fRow;
                    let fCT = %d - 1 - fCol;
                    let iRow = oRow - fRT;
                    let iCol = oCol - fCT;
                    if iRow >= 0 && iRow < %d && iCol >= 0 && iCol < %d {
                        o[oRow][oCol] = o[oRow][oCol] + i[iRow][iCol] * f[fRT][fCT];
                    }
                }
            }
        }
    }
}
`, ir, ic, fr, fc, or, oc, or, oc, fr, fc, fr, fc, ir, ic)
}

const naiveQProdSrc = eigenlite.QProdSrc

// naiveQRSrc is the plain Householder QR (no stable-norm passes; compare
// eigenlite.QRSrc, which models Eigen's numerics).
func naiveQRSrc(n int) string {
	return fmt.Sprintf(`
kernel qrdecomp(a[%d][%d]) -> (q[%d][%d], r[%d][%d]) {
    for i in 0..%d {
        for j in 0..%d {
            r[i][j] = a[i][j];
            if i == j {
                q[i][j] = 1.0;
            } else {
                q[i][j] = 0.0;
            }
        }
    }
    var v[%d];
    for k in 0..%d {
        let norm2 = 0.0;
        for i in k..%d {
            norm2 = norm2 + r[i][k] * r[i][k];
        }
        let alpha = 0.0 - sgn(r[k][k]) * sqrt(norm2);
        for i in 0..%d {
            if i < k {
                v[i] = 0.0;
            } else if i == k {
                v[i] = r[k][k] - alpha;
            } else {
                v[i] = r[i][k];
            }
        }
        let vnorm2 = 0.0;
        for i in k..%d {
            vnorm2 = vnorm2 + v[i] * v[i];
        }
        let beta = 2.0 / vnorm2;
        for j in 0..%d {
            let dot = 0.0;
            for i in k..%d {
                dot = dot + v[i] * r[i][j];
            }
            let s = beta * dot;
            for i in k..%d {
                r[i][j] = r[i][j] - v[i] * s;
            }
        }
        for i in 0..%d {
            let dot = 0.0;
            for j in k..%d {
                dot = dot + q[i][j] * v[j];
            }
            let s = beta * dot;
            for j in k..%d {
                q[i][j] = q[i][j] - v[j] * s;
            }
        }
    }
}
`, n, n, n, n, n, n, n, n, n, n-1, n, n, n, n, n, n, n, n, n)
}

func eigenMatMulSrc(m, n, p int) string { return eigenlite.MatMulSrc(m, n, p) }

func eigenConvSrc(ir, ic, fr, fc int) string { return eigenlite.Conv2DSrc(ir, ic, fr, fc) }

func eigenQRSrc(n int) string { return eigenlite.QRSrc(n) }
