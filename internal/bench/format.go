package bench

import (
	"fmt"
	"strings"
)

// FormatFigure5 renders the kernel speedups as the paper's Figure 5
// (speedup over the fixed-size naive baseline, one row per kernel).
func FormatFigure5(rows []F5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: speedup over Naive (fixed size) in simulated cycles\n")
	fmt.Fprintf(&b, "%-22s %9s %9s %9s %9s %9s   %s\n",
		"Kernel", "Naive", "Fixed", "Diospyros", "Nature", "Eigen", "dios speedup")
	for _, r := range rows {
		nat, eig := "-", "-"
		if r.Cycles.Nature > 0 {
			nat = fmt.Sprint(r.Cycles.Nature)
		}
		if r.Cycles.Eigen > 0 {
			eig = fmt.Sprint(r.Cycles.Eigen)
		}
		fmt.Fprintf(&b, "%-22s %9d %9d %9d %9s %9s   %6.2fx %s\n",
			r.Kernel.ID, r.Cycles.Naive, r.Cycles.NaiveFixed, r.Cycles.Diospyros,
			nat, eig, r.Speedup(r.Cycles.Diospyros),
			bar(r.Speedup(r.Cycles.Diospyros)))
	}
	fmt.Fprintf(&b, "\ngeomean speedup over best non-Diospyros baseline: %.2fx  (paper: 3.1x)\n",
		GeomeanVsBestBaseline(rows))
	return b.String()
}

func bar(speedup float64) string {
	n := int(speedup * 4)
	if n > 60 {
		n = 60
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// FormatMotivating renders the §2 motivating-example numbers from the
// Figure 5 data (3×5 input, 3×3 filter convolution).
func FormatMotivating(rows []F5Row) string {
	for _, r := range rows {
		if r.Kernel.ID != "2DConv 3x5 3x3" {
			continue
		}
		var b strings.Builder
		b.WriteString("§2 motivating example: 3×5 ⋆ 3×3 convolution\n")
		fmt.Fprintf(&b, "  naive (parametric):   %6d cycles\n", r.Cycles.Naive)
		fmt.Fprintf(&b, "  naive (fixed size):   %6d cycles  (%.1fx over naive; paper: 1.6x)\n",
			r.Cycles.NaiveFixed, float64(r.Cycles.Naive)/float64(r.Cycles.NaiveFixed))
		fmt.Fprintf(&b, "  vendor library:       %6d cycles\n", r.Cycles.Nature)
		fmt.Fprintf(&b, "  diospyros:            %6d cycles  (%.1fx over naive; paper: 22.9x)\n",
			r.Cycles.Diospyros, float64(r.Cycles.Naive)/float64(r.Cycles.Diospyros))
		fmt.Fprintf(&b, "                                       (%.1fx over library; paper: 4.5x)\n",
			float64(r.Cycles.Nature)/float64(r.Cycles.Diospyros))
		return b.String()
	}
	return "motivating example kernel not in rows\n"
}
