package bench

import (
	"strings"
	"testing"
)

func compareFixture(t *testing.T) []CompareRow {
	t.Helper()
	baseline := []byte(`[
		{"id": "steady", "cycles": 1000},
		{"id": "slower", "cycles": 1000},
		{"id": "faster", "cycles": 1000},
		{"id": "gone", "cycles": 500}
	]`)
	rows := []T1Row{
		{Kernel: Kernel{ID: "steady"}, Cycles: 1100}, // +10%, inside tolerance
		{Kernel: Kernel{ID: "slower"}, Cycles: 1200}, // +20%, regression
		{Kernel: Kernel{ID: "faster"}, Cycles: 700},  // -30%, improvement
		{Kernel: Kernel{ID: "fresh"}, Cycles: 42},    // not in baseline
	}
	out, err := CompareBench(baseline, rows, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareBenchStatuses(t *testing.T) {
	want := map[string]CompareStatus{
		"steady": CompareOK,
		"slower": CompareRegressed,
		"faster": CompareImproved,
		"gone":   CompareMissing,
		"fresh":  CompareNew,
	}
	rows := compareFixture(t)
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for _, r := range rows {
		if r.Status != want[r.ID] {
			t.Errorf("%s: status %s, want %s (delta %+.2f)", r.ID, r.Status, want[r.ID], r.Delta)
		}
	}
	if n := CountRegressions(rows); n != 1 {
		t.Errorf("CountRegressions = %d, want 1", n)
	}
}

func TestCompareBenchBoundary(t *testing.T) {
	// Exactly at tolerance is not a regression: the gate is strict-greater.
	rows, err := CompareBench([]byte(`[{"id":"k","cycles":100}]`),
		[]T1Row{{Kernel: Kernel{ID: "k"}, Cycles: 115}}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Status != CompareOK {
		t.Errorf("+15%% at 15%% tolerance = %s, want ok", rows[0].Status)
	}
}

func TestCompareBenchErrors(t *testing.T) {
	if _, err := CompareBench([]byte(`{not json`), nil, 0.15); err == nil {
		t.Error("bad baseline JSON accepted")
	}
	if _, err := CompareBench([]byte(`[]`), nil, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// TestCompareBenchZeroBaseline pins the zero-baseline guard: a baseline row
// whose metric is zero (an old-format file, or a kernel that never produced
// the metric) must come back informational, never ±Inf and never a gate
// failure.
func TestCompareBenchZeroBaseline(t *testing.T) {
	cases := []struct {
		name     string
		baseline string
		metric   CompareMetric
	}{
		{"zero cycles", `[{"id":"k","cycles":0}]`, MetricCycles},
		{"missing peak bytes field", `[{"id":"k","cycles":100}]`, MetricPeakBytes},
		{"explicit zero peak bytes", `[{"id":"k","cycles":100,"peak_egraph_bytes":0}]`, MetricPeakBytes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, err := CompareBenchMetric([]byte(tc.baseline),
				[]T1Row{{Kernel: Kernel{ID: "k"}, Cycles: 500, PeakEGraphBytes: 1 << 20}},
				0.15, tc.metric)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 1 || rows[0].Status != CompareNoBaseline {
				t.Fatalf("rows = %+v, want one no-baseline row", rows)
			}
			if rows[0].Delta != 0 {
				t.Errorf("no-baseline delta = %v, want 0", rows[0].Delta)
			}
			if n := CountRegressions(rows); n != 0 {
				t.Errorf("no-baseline counted as regression: %d", n)
			}
		})
	}
}

// TestCompareBenchMetricPeakBytes runs the gate on the memory metric and
// checks regressions and improvements are judged on bytes, not cycles.
func TestCompareBenchMetricPeakBytes(t *testing.T) {
	baseline := []byte(`[
		{"id": "steady", "cycles": 1, "peak_egraph_bytes": 1000000},
		{"id": "bloated", "cycles": 1, "peak_egraph_bytes": 1000000},
		{"id": "slimmer", "cycles": 1, "peak_egraph_bytes": 1000000}
	]`)
	rows, err := CompareBenchMetric(baseline, []T1Row{
		// Cycles regress wildly everywhere; the memory gate must not care.
		{Kernel: Kernel{ID: "steady"}, Cycles: 9999, PeakEGraphBytes: 1_100_000},
		{Kernel: Kernel{ID: "bloated"}, Cycles: 9999, PeakEGraphBytes: 1_600_000},
		{Kernel: Kernel{ID: "slimmer"}, Cycles: 9999, PeakEGraphBytes: 500_000},
	}, 0.25, MetricPeakBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]CompareStatus{
		"steady":  CompareOK,
		"bloated": CompareRegressed,
		"slimmer": CompareImproved,
	}
	for _, r := range rows {
		if r.Status != want[r.ID] {
			t.Errorf("%s: status %s, want %s (delta %+.2f)", r.ID, r.Status, want[r.ID], r.Delta)
		}
	}
	out := FormatCompareMetric(rows, 0.25, MetricPeakBytes.Name)
	for _, want := range []string{
		"== peak e-graph bytes regression check (tolerance +25%) ==",
		"FAIL: 1 kernel(s) regressed beyond 25%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatCompare(t *testing.T) {
	rows := compareFixture(t)
	out := FormatCompare(rows, 0.15)
	for _, want := range []string{
		"slower", "+20.0%", "regressed",
		"faster", "-30.0%", "improved",
		"FAIL: 1 kernel(s) regressed beyond 15%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	ok := FormatCompare(rows[:1], 0.15)
	if !strings.Contains(ok, "OK: no kernel regressed") {
		t.Errorf("clean run lacks OK verdict:\n%s", ok)
	}
}
