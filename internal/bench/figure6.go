package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	diospyros "diospyros"
	"diospyros/internal/kernels"
)

// F6Row is one data point of the Figure 6 timeout-ablation: the quality of
// the 10×10·10×10 MatMul kernel as a function of the saturation budget.
type F6Row struct {
	Label     string
	Cycles    int64
	Saturated bool
}

// Figure6Timeouts reproduces the paper's Figure 6 with wall-clock timeouts.
// The paper sweeps {10, 30, 60, 120, 180} seconds against its engine; this
// engine saturates the kernel far faster, so the sweep is over
// proportionally smaller budgets (the shape — quality improving with
// budget until saturation — is the reproduced result). A Nature reference
// row is appended, as in the figure.
func Figure6Timeouts(timeouts []time.Duration) ([]F6Row, error) {
	if len(timeouts) == 0 {
		timeouts = []time.Duration{
			500 * time.Microsecond, 2 * time.Millisecond, 10 * time.Millisecond,
			50 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second,
		}
	}
	var rows []F6Row
	for _, to := range timeouts {
		cycles, saturated, err := compileMatMul10(diospyros.Options{Timeout: to})
		if err != nil {
			return nil, err
		}
		rows = append(rows, F6Row{Label: to.String(), Cycles: cycles, Saturated: saturated})
	}
	natRow, err := figure6Nature()
	if err != nil {
		return nil, err
	}
	return append(rows, natRow), nil
}

// Figure6Iterations is the deterministic variant of the sweep: the budget
// is the number of equality-saturation iterations, which (unlike wall
// clock) is machine-independent. Used by the regression tests.
func Figure6Iterations(iters []int) ([]F6Row, error) {
	if len(iters) == 0 {
		iters = []int{1, 2, 3, 4, 6, 8, 12, 20}
	}
	var rows []F6Row
	for _, it := range iters {
		cycles, saturated, err := compileMatMul10(diospyros.Options{MaxIterations: it})
		if err != nil {
			return nil, err
		}
		rows = append(rows, F6Row{Label: fmt.Sprintf("%d iters", it), Cycles: cycles, Saturated: saturated})
	}
	natRow, err := figure6Nature()
	if err != nil {
		return nil, err
	}
	return append(rows, natRow), nil
}

func compileMatMul10(opts diospyros.Options) (int64, bool, error) {
	l := kernels.MatMul(10, 10, 10)
	res, err := diospyros.Compile(l, opts)
	if err != nil {
		return 0, false, err
	}
	r := rand.New(rand.NewSource(11))
	inputs := map[string][]float64{
		"a": randSlice(r, 100),
		"b": randSlice(r, 100),
	}
	_, sres, err := res.Run(inputs, nil)
	if err != nil {
		return 0, false, err
	}
	// Saturation outcome comes from the compilation trace (Table 1 path).
	return sres.Cycles, res.Trace.Saturated(), nil
}

func figure6Nature() (F6Row, error) {
	r := rand.New(rand.NewSource(11))
	inputs := map[string][]float64{
		"a": randSlice(r, 100),
		"b": randSlice(r, 100),
	}
	for _, k := range Suite() {
		if k.ID == "MatMul 10x10 10x10" {
			_, cycles, err := k.NatureRun(inputs)
			if err != nil {
				return F6Row{}, err
			}
			return F6Row{Label: "Nature", Cycles: cycles, Saturated: true}, nil
		}
	}
	return F6Row{}, fmt.Errorf("bench: MatMul 10x10 kernel missing from suite")
}

// FormatFigure6 renders the sweep as the paper's Figure 6 (a horizontal
// bar per budget).
func FormatFigure6(rows []F6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: effect of search budget on 10×10·10×10 MatMul performance\n")
	max := int64(1)
	for _, r := range rows {
		if r.Cycles > max {
			max = r.Cycles
		}
	}
	for _, r := range rows {
		bar := int(r.Cycles * 50 / max)
		sat := ""
		if r.Saturated && r.Label != "Nature" {
			sat = " (saturated)"
		}
		fmt.Fprintf(&b, "%12s | %-50s %6d cycles%s\n", r.Label, strings.Repeat("#", bar), r.Cycles, sat)
	}
	return b.String()
}
