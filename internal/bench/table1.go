package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	diospyros "diospyros"
	"diospyros/internal/egraph"
	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// T1Row is one line of Table 1: per-kernel compilation statistics, read
// off the compilation trace.
type T1Row struct {
	Kernel     Kernel
	Time       time.Duration
	AllocBytes uint64
	Nodes      int
	Classes    int
	Iterations int
	Reason     egraph.StopReason
	TimedOut   bool
	Validated  bool
	// Trace is the full stage/iteration breakdown behind the row.
	Trace *telemetry.Trace
	// Cycles and Profile come from simulating the compiled kernel on
	// random inputs: total simulated cycles and the profiler's breakdown
	// per opcode, issue slot, and stall cause.
	Cycles  int64
	Profile *sim.Profile
	// PeakEGraphBytes is the e-graph's peak logical footprint during the
	// compile (Trace.Memory.PeakBytes) — deterministic, so the bench gate
	// can compare it against a committed baseline.
	PeakEGraphBytes int64
}

// T1Options parameterizes the Table 1 run.
type T1Options struct {
	Opts     diospyros.Options
	Only     string
	Validate bool
	Progress func(string)
	// Context cancels the run between (and during) kernel compiles.
	// Nil means context.Background().
	Context context.Context
}

// Table1 compiles every suite kernel, reporting compile time and memory
// (the paper's Table 1 columns) plus e-graph statistics. All numbers come
// from the per-compilation telemetry trace rather than being recomputed.
func Table1(opt T1Options) ([]T1Row, error) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	opts := opt.Opts
	opts.Validate = opt.Validate
	var rows []T1Row
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		res, err := diospyros.CompileContext(ctx, k.Lift(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.ID, err)
		}
		var cycles int64
		var profile *sim.Profile
		if res.Program != nil {
			r := rand.New(rand.NewSource(1))
			_, sres, err := res.Run(k.Inputs(r), nil)
			if err != nil {
				return nil, fmt.Errorf("%s: simulate: %w", k.ID, err)
			}
			cycles, profile = sres.Cycles, sres.Profile
		}
		tr := res.Trace
		nodes, classes := res.Saturation.Nodes, res.Saturation.Classes
		if g, ok := tr.FinalGauge(); ok {
			nodes, classes = g.Nodes, g.Classes
		}
		row := T1Row{
			Kernel:     k,
			Time:       tr.Duration,
			AllocBytes: tr.AllocBytes,
			Nodes:      nodes,
			Classes:    classes,
			Iterations: len(tr.Iterations),
			Reason:     egraph.StopReason(tr.StopReason),
			TimedOut:   !tr.Saturated(),
			Validated:  res.Validated,
			Trace:      tr,
			Cycles:     cycles,
			Profile:    profile,
		}
		if tr.Memory != nil {
			row.PeakEGraphBytes = tr.Memory.PeakBytes
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s %10v %8.1f MB  %7d nodes  %s",
				k.ID, row.Time.Round(time.Millisecond),
				float64(row.AllocBytes)/1e6, row.Nodes, row.Reason))
		}
	}
	return rows, nil
}

// FormatTable1 renders the rows as the paper's Table 1.
func FormatTable1(rows []T1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: benchmark kernels — compilation time and memory\n")
	fmt.Fprintf(&b, "%-22s %-12s %6s %12s %12s %12s %9s %6s %8s %s\n",
		"Benchmark", "Size", "LOC", "Time", "Memory", "E-graph", "E-nodes", "Iters", "Cycles", "Stop")
	for _, r := range rows {
		timeout := ""
		if r.TimedOut {
			timeout = " †"
		}
		fmt.Fprintf(&b, "%-22s %-12s %6d %12v %9.1f MB %9.1f MB %9d %6d %8d %s%s\n",
			r.Kernel.Family, r.Kernel.Size, r.Kernel.RefLOC,
			r.Time.Round(time.Millisecond),
			float64(r.AllocBytes)/1e6, float64(r.PeakEGraphBytes)/1e6,
			r.Nodes, r.Iterations, r.Cycles, r.Reason, timeout)
	}
	b.WriteString("† equality saturation stopped before reaching a fixpoint\n")
	return b.String()
}

// FormatTable1Traces renders the per-kernel stage breakdown behind the
// table (the diosbench -trace view), followed by the simulated cycle
// profile when available.
func FormatTable1Traces(rows []T1Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "-- %s --\n%s", r.Kernel.ID, r.Trace.Format())
		if r.Profile != nil {
			b.WriteString(r.Profile.Format(5))
		}
	}
	return b.String()
}

// t1JSONRow is the machine-readable form of a T1Row.
type t1JSONRow struct {
	ID         string           `json:"id"`
	Family     string           `json:"family"`
	Size       string           `json:"size"`
	RefLOC     int              `json:"ref_loc"`
	TimeNS     int64            `json:"time_ns"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Nodes      int              `json:"nodes"`
	Classes    int              `json:"classes"`
	Iterations int              `json:"iterations"`
	Reason     string           `json:"stop_reason"`
	Validated  bool             `json:"validated,omitempty"`
	Trace      *telemetry.Trace `json:"trace,omitempty"`
	Cycles     int64            `json:"cycles,omitempty"`
	Profile    *sim.Profile     `json:"profile,omitempty"`
	// PeakEGraphBytes is the e-graph's peak logical footprint.
	PeakEGraphBytes int64 `json:"peak_egraph_bytes,omitempty"`
}

// Table1JSON renders the rows (with their traces) as JSON for machine
// consumption (the diosbench -json flag).
func Table1JSON(rows []T1Row) ([]byte, error) {
	out := make([]t1JSONRow, len(rows))
	for i, r := range rows {
		out[i] = t1JSONRow{
			ID: r.Kernel.ID, Family: r.Kernel.Family, Size: r.Kernel.Size,
			RefLOC: r.Kernel.RefLOC, TimeNS: int64(r.Time),
			AllocBytes: r.AllocBytes, Nodes: r.Nodes, Classes: r.Classes,
			Iterations: r.Iterations, Reason: string(r.Reason),
			Validated: r.Validated, Trace: r.Trace,
			Cycles: r.Cycles, Profile: r.Profile,
			PeakEGraphBytes: r.PeakEGraphBytes,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
