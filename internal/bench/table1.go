package bench

import (
	"fmt"
	"strings"
	"time"

	diospyros "diospyros"
	"diospyros/internal/egraph"
)

// T1Row is one line of Table 1: per-kernel compilation statistics.
type T1Row struct {
	Kernel     Kernel
	Time       time.Duration
	AllocBytes uint64
	Nodes      int
	Classes    int
	Iterations int
	Reason     egraph.StopReason
	TimedOut   bool
	Validated  bool
}

// T1Options parameterizes the Table 1 run.
type T1Options struct {
	Opts     diospyros.Options
	Only     string
	Validate bool
	Progress func(string)
}

// Table1 compiles every suite kernel, reporting compile time and memory
// (the paper's Table 1 columns) plus e-graph statistics.
func Table1(opt T1Options) ([]T1Row, error) {
	opts := opt.Opts
	opts.Validate = opt.Validate
	var rows []T1Row
	for _, k := range Suite() {
		if opt.Only != "" && !strings.Contains(k.ID, opt.Only) {
			continue
		}
		res, err := diospyros.Compile(k.Lift(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.ID, err)
		}
		row := T1Row{
			Kernel:     k,
			Time:       res.Compile,
			AllocBytes: res.AllocBytes,
			Nodes:      res.Saturation.Nodes,
			Classes:    res.Saturation.Classes,
			Iterations: res.Saturation.Iterations,
			Reason:     res.Saturation.Reason,
			TimedOut:   !res.Saturation.Saturated(),
			Validated:  res.Validated,
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s %10v %8.1f MB  %7d nodes  %s",
				k.ID, row.Time.Round(time.Millisecond),
				float64(row.AllocBytes)/1e6, row.Nodes, row.Reason))
		}
	}
	return rows, nil
}

// FormatTable1 renders the rows as the paper's Table 1.
func FormatTable1(rows []T1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: benchmark kernels — compilation time and memory\n")
	fmt.Fprintf(&b, "%-22s %-12s %6s %12s %12s %9s %6s %s\n",
		"Benchmark", "Size", "LOC", "Time", "Memory", "E-nodes", "Iters", "Stop")
	for _, r := range rows {
		timeout := ""
		if r.TimedOut {
			timeout = " †"
		}
		fmt.Fprintf(&b, "%-22s %-12s %6d %12v %9.1f MB %9d %6d %s%s\n",
			r.Kernel.Family, r.Kernel.Size, r.Kernel.RefLOC,
			r.Time.Round(time.Millisecond),
			float64(r.AllocBytes)/1e6, r.Nodes, r.Iterations, r.Reason, timeout)
	}
	b.WriteString("† equality saturation stopped before reaching a fixpoint\n")
	return b.String()
}
