package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	diospyros "diospyros"
	"diospyros/internal/diff"
	"diospyros/internal/egraph"
)

// Gate-failure forensics: when -compare trips, this file turns each
// regressed row into a diff artifact pair automatically. The committed
// baselines carry values only (cycles, profile, peak bytes — no traces:
// Table 1 runs journal-off so the journal ring does not count against the
// memory gate), so the regressed kernels are recompiled here with the
// flight recorder armed on demand, and the diff gracefully notes what the
// value-only baseline side cannot attribute.

// RegressedIDs collects the kernel IDs of every regressed row across the
// given verdicts, deduplicated in first-seen order. Rows that are ok,
// improved, new, missing, or without a baseline never trigger forensics.
func RegressedIDs(verdicts ...[]CompareRow) []string {
	seen := map[string]bool{}
	var out []string
	for _, rows := range verdicts {
		for _, r := range rows {
			if r.Status == CompareRegressed && !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r.ID)
			}
		}
	}
	return out
}

// FOptions parameterizes a Forensics capture.
type FOptions struct {
	// Dir receives the per-kernel diff artifacts (created if missing).
	Dir string
	// Opts are the compile options of the gated run; the forensics
	// recompile reuses them with the journal armed on top, so the captured
	// flight record describes the same configuration that regressed.
	Opts diospyros.Options
	// BaselineLabel names the baseline side in the diffs (usually the
	// -compare file name).
	BaselineLabel string
	// Progress, when non-nil, receives one line per captured kernel.
	Progress func(string)
	// Context cancels the recompiles. Nil means context.Background().
	Context context.Context
}

// Forensics captures a diff artifact pair (<kernel>.diff.json and
// <kernel>.diff.html) for each regressed kernel ID: the kernel is
// recompiled with the search journal armed and simulated, then diffed
// against its row in the raw -compare baseline. It returns the paths
// written. Kernels missing from the suite or the baseline are skipped
// with a progress note rather than failing the whole capture.
func Forensics(opt FOptions, baseline []byte, ids []string) ([]string, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	label := opt.BaselineLabel
	if label == "" {
		label = "baseline"
	}
	art, err := diff.LoadArtifact(label, baseline)
	if err != nil {
		return nil, fmt.Errorf("forensics: %w", err)
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("forensics: %w", err)
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string) {}
	}
	kernels := map[string]Kernel{}
	for _, k := range Suite() {
		kernels[k.ID] = k
	}

	opts := opt.Opts
	var written []string
	for _, id := range ids {
		k, ok := kernels[id]
		if !ok {
			progress(fmt.Sprintf("forensics: %s: not in the suite, skipped", id))
			continue
		}
		base, ok := art.Find(id)
		if !ok {
			progress(fmt.Sprintf("forensics: %s: not in the baseline, skipped", id))
			continue
		}
		// Recompile with the flight recorder armed: the gated Table 1 run is
		// journal-off (the ring would count against the memory gate), so the
		// attribution data is captured fresh, on demand.
		opts.Journal = egraph.NewJournal(0)
		res, err := diospyros.CompileContext(ctx, k.Lift(), opts)
		if err != nil {
			return written, fmt.Errorf("forensics: %s: %w", id, err)
		}
		cur := diff.Input{Label: "current", Kernel: id, Trace: res.Trace}
		if res.Program != nil {
			if _, sres, err := res.Run(k.Inputs(rand.New(rand.NewSource(1))), nil); err == nil {
				cur.Profile = sres.Profile
				cur.Cycles = sres.Cycles
			}
		}
		d := diff.Compare(base, cur)

		slug := kernelSlug(id)
		jsonPath := filepath.Join(opt.Dir, slug+".diff.json")
		raw, err := d.JSON()
		if err != nil {
			return written, fmt.Errorf("forensics: %s: %w", id, err)
		}
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			return written, fmt.Errorf("forensics: %w", err)
		}
		written = append(written, jsonPath)

		htmlPath := filepath.Join(opt.Dir, slug+".diff.html")
		page, err := diff.Report(d, base, cur)
		if err != nil {
			return written, fmt.Errorf("forensics: %s: %w", id, err)
		}
		if err := os.WriteFile(htmlPath, page, 0o644); err != nil {
			return written, fmt.Errorf("forensics: %w", err)
		}
		written = append(written, htmlPath)
		progress(fmt.Sprintf("forensics: %s: %d divergences -> %s", id, len(d.Divergences), jsonPath))
	}
	return written, nil
}

// kernelSlug turns a kernel ID into a safe artifact file stem
// ("2DConv 3x3 2x2" -> "2dconv-3x3-2x2").
func kernelSlug(id string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(id) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
