package bench

import (
	"testing"
	"time"

	diospyros "diospyros"
)

func quickOpts() diospyros.Options {
	return diospyros.Options{Timeout: 30 * time.Second, NodeLimit: 500_000}
}

func TestSuiteHas21Kernels(t *testing.T) {
	s := Suite()
	if len(s) != 21 {
		t.Fatalf("suite has %d kernels, want 21 (Table 1)", len(s))
	}
	fams := map[string]int{}
	for _, k := range s {
		fams[k.Family]++
		if k.RefLOC <= 0 {
			t.Errorf("%s: missing reference LOC", k.ID)
		}
	}
	want := map[string]int{"2DConv": 11, "MatMul": 7, "QProd": 1, "QRDecomp": 2}
	for f, n := range want {
		if fams[f] != n {
			t.Errorf("family %s has %d kernels, want %d", f, fams[f], n)
		}
	}
}

// TestFigure5SmallKernels runs the full five-system comparison on the small
// kernels and asserts the paper's qualitative claims.
func TestFigure5SmallKernels(t *testing.T) {
	rows, err := Figure5(F5Options{Opts: quickOpts(), Only: "3x3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Cycles.Naive <= r.Cycles.NaiveFixed {
			t.Errorf("%s: fixed-size (%d) not faster than naive (%d)",
				r.Kernel.ID, r.Cycles.NaiveFixed, r.Cycles.Naive)
		}
		// Diospyros beats the naive loop nest on every kernel.
		if r.Cycles.Diospyros >= r.Cycles.Naive {
			t.Errorf("%s: diospyros (%d) not faster than naive (%d)",
				r.Kernel.ID, r.Cycles.Diospyros, r.Cycles.Naive)
		}
		// Eigen (portable scalar) is never the winner, as in Figure 5.
		if r.Cycles.Eigen > 0 && r.Cycles.Eigen < r.Cycles.Diospyros {
			t.Errorf("%s: eigen (%d) beat diospyros (%d)",
				r.Kernel.ID, r.Cycles.Eigen, r.Cycles.Diospyros)
		}
	}
}

func TestFigure5MatMulFamilyShapes(t *testing.T) {
	rows, err := Figure5(F5Options{Opts: quickOpts(), Only: "MatMul"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d MatMul rows", len(rows))
	}
	// The paper reports 2.7x–19.3x over fixed-size naive for MatMul;
	// require every size to land above 2x.
	for _, r := range rows {
		if sp := r.Speedup(r.Cycles.Diospyros); sp < 2 {
			t.Errorf("%s: speedup %.2fx below 2x", r.Kernel.ID, sp)
		}
	}
	// Nature (size-generic vectorized) overtakes fixed-size naive at the
	// largest size but loses at the smallest (control overhead, §5.4).
	first, last := rows[0], rows[len(rows)-1]
	if first.Cycles.Nature <= first.Cycles.NaiveFixed {
		t.Errorf("2x2: Nature (%d) should lose to fixed-size (%d) on tiny kernels",
			first.Cycles.Nature, first.Cycles.NaiveFixed)
	}
	if last.Cycles.Nature >= last.Cycles.NaiveFixed {
		t.Errorf("16x16: Nature (%d) should beat fixed-size (%d) on large kernels",
			last.Cycles.Nature, last.Cycles.NaiveFixed)
	}
}

func TestGeomeanHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	rows, err := Figure5(F5Options{Opts: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	g := GeomeanVsBestBaseline(rows)
	// Paper: 3.1x. Accept the same ballpark.
	if g < 2.0 || g > 6.0 {
		t.Fatalf("geomean speedup %.2fx outside plausible band [2, 6]", g)
	}
	t.Logf("geomean speedup over best baseline: %.2fx (paper: 3.1x)", g)
}

func TestTable1SmallKernels(t *testing.T) {
	rows, err := Table1(T1Options{Opts: quickOpts(), Only: "2x2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Time <= 0 || r.Nodes == 0 {
			t.Errorf("%s: missing stats %+v", r.Kernel.ID, r)
		}
	}
	out := FormatTable1(rows)
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}

func TestFigure6IterationSweepImproves(t *testing.T) {
	rows, err := Figure6Iterations([]int{1, 3, 30})
	if err != nil {
		t.Fatal(err)
	}
	// rows: 1 iter, 3 iters, 30 iters, Nature.
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	budget1, budget3, budget30 := rows[0], rows[1], rows[2]
	if !(budget1.Cycles >= budget3.Cycles && budget3.Cycles >= budget30.Cycles) {
		t.Fatalf("quality does not improve with budget: %d, %d, %d",
			budget1.Cycles, budget3.Cycles, budget30.Cycles)
	}
	if budget1.Cycles == budget30.Cycles {
		t.Fatalf("budget has no effect (1 iter: %d, 30 iters: %d)", budget1.Cycles, budget30.Cycles)
	}
	if !budget30.Saturated {
		t.Error("30 iterations should saturate 10x10 MatMul")
	}
	// The saturated kernel beats the Nature library (Figure 6's endpoint).
	nature := rows[3]
	if budget30.Cycles >= nature.Cycles {
		t.Errorf("saturated Diospyros (%d) should beat Nature (%d)", budget30.Cycles, nature.Cycles)
	}
	if s := FormatFigure6(rows); len(s) == 0 {
		t.Error("empty figure")
	}
}

func TestExpertComparison(t *testing.T) {
	res, err := Expert(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: within 8% of expert. Allow ±25% in either direction.
	if res.GapPercent > 25 || res.GapPercent < -25 {
		t.Fatalf("gap %.1f%% outside ±25%% (dios %d vs expert %d)",
			res.GapPercent, res.DiospyrosCycles, res.ExpertCycles)
	}
	if res.DiospyrosCycles <= 0 || res.ExpertCycles <= 0 {
		t.Fatal("missing cycles")
	}
	if s := FormatExpert(res); len(s) == 0 {
		t.Fatal("empty report")
	}
}

func TestAblationQProd(t *testing.T) {
	rows, _, err := Ablation(F5Options{Opts: quickOpts(), Only: "QProd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.ScalarOnly <= 0 || r.Vectorized <= 0 {
		t.Fatalf("missing cycles: %+v", r)
	}
	// The scalar ablation must still beat the naive baseline (CSE effect).
	if r.ScalarOnly >= r.BestBaseline*3 {
		t.Errorf("scalar ablation (%d) far worse than baseline (%d)", r.ScalarOnly, r.BestBaseline)
	}
}

func TestTheiaCaseStudy(t *testing.T) {
	res, err := Theia()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Fatalf("no end-to-end speedup: %.2fx", res.Speedup)
	}
	if res.QRShare <= 0.2 {
		t.Errorf("QR share %.0f%% suspiciously small", 100*res.QRShare)
	}
	if s := FormatTheia(res); len(s) == 0 {
		t.Fatal("empty report")
	}
}

func TestMotivatingNumbers(t *testing.T) {
	rows, err := Figure5(F5Options{Opts: quickOpts(), Only: "2DConv 3x5 3x3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// §2's qualitative chain: naive < fixed < library < diospyros.
	if !(r.Cycles.Diospyros < r.Cycles.Nature &&
		r.Cycles.Nature < r.Cycles.Naive &&
		r.Cycles.NaiveFixed < r.Cycles.Naive) {
		t.Fatalf("motivating-example ordering broken: %+v", r.Cycles)
	}
	if s := FormatMotivating(rows); len(s) == 0 {
		t.Fatal("empty report")
	}
}

func TestCostModelAblation(t *testing.T) {
	rows, err := CostModelAblation(F5Options{Opts: quickOpts(), Only: "MatMul 2x3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// The movement-aware model must never produce a slower kernel than the
	// uniform ablation on this kernel (it distinguishes single-array
	// shuffles from cross-array gathers).
	if r.Aware > r.Uniform {
		t.Fatalf("aware model (%d) worse than uniform (%d)", r.Aware, r.Uniform)
	}
	if s := FormatCostAblation(rows); len(s) == 0 {
		t.Fatal("empty report")
	}
}

// TestProfileChecksumSuite compiles and simulates every suite kernel and
// asserts the cycle profiler's attribution invariant: the breakdown
// (operand stalls + memory stalls + branch bubbles + per-slot issue
// cycles + 1) and the per-opcode cycles each sum to the kernel's total
// simulated Cycles.
func TestProfileChecksumSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite compile in -short mode")
	}
	rows, err := Table1(T1Options{Opts: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite()) {
		t.Fatalf("profiled %d kernels, want %d", len(rows), len(Suite()))
	}
	for _, r := range rows {
		if r.Profile == nil {
			t.Errorf("%s: no cycle profile", r.Kernel.ID)
			continue
		}
		if err := r.Profile.CheckSum(); err != nil {
			t.Errorf("%s: %v", r.Kernel.ID, err)
		}
		if r.Profile.Cycles != r.Cycles {
			t.Errorf("%s: profile cycles %d != row cycles %d", r.Kernel.ID, r.Profile.Cycles, r.Cycles)
		}
	}
}

func TestMatchOnly(t *testing.T) {
	cases := []struct {
		only, id string
		want     bool
	}{
		{"", "MatMul 2x2 2x2", true},
		{"MatMul 2x2", "MatMul 2x2 2x2", true},
		{"MatMul 2x2,2DConv 3x3 2x2", "2DConv 3x3 2x2", true},
		{"MatMul 2x2, 2DConv 3x3 2x2", "2DConv 3x3 2x2", true},
		{"QRDecomp", "MatMul 2x2 2x2", false},
		{" , ", "MatMul 2x2 2x2", false},
	}
	for _, c := range cases {
		if got := matchOnly(c.only, c.id); got != c.want {
			t.Errorf("matchOnly(%q, %q) = %v, want %v", c.only, c.id, got, c.want)
		}
	}
}
