package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	diospyros "diospyros"
)

// MSRow is one kernel's row of the match-worker sweep: the saturate-stage
// wall time at each worker count (best of MSOptions.Repeat runs) and the
// speedup relative to the serial matcher. Because parallel matching is
// bit-for-bit deterministic (DESIGN.md §9) every column compiles the same
// program; only the wall clock moves.
type MSRow struct {
	Kernel   Kernel
	Workers  []int
	Saturate []time.Duration // indexed like Workers
	Speedup  []float64       // Saturate[0] / Saturate[i]
	Nodes    int             // final e-graph size (identical across columns)
}

// MSOptions parameterizes the match-worker sweep.
type MSOptions struct {
	Opts diospyros.Options
	Only string
	// Workers lists the worker counts to sweep, first entry the baseline.
	// Nil means {1, 2, 4, GOMAXPROCS} (deduplicated, sorted).
	Workers []int
	// Repeat compiles each (kernel, workers) cell this many times and keeps
	// the fastest saturate span, damping scheduler noise. 0 means 3.
	Repeat   int
	Progress func(string)
	// Context cancels the sweep between kernel compiles. Nil means
	// context.Background().
	Context context.Context
}

func (o MSOptions) workerCounts() []int {
	if len(o.Workers) > 0 {
		return o.Workers
	}
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// MatchSweep compiles every suite kernel once per worker count and reports
// the saturate-stage wall time and parallel speedup. The e-graph statistics
// are asserted identical across worker counts — a sweep doubles as a live
// determinism check — and a mismatch is returned as an error.
func MatchSweep(opt MSOptions) ([]MSRow, error) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	repeat := opt.Repeat
	if repeat <= 0 {
		repeat = 3
	}
	workers := opt.workerCounts()
	var rows []MSRow
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		row := MSRow{Kernel: k, Workers: workers}
		baseNodes, baseC := -1, ""
		for _, w := range workers {
			opts := opt.Opts
			opts.MatchWorkers = w
			best := time.Duration(0)
			for r := 0; r < repeat; r++ {
				res, err := diospyros.CompileContext(ctx, k.Lift(), opts)
				if err != nil {
					return nil, fmt.Errorf("%s (workers=%d): %w", k.ID, w, err)
				}
				d := res.Trace.StageDuration(diospyros.StageSaturate)
				if best == 0 || d < best {
					best = d
				}
				if baseNodes < 0 {
					baseNodes, baseC = res.Saturation.Nodes, res.C
					row.Nodes = baseNodes
				} else if res.Saturation.Nodes != baseNodes || res.C != baseC {
					return nil, fmt.Errorf("%s: workers=%d diverged from baseline (determinism violation)", k.ID, w)
				}
			}
			row.Saturate = append(row.Saturate, best)
		}
		for _, d := range row.Saturate {
			sp := 0.0
			if d > 0 {
				sp = float64(row.Saturate[0]) / float64(d)
			}
			row.Speedup = append(row.Speedup, sp)
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-20s %7d nodes  %v", k.ID, row.Nodes, row.Saturate))
		}
	}
	return rows, nil
}

// FormatMatchSweep renders the sweep as a table: one row per kernel, one
// saturate-time + speedup column pair per worker count.
func FormatMatchSweep(rows []MSRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "match-worker sweep: no kernels selected\n"
	}
	fmt.Fprintf(&b, "Match-worker sweep: saturate-stage wall time (best of repeats)\n")
	fmt.Fprintf(&b, "%-22s %9s", "Benchmark", "E-nodes")
	for _, w := range rows[0].Workers {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("N=%d", w))
		if w != rows[0].Workers[0] {
			fmt.Fprintf(&b, " %7s", "spdup")
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9d", r.Kernel.ID, r.Nodes)
		for i, d := range r.Saturate {
			fmt.Fprintf(&b, " %12v", d.Round(time.Microsecond))
			if i > 0 {
				fmt.Fprintf(&b, " %6.2fx", r.Speedup[i])
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("speedup is serial saturate time over the column's; outputs are identical at every N (DESIGN.md §9)\n")
	return b.String()
}
