package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	diospyros "diospyros"
	"diospyros/internal/expr"
)

// This file is the per-kernel × per-target comparison: every suite kernel
// is compiled once (one saturation search) for several machine targets at
// once, each target's program is simulated, and its outputs are checked
// against the lifted specification. It both powers `diosbench -targets`
// and serves as the cross-width semantic parity harness.

// TTOptions parameterizes a TargetTable run.
type TTOptions struct {
	// Opts are the Diospyros compiler options; Opts.Targets is overwritten
	// with Targets below.
	Opts diospyros.Options
	// Targets are the machine targets to compare (e.g. "fg3lite-4",
	// "fg3lite-8", "scalar"). At least one is required.
	Targets []string
	// Seed for the shared random inputs.
	Seed int64
	// Only restricts the run to kernels whose ID contains any of the
	// comma-separated substrings.
	Only string
	// Progress receives per-kernel progress lines (may be nil).
	Progress func(string)
	// Context cancels the run between kernel compiles. Nil means
	// context.Background().
	Context context.Context
}

func (o TTOptions) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// TargetRow is one kernel's per-target comparison: Cycles[i] and Costs[i]
// belong to Targets[i] of the run.
type TargetRow struct {
	Kernel  Kernel
	Targets []string
	Cycles  []int64
	Costs   []float64
}

// Best returns the index of the fastest target for this kernel (fewest
// simulated cycles; ties go to the earlier target), or -1 if no target
// simulated.
func (r TargetRow) Best() int {
	best := -1
	for i, c := range r.Cycles {
		if c > 0 && (best == -1 || c < r.Cycles[best]) {
			best = i
		}
	}
	return best
}

// TargetTable compiles every suite kernel once per the multi-target path —
// a single saturation search, one extraction per target — simulates each
// target's program on shared random inputs, and verifies every target's
// outputs against the lifted specification.
func TargetTable(opt TTOptions) ([]TargetRow, error) {
	if len(opt.Targets) == 0 {
		return nil, fmt.Errorf("bench: no targets")
	}
	var rows []TargetRow
	for _, k := range Suite() {
		if !matchOnly(opt.Only, k.ID) {
			continue
		}
		row, err := runKernelAllTargets(k, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.ID, err)
		}
		rows = append(rows, row)
		if opt.Progress != nil {
			var parts []string
			for i, name := range row.Targets {
				parts = append(parts, fmt.Sprintf("%s=%d", name, row.Cycles[i]))
			}
			opt.Progress(fmt.Sprintf("%-20s %s", k.ID, strings.Join(parts, " ")))
		}
	}
	return rows, nil
}

func runKernelAllTargets(k Kernel, opt TTOptions) (TargetRow, error) {
	r := rand.New(rand.NewSource(opt.Seed + 7))
	inputs := k.Inputs(r)
	lifted := k.Lift()

	env := expr.NewEnv()
	for name, data := range inputs {
		env.Arrays[name] = data
	}
	specVal, err := lifted.Spec.Eval(env)
	if err != nil {
		return TargetRow{}, fmt.Errorf("spec eval: %w", err)
	}
	want := map[string][]float64{}
	flat := specVal.AsSlice()
	idx := 0
	for _, d := range lifted.Outputs {
		want[d.Name] = flat[idx : idx+d.Len()]
		idx += d.Len()
	}

	opts := opt.Opts
	opts.Targets = opt.Targets
	res, err := diospyros.CompileContext(opt.ctx(), lifted, opts)
	if err != nil {
		return TargetRow{}, fmt.Errorf("diospyros: %w", err)
	}
	if len(res.Targets) != len(opt.Targets) {
		return TargetRow{}, fmt.Errorf("got %d target results, want %d", len(res.Targets), len(opt.Targets))
	}

	row := TargetRow{
		Kernel:  k,
		Targets: append([]string(nil), opt.Targets...),
		Cycles:  make([]int64, len(opt.Targets)),
		Costs:   make([]float64, len(opt.Targets)),
	}
	for i, tr := range res.Targets {
		row.Costs[i] = tr.Cost
		got, sres, err := res.RunTarget(tr.Target, inputs, nil)
		if err != nil {
			return TargetRow{}, fmt.Errorf("%s run: %w", tr.Target, err)
		}
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				return TargetRow{}, fmt.Errorf("%s: missing output %q", tr.Target, name)
			}
			for j := range w {
				if math.Abs(g[j]-w[j]) > 1e-4*math.Max(1, math.Abs(w[j])) {
					return TargetRow{}, fmt.Errorf("%s: output %s[%d] = %g, want %g",
						tr.Target, name, j, g[j], w[j])
				}
			}
		}
		row.Cycles[i] = sres.Cycles
	}
	return row, nil
}

// FormatTargetTable renders the per-kernel × per-target cycle table, with
// each kernel's winning target in the final column.
func FormatTargetTable(rows []TargetRow) string {
	if len(rows) == 0 {
		return "(no kernels)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "kernel")
	for _, name := range rows[0].Targets {
		fmt.Fprintf(&b, " %12s", name)
	}
	fmt.Fprintf(&b, "  %s\n", "best")
	wins := make([]int, len(rows[0].Targets))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Kernel.ID)
		for _, c := range r.Cycles {
			fmt.Fprintf(&b, " %12d", c)
		}
		if best := r.Best(); best >= 0 {
			wins[best]++
			fmt.Fprintf(&b, "  %s", r.Targets[best])
		}
		fmt.Fprintln(&b)
	}
	var parts []string
	for i, name := range rows[0].Targets {
		parts = append(parts, fmt.Sprintf("%s %d", name, wins[i]))
	}
	fmt.Fprintf(&b, "wins: %s\n", strings.Join(parts, ", "))
	return b.String()
}
