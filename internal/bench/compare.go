package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Regression gate: diosbench -compare checks a fresh run's metrics against
// a committed -bench-json baseline (BENCH_PR7.json at the repo root) and
// fails when any kernel regresses beyond a relative tolerance. The gate is
// metric-generic (CompareMetric): CI runs it once on simulated cycles and
// once on peak e-graph bytes, with separate tolerances (-tolerance,
// -mem-tolerance). This is what keeps the CI bench job an actual regression
// test instead of an artifact dump.

// CompareStatus classifies one kernel's metric against the baseline.
type CompareStatus string

const (
	// CompareOK: within tolerance of the baseline.
	CompareOK CompareStatus = "ok"
	// CompareRegressed: worse than baseline beyond tolerance — the only
	// status that fails the gate.
	CompareRegressed CompareStatus = "regressed"
	// CompareImproved: better than baseline beyond tolerance. Worth
	// noticing (the baseline is stale) but never a failure.
	CompareImproved CompareStatus = "improved"
	// CompareNew: present in this run but absent from the baseline.
	CompareNew CompareStatus = "new"
	// CompareMissing: in the baseline but not this run (e.g. an -only
	// filter). Informational only.
	CompareMissing CompareStatus = "missing"
	// CompareNoBaseline: the baseline row exists but carries a zero value
	// for this metric (an older-format baseline, or a kernel that never
	// produced the metric). A relative delta against zero is meaningless,
	// so the row is informational, like CompareNew.
	CompareNoBaseline CompareStatus = "no-baseline"
)

// CompareMetric names one gated metric and extracts it from baseline and
// current rows.
type CompareMetric struct {
	// Name labels the gate's output ("cycle", "peak e-graph bytes").
	Name string
	// Baseline reads the metric from a parsed baseline row.
	Baseline func(benchJSONRow) int64
	// Current reads the metric from a fresh Table 1 row.
	Current func(T1Row) int64
}

// MetricCycles gates on simulated cycles (the original -compare behavior).
var MetricCycles = CompareMetric{
	Name:     "cycle",
	Baseline: func(b benchJSONRow) int64 { return b.Cycles },
	Current:  func(r T1Row) int64 { return r.Cycles },
}

// MetricPeakBytes gates on the peak e-graph logical footprint. The
// footprint is a deterministic function of the search (DESIGN.md §13), so
// it can be committed to a baseline and gated like cycles.
var MetricPeakBytes = CompareMetric{
	Name:     "peak e-graph bytes",
	Baseline: func(b benchJSONRow) int64 { return b.PeakEGraphBytes },
	Current:  func(r T1Row) int64 { return r.PeakEGraphBytes },
}

// JudgeDelta is the gate's core judgment, shared by every comparer in the
// repo (cycle and memory gates here, the serving SLO gate in
// internal/loadgen): it classifies a current value against a baseline under
// a relative tolerance, returning the relative delta ((current-baseline)/
// baseline; positive means worse) and its status. A non-positive baseline
// yields CompareNoBaseline with a zero delta — a relative delta against
// zero is meaningless, so such rows are informational, never failures.
func JudgeDelta(baseline, current, tolerance float64) (float64, CompareStatus) {
	if baseline <= 0 {
		return 0, CompareNoBaseline
	}
	delta := (current - baseline) / baseline
	switch {
	case delta > tolerance:
		return delta, CompareRegressed
	case delta < -tolerance:
		return delta, CompareImproved
	}
	return delta, CompareOK
}

// CompareRow is one kernel's verdict.
type CompareRow struct {
	ID       string
	Baseline int64
	Current  int64
	// Delta is the relative metric change, (current-baseline)/baseline;
	// positive means worse. Zero for new/missing/no-baseline rows.
	Delta  float64
	Status CompareStatus
}

// CompareBench judges rows' simulated cycles against a -bench-json baseline
// with the given relative tolerance (0.15 means +15% cycles fails); see
// CompareBenchMetric.
func CompareBench(baseline []byte, rows []T1Row, tolerance float64) ([]CompareRow, error) {
	return CompareBenchMetric(baseline, rows, tolerance, MetricCycles)
}

// CompareBenchMetric judges one metric of rows against a -bench-json
// baseline with the given relative tolerance. Rows are returned in baseline
// order, then new kernels, then baseline kernels missing from this run.
// Baseline rows whose metric is zero get CompareNoBaseline (informational):
// a relative delta against zero would be ±Inf, and an older baseline that
// predates the metric must not fail the gate.
func CompareBenchMetric(baseline []byte, rows []T1Row, tolerance float64, metric CompareMetric) ([]CompareRow, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("negative tolerance %v", tolerance)
	}
	var base []benchJSONRow
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("bad baseline: %w", err)
	}
	cur := make(map[string]int64, len(rows))
	for _, r := range rows {
		cur[r.Kernel.ID] = metric.Current(r)
	}

	var out []CompareRow
	seen := map[string]bool{}
	for _, b := range base {
		seen[b.ID] = true
		bv := metric.Baseline(b)
		c, ok := cur[b.ID]
		if !ok {
			out = append(out, CompareRow{ID: b.ID, Baseline: bv, Status: CompareMissing})
			continue
		}
		row := CompareRow{ID: b.ID, Baseline: bv, Current: c}
		row.Delta, row.Status = JudgeDelta(float64(bv), float64(c), tolerance)
		out = append(out, row)
	}
	var fresh []CompareRow
	for id, c := range cur {
		if !seen[id] {
			fresh = append(fresh, CompareRow{ID: id, Current: c, Status: CompareNew})
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID < fresh[j].ID })
	return append(out, fresh...), nil
}

// CountRegressions returns how many rows fail the gate.
func CountRegressions(rows []CompareRow) int {
	n := 0
	for _, r := range rows {
		if r.Status == CompareRegressed {
			n++
		}
	}
	return n
}

// FormatCompare renders the cycle comparison as a table with a one-line
// verdict; see FormatCompareMetric.
func FormatCompare(rows []CompareRow, tolerance float64) string {
	return FormatCompareMetric(rows, tolerance, MetricCycles.Name)
}

// FormatCompareMetric renders one metric's comparison as a table with a
// one-line verdict.
func FormatCompareMetric(rows []CompareRow, tolerance float64, metricName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s regression check (tolerance %+.0f%%) ==\n", metricName, tolerance*100)
	w := len("kernel")
	for _, r := range rows {
		if len(r.ID) > w {
			w = len(r.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s  %s\n", w, "kernel", "baseline", "current", "delta", "status")
	for _, r := range rows {
		delta := fmt.Sprintf("%+.1f%%", r.Delta*100)
		if r.Status == CompareNew || r.Status == CompareMissing || r.Status == CompareNoBaseline {
			delta = "-"
		}
		fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s  %s\n",
			w, r.ID, metricCell(r.Baseline), metricCell(r.Current), delta, r.Status)
	}
	if n := CountRegressions(rows); n > 0 {
		fmt.Fprintf(&b, "FAIL: %d kernel(s) regressed beyond %.0f%%\n", n, tolerance*100)
	} else {
		fmt.Fprintf(&b, "OK: no kernel regressed beyond %.0f%%\n", tolerance*100)
	}
	return b.String()
}

func metricCell(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
