package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Cycle-regression gate: diosbench -compare checks a fresh run's simulated
// cycle counts against a committed -bench-json baseline (BENCH_PR3.json at
// the repo root) and fails when any kernel slows down beyond a relative
// tolerance. This is what keeps the CI bench job an actual regression test
// instead of an artifact dump.

// CompareStatus classifies one kernel's cycles against the baseline.
type CompareStatus string

const (
	// CompareOK: within tolerance of the baseline.
	CompareOK CompareStatus = "ok"
	// CompareRegressed: slower than baseline beyond tolerance — the only
	// status that fails the gate.
	CompareRegressed CompareStatus = "regressed"
	// CompareImproved: faster than baseline beyond tolerance. Worth
	// noticing (the baseline is stale) but never a failure.
	CompareImproved CompareStatus = "improved"
	// CompareNew: present in this run but absent from the baseline.
	CompareNew CompareStatus = "new"
	// CompareMissing: in the baseline but not this run (e.g. an -only
	// filter). Informational only.
	CompareMissing CompareStatus = "missing"
)

// CompareRow is one kernel's verdict.
type CompareRow struct {
	ID       string
	Baseline int64
	Current  int64
	// Delta is the relative cycle change, (current-baseline)/baseline;
	// positive means slower. Zero for new/missing rows.
	Delta  float64
	Status CompareStatus
}

// CompareBench judges rows against a -bench-json baseline with the given
// relative tolerance (0.15 means +15% cycles fails). Rows are returned in
// baseline order, then new kernels, then baseline kernels missing from
// this run.
func CompareBench(baseline []byte, rows []T1Row, tolerance float64) ([]CompareRow, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("negative tolerance %v", tolerance)
	}
	var base []benchJSONRow
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("bad baseline: %w", err)
	}
	cur := make(map[string]int64, len(rows))
	for _, r := range rows {
		cur[r.Kernel.ID] = r.Cycles
	}

	var out []CompareRow
	seen := map[string]bool{}
	for _, b := range base {
		seen[b.ID] = true
		c, ok := cur[b.ID]
		if !ok {
			out = append(out, CompareRow{ID: b.ID, Baseline: b.Cycles, Status: CompareMissing})
			continue
		}
		row := CompareRow{ID: b.ID, Baseline: b.Cycles, Current: c, Status: CompareOK}
		if b.Cycles > 0 {
			row.Delta = float64(c-b.Cycles) / float64(b.Cycles)
		}
		switch {
		case row.Delta > tolerance:
			row.Status = CompareRegressed
		case row.Delta < -tolerance:
			row.Status = CompareImproved
		}
		out = append(out, row)
	}
	var fresh []CompareRow
	for id, c := range cur {
		if !seen[id] {
			fresh = append(fresh, CompareRow{ID: id, Current: c, Status: CompareNew})
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID < fresh[j].ID })
	return append(out, fresh...), nil
}

// CountRegressions returns how many rows fail the gate.
func CountRegressions(rows []CompareRow) int {
	n := 0
	for _, r := range rows {
		if r.Status == CompareRegressed {
			n++
		}
	}
	return n
}

// FormatCompare renders the comparison as a table with a one-line verdict.
func FormatCompare(rows []CompareRow, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== cycle regression check (tolerance %+.0f%%) ==\n", tolerance*100)
	w := len("kernel")
	for _, r := range rows {
		if len(r.ID) > w {
			w = len(r.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s  %s\n", w, "kernel", "baseline", "current", "delta", "status")
	for _, r := range rows {
		delta := fmt.Sprintf("%+.1f%%", r.Delta*100)
		if r.Status == CompareNew || r.Status == CompareMissing {
			delta = "-"
		}
		fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s  %s\n",
			w, r.ID, cycleCell(r.Baseline), cycleCell(r.Current), delta, r.Status)
	}
	if n := CountRegressions(rows); n > 0 {
		fmt.Fprintf(&b, "FAIL: %d kernel(s) regressed beyond %.0f%%\n", n, tolerance*100)
	} else {
		fmt.Fprintf(&b, "OK: no kernel regressed beyond %.0f%%\n", tolerance*100)
	}
	return b.String()
}

func cycleCell(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
