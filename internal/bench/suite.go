// Package bench defines the paper's benchmark suite (Table 1) and the
// runners that regenerate each table and figure of the evaluation:
// Table 1 (compile time/memory), Figure 5 (kernel speedups vs. baselines),
// Figure 6 (saturation-budget ablation), the §5.4 expert comparison, the
// §5.6 vectorization ablation, and the §5.7 Theia case study.
package bench

import (
	"fmt"
	"math/rand"

	"diospyros/internal/kernel"
	"diospyros/internal/kernels"
	"diospyros/internal/nature"
)

// Kernel describes one benchmark kernel of Table 1.
type Kernel struct {
	ID     string // e.g. "2DConv 3x5 3x3"
	Family string // 2DConv | MatMul | QProd | QRDecomp
	Size   string // human-readable size, e.g. "3×5, 3×3"
	RefLOC int    // reference-implementation length (Table 1 column)

	Lift     func() *kernel.Lifted // Diospyros input
	NaiveSrc string                // imperative reference for kcc
	Inputs   func(r *rand.Rand) map[string][]float64

	HasNature bool // vendor library provides this kernel
	// NatureRun invokes the vendor-library routine, returning outputs and
	// simulated cycles. Nil when HasNature is false.
	NatureRun func(inputs map[string][]float64) (map[string][]float64, int64, error)
	EigenSrc  string
}

// Suite returns the 21 kernels of the paper's Table 1, in table order.
func Suite() []Kernel {
	var out []Kernel

	convSizes := [][4]int{
		{3, 3, 2, 2}, {3, 3, 3, 3}, {3, 5, 3, 3}, {4, 4, 3, 3},
		{8, 8, 3, 3}, {10, 10, 2, 2}, {10, 10, 3, 3}, {10, 10, 4, 4},
		{16, 16, 2, 2}, {16, 16, 3, 3}, {16, 16, 4, 4},
	}
	for _, sz := range convSizes {
		ir, ic, fr, fc := sz[0], sz[1], sz[2], sz[3]
		out = append(out, Kernel{
			ID:       fmt.Sprintf("2DConv %dx%d %dx%d", ir, ic, fr, fc),
			Family:   "2DConv",
			Size:     fmt.Sprintf("%d×%d, %d×%d", ir, ic, fr, fc),
			RefLOC:   srcLOC(naiveConvSrc(ir, ic, fr, fc)),
			Lift:     func() *kernel.Lifted { return kernels.Conv2D(ir, ic, fr, fc) },
			NaiveSrc: naiveConvSrc(ir, ic, fr, fc),
			Inputs: func(r *rand.Rand) map[string][]float64 {
				return map[string][]float64{
					"i": randSlice(r, ir*ic),
					"f": randSlice(r, fr*fc),
				}
			},
			HasNature: true,
			NatureRun: func(inputs map[string][]float64) (map[string][]float64, int64, error) {
				prog := nature.Conv2D(ir, ic, fr, fc)
				out, res, err := nature.Run(prog, inputs, []int{ir, ic, fr, fc})
				if err != nil {
					return nil, 0, err
				}
				return out, res.Cycles, nil
			},
			EigenSrc: eigenConvSrc(ir, ic, fr, fc),
		})
	}

	mmSizes := [][3]int{
		{2, 2, 2}, {2, 3, 3}, {3, 3, 3}, {4, 4, 4},
		{8, 8, 8}, {10, 10, 10}, {16, 16, 16},
	}
	for _, sz := range mmSizes {
		m, n, p := sz[0], sz[1], sz[2]
		out = append(out, Kernel{
			ID:       fmt.Sprintf("MatMul %dx%d %dx%d", m, n, n, p),
			Family:   "MatMul",
			Size:     fmt.Sprintf("%d×%d, %d×%d", m, n, n, p),
			RefLOC:   srcLOC(naiveMatMulSrc(m, n, p)),
			Lift:     func() *kernel.Lifted { return kernels.MatMul(m, n, p) },
			NaiveSrc: naiveMatMulSrc(m, n, p),
			Inputs: func(r *rand.Rand) map[string][]float64 {
				return map[string][]float64{
					"a": randSlice(r, m*n),
					"b": randSlice(r, n*p),
				}
			},
			HasNature: true,
			NatureRun: func(inputs map[string][]float64) (map[string][]float64, int64, error) {
				prog := nature.MatMul(m, n, p)
				out, res, err := nature.Run(prog, inputs, []int{m, n, p})
				if err != nil {
					return nil, 0, err
				}
				return out, res.Cycles, nil
			},
			EigenSrc: eigenMatMulSrc(m, n, p),
		})
	}

	out = append(out, Kernel{
		ID:       "QProd 4,3,4,3",
		Family:   "QProd",
		Size:     "4, 3, 4, 3",
		RefLOC:   srcLOC(naiveQProdSrc),
		Lift:     func() *kernel.Lifted { return kernels.QProd() },
		NaiveSrc: naiveQProdSrc,
		Inputs: func(r *rand.Rand) map[string][]float64 {
			return map[string][]float64{
				"aq": randSlice(r, 4), "at": randSlice(r, 3),
				"bq": randSlice(r, 4), "bt": randSlice(r, 3),
			}
		},
		EigenSrc: naiveQProdSrc,
	})

	for _, n := range []int{3, 4} {
		n := n
		out = append(out, Kernel{
			ID:       fmt.Sprintf("QRDecomp %dx%d", n, n),
			Family:   "QRDecomp",
			Size:     fmt.Sprintf("%d×%d", n, n),
			RefLOC:   srcLOC(naiveQRSrc(n)),
			Lift:     func() *kernel.Lifted { return kernels.QRDecomp(n) },
			NaiveSrc: naiveQRSrc(n),
			Inputs: func(r *rand.Rand) map[string][]float64 {
				return map[string][]float64{"a": randSlice(r, n*n)}
			},
			EigenSrc: eigenQRSrc(n),
		})
	}

	return out
}

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*4 - 2
	}
	return s
}

func srcLOC(src string) int {
	n := 0
	start := 0
	for i := 0; i <= len(src); i++ {
		if i == len(src) || src[i] == '\n' {
			line := src[start:i]
			start = i + 1
			hasContent := false
			for _, c := range line {
				if c != ' ' && c != '\t' {
					hasContent = true
					break
				}
			}
			if hasContent {
				n++
			}
		}
	}
	return n
}
