package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// matchOnly implements the -only filter: a comma-separated list of
// substrings, matching kernels whose ID contains any of them. The empty
// filter matches everything.
func matchOnly(only, id string) bool {
	if only == "" {
		return true
	}
	for _, part := range strings.Split(only, ",") {
		if part = strings.TrimSpace(part); part != "" && strings.Contains(id, part) {
			return true
		}
	}
	return false
}

// FormatCycleProfiles renders each kernel's simulated cycle breakdown —
// top-5 opcode hotspots, per-slot issue, and stall causes (the diosbench
// -profile view).
func FormatCycleProfiles(rows []T1Row) string {
	var b strings.Builder
	for _, r := range rows {
		if r.Profile == nil {
			continue
		}
		fmt.Fprintf(&b, "-- %s: %d cycles --\n%s", r.Kernel.ID, r.Cycles, r.Profile.Format(5))
	}
	return b.String()
}

// NamedTraces pairs each row's compilation trace with its kernel ID for
// the multi-kernel exporters (-trace-out, -metrics-out).
func NamedTraces(rows []T1Row) []telemetry.NamedTrace {
	out := make([]telemetry.NamedTrace, 0, len(rows))
	for _, r := range rows {
		if r.Trace != nil {
			out = append(out, telemetry.NamedTrace{Name: r.Kernel.ID, Trace: r.Trace})
		}
	}
	return out
}

// benchJSONRow is one kernel in the -bench-json artifact: simulated cycles
// plus the profiler's breakdown, the regression-tracking format uploaded
// by the CI smoke job.
type benchJSONRow struct {
	ID      string       `json:"id"`
	Cycles  int64        `json:"cycles"`
	Profile *sim.Profile `json:"profile,omitempty"`
	// PeakEGraphBytes is the e-graph's peak logical footprint during the
	// compile — the memory half of the regression gate. Omitted (and read
	// back as zero, which the gate treats as no-baseline) in baselines that
	// predate memory accounting.
	PeakEGraphBytes int64 `json:"peak_egraph_bytes,omitempty"`
}

// BenchJSON renders per-kernel cycle counts, peak e-graph bytes, and
// profiles as JSON.
func BenchJSON(rows []T1Row) ([]byte, error) {
	out := make([]benchJSONRow, len(rows))
	for i, r := range rows {
		out[i] = benchJSONRow{ID: r.Kernel.ID, Cycles: r.Cycles, Profile: r.Profile,
			PeakEGraphBytes: r.PeakEGraphBytes}
	}
	return json.MarshalIndent(out, "", "  ")
}
