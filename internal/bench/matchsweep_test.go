package bench

import (
	"strings"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/egraph"
)

// journalRuleCounts aggregates the flight recorder's per-rule attribution
// into a comparable map, ignoring Duration (the only field the determinism
// contract allows to differ across worker counts).
func journalRuleCounts(jr *egraph.Journal) map[string][3]int {
	out := map[string][3]int{}
	for _, ev := range jr.Events() {
		if ev.Kind != egraph.JournalRule {
			continue
		}
		k := ev.Rule
		c := out[k]
		c[0] += ev.Matches
		c[1] += ev.Applied
		c[2] += ev.NewNodes
		out[k] = c
	}
	return out
}

// TestMatchWorkerParityAcrossSuite is the tentpole acceptance criterion:
// every kernel of the 21-kernel suite compiles to byte-identical C, the
// same extraction cost, the same saturation statistics, and the same
// journal rule attribution at -match-workers=1 and =8.
func TestMatchWorkerParityAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	compileAt := func(k Kernel, workers int) (*diospyros.Result, *egraph.Journal) {
		jr := egraph.NewJournal(0)
		res, err := diospyros.Compile(k.Lift(), diospyros.Options{
			Timeout:      time.Minute,
			MatchWorkers: workers,
			Journal:      jr,
		})
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", k.ID, workers, err)
		}
		return res, jr
	}
	for _, k := range Suite() {
		serial, jrSerial := compileAt(k, 1)
		parallel, jrParallel := compileAt(k, 8)
		if serial.C != parallel.C {
			t.Errorf("%s: C output differs between workers=1 and workers=8", k.ID)
		}
		if serial.Cost != parallel.Cost {
			t.Errorf("%s: cost %v vs %v", k.ID, serial.Cost, parallel.Cost)
		}
		s, p := serial.Saturation, parallel.Saturation
		if s.Nodes != p.Nodes || s.Classes != p.Classes ||
			s.Iterations != p.Iterations || s.Applied != p.Applied || s.Reason != p.Reason {
			t.Errorf("%s: saturation stats diverged:\nserial   %+v\nparallel %+v", k.ID, s, p)
		}
		cs, cp := journalRuleCounts(jrSerial), journalRuleCounts(jrParallel)
		if len(cs) != len(cp) {
			t.Errorf("%s: journal rule sets differ: %d vs %d rules", k.ID, len(cs), len(cp))
			continue
		}
		for rule, sc := range cs {
			if pc, ok := cp[rule]; !ok || pc != sc {
				t.Errorf("%s: rule %q attribution %v vs %v", k.ID, rule, sc, cp[rule])
			}
		}
	}
}

// TestMatchSweepReportsSpeedup runs the diosbench sweep machinery on one
// small kernel and checks the table plumbing: per-worker saturate times,
// a baseline speedup of exactly 1.0, and the built-in determinism check.
func TestMatchSweepReportsSpeedup(t *testing.T) {
	rows, err := MatchSweep(MSOptions{
		Only:    "MatMul 2x2",
		Workers: []int{1, 2},
		Repeat:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("sweep selected no kernels")
	}
	r := rows[0]
	if len(r.Saturate) != 2 || r.Saturate[0] <= 0 || r.Saturate[1] <= 0 {
		t.Fatalf("saturate durations not recorded: %v", r.Saturate)
	}
	if r.Speedup[0] != 1.0 {
		t.Errorf("baseline speedup = %v, want 1.0", r.Speedup[0])
	}
	out := FormatMatchSweep(rows)
	for _, want := range []string{"N=1", "N=2", "spdup", r.Kernel.ID} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}
