package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	diospyros "diospyros"
	"diospyros/internal/expert"
	"diospyros/internal/kernels"
	"diospyros/internal/theia"
)

// ExpertResult compares Diospyros against the hand-tuned 2×3·3×3 MatMul
// kernel (§5.4): cycles, compile time, and the vector-operation mix.
type ExpertResult struct {
	DiospyrosCycles int64
	ExpertCycles    int64
	CompileTime     time.Duration
	// Dynamic vector arithmetic operation counts (VMul+VMac etc.).
	DiospyrosVecOps int64
	ExpertVecOps    int64
	GapPercent      float64 // (diospyros-expert)/expert × 100
}

// Expert runs the §5.4 expert comparison.
func Expert(opts diospyros.Options) (*ExpertResult, error) {
	return ExpertContext(context.Background(), opts)
}

// ExpertContext is Expert under a caller context.
func ExpertContext(ctx context.Context, opts diospyros.Options) (*ExpertResult, error) {
	l := kernels.MatMul(2, 3, 3)
	res, err := diospyros.CompileContext(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(21))
	a := randSlice(r, 6)
	b := randSlice(r, 9)
	dout, dres, err := res.Run(map[string][]float64{"a": a, "b": b}, nil)
	if err != nil {
		return nil, err
	}
	eout, eres, err := expert.Run(a, b)
	if err != nil {
		return nil, err
	}
	want := kernels.MatMulRef(2, 3, 3, a, b)
	for i := range want {
		if math.Abs(dout["c"][i]-want[i]) > 1e-9 || math.Abs(eout[i]-want[i]) > 1e-9 {
			return nil, fmt.Errorf("expert comparison: output %d mismatch", i)
		}
	}
	return &ExpertResult{
		DiospyrosCycles: dres.Cycles,
		ExpertCycles:    eres.Cycles,
		CompileTime:     res.Compile,
		DiospyrosVecOps: dres.VectorOps(),
		ExpertVecOps:    eres.VectorOps(),
		GapPercent:      100 * (float64(dres.Cycles) - float64(eres.Cycles)) / float64(eres.Cycles),
	}, nil
}

// FormatExpert renders the §5.4 comparison.
func FormatExpert(e *ExpertResult) string {
	var b strings.Builder
	b.WriteString("§5.4 expert comparison (2×3 · 3×3 MatMul)\n")
	fmt.Fprintf(&b, "  diospyros: %d cycles (compiled in %v, %d vector ops)\n",
		e.DiospyrosCycles, e.CompileTime.Round(time.Millisecond), e.DiospyrosVecOps)
	fmt.Fprintf(&b, "  expert:    %d cycles (%d vector ops)\n", e.ExpertCycles, e.ExpertVecOps)
	fmt.Fprintf(&b, "  gap: %+.1f%%   (paper: +8%%, 39 vs 36 cycles, same 2 VMUL + 4 VMAC mix)\n", e.GapPercent)
	return b.String()
}

// TheiaResult is the §5.7 application case study summary.
type TheiaResult struct {
	EigenTotal     int64
	EigenQR        int64
	DiospyrosTotal int64
	DiospyrosQR    int64
	Speedup        float64
	QRShare        float64 // fraction of Eigen-variant time in QR
}

// Theia runs the §5.7 case study on a synthetic projection matrix.
func Theia() (*TheiaResult, error) {
	r := rand.New(rand.NewSource(31))
	p := syntheticProjection(r)
	eig, err := theia.Decompose(p, theia.VariantEigen)
	if err != nil {
		return nil, err
	}
	dio, err := theia.Decompose(p, theia.VariantDiospyros)
	if err != nil {
		return nil, err
	}
	return &TheiaResult{
		EigenTotal:     eig.TotalCycles,
		EigenQR:        eig.QRCycles,
		DiospyrosTotal: dio.TotalCycles,
		DiospyrosQR:    dio.QRCycles,
		Speedup:        float64(eig.TotalCycles) / float64(dio.TotalCycles),
		QRShare:        float64(eig.QRCycles) / float64(eig.TotalCycles),
	}, nil
}

// FormatTheia renders the case study.
func FormatTheia(t *TheiaResult) string {
	var b strings.Builder
	b.WriteString("§5.7 application case study: Theia DecomposeProjectionMatrix\n")
	fmt.Fprintf(&b, "  library (Eigen-like) QR: %d cycles total, %d in 3×3 QR (%.0f%%)\n",
		t.EigenTotal, t.EigenQR, 100*t.QRShare)
	fmt.Fprintf(&b, "  Diospyros QR:           %d cycles total, %d in 3×3 QR\n",
		t.DiospyrosTotal, t.DiospyrosQR)
	fmt.Fprintf(&b, "  end-to-end speedup: %.2fx   (paper: 2.1x, 30552 vs 64025 cycles; 61%% in QR)\n", t.Speedup)
	return b.String()
}

// syntheticProjection builds a realistic P = K·[R | −R·c].
func syntheticProjection(r *rand.Rand) []float64 {
	k := []float64{
		800 + r.Float64()*200, r.Float64() * 2, 320,
		0, 800 + r.Float64()*200, 240,
		0, 0, 1,
	}
	q := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	n := math.Sqrt(q[0]*q[0] + q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	rot := []float64{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
	c := []float64{r.Float64()*4 - 2, r.Float64()*4 - 2, r.Float64()*4 - 2}
	t := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i] -= rot[i*3+j] * c[j]
		}
	}
	p := make([]float64, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			var rtv float64
			for kk := 0; kk < 3; kk++ {
				col := t[kk]
				if j < 3 {
					col = rot[kk*3+j]
				}
				rtv += k[i*3+kk] * col
			}
			p[i*4+j] = rtv
		}
	}
	return p
}
