package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	diospyros "diospyros"
)

func TestRegressedIDsFilterAndDedup(t *testing.T) {
	cycleRows := []CompareRow{
		{ID: "ok-kernel", Status: CompareOK},
		{ID: "slow", Status: CompareRegressed},
		{ID: "fast", Status: CompareImproved},
		{ID: "fresh", Status: CompareNew},
		{ID: "gone", Status: CompareMissing},
		{ID: "old-format", Status: CompareNoBaseline},
	}
	memRows := []CompareRow{
		{ID: "slow", Status: CompareRegressed},    // dup across gates
		{ID: "bloated", Status: CompareRegressed}, // second gate's own find
	}
	got := RegressedIDs(cycleRows, memRows)
	if len(got) != 2 || got[0] != "slow" || got[1] != "bloated" {
		t.Fatalf("RegressedIDs = %v, want [slow bloated]", got)
	}
	if ids := RegressedIDs(); ids != nil {
		t.Errorf("no verdicts = %v, want nil", ids)
	}
}

// TestRegressedIDsBoundaries drives the forensics trigger through
// JudgeDelta's boundary conditions: exactly-at-tolerance deltas, zero
// baselines with nonzero current values, and improvements must never spawn
// a forensics capture.
func TestRegressedIDsBoundaries(t *testing.T) {
	baseline := []byte(`[
		{"id": "at-tolerance", "cycles": 100},
		{"id": "zero-baseline", "cycles": 0},
		{"id": "improved", "cycles": 100}
	]`)
	rows, err := CompareBench(baseline, []T1Row{
		{Kernel: Kernel{ID: "at-tolerance"}, Cycles: 115}, // exactly +15%
		{Kernel: Kernel{ID: "zero-baseline"}, Cycles: 50}, // no-baseline
		{Kernel: Kernel{ID: "improved"}, Cycles: 70},      // -30%
	}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ids := RegressedIDs(rows); len(ids) != 0 {
		t.Fatalf("boundary rows spawned forensics for %v:\n%+v", ids, rows)
	}
	// Crossing the boundary by one cycle does trigger.
	rows, err = CompareBench(baseline, []T1Row{
		{Kernel: Kernel{ID: "at-tolerance"}, Cycles: 116},
	}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ids := RegressedIDs(rows); len(ids) != 1 || ids[0] != "at-tolerance" {
		t.Fatalf("past-tolerance row not captured: %v", ids)
	}
}

// TestForensicsNoRegressionsNoArtifacts pins the negative side of the gate
// hook: without regressed IDs, Forensics must not even create the directory.
func TestForensicsNoRegressionsNoArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "forensics")
	paths, err := Forensics(FOptions{Dir: dir}, nil, nil)
	if err != nil || paths != nil {
		t.Fatalf("Forensics(no ids) = %v, %v; want nil, nil", paths, err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("forensics dir created despite no regressions")
	}
}

// TestForensicsCapturesRegressedKernel runs the full gate-failure autopsy on
// a doctored baseline: the regressed kernel is recompiled journal-armed and
// both diff artifacts land on disk, attributing the cycle delta.
func TestForensicsCapturesRegressedKernel(t *testing.T) {
	const id = "MatMul 2x2 2x2"
	baseline := []byte(`[{"id": "` + id + `", "cycles": 4, "peak_egraph_bytes": 1}]`)
	dir := t.TempDir()
	var logs []string
	paths, err := Forensics(FOptions{
		Dir:           dir,
		Opts:          diospyros.Options{Timeout: time.Minute},
		BaselineLabel: "doctored.json",
		Progress:      func(s string) { logs = append(logs, s) },
	}, baseline, []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want a .diff.json and a .diff.html", paths)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "matmul-2x2-2x2.diff.json"))
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Schema      string `json:"schema"`
		Divergences []struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		} `json:"divergences"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Schema != "diospyros/diff/v1" {
		t.Errorf("diff schema = %q", d.Schema)
	}
	var cycles bool
	for _, dv := range d.Divergences {
		if dv.Kind == "cycles" && strings.Contains(dv.Detail, "4 → ") {
			cycles = true
		}
	}
	if !cycles {
		t.Errorf("no cycles divergence against the doctored baseline:\n%s", raw)
	}
	page, err := os.ReadFile(filepath.Join(dir, "matmul-2x2-2x2.diff.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "doctored.json") {
		t.Error("HTML report does not name the baseline")
	}
	if len(logs) == 0 || !strings.Contains(logs[len(logs)-1], id) {
		t.Errorf("progress lines = %v, want a capture note for %s", logs, id)
	}
}

func TestForensicsSkipsUnknownKernels(t *testing.T) {
	baseline := []byte(`[{"id": "MatMul 2x2 2x2", "cycles": 4}]`)
	dir := t.TempDir()
	var logs []string
	paths, err := Forensics(FOptions{
		Dir:      dir,
		Progress: func(s string) { logs = append(logs, s) },
	}, baseline, []string{"NoSuchKernel", "2DConv 3x3 2x2"}) // 2DConv not in baseline
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("paths = %v, want none", paths)
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "not in the suite") || !strings.Contains(joined, "not in the baseline") {
		t.Errorf("skip notes missing from %v", logs)
	}
}

func TestKernelSlug(t *testing.T) {
	cases := map[string]string{
		"MatMul 2x2 2x2": "matmul-2x2-2x2",
		"2DConv 3x3 2x2": "2dconv-3x3-2x2",
		"QProd":          "qprod",
		"  odd--name  ":  "odd-name",
	}
	for id, want := range cases {
		if got := kernelSlug(id); got != want {
			t.Errorf("kernelSlug(%q) = %q, want %q", id, got, want)
		}
	}
}
