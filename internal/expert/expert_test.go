package expert

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/isa"
	"diospyros/internal/kernels"
)

func TestExpertMatMulCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		a := make([]float64, 6)
		b := make([]float64, 9)
		for i := range a {
			a[i] = r.Float64()*4 - 2
		}
		for i := range b {
			b[i] = r.Float64()*4 - 2
		}
		got, _, err := Run(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := kernels.MatMulRef(2, 3, 3, a, b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("c[%d] = %g, want %g", i, got[i], want[i])
			}
		}
	}
}

func TestExpertOperationMix(t *testing.T) {
	// The paper reports the expert kernel uses exactly two vector
	// multiplies and four multiply–accumulates.
	p := MatMul2x3x3()
	h := p.OpHistogram()
	if h[isa.VMul] != 2 || h[isa.VMac] != 4 {
		t.Fatalf("op mix: %d VMul, %d VMac; want 2 and 4", h[isa.VMul], h[isa.VMac])
	}
}

func TestExpertCycleCount(t *testing.T) {
	a := make([]float64, 6)
	b := make([]float64, 9)
	_, res, err := Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-tuned straight-line code: a few dozen cycles at most.
	if res.Cycles <= 0 || res.Cycles > 60 {
		t.Fatalf("expert kernel took %d cycles", res.Cycles)
	}
}
