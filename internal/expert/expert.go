// Package expert contains a hand-scheduled FG3-lite kernel standing in for
// the proprietary expert-written 2×3 · 3×3 matrix multiply the paper
// compares against (§5.4): the expert kernel and the Diospyros kernel
// perform the same vector-arithmetic mix — two vector multiplies and four
// fused multiply–accumulates — and differ only in hand-picked data
// movement.
package expert

import (
	"diospyros/internal/isa"
	"diospyros/internal/sim"
)

// MatMul2x3x3 builds the hand-tuned kernel computing c[2×3] = a[2×3]·b[3×3].
// Layout: a (8 padded), b (12 padded), c (8 padded).
//
// Schedule: the six outputs are packed as chunk0 = (c00 c01 c02 c10) and
// chunk1 = (c11 c12 — —). Each chunk is one VMul plus two VMacs over
// shuffled operand vectors; all shuffles gather from a single array.
func MatMul2x3x3() *isa.Program {
	lay := isa.NewLayout()
	lay.Add("a", 8)
	lay.Add("b", 12)
	lay.Add("c", 8)
	b := isa.NewBuilder("expert_matmul_2x3_3x3", lay)

	aBase, bBase, cBase := b.IReg(), b.IReg(), b.IReg()
	b.Emit(isa.Instr{Op: isa.IConst, Dst: aBase, IImm: lay.Base("a")})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: bBase, IImm: lay.Base("b")})
	b.Emit(isa.Instr{Op: isa.IConst, Dst: cBase, IImm: lay.Base("c")})

	// Operand windows: two loads cover a (padded), three cover b (padded).
	a0, a4 := b.VReg(), b.VReg()
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: a0, A: aBase, IImm: 0}) // a0..a3
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: a4, A: aBase, IImm: 4}) // a4..a7
	b0, b4, b8 := b.VReg(), b.VReg(), b.VReg()
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: b0, A: bBase, IImm: 0}) // b0..b3
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: b4, A: bBase, IImm: 4}) // b4..b7
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: b8, A: bBase, IImm: 8}) // b8..b11

	// chunk0 = (c00 c01 c02 c10); the reduction order differs per lane so
	// every operand vector is a single select or shuffle.
	av := b.VReg()
	bv := b.VReg()
	acc0 := b.VReg()
	// (a0 a0 a0 a4) × (b0 b1 b2 b3): the b operand is the raw load.
	b.Emit(isa.Instr{Op: isa.VSel, Dst: av, A: a0, B: a4, Idx: []int{0, 0, 0, 4}})
	b.Emit(isa.Instr{Op: isa.VMul, Dst: acc0, A: av, B: b0})
	// += (a1 a1 a1 a3) × (b3 b4 b5 b0).
	b.Emit(isa.Instr{Op: isa.VShfl, Dst: av, A: a0, Idx: []int{1, 1, 1, 3}})
	b.Emit(isa.Instr{Op: isa.VSel, Dst: bv, A: b0, B: b4, Idx: []int{3, 4, 5, 0}})
	b.Emit(isa.Instr{Op: isa.VMac, Dst: acc0, A: av, B: bv})
	// += (a2 a2 a2 a5) × (b6 b7 b8 b6).
	b.Emit(isa.Instr{Op: isa.VSel, Dst: av, A: a0, B: a4, Idx: []int{2, 2, 2, 5}})
	b.Emit(isa.Instr{Op: isa.VSel, Dst: bv, A: b4, B: b8, Idx: []int{2, 3, 4, 2}})
	b.Emit(isa.Instr{Op: isa.VMac, Dst: acc0, A: av, B: bv})
	b.Emit(isa.Instr{Op: isa.VStore, A: cBase, IImm: 0, B: acc0})

	// chunk1 = (c11 c12 · ·): only two lanes are stored (don't-care rest).
	acc1 := b.VReg()
	av2 := b.VReg()
	bv2 := b.VReg()
	// (a4 a3 · ·) × (b4 b2 · ·).
	b.Emit(isa.Instr{Op: isa.VSel, Dst: av, A: a0, B: a4, Idx: []int{4, 3, 0, 0}})
	b.Emit(isa.Instr{Op: isa.VSel, Dst: bv, A: b0, B: b4, Idx: []int{4, 2, 0, 0}})
	b.Emit(isa.Instr{Op: isa.VMul, Dst: acc1, A: av, B: bv})
	// += (a3 a4 · ·) × (b1 b5 · ·): the a operand is one unaligned load.
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: av2, A: aBase, IImm: 3})
	b.Emit(isa.Instr{Op: isa.VSel, Dst: bv, A: b0, B: b4, Idx: []int{1, 5, 0, 0}})
	b.Emit(isa.Instr{Op: isa.VMac, Dst: acc1, A: av2, B: bv})
	// += (a5 a5 · ·) × (b7 b8 · ·): broadcast a5 from its window, load b7.
	b.Emit(isa.Instr{Op: isa.VShfl, Dst: av, A: a4, Idx: []int{1, 1, 1, 1}})
	b.Emit(isa.Instr{Op: isa.VLoad, Dst: bv2, A: bBase, IImm: 7})
	b.Emit(isa.Instr{Op: isa.VMac, Dst: acc1, A: av, B: bv2})
	b.Emit(isa.Instr{Op: isa.VStoreN, A: cBase, IImm: 4, B: acc1, IImm2: 2})

	return b.MustBuild()
}

// Run executes the expert kernel.
func Run(a, bm []float64) ([]float64, *sim.Result, error) {
	p := MatMul2x3x3()
	mem := make([]float64, p.Layout.Size())
	copy(mem[p.Layout.Base("a"):], a)
	copy(mem[p.Layout.Base("b"):], bm)
	res, err := sim.Run(p, mem, sim.Defaults())
	if err != nil {
		return nil, nil, err
	}
	cb := p.Layout.Base("c")
	return append([]float64(nil), res.Mem[cb:cb+6]...), res, nil
}
