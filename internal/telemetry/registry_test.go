package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesRender(t *testing.T) {
	r := NewRegistry()
	r.CounterAdd("serve_requests_total", "Requests.", map[string]string{"code": "200"}, 1)
	r.CounterAdd("serve_requests_total", "Requests.", map[string]string{"code": "200"}, 1)
	r.CounterAdd("serve_requests_total", "Requests.", map[string]string{"code": "400"}, 1)
	r.CounterAdd("serve_requests_total", "Requests.", nil, -5) // negative deltas dropped
	r.GaugeSet("queue_depth", "Queue.", nil, 3)
	r.GaugeAdd("in_flight", "In flight.", nil, 2)
	r.GaugeAdd("in_flight", "In flight.", nil, -1)
	r.GaugeMax("nodes_max", "HWM.", nil, 10)
	r.GaugeMax("nodes_max", "HWM.", nil, 7) // lower value must not regress the mark

	out := r.PrometheusText()
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		`serve_requests_total{code="200"} 2`,
		`serve_requests_total{code="400"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"in_flight 1",
		"nodes_max 10",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "-5") {
		t.Errorf("negative counter delta leaked into:\n%s", out)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	buckets := []float64{0.1, 1, 10}
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		r.Observe("stage_seconds", "Latency.", map[string]string{"stage": "saturate"}, buckets, v)
	}
	out := r.PrometheusText()
	for _, want := range []string{
		"# HELP stage_seconds Latency.",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{le="0.1",stage="saturate"} 1`,
		`stage_seconds_bucket{le="1",stage="saturate"} 3`,
		`stage_seconds_bucket{le="10",stage="saturate"} 4`,
		`stage_seconds_bucket{le="+Inf",stage="saturate"} 5`,
		`stage_seconds_sum{stage="saturate"} 56.05`,
		`stage_seconds_count{stage="saturate"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The base family name must not appear as a bare sample.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "stage_seconds ") || strings.HasPrefix(line, "stage_seconds{") {
			t.Errorf("bare histogram sample line %q", line)
		}
	}
}

func TestRegistryObserveTrace(t *testing.T) {
	r := NewRegistry()
	tr := &Trace{
		Stages: []Span{
			{Name: "saturate", Duration: 20 * time.Millisecond},
			{Name: "extract", Duration: 2 * time.Millisecond},
		},
		Iterations: []IterationGauge{{Iteration: 1, Nodes: 500, Classes: 200}},
		StopReason: "saturated",
		Duration:   25 * time.Millisecond,
	}
	r.ObserveTrace(tr)
	r.ObserveTrace(tr)
	r.ObserveTrace(nil) // no-op

	out := r.PrometheusText()
	for _, want := range []string{
		`diospyros_compile_duration_seconds_count 2`,
		`diospyros_stage_duration_seconds_count{stage="saturate"} 2`,
		`diospyros_saturation_nodes_max 500`,
		`diospyros_saturation_classes_max 200`,
		`diospyros_saturation_stop_total{reason="saturated"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.CounterAdd("a", "", nil, 1)
	r.GaugeSet("b", "", nil, 1)
	r.GaugeAdd("b", "", nil, 1)
	r.GaugeMax("b", "", nil, 1)
	r.Observe("c", "", nil, nil, 1)
	r.ObserveTrace(&Trace{})
	if got := r.PrometheusText(); got != "" {
		t.Errorf("nil registry rendered %q", got)
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.CounterAdd("hits_total", "Hits.", nil, 1)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1\n") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// TestRegistryConcurrent hammers every mutator from many goroutines while
// scraping — run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.CounterAdd("ops_total", "Ops.", nil, 1)
				r.GaugeAdd("depth", "Depth.", nil, 1)
				r.Observe("lat", "Lat.", nil, nil, 0.01)
				r.GaugeAdd("depth", "Depth.", nil, -1)
				_ = r.PrometheusText()
			}
		}()
	}
	wg.Wait()
	out := r.PrometheusText()
	if !strings.Contains(out, "ops_total 4000\n") || !strings.Contains(out, "depth 0\n") {
		t.Errorf("final state wrong:\n%s", out)
	}
}

// TestSanitizeNames is the shared name-hygiene table: hostile rule/kernel
// names that may reach metric- or label-name position in either exporter.
func TestSanitizeNames(t *testing.T) {
	cases := []struct {
		in, metric, label string
	}{
		{"vec-mac", "vec_mac", "vec_mac"},
		{"2dconv 3x3", "_2dconv_3x3", "_2dconv_3x3"},
		{"saturate.applied", "saturate_applied", "saturate_applied"},
		{"ns:metric", "ns:metric", "ns_metric"},
		{`odd"name` + "\nx", "odd_name_x", "odd_name_x"},
		{"µkernel", "__kernel", "__kernel"}, // µ is 2 UTF-8 bytes
		{"", "_", "_"},
		{"ok_name", "ok_name", "ok_name"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.metric {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.metric)
		}
		if got := SanitizeLabelName(c.in); got != c.label {
			t.Errorf("SanitizeLabelName(%q) = %q, want %q", c.in, got, c.label)
		}
	}
}

// TestHostileNamesBothExporters pushes the same hostile names through the
// live registry (name position) and the file exporter (label position) and
// asserts both outputs stay parseable under the exposition grammar.
func TestHostileNamesBothExporters(t *testing.T) {
	hostile := []string{"vec mac{evil=\"1\"}", "2x2 MatMul", "rule\nnewline", "µ"}

	reg := NewRegistry()
	for _, h := range hostile {
		reg.CounterAdd(h, "Hostile.", map[string]string{h: h}, 1)
	}
	tr := &Trace{Counters: map[string]int64{}}
	for _, h := range hostile {
		tr.Counters[h] = 1
	}
	for name, out := range map[string]string{
		"registry": reg.PrometheusText(),
		"file":     tr.PrometheusText(hostile[0]),
	} {
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndex(line, " ")
			if sp < 0 {
				t.Errorf("%s: malformed line %q", name, line)
				continue
			}
			series := line[:sp]
			nameEnd := strings.IndexByte(series, '{')
			if nameEnd < 0 {
				nameEnd = len(series)
			}
			for i := 0; i < nameEnd; i++ {
				c := series[i]
				ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') ||
					(c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
				if !ok {
					t.Errorf("%s: invalid metric name in %q", name, line)
					break
				}
			}
			if nameEnd < len(series) && !strings.HasSuffix(series, "}") {
				t.Errorf("%s: unterminated label set in %q", name, line)
			}
		}
	}
}
