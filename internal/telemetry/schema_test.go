package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestTraceJSONSchemaGolden pins the Trace JSON schema — every field path
// and its JSON type — against testdata/trace_schema.golden. The exporters
// and downstream tooling (diosbench -json consumers, the CI artifacts)
// parse this shape; renaming or retyping a field must show up as a
// deliberate golden update, not a silent break.
//
// Regenerate with: UPDATE_GOLDEN=1 go test ./internal/telemetry -run Schema
func TestTraceJSONSchemaGolden(t *testing.T) {
	raw, err := sampleTrace().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	paths := map[string]string{}
	walkSchema("$", v, paths)
	keys := make([]string, 0, len(paths))
	for k := range paths {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, paths[k])
	}
	got := b.String()

	golden := filepath.Join("testdata", "trace_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Errorf("Trace JSON schema changed (update %s deliberately if intended):\n got:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// walkSchema records the JSON type at every field path. Array elements
// share the path "[]"; map-valued objects whose keys are data (per-rule
// counts, counters) are collapsed to "{}" so the schema pins the value
// type, not the data.
func walkSchema(path string, v any, out map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		out[path] = "object"
		// Heuristic: dynamic-key maps in the schema are those whose keys
		// are data values (counter and rule names contain '.', '-', or
		// spaces — never plain identifiers of the struct fields).
		for k, child := range x {
			key := k
			if strings.ContainsAny(k, ".- ") {
				key = "{}"
			}
			walkSchema(path+"."+key, child, out)
		}
	case []any:
		out[path] = "array"
		for _, child := range x {
			walkSchema(path+".[]", child, out)
		}
	case string:
		out[path] = "string"
	case float64:
		out[path] = "number"
	case bool:
		out[path] = "bool"
	case nil:
		out[path] = "null"
	}
}
