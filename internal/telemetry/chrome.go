package telemetry

import (
	"encoding/json"
	"fmt"
	"time"
)

// NamedTrace pairs a trace with the name it is exported under (a kernel ID
// for benchmark runs, or the compile's kernel name for a single compile).
//
// RequestID and Epoch describe server-request traces: a trace carrying a
// RequestID is exported into the shared server process with its own thread
// lane per request (request ID → tid), and Epoch shifts its timestamps to
// the request's start relative to the export's common time base, so
// overlapping compiles from concurrent requests render as overlapping —
// not interleaved — lanes.
type NamedTrace struct {
	Name      string
	RequestID string
	Epoch     time.Duration
	Trace     *Trace
}

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (the JSON loadable in chrome://tracing and Perfetto). Timestamps
// and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of a trace-event file.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	tidStages     = 1
	tidIterations = 2
)

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ChromeTrace renders one trace as a Chrome trace-event JSON file; the
// single process is named after the trace. See ChromeTraces for the
// multi-kernel form.
func (t *Trace) ChromeTrace(name string) ([]byte, error) {
	return ChromeTraces([]NamedTrace{{Name: name, Trace: t}})
}

// ChromeTraces renders traces as one Chrome trace-event JSON file — the
// -trace-out artifact. Each plain trace becomes one "process" (named after
// the kernel) with a stage timeline thread and, when the trace carries
// saturation gauges, an iteration thread; counters attach to a final
// instant event. Traces carrying a RequestID instead share a single
// "diosserve" process and each get their own thread pair (request ID →
// tid), with timestamps shifted by their Epoch, so concurrent requests
// render as parallel lanes on a common timeline rather than interleaving
// into one. The output is the JSON-object form with a traceEvents array,
// which both chrome://tracing and Perfetto accept.
func ChromeTraces(traces []NamedTrace) ([]byte, error) {
	const serverPid = 1
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	serverNamed := false
	for i, nt := range traces {
		t := nt.Trace
		if t == nil {
			continue
		}
		pid := i + 1
		tidStage, tidIter := tidStages, tidIterations
		stageLane, iterLane := "stages", "saturation iterations"
		base := nt.Epoch
		name := nt.Name
		if name == "" {
			name = fmt.Sprintf("compile %d", pid)
		}
		if nt.RequestID != "" {
			// Server-request trace: shared process, two tids per request.
			pid = serverPid
			tidStage, tidIter = 2*i+1, 2*i+2
			label := nt.RequestID + " " + name
			stageLane = label + " stages"
			iterLane = label + " iterations"
			if !serverNamed {
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
					Args: map[string]any{"name": "diosserve"}})
				serverNamed = true
			}
		} else {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": name}})
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tidStage,
			Args: map[string]any{"name": stageLane}})
		for _, s := range t.Stages {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: s.Name, Ph: "X", Cat: "stage", Pid: pid, Tid: tidStage,
				Ts: micros(base + s.Start), Dur: micros(s.Duration),
				Args: map[string]any{"alloc_bytes": s.AllocBytes},
			})
		}
		if len(t.Iterations) > 0 {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tidIter,
				Args: map[string]any{"name": iterLane},
			})
			// Iteration gauges record durations only; lay them out
			// back-to-back from the saturate stage's start.
			at := base
			if s, ok := t.Stage("saturate"); ok {
				at += s.Start
			}
			for _, g := range t.Iterations {
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: fmt.Sprintf("iteration %d", g.Iteration),
					Ph:   "X", Cat: "saturation", Pid: pid, Tid: tidIter,
					Ts: micros(at), Dur: micros(g.Duration),
					Args: map[string]any{
						"nodes":   g.Nodes,
						"classes": g.Classes,
						"matches": g.Matches,
						"applied": g.Applied,
					},
				})
				at += g.Duration
			}
		}
		if len(t.Counters) > 0 || t.StopReason != "" {
			args := map[string]any{}
			for k, v := range t.Counters {
				args[k] = v
			}
			if t.StopReason != "" {
				args["stop_reason"] = t.StopReason
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "counters", Ph: "i", S: "p", Pid: pid, Tid: tidStage,
				Ts: micros(base + t.Duration), Args: args,
			})
		}
	}
	return json.MarshalIndent(f, "", " ")
}
