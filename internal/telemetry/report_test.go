package telemetry

import (
	"strings"
	"testing"
	"time"
)

func reportTrace() *Trace {
	return &Trace{
		Stages: []Span{
			{Name: "saturate", Duration: 80 * time.Millisecond, AllocBytes: 4 << 20},
			{Name: "extract", Duration: 20 * time.Millisecond, AllocBytes: 1 << 20},
		},
		Iterations: []IterationGauge{
			{Iteration: 1, Nodes: 100, Classes: 60},
			{Iteration: 2, Nodes: 400, Classes: 150},
			{Iteration: 3, Nodes: 900, Classes: 300},
		},
		StopReason: "saturated",
		Duration:   110 * time.Millisecond,
		Search: &SearchTrace{
			Rules: []RuleAttribution{
				{Rule: "vec-mac", Matches: 40, Applied: 30, NewNodes: 500, Duration: time.Millisecond},
				{Rule: "assoc-add-l", Matches: 900, Applied: 10, NewNodes: 20, Bans: 1},
			},
			Bans: []BanSpan{
				{Rule: "assoc-add-l", Iteration: 2, Until: 4, Matches: 900, Bans: 1},
			},
			BestCost: []CostPoint{
				{Iteration: 1, Cost: 300}, {Iteration: 2, Cost: 120}, {Iteration: 3, Cost: 96.5},
			},
			Events: 42,
		},
		Extraction: &ExtractionTrace{
			TotalCost: 96.5, Classes: 12, Contested: 3,
			Decisions: []ExtractionDecision{
				{Class: 7, Winner: "(VecMAC /3)", WinnerCost: 13, WinnerOwn: 1,
					RunnerUp: "(VecAdd /2)", RunnerUpCost: 15.5, Margin: 2.5, Candidates: 3},
				{Class: 9, Winner: "(Vec /4)", WinnerCost: 4, WinnerOwn: 4, Candidates: 1},
			},
			Contiguous: 4, Shuffles: 2, Gathers: 1,
		},
	}
}

func TestRenderReport(t *testing.T) {
	var b strings.Builder
	err := RenderReport(&b, ReportData{
		Title:    "conv3x5",
		Subtitle: "testdata/conv3x5.dios",
		Trace:    reportTrace(),
		Cycle: &CycleProfile{
			Total: 100, OperandStall: 10, MemoryStall: 5, BranchBubble: 2,
			Rows: []CycleRow{
				{Name: "VMAC", Count: 10, Cycles: 60, Stall: 8},
				{Name: "VLD", Count: 6, Cycles: 39, Stall: 7},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{
		"conv3x5",
		"Saturation trajectory",
		"Best-cost trajectory",
		"Rule attribution",
		"vec-mac",
		"Backoff ban timeline",
		"assoc-add-l",          // the banned rule is named
		"Extraction decisions", // decision section present
		"(VecMAC /3)",          // winner
		"(VecAdd /2)",          // runner-up with cost breakdown
		"Simulator cycle waterfall",
		"VMAC",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// No un-rendered template actions may survive.
	if strings.Contains(html, "{{") {
		t.Error("report contains unexecuted template actions")
	}
	// The ban row carries timeline geometry.
	if !strings.Contains(html, `class="banlane"`) {
		t.Error("report missing ban timeline lane")
	}
}

// A minimal trace (no journal, no extraction, no sim) must still render:
// reports for failed or scalar compiles degrade to the stage table.
func TestRenderReportMinimal(t *testing.T) {
	var b strings.Builder
	err := RenderReport(&b, ReportData{Trace: &Trace{
		Stages:   []Span{{Name: "lift", Duration: time.Millisecond}},
		Duration: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	html := b.String()
	if strings.Contains(html, "Rule attribution") || strings.Contains(html, "cycle waterfall") {
		t.Error("sections without data should be omitted")
	}
	if !strings.Contains(html, "</html>") {
		t.Error("incomplete document")
	}
}

func TestRenderReportNeedsTrace(t *testing.T) {
	if err := RenderReport(&strings.Builder{}, ReportData{}); err == nil {
		t.Fatal("want error for nil trace")
	}
}

// HTML in rule names and kernel titles must be escaped, not interpreted.
func TestRenderReportEscapes(t *testing.T) {
	tr := reportTrace()
	tr.Search.Rules[0].Rule = `<script>alert(1)</script>`
	var b strings.Builder
	if err := RenderReport(&b, ReportData{Title: `<b>x</b>`, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	if strings.Contains(html, "<script>alert") || strings.Contains(html, "<b>x</b>") {
		t.Error("report failed to escape user-controlled strings")
	}
}

func TestCycleWaterfallGeometry(t *testing.T) {
	v := buildCycleView(&CycleProfile{
		Total: 200,
		Rows: []CycleRow{
			{Name: "a", Cycles: 100, Stall: 20},
			{Name: "b", Cycles: 60, Stall: 0},
			{Name: "c", Cycles: 39, Stall: 39},
		},
	})
	if len(v.Rows) != 3 {
		t.Fatalf("rows = %d", len(v.Rows))
	}
	// Bars tile left to right: each row starts where the previous ended.
	left := 0.0
	for _, r := range v.Rows {
		if r.LeftPct != left {
			t.Errorf("%s: left %.2f, want %.2f", r.Name, r.LeftPct, left)
		}
		left += r.BusyPct + r.StallPct
	}
	if left > 100.001 {
		t.Errorf("waterfall overflows the lane: %.2f%%", left)
	}
}

func TestCompactNum(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {12, "12"}, {999, "999"}, {12500, "12.5k"}, {3_400_000, "3.4M"},
	} {
		if got := compactNum(tc.in); got != tc.want {
			t.Errorf("compactNum(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
