package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Step kinds of an Explanation, from rule-name classification. Vectorization
// and shuffle steps are the ones the paper's §3 narrative hinges on: they
// justify why the extracted program is vector code and how its lanes move.
const (
	KindVectorization = "vectorization" // vec-lanewise, vec-mac
	KindChunking      = "chunking"      // list-chunk (List → Concat of Vecs)
	KindShuffle       = "shuffle"       // data movement synthesized by lowering
	KindConstFold     = "constant-folding"
	KindReassociation = "reassociation" // assoc-*/comm-* (EnableAC)
	KindSimplify      = "simplification"
)

// ClassifyRule maps a rewrite-rule (or lowering-step) name to its
// explanation kind. Unknown names — including user-supplied ExtraRules —
// classify as simplification.
func ClassifyRule(rule string) string {
	switch rule {
	case "vec-lanewise", "vec-mac":
		return KindVectorization
	case "list-chunk":
		return KindChunking
	case "const-fold":
		return KindConstFold
	case "lower-shuffle", "lower-select":
		return KindShuffle
	}
	if strings.HasPrefix(rule, "assoc-") || strings.HasPrefix(rule, "comm-") {
		return KindReassociation
	}
	return KindSimplify
}

// ExplanationStep is one rule in the provenance chain of an extracted
// program: a rewrite that created e-nodes the extractor chose, or a
// data-movement operation the lowering synthesized for the chosen term.
type ExplanationStep struct {
	Rule string `json:"rule"`
	Kind string `json:"kind"`
	// Iteration is the 1-based saturation iteration that first applied the
	// rule on the chosen term; 0 marks post-saturation lowering steps.
	Iteration int `json:"iteration,omitempty"`
	// Nodes counts the extracted e-nodes (or emitted IR instructions, for
	// lowering steps) this rule justifies.
	Nodes int `json:"nodes"`
	// Example renders one justified e-node (or instruction) for the report.
	Example string `json:"example,omitempty"`
}

// Explanation is the provenance report of one compilation: the ordered list
// of rules that justify the vectorized output (paper's non-destructive
// rewrite introspection). Steps are ordered by iteration, then rule name;
// lowering steps (iteration 0) come last.
type Explanation struct {
	Steps []ExplanationStep `json:"steps"`
	// InputNodes counts extracted e-nodes with no recorded provenance: they
	// come from the lifted specification itself.
	InputNodes int `json:"input_nodes"`
	// RewrittenNodes counts extracted e-nodes justified by some rewrite.
	RewrittenNodes int `json:"rewritten_nodes"`
}

// Sort orders the steps canonically: saturation steps by (iteration, rule),
// then lowering steps (iteration 0) by rule.
func (e *Explanation) Sort() {
	sort.SliceStable(e.Steps, func(i, j int) bool {
		a, b := e.Steps[i], e.Steps[j]
		ai, bi := a.Iteration, b.Iteration
		// Lowering steps (iteration 0) sort after every saturation step.
		if ai == 0 {
			ai = 1 << 30
		}
		if bi == 0 {
			bi = 1 << 30
		}
		if ai != bi {
			return ai < bi
		}
		return a.Rule < b.Rule
	})
}

// HasKind reports whether some step has the given kind.
func (e *Explanation) HasKind(kind string) bool {
	for _, s := range e.Steps {
		if s.Kind == kind {
			return true
		}
	}
	return false
}

// Rules returns the step rule names in order.
func (e *Explanation) Rules() []string {
	out := make([]string, len(e.Steps))
	for i, s := range e.Steps {
		out[i] = s.Rule
	}
	return out
}

// Format renders the human-readable provenance chain printed by -explain.
func (e *Explanation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "provenance: %d extracted e-nodes justified by rewrites, %d from the input program\n",
		e.RewrittenNodes, e.InputNodes)
	ruleW := len("rule")
	for _, s := range e.Steps {
		if len(s.Rule) > ruleW {
			ruleW = len(s.Rule)
		}
	}
	fmt.Fprintf(&b, "%4s  %-*s %-18s %6s  %s\n", "iter", ruleW, "rule", "kind", "nodes", "example")
	for _, s := range e.Steps {
		iter := fmt.Sprintf("%d", s.Iteration)
		if s.Iteration == 0 {
			iter = "-" // post-saturation lowering
		}
		fmt.Fprintf(&b, "%4s  %-*s %-18s %6d  %s\n", iter, ruleW, s.Rule, s.Kind, s.Nodes, s.Example)
	}
	return b.String()
}
