package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleTrace builds a deterministic, fully-populated trace exercising
// every exporter field.
func sampleTrace() *Trace {
	return &Trace{
		Stages: []Span{
			{Name: "lift", Start: 0, Duration: 2 * time.Millisecond, AllocBytes: 1 << 20},
			{Name: "saturate", Start: 2 * time.Millisecond, Duration: 10 * time.Millisecond, AllocBytes: 8 << 20},
			{Name: "extract", Start: 12 * time.Millisecond, Duration: time.Millisecond, AllocBytes: 1 << 10},
		},
		Iterations: []IterationGauge{
			{Iteration: 1, Nodes: 100, Classes: 40, Matches: 12, Applied: 9,
				PerRuleMatches: map[string]int{"vec-mac": 12},
				PerRuleApplied: map[string]int{"vec-mac": 9},
				Duration:       4 * time.Millisecond, Bytes: 48 << 10},
			{Iteration: 2, Nodes: 180, Classes: 66, Matches: 3, Applied: 1,
				Duration: 6 * time.Millisecond, Bytes: 80 << 10},
		},
		Memory: &MemoryTrace{
			PeakBytes:     80 << 10,
			PeakIteration: 2,
			Components: []MemoryComponent{
				{Name: "e-nodes", Entries: 180, Bytes: 40 << 10},
				{Name: "hashcons", Entries: 180, Bytes: 24 << 10},
				{Name: "union-find", Entries: 200, Bytes: 16 << 10},
			},
			StageAllocs:   []StageAlloc{{Stage: "saturate", AllocBytes: 8 << 20}},
			HeapPeakBytes: 24 << 20,
			HeapSamples:   3,
			GCCycles:      2,
			GCPauseTotal:  120 * time.Microsecond,
		},
		Counters:   map[string]int64{"saturate.applied": 10, "vir.instrs": 7},
		StopReason: "saturated",
		Explanation: &Explanation{
			Steps: []ExplanationStep{
				{Rule: "vec-mac", Kind: KindVectorization, Iteration: 1, Nodes: 3, Example: "(VecMAC c1 c2 c3)"},
				{Rule: "lower-shuffle", Kind: KindShuffle, Nodes: 2, Example: "%1 = shuffle %0, [0 0 3 3]"},
			},
			InputNodes:     8,
			RewrittenNodes: 5,
		},
		Duration:   14 * time.Millisecond,
		AllocBytes: 10 << 20,
	}
}

// TestChromeTraceStructure validates the -trace-out artifact structurally:
// the JSON-object form with a traceEvents array of well-formed events —
// what Perfetto and chrome://tracing require to load the file.
func TestChromeTraceStructure(t *testing.T) {
	raw, err := sampleTrace().ChromeTrace("matmul2")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var completes, metas, instants int
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		names[name] = true
		if name == "" {
			t.Errorf("event without name: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event without pid: %v", ev)
		}
		switch ph {
		case "X":
			completes++
			ts, tsOK := ev["ts"].(float64)
			dur, durOK := ev["dur"].(float64)
			if !tsOK || !durOK || ts < 0 || dur <= 0 {
				t.Errorf("complete event with bad ts/dur: %v", ev)
			}
		case "M":
			metas++
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["name"].(string); !ok {
				t.Errorf("metadata event without args.name: %v", ev)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	// 3 stages + 2 iterations complete events; process+2 thread names;
	// one counters instant.
	if completes != 5 || metas != 3 || instants != 1 {
		t.Errorf("events = %d X, %d M, %d i; want 5, 3, 1", completes, metas, instants)
	}
	for _, want := range []string{"lift", "saturate", "extract", "iteration 1", "iteration 2", "counters"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

func TestChromeTracesMultiKernelPids(t *testing.T) {
	raw, err := ChromeTraces([]NamedTrace{
		{Name: "a", Trace: sampleTrace()},
		{Name: "b", Trace: sampleTrace()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, ev := range f.TraceEvents {
		pids[ev["pid"].(float64)] = true
	}
	if !pids[1] || !pids[2] || len(pids) != 2 {
		t.Errorf("pids = %v, want {1, 2}", pids)
	}
}

// TestChromeTracesRequestLanes checks the server-request form: traces
// carrying a RequestID share one "diosserve" process, each on its own
// thread pair, with timestamps shifted by the request's epoch — the shape
// that keeps concurrent compiles from interleaving into one lane.
func TestChromeTracesRequestLanes(t *testing.T) {
	raw, err := ChromeTraces([]NamedTrace{
		{Name: "a", RequestID: "r00000001", Trace: sampleTrace()},
		{Name: "b", RequestID: "r00000002", Epoch: 5 * time.Millisecond, Trace: sampleTrace()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	stageTids := map[string]float64{} // request label -> stages tid
	liftTs := map[float64]float64{}   // tid -> lift stage start
	processes := 0
	for _, ev := range f.TraceEvents {
		pids[ev["pid"].(float64)] = true
		name := ev["name"].(string)
		switch {
		case name == "process_name":
			processes++
			if got := ev["args"].(map[string]any)["name"]; got != "diosserve" {
				t.Errorf("process name = %v, want diosserve", got)
			}
		case name == "thread_name":
			if lane := ev["args"].(map[string]any)["name"].(string); strings.HasSuffix(lane, " stages") {
				stageTids[strings.TrimSuffix(lane, " stages")] = ev["tid"].(float64)
			}
		case name == "lift":
			liftTs[ev["tid"].(float64)] = ev["ts"].(float64)
		}
	}
	if len(pids) != 1 || !pids[1] {
		t.Errorf("request traces spread over pids %v, want shared pid 1", pids)
	}
	if processes != 1 {
		t.Errorf("process_name emitted %d times, want once", processes)
	}
	ta, tb := stageTids["r00000001 a"], stageTids["r00000002 b"]
	if ta == 0 || tb == 0 || ta == tb {
		t.Fatalf("stage lanes not distinct per request: %v", stageTids)
	}
	// Request b started 5 ms after the common epoch: its lift stage lands
	// at 5000 µs while a's sits at 0.
	if liftTs[ta] != 0 || liftTs[tb] != 5000 {
		t.Errorf("lift starts = %v/%v µs, want 0/5000", liftTs[ta], liftTs[tb])
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	out := PrometheusTexts([]NamedTrace{
		{Name: "k1", Trace: sampleTrace()},
		{Name: "k2", Trace: sampleTrace()},
	})
	// Each family's HELP/TYPE header appears exactly once even with two
	// kernels, and every sample carries its kernel label.
	for _, fam := range []string{
		"diospyros_compile_duration_seconds",
		"diospyros_stage_duration_seconds",
		"diospyros_saturation_nodes",
		"diospyros_counter",
	} {
		if n := strings.Count(out, "# HELP "+fam+" "); n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", fam, n)
		}
		if n := strings.Count(out, "# TYPE "+fam+" gauge"); n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", fam, n)
		}
	}
	for _, want := range []string{
		`diospyros_compile_duration_seconds{kernel="k1"} 0.014`,
		`diospyros_stage_duration_seconds{kernel="k2",stage="saturate"} 0.01`,
		`diospyros_saturation_iterations{kernel="k1"} 2`,
		`diospyros_counter{kernel="k1",name="vir.instrs"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing sample %q in:\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "diospyros_") || !strings.Contains(line, " ") {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	tr := &Trace{Counters: map[string]int64{`odd"name\with` + "\nstuff": 1}}
	out := tr.PrometheusText("k")
	want := `diospyros_counter{kernel="k",name="odd\"name\\with\nstuff"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped sample %q missing in:\n%s", want, out)
	}
}

func TestExplanationClassifyRule(t *testing.T) {
	cases := map[string]string{
		"vec-lanewise":  KindVectorization,
		"vec-mac":       KindVectorization,
		"list-chunk":    KindChunking,
		"const-fold":    KindConstFold,
		"lower-shuffle": KindShuffle,
		"lower-select":  KindShuffle,
		"assoc-add":     KindReassociation,
		"comm-mul":      KindReassociation,
		"add-0-r":       KindSimplify,
		"user-rule":     KindSimplify,
	}
	for rule, want := range cases {
		if got := ClassifyRule(rule); got != want {
			t.Errorf("ClassifyRule(%q) = %q, want %q", rule, got, want)
		}
	}
}

func TestExplanationSortAndFormat(t *testing.T) {
	e := &Explanation{Steps: []ExplanationStep{
		{Rule: "lower-shuffle", Kind: KindShuffle, Iteration: 0, Nodes: 2},
		{Rule: "vec-mac", Kind: KindVectorization, Iteration: 2, Nodes: 1},
		{Rule: "list-chunk", Kind: KindChunking, Iteration: 1, Nodes: 4},
	}, InputNodes: 3, RewrittenNodes: 5}
	e.Sort()
	if got := e.Rules(); got[0] != "list-chunk" || got[1] != "vec-mac" || got[2] != "lower-shuffle" {
		t.Fatalf("sorted rules = %v; want saturation order then lowering last", got)
	}
	if !e.HasKind(KindShuffle) || e.HasKind(KindConstFold) {
		t.Error("HasKind misreports")
	}
	out := e.Format()
	if !strings.Contains(out, "5 extracted e-nodes justified by rewrites, 3 from the input program") {
		t.Errorf("missing summary header:\n%s", out)
	}
	if !strings.Contains(out, "\n   -  lower-shuffle") {
		t.Errorf("lowering step should render iteration as '-':\n%s", out)
	}
}

// TestRecorderCountConcurrent exercises the documented concurrency
// contract: Count may be called from many goroutines (run under -race in
// CI).
func TestRecorderCountConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Count("shared", 1)
			}
		}()
	}
	wg.Wait()
	if got := rec.Finish().Counter("shared"); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestRecorderConcurrentSpans exercises the full concurrency contract:
// spans, counters, and setters racing from many goroutines (run under
// -race in CI). Servers share one recorder across request handlers, so
// every method must be safe, not just Count.
func TestRecorderConcurrentSpans(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	const workers, spans = 8, 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sp := rec.StartSpan("stage")
				rec.Count("spans", 1)
				sp.End()
			}
			if w == 0 {
				rec.SetStopReason("saturated")
				rec.SetIterations([]IterationGauge{{Iteration: 1}})
			}
		}()
	}
	wg.Wait()
	tr := rec.Finish()
	if len(tr.Stages) != workers*spans {
		t.Fatalf("recorded %d spans, want %d", len(tr.Stages), workers*spans)
	}
	if tr.Counter("spans") != workers*spans || tr.StopReason != "saturated" {
		t.Fatalf("counters/stop reason lost: %d %q", tr.Counter("spans"), tr.StopReason)
	}
}

func TestTraceFormatTotalShareAndLongNames(t *testing.T) {
	tr := &Trace{
		Stages: []Span{
			{Name: "a-stage-with-a-very-long-name", Duration: 30 * time.Millisecond, AllocBytes: 1e6},
			{Name: "short", Duration: 10 * time.Millisecond, AllocBytes: 1e6},
		},
		Counters: map[string]int64{
			"a": 1,
			"a-counter-name-longer-than-24-characters": 2,
		},
		Duration:   40 * time.Millisecond,
		AllocBytes: 2e6,
	}
	out := tr.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// The total row carries the share column (100.0%), aligned with the
	// stage rows despite the long stage name.
	var totalLine, longStageLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "total") {
			totalLine = l
		}
		if strings.HasPrefix(l, "a-stage-with-a-very-long-name") {
			longStageLine = l
		}
	}
	if !strings.HasSuffix(totalLine, "100.0%") {
		t.Errorf("total row lacks share column: %q", totalLine)
	}
	if strings.Index(totalLine, "100.0%")+len("100.0%") != len(totalLine) ||
		len(totalLine) != len(longStageLine) {
		t.Errorf("total row misaligned with stage rows:\n%q\n%q", longStageLine, totalLine)
	}

	// Counter values align in one column even when a name exceeds the old
	// 24-char pad.
	var counterCols []int
	for _, l := range lines {
		if strings.HasPrefix(l, "counter ") {
			counterCols = append(counterCols, strings.LastIndex(l, " "))
		}
	}
	if len(counterCols) != 2 || counterCols[0] != counterCols[1] {
		t.Errorf("counter columns misaligned (%v):\n%s", counterCols, out)
	}
}
