package telemetry

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// The memory axis of the telemetry spine. MemoryTrace is the per-compile
// memory record attached to Trace.Memory: the e-graph's peak logical
// footprint (per-component breakdown, computed by the egraph package's
// incremental accounting and converted by the root package), per-stage heap
// allocation deltas (unified with the per-span TotalAlloc probe), and
// whole-process heap/GC samples from a runtime/metrics-based HeapSampler.
// MemProfiler additionally captures a pprof heap profile at the e-graph's
// node-count peak (the -mem-profile CLI flag).

// MemoryComponent is one named component of the e-graph footprint breakdown
// (e-nodes, hashcons, union-find, classes, parents, provenance, journal).
type MemoryComponent struct {
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// StageAlloc is one pipeline stage's heap-allocation delta (cumulative
// runtime.MemStats.TotalAlloc over the stage, same probe as Span.AllocBytes).
type StageAlloc struct {
	Stage      string `json:"stage"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// MemoryTrace is the memory record of one compilation.
type MemoryTrace struct {
	// PeakBytes is the e-graph's peak logical footprint over the run, and
	// PeakIteration the 1-based saturation iteration where it occurred.
	PeakBytes     int64 `json:"peak_bytes"`
	PeakIteration int   `json:"peak_iteration,omitempty"`
	// Components breaks PeakBytes down per data structure, at the peak.
	Components []MemoryComponent `json:"components,omitempty"`
	// StageAllocs are per-stage heap-allocation deltas, filled by
	// Recorder.Finish from the recorded spans.
	StageAllocs []StageAlloc `json:"stage_allocs,omitempty"`
	// HeapPeakBytes is the largest live-heap sample (runtime/metrics
	// /memory/classes/heap/objects:bytes) observed while the pipeline ran;
	// HeapSamples counts the observations behind it.
	HeapPeakBytes uint64 `json:"heap_peak_bytes,omitempty"`
	HeapSamples   int    `json:"heap_samples,omitempty"`
	// GCCycles and GCPauseTotal cover the compile's window: completed GC
	// cycles and the total stop-the-world pause accumulated during it.
	GCCycles     uint64        `json:"gc_cycles,omitempty"`
	GCPauseTotal time.Duration `json:"gc_pause_total_ns,omitempty"`
}

// Format renders the memory record as a small human-readable table.
func (m *MemoryTrace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e-graph peak: %.2f MB at iteration %d\n",
		float64(m.PeakBytes)/1e6, m.PeakIteration)
	if len(m.Components) > 0 {
		nameW := len("component")
		for _, c := range m.Components {
			if len(c.Name) > nameW {
				nameW = len(c.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %12s %10s\n", nameW, "component", "entries", "bytes")
		for _, c := range m.Components {
			fmt.Fprintf(&b, "%-*s %12d %7.2f MB\n", nameW, c.Name, c.Entries,
				float64(c.Bytes)/1e6)
		}
	}
	if m.HeapPeakBytes > 0 {
		fmt.Fprintf(&b, "heap peak: %.2f MB over %d samples, %d GC cycles, %v paused\n",
			float64(m.HeapPeakBytes)/1e6, m.HeapSamples, m.GCCycles,
			m.GCPauseTotal.Round(time.Microsecond))
	}
	return b.String()
}

// heapSampleInterval is the HeapSampler's default polling period: coarse
// enough to be invisible in compile time, fine enough to catch the heap
// high-water of sub-second compiles (which also get the start/stop samples).
const heapSampleInterval = 5 * time.Millisecond

// heapMetrics are the runtime/metrics samples the HeapSampler polls.
var heapMetrics = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
}

// HeapSampler polls the Go runtime's live-heap size and GC cycle count on
// an interval while a compile runs, via the cheap runtime/metrics interface
// (no stop-the-world ReadMemStats in the loop; MemStats is read only at
// Start and Stop for the pause-time delta). Create with StartHeapSampler,
// collect with Stop.
type HeapSampler struct {
	mu       sync.Mutex
	peak     uint64
	samples  int
	startGC  uint64
	endGC    uint64
	pauseIn  uint64 // PauseTotalNs at Start
	pauseOut uint64 // PauseTotalNs at Stop
	stop     chan struct{}
	done     chan struct{}
}

// StartHeapSampler begins sampling on the given interval (<= 0 uses the
// 5ms default). Call Stop to end sampling and read the results.
func StartHeapSampler(interval time.Duration) *HeapSampler {
	if interval <= 0 {
		interval = heapSampleInterval
	}
	s := &HeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.pauseIn = ms.PauseTotalNs
	s.startGC = s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

// sample reads the heap metrics once, folding the live-heap value into the
// peak; it returns the current GC cycle count.
func (s *HeapSampler) sample() uint64 {
	buf := make([]metrics.Sample, len(heapMetrics))
	for i, name := range heapMetrics {
		buf[i].Name = name
	}
	metrics.Read(buf)
	heap := buf[0].Value.Uint64()
	gc := buf[1].Value.Uint64()
	s.mu.Lock()
	if heap > s.peak {
		s.peak = heap
	}
	s.samples++
	s.mu.Unlock()
	return gc
}

// Stop ends sampling (taking one final sample so even instant compiles get
// a reading) and returns the heap peak, sample count, GC cycles completed
// during the window, and total GC pause accumulated in it. Stop is
// idempotent in effect but must be called exactly once; the sampler must
// not be used afterwards.
func (s *HeapSampler) Stop() (peak uint64, samples int, gcCycles uint64, gcPause time.Duration) {
	close(s.stop)
	<-s.done
	s.endGC = s.sample()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.pauseOut = ms.PauseTotalNs
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak, s.samples, s.endGC - s.startGC, time.Duration(s.pauseOut - s.pauseIn)
}

// memProfileDebounce bounds how often the MemProfiler re-captures the heap
// profile after a new node-count high-water mark: profiles are ~100KB-ish
// and capture walks all live allocations, so chasing every publish would
// distort the run it is observing.
const memProfileDebounce = 250 * time.Millisecond

// MemProfiler watches a node-count probe and keeps the pprof heap profile
// captured nearest the count's peak — the allocation stacks behind the
// e-graph's largest extent, which is what the memory-layout work needs to
// see. Create with StartMemProfiler; Stop returns the profile bytes.
type MemProfiler struct {
	nodes    func() int
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	peak     int
	lastCap  time.Time
	snapshot []byte
}

// StartMemProfiler begins polling nodes() on the interval (<= 0 uses 10ms),
// capturing the heap profile whenever the count reaches a new high-water
// mark (debounced). nodes is typically egraph.Progress.Snapshot().Nodes.
func StartMemProfiler(nodes func() int, interval time.Duration) *MemProfiler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	p := &MemProfiler{nodes: nodes, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.poll()
			}
		}
	}()
	return p
}

// poll captures the heap profile if the node count set a new high-water
// mark and the debounce window has passed.
func (p *MemProfiler) poll() {
	n := p.nodes()
	p.mu.Lock()
	due := n > p.peak && time.Since(p.lastCap) >= memProfileDebounce
	if n > p.peak {
		p.peak = n
	}
	p.mu.Unlock()
	if due {
		p.capture()
	}
}

// capture snapshots the pprof heap profile.
func (p *MemProfiler) capture() {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return
	}
	p.mu.Lock()
	p.snapshot = buf.Bytes()
	p.lastCap = time.Now()
	p.mu.Unlock()
}

// Stop ends polling and returns the captured profile (the one nearest the
// node-count peak), along with that peak. A run too short for any poll
// still returns a final capture, so the profile is never empty.
func (p *MemProfiler) Stop() (profile []byte, peakNodes int) {
	close(p.stop)
	<-p.done
	p.mu.Lock()
	empty := p.snapshot == nil
	p.mu.Unlock()
	if empty {
		p.capture()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshot, p.peak
}

// HeapInUse returns the process's current live-heap bytes via
// runtime/metrics — the cheap probe the serve watchdog polls against its
// heap budget between compiles' Progress samples.
func HeapInUse() uint64 {
	buf := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(buf)
	return buf[0].Value.Uint64()
}
