package telemetry

import (
	"embed"
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Self-contained HTML report generator (the diospyros -report flag): one
// file, no external assets, rendering the flight-recorder sections of a
// Trace — the saturation trajectory, the per-rule attribution table with
// its Backoff ban timeline, the extraction decision trace — plus the
// simulator cycle profile as a waterfall. All chart geometry is computed
// here in Go; the template only places precomputed coordinates, so the
// output needs no JavaScript (hover detail rides on SVG <title> tooltips
// and every chart has a table twin).

// CycleRow is one opcode's share of a simulated run, in the neutral form
// the report renders (the simulator package converts its profile into this;
// telemetry cannot import it without an import cycle).
type CycleRow struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	Cycles int64  `json:"cycles"`
	Stall  int64  `json:"stall"`
}

// CycleProfile is the cycle attribution of one simulated run: per-opcode
// rows (which sum to Total-1; the startup cycle is unattributed) plus the
// stall totals of the orthogonal cause decomposition.
type CycleProfile struct {
	Total        int64      `json:"total"`
	OperandStall int64      `json:"operand_stall"`
	MemoryStall  int64      `json:"memory_stall"`
	BranchBubble int64      `json:"branch_bubble"`
	Rows         []CycleRow `json:"rows,omitempty"`
}

// ReportData is everything the HTML report renders. Trace is required;
// Cycle is optional (present when the compiled kernel ran on the
// simulator).
type ReportData struct {
	// Title heads the report, typically the kernel name.
	Title string
	// Subtitle is free-form context under the title (e.g. the flag set).
	Subtitle string
	Trace    *Trace
	Cycle    *CycleProfile
	// Generated stamps the report; zero means time.Now at render.
	Generated time.Time
}

//go:embed report.tmpl.html chart.tmpl.html
var reportFS embed.FS

// ChartTemplateFuncs are the helpers the linechart partial (and the
// templates embedding it) need; reports outside this package register the
// same map so shared geometry helpers behave identically everywhere.
var ChartTemplateFuncs = template.FuncMap{
	"add":  func(a, b int) int { return a + b },
	"sub":  func(a, b int) int { return a - b },
	"half": func(a int) int { return a / 2 },
	"addf": func(a, b float64) float64 { return a + b },
}

var reportTmpl = template.Must(template.New("report.tmpl.html").
	Funcs(ChartTemplateFuncs).
	ParseFS(reportFS, "report.tmpl.html", "chart.tmpl.html"))

// RenderReport writes the self-contained HTML report for d to w.
func RenderReport(w io.Writer, d ReportData) error {
	if d.Trace == nil {
		return fmt.Errorf("telemetry: report needs a trace")
	}
	return reportTmpl.Execute(w, buildReportView(d))
}

// --- view model -----------------------------------------------------------
// Everything below precomputes template-ready strings and percentages so
// the template stays free of logic.

type reportView struct {
	Title     string
	Subtitle  string
	Generated string

	Tiles []statTile

	Stages []stageRow

	Trajectory *LineChart // nodes & classes per iteration
	CostCurve  *LineChart // best extractable cost per iteration
	MemCurve   *LineChart // e-graph logical footprint per iteration

	Rules        []ruleRow
	Bans         []banRow
	JournalNote  string
	HasSearch    bool
	HasIterPlot  bool
	HasCostPlot  bool
	HasMemPlot   bool
	SearchFooter string

	Memory *memoryView

	Extraction *extractionView
	Cycle      *cycleView
}

type statTile struct {
	Label string
	Value string
	Note  string
}

type stageRow struct {
	Name     string
	Duration string
	Alloc    string
	SharePct float64 // of total duration, for the inline bar
}

type ruleRow struct {
	Rule     string
	Matches  int
	Applied  int
	NewNodes int
	Duration string
	Bans     int
	BarPct   float64 // NewNodes share of the max row, for the inline bar
}

type banRow struct {
	Rule      string
	Iteration int
	Until     int
	Matches   int
	Bans      int
	// Timeline bar geometry: percentage offsets across the iteration span.
	LeftPct, WidthPct float64
}

// memoryView is the memory lane: the peak logical footprint with its
// per-component breakdown, plus the process-heap sampler's highlights.
type memoryView struct {
	Peak          string
	PeakIteration int
	HeapPeak      string // empty when the heap sampler did not run
	GCCycles      uint64
	Components    []memCompRow
}

type memCompRow struct {
	Name    string
	Entries string
	Bytes   string
	BarPct  float64 // share of the largest component, for the inline bar
}

type extractionView struct {
	TotalCost string
	Classes   int
	Contested int
	Movement  []moveRow
	Decisions []decisionRow
	Truncated int
}

type moveRow struct {
	Kind   string
	Count  int
	BarPct float64
}

type decisionRow struct {
	Class        int
	Winner       string
	WinnerCost   string
	WinnerOwn    string
	RunnerUp     string
	RunnerUpCost string
	Margin       string
	Candidates   int
	Contested    bool
}

type cycleView struct {
	Total        int64
	OperandStall int64
	MemoryStall  int64
	BranchBubble int64
	Rows         []waterRow
	OtherCycles  int64 // rows beyond the cap, folded
}

// waterRow is one bar of the cycle waterfall: each opcode's contribution
// starts where the previous ended, so the bars tile the total run.
type waterRow struct {
	Name     string
	Count    int64
	Cycles   int64
	Stall    int64
	LeftPct  float64 // cumulative offset
	BusyPct  float64 // non-stall width
	StallPct float64 // stall width (drawn after the busy segment)
	SharePct string  // of total cycles, for the label
}

func buildReportView(d ReportData) *reportView {
	t := d.Trace
	gen := d.Generated
	if gen.IsZero() {
		gen = time.Now()
	}
	v := &reportView{
		Title:     d.Title,
		Subtitle:  d.Subtitle,
		Generated: gen.Format("2006-01-02 15:04:05 MST"),
	}
	if v.Title == "" {
		v.Title = "diospyros compile report"
	}

	// Headline tiles.
	v.Tiles = append(v.Tiles, statTile{Label: "compile time",
		Value: t.Duration.Round(time.Microsecond).String()})
	if g, ok := t.FinalGauge(); ok {
		v.Tiles = append(v.Tiles,
			statTile{Label: "iterations", Value: fmt.Sprint(len(t.Iterations))},
			statTile{Label: "e-nodes", Value: fmt.Sprint(g.Nodes)},
			statTile{Label: "e-classes", Value: fmt.Sprint(g.Classes)})
	}
	if t.StopReason != "" {
		v.Tiles = append(v.Tiles, statTile{Label: "stopped", Value: t.StopReason})
	}
	if t.Extraction != nil {
		v.Tiles = append(v.Tiles, statTile{Label: "extracted cost",
			Value: trimFloat(t.Extraction.TotalCost)})
	}
	if d.Cycle != nil {
		v.Tiles = append(v.Tiles, statTile{Label: "sim cycles",
			Value: fmt.Sprint(d.Cycle.Total)})
	}

	for _, s := range t.Stages {
		share := 0.0
		if t.Duration > 0 {
			share = 100 * float64(s.Duration) / float64(t.Duration)
		}
		v.Stages = append(v.Stages, stageRow{
			Name:     s.Name,
			Duration: s.Duration.Round(time.Microsecond).String(),
			Alloc:    fmt.Sprintf("%.2f MB", float64(s.AllocBytes)/1e6),
			SharePct: share,
		})
	}

	v.Trajectory = buildTrajectory(t.Iterations)
	v.HasIterPlot = v.Trajectory != nil
	if t.Search != nil {
		v.HasSearch = true
		v.CostCurve = buildCostCurve(t.Search.BestCost)
		v.HasCostPlot = v.CostCurve != nil
		maxNodes := 0
		for _, r := range t.Search.Rules {
			if r.NewNodes > maxNodes {
				maxNodes = r.NewNodes
			}
		}
		for _, r := range t.Search.Rules {
			pct := 0.0
			if maxNodes > 0 {
				pct = 100 * float64(r.NewNodes) / float64(maxNodes)
			}
			v.Rules = append(v.Rules, ruleRow{
				Rule: r.Rule, Matches: r.Matches, Applied: r.Applied,
				NewNodes: r.NewNodes,
				Duration: r.Duration.Round(time.Microsecond).String(),
				Bans:     r.Bans, BarPct: pct,
			})
		}
		lastIter := len(t.Iterations)
		for _, ban := range t.Search.Bans {
			if ban.Until > lastIter {
				lastIter = ban.Until
			}
		}
		for _, ban := range t.Search.Bans {
			left, width := 0.0, 0.0
			if lastIter > 1 {
				span := float64(lastIter - 1)
				left = 100 * float64(ban.Iteration-1) / span
				width = 100 * float64(ban.Until-ban.Iteration) / span
			}
			if width < 2 {
				width = 2 // keep sub-pixel bans visible
			}
			if left+width > 100 {
				left = 100 - width
			}
			v.Bans = append(v.Bans, banRow{
				Rule: ban.Rule, Iteration: ban.Iteration, Until: ban.Until,
				Matches: ban.Matches, Bans: ban.Bans,
				LeftPct: left, WidthPct: width,
			})
		}
		if t.Search.EventsDropped > 0 {
			v.JournalNote = fmt.Sprintf(
				"journal ring evicted %d of %d events; tables cover the surviving suffix",
				t.Search.EventsDropped, t.Search.Events)
		}
		v.SearchFooter = fmt.Sprintf("%d journal events", t.Search.Events)
	}

	v.MemCurve = buildMemCurve(t.Iterations)
	v.HasMemPlot = v.MemCurve != nil
	if t.Memory != nil {
		v.Memory = buildMemoryView(t.Memory)
		v.Tiles = append(v.Tiles, statTile{Label: "peak e-graph",
			Value: fmtBytes(t.Memory.PeakBytes),
			Note:  fmt.Sprintf("iteration %d", t.Memory.PeakIteration)})
	}

	if t.Extraction != nil {
		v.Extraction = buildExtractionView(t.Extraction)
	}
	if d.Cycle != nil {
		v.Cycle = buildCycleView(d.Cycle)
	}
	return v
}

func buildTrajectory(gs []IterationGauge) *LineChart {
	if len(gs) < 2 {
		return nil
	}
	xs := make([]float64, len(gs))
	nodes := make([]float64, len(gs))
	classes := make([]float64, len(gs))
	for i, g := range gs {
		xs[i] = float64(g.Iteration)
		nodes[i] = float64(g.Nodes)
		classes[i] = float64(g.Classes)
	}
	c := NewLineChart(xs)
	c.Legend = true
	c.XLabel = "iteration"
	yMax := maxOf(maxOf(0, nodes...), classes...)
	c.SetYRange(0, yMax)
	c.AddSeries("e-nodes", "s1", xs, nodes, func(i int) string {
		return fmt.Sprintf("iteration %d: %d e-nodes", gs[i].Iteration, gs[i].Nodes)
	})
	c.AddSeries("e-classes", "s2", xs, classes, func(i int) string {
		return fmt.Sprintf("iteration %d: %d e-classes", gs[i].Iteration, gs[i].Classes)
	})
	return c.LineChart
}

func buildCostCurve(pts []CostPoint) *LineChart {
	if len(pts) < 2 {
		return nil
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Iteration)
		ys[i] = p.Cost
	}
	c := NewLineChart(xs)
	c.XLabel = "iteration"
	c.SetYRange(0, maxOf(0, ys...))
	c.AddSeries("best cost", "s1", xs, ys, func(i int) string {
		return fmt.Sprintf("iteration %d: cost %s", pts[i].Iteration, trimFloat(pts[i].Cost))
	})
	return c.LineChart
}

// buildMemCurve plots the e-graph's logical footprint per iteration, from
// the per-iteration gauges. Gauges without a byte reading (traces recorded
// before footprint accounting) are skipped; the chart needs two readings.
func buildMemCurve(gs []IterationGauge) *LineChart {
	var xs, ys []float64
	var kept []IterationGauge
	for _, g := range gs {
		if g.Bytes > 0 {
			xs = append(xs, float64(g.Iteration))
			ys = append(ys, float64(g.Bytes))
			kept = append(kept, g)
		}
	}
	if len(xs) < 2 {
		return nil
	}
	c := NewLineChart(xs)
	c.XLabel = "iteration"
	c.SetYRange(0, maxOf(0, ys...))
	c.AddSeries("e-graph bytes", "s1", xs, ys, func(i int) string {
		return fmt.Sprintf("iteration %d: %s", kept[i].Iteration, fmtBytes(kept[i].Bytes))
	})
	return c.LineChart
}

func buildMemoryView(m *MemoryTrace) *memoryView {
	v := &memoryView{
		Peak:          fmtBytes(m.PeakBytes),
		PeakIteration: m.PeakIteration,
		GCCycles:      m.GCCycles,
	}
	if m.HeapPeakBytes > 0 {
		v.HeapPeak = fmtBytes(int64(m.HeapPeakBytes))
	}
	var maxB int64
	for _, c := range m.Components {
		if c.Bytes > maxB {
			maxB = c.Bytes
		}
	}
	for _, c := range m.Components {
		pct := 0.0
		if maxB > 0 {
			pct = 100 * float64(c.Bytes) / float64(maxB)
		}
		v.Components = append(v.Components, memCompRow{
			Name: c.Name, Entries: fmt.Sprint(c.Entries),
			Bytes: fmtBytes(c.Bytes), BarPct: pct,
		})
	}
	return v
}

func buildExtractionView(e *ExtractionTrace) *extractionView {
	v := &extractionView{
		TotalCost: trimFloat(e.TotalCost),
		Classes:   e.Classes,
		Contested: e.Contested,
	}
	moves := []moveRow{
		{Kind: "literal", Count: e.Literal},
		{Kind: "contiguous load", Count: e.Contiguous},
		{Kind: "shuffle (1 array)", Count: e.Shuffles},
		{Kind: "select (2 arrays)", Count: e.Selects},
		{Kind: "gather (many arrays)", Count: e.Gathers},
		{Kind: "scalar lanes", Count: e.ScalarLanes},
	}
	maxMove := 0
	for _, m := range moves {
		if m.Count > maxMove {
			maxMove = m.Count
		}
	}
	for _, m := range moves {
		if m.Count == 0 {
			continue
		}
		m.BarPct = 100 * float64(m.Count) / float64(maxMove)
		v.Movement = append(v.Movement, m)
	}
	for _, d := range e.Decisions {
		row := decisionRow{
			Class:      d.Class,
			Winner:     d.Winner,
			WinnerCost: trimFloat(d.WinnerCost),
			WinnerOwn:  trimFloat(d.WinnerOwn),
			Candidates: d.Candidates,
		}
		if d.RunnerUp != "" {
			row.RunnerUp = d.RunnerUp
			row.RunnerUpCost = trimFloat(d.RunnerUpCost)
			row.Margin = trimFloat(d.Margin)
			row.Contested = true
		}
		v.Decisions = append(v.Decisions, row)
	}
	if e.Contested > len(e.Decisions) {
		v.Truncated = e.Contested - len(e.Decisions)
	}
	return v
}

const waterfallMaxRows = 14

func buildCycleView(p *CycleProfile) *cycleView {
	v := &cycleView{
		Total:        p.Total,
		OperandStall: p.OperandStall,
		MemoryStall:  p.MemoryStall,
		BranchBubble: p.BranchBubble,
	}
	if p.Total <= 0 {
		return v
	}
	rows := append([]CycleRow(nil), p.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Cycles > rows[j].Cycles })
	if len(rows) > waterfallMaxRows {
		for _, r := range rows[waterfallMaxRows:] {
			v.OtherCycles += r.Cycles
		}
		rows = rows[:waterfallMaxRows]
	}
	var cum int64
	total := float64(p.Total)
	for _, r := range rows {
		busy := r.Cycles - r.Stall
		if busy < 0 {
			busy = 0
		}
		v.Rows = append(v.Rows, waterRow{
			Name: r.Name, Count: r.Count, Cycles: r.Cycles, Stall: r.Stall,
			LeftPct:  100 * float64(cum) / total,
			BusyPct:  100 * float64(busy) / total,
			StallPct: 100 * float64(r.Stall) / total,
			SharePct: fmt.Sprintf("%.1f%%", 100*float64(r.Cycles)/total),
		})
		cum += r.Cycles
	}
	return v
}

// --- small formatting helpers --------------------------------------------

func maxOf(first float64, rest ...float64) float64 {
	m := first
	for _, v := range rest {
		if v > m {
			m = v
		}
	}
	return m
}

// trimFloat renders a float with up to two decimals, dropping trailing
// zeros ("12", "12.5", "12.25").
func trimFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "∞"
	}
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// fmtBytes renders a byte count at a human scale (B, KB, MB).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// compactNum renders axis labels: 12, 3.4k, 1.2M.
func compactNum(f float64) string {
	abs := math.Abs(f)
	switch {
	case abs >= 1e6:
		return trimFloat(f/1e6) + "M"
	case abs >= 1e4:
		return trimFloat(f/1e3) + "k"
	default:
		return trimFloat(f)
	}
}
