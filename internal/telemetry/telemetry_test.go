package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRecorderSpansAndTotals(t *testing.T) {
	r := NewRecorder()
	s := r.StartSpan("saturate")
	time.Sleep(2 * time.Millisecond)
	_ = make([]byte, 1<<20)
	s.End()
	s = r.StartSpan("extract")
	time.Sleep(time.Millisecond)
	s.End()
	r.Count("applied", 40)
	r.Count("applied", 2)
	r.SetStopReason("saturated")
	tr := r.Finish()

	if len(tr.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(tr.Stages))
	}
	sat, ok := tr.Stage("saturate")
	if !ok || sat.Duration < 2*time.Millisecond {
		t.Fatalf("saturate span wrong: %+v (ok=%v)", sat, ok)
	}
	if sat.AllocBytes < 1<<20 {
		t.Errorf("saturate alloc delta %d, want >= 1MB", sat.AllocBytes)
	}
	if tr.Stages[1].Start < tr.Stages[0].Start+tr.Stages[0].Duration {
		t.Errorf("spans overlap: %+v", tr.Stages)
	}
	if got := tr.StagesTotal(); got > tr.Duration {
		t.Errorf("stage sum %v exceeds total %v", got, tr.Duration)
	}
	if tr.Counter("applied") != 42 {
		t.Errorf("counter = %d, want 42", tr.Counter("applied"))
	}
	if !tr.Saturated() {
		t.Error("Saturated() = false")
	}
	if _, ok := tr.Stage("missing"); ok {
		t.Error("found a stage that was never recorded")
	}
}

// TestStagesTotalOverlap pins the interval-union semantics: spans recorded
// by concurrent goroutines overlap in wall time and must not be
// double-counted, while gaps between spans must not be covered.
func TestStagesTotalOverlap(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		stages []Span
		want   time.Duration
	}{
		{"empty", nil, 0},
		{"sequential", []Span{
			{Name: "a", Start: ms(0), Duration: ms(10)},
			{Name: "b", Start: ms(10), Duration: ms(5)},
		}, ms(15)},
		{"gap", []Span{
			{Name: "a", Start: ms(0), Duration: ms(10)},
			{Name: "b", Start: ms(20), Duration: ms(5)},
		}, ms(15)},
		{"full overlap", []Span{ // two workers racing the same window
			{Name: "a", Start: ms(0), Duration: ms(10)},
			{Name: "b", Start: ms(0), Duration: ms(10)},
		}, ms(10)},
		{"partial overlap", []Span{
			{Name: "a", Start: ms(0), Duration: ms(10)},
			{Name: "b", Start: ms(5), Duration: ms(10)},
		}, ms(15)},
		{"contained", []Span{
			{Name: "a", Start: ms(0), Duration: ms(20)},
			{Name: "b", Start: ms(5), Duration: ms(5)},
		}, ms(20)},
		{"unsorted input", []Span{ // End order, not Start order
			{Name: "b", Start: ms(15), Duration: ms(5)},
			{Name: "a", Start: ms(0), Duration: ms(10)},
		}, ms(15)},
	}
	for _, tc := range cases {
		tr := &Trace{Stages: tc.stages, Duration: ms(100)}
		if got := tr.StagesTotal(); got != tc.want {
			t.Errorf("%s: StagesTotal = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTraceIterationHelpers(t *testing.T) {
	tr := &Trace{Iterations: []IterationGauge{
		{Iteration: 1, Nodes: 10, Classes: 8, PerRuleApplied: map[string]int{"a": 2, "b": 1}},
		{Iteration: 2, Nodes: 30, Classes: 20, PerRuleApplied: map[string]int{"a": 3}},
	}}
	g, ok := tr.FinalGauge()
	if !ok || g.Nodes != 30 || g.Iteration != 2 {
		t.Fatalf("FinalGauge = %+v, %v", g, ok)
	}
	per := tr.PerRuleApplied()
	if per["a"] != 5 || per["b"] != 1 {
		t.Fatalf("PerRuleApplied = %v", per)
	}
	if _, ok := (&Trace{}).FinalGauge(); ok {
		t.Error("FinalGauge on empty trace reported ok")
	}
}

func TestTraceFormatAndJSON(t *testing.T) {
	r := NewRecorder()
	r.StartSpan("lower").End()
	r.SetIterations([]IterationGauge{{Iteration: 1, Nodes: 5, Classes: 4}})
	r.SetStopReason("timeout")
	r.Count("saturate.applied", 7)
	tr := r.Finish()

	out := tr.Format()
	for _, want := range []string{"lower", "total", "stopped: timeout", "saturate.applied"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.StopReason != "timeout" || len(back.Stages) != 1 || back.Counters["saturate.applied"] != 7 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

// A nil recorder must be a no-op so callers can opt out of telemetry.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.StartSpan("x").End()
	r.Count("c", 1)
	r.SetIterations(nil)
	r.SetStopReason("saturated")
	if tr := r.Finish(); tr == nil || len(tr.Stages) != 0 {
		t.Fatalf("nil recorder Finish = %+v", tr)
	}
}
