// Package telemetry provides lightweight compilation telemetry: named
// spans (per-stage wall time and heap-allocation delta), counters, and
// per-iteration equality-saturation gauges (nodes, classes, per-rule
// match/apply counts).
//
// A Recorder collects events while a pipeline runs and is folded into an
// immutable Trace at the end. The Trace is attached to every compilation
// result, drives Table 1 of the evaluation, and is what the -trace/-json
// CLI flags print. Traces export to Chrome trace-event JSON (chrome.go,
// the -trace-out flag) and the Prometheus text format (prometheus.go,
// -metrics-out), and may carry the rewrite-provenance Explanation of the
// compiled program (explain.go, -explain). All Recorder methods are
// nil-receiver safe so callers that do not want telemetry can pass a nil
// recorder.
//
// For long-running processes the package also provides a live metrics
// Registry (registry.go) — counters, gauges, and histograms aggregated
// across many compilations and rendered at a Prometheus scrape endpoint,
// sharing the file exporter's rendering and name-hygiene model — and slog
// plumbing (log.go) that threads a structured logger and per-request ID
// through the pipeline's context.
package telemetry

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one completed pipeline stage: wall time plus the heap allocated
// while it ran (cumulative runtime.MemStats.TotalAlloc delta, the Table 1
// memory proxy).
type Span struct {
	Name       string        `json:"name"`
	Start      time.Duration `json:"start_offset"` // offset from trace start
	Duration   time.Duration `json:"duration"`
	AllocBytes uint64        `json:"alloc_bytes"`
}

// IterationGauge is a per-iteration snapshot of an equality-saturation
// run: e-graph size after the iteration's rebuild and the iteration's rule
// activity. Maps hold only rules with nonzero counts.
type IterationGauge struct {
	Iteration      int            `json:"iteration"` // 1-based
	Nodes          int            `json:"nodes"`
	Classes        int            `json:"classes"`
	Matches        int            `json:"matches"`
	Applied        int            `json:"applied"`
	PerRuleMatches map[string]int `json:"per_rule_matches,omitempty"`
	PerRuleApplied map[string]int `json:"per_rule_applied,omitempty"`
	Duration       time.Duration  `json:"duration"`
	// Bytes is the e-graph's logical footprint after the iteration (memory
	// trajectory beside the node/class trajectory); 0 when not measured.
	Bytes int64 `json:"bytes,omitempty"`
}

// TraceSchema identifies the Trace JSON format. Every trace serialized by
// this package carries it, the way loadgen's SoakResult carries
// "diosload/serve-soak/v1", so downstream consumers — diosdiff above all —
// can reject stale or foreign artifacts with a clear error instead of
// silently mis-reading them.
const TraceSchema = "diospyros/trace/v1"

// Trace is the full telemetry record of one compilation: the stage spans
// in execution order, the saturation iteration gauges, free-form counters,
// and end-to-end totals.
type Trace struct {
	// Schema identifies the JSON format (TraceSchema). Stamped by
	// Recorder.Finish and by JSON; empty only on hand-built literals.
	Schema     string           `json:"schema,omitempty"`
	Stages     []Span           `json:"stages"`
	Iterations []IterationGauge `json:"iterations,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	// StopReason mirrors egraph.StopReason for the saturation stage
	// ("saturated", "timeout", "cancelled", "node-limit", "iter-limit").
	StopReason string `json:"stop_reason,omitempty"`
	// Explanation, when provenance recording was enabled, is the ordered
	// rule chain that justifies the extracted program (the -explain report).
	Explanation *Explanation `json:"explanation,omitempty"`
	// Search and Extraction are the flight-recorder sections (search.go),
	// present when the compile ran with a journal (Options.Journal / the
	// -report flag / an SSE compile): per-rule saturation attribution with
	// the Backoff ban timeline, and the extraction decision trace.
	Search     *SearchTrace     `json:"search,omitempty"`
	Extraction *ExtractionTrace `json:"extraction,omitempty"`
	// Memory is the compile's memory record (memory.go): the e-graph's peak
	// logical footprint with its per-component breakdown, per-stage heap
	// allocation deltas, and the runtime heap/GC samples collected while the
	// pipeline ran.
	Memory *MemoryTrace `json:"memory,omitempty"`
	// Duration and AllocBytes cover the whole pipeline, including
	// per-stage telemetry overhead not attributed to any span.
	Duration   time.Duration `json:"duration"`
	AllocBytes uint64        `json:"alloc_bytes"`
}

// Stage returns the span with the given name, if recorded.
func (t *Trace) Stage(name string) (Span, bool) {
	for _, s := range t.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

// StageDuration returns the wall time of the named stage (0 if absent).
func (t *Trace) StageDuration(name string) time.Duration {
	s, _ := t.Stage(name)
	return s.Duration
}

// StagesTotal returns the wall time covered by at least one stage span:
// the union of the span intervals, not their sum, so spans recorded by
// concurrent goroutines (which overlap in time) are not double-counted.
// It is at most Duration; the gap is time no stage was running.
func (t *Trace) StagesTotal() time.Duration {
	type interval struct{ start, end time.Duration }
	ivs := make([]interval, 0, len(t.Stages))
	for _, s := range t.Stages {
		ivs = append(ivs, interval{s.Start, s.Start + s.Duration})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total time.Duration
	for i := 0; i < len(ivs); {
		start, end := ivs[i].start, ivs[i].end
		for i++; i < len(ivs) && ivs[i].start <= end; i++ {
			if ivs[i].end > end {
				end = ivs[i].end
			}
		}
		total += end - start
	}
	return total
}

// Counter returns a named counter value (0 if absent).
func (t *Trace) Counter(name string) int64 {
	return t.Counters[name]
}

// FinalGauge returns the last iteration gauge — the e-graph's final size.
func (t *Trace) FinalGauge() (IterationGauge, bool) {
	if len(t.Iterations) == 0 {
		return IterationGauge{}, false
	}
	return t.Iterations[len(t.Iterations)-1], true
}

// PerRuleApplied sums successful rule applications per rule name over all
// iterations.
func (t *Trace) PerRuleApplied() map[string]int {
	out := map[string]int{}
	for _, g := range t.Iterations {
		for name, n := range g.PerRuleApplied {
			out[name] += n
		}
	}
	return out
}

// Saturated reports whether the saturation stage reached a fixpoint.
func (t *Trace) Saturated() bool { return t.StopReason == "saturated" }

// JSON renders the trace for machine consumption (the -json CLI flag),
// stamping the schema identifier if the trace does not carry one yet.
func (t *Trace) JSON() ([]byte, error) {
	if t.Schema == "" {
		t.Schema = TraceSchema
	}
	return json.MarshalIndent(t, "", "  ")
}

// Format renders the human-readable stage table printed by -trace. Column
// widths adapt to the longest stage and counter names so long names (e.g.
// per-kernel counters) never break the alignment.
func (t *Trace) Format() string {
	var b strings.Builder
	nameW := len("total")
	for _, s := range t.Stages {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s %12s %12s %8s\n", nameW, "stage", "time", "alloc", "share")
	for _, s := range t.Stages {
		share := 0.0
		if t.Duration > 0 {
			share = 100 * float64(s.Duration) / float64(t.Duration)
		}
		fmt.Fprintf(&b, "%-*s %12v %9.2f MB %7.1f%%\n",
			nameW, s.Name, s.Duration.Round(time.Microsecond),
			float64(s.AllocBytes)/1e6, share)
	}
	fmt.Fprintf(&b, "%-*s %12v %9.2f MB %7.1f%%\n", nameW, "total",
		t.Duration.Round(time.Microsecond), float64(t.AllocBytes)/1e6, 100.0)
	if len(t.Iterations) > 0 {
		g := t.Iterations[len(t.Iterations)-1]
		fmt.Fprintf(&b, "saturation: %d iterations, %d nodes, %d classes, stopped: %s\n",
			len(t.Iterations), g.Nodes, g.Classes, t.StopReason)
	}
	if t.Memory != nil && t.Memory.PeakBytes > 0 {
		fmt.Fprintf(&b, "memory: e-graph peak %.2f MB at iteration %d",
			float64(t.Memory.PeakBytes)/1e6, t.Memory.PeakIteration)
		if t.Memory.HeapPeakBytes > 0 {
			fmt.Fprintf(&b, ", heap peak %.2f MB (%d GC cycles)",
				float64(t.Memory.HeapPeakBytes)/1e6, t.Memory.GCCycles)
		}
		b.WriteByte('\n')
	}
	if len(t.Counters) > 0 {
		names := make([]string, 0, len(t.Counters))
		counterW := 0
		for n := range t.Counters {
			names = append(names, n)
			if len(n) > counterW {
				counterW = len(n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "counter %-*s %d\n", counterW, n, t.Counters[n])
		}
	}
	return b.String()
}

// Recorder accumulates telemetry during a pipeline run. All methods are
// safe for concurrent use, so fanned-out workers (e.g. parallel bench
// kernels or server request handlers) can share one recorder. Spans still
// model pipeline stages and are appended in End order; overlapping spans
// from concurrent goroutines are recorded faithfully but the stage table
// assumes they rarely overlap. Finish must still happen last: it snapshots
// whatever has been recorded, and later writes are lost. The zero value is
// not usable — call NewRecorder, which stamps the trace start.
type Recorder struct {
	start      time.Time
	startAlloc uint64

	mu    sync.Mutex // guards trace
	trace Trace
}

// NewRecorder starts a trace at the current time and heap state.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now(), startAlloc: totalAlloc()}
}

// ActiveSpan is a span in progress; End completes and records it.
type ActiveSpan struct {
	rec        *Recorder
	name       string
	started    time.Time
	startAlloc uint64
}

// StartSpan opens a named span. Spans are expected to be sequential and
// non-overlapping (pipeline stages).
func (r *Recorder) StartSpan(name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	return &ActiveSpan{rec: r, name: name, started: time.Now(), startAlloc: totalAlloc()}
}

// End completes the span and appends it to the trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	span := Span{
		Name:       s.name,
		Start:      s.started.Sub(s.rec.start),
		Duration:   time.Since(s.started),
		AllocBytes: totalAlloc() - s.startAlloc,
	}
	s.rec.mu.Lock()
	s.rec.trace.Stages = append(s.rec.trace.Stages, span)
	s.rec.mu.Unlock()
}

// Count adds delta to a named counter. Safe for concurrent use.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.trace.Counters == nil {
		r.trace.Counters = map[string]int64{}
	}
	r.trace.Counters[name] += delta
	r.mu.Unlock()
}

// SetIterations attaches the saturation iteration gauges.
func (r *Recorder) SetIterations(gs []IterationGauge) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.Iterations = gs
	r.mu.Unlock()
}

// SetStopReason records why the saturation stage ended.
func (r *Recorder) SetStopReason(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.StopReason = reason
	r.mu.Unlock()
}

// SetSearch attaches the saturation flight record.
func (r *Recorder) SetSearch(s *SearchTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.Search = s
	r.mu.Unlock()
}

// SetExtraction attaches the extraction flight record.
func (r *Recorder) SetExtraction(e *ExtractionTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.Extraction = e
	r.mu.Unlock()
}

// SetExplanation attaches the provenance report of the extracted program.
func (r *Recorder) SetExplanation(e *Explanation) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.Explanation = e
	r.mu.Unlock()
}

// SetMemory attaches the compile's memory record. Finish derives the
// per-stage allocation deltas from the recorded spans, so callers only fill
// the footprint and heap-sampler fields.
func (r *Recorder) SetMemory(m *MemoryTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace.Memory = m
	r.mu.Unlock()
}

// Finish stamps the end-to-end totals and returns the completed trace.
// The recorder must not be used afterwards.
func (r *Recorder) Finish() *Trace {
	if r == nil {
		return &Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace.Schema = TraceSchema
	r.trace.Duration = time.Since(r.start)
	r.trace.AllocBytes = totalAlloc() - r.startAlloc
	if r.trace.Memory != nil && r.trace.Memory.StageAllocs == nil {
		// Unify the memory record with the per-span TotalAlloc probe: one
		// heap-allocation delta per recorded stage, in span order.
		sa := make([]StageAlloc, 0, len(r.trace.Stages))
		for _, s := range r.trace.Stages {
			sa = append(sa, StageAlloc{Stage: s.Name, AllocBytes: s.AllocBytes})
		}
		r.trace.Memory.StageAllocs = sa
	}
	return &r.trace
}

func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
