package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging plumbing shared by the CLIs, the compile pipeline,
// and the serve layer. A *slog.Logger travels in the context.Context that
// already threads through every pipeline stage, so per-request identity
// (request IDs, kernel names) is attached once at the edge and appears on
// every stage- and saturation-level log line without any stage knowing
// about servers.

type loggerKey struct{}
type requestIDKey struct{}

// WithLogger returns a context carrying l. Pipeline stages and servers
// retrieve it with LoggerFrom.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom returns the context's logger, or a logger that discards
// everything when none (or a nil one) was attached — instrumented code
// never needs a nil check.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return discardLogger
}

// WithRequestID stamps a request ID on the context and on its logger, so
// both structured log lines and response metadata agree on the ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	ctx = context.WithValue(ctx, requestIDKey{}, id)
	return WithLogger(ctx, LoggerFrom(ctx).With(slog.String("request_id", id)))
}

// RequestID returns the context's request ID ("" when unset).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewLogger builds a leveled slog.Logger writing text or JSON lines to w —
// the one constructor behind the CLIs' -log-format/-log-level flags and
// the server's logger.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

var discardLogger = slog.New(discardHandler{})

// discardHandler drops all records (slog.DiscardHandler needs go1.24; the
// module targets go1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
