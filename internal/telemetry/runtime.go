package telemetry

import (
	"runtime"
	"sync"
)

// Go runtime health metrics for the scrape endpoint: goroutine count, heap
// in use, and a GC pause histogram. Collection is pull-driven — each
// PrometheusText render (i.e. each /metrics scrape) takes one
// runtime.ReadMemStats snapshot and folds the GC pauses that happened
// since the previous scrape into the histogram, so an idle server costs
// nothing between scrapes.

// GCPauseBuckets are the histogram bounds for GC stop-the-world pauses, in
// seconds (10 µs .. 100 ms).
var GCPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1,
}

// runtimeCollector tracks how far into the runtime's GC pause ring the
// previous scrape got.
type runtimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32
}

// EnableRuntimeMetrics turns on Go runtime metrics: every scrape reports
// go_goroutines, go_memstats_heap_inuse_bytes, and the
// go_gc_pause_seconds histogram of pauses since the last scrape.
func (r *Registry) EnableRuntimeMetrics() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.runtime == nil {
		r.runtime = &runtimeCollector{}
	}
	r.mu.Unlock()
}

// collectRuntime takes one runtime snapshot and records it. Called at the
// top of each render, outside the registry lock (it uses the public
// recording methods).
func (r *Registry) collectRuntime(c *runtimeCollector) {
	r.GaugeSet("go_goroutines", "Number of goroutines.", nil,
		float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.GaugeSet("go_memstats_heap_inuse_bytes",
		"Heap bytes in in-use spans.", nil, float64(ms.HeapInuse))
	r.GaugeSet("go_memstats_heap_alloc_bytes",
		"Heap bytes allocated and still in use.", nil, float64(ms.HeapAlloc))

	c.mu.Lock()
	since := c.lastNumGC
	c.lastNumGC = ms.NumGC
	c.mu.Unlock()
	if ms.NumGC > since {
		// PauseNs is a ring of the last 256 pauses; cycle i's pause lives
		// at (i+255)%256. Scrapes further than 256 cycles behind lose the
		// overwritten pauses.
		if ms.NumGC-since > 256 {
			since = ms.NumGC - 256
		}
		for i := since + 1; i <= ms.NumGC; i++ {
			pause := float64(ms.PauseNs[(i+255)%256]) / 1e9
			r.Observe("go_gc_pause_seconds",
				"Garbage collection stop-the-world pause durations.",
				nil, GCPauseBuckets, pause)
		}
	}
}
