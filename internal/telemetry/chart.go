package telemetry

import (
	"fmt"
	"html/template"
	"strings"
)

// Reusable SVG line-chart machinery, shared by every HTML report this
// package renders (the -report compile report) and by other packages'
// reports (the diosload soak report embeds charts through ChartHTML).
// All geometry is computed in Go; the chart.tmpl.html partial only places
// precomputed coordinates, so rendered charts need no JavaScript — hover
// detail rides on SVG <title> tooltips.

// LineChart is the template-facing model of one chart: canvas and plot
// geometry, axis labels, grid lines, and one or more series of
// pre-projected points. Build one with NewLineChart/AddSeries.
type LineChart struct {
	W, H             int
	PlotX, PlotY     int
	PlotW, PlotH     int
	Series           []LineSeries
	YMax, YMid, YMin string
	XMin, XMax       string
	XLabel           string
	GridYs           []int
	Legend           bool
}

// LineSeries is one polyline of a LineChart, with optional per-point dots
// carrying tooltip titles and a direct label at the last point.
type LineSeries struct {
	Name   string
	Class  string // CSS class carrying the series color (s1, s2, s3)
	Points string // SVG polyline points
	Dots   []ChartDot
	Last   string // last value, for the direct label
	LastX  int
	LastY  int
}

// ChartDot is one hoverable point of a series.
type ChartDot struct {
	X, Y  int
	Title string
}

// ChartBuilder pairs the template-facing LineChart with the value scales
// used while plotting points into it.
type ChartBuilder struct {
	*LineChart
	xMin, xMax, yMin, yMax float64
}

// chart canvas constants, shared by every line chart.
const (
	chartW  = 680
	chartH  = 220
	padL    = 56
	padR    = 76 // room for the direct label on the last point
	padT    = 14
	padB    = 26
	maxDots = 48 // beyond this, dots crowd; the polyline alone reads better
)

// NewLineChart starts a chart whose x axis spans xs (which must be
// non-empty and ascending; typically iteration numbers or seconds).
func NewLineChart(xs []float64) *ChartBuilder {
	c := &ChartBuilder{LineChart: &LineChart{
		W: chartW, H: chartH,
		PlotX: padL, PlotY: padT,
		PlotW: chartW - padL - padR, PlotH: chartH - padT - padB,
	}}
	c.xMin, c.xMax = xs[0], xs[len(xs)-1]
	if c.xMax == c.xMin {
		c.xMax = c.xMin + 1
	}
	c.XMin = trimFloat(c.xMin)
	c.XMax = trimFloat(c.xMax)
	return c
}

// SetYRange fixes the y axis to [lo, hi] and places the grid lines; call it
// before AddSeries.
func (c *ChartBuilder) SetYRange(lo, hi float64) {
	if hi <= lo {
		hi = lo + 1
	}
	c.yMin, c.yMax = lo, hi
	c.YMax = compactNum(hi)
	c.YMid = compactNum(lo + (hi-lo)/2)
	c.YMin = compactNum(lo)
	c.GridYs = []int{
		c.PlotY,
		c.PlotY + c.PlotH/2,
		c.PlotY + c.PlotH,
	}
}

// AddSeries projects (xs, ys) into the plot area as one polyline. class
// names the CSS color class (s1, s2, s3); title renders the tooltip for
// point i.
func (c *ChartBuilder) AddSeries(name, class string, xs, ys []float64, title func(int) string) {
	sx := func(x float64) int {
		return c.PlotX + int(float64(c.PlotW)*(x-c.xMin)/(c.xMax-c.xMin))
	}
	sy := func(y float64) int {
		return c.PlotY + c.PlotH - int(float64(c.PlotH)*(y-c.yMin)/(c.yMax-c.yMin))
	}
	var b strings.Builder
	s := LineSeries{Name: name, Class: class}
	for i := range xs {
		x, y := sx(xs[i]), sy(ys[i])
		fmt.Fprintf(&b, "%d,%d ", x, y)
		if len(xs) <= maxDots {
			s.Dots = append(s.Dots, ChartDot{X: x, Y: y, Title: title(i)})
		}
	}
	s.Points = strings.TrimSpace(b.String())
	s.Last = compactNum(ys[len(ys)-1])
	s.LastX = sx(xs[len(xs)-1]) + 6
	s.LastY = sy(ys[len(ys)-1]) + 4
	c.Series = append(c.Series, s)
}

// ChartHTML renders one chart through the shared linechart partial,
// returning markup another template may embed verbatim. This is how
// reports outside this package (the diosload soak report) reuse the chart
// machinery without duplicating its SVG template.
func ChartHTML(c *LineChart) (template.HTML, error) {
	if c == nil {
		return "", nil
	}
	var b strings.Builder
	if err := reportTmpl.ExecuteTemplate(&b, "linechart", c); err != nil {
		return "", err
	}
	return template.HTML(b.String()), nil
}

// ChartCSS is the style block the linechart partial assumes: series
// colors, grid strokes, and the legend chips, in both light and dark
// schemes. Reports embedding ChartHTML output include it once in their
// <style>.
const ChartCSS = `
  svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--text-muted); }
  svg text.dl { fill: var(--text-secondary); font-size: 11px; }
  polyline.s1 { fill: none; stroke: var(--series-1); stroke-width: 2; stroke-linejoin: round; }
  polyline.s2 { fill: none; stroke: var(--series-2); stroke-width: 2; stroke-linejoin: round; }
  polyline.s3 { fill: none; stroke: var(--series-3); stroke-width: 2; stroke-linejoin: round; }
  circle.s1 { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
  circle.s2 { fill: var(--series-2); stroke: var(--surface-1); stroke-width: 2; }
  circle.s3 { fill: var(--series-3); stroke: var(--surface-1); stroke-width: 2; }
  line.grid { stroke: var(--grid); stroke-width: 1; }
  line.axis { stroke: var(--axis); stroke-width: 1; }
  .legend { display: flex; gap: 16px; margin: 4px 0 0; font-size: 12px; color: var(--text-secondary); }
  .legend .chip { display: inline-block; width: 10px; height: 10px; border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
  .chip.s1 { background: var(--series-1); }
  .chip.s2 { background: var(--series-2); }
  .chip.s3 { background: var(--series-3); }
`
