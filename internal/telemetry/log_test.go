package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerFromDefaultsToDiscard(t *testing.T) {
	l := LoggerFrom(context.Background())
	if l == nil {
		t.Fatal("nil logger")
	}
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Error("default logger should discard")
	}
	if LoggerFrom(nil) == nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Error("nil ctx must still yield a logger")
	}
}

func TestWithRequestIDThreadsThroughLogger(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithLogger(context.Background(), NewLogger(&buf, slog.LevelDebug, true))
	ctx = WithRequestID(ctx, "r0000002a")

	if got := RequestID(ctx); got != "r0000002a" {
		t.Fatalf("RequestID = %q", got)
	}
	LoggerFrom(ctx).Info("stage complete", "stage", "saturate")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if line["request_id"] != "r0000002a" || line["stage"] != "saturate" {
		t.Errorf("log line = %v", line)
	}
}

func TestNewLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, slog.LevelInfo, false).Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "msg=hello") || !strings.Contains(out, "k=v") {
		t.Errorf("text line = %q", out)
	}
	buf.Reset()
	NewLogger(&buf, slog.LevelInfo, false).Debug("below level")
	if buf.Len() != 0 {
		t.Errorf("debug leaked at info level: %q", buf.String())
	}
}

func TestRequestIDUnset(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID on fresh ctx = %q", got)
	}
}
