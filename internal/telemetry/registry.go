package telemetry

import (
	"net/http"
	"sort"
	"sync"
)

// Registry is a live, process-wide metrics aggregate for long-running
// servers: monotonic counters, gauges (with a max variant for high-water
// marks), and fixed-bucket histograms, all keyed by (family, label set).
// It is the scrape-endpoint counterpart of the one-shot PrometheusTexts
// file exporter and shares its metrics model: both render through
// promFamily/renderFamilies, so label escaping and name hygiene are
// identical. Metric and label names are sanitized on first use
// (SanitizeMetricName/SanitizeLabelName); label values may be arbitrary
// strings. All methods are safe for concurrent use and nil-receiver safe,
// so instrumented code can run with no registry attached.
type Registry struct {
	mu       sync.Mutex
	families map[string]*liveFamily
	// runtime, when set by EnableRuntimeMetrics, collects Go runtime
	// gauges and the GC pause histogram at every render (runtime.go).
	runtime *runtimeCollector
}

type liveFamily struct {
	name, help string
	typ        string    // "counter", "gauge", or "histogram"
	buckets    []float64 // histogram upper bounds, ascending (no +Inf)
	samples    map[string]*liveSample
}

type liveSample struct {
	labels map[string]string
	value  float64  // counter/gauge value; histogram sum
	counts []uint64 // histogram per-bucket cumulative counts (+Inf last)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*liveFamily{}}
}

// family returns (creating if needed) the named family, sanitizing the
// name. A name reused with a different type keeps its original type: the
// first registration wins, matching Prometheus's one-type-per-name rule.
func (r *Registry) family(name, help, typ string, buckets []float64) *liveFamily {
	name = SanitizeMetricName(name)
	f := r.families[name]
	if f == nil {
		f = &liveFamily{name: name, help: help, typ: typ, buckets: buckets,
			samples: map[string]*liveSample{}}
		r.families[name] = f
	}
	return f
}

func (f *liveFamily) sample(labels map[string]string) *liveSample {
	key := renderLabels(labels)
	s := f.samples[key]
	if s == nil {
		var copied map[string]string
		if len(labels) > 0 {
			copied = make(map[string]string, len(labels))
			for k, v := range labels {
				copied[k] = v
			}
		}
		s = &liveSample{labels: copied}
		if f.typ == "histogram" {
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.samples[key] = s
	}
	return s
}

// CounterAdd adds delta (which must be non-negative) to a counter.
func (r *Registry) CounterAdd(name, help string, labels map[string]string, delta float64) {
	if r == nil || delta < 0 {
		return
	}
	r.mu.Lock()
	r.family(name, help, "counter", nil).sample(labels).value += delta
	r.mu.Unlock()
}

// GaugeSet sets a gauge to v.
func (r *Registry) GaugeSet(name, help string, labels map[string]string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.family(name, help, "gauge", nil).sample(labels).value = v
	r.mu.Unlock()
}

// GaugeAdd adds delta (possibly negative) to a gauge — in-flight style.
func (r *Registry) GaugeAdd(name, help string, labels map[string]string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.family(name, help, "gauge", nil).sample(labels).value += delta
	r.mu.Unlock()
}

// GaugeMax raises a gauge to v if v exceeds its current value — the
// high-water-mark update used for e-graph sizes.
func (r *Registry) GaugeMax(name, help string, labels map[string]string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.family(name, help, "gauge", nil).sample(labels)
	if v > s.value {
		s.value = v
	}
	r.mu.Unlock()
}

// DefLatencyBuckets are the default histogram bounds for request and stage
// latencies, in seconds.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefByteBuckets are the default histogram bounds for memory sizes, in
// bytes: powers of four from 64 KiB to 1 GiB, spanning toy kernels through
// searches near the node budget.
var DefByteBuckets = []float64{
	64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Observe records v into a histogram with the given bucket upper bounds
// (ascending, +Inf implied; nil means DefLatencyBuckets). Buckets are fixed
// at the family's first registration.
func (r *Registry) Observe(name, help string, labels map[string]string, buckets []float64, v float64) {
	if r == nil {
		return
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	r.mu.Lock()
	f := r.family(name, help, "histogram", buckets)
	s := f.sample(labels)
	s.value += v
	placed := false
	for i, le := range f.buckets {
		if v <= le {
			s.counts[i]++ // per-bucket counts; render cumulates
			placed = true
			break
		}
	}
	if !placed {
		s.counts[len(f.buckets)]++ // +Inf
	}
	r.mu.Unlock()
}

// ObserveTrace folds one completed compilation trace into the registry:
// end-to-end and per-stage latency histograms, e-graph node/class
// high-water marks, and a stop-reason counter. This is what turns the
// per-request Trace already produced by the pipeline into live aggregate
// metrics without a second instrumentation layer.
func (r *Registry) ObserveTrace(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.Observe("diospyros_compile_duration_seconds",
		"End-to-end compile wall time.", nil, nil, t.Duration.Seconds())
	for _, s := range t.Stages {
		r.Observe("diospyros_stage_duration_seconds",
			"Per-stage compile wall time.",
			map[string]string{"stage": s.Name}, nil, s.Duration.Seconds())
	}
	if g, ok := t.FinalGauge(); ok {
		r.GaugeMax("diospyros_saturation_nodes_max",
			"High-water mark of e-graph nodes across compiles.", nil, float64(g.Nodes))
		r.GaugeMax("diospyros_saturation_classes_max",
			"High-water mark of e-graph classes across compiles.", nil, float64(g.Classes))
	}
	if t.Memory != nil && t.Memory.PeakBytes > 0 {
		r.Observe("diospyros_egraph_peak_bytes",
			"Per-compile peak e-graph logical footprint.",
			nil, DefByteBuckets, float64(t.Memory.PeakBytes))
	}
	if t.StopReason != "" {
		r.CounterAdd("diospyros_saturation_stop_total",
			"Saturation outcomes by stop reason.",
			map[string]string{"reason": t.StopReason}, 1)
	}
}

// PrometheusText renders the registry in the Prometheus text exposition
// format, families sorted by name. Histograms expand to the standard
// _bucket/_sum/_count series.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	rc := r.runtime
	r.mu.Unlock()
	if rc != nil {
		// Snapshot the runtime before taking the render lock: collection
		// records through the public methods, which lock themselves.
		r.collectRuntime(rc)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var fams []promFamily
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.typ != "histogram" {
			out := promFamily{name: f.name, help: f.help, typ: f.typ}
			for _, k := range keys {
				out.samples = append(out.samples, promSample{labels: k, value: f.samples[k].value})
			}
			fams = append(fams, out)
			continue
		}
		out := promFamily{name: f.name, help: f.help, typ: "histogram"}
		for _, k := range keys {
			s := f.samples[k]
			var cum uint64
			for i, le := range f.buckets {
				cum += s.counts[i]
				out.samples = append(out.samples, promSample{suffix: "_bucket",
					labels: withLE(s.labels, formatPromValue(le)), value: float64(cum)})
			}
			cum += s.counts[len(f.buckets)]
			out.samples = append(out.samples, promSample{suffix: "_bucket",
				labels: withLE(s.labels, "+Inf"), value: float64(cum)})
			out.samples = append(out.samples,
				promSample{suffix: "_sum", labels: k, value: s.value},
				promSample{suffix: "_count", labels: k, value: float64(cum)})
		}
		fams = append(fams, out)
	}
	return renderFamilies(fams)
}

// withLE renders a sample's labels with the histogram le bound added.
func withLE(labels map[string]string, le string) string {
	m := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		m[k] = v
	}
	m["le"] = le
	return renderLabels(m)
}

// ServeHTTP makes the registry a scrape endpoint (GET /metrics).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(r.PrometheusText()))
}

// AbortError is the context-cancellation cause used by saturation
// watchdogs: aborting a compile with
// context.CancelCauseFunc(&AbortError{Reason: ...}) marks the resulting
// trace's StopReason as "aborted:<reason>" and lets servers count aborts
// per reason. Reasons are short tokens ("node-budget", "wall-budget",
// "heap-budget").
type AbortError struct {
	Reason string
}

// Error renders the abort with its reason token.
func (e *AbortError) Error() string { return "saturation aborted: " + e.Reason }
