package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	if out := r.PrometheusText(); strings.Contains(out, "go_goroutines") {
		t.Fatal("runtime metrics present before EnableRuntimeMetrics")
	}
	r.EnableRuntimeMetrics()
	runtime.GC() // guarantee at least one pause for the histogram

	out := r.PrometheusText()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"go_goroutines ",
		"# TYPE go_memstats_heap_inuse_bytes gauge",
		"go_memstats_heap_inuse_bytes ",
		"# TYPE go_gc_pause_seconds histogram",
		`go_gc_pause_seconds_bucket{le="+Inf"}`,
		"go_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// Pause observations are cumulative across scrapes, not re-counted:
	// a second scrape with no further GC keeps the same count.
	count := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "go_gc_pause_seconds_count") {
				return line
			}
		}
		return ""
	}
	first := count(out)
	second := count(r.PrometheusText())
	if first == "" || first != second {
		t.Errorf("pause count moved without GC: %q -> %q", first, second)
	}
}

func TestRuntimeMetricsNilSafe(t *testing.T) {
	var r *Registry
	r.EnableRuntimeMetrics() // must not panic
	if r.PrometheusText() != "" {
		t.Fatal("nil registry rendered output")
	}
}
