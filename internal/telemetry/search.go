package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// The flight-recorder sections of a Trace. SearchTrace distills the
// equality-saturation journal — which rules grew the e-graph, when the
// Backoff scheduler banned them, and how the best extractable cost moved —
// and ExtractionTrace records why extraction chose the program it did.
// Both are plain data: the egraph and extract packages produce their raw
// forms, the root package folds them into these types, and the HTML report
// (report.go) and SSE stream render them.

// RuleAttribution aggregates one rewrite rule's activity over a whole
// saturation run.
type RuleAttribution struct {
	Rule string `json:"rule"`
	// Matches/Applied total the rule's pattern matches and successful
	// applications across all iterations it ran.
	Matches int `json:"matches"`
	Applied int `json:"applied"`
	// NewNodes totals the e-node growth attributed to the rule's
	// applications (measured before each rebuild's deduplication).
	NewNodes int `json:"new_nodes"`
	// Duration totals the rule's search+apply wall time.
	Duration time.Duration `json:"duration"`
	// Bans counts how often the Backoff scheduler banned the rule.
	Bans int `json:"bans,omitempty"`
}

// BanSpan is one Backoff ban in the timeline: the rule sat out iterations
// [Iteration, Until).
type BanSpan struct {
	Rule string `json:"rule"`
	// Iteration is the 1-based iteration whose over-matching triggered the
	// ban; the rule's matches that iteration were discarded.
	Iteration int `json:"iteration"`
	// Until is the first 1-based iteration at which the rule runs again.
	Until int `json:"until"`
	// Matches is the offending match count.
	Matches int `json:"matches"`
	// Bans is the rule's lifetime ban count after this ban (the ban length
	// and match budget double with each).
	Bans int `json:"bans"`
}

// CostPoint is one sample of the best-cost trajectory: the cheapest
// extractable cost of the root after the given iteration.
type CostPoint struct {
	Iteration int     `json:"iteration"`
	Cost      float64 `json:"cost"`
}

// SearchTrace is the saturation flight record attached to a Trace when the
// compile ran with the journal enabled.
type SearchTrace struct {
	// Rules holds per-rule attribution, biggest node growth first.
	Rules []RuleAttribution `json:"rules,omitempty"`
	// Bans is the Backoff ban timeline in journal order.
	Bans []BanSpan `json:"bans,omitempty"`
	// BestCost is the per-iteration best-cost trajectory of the root.
	BestCost []CostPoint `json:"best_cost,omitempty"`
	// Events and EventsDropped report journal volume: Dropped > 0 means the
	// ring evicted early events and the aggregates above cover a suffix.
	Events        uint64 `json:"events"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// ExtractionDecision mirrors extract.Decision in trace-serializable form:
// the winning implementation of one e-class against its runner-up.
type ExtractionDecision struct {
	Class        int     `json:"class"`
	Winner       string  `json:"winner"`
	WinnerCost   float64 `json:"winner_cost"`
	WinnerOwn    float64 `json:"winner_own"`
	RunnerUp     string  `json:"runner_up,omitempty"`
	RunnerUpCost float64 `json:"runner_up_cost,omitempty"`
	Margin       float64 `json:"margin,omitempty"`
	Candidates   int     `json:"candidates"`
}

// ExtractionTrace is the extraction flight record: the decision trace for
// the most contested classes plus the data-movement census of the chosen
// program (shuffles vs. selects/gathers, the §4 cost-model distinction).
type ExtractionTrace struct {
	// TotalCost is the extracted program's cost under the model.
	TotalCost float64 `json:"total_cost"`
	// Classes counts e-classes in the chosen program; Contested counts
	// those that offered at least two finite-cost implementations.
	Classes   int `json:"classes"`
	Contested int `json:"contested"`
	// Decisions holds the decision trace, most contested (smallest margin)
	// first, capped at MaxDecisions.
	Decisions []ExtractionDecision `json:"decisions,omitempty"`
	// Data-movement census of the chosen Vec nodes.
	Literal     int `json:"literal,omitempty"`
	Contiguous  int `json:"contiguous,omitempty"`
	Shuffles    int `json:"shuffles,omitempty"`
	Selects     int `json:"selects,omitempty"`
	Gathers     int `json:"gathers,omitempty"`
	ScalarLanes int `json:"scalar_lanes,omitempty"`
}

// MaxDecisions caps the decision trace carried by a Trace; deeper cuts stay
// available programmatically via extract.Extractor.Decisions.
const MaxDecisions = 32

// Format renders the search flight record as text (rule table + bans).
func (s *SearchTrace) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	nameW := len("rule")
	for _, r := range s.Rules {
		if len(r.Rule) > nameW {
			nameW = len(r.Rule)
		}
	}
	fmt.Fprintf(&b, "%-*s %9s %9s %9s %12s %5s\n", nameW, "rule",
		"matches", "applied", "nodes+", "time", "bans")
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "%-*s %9d %9d %9d %12v %5d\n", nameW, r.Rule,
			r.Matches, r.Applied, r.NewNodes, r.Duration.Round(time.Microsecond), r.Bans)
	}
	for _, ban := range s.Bans {
		fmt.Fprintf(&b, "ban: %s at iteration %d (%d matches), until %d\n",
			ban.Rule, ban.Iteration, ban.Matches, ban.Until)
	}
	if s.EventsDropped > 0 {
		fmt.Fprintf(&b, "journal: %d events (%d evicted by the ring bound)\n",
			s.Events, s.EventsDropped)
	}
	return b.String()
}

// Format renders the extraction flight record as text.
func (e *ExtractionTrace) Format() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "extraction: cost %.2f over %d classes (%d contested)\n",
		e.TotalCost, e.Classes, e.Contested)
	fmt.Fprintf(&b, "movement: %d contiguous, %d shuffles, %d selects, %d gathers, %d scalar lanes\n",
		e.Contiguous, e.Shuffles, e.Selects, e.Gathers, e.ScalarLanes)
	for _, d := range e.Decisions {
		if d.RunnerUp == "" {
			continue
		}
		fmt.Fprintf(&b, "class %d: chose %s (%.2f) over %s (%.2f), margin %.2f\n",
			d.Class, d.Winner, d.WinnerCost, d.RunnerUp, d.RunnerUpCost, d.Margin)
	}
	return b.String()
}
