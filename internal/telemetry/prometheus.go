package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// promFamily is one metric family: HELP/TYPE header plus samples. It is
// the shared metrics model of the one-shot file exporter (PrometheusTexts)
// and the live scrape Registry (registry.go): both reduce their state to
// promFamily values and render through renderFamilies, so name hygiene and
// escaping behave identically in a -metrics-out dump and a /metrics scrape.
type promFamily struct {
	name, help string
	typ        string // "gauge", "counter", or "histogram"; "" means gauge
	samples    []promSample
}

type promSample struct {
	suffix string // appended to the family name ("_bucket", "_sum", ...) or ""
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// renderFamilies renders metric families in the Prometheus text exposition
// format (text/plain; version=0.0.4). Empty families are omitted.
func renderFamilies(fams []promFamily) string {
	var b strings.Builder
	for _, f := range fams {
		if len(f.samples) == 0 {
			continue
		}
		typ := f.typ
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatPromValue(s.value))
		}
	}
	return b.String()
}

// SanitizeMetricName maps an arbitrary string to a valid Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*): every invalid byte becomes '_', a
// leading digit is prefixed with '_', and an empty input becomes "_". Rule
// and kernel names are user-controlled, so every dynamic name crossing
// into a metric or label *name* position must pass through here (label
// values are instead quoted and escaped by renderLabels).
func SanitizeMetricName(s string) string {
	return sanitizeName(s, true)
}

// SanitizeLabelName is SanitizeMetricName for label names, which
// additionally forbid colons.
func SanitizeLabelName(s string) string {
	return sanitizeName(s, false)
}

func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
		default:
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// PrometheusText renders one trace in the Prometheus text exposition
// format — the -metrics-out artifact. See PrometheusTexts for the
// multi-kernel form; the trace name, when non-empty, becomes a
// kernel="name" label on every sample.
func (t *Trace) PrometheusText(name string) string {
	return PrometheusTexts([]NamedTrace{{Name: name, Trace: t}})
}

// PrometheusTexts renders traces in the Prometheus text exposition format
// (text/plain; version=0.0.4): each metric family appears once with its
// HELP/TYPE header, with one sample per trace labelled kernel="<name>".
// All metrics are gauges: a compilation is an event, not a process, so the
// values are point-in-time readings of its trace.
func PrometheusTexts(traces []NamedTrace) string {
	fams := []promFamily{
		{name: "diospyros_compile_duration_seconds", help: "End-to-end compile wall time."},
		{name: "diospyros_compile_alloc_bytes", help: "Heap allocated during the compile (runtime TotalAlloc delta)."},
		{name: "diospyros_stage_duration_seconds", help: "Per-stage wall time."},
		{name: "diospyros_stage_alloc_bytes", help: "Per-stage heap allocation."},
		{name: "diospyros_saturation_iterations", help: "Equality-saturation iterations run."},
		{name: "diospyros_saturation_nodes", help: "E-graph nodes after the final iteration."},
		{name: "diospyros_saturation_classes", help: "E-graph classes after the final iteration."},
		{name: "diospyros_counter", help: "Free-form compilation counters."},
	}
	idx := map[string]*promFamily{}
	for i := range fams {
		idx[fams[i].name] = &fams[i]
	}
	add := func(fam string, labels map[string]string, v float64) {
		f := idx[fam]
		f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: v})
	}

	for _, nt := range traces {
		t := nt.Trace
		if t == nil {
			continue
		}
		base := map[string]string{}
		if nt.Name != "" {
			base["kernel"] = nt.Name
		}
		with := func(k, v string) map[string]string {
			m := map[string]string{k: v}
			for bk, bv := range base {
				m[bk] = bv
			}
			return m
		}
		add("diospyros_compile_duration_seconds", base, t.Duration.Seconds())
		add("diospyros_compile_alloc_bytes", base, float64(t.AllocBytes))
		for _, s := range t.Stages {
			add("diospyros_stage_duration_seconds", with("stage", s.Name), s.Duration.Seconds())
			add("diospyros_stage_alloc_bytes", with("stage", s.Name), float64(s.AllocBytes))
		}
		add("diospyros_saturation_iterations", base, float64(len(t.Iterations)))
		if g, ok := t.FinalGauge(); ok {
			add("diospyros_saturation_nodes", base, float64(g.Nodes))
			add("diospyros_saturation_classes", base, float64(g.Classes))
		}
		names := make([]string, 0, len(t.Counters))
		for n := range t.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			add("diospyros_counter", with("name", n), float64(t.Counters[n]))
		}
	}

	return renderFamilies(fams)
}

// renderLabels renders a label set as {k="v",...} with keys sorted. Label
// names are sanitized (they cannot be quoted), and Go's %q escaping of the
// values matches the exposition format's rules for backslash, quote, and
// newline.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", SanitizeLabelName(k), labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// formatPromValue renders a float without exponent noise for integers.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
