// Package pipeline drives a staged compilation: an ordered list of named
// stages sharing one mutable state value and one context.Context. Each
// stage runs under a telemetry span (wall time + alloc delta), the context
// is checked between stages so an external cancellation stops the compile
// at the next stage boundary (stages that can block long, like equality
// saturation, additionally honor the context internally), and a failing
// stage aborts the run with its name attached to the error.
//
// The package is generic over the state type so the compiler, the bench
// harness, and future servers can each define their own state without
// this package importing any of them.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"diospyros/internal/telemetry"
)

// Stage is one named step of a pipeline.
type Stage[S any] struct {
	// Name labels the stage in telemetry spans and errors.
	Name string
	// Skip, when non-nil and true for the state, omits the stage (no
	// span is recorded).
	Skip func(S) bool
	// Run does the work. It receives the pipeline's context and must
	// return promptly once ctx is cancelled if it blocks for long.
	Run func(ctx context.Context, state S) error
}

// StageError wraps a stage failure with the stage's name.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("%s: %v", e.Stage, e.Err) }

func (e *StageError) Unwrap() error { return e.Err }

// Pipeline is an immutable ordered stage list.
type Pipeline[S any] struct {
	stages []Stage[S]
}

// New builds a pipeline from stages, run in the given order.
func New[S any](stages ...Stage[S]) *Pipeline[S] {
	for _, s := range stages {
		if s.Name == "" || s.Run == nil {
			panic("pipeline: stage needs a name and a Run function")
		}
	}
	return &Pipeline[S]{stages: stages}
}

// Stages returns the stage names in execution order.
func (p *Pipeline[S]) Stages() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name
	}
	return names
}

// Run executes the stages in order against state, recording one telemetry
// span per executed stage on rec (which may be nil). It stops at the first
// failing stage, or before the next stage once ctx is cancelled, returning
// a *StageError either way.
//
// When the context carries a structured logger (telemetry.WithLogger, as
// the serve layer and the CLIs' -log flags attach), every executed stage
// emits a debug line with its duration — and a warn line on failure — so
// per-request logs show stage-level progress without any stage knowing
// about logging.
func (p *Pipeline[S]) Run(ctx context.Context, state S, rec *telemetry.Recorder) error {
	if ctx == nil {
		ctx = context.Background()
	}
	log := telemetry.LoggerFrom(ctx)
	for _, st := range p.stages {
		if ctx.Err() != nil {
			// context.Cause preserves a CancelCause (e.g. a watchdog's
			// AbortError) that plain ctx.Err() would flatten to Canceled.
			err := context.Cause(ctx)
			log.Warn("pipeline cancelled", "stage", st.Name, "err", err)
			return &StageError{Stage: st.Name, Err: err}
		}
		if st.Skip != nil && st.Skip(state) {
			continue
		}
		span := rec.StartSpan(st.Name)
		start := time.Now()
		err := st.Run(ctx, state)
		span.End()
		if err != nil {
			log.Warn("stage failed", "stage", st.Name,
				"duration", time.Since(start), "err", err)
			return &StageError{Stage: st.Name, Err: err}
		}
		log.Debug("stage complete", "stage", st.Name, "duration", time.Since(start))
	}
	return nil
}
