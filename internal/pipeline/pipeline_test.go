package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"diospyros/internal/telemetry"
)

type state struct{ log []string }

func appendStage(name string) Stage[*state] {
	return Stage[*state]{Name: name, Run: func(_ context.Context, s *state) error {
		s.log = append(s.log, name)
		return nil
	}}
}

func TestRunInOrderWithSpans(t *testing.T) {
	p := New(appendStage("a"), appendStage("b"), appendStage("c"))
	s := &state{}
	rec := telemetry.NewRecorder()
	if err := p.Run(context.Background(), s, rec); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.log); got != "[a b c]" {
		t.Fatalf("ran %v", s.log)
	}
	tr := rec.Finish()
	if len(tr.Stages) != 3 || tr.Stages[0].Name != "a" || tr.Stages[2].Name != "c" {
		t.Fatalf("spans = %+v", tr.Stages)
	}
	if got := fmt.Sprint(p.Stages()); got != "[a b c]" {
		t.Fatalf("Stages() = %v", p.Stages())
	}
}

func TestSkipOmitsStageAndSpan(t *testing.T) {
	skip := appendStage("b")
	skip.Skip = func(*state) bool { return true }
	p := New(appendStage("a"), skip, appendStage("c"))
	s := &state{}
	rec := telemetry.NewRecorder()
	if err := p.Run(context.Background(), s, rec); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.log); got != "[a c]" {
		t.Fatalf("ran %v", s.log)
	}
	if _, ok := rec.Finish().Stage("b"); ok {
		t.Error("skipped stage recorded a span")
	}
}

func TestStageErrorStopsRun(t *testing.T) {
	boom := errors.New("boom")
	p := New(appendStage("a"),
		Stage[*state]{Name: "bad", Run: func(context.Context, *state) error { return boom }},
		appendStage("c"))
	s := &state{}
	err := p.Run(context.Background(), s, nil)
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "bad" || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := fmt.Sprint(s.log); got != "[a]" {
		t.Fatalf("ran %v after failure", s.log)
	}
}

func TestCancelledContextStopsBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(
		Stage[*state]{Name: "a", Run: func(_ context.Context, s *state) error {
			s.log = append(s.log, "a")
			cancel() // cancelled mid-pipeline: next stage must not run
			return nil
		}},
		appendStage("b"))
	s := &state{}
	err := p.Run(ctx, s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "b" {
		t.Fatalf("err = %v, want StageError for b", err)
	}
	if got := fmt.Sprint(s.log); got != "[a]" {
		t.Fatalf("ran %v", s.log)
	}
}

func TestNilContextAndNilRecorder(t *testing.T) {
	p := New(appendStage("a"))
	s := &state{}
	if err := p.Run(nil, s, nil); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal(err)
	}
	if len(s.log) != 1 {
		t.Fatalf("ran %v", s.log)
	}
}

func TestNewRejectsAnonymousStage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nameless stage")
		}
	}()
	New(Stage[*state]{Run: func(context.Context, *state) error { return nil }})
}
