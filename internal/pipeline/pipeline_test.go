package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"diospyros/internal/telemetry"
)

type state struct{ log []string }

func appendStage(name string) Stage[*state] {
	return Stage[*state]{Name: name, Run: func(_ context.Context, s *state) error {
		s.log = append(s.log, name)
		return nil
	}}
}

func TestRunInOrderWithSpans(t *testing.T) {
	p := New(appendStage("a"), appendStage("b"), appendStage("c"))
	s := &state{}
	rec := telemetry.NewRecorder()
	if err := p.Run(context.Background(), s, rec); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.log); got != "[a b c]" {
		t.Fatalf("ran %v", s.log)
	}
	tr := rec.Finish()
	if len(tr.Stages) != 3 || tr.Stages[0].Name != "a" || tr.Stages[2].Name != "c" {
		t.Fatalf("spans = %+v", tr.Stages)
	}
	if got := fmt.Sprint(p.Stages()); got != "[a b c]" {
		t.Fatalf("Stages() = %v", p.Stages())
	}
}

func TestSkipOmitsStageAndSpan(t *testing.T) {
	skip := appendStage("b")
	skip.Skip = func(*state) bool { return true }
	p := New(appendStage("a"), skip, appendStage("c"))
	s := &state{}
	rec := telemetry.NewRecorder()
	if err := p.Run(context.Background(), s, rec); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.log); got != "[a c]" {
		t.Fatalf("ran %v", s.log)
	}
	if _, ok := rec.Finish().Stage("b"); ok {
		t.Error("skipped stage recorded a span")
	}
}

func TestStageErrorStopsRun(t *testing.T) {
	boom := errors.New("boom")
	p := New(appendStage("a"),
		Stage[*state]{Name: "bad", Run: func(context.Context, *state) error { return boom }},
		appendStage("c"))
	s := &state{}
	err := p.Run(context.Background(), s, nil)
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "bad" || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := fmt.Sprint(s.log); got != "[a]" {
		t.Fatalf("ran %v after failure", s.log)
	}
}

func TestCancelledContextStopsBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(
		Stage[*state]{Name: "a", Run: func(_ context.Context, s *state) error {
			s.log = append(s.log, "a")
			cancel() // cancelled mid-pipeline: next stage must not run
			return nil
		}},
		appendStage("b"))
	s := &state{}
	err := p.Run(ctx, s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "b" {
		t.Fatalf("err = %v, want StageError for b", err)
	}
	if got := fmt.Sprint(s.log); got != "[a]" {
		t.Fatalf("ran %v", s.log)
	}
}

// TestCancelMidStageReturnsPromptly models a long-blocking stage (like
// equality saturation) that honors its context: cancelling while the stage
// runs must surface ctx.Err() quickly instead of waiting the stage out.
func TestCancelMidStageReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	p := New(
		Stage[*state]{Name: "block", Run: func(ctx context.Context, _ *state) error {
			close(entered)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return errors.New("stage outlived its context")
			}
		}},
		appendStage("after"))
	go func() {
		<-entered
		cancel()
	}()

	s := &state{}
	start := time.Now()
	err := p.Run(ctx, s, telemetry.NewRecorder())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "block" {
		t.Fatalf("err = %v, want StageError for the blocking stage", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(s.log) != 0 {
		t.Fatalf("stages after the cancelled one ran: %v", s.log)
	}
}

// TestStageLoggingFromContext checks the context-carried logger receives
// one debug line per executed stage, tagged with the request ID.
func TestStageLoggingFromContext(t *testing.T) {
	var buf bytes.Buffer
	ctx := telemetry.WithLogger(context.Background(),
		telemetry.NewLogger(&buf, slog.LevelDebug, true))
	ctx = telemetry.WithRequestID(ctx, "r1")

	p := New(appendStage("a"), appendStage("b"))
	if err := p.Run(ctx, &state{}, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, want := range []string{"a", "b"} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["stage"] != want || rec["msg"] != "stage complete" || rec["request_id"] != "r1" {
			t.Errorf("line %d = %v", i, rec)
		}
	}
}

func TestNilContextAndNilRecorder(t *testing.T) {
	p := New(appendStage("a"))
	s := &state{}
	if err := p.Run(nil, s, nil); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal(err)
	}
	if len(s.log) != 1 {
		t.Fatalf("ran %v", s.log)
	}
}

func TestNewRejectsAnonymousStage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nameless stage")
		}
	}()
	New(Stage[*state]{Run: func(context.Context, *state) error { return nil }})
}
