// Package eigenlite is a portable linear-algebra library in the role of
// Eigen in the paper's evaluation (§5.2, §5.7): idiomatic, size-templated
// scalar code with no target-specific intrinsics. Kernels are expressed in
// the frontend language (instantiated per size, the way C++ templates are)
// and compiled for FG3-lite by the baseline compiler; host float64
// reference implementations back the numerical tests and the Theia case
// study.
package eigenlite

import (
	"fmt"

	"diospyros/internal/frontend"
	"diospyros/internal/isa"
	"diospyros/internal/kcc"
	"diospyros/internal/sim"
)

// MatMulSrc instantiates the library's m×n · n×p matrix product.
// Accumulation happens in a register temporary (Eigen's expression
// templates produce this form), unlike the naive reference which
// accumulates through memory.
func MatMulSrc(m, n, p int) string {
	return fmt.Sprintf(`
kernel eigen_matmul(a[%d][%d], b[%d][%d]) -> (c[%d][%d]) {
    for i in 0..%d {
        for j in 0..%d {
            let acc = 0.0;
            for k in 0..%d {
                acc = acc + a[i][k] * b[k][j];
            }
            c[i][j] = acc;
        }
    }
}
`, m, n, n, p, m, p, m, p, n)
}

// Conv2DSrc instantiates the library's padded 2-D convolution (same
// semantics as the paper's §2 kernel).
func Conv2DSrc(ir, ic, fr, fc int) string {
	or, oc := ir+fr-1, ic+fc-1
	return fmt.Sprintf(`
kernel eigen_conv2d(i[%d][%d], f[%d][%d]) -> (o[%d][%d]) {
    for oRow in 0..%d {
        for oCol in 0..%d {
            let acc = 0.0;
            for fRow in 0..%d {
                for fCol in 0..%d {
                    let fRT = %d - 1 - fRow;
                    let fCT = %d - 1 - fCol;
                    let iRow = oRow - fRT;
                    let iCol = oCol - fCT;
                    if iRow >= 0 && iRow < %d && iCol >= 0 && iCol < %d {
                        acc = acc + i[iRow][iCol] * f[fRT][fCT];
                    }
                }
            }
            o[oRow][oCol] = acc;
        }
    }
}
`, ir, ic, fr, fc, or, oc, or, oc, fr, fc, fr, fc, ir, ic)
}

// QProdSrc is the library's Euclidean Lie group product (two rigid
// transforms as quaternion+translation; quaternions stored (w,x,y,z)).
const QProdSrc = `
kernel eigen_qprod(aq[4], at[3], bq[4], bt[3]) -> (rq[4], rt[3]) {
    let w1 = aq[0]; let x1 = aq[1]; let y1 = aq[2]; let z1 = aq[3];
    let w2 = bq[0]; let x2 = bq[1]; let y2 = bq[2]; let z2 = bq[3];
    rq[0] = w1*w2 - x1*x2 - y1*y2 - z1*z2;
    rq[1] = w1*x2 - z1*y2 + x1*w2 + y1*z2;
    rq[2] = w1*y2 - x1*z2 + y1*w2 + z1*x2;
    rq[3] = w1*z2 + x1*y2 - y1*x2 + z1*w2;
    var inner[3];
    inner[0] = y1*bt[2] - z1*bt[1] + w1*bt[0];
    inner[1] = z1*bt[0] - x1*bt[2] + w1*bt[1];
    inner[2] = x1*bt[1] - y1*bt[0] + w1*bt[2];
    var outer[3];
    outer[0] = y1*inner[2] - z1*inner[1];
    outer[1] = z1*inner[0] - x1*inner[2];
    outer[2] = x1*inner[1] - y1*inner[0];
    for k in 0..3 {
        rt[k] = bt[k] + 2.0*outer[k] + at[k];
    }
}
`

// QRSrc instantiates the library's n×n Householder QR decomposition
// (A = Q·R), the same algorithm as the lifted Diospyros kernel (§5.7).
// Faithful to Eigen's HouseholderQR numerics, each pivot column norm is a
// *stable* norm: a scan for the largest magnitude, a scaled
// sum-of-squares, and a rescale — robustness the template library pays for
// on every call and a specialized kernel does not need (a large part of
// why the paper finds Eigen's 3×3 QR dominating the camera-model profile).
func QRSrc(n int) string {
	return fmt.Sprintf(`
kernel eigen_qr(a[%d][%d]) -> (q[%d][%d], r[%d][%d]) {
    for i in 0..%d {
        for j in 0..%d {
            r[i][j] = a[i][j];
            if i == j {
                q[i][j] = 1.0;
            } else {
                q[i][j] = 0.0;
            }
        }
    }
    var v[%d];
    for k in 0..%d {
        let scale = 0.000000000000000000001;
        for i in k..%d {
            let m = abs(r[i][k]);
            if m > scale {
                scale = m;
            }
        }
        let norm2 = 0.0;
        for i in k..%d {
            let x = r[i][k] / scale;
            norm2 = norm2 + x * x;
        }
        let alpha = 0.0 - sgn(r[k][k]) * scale * sqrt(norm2);
        for i in 0..%d {
            if i < k {
                v[i] = 0.0;
            } else if i == k {
                v[i] = r[k][k] - alpha;
            } else {
                v[i] = r[i][k];
            }
        }
        let vnorm2 = 0.0;
        for i in k..%d {
            vnorm2 = vnorm2 + v[i] * v[i];
        }
        let beta = 2.0 / vnorm2;
        for j in 0..%d {
            let dot = 0.0;
            for i in k..%d {
                dot = dot + v[i] * r[i][j];
            }
            let s = beta * dot;
            for i in k..%d {
                r[i][j] = r[i][j] - v[i] * s;
            }
        }
        for i in 0..%d {
            let dot = 0.0;
            for j in k..%d {
                dot = dot + q[i][j] * v[j];
            }
            let s = beta * dot;
            for j in k..%d {
                q[i][j] = q[i][j] - v[j] * s;
            }
        }
    }
}
`, n, n, n, n, n, n, n, n, n, n-1, n, n, n, n, n, n, n, n, n, n)
}

// Routine is a compiled library routine ready to simulate.
type Routine struct {
	Kernel  *frontend.Kernel
	Program *isa.Program
}

// Build parses and compiles a library source in the given mode.
func Build(src string, mode kcc.Mode) (*Routine, error) {
	k, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := kcc.Compile(k, mode)
	if err != nil {
		return nil, err
	}
	return &Routine{Kernel: k, Program: p}, nil
}

// MustBuild is Build, panicking on error (sources are package constants).
func MustBuild(src string, mode kcc.Mode) *Routine {
	r, err := Build(src, mode)
	if err != nil {
		panic(err)
	}
	return r
}

// Run simulates the routine on the given inputs.
func (r *Routine) Run(inputs map[string][]float64) (map[string][]float64, *sim.Result, error) {
	mem := make([]float64, r.Program.Layout.Size())
	for _, prm := range r.Kernel.Params {
		data, ok := inputs[prm.Name]
		if !ok {
			return nil, nil, fmt.Errorf("eigenlite: missing input %q", prm.Name)
		}
		if len(data) != prm.Len() {
			return nil, nil, fmt.Errorf("eigenlite: input %q has %d elements, want %d", prm.Name, len(data), prm.Len())
		}
		copy(mem[r.Program.Layout.Base(prm.Name):], data)
	}
	res, err := sim.Run(r.Program, mem, sim.Defaults())
	if err != nil {
		return nil, nil, err
	}
	out := map[string][]float64{}
	for _, prm := range r.Kernel.Outs {
		b := r.Program.Layout.Base(prm.Name)
		out[prm.Name] = append([]float64(nil), res.Mem[b:b+prm.Len()]...)
	}
	return out, res, nil
}
