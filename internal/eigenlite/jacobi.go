package eigenlite

import (
	"fmt"
	"math"
)

// JacobiSrc instantiates a cyclic-Jacobi symmetric eigendecomposition of an
// n×n matrix: A = V · diag(vals) · Vᵀ. The sweep loop iterates until the
// off-diagonal norm falls below tolerance — data-dependent control flow, so
// this routine exists only in the scalar library (it cannot be lifted or
// unrolled), exactly the situation §5.7 describes for the SVD part of the
// Theia camera model.
func JacobiSrc(n int) string {
	return fmt.Sprintf(`
kernel eigen_jacobi(a[%d][%d]) -> (vals[%d], vecs[%d][%d]) {
    var m[%d][%d];
    for i in 0..%d {
        for j in 0..%d {
            m[i][j] = a[i][j];
            vecs[i][j] = 0.0;
        }
        vecs[i][i] = 1.0;
    }
    let off = 1.0;
    let sweeps = 0;
    while off > 0.000000000001 && sweeps < 60 {
        for p in 0..%d {
            for q in p+1..%d {
                let apq = m[p][q];
                if abs(apq) > 0.0000000000001 {
                    let theta = (m[q][q] - m[p][p]) / (2.0 * apq);
                    let tt = sgn(theta) / (abs(theta) + sqrt(theta*theta + 1.0));
                    let cc = 1.0 / sqrt(tt*tt + 1.0);
                    let ss = tt * cc;
                    for k in 0..%d {
                        let mkp = m[k][p];
                        let mkq = m[k][q];
                        m[k][p] = cc*mkp - ss*mkq;
                        m[k][q] = ss*mkp + cc*mkq;
                    }
                    for k in 0..%d {
                        let mpk = m[p][k];
                        let mqk = m[q][k];
                        m[p][k] = cc*mpk - ss*mqk;
                        m[q][k] = ss*mpk + cc*mqk;
                    }
                    for k in 0..%d {
                        let vkp = vecs[k][p];
                        let vkq = vecs[k][q];
                        vecs[k][p] = cc*vkp - ss*vkq;
                        vecs[k][q] = ss*vkp + cc*vkq;
                    }
                }
            }
        }
        off = 0.0;
        for i in 0..%d {
            for j in 0..%d {
                if i != j {
                    off = off + m[i][j]*m[i][j];
                }
            }
        }
        sweeps = sweeps + 1;
    }
    for i in 0..%d {
        vals[i] = m[i][i];
    }
}
`, n, n, n, n, n, n, n, n, n, n-1, n, n, n, n, n, n, n)
}

// mixed int/float condition: `off > eps && sweeps < 60` exercises the
// short-circuit compilation path in kcc.

// JacobiEigenRef is the host reference: symmetric eigendecomposition by
// cyclic Jacobi rotations. Returns eigenvalues and the eigenvector matrix V
// (columns are eigenvectors), both unordered.
func JacobiEigenRef(n int, a []float64) (vals []float64, vecs []float64) {
	m := append([]float64(nil), a...)
	vecs = make([]float64, n*n)
	for i := 0; i < n; i++ {
		vecs[i*n+i] = 1
	}
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					off += m[i*n+j] * m[i*n+j]
				}
			}
		}
		if off <= 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) <= 1e-13 {
					continue
				}
				theta := (m[q*n+q] - m[p*n+p]) / (2 * apq)
				t := sign(theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*mkp - s*mkq
					m[k*n+q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*mpk - s*mqk
					m[q*n+k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k*n+p], vecs[k*n+q]
					vecs[k*n+p] = c*vkp - s*vkq
					vecs[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i*n+i]
	}
	return vals, vecs
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// RQ3x3Ref is the host reference RQ decomposition: M = R·Q with R upper
// triangular and Q orthogonal, computed from a QR decomposition of the
// row-reversed transpose (the reduction used by Theia's camera model, whose
// hot inner kernel is the 3×3 QR that §5.7 swaps for Diospyros code).
//
// With E the exchange (anti-identity) matrix: M̃ = (E·M)ᵀ; M̃ = Q̃·R̃;
// then R = E·R̃ᵀ·E and Q = E·Q̃ᵀ.
func RQ3x3Ref(m []float64, qr func(a []float64) (q, r []float64)) (rOut, qOut []float64) {
	const n = 3
	// M̃ = (E·M)ᵀ, i.e. M̃[i][j] = M[n-1-j][i].
	mt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mt[i*n+j] = m[(n-1-j)*n+i]
		}
	}
	qt, rt := qr(mt)
	rOut = make([]float64, n*n)
	qOut = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// R = E·R̃ᵀ·E: R[i][j] = R̃[n-1-j][n-1-i]
			rOut[i*n+j] = rt[(n-1-j)*n+(n-1-i)]
			// Q = E·Q̃ᵀ: Q[i][j] = Q̃[j][n-1-i]
			qOut[i*n+j] = qt[j*n+(n-1-i)]
		}
	}
	return rOut, qOut
}
