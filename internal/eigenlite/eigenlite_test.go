package eigenlite

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/kcc"
	"diospyros/internal/kernels"
)

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*4 - 2
	}
	return s
}

func TestMatMulRoutine(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, sz := range [][3]int{{2, 3, 3}, {4, 4, 4}, {8, 8, 8}} {
		m, n, p := sz[0], sz[1], sz[2]
		rt, err := Build(MatMulSrc(m, n, p), kcc.Parametric)
		if err != nil {
			t.Fatalf("%v: %v", sz, err)
		}
		a, b := randSlice(r, m*n), randSlice(r, n*p)
		out, res, err := rt.Run(map[string][]float64{"a": a, "b": b})
		if err != nil {
			t.Fatal(err)
		}
		want := kernels.MatMulRef(m, n, p, a, b)
		for i := range want {
			if math.Abs(out["c"][i]-want[i]) > 1e-9 {
				t.Fatalf("%v: c[%d] = %g want %g", sz, i, out["c"][i], want[i])
			}
		}
		if res.Cycles == 0 {
			t.Fatal("no cycles")
		}
	}
}

func TestConv2DRoutine(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, sz := range [][4]int{{3, 5, 3, 3}, {8, 8, 3, 3}} {
		ir, ic, fr, fc := sz[0], sz[1], sz[2], sz[3]
		rt, err := Build(Conv2DSrc(ir, ic, fr, fc), kcc.Parametric)
		if err != nil {
			t.Fatal(err)
		}
		in, f := randSlice(r, ir*ic), randSlice(r, fr*fc)
		out, _, err := rt.Run(map[string][]float64{"i": in, "f": f})
		if err != nil {
			t.Fatal(err)
		}
		want := kernels.Conv2DRef(ir, ic, fr, fc, in, f)
		for i := range want {
			if math.Abs(out["o"][i]-want[i]) > 1e-9 {
				t.Fatalf("%v: o[%d] = %g want %g", sz, i, out["o"][i], want[i])
			}
		}
	}
}

func TestQProdRoutine(t *testing.T) {
	rt, err := Build(QProdSrc, kcc.Parametric)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	aq, at := randSlice(r, 4), randSlice(r, 3)
	bq, bt := randSlice(r, 4), randSlice(r, 3)
	out, _, err := rt.Run(map[string][]float64{"aq": aq, "at": at, "bq": bq, "bt": bt})
	if err != nil {
		t.Fatal(err)
	}
	rq, rtv := kernels.QProdRef(aq, at, bq, bt)
	for i := range rq {
		if math.Abs(out["rq"][i]-rq[i]) > 1e-9 {
			t.Fatalf("rq[%d] = %g want %g", i, out["rq"][i], rq[i])
		}
	}
	for i := range rtv {
		if math.Abs(out["rt"][i]-rtv[i]) > 1e-9 {
			t.Fatalf("rt[%d] = %g want %g", i, out["rt"][i], rtv[i])
		}
	}
}

func TestQRRoutineMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 3, 4} {
		rt, err := Build(QRSrc(n), kcc.Parametric)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a := randSlice(r, n*n)
		out, _, err := rt.Run(map[string][]float64{"a": a})
		if err != nil {
			t.Fatal(err)
		}
		q, rr := kernels.QRDecompRef(n, a)
		for i := range q {
			if math.Abs(out["q"][i]-q[i]) > 1e-8 {
				t.Fatalf("n=%d q[%d] = %g want %g", n, i, out["q"][i], q[i])
			}
		}
		for i := range rr {
			if math.Abs(out["r"][i]-rr[i]) > 1e-8 {
				t.Fatalf("n=%d r[%d] = %g want %g", n, i, out["r"][i], rr[i])
			}
		}
	}
}

func TestJacobiRefDiagonalizes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 4} {
		// Symmetric matrix.
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.Float64()*4 - 2
				a[i*n+j] = v
				a[j*n+i] = v
			}
		}
		vals, vecs := JacobiEigenRef(n, a)
		// A·v_k = λ_k·v_k for each eigenpair.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a[i*n+j] * vecs[j*n+k]
				}
				if math.Abs(av-vals[k]*vecs[i*n+k]) > 1e-6 {
					t.Fatalf("n=%d eigenpair %d violated: %g vs %g", n, k, av, vals[k]*vecs[i*n+k])
				}
			}
		}
	}
}

func TestJacobiRoutineMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 4
	rt, err := Build(JacobiSrc(n), kcc.Parametric)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Float64()*4 - 2
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	out, res, err := rt.Run(map[string][]float64{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs := JacobiEigenRef(n, a)
	for i := range vals {
		if math.Abs(out["vals"][i]-vals[i]) > 1e-6 {
			t.Fatalf("vals[%d] = %g want %g", i, out["vals"][i], vals[i])
		}
	}
	for i := range vecs {
		if math.Abs(out["vecs"][i]-vecs[i]) > 1e-6 {
			t.Fatalf("vecs[%d] = %g want %g", i, out["vecs"][i], vecs[i])
		}
	}
	if res.Cycles < 1000 {
		t.Fatalf("Jacobi suspiciously cheap: %d cycles", res.Cycles)
	}
	// Data-dependent control flow: must not compile fixed-size.
	if _, err := Build(JacobiSrc(n), kcc.FixedSize); err == nil {
		t.Fatal("fixed-size mode accepted the Jacobi sweep loop")
	}
}

func TestRQ3x3Ref(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	qr := func(a []float64) (q, rr []float64) { return kernels.QRDecompRef(3, a) }
	for trial := 0; trial < 10; trial++ {
		m := randSlice(r, 9)
		rr, q := RQ3x3Ref(m, qr)
		// M = R·Q.
		prod := kernels.MatMulRef(3, 3, 3, rr, q)
		for i := range m {
			if math.Abs(prod[i]-m[i]) > 1e-8 {
				t.Fatalf("R*Q != M at %d: %g vs %g", i, prod[i], m[i])
			}
		}
		// R upper triangular.
		for i := 1; i < 3; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(rr[i*3+j]) > 1e-8 {
					t.Fatalf("R[%d][%d] = %g", i, j, rr[i*3+j])
				}
			}
		}
		// Q orthogonal.
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				dot := 0.0
				for k := 0; k < 3; k++ {
					dot += q[i*3+k] * q[j*3+k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("QQt[%d][%d] = %g", i, j, dot)
				}
			}
		}
	}
}
