package egraph

import (
	"fmt"
	"sort"
	"strings"

	"diospyros/internal/expr"
)

// ToDot renders the e-graph in Graphviz dot syntax, with one cluster per
// equivalence class (the visual convention of the paper's Figure 4 and the
// egg tooling). Intended for debugging rewrite rules:
//
//	go run ./cmd/diospyros -dump-egraph kernel.dios | dot -Tsvg > egraph.svg
func (g *EGraph) ToDot() string {
	var b strings.Builder
	b.WriteString("digraph egraph {\n")
	b.WriteString("  compound=true;\n  node [shape=record, fontsize=10];\n")

	type nodeRef struct {
		class ClassID
		idx   int
	}
	// Pick one representative node per class for edge targets.
	rep := map[ClassID]string{}
	var classes []*EClass
	g.Classes(func(cls *EClass) { classes = append(classes, cls) })
	sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
	for _, cls := range classes {
		if len(cls.Nodes) > 0 {
			rep[cls.ID] = fmt.Sprintf("n%d_0", cls.ID)
		}
	}

	var edges []string
	for _, cls := range classes {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", cls.ID)
		fmt.Fprintf(&b, "    label=\"class %d\"; style=dashed;\n", cls.ID)
		for i, n := range cls.Nodes {
			name := fmt.Sprintf("n%d_%d", cls.ID, i)
			fmt.Fprintf(&b, "    %s [label=\"%s\"];\n", name, g.dotLabel(n))
			for ai, a := range n.Args {
				target, ok := rep[g.Find(a)]
				if !ok {
					continue
				}
				edges = append(edges, fmt.Sprintf(
					"  %s -> %s [lhead=cluster_%d, label=\"%d\", fontsize=8];",
					name, target, g.Find(a), ai))
			}
		}
		b.WriteString("  }\n")
	}
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

func (g *EGraph) dotLabel(n ENode) string {
	var s string
	switch n.Op {
	case expr.OpLit:
		s = fmt.Sprintf("%g", n.Lit)
	case expr.OpSym:
		s = g.syms.Name(n.Sym)
	case expr.OpGet:
		s = fmt.Sprintf("Get %s %d", g.syms.Name(n.Sym), n.Idx)
	case expr.OpFunc, expr.OpVecFunc:
		s = n.Op.String() + " " + g.syms.Name(n.Sym)
	default:
		s = n.Op.String()
	}
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
