package egraph

import (
	"fmt"
	"strings"
	"testing"

	"diospyros/internal/expr"
)

// saturationWorkload builds a deep sum-of-products expression and a rule
// set (distribution, commutativity, associativity) whose match counts grow
// quickly — a proxy for the large-kernel saturation runs whose apply-phase
// throughput the runner's cancellation checks must not tax.
func saturationWorkload(depth int) (*expr.Expr, []Rewrite) {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "(+ (* x%d y%d) ", i, i)
	}
	b.WriteString("z")
	b.WriteString(strings.Repeat(")", depth))
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("commute-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("commute-mul", "(* ?a ?b)", "(* ?b ?a)"),
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
	}
	return expr.MustParse(b.String()), rules
}

// BenchmarkSaturationThroughput measures raw runner throughput (applies/s)
// on an explosive workload. Guards the amortized deadline/cancellation
// check in the apply loop: per-apply bookkeeping shows up directly here.
func BenchmarkSaturationThroughput(b *testing.B) {
	e, rules := saturationWorkload(12)
	var applied int
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddExpr(e)
		rep := Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000})
		applied = rep.Applied
	}
	b.ReportMetric(float64(applied), "applies")
	b.ReportMetric(float64(applied)*float64(b.N)/b.Elapsed().Seconds(), "applies/s")
}

// BenchmarkSaturationThroughputProvenance is the same workload with
// provenance recording enabled — the measured cost of -explain. Compare
// against BenchmarkSaturationThroughput, which (recording disabled) pays
// only a nil check per Add/Union.
func BenchmarkSaturationThroughputProvenance(b *testing.B) {
	e, rules := saturationWorkload(12)
	var applied int
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddExpr(e)
		g.EnableProvenance()
		rep := Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000})
		applied = rep.Applied
	}
	b.ReportMetric(float64(applied), "applies")
	b.ReportMetric(float64(applied)*float64(b.N)/b.Elapsed().Seconds(), "applies/s")
}
