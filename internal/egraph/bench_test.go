package egraph

import (
	"fmt"
	"strings"
	"testing"

	"diospyros/internal/expr"
)

// saturationWorkload builds a deep sum-of-products expression and a rule
// set (distribution, commutativity, associativity) whose match counts grow
// quickly — a proxy for the large-kernel saturation runs whose apply-phase
// throughput the runner's cancellation checks must not tax.
func saturationWorkload(depth int) (*expr.Expr, []Rewrite) {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "(+ (* x%d y%d) ", i, i)
	}
	b.WriteString("z")
	b.WriteString(strings.Repeat(")", depth))
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("commute-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("commute-mul", "(* ?a ?b)", "(* ?b ?a)"),
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
	}
	return expr.MustParse(b.String()), rules
}

// BenchmarkSaturationThroughput measures raw runner throughput (applies/s)
// on an explosive workload. Guards the amortized deadline/cancellation
// check in the apply loop: per-apply bookkeeping shows up directly here.
func BenchmarkSaturationThroughput(b *testing.B) {
	e, rules := saturationWorkload(12)
	var applied int
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddExpr(e)
		rep := Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000})
		applied = rep.Applied
	}
	b.ReportMetric(float64(applied), "applies")
	b.ReportMetric(float64(applied)*float64(b.N)/b.Elapsed().Seconds(), "applies/s")
}

// BenchmarkSaturateSerial measures one full serial saturation run
// (MatchWorkers=1) of the explosive workload — the end-to-end number the
// §14 data-layout work (interned symbols, binary hashcons, indexed
// dispatch) moves. allocs/op here is dominated by hashcons probes.
func BenchmarkSaturateSerial(b *testing.B) {
	e, rules := saturationWorkload(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddExpr(e)
		Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000, MatchWorkers: 1})
	}
}

// BenchmarkMatchPhase isolates the read-only match phase on a saturated
// graph: one indexed search of every rule over every canonical class, the
// inner loop the head-op dispatch index (DESIGN.md §14) prunes.
func BenchmarkMatchPhase(b *testing.B) {
	e, rules := saturationWorkload(12)
	g := New()
	g.AddExpr(e)
	Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000, MatchWorkers: 1})
	g.CompressPaths()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		ix := HeadIndex(g.CanonicalClasses())
		for _, r := range rules {
			total += len(searchIndexed(g, ix, r))
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "matches")
}

// BenchmarkMatchHashconsHit measures the hashcons probe fast path: Lookup
// of an existing binary-arity node. The §14 binary key makes this
// allocation-free; a regression to per-probe allocation shows up directly
// in allocs/op.
func BenchmarkMatchHashconsHit(b *testing.B) {
	g := New()
	e, _ := saturationWorkload(12)
	g.AddExpr(e)
	x := g.AddLeaf(expr.OpSym, 0, "x0", 0)
	y := g.AddLeaf(expr.OpSym, 0, "y0", 0)
	n := ENode{Op: expr.OpMul, Args: []ClassID{x, y}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Lookup(n); !ok {
			b.Fatal("probe missed")
		}
	}
}

// BenchmarkSaturationThroughputProvenance is the same workload with
// provenance recording enabled — the measured cost of -explain. Compare
// against BenchmarkSaturationThroughput, which (recording disabled) pays
// only a nil check per Add/Union.
func BenchmarkSaturationThroughputProvenance(b *testing.B) {
	e, rules := saturationWorkload(12)
	var applied int
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddExpr(e)
		g.EnableProvenance()
		rep := Run(g, rules, Limits{MaxIterations: 4, MaxNodes: 50_000})
		applied = rep.Applied
	}
	b.ReportMetric(float64(applied), "applies")
	b.ReportMetric(float64(applied)*float64(b.N)/b.Elapsed().Seconds(), "applies/s")
}
