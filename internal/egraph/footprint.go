package egraph

import "unsafe"

// Footprint accounting. The e-graph keeps three incremental counters —
// node payload bytes, hashcons key bytes, and the parent-list entry count —
// updated at the same mutation sites that already maintain nodeCount, so
// Footprint() is O(1) arithmetic over them plus container lengths. The
// resulting "logical bytes" are the bytes the e-graph's own data structures
// account for: struct sizes come from the compiler (unsafe.Sizeof constants),
// variable-length payloads (child ID slices, symbol and hashcons key strings)
// from their lengths. Go map bucket overhead and allocator slack are
// deliberately excluded: logical bytes are a deterministic lower bound that
// is bit-identical across runs and worker counts — the property that lets
// the bench suite gate on them — while allocator truth comes from the
// telemetry heap sampler and pprof profiles.

// Per-entry sizes. All are compile-time constants: unsafe.Sizeof of a
// composite literal is a constant expression, so none of this costs a
// reflection walk at runtime.
const (
	enodeSize     = int64(unsafe.Sizeof(ENode{}))
	parentSize    = int64(unsafe.Sizeof(parent{}))
	eclassSize    = int64(unsafe.Sizeof(EClass{}))
	classIDSize   = int64(unsafe.Sizeof(ClassID(0)))
	classPtrSize  = int64(unsafe.Sizeof((*EClass)(nil)))
	rankSize      = int64(unsafe.Sizeof(uint8(0)))
	strHeaderSize = int64(unsafe.Sizeof(""))
	justSize      = int64(unsafe.Sizeof(Justification{}))
	unionStepSize = int64(unsafe.Sizeof(UnionStep{}))

	journalEventSize = int64(unsafe.Sizeof(JournalEvent{}))
	footprintSize    = int64(unsafe.Sizeof(Footprint{}))
)

// FootprintComponent is one component's share of the e-graph footprint:
// how many entries it holds and the logical bytes they occupy.
type FootprintComponent struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Footprint is a per-component breakdown of the e-graph's logical memory:
// e-node structs and payloads, the hashcons (keys plus map entries), the
// union-find arrays, the per-class containers, parent back-references, the
// provenance store, and — when sampled through a Journal — the journal ring
// itself. Total is the sum of all component bytes.
type Footprint struct {
	Nodes      FootprintComponent `json:"nodes"`
	Hashcons   FootprintComponent `json:"hashcons"`
	UnionFind  FootprintComponent `json:"union_find"`
	Classes    FootprintComponent `json:"classes"`
	Parents    FootprintComponent `json:"parents"`
	Provenance FootprintComponent `json:"provenance"`
	Journal    FootprintComponent `json:"journal"`
	Total      int64              `json:"total"`
}

// nodePayloadBytes is the variable-length payload a node carries beyond its
// struct: the child-ID slice's backing array and the symbol string's bytes.
// (A parent entry shares the node's Args backing array, so the payload is
// attributed once, to the class node list.)
func nodePayloadBytes(n ENode) int64 {
	return int64(len(n.Args))*classIDSize + int64(len(n.Sym))
}

// Footprint returns the per-component logical footprint. O(1): every value
// is derived from container lengths and the incrementally maintained
// counters, never from walking the graph. The Journal component is zero
// here — sampleMemory fills it in, since the journal is not part of the
// graph.
func (g *EGraph) Footprint() Footprint {
	var fp Footprint
	fp.Nodes = FootprintComponent{
		Entries: g.nodeCount,
		Bytes:   int64(g.nodeCount)*enodeSize + g.nodePayload,
	}
	fp.Hashcons = FootprintComponent{
		Entries: len(g.memo),
		Bytes:   int64(len(g.memo))*(strHeaderSize+classIDSize) + g.memoKeyBytes,
	}
	fp.UnionFind = FootprintComponent{
		Entries: len(g.uf),
		Bytes:   int64(len(g.uf)) * (classIDSize + rankSize),
	}
	fp.Classes = FootprintComponent{
		Entries: len(g.classes),
		Bytes:   int64(len(g.classes)) * (eclassSize + classIDSize + classPtrSize),
	}
	fp.Parents = FootprintComponent{
		Entries: g.parentCount,
		Bytes:   int64(g.parentCount) * parentSize,
	}
	if g.prov != nil {
		nodes, unions := len(g.prov.nodes), len(g.prov.unions)
		fp.Provenance = FootprintComponent{
			Entries: nodes + unions,
			// Justification keys alias hashcons keys; their string contents
			// are attributed once, to the hashcons, so only the map entry
			// headers count here.
			Bytes: int64(nodes)*(strHeaderSize+justSize) + int64(unions)*unionStepSize,
		}
	}
	fp.Total = fp.Nodes.Bytes + fp.Hashcons.Bytes + fp.UnionFind.Bytes +
		fp.Classes.Bytes + fp.Parents.Bytes + fp.Provenance.Bytes
	return fp
}

// FootprintBytes returns the e-graph's total logical bytes (the Footprint
// Total, minus any journal share). It is O(1) and allocation-free, cheap
// enough to call at every Progress publish site.
func (g *EGraph) FootprintBytes() int64 {
	return int64(g.nodeCount)*enodeSize + g.nodePayload +
		int64(len(g.memo))*(strHeaderSize+classIDSize) + g.memoKeyBytes +
		int64(len(g.uf))*(classIDSize+rankSize) +
		int64(len(g.classes))*(eclassSize+classIDSize+classPtrSize) +
		int64(g.parentCount)*parentSize +
		g.provBytes()
}

func (g *EGraph) provBytes() int64 {
	if g.prov == nil {
		return 0
	}
	nodes, unions := len(g.prov.nodes), len(g.prov.unions)
	return int64(nodes)*(strHeaderSize+justSize) + int64(unions)*unionStepSize
}
