package egraph

import "unsafe"

// Footprint accounting. The e-graph keeps three incremental counters —
// node payload bytes, hashcons overflow-key bytes, and the parent-list
// entry count — updated at the same mutation sites that already maintain
// nodeCount, so Footprint() is O(1) arithmetic over them plus container
// lengths (the symbol table maintains its own string-byte counter the same
// way). The resulting "logical bytes" are the bytes the e-graph's own data
// structures account for: struct sizes come from the compiler
// (unsafe.Sizeof constants), variable-length payloads (child ID slices,
// interned symbol strings, wide-key overflow bytes) from their lengths. Go
// map bucket overhead and allocator slack are deliberately excluded:
// logical bytes are a deterministic lower bound that is bit-identical
// across runs and worker counts — the property that lets the bench suite
// gate on them — while allocator truth comes from the telemetry heap
// sampler and pprof profiles.
//
// §14 layout amendments to the §13 accounting rules:
//
//   - A hashcons entry is memoKeySize + classIDSize (the fixed-size binary
//     key struct plus the value), with wide-node overflow bytes (children
//     beyond the four inline slots) summed separately in memoRestBytes.
//     String-keyed accounting (strHeaderSize + key contents) is gone with
//     the string keys themselves.
//   - Node payloads no longer include symbol bytes: a node stores a 4-byte
//     SymID inline in the struct. Each symbol's string contents are counted
//     once, in the new Symbols component, however many nodes share it.
//   - Provenance entries are keyed by the binary key too: memoKeySize +
//     justSize each. Overflow bytes of a provenance key alias the hashcons
//     entry's and are attributed once, to the hashcons.
const (
	enodeSize     = int64(unsafe.Sizeof(ENode{}))
	parentSize    = int64(unsafe.Sizeof(parent{}))
	eclassSize    = int64(unsafe.Sizeof(EClass{}))
	classIDSize   = int64(unsafe.Sizeof(ClassID(0)))
	classPtrSize  = int64(unsafe.Sizeof((*EClass)(nil)))
	rankSize      = int64(unsafe.Sizeof(uint8(0)))
	strHeaderSize = int64(unsafe.Sizeof(""))
	symIDSize     = int64(unsafe.Sizeof(SymID(0)))
	memoKeySize   = int64(unsafe.Sizeof(memoKey{}))
	justSize      = int64(unsafe.Sizeof(Justification{}))
	unionStepSize = int64(unsafe.Sizeof(UnionStep{}))

	journalEventSize = int64(unsafe.Sizeof(JournalEvent{}))
	footprintSize    = int64(unsafe.Sizeof(Footprint{}))
)

// FootprintComponent is one component's share of the e-graph footprint:
// how many entries it holds and the logical bytes they occupy.
type FootprintComponent struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Footprint is a per-component breakdown of the e-graph's logical memory:
// e-node structs and payloads, the hashcons (binary keys plus map entries),
// the symbol intern table, the union-find arrays, the per-class containers,
// parent back-references, the provenance store, and — when sampled through
// a Journal — the journal ring itself. Total is the sum of all component
// bytes.
type Footprint struct {
	Nodes      FootprintComponent `json:"nodes"`
	Hashcons   FootprintComponent `json:"hashcons"`
	Symbols    FootprintComponent `json:"symbols"`
	UnionFind  FootprintComponent `json:"union_find"`
	Classes    FootprintComponent `json:"classes"`
	Parents    FootprintComponent `json:"parents"`
	Provenance FootprintComponent `json:"provenance"`
	Journal    FootprintComponent `json:"journal"`
	Total      int64              `json:"total"`
}

// nodePayloadBytes is the variable-length payload a node carries beyond its
// struct: the child-ID slice's backing array. Symbol payloads are a SymID
// inside the struct; the interned string is accounted once, in the symbol
// table. (A parent entry shares the node's Args backing array, so the
// payload is attributed once, to the class node list.)
func nodePayloadBytes(n ENode) int64 {
	return int64(len(n.Args)) * classIDSize
}

// symbolBytes is the symbol table's logical footprint: every interned
// string's contents once, plus a slice entry (string header) and a map
// entry (string header + SymID) per symbol.
func (t *SymbolTable) symbolBytes() int64 {
	return t.nameBytes + int64(len(t.names))*(2*strHeaderSize+symIDSize)
}

// Footprint returns the per-component logical footprint. O(1): every value
// is derived from container lengths and the incrementally maintained
// counters, never from walking the graph. The Journal component is zero
// here — sampleMemory fills it in, since the journal is not part of the
// graph.
func (g *EGraph) Footprint() Footprint {
	var fp Footprint
	fp.Nodes = FootprintComponent{
		Entries: g.nodeCount,
		Bytes:   int64(g.nodeCount)*enodeSize + g.nodePayload,
	}
	fp.Hashcons = FootprintComponent{
		Entries: len(g.memo),
		Bytes:   int64(len(g.memo))*(memoKeySize+classIDSize) + g.memoRestBytes,
	}
	fp.Symbols = FootprintComponent{
		Entries: g.syms.Len(),
		Bytes:   g.syms.symbolBytes(),
	}
	fp.UnionFind = FootprintComponent{
		Entries: len(g.uf),
		Bytes:   int64(len(g.uf)) * (classIDSize + rankSize),
	}
	fp.Classes = FootprintComponent{
		Entries: len(g.classes),
		Bytes:   int64(len(g.classes)) * (eclassSize + classIDSize + classPtrSize),
	}
	fp.Parents = FootprintComponent{
		Entries: g.parentCount,
		Bytes:   int64(g.parentCount) * parentSize,
	}
	if g.prov != nil {
		nodes, unions := len(g.prov.nodes), len(g.prov.unions)
		fp.Provenance = FootprintComponent{
			Entries: nodes + unions,
			// Justification keys are binary hashcons keys; overflow bytes
			// alias the hashcons entry's and are attributed once, to the
			// hashcons, so only the fixed-size key and value count here.
			Bytes: int64(nodes)*(memoKeySize+justSize) + int64(unions)*unionStepSize,
		}
	}
	fp.Total = fp.Nodes.Bytes + fp.Hashcons.Bytes + fp.Symbols.Bytes +
		fp.UnionFind.Bytes + fp.Classes.Bytes + fp.Parents.Bytes +
		fp.Provenance.Bytes
	return fp
}

// FootprintBytes returns the e-graph's total logical bytes (the Footprint
// Total, minus any journal share). It is O(1) and allocation-free, cheap
// enough to call at every Progress publish site.
func (g *EGraph) FootprintBytes() int64 {
	return int64(g.nodeCount)*enodeSize + g.nodePayload +
		int64(len(g.memo))*(memoKeySize+classIDSize) + g.memoRestBytes +
		g.syms.symbolBytes() +
		int64(len(g.uf))*(classIDSize+rankSize) +
		int64(len(g.classes))*(eclassSize+classIDSize+classPtrSize) +
		int64(g.parentCount)*parentSize +
		g.provBytes()
}

func (g *EGraph) provBytes() int64 {
	if g.prov == nil {
		return 0
	}
	nodes, unions := len(g.prov.nodes), len(g.prov.unions)
	return int64(nodes)*(memoKeySize+justSize) + int64(unions)*unionStepSize
}
