package egraph

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/expr"
)

// The §14 binary hashcons is only sound if memoKey equality coincides
// exactly with the legacy string-key equality the e-graph was built on:
// a missed collision would stop deduplicating congruent nodes, and a new
// collision would merge distinct nodes. These tests drive both directions
// against appendLegacyKey, the pre-§14 encoder retained as the oracle.

// keyGen builds shape-valid random e-nodes over a small universe of
// symbols, literals, and child IDs — small on purpose, so collisions
// between distinct draws are common and the equivalence is exercised, not
// just vacuously true.
type keyGen struct {
	g    *EGraph
	r    *rand.Rand
	syms []SymID
}

func newKeyGen(seed int64) *keyGen {
	g := New()
	names := []string{"", "a", "b", "x", "arr", "recip", "much-longer-symbol-name"}
	syms := make([]SymID, len(names))
	for i, n := range names {
		syms[i] = g.InternSym(n)
	}
	return &keyGen{g: g, r: rand.New(rand.NewSource(seed)), syms: syms}
}

func (kg *keyGen) node() ENode {
	lits := []float64{0, 1, -1, 0.5, 2, math.Pi}
	op := expr.Op(kg.r.Intn(int(expr.NumOps)))
	n := ENode{Op: op}
	switch op {
	case expr.OpLit:
		n.Lit = lits[kg.r.Intn(len(lits))]
	case expr.OpSym:
		n.Sym = kg.syms[kg.r.Intn(len(kg.syms))]
	case expr.OpGet:
		n.Sym = kg.syms[kg.r.Intn(len(kg.syms))]
		n.Idx = kg.r.Intn(4)
	default:
		if op == expr.OpFunc || op == expr.OpVecFunc {
			n.Sym = kg.syms[kg.r.Intn(len(kg.syms))]
		}
		// 0..6 children spans the inline fast path (≤ restArity) and the
		// overflow-string slow path.
		for i, k := 0, kg.r.Intn(7); i < k; i++ {
			n.Args = append(n.Args, ClassID(kg.r.Intn(4)))
		}
	}
	return n
}

// TestMemoKeyMatchesLegacyOracle draws many random node pairs and checks
// key equality is exactly legacy-encoding equality, in both directions.
func TestMemoKeyMatchesLegacyOracle(t *testing.T) {
	kg := newKeyGen(1)
	g := kg.g
	byKey := map[memoKey]string{}
	byLegacy := map[string]memoKey{}
	for i := 0; i < 50000; i++ {
		n := kg.node()
		k := g.makeKey(n)
		legacy := string(g.appendLegacyKey(nil, n))
		if prev, ok := byKey[k]; ok && prev != legacy {
			t.Fatalf("binary keys collide for distinct nodes:\nnode %v\nlegacy %q vs %q",
				n, legacy, prev)
		}
		byKey[k] = legacy
		if prev, ok := byLegacy[legacy]; ok && prev != k {
			t.Fatalf("legacy-equal nodes got distinct binary keys:\nnode %v\nkeys %+v vs %+v",
				n, k, prev)
		}
		byLegacy[legacy] = k
	}
	if len(byKey) != len(byLegacy) {
		t.Fatalf("key spaces diverged: %d binary vs %d legacy", len(byKey), len(byLegacy))
	}
}

// TestMemoKeyZeroChildAmbiguity pins the arity disambiguation: ClassID 0
// is a valid child, so an n-ary node of all-zero children must not collide
// with the (n-1)-ary one (zero padding alone could not tell them apart).
func TestMemoKeyZeroChildAmbiguity(t *testing.T) {
	g := New()
	for arity := 0; arity <= 6; arity++ {
		a := ENode{Op: expr.OpVec, Args: make([]ClassID, arity)}
		b := ENode{Op: expr.OpVec, Args: make([]ClassID, arity+1)}
		if g.makeKey(a) == g.makeKey(b) {
			t.Fatalf("all-zero Vec/%d and Vec/%d share a key", arity, arity+1)
		}
	}
}

// TestMemoKeyOverflowBufferReuse checks that keys built through the shared
// keyBuf stay valid after the buffer is reused for a different wide node —
// the bug class the string(b) copy in makeKey exists to prevent.
func TestMemoKeyOverflowBufferReuse(t *testing.T) {
	g := New()
	wide1 := ENode{Op: expr.OpVec, Args: []ClassID{1, 2, 3, 4, 5, 6}}
	wide2 := ENode{Op: expr.OpVec, Args: []ClassID{1, 2, 3, 4, 9, 8}}
	k1 := g.makeKey(wide1)
	k2 := g.makeKey(wide2)
	if k1 == k2 {
		t.Fatal("distinct wide nodes share a key")
	}
	if again := g.makeKey(wide1); again != k1 {
		t.Fatalf("key changed after buffer reuse: %+v vs %+v", again, k1)
	}
}

// FuzzMemoKeyEquivalence fuzzes the same equivalence with
// coverage-guided node shapes: the fuzzer chooses ops, payload indices,
// and children from its byte stream.
func FuzzMemoKeyEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{13, 13, 0, 0, 0, 0, 0, 0}, []byte{13, 13, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ba, bb []byte) {
		g := New()
		names := []string{"", "a", "b", "fn"}
		syms := make([]SymID, len(names))
		for i, n := range names {
			syms[i] = g.InternSym(n)
		}
		decode := func(b []byte) ENode {
			if len(b) == 0 {
				return ENode{}
			}
			op := expr.Op(int(b[0]) % int(expr.NumOps))
			n := ENode{Op: op}
			rest := b[1:]
			at := func(i int) byte {
				if i < len(rest) {
					return rest[i]
				}
				return 0
			}
			switch op {
			case expr.OpLit:
				n.Lit = float64(int8(at(0)))
			case expr.OpSym:
				n.Sym = syms[int(at(0))%len(syms)]
			case expr.OpGet:
				n.Sym = syms[int(at(0))%len(syms)]
				n.Idx = int(at(1)) % 8
			default:
				if op == expr.OpFunc || op == expr.OpVecFunc {
					n.Sym = syms[int(at(0))%len(syms)]
					rest = rest[minInt(1, len(rest)):]
				}
				for _, c := range rest {
					n.Args = append(n.Args, ClassID(c%5))
				}
			}
			return n
		}
		na, nb := decode(ba), decode(bb)
		ka, kb := g.makeKey(na), g.makeKey(nb)
		la := string(g.appendLegacyKey(nil, na))
		lb := string(g.appendLegacyKey(nil, nb))
		if (ka == kb) != (la == lb) {
			t.Fatalf("equivalence broken:\n%v vs %v\nbinary equal=%v legacy equal=%v",
				na, nb, ka == kb, la == lb)
		}
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
