package egraph

import (
	"fmt"
	"testing"

	"diospyros/internal/expr"
)

// recountFootprint recomputes the incremental footprint counters from
// scratch by walking the graph — the ground truth the O(1) counters must
// agree with after any sequence of adds, unions, and rebuilds.
func recountFootprint(g *EGraph) (nodePayload int64, restBytes int64, symBytes int64, parentCount int) {
	for _, cls := range g.classes {
		for _, n := range cls.Nodes {
			nodePayload += nodePayloadBytes(n)
		}
		parentCount += len(cls.parents)
	}
	for k := range g.memo {
		restBytes += k.restBytes()
	}
	for _, name := range g.syms.names {
		symBytes += int64(len(name))
	}
	return
}

func checkFootprintConsistent(t *testing.T, g *EGraph, when string) {
	t.Helper()
	payload, rest, symBytes, parents := recountFootprint(g)
	if g.nodePayload != payload {
		t.Errorf("%s: nodePayload = %d, recount = %d", when, g.nodePayload, payload)
	}
	if g.memoRestBytes != rest {
		t.Errorf("%s: memoRestBytes = %d, recount = %d", when, g.memoRestBytes, rest)
	}
	if g.syms.nameBytes != symBytes {
		t.Errorf("%s: symbol nameBytes = %d, recount = %d", when, g.syms.nameBytes, symBytes)
	}
	if g.parentCount != parents {
		t.Errorf("%s: parentCount = %d, recount = %d", when, g.parentCount, parents)
	}
	if total, fp := g.FootprintBytes(), g.Footprint(); total != fp.Total {
		t.Errorf("%s: FootprintBytes = %d, Footprint().Total = %d", when, total, fp.Total)
	}
}

// TestFootprintMatchesRecount drives adds, unions, and a full saturation and
// checks the incremental counters against a brute-force recount at each
// stage. This is the invariant that keeps Footprint() honest without paying
// for graph walks at runtime.
func TestFootprintMatchesRecount(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ (* a (+ b c)) (* a 0))"))
	checkFootprintConsistent(t, g, "after AddExpr")

	a := g.AddExpr(expr.MustParse("(* a b)"))
	b := g.AddExpr(expr.MustParse("(* b a)"))
	g.Union(a, b)
	g.Rebuild()
	checkFootprintConsistent(t, g, "after union+rebuild")

	rules := []Rewrite{
		MustRewrite("mul-zero", "(* ?a 0)", "0"),
		MustRewrite("add-zero", "(+ ?a 0)", "?a"),
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
	}
	rep := Run(g, rules, Limits{MaxIterations: 8})
	if rep.Iterations == 0 {
		t.Fatal("saturation did not run")
	}
	checkFootprintConsistent(t, g, "after saturation")
	if fp := g.Footprint(); fp.Nodes.Entries != g.NumNodes() || fp.Nodes.Bytes <= 0 {
		t.Errorf("node component = %+v, want %d entries with positive bytes",
			fp.Nodes, g.NumNodes())
	}
}

// TestFootprintWithProvenance checks the provenance store's share appears
// once explanations are armed, and that the counters stay consistent through
// a provenance-recording run.
func TestFootprintWithProvenance(t *testing.T) {
	g := New()
	g.EnableProvenance()
	g.AddExpr(expr.MustParse("(+ (* a (+ b c)) 0)"))
	rules := []Rewrite{
		MustRewrite("add-zero", "(+ ?a 0)", "?a"),
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
	}
	Run(g, rules, Limits{MaxIterations: 8})
	checkFootprintConsistent(t, g, "after provenance run")
	if fp := g.Footprint(); fp.Provenance.Entries == 0 || fp.Provenance.Bytes <= 0 {
		t.Errorf("provenance component empty after recorded run: %+v", fp.Provenance)
	}
}

// TestRunReportsPeakFootprint checks the runner tracks a peak breakdown and
// that its peak total is at least the final footprint of a growing search.
func TestRunReportsPeakFootprint(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(* a (+ b (+ c d)))"))
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
	}
	rep := Run(g, rules, Limits{MaxIterations: 6})
	if rep.PeakFootprint.Total <= 0 {
		t.Fatalf("PeakFootprint.Total = %d, want > 0", rep.PeakFootprint.Total)
	}
	if rep.PeakIteration <= 0 {
		t.Fatalf("PeakIteration = %d, want >= 1", rep.PeakIteration)
	}
	if final := g.FootprintBytes(); rep.PeakFootprint.Total < final {
		t.Errorf("peak %d below final footprint %d", rep.PeakFootprint.Total, final)
	}
}

// TestJournalRingWrapMemorySamples fills a tiny ring past wraparound with
// interleaved rule and memory events and checks that (a) the surviving
// suffix still carries intact per-rule counts and footprint breakdowns, and
// (b) ByteSize's incremental variable-byte tracking agrees with a recount
// over the surviving slots.
func TestJournalRingWrapMemorySamples(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ a b)"))
	j := NewJournal(4)
	const rounds = 9
	for i := 1; i <= rounds; i++ {
		j.append(JournalEvent{Kind: JournalRule, Iteration: i,
			Rule: fmt.Sprintf("rule-%d", i), Matches: i, Applied: i})
		j.sampleMemory(g, i)
	}
	if got := j.Total(); got != 2*rounds {
		t.Fatalf("Total = %d, want %d", got, 2*rounds)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("surviving events = %d, want ring cap 4", len(evs))
	}
	var rules, mems int
	for _, ev := range evs {
		switch ev.Kind {
		case JournalRule:
			rules++
			if want := fmt.Sprintf("rule-%d", ev.Iteration); ev.Rule != want || ev.Applied != ev.Iteration {
				t.Errorf("wrapped rule event corrupted: %+v", ev)
			}
		case JournalMemory:
			mems++
			if ev.Memory == nil || ev.Bytes != ev.Memory.Total || ev.Memory.Journal.Entries == 0 {
				t.Errorf("wrapped memory event corrupted: %+v", ev)
			}
		}
	}
	if rules == 0 || mems == 0 {
		t.Fatalf("suffix lost a kind: %d rule, %d memory events", rules, mems)
	}

	// ByteSize must equal a recount of the surviving slots.
	var varBytes int64
	for _, ev := range evs {
		varBytes += eventVarBytes(ev)
	}
	want := int64(len(evs))*journalEventSize + varBytes
	if got := j.ByteSize(); got != want {
		t.Fatalf("ByteSize = %d, recount = %d", got, want)
	}
	if comp := j.Footprint(); comp.Entries != len(evs) || comp.Bytes != want {
		t.Fatalf("Footprint = %+v, want {%d %d}", comp, len(evs), want)
	}
}

// TestFootprintNilJournalSafe checks the memory-accounting entry points a
// disarmed (nil) journal reaches: sampling is a no-op and byte queries
// report zero, so runs without a flight recorder pay nothing.
func TestFootprintNilJournalSafe(t *testing.T) {
	var j *Journal
	g := New()
	g.AddExpr(expr.MustParse("(+ a b)"))
	j.sampleMemory(g, 1)
	if j.ByteSize() != 0 {
		t.Fatal("nil journal reported bytes")
	}
	if comp := j.Footprint(); comp.Entries != 0 || comp.Bytes != 0 {
		t.Fatalf("nil journal Footprint = %+v, want zero", comp)
	}
	// A run with no journal still reports a peak from the progress flush.
	rep := Run(g, []Rewrite{MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")},
		Limits{MaxIterations: 3})
	if rep.PeakFootprint.Total <= 0 {
		t.Fatalf("journal-less run lost its peak: %+v", rep.PeakFootprint)
	}
	if rep.PeakFootprint.Journal.Bytes != 0 {
		t.Fatalf("journal-less run attributed journal bytes: %+v", rep.PeakFootprint.Journal)
	}
}
