package egraph

import (
	"testing"

	"diospyros/internal/expr"
)

func TestBackoffDefaults(t *testing.T) {
	b := &Backoff{}
	if b.limit() != 1024 {
		t.Fatalf("default MatchLimit = %d, want 1024", b.limit())
	}
	if b.banLen() != 4 {
		t.Fatalf("default BanLength = %d, want 4", b.banLen())
	}
	if b.record("r", 1024, 0) {
		t.Fatal("at-limit match count must not ban")
	}
	if !b.record("r", 1025, 0) {
		t.Fatal("over-limit match count must ban")
	}
}

// TestBackoffThresholdDoubling: after each ban both the match budget and
// the ban length double (egg's exponential backoff).
func TestBackoffThresholdDoubling(t *testing.T) {
	b := &Backoff{MatchLimit: 4, BanLength: 2}

	// First ban: budget 4, ban length 2.
	if b.record("r", 4, 0) {
		t.Fatal("4 matches within budget 4 must not ban")
	}
	if !b.record("r", 5, 0) {
		t.Fatal("5 matches over budget 4 must ban")
	}
	bans, until := b.Stat("r")
	if bans != 1 || until != 0+2 {
		t.Fatalf("after first ban: bans=%d until=%d, want 1, 2", bans, until)
	}

	// Second offense at iteration 2 (ban expired): budget doubled to 8,
	// ban length doubled to 4.
	if b.record("r", 8, 2) {
		t.Fatal("8 matches within doubled budget 8 must not ban")
	}
	if !b.record("r", 9, 2) {
		t.Fatal("9 matches over doubled budget 8 must ban")
	}
	bans, until = b.Stat("r")
	if bans != 2 || until != 2+4 {
		t.Fatalf("after second ban: bans=%d until=%d, want 2, 6", bans, until)
	}

	// Third offense: budget 16, ban length 8.
	if b.record("r", 16, 6) {
		t.Fatal("16 matches within budget 16 must not ban")
	}
	if !b.record("r", 17, 6) {
		t.Fatal("17 matches over budget 16 must ban")
	}
	if bans, until = b.Stat("r"); bans != 3 || until != 6+8 {
		t.Fatalf("after third ban: bans=%d until=%d, want 3, 14", bans, until)
	}
}

// TestBackoffBannedUntilExpiry: banned is half-open — the rule sits out
// iterations < bannedUntil and runs again at bannedUntil.
func TestBackoffBannedUntilExpiry(t *testing.T) {
	b := &Backoff{MatchLimit: 1, BanLength: 3}
	if !b.record("r", 2, 5) {
		t.Fatal("expected ban")
	}
	_, until := b.Stat("r")
	if until != 8 {
		t.Fatalf("bannedUntil = %d, want 8", until)
	}
	for iter := 5; iter < 8; iter++ {
		if !b.banned("r", iter) {
			t.Fatalf("rule must be banned at iteration %d", iter)
		}
		if !b.anyBanned(iter) {
			t.Fatalf("anyBanned(%d) = false with an active ban", iter)
		}
	}
	if b.banned("r", 8) {
		t.Fatal("ban must expire at bannedUntil")
	}
	if b.anyBanned(8) {
		t.Fatal("anyBanned must clear once every ban expired")
	}
	if b.banned("other", 0) {
		t.Fatal("never-banned rule reported banned")
	}
}

func TestBackoffStatUnknownRule(t *testing.T) {
	var b *Backoff
	if bans, until := b.Stat("r"); bans != 0 || until != 0 {
		t.Fatal("nil Backoff Stat must be zero")
	}
	b = &Backoff{}
	if bans, until := b.Stat("r"); bans != 0 || until != 0 {
		t.Fatal("unknown rule Stat must be zero")
	}
	if b.stats != nil {
		t.Fatal("Stat materialized state for an unknown rule")
	}
}

// TestBackoffSaturationOnlyOnBanFreeIteration: a run must not report
// saturation while a rule is banned, even if no active rule changes the
// graph — only a ban-free, change-free iteration is a fixpoint.
func TestBackoffSaturationOnlyOnBanFreeIteration(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ (+ a b) (+ c d))"))
	// comm-add over-matches immediately (3 adds > limit 1) and gets banned
	// for 8 iterations; nothing else can change the graph meanwhile.
	rules := []Rewrite{MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")}
	bo := &Backoff{MatchLimit: 1, BanLength: 8}
	rep := Run(g, rules, Limits{MaxIterations: 64, Backoff: bo})
	if !rep.Saturated() {
		t.Fatalf("run should eventually saturate, got %v", rep.Reason)
	}
	// The ban from iteration 0 lasts through iteration 7; the earliest
	// ban-free iteration is 8 (0-based), so at least 9 iterations ran.
	if rep.Iterations < 9 {
		t.Fatalf("saturation reported after %d iterations, inside the ban window", rep.Iterations)
	}

	// Control: without the ban the same shape saturates in 2 iterations
	// (comm-add applies, second pass finds nothing new).
	g2 := New()
	g2.AddExpr(expr.MustParse("(+ (+ a b) (+ c d))"))
	rep2 := Run(g2, rules, Limits{MaxIterations: 64})
	if !rep2.Saturated() || rep2.Iterations >= 9 {
		t.Fatalf("control run: %v after %d iterations", rep2.Reason, rep2.Iterations)
	}
}
