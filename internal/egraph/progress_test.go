package egraph

import (
	"context"
	"sync"
	"testing"
	"time"

	"diospyros/internal/expr"
)

// growRules is an explosive ruleset: associativity plus commutativity over
// a chain of distinct symbols grows the e-graph every iteration (the
// classic AC blowup, paper §3.3), so runs last long enough for concurrent
// observers.
func growRules() []Rewrite {
	return []Rewrite{
		MustRewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
		MustRewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
	}
}

func addSymChain(g *EGraph, n int) ClassID {
	e := expr.Sym("s0")
	for i := 1; i < n; i++ {
		e = expr.Add(e, expr.Sym("s"+string(rune('0'+i))))
	}
	return g.AddExpr(e)
}

// TestProgressPublishedDuringRun reads Progress from a second goroutine
// while the run mutates the graph (run under -race in CI) and checks the
// final snapshot matches the report.
func TestProgressPublishedDuringRun(t *testing.T) {
	g := New()
	addSymChain(g, 8)
	prog := &Progress{}

	stop := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		for {
			select {
			case <-stop:
				return
			default:
				_ = prog.Snapshot()
			}
		}
	}()
	<-started

	rep := Run(g, growRules(), Limits{MaxIterations: 6, MaxNodes: 20_000, Progress: prog})
	close(stop)
	wg.Wait()

	s := prog.Snapshot()
	if s.Iteration != rep.Iterations || s.Nodes != rep.Nodes || s.Classes != rep.Classes {
		t.Fatalf("final snapshot %+v != report {%d %d %d}",
			s, rep.Iterations, rep.Nodes, rep.Classes)
	}
	if s.Iteration == 0 || s.Nodes == 0 {
		t.Fatalf("nothing published: %+v", s)
	}
	// The byte gauge rides every publish, so the final snapshot carries the
	// live footprint (the graph is non-empty, so it must be positive).
	if s.Bytes <= 0 {
		t.Fatalf("no footprint bytes published: %+v", s)
	}
	if final := g.FootprintBytes(); s.Bytes < final {
		t.Fatalf("published bytes %d below final footprint %d", s.Bytes, final)
	}
}

// TestProgressDrivenCancellation is the watchdog pattern end to end at the
// egraph level: a poller aborts the run once the published node count
// crosses a budget far below where the rules would otherwise take it.
func TestProgressDrivenCancellation(t *testing.T) {
	g := New()
	addSymChain(g, 8)
	prog := &Progress{}
	// The deadline is a safety net so a broken publish path fails the test
	// instead of deadlocking it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const budget = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if prog.Snapshot().Nodes > budget {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()

	rep := RunContext(ctx, g, growRules(), Limits{MaxIterations: 1000, Progress: prog})
	<-done
	if rep.Reason != StopCancelled {
		t.Fatalf("reason = %s, want %s (nodes %d)", rep.Reason, StopCancelled, rep.Nodes)
	}
	if rep.Nodes <= budget {
		t.Fatalf("run stopped below budget: %d <= %d", rep.Nodes, budget)
	}
}

func TestProgressNilSafeInRun(t *testing.T) {
	g := New()
	addSymChain(g, 4)
	rep := Run(g, growRules(), Limits{MaxIterations: 2}) // nil Progress must not panic
	if rep.Iterations == 0 {
		t.Fatal("run did nothing")
	}
}
