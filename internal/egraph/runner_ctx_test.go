package egraph

import (
	"context"
	"strings"
	"testing"
	"time"

	"diospyros/internal/expr"
)

// wideAddChain builds (+ a0 (+ a1 (+ ... an))) — n add nodes, so a
// commutativity rule yields n matches in the very first iteration.
func wideAddChain(n int) *expr.Expr {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("(+ a")
		b.WriteString(string(rune('0'+i%10)) + string(rune('a'+i%26)))
		b.WriteString(" ")
	}
	b.WriteString("tail")
	b.WriteString(strings.Repeat(")", n))
	return expr.MustParse(b.String())
}

// cancelAfterApplies wraps a rewrite and cancels the run's context after
// its Apply has been invoked n times — a deterministic mid-iteration
// cancellation.
type cancelAfterApplies struct {
	Rewrite
	n      int
	count  int
	cancel context.CancelFunc
}

func (c *cancelAfterApplies) Apply(g *EGraph, m Match) bool {
	ok := c.Rewrite.Apply(g, m)
	if c.count++; c.count == c.n {
		c.cancel()
	}
	return ok
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New()
	g.AddExpr(expr.MustParse("(+ x 0)"))
	rep := RunContext(ctx, g, []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")}, Limits{})
	if rep.Reason != StopCancelled {
		t.Fatalf("Reason = %s, want cancelled", rep.Reason)
	}
	if rep.Iterations != 0 || rep.Applied != 0 {
		t.Fatalf("work done despite pre-cancelled context: %+v", rep)
	}
	if bad := g.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants broken: %v", bad)
	}
}

// Cancelling mid-apply must stop within ctxCheckInterval applies — i.e.
// well inside the current iteration — and leave the graph rebuilt.
func TestRunContextCancelledMidIteration(t *testing.T) {
	g := New()
	g.AddExpr(wideAddChain(600))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAt = 100
	rw := &cancelAfterApplies{
		Rewrite: MustRewrite("commute-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		n:       cancelAt,
		cancel:  cancel,
	}
	rep := RunContext(ctx, g, []Rewrite{rw}, Limits{MaxIterations: 50})

	if rep.Reason != StopCancelled {
		t.Fatalf("Reason = %s, want cancelled (%+v)", rep.Reason, rep)
	}
	if rep.Iterations != 1 {
		t.Fatalf("ran %d iterations; cancellation did not stop within one", rep.Iterations)
	}
	// The poll is amortized: at most ctxCheckInterval further applies may
	// happen after the cancellation before the runner notices.
	if rw.count > cancelAt+ctxCheckInterval {
		t.Fatalf("%d applies after cancellation (interval %d)", rw.count-cancelAt, ctxCheckInterval)
	}
	if g.NeedsRebuild() {
		t.Fatal("e-graph left un-rebuilt after cancellation")
	}
	if bad := g.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants broken after cancellation: %v", bad)
	}
	// The cut-short iteration still reports a (partial) gauge.
	if len(rep.Iters) != 1 || rep.Iters[0].Applied == 0 {
		t.Fatalf("missing partial iteration gauge: %+v", rep.Iters)
	}
}

func TestRunContextDeadlineReportsTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	g := New()
	g.AddExpr(expr.MustParse("(+ x 0)"))
	rep := RunContext(ctx, g, []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")}, Limits{})
	if rep.Reason != StopTimeout {
		t.Fatalf("Reason = %s, want timeout", rep.Reason)
	}
}

// Limits.Timeout must behave identically to a context deadline.
func TestRunLimitsTimeoutStillWorks(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ x 0)"))
	rep := Run(g, []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")},
		Limits{Timeout: time.Nanosecond})
	if rep.Reason != StopTimeout {
		t.Fatalf("Reason = %s, want timeout", rep.Reason)
	}
}

func TestRunReportsIterationGauges(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ (+ x 0) 0)"))
	rep := Run(g, []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")}, Limits{})
	if !rep.Saturated() {
		t.Fatalf("did not saturate: %+v", rep)
	}
	if len(rep.Iters) != rep.Iterations {
		t.Fatalf("%d gauges for %d iterations", len(rep.Iters), rep.Iterations)
	}
	applied := 0
	for i, it := range rep.Iters {
		if it.Iteration != i+1 {
			t.Errorf("gauge %d has Iteration %d", i, it.Iteration)
		}
		if it.Nodes == 0 || it.Classes == 0 {
			t.Errorf("gauge %d missing e-graph size: %+v", i, it)
		}
		applied += it.Applied
	}
	if applied != rep.Applied {
		t.Errorf("gauges sum %d applies, report says %d", applied, rep.Applied)
	}
	last := rep.Iters[len(rep.Iters)-1]
	if last.Nodes != rep.Nodes || last.Classes != rep.Classes {
		t.Errorf("final gauge %+v disagrees with report %d/%d", last, rep.Nodes, rep.Classes)
	}
	if rep.Iters[0].PerRuleApplied["add-zero"] != rep.PerRule["add-zero"] {
		t.Errorf("per-rule gauge %v vs report %v", rep.Iters[0].PerRuleApplied, rep.PerRule)
	}
}
