package egraph

import (
	"testing"

	"diospyros/internal/expr"
)

func TestProvenanceDisabledRecordsNothing(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ a b)"))
	g.SetRuleContext("commute-add", 1, root) // no-op while disabled
	g.AddExpr(expr.MustParse("(+ b a)"))
	if g.ProvenanceEnabled() {
		t.Fatal("provenance reported enabled without EnableProvenance")
	}
	if n, u := g.ProvenanceStats(); n != 0 || u != 0 {
		t.Fatalf("disabled stats = (%d, %d), want (0, 0)", n, u)
	}
	if _, ok := g.NodeProvenance(g.LeafNode(expr.OpSym, 0, "a", 0)); ok {
		t.Fatal("NodeProvenance found a justification while disabled")
	}
	if g.Unions() != nil {
		t.Fatal("Unions non-nil while disabled")
	}
}

func TestProvenanceAttributesRuleContext(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ a b)"))
	g.EnableProvenance()

	g.SetRuleContext("commute-add", 2, root)
	flipped := g.AddExpr(expr.MustParse("(+ b a)"))
	g.Union(root, flipped)
	g.ClearRuleContext()
	g.Rebuild()

	// Exactly one node — the new (+ b a) — is justified; a, b, and the
	// input (+ a b) predate the rule context (hashcons hits don't re-record).
	var justified []Justification
	g.Classes(func(cls *EClass) {
		for _, n := range cls.Nodes {
			if j, ok := g.NodeProvenance(n); ok {
				justified = append(justified, j)
			}
		}
	})
	if len(justified) != 1 {
		t.Fatalf("justified nodes = %d, want 1", len(justified))
	}
	j := justified[0]
	if j.Rule != "commute-add" || j.Iteration != 2 || j.Source != root {
		t.Fatalf("justification = %+v, want {commute-add 2 %d}", j, root)
	}

	us := g.Unions()
	if len(us) != 1 || us[0].Just.Rule != "commute-add" {
		t.Fatalf("unions = %+v, want one commute-add step", us)
	}
	if n, u := g.ProvenanceStats(); n != 1 || u != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", n, u)
	}
}

// TestProvenanceSurvivesRebuild checks the moveKey path: a justified
// node's hashcons key changes when its children merge, and the
// justification must follow it through congruence repair.
func TestProvenanceSurvivesRebuild(t *testing.T) {
	g := New()
	a := g.AddExpr(expr.Sym("a"))
	b := g.AddExpr(expr.Sym("b"))
	g.EnableProvenance()

	g.SetRuleContext("make-sum", 1, a)
	sum := g.AddExpr(expr.MustParse("(+ a b)"))
	g.ClearRuleContext()

	// Merging a and b re-canonicalizes (+ a b)'s key during repair.
	g.Union(a, b)
	g.Rebuild()

	n := ENode{Op: expr.OpAdd, Args: []ClassID{g.Find(a), g.Find(b)}}
	j, ok := g.NodeProvenance(n)
	if !ok {
		t.Fatalf("justification lost across rebuild (class %d)", g.Find(sum))
	}
	if j.Rule != "make-sum" || j.Iteration != 1 {
		t.Fatalf("justification = %+v, want {make-sum 1 %d}", j, a)
	}
	if nodes, _ := g.ProvenanceStats(); nodes != 1 {
		t.Fatalf("provenance nodes = %d, want 1 after rekey", nodes)
	}
}

// TestProvenanceCongruentCollisionKeepsEarliest: when two separately
// justified nodes become congruent (identical keys after a merge), the
// earlier iteration's justification wins.
func TestProvenanceCongruentCollisionKeepsEarliest(t *testing.T) {
	g := New()
	a := g.AddExpr(expr.Sym("a"))
	b := g.AddExpr(expr.Sym("b"))
	c := g.AddExpr(expr.Sym("c"))
	g.EnableProvenance()

	g.SetRuleContext("first", 1, a)
	g.AddExpr(expr.MustParse("(+ a c)"))
	g.SetRuleContext("second", 3, b)
	g.AddExpr(expr.MustParse("(+ b c)"))
	g.ClearRuleContext()

	g.Union(a, b)
	g.Rebuild()

	n := ENode{Op: expr.OpAdd, Args: []ClassID{g.Find(a), g.Find(c)}}
	j, ok := g.NodeProvenance(n)
	if !ok {
		t.Fatal("justification lost after congruent merge")
	}
	if j.Rule != "first" || j.Iteration != 1 {
		t.Fatalf("justification = %+v, want the earlier {first 1}", j)
	}
}

// TestRunnerRecordsProvenance drives provenance through the saturation
// runner: every justified node names a real rule and a valid iteration.
func TestRunnerRecordsProvenance(t *testing.T) {
	e, rules := saturationWorkload(4)
	g := New()
	g.AddExpr(e)
	g.EnableProvenance()
	rep := Run(g, rules, Limits{MaxIterations: 3, MaxNodes: 10_000})

	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name()] = true
	}
	count := 0
	g.Classes(func(cls *EClass) {
		for _, n := range cls.Nodes {
			j, ok := g.NodeProvenance(n)
			if !ok {
				continue
			}
			count++
			if !names[j.Rule] {
				t.Fatalf("justified by unknown rule %q", j.Rule)
			}
			if j.Iteration < 1 || j.Iteration > rep.Iterations {
				t.Fatalf("iteration %d outside run's 1..%d", j.Iteration, rep.Iterations)
			}
		}
	})
	if count == 0 {
		t.Fatal("saturation run recorded no justified nodes")
	}
	if rep.Applied > 0 && len(g.Unions()) == 0 {
		t.Fatal("rules applied but no unions recorded")
	}
}
