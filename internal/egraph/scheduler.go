package egraph

// Backoff is egg's BackoffScheduler: rules whose match count explodes are
// temporarily banned with exponentially growing ban lengths, so expensive
// rule families (classically associativity/commutativity, §3.3) cannot
// starve the rest of the search. A run only reports saturation when a full
// iteration with no active bans produces no change.
type Backoff struct {
	// MatchLimit is the per-rule, per-iteration match budget before the
	// rule is banned (doubled after each ban). 0 means 1024.
	MatchLimit int
	// BanLength is the initial ban duration in iterations (doubled after
	// each ban). 0 means 4.
	BanLength int

	stats map[string]*backoffStat
}

type backoffStat struct {
	bans        int
	bannedUntil int
}

func (b *Backoff) limit() int {
	if b.MatchLimit <= 0 {
		return 1024
	}
	return b.MatchLimit
}

func (b *Backoff) banLen() int {
	if b.BanLength <= 0 {
		return 4
	}
	return b.BanLength
}

func (b *Backoff) stat(name string) *backoffStat {
	if b.stats == nil {
		b.stats = map[string]*backoffStat{}
	}
	s, ok := b.stats[name]
	if !ok {
		s = &backoffStat{}
		b.stats[name] = s
	}
	return s
}

// banned reports whether the rule sits out this iteration.
func (b *Backoff) banned(name string, iter int) bool {
	return b.stat(name).bannedUntil > iter
}

// record inspects a rule's match count; if over budget it bans the rule and
// reports that its matches must be discarded this iteration.
func (b *Backoff) record(name string, matches, iter int) (skip bool) {
	s := b.stat(name)
	lim := b.limit() << uint(s.bans)
	if matches <= lim {
		return false
	}
	s.bannedUntil = iter + b.banLen()<<uint(s.bans)
	s.bans++
	return true
}

// Stat reports a rule's lifetime ban count and the first iteration at
// which its current ban no longer applies ((0, 0) for rules never banned).
// Read-only: it does not materialize state for unknown rules.
func (b *Backoff) Stat(name string) (bans, bannedUntil int) {
	if b == nil || b.stats == nil {
		return 0, 0
	}
	s, ok := b.stats[name]
	if !ok {
		return 0, 0
	}
	return s.bans, s.bannedUntil
}

// anyBanned reports whether any rule is banned at the given iteration.
func (b *Backoff) anyBanned(iter int) bool {
	for _, s := range b.stats {
		if s.bannedUntil > iter {
			return true
		}
	}
	return false
}
