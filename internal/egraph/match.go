package egraph

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"diospyros/internal/expr"
)

// Pattern is a term pattern for e-matching. A pattern is either a variable
// (Var non-empty), which matches any e-class and binds it, or an operator
// applied to sub-patterns. Terminal patterns can match exact payloads.
type Pattern struct {
	Var string // pattern variable, e.g. "?a"; exclusive with Op use

	Op     expr.Op
	Lit    float64 // for expr.OpLit
	Sym    string  // for OpSym/OpGet/OpFunc payloads; "" matches any for Get/Func
	Idx    int     // for OpGet; IdxAny matches any index
	IdxAny bool
	Args   []*Pattern
}

// PVar constructs a pattern variable.
func PVar(name string) *Pattern { return &Pattern{Var: name} }

// PLit constructs a literal pattern.
func PLit(v float64) *Pattern { return &Pattern{Op: expr.OpLit, Lit: v} }

// POp constructs an operator pattern.
func POp(op expr.Op, args ...*Pattern) *Pattern { return &Pattern{Op: op, Args: args} }

// ParsePattern parses an s-expression pattern. Tokens beginning with '?' are
// pattern variables; other syntax matches the expr DSL.
//
//	(+ ?a (* ?b ?c))
func ParsePattern(src string) (*Pattern, error) {
	p := &patParser{src: src}
	pat, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("egraph: trailing input in pattern %q", src)
	}
	return pat, nil
}

// MustPattern is ParsePattern, panicking on error (for rule tables).
func MustPattern(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

type patParser struct {
	src string
	pos int
}

func (p *patParser) skip() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *patParser) token() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

var patHeads = func() map[string]expr.Op {
	m := map[string]expr.Op{}
	for op := expr.Op(0); op < expr.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *patParser) parse() (*Pattern, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("egraph: unexpected end of pattern")
	}
	if p.src[p.pos] != '(' {
		tok := p.token()
		if tok == "" {
			return nil, fmt.Errorf("egraph: bad pattern at offset %d", p.pos)
		}
		if strings.HasPrefix(tok, "?") {
			return PVar(tok), nil
		}
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			return PLit(v), nil
		}
		return &Pattern{Op: expr.OpSym, Sym: tok}, nil
	}
	p.pos++ // consume '('
	p.skip()
	head := p.token()
	op, ok := patHeads[head]
	if !ok {
		return nil, fmt.Errorf("egraph: unknown pattern operator %q", head)
	}
	pat := &Pattern{Op: op}
	switch op {
	case expr.OpGet:
		p.skip()
		pat.Sym = p.token() // "?" or "" means any array
		if strings.HasPrefix(pat.Sym, "?") {
			pat.Sym = ""
		}
		p.skip()
		idxTok := p.token()
		if strings.HasPrefix(idxTok, "?") {
			pat.IdxAny = true
		} else {
			idx, err := strconv.Atoi(idxTok)
			if err != nil {
				return nil, fmt.Errorf("egraph: Get pattern index %q", idxTok)
			}
			pat.Idx = idx
		}
	case expr.OpFunc, expr.OpVecFunc:
		p.skip()
		pat.Sym = p.token()
		if strings.HasPrefix(pat.Sym, "?") {
			pat.Sym = ""
		}
		fallthrough
	default:
		for {
			p.skip()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("egraph: unterminated pattern %q", p.src)
			}
			if p.src[p.pos] == ')' {
				break
			}
			a, err := p.parse()
			if err != nil {
				return nil, err
			}
			pat.Args = append(pat.Args, a)
		}
	}
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, fmt.Errorf("egraph: missing ')' in pattern")
	}
	p.pos++
	return pat, nil
}

// Vars returns the distinct variable names in the pattern, in first-use order.
func (p *Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(*Pattern)
	walk = func(q *Pattern) {
		if q.Var != "" {
			if !seen[q.Var] {
				seen[q.Var] = true
				out = append(out, q.Var)
			}
			return
		}
		for _, a := range q.Args {
			walk(a)
		}
	}
	walk(p)
	return out
}

// Subst maps pattern variables to e-classes.
type Subst map[string]ClassID

func (s Subst) clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Match is one result of searching a rewrite's left-hand side: the class
// where it matched and the variable bindings. Custom searchers may attach
// arbitrary data for their applier.
type Match struct {
	Class ClassID
	Subst Subst
	Data  any
}

// SearchPattern finds all matches of the pattern anywhere in the graph.
func (g *EGraph) SearchPattern(p *Pattern) []Match {
	var out []Match
	g.Classes(func(cls *EClass) {
		out = append(out, g.matchClass(p, cls.ID)...)
	})
	return out
}

// matchClass matches p against one class, returning all substitutions.
func (g *EGraph) matchClass(p *Pattern, id ClassID) []Match {
	substs := g.matchIn(p, g.Find(id), Subst{})
	out := make([]Match, 0, len(substs))
	for _, s := range substs {
		out = append(out, Match{Class: g.Find(id), Subst: s})
	}
	return out
}

// matchIn returns all extensions of subst under which p matches class id.
func (g *EGraph) matchIn(p *Pattern, id ClassID, subst Subst) []Subst {
	id = g.Find(id)
	if p.Var != "" {
		if bound, ok := subst[p.Var]; ok {
			if g.Find(bound) == id {
				return []Subst{subst}
			}
			return nil
		}
		s := subst.clone()
		s[p.Var] = id
		return []Subst{s}
	}
	cls := g.classes[id]
	if cls == nil {
		return nil
	}
	var results []Subst
	for _, n := range cls.Nodes {
		if !g.nodeMatches(p, n) {
			continue
		}
		partial := []Subst{subst}
		for i, argPat := range p.Args {
			var next []Subst
			for _, s := range partial {
				next = append(next, g.matchIn(argPat, n.Args[i], s)...)
			}
			partial = next
			if len(partial) == 0 {
				break
			}
		}
		results = append(results, partial...)
	}
	return results
}

// nodeMatches checks the node-local parts of a pattern (operator, payload,
// arity) without descending into children. Pattern symbols stay strings
// (patterns are shared across graphs); they are resolved against the
// graph's intern table here — a symbol never interned in this graph cannot
// appear on any node, so such patterns simply match nothing.
func (g *EGraph) nodeMatches(p *Pattern, n ENode) bool {
	if p.Op != n.Op {
		return false
	}
	switch p.Op {
	case expr.OpLit:
		return p.Lit == n.Lit
	case expr.OpSym:
		sid, ok := g.syms.Lookup(p.Sym)
		return ok && sid == n.Sym
	case expr.OpGet:
		if p.Sym != "" {
			sid, ok := g.syms.Lookup(p.Sym)
			if !ok || sid != n.Sym {
				return false
			}
		}
		return p.IdxAny || p.Idx == n.Idx
	case expr.OpFunc, expr.OpVecFunc:
		if p.Sym != "" {
			sid, ok := g.syms.Lookup(p.Sym)
			if !ok || sid != n.Sym {
				return false
			}
		}
	}
	return len(p.Args) == len(n.Args)
}

// Instantiate adds the pattern to the graph under the substitution,
// returning the resulting class. All pattern variables must be bound.
func (g *EGraph) Instantiate(p *Pattern, subst Subst) (ClassID, error) {
	if p.Var != "" {
		id, ok := subst[p.Var]
		if !ok {
			return 0, fmt.Errorf("egraph: unbound pattern variable %s", p.Var)
		}
		return g.Find(id), nil
	}
	n := ENode{Op: p.Op, Lit: p.Lit, Sym: g.InternSym(p.Sym), Idx: p.Idx}
	if len(p.Args) > 0 {
		n.Args = make([]ClassID, len(p.Args))
		for i, a := range p.Args {
			id, err := g.Instantiate(a, subst)
			if err != nil {
				return 0, err
			}
			n.Args[i] = id
		}
	}
	return g.Add(n), nil
}

// String renders the pattern in s-expression syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Pattern) write(b *strings.Builder) {
	if p.Var != "" {
		b.WriteString(p.Var)
		return
	}
	switch p.Op {
	case expr.OpLit:
		fmt.Fprintf(b, "%g", p.Lit)
	case expr.OpSym:
		b.WriteString(p.Sym)
	case expr.OpGet:
		sym := p.Sym
		if sym == "" {
			sym = "?arr"
		}
		if p.IdxAny {
			fmt.Fprintf(b, "(Get %s ?i)", sym)
		} else {
			fmt.Fprintf(b, "(Get %s %d)", sym, p.Idx)
		}
	default:
		b.WriteByte('(')
		b.WriteString(p.Op.String())
		if p.Op == expr.OpFunc || p.Op == expr.OpVecFunc {
			b.WriteByte(' ')
			if p.Sym == "" {
				b.WriteString("?f")
			} else {
				b.WriteString(p.Sym)
			}
		}
		for _, a := range p.Args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	}
}
