package egraph

import (
	"sync"
	"time"
)

// The search flight recorder. A Journal is a bounded, concurrently readable
// ring buffer of saturation events: per-iteration per-rule attribution
// (matches, applications, new nodes, rule wall time), Backoff ban/unban
// events, iteration summaries, and a best-cost trajectory per root. The
// runner records into it only when Limits.Journal is non-nil — disabled
// runs pay a single nil check per iteration — and readers (the SSE stream,
// the HTML report) consume events with Events or EventsSince while the run
// is still writing.

// JournalEventKind discriminates journal events.
type JournalEventKind string

const (
	// JournalRule: one rule's activity within one iteration (emitted only
	// for rules that matched at least once).
	JournalRule JournalEventKind = "rule"
	// JournalBan: the Backoff scheduler banned a rule for over-matching.
	JournalBan JournalEventKind = "ban"
	// JournalUnban: a previously banned rule rejoined the search.
	JournalUnban JournalEventKind = "unban"
	// JournalIteration: the post-rebuild summary of one iteration.
	JournalIteration JournalEventKind = "iteration"
	// JournalCost: the best extractable cost of a root after an iteration.
	JournalCost JournalEventKind = "cost"
	// JournalMemory: the e-graph's per-component logical footprint after an
	// iteration's rebuild — the memory trajectory beside the cost trajectory.
	JournalMemory JournalEventKind = "memory"
)

// JournalEvent is one flight-recorder entry. Fields are populated per kind;
// unused fields are zero and omitted from JSON.
type JournalEvent struct {
	// Seq is the event's global sequence number (0-based, monotonically
	// increasing across the run, including evicted events).
	Seq uint64 `json:"seq"`
	// Kind discriminates the event.
	Kind JournalEventKind `json:"kind"`
	// Iteration is the 1-based saturation iteration.
	Iteration int `json:"iteration"`

	// Rule names the rewrite (rule, ban, unban events).
	Rule string `json:"rule,omitempty"`
	// Matches is the rule's match count this iteration (rule, ban).
	Matches int `json:"matches,omitempty"`
	// Applied counts successful applications this iteration (rule).
	Applied int `json:"applied,omitempty"`
	// NewNodes is the e-node growth attributed to this rule's applications
	// this iteration (rule).
	NewNodes int `json:"new_nodes,omitempty"`
	// Duration is the rule's search+apply wall time this iteration (rule),
	// or the whole iteration's wall time (iteration).
	Duration time.Duration `json:"duration_ns,omitempty"`

	// BannedUntil is the 1-based iteration at which the ban expires (ban).
	BannedUntil int `json:"banned_until,omitempty"`
	// Bans is the rule's lifetime ban count after this event (ban).
	Bans int `json:"bans,omitempty"`

	// Nodes/Classes are the e-graph size after rebuild (iteration).
	Nodes   int `json:"nodes,omitempty"`
	Classes int `json:"classes,omitempty"`

	// Root and Cost carry the best-cost trajectory (cost events).
	Root ClassID `json:"root,omitempty"`
	Cost float64 `json:"cost,omitempty"`

	// Bytes is the total logical footprint (memory events), including the
	// journal ring itself.
	Bytes int64 `json:"bytes,omitempty"`
	// Memory is the per-component breakdown behind Bytes (memory events).
	Memory *Footprint `json:"memory,omitempty"`
}

// DefaultJournalCap bounds a Journal created with NewJournal(0).
const DefaultJournalCap = 4096

// costSampleMaxNodes caps the graph size at which the per-iteration cost
// sampler still runs: sampling performs a full extraction fixpoint, which
// is linear in e-nodes per pass and would dominate huge searches.
const costSampleMaxNodes = 200_000

// Journal is the flight recorder's event buffer. The zero value is not
// usable; call NewJournal. All methods are safe for concurrent use and
// nil-receiver safe, so the runner records unconditionally through a nil
// journal at no cost beyond the nil check.
type Journal struct {
	mu   sync.Mutex
	buf  []JournalEvent
	next uint64 // total events ever appended; also the next Seq

	// strBytes tracks the variable bytes (rule-name strings, footprint
	// breakdowns) held by events currently in the ring, so ByteSize stays
	// O(1) as events are appended and overwritten.
	strBytes int64

	costRoots []ClassID
	costFn    func(*EGraph, ClassID) (float64, bool)
}

// NewJournal creates a journal holding the last capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]JournalEvent, 0, capacity)}
}

// SampleCost arms the per-iteration best-cost trajectory: after each
// iteration's rebuild the runner calls fn for every root and records a cost
// event. fn typically runs an extraction fixpoint, so sampling is skipped
// once the graph exceeds 200k nodes to keep recorder overhead bounded.
func (j *Journal) SampleCost(roots []ClassID, fn func(g *EGraph, root ClassID) (float64, bool)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.costRoots = append([]ClassID(nil), roots...)
	j.costFn = fn
	j.mu.Unlock()
}

// append records one event, stamping its sequence number. Older events are
// evicted once the buffer is full.
func (j *Journal) append(ev JournalEvent) {
	if j == nil {
		return
	}
	j.mu.Lock()
	ev.Seq = j.next
	j.next++
	if len(j.buf) < cap(j.buf) {
		j.strBytes += eventVarBytes(ev)
		j.buf = append(j.buf, ev)
	} else {
		// Ring: overwrite the slot the sequence number maps to.
		slot := ev.Seq % uint64(cap(j.buf))
		j.strBytes += eventVarBytes(ev) - eventVarBytes(j.buf[slot])
		j.buf[slot] = ev
	}
	j.mu.Unlock()
}

// eventVarBytes is the variable payload one ring slot holds beyond the
// JournalEvent struct itself.
func eventVarBytes(ev JournalEvent) int64 {
	n := int64(len(ev.Rule))
	if ev.Memory != nil {
		n += footprintSize
	}
	return n
}

// ByteSize returns the logical bytes held by the journal ring: the occupied
// slots plus their variable payloads. O(1) and nil-safe (0 when disarmed).
func (j *Journal) ByteSize() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return int64(len(j.buf))*journalEventSize + j.strBytes
}

// Footprint returns the journal's share of the memory breakdown: buffered
// event count and ring bytes. Nil-safe; a disarmed journal is zero.
func (j *Journal) Footprint() FootprintComponent {
	if j == nil {
		return FootprintComponent{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return FootprintComponent{
		Entries: len(j.buf),
		Bytes:   int64(len(j.buf))*journalEventSize + j.strBytes,
	}
}

// Total returns how many events were ever recorded (including evicted).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events were evicted by the ring bound.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped()
}

func (j *Journal) dropped() uint64 {
	if j.next > uint64(len(j.buf)) {
		return j.next - uint64(len(j.buf))
	}
	return 0
}

// Events returns the buffered events in sequence order (oldest first).
func (j *Journal) Events() []JournalEvent {
	evs, _ := j.EventsSince(0)
	return evs
}

// EventsSince returns buffered events with Seq >= since, oldest first, plus
// the sequence cursor to pass next time. Streaming readers poll it while
// the run is writing; events evicted before the reader caught up are lost
// (the gap is visible as non-contiguous Seq values).
func (j *Journal) EventsSince(since uint64) ([]JournalEvent, uint64) {
	if j == nil {
		return nil, since
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next == 0 {
		return nil, since
	}
	oldest := j.dropped()
	if since < oldest {
		since = oldest
	}
	if since >= j.next {
		return nil, j.next
	}
	out := make([]JournalEvent, 0, j.next-since)
	for seq := since; seq < j.next; seq++ {
		if len(j.buf) < cap(j.buf) {
			out = append(out, j.buf[seq])
		} else {
			out = append(out, j.buf[seq%uint64(cap(j.buf))])
		}
	}
	return out, j.next
}

// sampleCosts records the best-cost trajectory for the armed roots; called
// by the runner after each iteration's rebuild.
func (j *Journal) sampleCosts(g *EGraph, iteration int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	roots, fn := j.costRoots, j.costFn
	j.mu.Unlock()
	if fn == nil || g.NumNodes() > costSampleMaxNodes {
		return
	}
	for _, root := range roots {
		if c, ok := fn(g, root); ok {
			j.append(JournalEvent{Kind: JournalCost, Iteration: iteration, Root: root, Cost: c})
		}
	}
}

// sampleMemory records one memory event carrying the e-graph's footprint
// plus the journal's own ring share; called by the runner after each
// iteration's rebuild. Nil-safe: a disarmed journal records nothing.
func (j *Journal) sampleMemory(g *EGraph, iteration int) {
	if j == nil {
		return
	}
	fp := g.Footprint()
	fp.Journal = j.Footprint()
	fp.Total += fp.Journal.Bytes
	j.append(JournalEvent{Kind: JournalMemory, Iteration: iteration, Bytes: fp.Total, Memory: &fp})
}
