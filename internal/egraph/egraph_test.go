package egraph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"diospyros/internal/expr"
)

func TestAddHashconsing(t *testing.T) {
	g := New()
	a1 := g.AddExpr(expr.MustParse("(+ (Get a 0) (Get b 0))"))
	a2 := g.AddExpr(expr.MustParse("(+ (Get a 0) (Get b 0))"))
	if a1 != a2 {
		t.Fatalf("identical exprs got different classes: %d vs %d", a1, a2)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3 (two Gets, one +)", g.NumNodes())
	}
	b := g.AddExpr(expr.MustParse("(+ (Get b 0) (Get a 0))"))
	if b == a1 {
		t.Fatal("commuted expr should be a different class (no AC by default)")
	}
}

func TestLookup(t *testing.T) {
	g := New()
	id := g.AddExpr(expr.MustParse("(* x y)"))
	x, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "x", 0))
	y, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "y", 0))
	got, ok := g.Lookup(ENode{Op: expr.OpMul, Args: []ClassID{x, y}})
	if !ok || got != id {
		t.Fatalf("Lookup = %d, %v; want %d, true", got, ok, id)
	}
	if _, ok := g.Lookup(ENode{Op: expr.OpAdd, Args: []ClassID{x, y}}); ok {
		t.Fatal("Lookup found a node that was never added")
	}
}

func TestUnionFind(t *testing.T) {
	g := New()
	x := g.AddExpr(expr.Sym("x"))
	y := g.AddExpr(expr.Sym("y"))
	z := g.AddExpr(expr.Sym("z"))
	if _, changed := g.Union(x, y); !changed {
		t.Fatal("first union should change the graph")
	}
	if _, changed := g.Union(x, y); changed {
		t.Fatal("repeated union should not change the graph")
	}
	g.Union(y, z)
	g.Rebuild()
	if g.Find(x) != g.Find(z) {
		t.Fatal("union not transitive")
	}
	if g.NumClasses() != 1 {
		t.Fatalf("NumClasses = %d, want 1", g.NumClasses())
	}
}

// TestCongruenceClosure is the canonical e-graph test: after asserting a = b,
// f(a) and f(b) must become equal when the graph is rebuilt.
func TestCongruenceClosure(t *testing.T) {
	g := New()
	fa := g.AddExpr(expr.MustParse("(sqrt a)"))
	fb := g.AddExpr(expr.MustParse("(sqrt b)"))
	if g.Find(fa) == g.Find(fb) {
		t.Fatal("f(a) and f(b) equal before union")
	}
	a, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "a", 0))
	b, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "b", 0))
	g.Union(a, b)
	g.Rebuild()
	if g.Find(fa) != g.Find(fb) {
		t.Fatal("congruence not restored: sqrt(a) != sqrt(b) after a=b")
	}
	if bad := g.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariant violations: %v", bad)
	}
}

// Nested congruence: a=b should propagate through g(f(x)) chains.
func TestCongruenceClosureDeep(t *testing.T) {
	g := New()
	l := g.AddExpr(expr.MustParse("(sqrt (neg (+ a 1)))"))
	r := g.AddExpr(expr.MustParse("(sqrt (neg (+ b 1)))"))
	a, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "a", 0))
	b, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "b", 0))
	g.Union(a, b)
	g.Rebuild()
	if g.Find(l) != g.Find(r) {
		t.Fatal("deep congruence not restored")
	}
}

func TestCongruenceMergesParentsAcrossOps(t *testing.T) {
	g := New()
	// Two different parents over the same children: (+ a c) and (* a c).
	// Unioning a=b must merge (+ a c) with (+ b c) but NOT with (* a c).
	addA := g.AddExpr(expr.MustParse("(+ a c)"))
	addB := g.AddExpr(expr.MustParse("(+ b c)"))
	mulA := g.AddExpr(expr.MustParse("(* a c)"))
	a, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "a", 0))
	b, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "b", 0))
	g.Union(a, b)
	g.Rebuild()
	if g.Find(addA) != g.Find(addB) {
		t.Fatal("congruent + parents not merged")
	}
	if g.Find(addA) == g.Find(mulA) {
		t.Fatal("* parent wrongly merged with +")
	}
}

func TestPatternParse(t *testing.T) {
	cases := []struct {
		src  string
		vars []string
	}{
		{"?a", []string{"?a"}},
		{"(+ ?a ?b)", []string{"?a", "?b"}},
		{"(+ ?a (* ?b ?a))", []string{"?a", "?b"}},
		{"(VecMAC ?acc ?b ?c)", []string{"?acc", "?b", "?c"}},
		{"(Get ?arr ?i)", nil},
		{"(+ ?a 0)", []string{"?a"}},
	}
	for _, c := range cases {
		p, err := ParsePattern(c.src)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", c.src, err)
		}
		if got := p.Vars(); !reflect.DeepEqual(got, c.vars) {
			t.Errorf("Vars(%q) = %v, want %v", c.src, got, c.vars)
		}
	}
	if _, err := ParsePattern("(bogus ?a)"); err == nil {
		t.Error("expected error for unknown operator")
	}
}

func TestSearchPattern(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ (Get a 0) (* (Get b 0) (Get c 0)))"))
	ms := g.SearchPattern(MustPattern("(+ ?x (* ?y ?z))"))
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	s := ms[0].Subst
	wantX, _ := g.Lookup(g.LeafNode(expr.OpGet, 0, "a", 0))
	if g.Find(s["?x"]) != wantX {
		t.Errorf("?x bound to %d, want %d", s["?x"], wantX)
	}
	// Nonlinear pattern: (+ ?x ?x) must not match (+ a b).
	g2 := New()
	g2.AddExpr(expr.MustParse("(+ a b)"))
	g2.AddExpr(expr.MustParse("(+ c c)"))
	ms = g2.SearchPattern(MustPattern("(+ ?x ?x)"))
	if len(ms) != 1 {
		t.Fatalf("nonlinear: got %d matches, want 1", len(ms))
	}
}

func TestSearchPatternAcrossClasses(t *testing.T) {
	// After a union, patterns must see all nodes in the merged class.
	g := New()
	root := g.AddExpr(expr.MustParse("(sqrt x)"))
	alt := g.AddExpr(expr.MustParse("(* y y)"))
	g.Union(root, alt)
	g.Rebuild()
	ms := g.SearchPattern(MustPattern("(sqrt (* ?a ?a))"))
	// sqrt's child class is x (not merged), so no match expected there;
	// but (sqrt x) where x ~ nothing. Instead match (* ?a ?a) inside the
	// merged root class.
	ms = g.SearchPattern(MustPattern("(* ?a ?a)"))
	found := false
	for _, m := range ms {
		if g.Find(m.Class) == g.Find(root) {
			found = true
		}
	}
	if !found {
		t.Fatal("pattern did not see node added by union into merged class")
	}
}

func TestInstantiate(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ p q)"))
	ms := g.SearchPattern(MustPattern("(+ ?a ?b)"))
	if len(ms) != 1 {
		t.Fatal("setup failed")
	}
	id, err := g.Instantiate(MustPattern("(* ?b ?a)"), ms[0].Subst)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "q", 0))
	p, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "p", 0))
	want, ok := g.Lookup(ENode{Op: expr.OpMul, Args: []ClassID{q, p}})
	if !ok || want != id {
		t.Fatalf("Instantiate produced class %d, want %d", id, want)
	}
	if _, err := g.Instantiate(MustPattern("?zzz"), ms[0].Subst); err == nil {
		t.Error("expected unbound-variable error")
	}
}

func TestRunSimpleRewrite(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ (+ x 0) 0)"))
	rules := []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")}
	rep := Run(g, rules, Limits{})
	if !rep.Saturated() {
		t.Fatalf("run did not saturate: %+v", rep)
	}
	x, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "x", 0))
	if g.Find(root) != g.Find(x) {
		t.Fatal("(+ (+ x 0) 0) not rewritten to x")
	}
	if rep.PerRule["add-zero"] < 2 {
		t.Errorf("expected >=2 applications, got %d", rep.PerRule["add-zero"])
	}
}

func TestRunMACRewrite(t *testing.T) {
	// The paper's Figure 4: (VecAdd v1 (VecMul v2 v3)) gains a VecMAC node
	// in the same class.
	g := New()
	root := g.AddExpr(expr.MustParse("(VecAdd (Vec a 0) (VecMul (Vec b 0) (Vec c 0)))"))
	rules := []Rewrite{MustRewrite("vec-mac", "(VecAdd ?a (VecMul ?b ?c))", "(VecMAC ?a ?b ?c)")}
	rep := Run(g, rules, Limits{})
	if !rep.Saturated() {
		t.Fatalf("did not saturate: %+v", rep)
	}
	found := false
	for _, n := range g.Class(root).Nodes {
		if n.Op == expr.OpVecMAC {
			found = true
		}
	}
	if !found {
		t.Fatal("VecMAC node not in root class after rewrite")
	}
}

func TestRunNodeLimit(t *testing.T) {
	// Distribution over a deep sum explodes before it saturates; a small
	// node limit must stop the run and leave the graph consistent.
	g := New()
	g.AddExpr(expr.MustParse("(* a (+ b (+ c (+ d (+ e (+ f h))))))"))
	n0 := g.NumNodes()
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("commute-mul", "(* ?a ?b)", "(* ?b ?a)"),
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
	}
	rep := Run(g, rules, Limits{MaxNodes: n0 + 8, MaxIterations: 50})
	if rep.Reason != StopNodeLimit {
		t.Fatalf("Reason = %s, want node-limit (%+v)", rep.Reason, rep)
	}
	if bad := g.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants broken after early stop: %v", bad)
	}
}

func TestRunIterLimit(t *testing.T) {
	// Associativity over a long chain needs several iterations; cap at 1.
	g := New()
	g.AddExpr(expr.MustParse("(+ (+ (+ (+ a b) c) d) e)"))
	rules := []Rewrite{
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
	}
	rep := Run(g, rules, Limits{MaxIterations: 1})
	if rep.Reason != StopIterLimit || rep.Iterations != 1 {
		t.Fatalf("got %+v, want 1 iteration and iter-limit", rep)
	}
}

func TestBidirectionalRulesConverge(t *testing.T) {
	// a*(b+c) = a*b + a*c in both directions should saturate (hashconsing
	// prevents infinite ping-pong).
	g := New()
	root := g.AddExpr(expr.MustParse("(* a (+ b c))"))
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
	}
	rep := Run(g, rules, Limits{MaxIterations: 10, MaxNodes: 1000})
	if !rep.Saturated() {
		t.Fatalf("did not saturate: %+v", rep)
	}
	// Both forms live in the root class.
	var ops []expr.Op
	for _, n := range g.Class(root).Nodes {
		ops = append(ops, n.Op)
	}
	hasAdd, hasMul := false, false
	for _, op := range ops {
		if op == expr.OpAdd {
			hasAdd = true
		}
		if op == expr.OpMul {
			hasMul = true
		}
	}
	if !hasAdd || !hasMul {
		t.Fatalf("root class ops = %v, want both + and *", ops)
	}
}

// Property test: random unions preserve the e-graph invariants after Rebuild.
type unionScript struct {
	Exprs []uint8 // indices into a fixed expression pool
	Pairs []uint8
}

func (unionScript) Generate(r *rand.Rand, _ int) reflect.Value {
	s := unionScript{}
	n := 3 + r.Intn(6)
	for i := 0; i < n; i++ {
		s.Exprs = append(s.Exprs, uint8(r.Intn(len(exprPool))))
	}
	for i := 0; i < 2+r.Intn(8); i++ {
		s.Pairs = append(s.Pairs, uint8(r.Intn(n)), uint8(r.Intn(n)))
	}
	return reflect.ValueOf(s)
}

var exprPool = []string{
	"x", "y", "(+ x y)", "(* x y)", "(+ (+ x y) z)", "(sqrt x)",
	"(sqrt y)", "(* (sqrt x) (sqrt y))", "(+ x 0)", "(neg (+ x y))",
	"(Get a 0)", "(Get a 1)", "(+ (Get a 0) (Get a 1))",
	"(Vec (Get a 0) (Get a 1))", "(VecAdd (Vec x x) (Vec y y))",
}

func TestPropertyRebuildInvariants(t *testing.T) {
	f := func(s unionScript) bool {
		g := New()
		ids := make([]ClassID, len(s.Exprs))
		for i, ei := range s.Exprs {
			ids[i] = g.AddExpr(expr.MustParse(exprPool[ei]))
		}
		for i := 0; i+1 < len(s.Pairs); i += 2 {
			g.Union(ids[s.Pairs[i]], ids[s.Pairs[i+1]])
		}
		g.Rebuild()
		return len(g.CheckInvariants()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding the same expression twice always yields the same class,
// even interleaved with unions and rebuilds.
func TestPropertyHashconsStability(t *testing.T) {
	f := func(s unionScript) bool {
		g := New()
		ids := make([]ClassID, len(s.Exprs))
		for i, ei := range s.Exprs {
			ids[i] = g.AddExpr(expr.MustParse(exprPool[ei]))
		}
		for i := 0; i+1 < len(s.Pairs); i += 2 {
			g.Union(ids[s.Pairs[i]], ids[s.Pairs[i+1]])
			g.Rebuild()
		}
		for i, ei := range s.Exprs {
			if g.Find(g.AddExpr(expr.MustParse(exprPool[ei]))) != g.Find(ids[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassesIterationIsCanonical(t *testing.T) {
	g := New()
	a := g.AddExpr(expr.Sym("a"))
	b := g.AddExpr(expr.Sym("b"))
	g.Union(a, b)
	g.Rebuild()
	count := 0
	g.Classes(func(cls *EClass) {
		count++
		if g.Find(cls.ID) != cls.ID {
			t.Error("visited non-canonical class")
		}
	})
	if count != 1 {
		t.Fatalf("visited %d classes, want 1", count)
	}
}

func TestBackoffSchedulerBoundsExplosiveRules(t *testing.T) {
	// Full AC on a deep sum explodes; with the backoff scheduler the run
	// survives a tight node budget long enough for the useful rule to fire.
	build := func() (*EGraph, ClassID) {
		g := New()
		id := g.AddExpr(expr.MustParse("(+ (+ (+ (+ (+ (+ a b) c) d) e) f) 0)"))
		return g, id
	}
	rules := []Rewrite{
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
		MustRewrite("add-0", "(+ ?a 0)", "?a"),
	}
	// Without backoff the AC rules eat the node budget quickly.
	g1, _ := build()
	rep1 := Run(g1, rules, Limits{MaxNodes: 2000, MaxIterations: 64})
	if rep1.Reason != StopNodeLimit {
		t.Logf("without backoff: %s in %d iterations", rep1.Reason, rep1.Iterations)
	}
	// With backoff, the cheap simplification still lands.
	g2, root2 := build()
	rep2 := Run(g2, rules, Limits{
		MaxNodes:      2000,
		MaxIterations: 64,
		Backoff:       &Backoff{MatchLimit: 8, BanLength: 2},
	})
	simplified := g2.AddExpr(expr.MustParse("(+ (+ (+ (+ (+ a b) c) d) e) f)"))
	if g2.Find(root2) != g2.Find(simplified) {
		t.Fatalf("add-0 did not apply under backoff scheduling (%+v)", rep2)
	}
	if rep2.PerRule["add-0"] == 0 {
		t.Fatal("add-0 never applied")
	}
}

func TestBackoffStillSaturatesSimpleRuns(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ (+ x 0) 0)"))
	rep := Run(g, []Rewrite{MustRewrite("add-zero", "(+ ?a 0)", "?a")},
		Limits{Backoff: &Backoff{}})
	if !rep.Saturated() {
		t.Fatalf("backoff prevented saturation: %+v", rep)
	}
	x, _ := g.Lookup(g.LeafNode(expr.OpSym, 0, "x", 0))
	if g.Find(root) != g.Find(x) {
		t.Fatal("rewrite missing")
	}
}

func TestToDot(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(VecAdd (Vec (Get a 0) x) (Vec 1.5 (func f y)))"))
	dot := g.ToDot()
	for _, want := range []string{
		"digraph egraph", "cluster_", "VecAdd", "Get a 0", "func f", "1.5",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// One cluster per class.
	if strings.Count(dot, "subgraph cluster_") != g.NumClasses() {
		t.Errorf("cluster count != class count")
	}
}
