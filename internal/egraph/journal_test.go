package egraph

import (
	"sync"
	"testing"

	"diospyros/internal/expr"
)

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.append(JournalEvent{Kind: JournalIteration, Iteration: i + 1})
	}
	if got := j.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.Iteration != int(wantSeq)+1 {
			t.Fatalf("event %d = seq %d iter %d, want seq %d iter %d",
				i, ev.Seq, ev.Iteration, wantSeq, wantSeq+1)
		}
	}
}

func TestJournalEventsSinceCursor(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 3; i++ {
		j.append(JournalEvent{Kind: JournalIteration, Iteration: i + 1})
	}
	evs, cur := j.EventsSince(0)
	if len(evs) != 3 || cur != 3 {
		t.Fatalf("first read = %d events, cursor %d; want 3, 3", len(evs), cur)
	}
	evs, cur = j.EventsSince(cur)
	if len(evs) != 0 || cur != 3 {
		t.Fatalf("caught-up read = %d events, cursor %d; want 0, 3", len(evs), cur)
	}
	j.append(JournalEvent{Kind: JournalIteration, Iteration: 4})
	evs, cur = j.EventsSince(cur)
	if len(evs) != 1 || evs[0].Iteration != 4 || cur != 4 {
		t.Fatalf("incremental read = %+v, cursor %d; want one iteration-4 event, 4", evs, cur)
	}
	// A cursor that fell behind the ring is clamped to the oldest survivor.
	small := NewJournal(2)
	for i := 0; i < 5; i++ {
		small.append(JournalEvent{Kind: JournalIteration, Iteration: i + 1})
	}
	evs, _ = small.EventsSince(0)
	if len(evs) != 2 || evs[0].Seq != 3 {
		t.Fatalf("lagging read = %+v, want the last two events", evs)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.append(JournalEvent{})
	j.SampleCost(nil, nil)
	j.sampleCosts(New(), 1)
	if j.Total() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal reported events")
	}
	if evs := j.Events(); evs != nil {
		t.Fatalf("nil journal Events = %v", evs)
	}
}

// TestRunJournalAttribution drives a real saturation with the journal on
// and checks that per-rule attribution, iteration summaries, and the cost
// trajectory all land.
func TestRunJournalAttribution(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ (* a (+ b c)) 0)"))
	j := NewJournal(0)
	j.SampleCost([]ClassID{root}, func(g *EGraph, r ClassID) (float64, bool) {
		return float64(g.NumNodes()), true
	})
	rules := []Rewrite{
		MustRewrite("add-zero", "(+ ?a 0)", "?a"),
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
	}
	rep := Run(g, rules, Limits{Journal: j})
	if !rep.Saturated() {
		t.Fatalf("run did not saturate: %v", rep.Reason)
	}

	var ruleEvents, iterEvents, costEvents int
	perRule := map[string]int{}
	for _, ev := range j.Events() {
		switch ev.Kind {
		case JournalRule:
			ruleEvents++
			perRule[ev.Rule] += ev.Applied
			if ev.Matches <= 0 {
				t.Fatalf("rule event without matches: %+v", ev)
			}
		case JournalIteration:
			iterEvents++
			if ev.Nodes <= 0 || ev.Classes <= 0 {
				t.Fatalf("iteration event missing graph size: %+v", ev)
			}
		case JournalCost:
			costEvents++
			if ev.Root != root || ev.Cost <= 0 {
				t.Fatalf("bad cost event: %+v", ev)
			}
		}
	}
	if ruleEvents == 0 {
		t.Fatal("no rule events recorded")
	}
	if iterEvents != rep.Iterations {
		t.Fatalf("iteration events = %d, want %d", iterEvents, rep.Iterations)
	}
	if costEvents != rep.Iterations {
		t.Fatalf("cost events = %d, want %d (one per iteration)", costEvents, rep.Iterations)
	}
	// Journal attribution must agree with the report's per-rule counts.
	for name, want := range rep.PerRule {
		if perRule[name] != want {
			t.Fatalf("journal applied[%s] = %d, report says %d", name, perRule[name], want)
		}
	}
}

// TestRunJournalBanEvents forces the Backoff scheduler to ban a rule and
// checks the ban and unban both appear in the journal.
func TestRunJournalBanEvents(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(+ (+ a b) (+ c (+ d e)))"))
	j := NewJournal(0)
	rules := []Rewrite{
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
	}
	rep := Run(g, rules, Limits{
		MaxIterations: 12,
		Backoff:       &Backoff{MatchLimit: 2, BanLength: 2},
		Journal:       j,
	})
	var bans, unbans int
	for _, ev := range j.Events() {
		switch ev.Kind {
		case JournalBan:
			bans++
			if ev.Rule != "comm-add" || ev.BannedUntil <= ev.Iteration || ev.Bans <= 0 {
				t.Fatalf("malformed ban event: %+v", ev)
			}
		case JournalUnban:
			unbans++
			if ev.Rule != "comm-add" {
				t.Fatalf("malformed unban event: %+v", ev)
			}
		}
	}
	if bans == 0 {
		t.Fatalf("no ban events in journal (report: %+v)", rep)
	}
	if unbans == 0 {
		t.Fatal("no unban events in journal")
	}
}

// TestJournalConcurrentReads exercises the journal under -race: a reader
// polls EventsSince while a saturation run writes.
func TestJournalConcurrentReads(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(* a (+ b (+ c (+ d e))))"))
	j := NewJournal(64)
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cursor uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			var evs []JournalEvent
			evs, cursor = j.EventsSince(cursor)
			_ = evs
		}
	}()
	Run(g, rules, Limits{MaxIterations: 8, Journal: j})
	close(done)
	wg.Wait()
	if j.Total() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestRunJournalWraparound drives a real saturation through a tiny ring and
// checks the flight recorder accounts for every evicted event: the drop
// count plus the surviving window cover the whole run, and the survivors
// are the contiguous tail of the sequence.
func TestRunJournalWraparound(t *testing.T) {
	g := New()
	g.AddExpr(expr.MustParse("(* a (+ b (+ c (+ d e))))"))
	j := NewJournal(4)
	rules := []Rewrite{
		MustRewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
	}
	Run(g, rules, Limits{MaxIterations: 6, Journal: j})
	if j.Dropped() == 0 {
		t.Fatalf("run recorded %d events; a ring of 4 should have evicted some", j.Total())
	}
	evs := j.Events()
	if uint64(len(evs))+j.Dropped() != j.Total() {
		t.Fatalf("accounting broken: %d buffered + %d dropped != %d total",
			len(evs), j.Dropped(), j.Total())
	}
	for i, ev := range evs {
		if want := j.Dropped() + uint64(i); ev.Seq != want {
			t.Fatalf("gap in the surviving window: event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}
