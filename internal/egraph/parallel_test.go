package egraph

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"diospyros/internal/expr"
)

// deepExpr builds a chain (+ (* x_i c) ...) wide enough that the e-graph
// clears the parallel matcher's class-count gate.
func deepExpr(n int) *expr.Expr {
	e := expr.Lit(0)
	for i := 0; i < n; i++ {
		e = expr.Add(e, expr.Mul(expr.Sym(fmt.Sprintf("x%d", i)), expr.Lit(float64(i%7))))
	}
	return e
}

func testRules() []Rewrite {
	return []Rewrite{
		MustRewrite("add-0-l", "(+ 0 ?a)", "?a"),
		MustRewrite("mul-0-r", "(* ?a 0)", "0"),
		MustRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		MustRewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
		MustRewrite("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
	}
}

// runWorkers saturates a fresh graph over deepExpr with the given worker
// count and returns the report plus a canonical dump of the final graph.
func runWorkers(t *testing.T, workers int, jr *Journal) (Report, string) {
	t.Helper()
	g := New()
	g.AddExpr(deepExpr(48))
	rep := Run(g, testRules(), Limits{
		MaxIterations: 4,
		MaxNodes:      20_000,
		MatchWorkers:  workers,
		Journal:       jr,
	})
	return rep, g.ToDot()
}

// TestParallelMatchDeterminism checks the tentpole contract: any worker
// count produces the same iteration count, application counts, per-rule
// attribution, and — via the dot dump — the same final e-graph as the
// serial matcher.
func TestParallelMatchDeterminism(t *testing.T) {
	repSerial, dotSerial := runWorkers(t, 1, nil)
	for _, workers := range []int{2, 4, 8} {
		rep, dot := runWorkers(t, workers, nil)
		if rep.Iterations != repSerial.Iterations || rep.Applied != repSerial.Applied ||
			rep.Nodes != repSerial.Nodes || rep.Classes != repSerial.Classes ||
			rep.Reason != repSerial.Reason {
			t.Fatalf("workers=%d report diverged: %+v vs serial %+v", workers, rep, repSerial)
		}
		if !reflect.DeepEqual(rep.PerRule, repSerial.PerRule) {
			t.Fatalf("workers=%d per-rule counts diverged:\n%v\nvs serial\n%v",
				workers, rep.PerRule, repSerial.PerRule)
		}
		if dot != dotSerial {
			t.Fatalf("workers=%d produced a different final e-graph", workers)
		}
	}
}

// TestParallelMatchGauges checks that the per-iteration gauges (the trace
// the server and bench read) are identical at different worker counts,
// modulo wall-time fields.
func TestParallelMatchGauges(t *testing.T) {
	repSerial, _ := runWorkers(t, 1, nil)
	repPar, _ := runWorkers(t, 8, nil)
	if len(repSerial.Iters) != len(repPar.Iters) {
		t.Fatalf("iteration gauge counts differ: %d vs %d", len(repSerial.Iters), len(repPar.Iters))
	}
	for i := range repSerial.Iters {
		a, b := repSerial.Iters[i], repPar.Iters[i]
		a.Duration, b.Duration = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iteration %d gauges diverged:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestParallelMatchJournalCounts checks that the flight recorder's rule
// attribution (matches, applications, new nodes) is identical at different
// worker counts; only Duration fields may differ.
func TestParallelMatchJournalCounts(t *testing.T) {
	type key struct {
		kind JournalEventKind
		iter int
		rule string
	}
	counts := func(jr *Journal) map[key][3]int {
		out := map[key][3]int{}
		for _, ev := range jr.Events() {
			if ev.Kind != JournalRule {
				continue
			}
			out[key{ev.Kind, ev.Iteration, ev.Rule}] = [3]int{ev.Matches, ev.Applied, ev.NewNodes}
		}
		return out
	}
	jrSerial := NewJournal(0)
	runWorkers(t, 1, jrSerial)
	jrPar := NewJournal(0)
	runWorkers(t, 8, jrPar)
	if jrSerial.Total() != jrPar.Total() {
		t.Fatalf("journal event totals differ: %d vs %d", jrSerial.Total(), jrPar.Total())
	}
	if !reflect.DeepEqual(counts(jrSerial), counts(jrPar)) {
		t.Fatalf("journal rule attribution diverged:\n%v\nvs\n%v", counts(jrSerial), counts(jrPar))
	}
}

// TestCompressPathsMakesFindReadOnly verifies the invariant the parallel
// matcher rests on: after CompressPaths every union-find chain has length
// at most one, so Find returns without writing.
func TestCompressPathsMakesFindReadOnly(t *testing.T) {
	g := New()
	ids := make([]ClassID, 20)
	for i := range ids {
		ids[i] = g.AddLeaf(expr.OpSym, 0, fmt.Sprintf("s%d", i), 0)
	}
	// Chain unions to build long paths.
	for i := 1; i < len(ids); i++ {
		g.Union(ids[i-1], ids[i])
	}
	g.Rebuild()
	g.CompressPaths()
	for i := range g.uf {
		root := g.uf[i]
		if g.uf[root] != root {
			t.Fatalf("uf[%d]=%d is not a root after CompressPaths", i, root)
		}
	}
	// All Finds must agree and must not alter the array.
	before := append([]ClassID(nil), g.uf...)
	want := g.Find(ids[0])
	for _, id := range ids {
		if got := g.Find(id); got != want {
			t.Fatalf("Find(%d)=%d, want %d", id, got, want)
		}
	}
	if !reflect.DeepEqual(before, g.uf) {
		t.Fatal("Find mutated the union-find after CompressPaths")
	}
}

// TestParallelSearchCancellation checks that a cancelled context stops the
// parallel matcher and reports StopCancelled.
func TestParallelSearchCancellation(t *testing.T) {
	g := New()
	g.AddExpr(deepExpr(64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := RunContext(ctx, g, testRules(), Limits{MaxIterations: 6, MatchWorkers: 4})
	if rep.Reason != StopCancelled {
		t.Fatalf("reason = %s, want %s", rep.Reason, StopCancelled)
	}
}

// TestMatchWorkersResolution covers the Limits.MatchWorkers defaulting.
func TestMatchWorkersResolution(t *testing.T) {
	if got := (Limits{}).matchWorkers(); got != DefaultMatchWorkers() {
		t.Fatalf("zero MatchWorkers resolved to %d, want %d", got, DefaultMatchWorkers())
	}
	if got := (Limits{MatchWorkers: -3}).matchWorkers(); got != 1 {
		t.Fatalf("negative MatchWorkers resolved to %d, want 1", got)
	}
	if got := (Limits{MatchWorkers: 5}).matchWorkers(); got != 5 {
		t.Fatalf("MatchWorkers=5 resolved to %d", got)
	}
}
