package egraph

import "sync/atomic"

// Progress is a concurrently readable snapshot of a running saturation:
// the current iteration, the e-graph's node/class counts, and its logical
// footprint in bytes, published by RunContext as the run advances (each
// iteration start, each rebuild, and every ctxCheckInterval applies). It
// exists for watchdogs — a goroutine outside the run can poll Snapshot and
// cancel the run's context when a node, heap, or wall-clock budget is
// exceeded, without touching the (unlocked) e-graph itself. All fields are
// atomics; the zero value is ready to use.
type Progress struct {
	iteration atomic.Int64
	nodes     atomic.Int64
	classes   atomic.Int64
	bytes     atomic.Int64
}

// ProgressSnapshot is one consistent-enough read of a Progress: the four
// values are loaded independently, which is fine for budget checks.
type ProgressSnapshot struct {
	Iteration int // 1-based; 0 before the first iteration starts
	Nodes     int
	Classes   int
	// Bytes is the e-graph's logical footprint (FootprintBytes plus the
	// journal ring, when armed) at the last publish.
	Bytes int64
}

// Snapshot returns the most recently published state. Safe to call from
// any goroutine, including while the run mutates the e-graph.
func (p *Progress) Snapshot() ProgressSnapshot {
	return ProgressSnapshot{
		Iteration: int(p.iteration.Load()),
		Nodes:     int(p.nodes.Load()),
		Classes:   int(p.classes.Load()),
		Bytes:     p.bytes.Load(),
	}
}

// publish records the run's current state. Called only by RunContext's
// goroutine; nil-safe so the runner needs no branches at publish sites.
func (p *Progress) publish(iteration, nodes, classes int, bytes int64) {
	if p == nil {
		return
	}
	p.iteration.Store(int64(iteration))
	p.nodes.Store(int64(nodes))
	p.classes.Store(int64(classes))
	p.bytes.Store(bytes)
}
