// Package egraph implements an e-graph (equality graph) with hashconsing,
// union–find, and deferred congruence-closure rebuilding, in the style of
// egg (Willsey et al., POPL 2021), which the Diospyros paper uses as its
// equality-saturation engine.
//
// An e-graph compactly represents a large set of equivalent terms. Nodes
// (ENode) are operators applied to equivalence classes (EClass); two nodes in
// the same class represent equal terms. Rewrite rules add nodes and merge
// classes; Rebuild restores the congruence invariant (equal children imply
// equal parents) after a batch of merges.
//
// Data layout (DESIGN.md §14): symbol payloads are interned per graph
// (SymbolTable, symbols.go) so nodes carry a 32-bit SymID instead of a
// string; the hashcons is keyed by a fixed-size binary key (memoKey,
// key.go) instead of a heap-allocated string; and the match phase
// dispatches rules through a per-iteration head-operator index (index.go)
// instead of scanning every class for every rule.
package egraph

import (
	"bytes"
	"sort"
	"strconv"

	"diospyros/internal/expr"
)

// ClassID identifies an equivalence class. IDs are stable but may be
// non-canonical after unions; use Find to canonicalize.
type ClassID uint32

// ENode is an operator applied to child equivalence classes. Terminals
// (literals, symbols, Get) carry payloads and have no children. Symbol
// payloads are interned: Sym is a graph-local SymID, resolved back to its
// string with EGraph.SymName and produced with EGraph.InternSym (or the
// LeafNode/AddLeaf helpers, which intern for you).
type ENode struct {
	Op   expr.Op
	Lit  float64 // payload for expr.OpLit
	Sym  SymID   // payload for OpSym, OpGet, OpFunc, OpVecFunc (interned)
	Idx  int     // payload for OpGet
	Args []ClassID
}

// Leaf reports whether the node has no children.
func (n ENode) Leaf() bool { return len(n.Args) == 0 }

// clone returns a copy of n with its own Args slice.
func (n ENode) clone() ENode {
	c := n
	c.Args = append([]ClassID(nil), n.Args...)
	return c
}

type parent struct {
	node  ENode
	class ClassID
}

// EClass is an equivalence class of nodes.
type EClass struct {
	ID      ClassID
	Nodes   []ENode
	parents []parent
	// Data is scratch space for analyses (e.g. constant folding).
	Data any
}

// EGraph is the main structure. The zero value is not usable; call New.
type EGraph struct {
	uf      []ClassID // union-find parent pointers
	rank    []uint8
	classes map[ClassID]*EClass
	memo    map[memoKey]ClassID
	dirty   []ClassID // classes touched by unions, pending Rebuild

	// syms interns every symbol payload the graph has seen (symbols.go).
	syms SymbolTable

	// keyBuf backs the overflow bytes of wide-node keys and the legacy-key
	// encodings repair sorts by. Both users copy out of it before the next
	// use (string conversion copies; repair materializes its sort keys), so
	// a single buffer per graph is safe to reuse across every key build.
	keyBuf []byte

	// prov, when non-nil, records rewrite provenance (see provenance.go).
	prov *provenance

	// nodeCount is the running total of e-nodes across all classes
	// (NumNodes). The graph itself never refuses an Add; size limits are
	// enforced by the saturation runner, which polls NumNodes against
	// Limits.MaxNodes and stops the run with StopNodeLimit.
	nodeCount int

	// Footprint counters (see footprint.go). Maintained incrementally at
	// the same mutation sites as nodeCount so Footprint()/FootprintBytes()
	// stay O(1): nodePayload sums the variable payload bytes (Args backing
	// arrays) of nodes in class node lists, memoRestBytes sums the overflow
	// bytes of wide hashcons keys, parentCount counts parent back-reference
	// entries across all classes. Symbol-string bytes are owned by the
	// SymbolTable and accounted there.
	nodePayload   int64
	memoRestBytes int64
	parentCount   int
}

// New returns an empty e-graph.
func New() *EGraph {
	return &EGraph{
		classes: make(map[ClassID]*EClass),
		memo:    make(map[memoKey]ClassID),
	}
}

// NumClasses returns the number of canonical equivalence classes.
func (g *EGraph) NumClasses() int { return len(g.classes) }

// NumNodes returns the total number of e-nodes across all classes.
func (g *EGraph) NumNodes() int { return g.nodeCount }

// Find returns the canonical representative of the class. IDs that were
// never issued by this graph are returned unchanged (and will not resolve
// to any class).
//
// Find performs no writes when the chain from id to its root has length at
// most one, which is the steady state after CompressPaths (and, for IDs
// stored inside class node lists, after Rebuild). The parallel match phase
// relies on this: after a serial CompressPaths, concurrent searchers may
// call Find freely without racing on the union-find array.
func (g *EGraph) Find(id ClassID) ClassID {
	if int(id) >= len(g.uf) {
		return id
	}
	for g.uf[id] != id {
		next := g.uf[id]
		if g.uf[next] == next {
			// Parent is the root: nothing to halve, and — critically for
			// the read-only parallel search phase — nothing to write.
			return next
		}
		g.uf[id] = g.uf[next] // path halving
		id = g.uf[next]
	}
	return id
}

// CompressPaths fully compresses the union-find so every ID points directly
// at its canonical root. After it returns, Find never mutates the structure
// until the next Union, making the e-graph safe for concurrent read-only
// searchers. The saturation runner calls it once per iteration before
// fanning the match phase out across workers.
func (g *EGraph) CompressPaths() {
	for i := range g.uf {
		id := ClassID(i)
		for g.uf[id] != id {
			g.uf[id] = g.uf[g.uf[id]]
			id = g.uf[id]
		}
		g.uf[i] = id
	}
}

// Class returns the canonical class for id.
func (g *EGraph) Class(id ClassID) *EClass { return g.classes[g.Find(id)] }

// Classes calls f for every canonical class. It is safe for f to add nodes
// or union classes; newly created classes may or may not be visited.
func (g *EGraph) Classes(f func(*EClass)) {
	ids := make([]ClassID, 0, len(g.classes))
	for id := range g.classes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if cls, ok := g.classes[id]; ok && g.Find(id) == id {
			f(cls)
		}
	}
}

// CanonicalClasses returns every canonical class, sorted by ID — the
// snapshot the parallel match phase shards across workers. The slice is
// freshly allocated; the *EClass values are the live classes, so callers
// must not mutate them while other goroutines read the graph.
func (g *EGraph) CanonicalClasses() []*EClass {
	out := make([]*EClass, 0, len(g.classes))
	g.Classes(func(cls *EClass) { out = append(out, cls) })
	return out
}

// canonicalize rewrites the node's children to canonical class IDs in place.
func (g *EGraph) canonicalize(n *ENode) {
	for i, a := range n.Args {
		n.Args[i] = g.Find(a)
	}
}

// Lookup reports the class containing the (canonicalized) node, if any.
// The probe is allocation-free for nodes with at most four children:
// lookupKey canonicalizes while packing, so n is never copied or mutated.
func (g *EGraph) Lookup(n ENode) (ClassID, bool) {
	id, ok := g.memo[g.lookupKey(n)]
	if !ok {
		return 0, false
	}
	return g.Find(id), true
}

// Add inserts a node, returning its class. If an equal node already exists,
// the existing class is returned and the graph is unchanged. Nodes carrying
// a symbol must use a SymID interned in this graph (InternSym/LeafNode).
func (g *EGraph) Add(n ENode) ClassID {
	n = n.clone()
	g.canonicalize(&n)
	key := g.makeKey(n)
	if id, ok := g.memo[key]; ok {
		return g.Find(id)
	}
	id := ClassID(len(g.uf))
	g.uf = append(g.uf, id)
	g.rank = append(g.rank, 0)
	cls := &EClass{ID: id, Nodes: []ENode{n}}
	g.classes[id] = cls
	g.memo[key] = id
	g.nodeCount++
	g.nodePayload += nodePayloadBytes(n)
	g.memoRestBytes += key.restBytes()
	if g.prov != nil {
		g.prov.recordNode(key)
	}
	for _, child := range dedupClasses(n.Args) {
		cc := g.classes[child]
		cc.parents = append(cc.parents, parent{node: n, class: id})
		g.parentCount++
	}
	return id
}

func dedupClasses(ids []ClassID) []ClassID {
	if len(ids) <= 1 {
		return ids
	}
	seen := make(map[ClassID]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// AddLeaf inserts a terminal node for the given operator and payload,
// interning the symbol in the graph's table.
func (g *EGraph) AddLeaf(op expr.Op, lit float64, sym string, idx int) ClassID {
	return g.Add(g.LeafNode(op, lit, sym, idx))
}

// AddLit inserts a literal.
func (g *EGraph) AddLit(v float64) ClassID {
	return g.Add(ENode{Op: expr.OpLit, Lit: v})
}

// AddExpr inserts a whole expression, returning the root class. Shared
// subterm pointers (expression DAGs, as produced by symbolic evaluation of
// large kernels) are visited once.
func (g *EGraph) AddExpr(e *expr.Expr) ClassID {
	memo := make(map[*expr.Expr]ClassID)
	var add func(*expr.Expr) ClassID
	add = func(e *expr.Expr) ClassID {
		if id, ok := memo[e]; ok {
			return id
		}
		n := ENode{Op: e.Op, Lit: e.Lit, Sym: g.syms.Intern(e.Sym), Idx: e.Idx}
		if len(e.Args) > 0 {
			n.Args = make([]ClassID, len(e.Args))
			for i, a := range e.Args {
				n.Args[i] = add(a)
			}
		}
		id := g.Add(n)
		memo[e] = id
		return id
	}
	return add(e)
}

// Union merges the classes of a and b, returning the canonical class of the
// merged result and whether the graph changed.
func (g *EGraph) Union(a, b ClassID) (ClassID, bool) {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return ra, false
	}
	if g.prov != nil {
		g.prov.recordUnion(ra, rb)
	}
	// Union by rank; the loser's nodes and parents move to the winner.
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	} else if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
	g.uf[rb] = ra
	win, lose := g.classes[ra], g.classes[rb]
	win.Nodes = append(win.Nodes, lose.Nodes...)
	win.parents = append(win.parents, lose.parents...)
	delete(g.classes, rb)
	g.dirty = append(g.dirty, ra)
	return ra, true
}

// NeedsRebuild reports whether unions have occurred since the last Rebuild.
func (g *EGraph) NeedsRebuild() bool { return len(g.dirty) > 0 }

// Rebuild restores the congruence invariant after a batch of unions,
// in the deferred style of egg: it repairs the hashcons entries of parents
// of merged classes, discovering and applying congruence-induced unions
// until a fixpoint, then canonicalizes and deduplicates class node lists.
func (g *EGraph) Rebuild() {
	for len(g.dirty) > 0 {
		todo := g.dirty
		g.dirty = nil
		seen := make(map[ClassID]bool, len(todo))
		for _, id := range todo {
			root := g.Find(id)
			if !seen[root] {
				seen[root] = true
				g.repair(root)
			}
		}
	}
	g.canonicalizeClasses()
}

// repairEntry is one rebuilt parent, carrying the legacy byte encoding the
// emit order sorts by (see below).
type repairEntry struct {
	key    memoKey
	legacy []byte
	par    parent
}

func (g *EGraph) repair(id ClassID) {
	cls := g.classes[g.Find(id)]
	if cls == nil {
		return
	}
	oldParents := cls.parents
	cls.parents = nil
	g.parentCount -= len(oldParents)
	newParents := make(map[memoKey]int, len(oldParents))
	entries := make([]repairEntry, 0, len(oldParents))
	for _, p := range oldParents {
		// Remove the stale hashcons entry, re-canonicalize, re-insert.
		// Duplicate parent entries map to the same key, so the byte counter
		// only moves when the entry actually existed.
		oldKey := g.makeKey(p.node)
		if _, ok := g.memo[oldKey]; ok {
			g.memoRestBytes -= oldKey.restBytes()
			delete(g.memo, oldKey)
		}
		g.canonicalize(&p.node)
		key := g.makeKey(p.node)
		if g.prov != nil {
			// Keep node justifications keyed by the current hashcons key.
			g.prov.moveKey(oldKey, key)
		}
		if at, ok := newParents[key]; ok {
			// Congruence: two parents became identical.
			g.Union(entries[at].par.class, p.class)
			entries[at].par = parent{node: p.node, class: g.Find(p.class)}
			continue
		}
		newParents[key] = len(entries)
		g.keyBuf = g.appendLegacyKey(g.keyBuf[:0], p.node)
		entries = append(entries, repairEntry{
			key:    key,
			legacy: append([]byte(nil), g.keyBuf...),
			par:    parent{node: p.node, class: g.Find(p.class)},
		})
	}
	// The class may have been merged away by the unions above.
	cls = g.classes[g.Find(id)]
	// Emit rebuilt parents in the legacy (string-key) byte order. Any
	// deterministic order would keep runs reproducible, but this specific
	// order is what the string-keyed layout produced, and parent order
	// feeds congruence-union order, class node order, and ultimately
	// extraction tie-breaks — preserving it is what makes the layout change
	// bit-identical on every artifact (DESIGN.md §14).
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].legacy, entries[j].legacy) < 0
	})
	for i := range entries {
		e := &entries[i]
		e.par.class = g.Find(e.par.class)
		if _, ok := g.memo[e.key]; !ok {
			g.memoRestBytes += e.key.restBytes()
		}
		g.memo[e.key] = e.par.class
		cls.parents = append(cls.parents, e.par)
		g.parentCount++
	}
}

// canonicalizeClasses canonicalizes every node in every class and removes
// duplicates, updating the total node count and payload-byte counter.
func (g *EGraph) canonicalizeClasses() {
	total := 0
	payload := int64(0)
	for _, cls := range g.classes {
		seen := make(map[memoKey]bool, len(cls.Nodes))
		out := cls.Nodes[:0]
		for i := range cls.Nodes {
			g.canonicalize(&cls.Nodes[i])
			key := g.makeKey(cls.Nodes[i])
			if !seen[key] {
				seen[key] = true
				out = append(out, cls.Nodes[i])
				payload += nodePayloadBytes(cls.Nodes[i])
			}
		}
		cls.Nodes = out
		total += len(out)
	}
	g.nodeCount = total
	g.nodePayload = payload
}

// CheckInvariants verifies hashcons and congruence invariants, returning a
// list of violations. It is O(nodes) and intended for tests.
func (g *EGraph) CheckInvariants() []string {
	var bad []string
	for _, cls := range g.classes {
		if g.Find(cls.ID) != cls.ID {
			bad = append(bad, "non-canonical class in map")
		}
		for _, n := range cls.Nodes {
			id, ok := g.memo[g.lookupKey(n)]
			if !ok {
				bad = append(bad, "node missing from hashcons: "+g.nodeString(n))
				continue
			}
			if g.Find(id) != cls.ID {
				bad = append(bad, "hashcons maps node to wrong class: "+g.nodeString(n))
			}
		}
	}
	return bad
}

func (g *EGraph) nodeString(n ENode) string {
	e := &expr.Expr{Op: n.Op, Lit: n.Lit, Sym: g.syms.Name(n.Sym), Idx: n.Idx}
	for _, a := range n.Args {
		e.Args = append(e.Args, expr.Sym("c"+strconv.Itoa(int(g.Find(a)))))
	}
	return e.String()
}
