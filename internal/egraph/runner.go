package egraph

import (
	"context"
	"errors"
	"fmt"
	"time"

	"diospyros/internal/telemetry"
)

// Rewrite is one rewrite rule: a searcher that finds matches in the graph
// and an applier that realizes a match. This mirrors egg's Searcher/Applier
// split (paper §3.3): syntactic rules are built with NewRewrite, while the
// vectorization rules use custom Go searchers.
//
// Search must treat the graph as read-only — all mutation belongs in Apply.
// The runner relies on this to match rules concurrently (Limits.
// MatchWorkers); a Search that adds nodes or unions classes would race.
// Rewrites that additionally implement ShardedRewrite let the runner split
// one rule's search across workers.
type Rewrite interface {
	Name() string
	Search(g *EGraph) []Match
	Apply(g *EGraph, m Match) bool // reports whether the graph changed
}

// patternRewrite is a purely syntactic rule lhs ⇝ rhs.
type patternRewrite struct {
	name     string
	lhs, rhs *Pattern
}

// NewRewrite builds a syntactic rewrite rule from two patterns. Every
// variable in rhs must occur in lhs.
func NewRewrite(name string, lhs, rhs *Pattern) Rewrite {
	lvars := map[string]bool{}
	for _, v := range lhs.Vars() {
		lvars[v] = true
	}
	for _, v := range rhs.Vars() {
		if !lvars[v] {
			panic("egraph: rewrite " + name + ": unbound rhs variable " + v)
		}
	}
	return &patternRewrite{name: name, lhs: lhs, rhs: rhs}
}

// MustRewrite builds a syntactic rule from pattern source strings.
func MustRewrite(name, lhs, rhs string) Rewrite {
	return NewRewrite(name, MustPattern(lhs), MustPattern(rhs))
}

// ParseRewrite builds a syntactic rule from pattern source strings,
// reporting malformed patterns or unbound right-hand-side variables as
// errors. This is the entry point for user-supplied rules (paper §6).
func ParseRewrite(name, lhs, rhs string) (rw Rewrite, err error) {
	l, err := ParsePattern(lhs)
	if err != nil {
		return nil, fmt.Errorf("egraph: rule %s lhs: %w", name, err)
	}
	r, err := ParsePattern(rhs)
	if err != nil {
		return nil, fmt.Errorf("egraph: rule %s rhs: %w", name, err)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("egraph: rule %s: %v", name, p)
		}
	}()
	return NewRewrite(name, l, r), nil
}

func (r *patternRewrite) Name() string { return r.name }

func (r *patternRewrite) Search(g *EGraph) []Match { return g.SearchPattern(r.lhs) }

func (r *patternRewrite) Apply(g *EGraph, m Match) bool {
	id, err := r.rhs.instantiateOrErr(g, m.Subst)
	if err != nil {
		return false
	}
	_, changed := g.Union(m.Class, id)
	return changed
}

func (p *Pattern) instantiateOrErr(g *EGraph, s Subst) (ClassID, error) {
	return g.Instantiate(p, s)
}

// StopReason explains why a saturation run ended.
type StopReason string

const (
	StopSaturated StopReason = "saturated"  // no rule changed the graph
	StopTimeout   StopReason = "timeout"    // wall-clock limit reached
	StopNodeLimit StopReason = "node-limit" // e-graph grew past the node limit
	StopIterLimit StopReason = "iter-limit" // iteration cap reached
	StopCancelled StopReason = "cancelled"  // the run's context was cancelled
)

// ctxCheckInterval amortizes context checks in the apply phase: polling
// after every single match apply is measurable overhead on large kernels,
// so the deadline/cancellation poll happens once per this many applies.
// The cheap node-limit counter is still checked on every apply.
const ctxCheckInterval = 256

// Limits bounds a saturation run. Zero values mean "no limit" except
// MaxIterations, which defaults to 64 (a safety net).
type Limits struct {
	MaxNodes      int
	MaxIterations int
	// Timeout bounds wall-clock time. RunContext implements it as a
	// context deadline derived from the caller's context; callers with a
	// context are encouraged to express deadlines there instead.
	Timeout time.Duration
	// Backoff, when non-nil, schedules rules with egg's backoff policy:
	// rules that over-match are banned with exponentially growing bans.
	Backoff *Backoff
	// Progress, when non-nil, receives live iteration/node/class counts
	// during the run, readable from other goroutines (watchdogs that
	// cancel the context when a budget is exceeded).
	Progress *Progress
	// Journal, when non-nil, turns on the search flight recorder: the run
	// records per-iteration per-rule attribution (matches, applications,
	// node growth, wall time), Backoff ban/unban events, iteration
	// summaries, and — when the journal's cost sampler is armed — a
	// best-cost trajectory per root. Other goroutines may read the journal
	// while the run writes. Nil costs one branch per rule per iteration.
	Journal *Journal
	// MatchWorkers bounds the worker pool for the read-only match phase.
	// 0 means DefaultMatchWorkers (one per CPU); 1 forces the serial
	// matcher; higher values cap the pool. The setting never changes
	// results: per-worker match buffers are merged in canonical (rule,
	// e-class ID) order before the serial apply phase, so the extracted
	// program, Report counts, and Journal rule attribution are identical
	// at every worker count (rule search Durations, which attribute
	// concurrent CPU time, are the one telemetry field that may differ).
	MatchWorkers int
}

// matchWorkers resolves the effective match-phase pool size.
func (l Limits) matchWorkers() int {
	if l.MatchWorkers == 0 {
		return DefaultMatchWorkers()
	}
	if l.MatchWorkers < 1 {
		return 1
	}
	return l.MatchWorkers
}

// Report summarizes a saturation run (feeds the paper's Table 1).
type Report struct {
	Iterations int
	Nodes      int
	Classes    int
	Applied    int // total successful rule applications
	Reason     StopReason
	Duration   time.Duration
	// PerRule counts successful applications per rule name.
	PerRule map[string]int
	// Iters holds one gauge per iteration (e-graph size after rebuild,
	// per-rule match/apply counts); it feeds the compilation trace. An
	// iteration cut short by a limit still contributes a partial gauge.
	Iters []telemetry.IterationGauge
	// PeakFootprint is the per-component logical footprint at the iteration
	// where the e-graph's total bytes peaked (including the journal ring
	// when armed); PeakIteration is that 1-based iteration. Iterations cut
	// short by a limit still contribute, so aborted runs report their peak.
	PeakFootprint Footprint
	PeakIteration int
}

// Saturated reports whether the run reached a fixpoint (the e-graph
// represents all programs reachable with the rule set).
func (r Report) Saturated() bool { return r.Reason == StopSaturated }

// Run performs equality saturation without external cancellation; see
// RunContext. Limits.Timeout, if set, still bounds wall-clock time.
func Run(g *EGraph, rules []Rewrite, lim Limits) Report {
	return RunContext(context.Background(), g, rules, lim)
}

// RunContext performs equality saturation: it repeatedly searches all
// rules, applies every match, and rebuilds, until saturation or a limit is
// hit. Matches are searched before any are applied within an iteration, so
// rule application order within an iteration cannot hide matches (the
// phase-ordering-free property of equality saturation, paper §3.3).
//
// The context is honored in both the search phase (between rules) and the
// apply phase (every ctxCheckInterval applies), so cancelling it stops the
// run well within one iteration. A cancelled run reports StopCancelled
// (StopTimeout when the context's deadline expired) and always leaves the
// e-graph rebuilt, so partial results remain extractable.
func RunContext(ctx context.Context, g *EGraph, rules []Rewrite, lim Limits) Report {
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	start := time.Now()
	maxIter := lim.MaxIterations
	if maxIter == 0 {
		maxIter = 64
	}
	rep := Report{PerRule: map[string]int{}, Reason: StopIterLimit}

	done := ctx.Done()
	ctxStop := func() (StopReason, bool) {
		select {
		case <-done:
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return StopTimeout, true
			}
			return StopCancelled, true
		default:
			return "", false
		}
	}
	nodesOver := func() bool { return lim.MaxNodes > 0 && g.NumNodes() >= lim.MaxNodes }

	jr := lim.Journal
	// liveBytes is the O(1) logical footprint published to Progress: the
	// e-graph's counters plus the journal ring when armed.
	liveBytes := func() int64 { return g.FootprintBytes() + jr.ByteSize() }
	var gauge telemetry.IterationGauge
	var iterStart time.Time
	flushGauge := func() {
		gauge.Nodes = g.NumNodes()
		gauge.Classes = g.NumClasses()
		fp := g.Footprint()
		fp.Journal = jr.Footprint()
		fp.Total += fp.Journal.Bytes
		gauge.Bytes = fp.Total
		if fp.Total > rep.PeakFootprint.Total {
			rep.PeakFootprint = fp
			rep.PeakIteration = gauge.Iteration
		}
		gauge.Duration = time.Since(iterStart)
		rep.Iters = append(rep.Iters, gauge)
		if jr != nil {
			jr.append(JournalEvent{
				Kind: JournalIteration, Iteration: gauge.Iteration,
				Matches: gauge.Matches, Applied: gauge.Applied,
				Nodes: gauge.Nodes, Classes: gauge.Classes,
				Duration: gauge.Duration,
			})
		}
	}

loop:
	for iter := 0; iter < maxIter; iter++ {
		if nodesOver() {
			rep.Reason = StopNodeLimit
			break
		}
		if reason, stop := ctxStop(); stop {
			rep.Reason = reason
			break
		}
		rep.Iterations = iter + 1
		lim.Progress.publish(iter+1, g.NumNodes(), g.NumClasses(), liveBytes())
		iterStart = time.Now()
		gauge = telemetry.IterationGauge{
			Iteration:      iter + 1,
			PerRuleMatches: map[string]int{},
			PerRuleApplied: map[string]int{},
		}

		type found struct {
			rule      Rewrite
			matches   []Match
			searchDur time.Duration
		}
		ruleSkipped := false
		all := make([]found, 0, len(rules))

		// Parallel match phase: search every eligible rule over a sharded,
		// read-only view of the graph before any matches are applied. The
		// merged results are exactly what the serial branch below would
		// produce (parallel.go), so the backoff and journal bookkeeping in
		// the shared loop behaves identically on both paths.
		var par []ruleMatches
		if w := lim.matchWorkers(); w > 1 && g.NumClasses() >= matchParallelMinClasses {
			eligible := make([]Rewrite, 0, len(rules))
			for _, r := range rules {
				if lim.Backoff != nil && lim.Backoff.banned(r.Name(), iter) {
					continue
				}
				eligible = append(eligible, r)
			}
			var cancelled bool
			if par, cancelled = searchParallel(ctx, g, eligible, w); cancelled {
				reason, _ := ctxStop()
				if reason == "" {
					reason = StopCancelled
				}
				rep.Reason = reason
				flushGauge()
				break loop
			}
		}
		// The serial match phase shares the parallel phase's head-op index:
		// one class snapshot + index build per iteration, then every rule
		// scans only its candidate classes (searchIndexed falls back to the
		// rule's own whole-graph Search for non-shardable rewrites).
		var ix *ClassIndex
		if par == nil {
			ix = HeadIndex(g.CanonicalClasses())
		}
		k := 0 // cursor into par, advanced once per eligible rule
		for _, r := range rules {
			if jr != nil && lim.Backoff != nil {
				// A rule whose ban expires exactly this iteration rejoins
				// the search; make the transition visible in the journal.
				if bans, until := lim.Backoff.Stat(r.Name()); bans > 0 && until == iter {
					jr.append(JournalEvent{Kind: JournalUnban, Iteration: iter + 1,
						Rule: r.Name(), Bans: bans})
				}
			}
			if lim.Backoff != nil && lim.Backoff.banned(r.Name(), iter) {
				ruleSkipped = true
				continue
			}
			var ms []Match
			var searchDur time.Duration
			if par != nil {
				ms, searchDur = par[k].matches, par[k].searchDur
				k++
			} else {
				var searchStart time.Time
				if jr != nil {
					searchStart = time.Now()
				}
				ms = searchIndexed(g, ix, r)
				if jr != nil {
					searchDur = time.Since(searchStart)
				}
			}
			if lim.Backoff != nil && lim.Backoff.record(r.Name(), len(ms), iter) {
				if jr != nil {
					bans, until := lim.Backoff.Stat(r.Name())
					jr.append(JournalEvent{Kind: JournalBan, Iteration: iter + 1,
						Rule: r.Name(), Matches: len(ms),
						BannedUntil: until + 1, Bans: bans, Duration: searchDur})
				}
				ruleSkipped = true
				continue
			}
			if len(ms) > 0 {
				all = append(all, found{r, ms, searchDur})
				gauge.Matches += len(ms)
				gauge.PerRuleMatches[r.Name()] += len(ms)
			}
			if par == nil {
				if reason, stop := ctxStop(); stop {
					// Searching can be the expensive phase for custom
					// searchers; honor cancellation between rules. (The
					// parallel matcher polls the context inside its worker
					// pool instead.)
					rep.Reason = reason
					flushGauge()
					break loop
				}
			}
		}

		changed := false
		sinceCheck := 0
		prov := g.ProvenanceEnabled()
		// flushRule emits one rule-attribution event covering the rule's
		// search and (possibly cut-short) apply phase this iteration.
		flushRule := func(f found, applyStart time.Time, nodesBefore int) {
			jr.append(JournalEvent{
				Kind: JournalRule, Iteration: iter + 1, Rule: f.rule.Name(),
				Matches: len(f.matches), Applied: gauge.PerRuleApplied[f.rule.Name()],
				NewNodes: g.NumNodes() - nodesBefore,
				Duration: f.searchDur + time.Since(applyStart),
			})
		}
		for _, f := range all {
			var applyStart time.Time
			var nodesBefore int
			if jr != nil {
				applyStart = time.Now()
				nodesBefore = g.NumNodes()
			}
			for _, m := range f.matches {
				if prov {
					// Attribute every node/union the applier creates to
					// this rule, iteration, and matched class.
					g.SetRuleContext(f.rule.Name(), iter+1, m.Class)
				}
				if f.rule.Apply(g, m) {
					changed = true
					rep.Applied++
					rep.PerRule[f.rule.Name()]++
					gauge.Applied++
					gauge.PerRuleApplied[f.rule.Name()]++
				}
				if nodesOver() {
					g.ClearRuleContext()
					g.Rebuild()
					rep.Reason = StopNodeLimit
					if jr != nil {
						flushRule(f, applyStart, nodesBefore)
					}
					flushGauge()
					break loop
				}
				if sinceCheck++; sinceCheck >= ctxCheckInterval {
					sinceCheck = 0
					lim.Progress.publish(iter+1, g.NumNodes(), g.NumClasses(), liveBytes())
					if reason, stop := ctxStop(); stop {
						g.ClearRuleContext()
						g.Rebuild()
						rep.Reason = reason
						if jr != nil {
							flushRule(f, applyStart, nodesBefore)
						}
						flushGauge()
						break loop
					}
				}
			}
			if jr != nil {
				flushRule(f, applyStart, nodesBefore)
			}
		}
		g.ClearRuleContext()
		g.Rebuild()
		lim.Progress.publish(iter+1, g.NumNodes(), g.NumClasses(), liveBytes())
		flushGauge()
		jr.sampleCosts(g, iter+1)
		jr.sampleMemory(g, iter+1)
		if !changed && !ruleSkipped &&
			(lim.Backoff == nil || !lim.Backoff.anyBanned(iter+1)) {
			rep.Reason = StopSaturated
			break
		}
	}

	if g.NeedsRebuild() {
		g.Rebuild()
	}
	rep.Nodes = g.NumNodes()
	rep.Classes = g.NumClasses()
	lim.Progress.publish(rep.Iterations, rep.Nodes, rep.Classes, liveBytes())
	rep.Duration = time.Since(start)
	return rep
}
