package egraph

// Rewrite provenance: when enabled, the e-graph records, for every e-node
// created while a rule context is active, which rule created it, in which
// saturation iteration, and from which source e-class the rule matched.
// The extraction explanation (-explain) walks the chosen term's provenance
// to produce the ordered rule chain that justifies the vectorized output —
// the non-destructive-rewrite introspection an e-graph makes possible.
//
// Recording is off by default and costs a single nil check per Add/Union
// when disabled (guarded by BenchmarkSaturationThroughput). When enabled,
// memory cost is one map entry (hashcons key string + 3-word Justification)
// per rule-created e-node plus one UnionStep per rule-caused union — small
// next to the e-graph itself, which stores the same key in its hashcons
// plus the node and its parent back-references (see DESIGN.md §7).

// Justification records why an e-node exists: the rewrite that created it,
// the 1-based iteration it was applied in, and the e-class the rule's match
// rooted at. The zero value ("" rule) marks nodes of the input program.
type Justification struct {
	Rule      string
	Iteration int
	Source    ClassID
}

// UnionStep records one rule-caused class merge (A absorbed B, as canonical
// IDs at merge time).
type UnionStep struct {
	Just Justification
	A, B ClassID
}

// provenance is the recording state, allocated by EnableProvenance.
type provenance struct {
	// nodes maps the current (binary) hashcons key of a rule-created e-node
	// to its justification. Keys are kept in lockstep with the hashcons:
	// repair moves entries when a node is re-canonicalized after unions.
	nodes  map[memoKey]Justification
	unions []UnionStep
	ctx    Justification // active rule context ("" rule = inactive)
}

// EnableProvenance turns on provenance recording for nodes and unions
// created from now on. Typically called right after the input program is
// added, so input nodes stay unattributed and every rule-created node is
// justified.
func (g *EGraph) EnableProvenance() {
	if g.prov == nil {
		g.prov = &provenance{nodes: map[memoKey]Justification{}}
	}
}

// ProvenanceEnabled reports whether provenance is being recorded.
func (g *EGraph) ProvenanceEnabled() bool { return g.prov != nil }

// SetRuleContext opens a rule context: until ClearRuleContext, nodes added
// and unions performed are justified by (rule, iteration, source). The
// saturation runner brackets each match application with this.
func (g *EGraph) SetRuleContext(rule string, iteration int, source ClassID) {
	if g.prov != nil {
		g.prov.ctx = Justification{Rule: rule, Iteration: iteration, Source: source}
	}
}

// ClearRuleContext closes the rule context; later congruence-repair unions
// and lookups are no longer attributed to the last rule.
func (g *EGraph) ClearRuleContext() {
	if g.prov != nil {
		g.prov.ctx = Justification{}
	}
}

// NodeProvenance returns the justification recorded for the node, if any.
// Nodes of the input program (or added outside any rule context) have none.
func (g *EGraph) NodeProvenance(n ENode) (Justification, bool) {
	if g.prov == nil {
		return Justification{}, false
	}
	j, ok := g.prov.nodes[g.lookupKey(n)]
	return j, ok
}

// Unions returns the recorded rule-caused class merges, in order.
func (g *EGraph) Unions() []UnionStep {
	if g.prov == nil {
		return nil
	}
	return g.prov.unions
}

// ProvenanceStats reports the recording's footprint: justified nodes and
// recorded unions. Both are zero when provenance is disabled.
func (g *EGraph) ProvenanceStats() (nodes, unions int) {
	if g.prov == nil {
		return 0, 0
	}
	return len(g.prov.nodes), len(g.prov.unions)
}

// recordNode attaches the active rule context to a newly created node key.
// Called from Add on hashcons misses only.
func (p *provenance) recordNode(key memoKey) {
	if p.ctx.Rule != "" {
		p.nodes[key] = p.ctx
	}
}

// recordUnion logs a class merge under the active rule context.
func (p *provenance) recordUnion(a, b ClassID) {
	if p.ctx.Rule != "" {
		p.unions = append(p.unions, UnionStep{Just: p.ctx, A: a, B: b})
	}
}

// moveKey keeps node justifications keyed by the node's current hashcons
// key across congruence repair. When two nodes become congruent (same new
// key), the earliest justification wins.
func (p *provenance) moveKey(oldKey, newKey memoKey) {
	if oldKey == newKey {
		return
	}
	j, ok := p.nodes[oldKey]
	if !ok {
		return
	}
	delete(p.nodes, oldKey)
	if prev, exists := p.nodes[newKey]; !exists || j.Iteration < prev.Iteration {
		p.nodes[newKey] = j
	}
}
