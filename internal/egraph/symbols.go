package egraph

import "diospyros/internal/expr"

// Symbol interning. Every string payload an e-node can carry (free
// variables, Get array names, uninterpreted function names) is interned
// once per graph into a SymbolTable, and the node stores only the resulting
// 32-bit SymID. Node comparisons and hashcons hashing therefore never touch
// string bytes, and the hashcons key for a node is a fixed-size binary
// value (see key.go). IDs are assigned in first-intern order, which is
// deterministic for a deterministic insertion sequence — the property the
// DESIGN.md §9/§14 bit-identical-artifacts contract rests on — but they are
// graph-local: a SymID from one graph is meaningless in another.

// SymID identifies an interned symbol within one e-graph. The zero value
// NoSym is the empty string, so zero-valued ENodes remain well-formed.
type SymID uint32

// NoSym is the SymID of the empty string (the payload of nodes that carry
// no symbol).
const NoSym SymID = 0

// SymbolTable is a per-graph bijection between symbol strings and dense
// SymIDs. The zero value is ready to use. It is not safe for concurrent
// mutation; the read-only match phase only calls Name and Lookup, which are
// safe once the graph is no longer being mutated (the same contract as
// every other e-graph read).
type SymbolTable struct {
	names []string
	ids   map[string]SymID

	// nameBytes sums the interned strings' contents, maintained so the
	// footprint accounting (footprint.go) stays O(1).
	nameBytes int64
}

// init lazily installs the table's sentinel entry for NoSym.
func (t *SymbolTable) init() {
	if t.ids == nil {
		t.ids = map[string]SymID{"": NoSym}
		t.names = append(t.names, "")
	}
}

// Intern returns the ID for s, assigning the next dense ID on first use.
func (t *SymbolTable) Intern(s string) SymID {
	t.init()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := SymID(len(t.names))
	t.names = append(t.names, s)
	t.ids[s] = id
	t.nameBytes += int64(len(s))
	return id
}

// Lookup returns the ID already assigned to s, if any. A symbol that was
// never interned cannot occur in any node of the graph — the fact the
// pattern matcher uses to reject payload patterns without string compares.
func (t *SymbolTable) Lookup(s string) (SymID, bool) {
	if s == "" {
		return NoSym, true
	}
	id, ok := t.ids[s]
	return id, ok
}

// Name returns the string for an interned ID. IDs never issued by this
// table return "".
func (t *SymbolTable) Name(id SymID) string {
	if int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of interned symbols, including the "" sentinel
// once anything has been interned.
func (t *SymbolTable) Len() int { return len(t.names) }

// InternSym interns a symbol string in the graph's table, returning its ID.
// Callers constructing ENodes by hand (custom searchers introducing new
// function names) must intern payloads through the graph they add to.
func (g *EGraph) InternSym(s string) SymID { return g.syms.Intern(s) }

// SymName resolves an interned symbol ID back to its string.
func (g *EGraph) SymName(id SymID) string { return g.syms.Name(id) }

// LookupSym returns the ID assigned to s, if s was ever interned here.
func (g *EGraph) LookupSym(s string) (SymID, bool) { return g.syms.Lookup(s) }

// LeafNode builds a terminal node for the given operator and payload,
// interning the symbol in this graph's table. It does not add the node;
// pair it with Lookup to probe for an existing leaf, or Add to insert it.
func (g *EGraph) LeafNode(op expr.Op, lit float64, sym string, idx int) ENode {
	return ENode{Op: op, Lit: lit, Sym: g.InternSym(sym), Idx: idx}
}
