package egraph

import (
	"encoding/binary"
	"math"

	"diospyros/internal/expr"
)

// The binary hashcons key. Before the data-layout overhaul (DESIGN.md §14)
// the hashcons was keyed by a heap-allocated string — one allocation and a
// byte-wise hash per Add. memoKey replaces it with a fixed-size comparable
// struct: three machine words cover the operator, arity, symbol ID, literal
// bits / Get index, and the first four child class IDs, and only nodes with
// five or more children spill the remainder into an overflow string. Go
// hashes the struct natively, so hashcons probes for the overwhelmingly
// common leaf/unary/binary/4-lane-Vec cases allocate nothing and never
// touch string bytes.
//
// Layout (byte-level; see the DESIGN.md §14 diagram):
//
//	head: [op:8][arity:16][unused:8][sym:32]
//	w0:   OpLit → IEEE-754 bits of Lit
//	      OpGet → uint32(Idx) (zero-extended)
//	      else  → [child0:32][child1:32], zero-padded
//	w1:   [child2:32][child3:32], zero-padded
//	rest: children 4..arity-1, 4 bytes little-endian each ("" when arity ≤ 4)
//
// Key equality is exactly legacy string-key equality: op and arity are
// explicit, the symbol ID is a per-graph bijection with the symbol string,
// and zero-padding cannot collide because arity disambiguates how many
// child slots are meaningful (ClassID 0 is a valid child). The property
// test in key_test.go fuzzes this equivalence against the retained legacy
// encoder.
type memoKey struct {
	head uint64
	w0   uint64
	w1   uint64
	rest string
}

// restArity is the child count above which a key needs overflow bytes.
const restArity = 4

// makeKey builds the hashcons key for a canonicalized node. Allocation-free
// for nodes with at most restArity children; wider nodes copy their
// overflow children out of the graph's reusable key buffer, so the buffer
// can be reused immediately (string conversion copies).
func (g *EGraph) makeKey(n ENode) memoKey {
	k := memoKey{
		head: uint64(n.Op)<<56 | uint64(uint16(len(n.Args)))<<40,
	}
	switch n.Op {
	case expr.OpSym, expr.OpGet, expr.OpFunc, expr.OpVecFunc:
		// Only the symbol-carrying operators fold Sym into the key — the
		// legacy encoding ignored stray payloads on other operators, and
		// key equality must match it exactly.
		k.head |= uint64(n.Sym)
	}
	switch n.Op {
	case expr.OpLit:
		k.w0 = math.Float64bits(n.Lit)
		return k
	case expr.OpGet:
		k.w0 = uint64(uint32(int32(n.Idx)))
		return k
	}
	a := n.Args
	switch {
	case len(a) > 3:
		k.w1 |= uint64(a[3])
		fallthrough
	case len(a) > 2:
		k.w1 |= uint64(a[2]) << 32
		fallthrough
	case len(a) > 1:
		k.w0 |= uint64(a[1])
		fallthrough
	case len(a) > 0:
		k.w0 |= uint64(a[0]) << 32
	}
	if len(a) > restArity {
		b := g.keyBuf[:0]
		for _, c := range a[restArity:] {
			b = binary.LittleEndian.AppendUint32(b, uint32(c))
		}
		g.keyBuf = b
		k.rest = string(b) // copies: keyBuf stays reusable
	}
	return k
}

// lookupKey is makeKey for a node whose children may be non-canonical: it
// canonicalizes each child through Find while packing, so read-only probes
// (Lookup, NodeProvenance) need no defensive clone of the caller's Args —
// the key is built without mutating n. makeKey must NOT do this: repair
// depends on keying a parent by its stale child IDs to locate the hashcons
// entry it is about to displace.
func (g *EGraph) lookupKey(n ENode) memoKey {
	k := memoKey{
		head: uint64(n.Op)<<56 | uint64(uint16(len(n.Args)))<<40,
	}
	switch n.Op {
	case expr.OpSym, expr.OpGet, expr.OpFunc, expr.OpVecFunc:
		k.head |= uint64(n.Sym)
	}
	switch n.Op {
	case expr.OpLit:
		k.w0 = math.Float64bits(n.Lit)
		return k
	case expr.OpGet:
		k.w0 = uint64(uint32(int32(n.Idx)))
		return k
	}
	a := n.Args
	switch {
	case len(a) > 3:
		k.w1 |= uint64(g.Find(a[3]))
		fallthrough
	case len(a) > 2:
		k.w1 |= uint64(g.Find(a[2])) << 32
		fallthrough
	case len(a) > 1:
		k.w0 |= uint64(g.Find(a[1]))
		fallthrough
	case len(a) > 0:
		k.w0 |= uint64(g.Find(a[0])) << 32
	}
	if len(a) > restArity {
		b := g.keyBuf[:0]
		for _, c := range a[restArity:] {
			b = binary.LittleEndian.AppendUint32(b, uint32(g.Find(c)))
		}
		g.keyBuf = b
		k.rest = string(b) // copies: keyBuf stays reusable
	}
	return k
}

// restBytes is the key's overflow payload size — the only part of a key the
// byte-exact footprint accounting (§13) cannot derive from the struct size.
func (k memoKey) restBytes() int64 { return int64(len(k.rest)) }

// appendLegacyKey appends the pre-§14 string hashcons encoding of n:
// operator byte, then the payload (literal bits, symbol bytes, Get index,
// length-prefixed function name), then the child class IDs little-endian.
// The binary hashcons made this encoding obsolete for equality, but it is
// retained for two jobs: congruence repair emits rebuilt parents in this
// byte order (the determinism anchor that keeps artifacts bit-identical to
// the string-keyed layout — DESIGN.md §14), and the key-equivalence
// property test uses it as the collision oracle.
func (g *EGraph) appendLegacyKey(b []byte, n ENode) []byte {
	b = append(b, byte(n.Op))
	switch n.Op {
	case expr.OpLit:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.Lit))
	case expr.OpSym:
		b = append(b, g.syms.Name(n.Sym)...)
	case expr.OpGet:
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(n.Idx)))
		b = append(b, g.syms.Name(n.Sym)...)
	case expr.OpFunc, expr.OpVecFunc:
		sym := g.syms.Name(n.Sym)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(sym)))
		b = append(b, sym...)
	}
	for _, a := range n.Args {
		b = binary.LittleEndian.AppendUint32(b, uint32(a))
	}
	return b
}
