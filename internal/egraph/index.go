package egraph

import (
	"sort"

	"diospyros/internal/expr"
)

// Indexed rule dispatch (DESIGN.md §14). Before the data-layout overhaul,
// every iteration's match phase scanned every canonical class once per
// rule. Most rules can only match at classes containing a node with a
// specific head operator — a pattern rooted at (+ ...) is unmatchable in a
// class holding only Vec and Get nodes — so the runner now builds a head-op
// index over the canonical class list once per iteration and hands each
// rule only its candidate classes.
//
// Determinism: per-operator class lists are built by one pass over the
// canonical (ID-sorted) class list, so every candidate list is itself in
// canonical ID order, and a class pruned for a rule is exactly one where
// that rule's search yields zero matches. Each rule's match list is
// therefore element-for-element identical to the full scan's, and the
// apply phase — and every artifact downstream of it — is unchanged (the
// completeness test in internal/rules pins this across the kernel suite).

// HeadIndexed is implemented by rewrites that declare the head operators
// their matches can root at: the rule's search, restricted to any class
// list, returns no match for a class containing no node with one of these
// operators. The runner uses the declaration to pre-filter each rule's
// class scan through the per-iteration head-op index. A nil RootOps means
// the rule must scan every class (the conservative default for rewrites
// that do not implement the interface).
type HeadIndexed interface {
	Rewrite
	// RootOps returns the operator heads the rewrite's root can match
	// under, or nil when any class is a candidate.
	RootOps() []expr.Op
}

// RootOps implements HeadIndexed for syntactic rules: a pattern rooted at a
// variable matches anywhere; any other pattern only matches classes holding
// its root operator.
func (r *patternRewrite) RootOps() []expr.Op {
	if r.lhs.Var != "" {
		return nil
	}
	return []expr.Op{r.lhs.Op}
}

// ClassIndex is one iteration's head-op index: the full canonical class
// list plus, per operator, the ID-ordered sublist of classes containing at
// least one node with that head.
type ClassIndex struct {
	classes []*EClass
	byOp    [expr.NumOps][]*EClass
}

// HeadIndex builds the head-op index over a canonical class snapshot (as
// returned by CanonicalClasses). One O(nodes) pass; the runner rebuilds it
// every iteration because rebuilds move nodes between classes.
func HeadIndex(classes []*EClass) *ClassIndex {
	ix := &ClassIndex{classes: classes}
	for _, cls := range classes {
		var mask uint64 // distinct heads in this class (NumOps < 64)
		for _, n := range cls.Nodes {
			mask |= 1 << uint(n.Op)
		}
		for op := expr.Op(0); mask != 0; op++ {
			if mask&(1<<uint(op)) != 0 {
				mask &^= 1 << uint(op)
				ix.byOp[op] = append(ix.byOp[op], cls)
			}
		}
	}
	return ix
}

// Candidates returns the classes the rewrite's search must scan, in
// canonical ID order: the per-op sublists for a HeadIndexed rule, the full
// class list otherwise.
func (ix *ClassIndex) Candidates(r Rewrite) []*EClass {
	hi, ok := r.(HeadIndexed)
	if !ok {
		return ix.classes
	}
	ops := hi.RootOps()
	switch len(ops) {
	case 0:
		return ix.classes
	case 1:
		return ix.byOp[ops[0]]
	}
	// A class holding nodes of several root heads appears in several
	// sublists; merge and deduplicate by ID to restore the canonical order.
	total := 0
	for _, op := range ops {
		total += len(ix.byOp[op])
	}
	merged := make([]*EClass, 0, total)
	for _, op := range ops {
		merged = append(merged, ix.byOp[op]...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	out := merged[:0]
	for i, cls := range merged {
		if i == 0 || cls.ID != merged[i-1].ID {
			out = append(out, cls)
		}
	}
	return out
}

// searchIndexed runs one rule's search through the index: shardable rules
// scan only their candidate classes; opaque rules fall back to their own
// whole-graph Search.
func searchIndexed(g *EGraph, ix *ClassIndex, r Rewrite) []Match {
	if sr, ok := r.(ShardedRewrite); ok {
		return sr.SearchClasses(g, ix.Candidates(r))
	}
	return r.Search(g)
}
