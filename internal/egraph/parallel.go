package egraph

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel match phase. Equality saturation alternates a read-only
// search phase (every rule matched against every e-class) with a mutating
// apply/rebuild phase. The search phase dominates compile time on large
// kernels and is embarrassingly parallel: this file shards the canonical
// e-class list across a bounded worker pool, collects matches into
// per-(rule, shard) buffers, and merges them in canonical (rule, e-class
// ID) order, so the runner's apply phase — and therefore the extracted
// program, the Journal, and rewrite provenance — is bit-for-bit identical
// at any worker count.
//
// Safety rests on two invariants, both enforced by the runner:
//
//  1. Searchers never mutate the graph (the Rewrite contract). All
//     built-in rules defer node creation to Apply.
//  2. Find performs no union-find writes once paths are compressed. The
//     runner calls CompressPaths serially before fanning out, after which
//     every chain has length ≤ 1 and Find's path-halving never fires.

// ShardedRewrite is optionally implemented by rewrites whose search can be
// restricted to a subset of e-classes. The runner uses it to shard the
// match phase across workers: each shard is a contiguous run of the
// canonical class list (sorted by ID), and the per-shard results are
// concatenated in shard order, so implementations must derive matches from
// the given classes only, in the order given. SearchClasses must be
// read-only and safe for concurrent use with other searchers.
//
// Rewrites that do not implement the interface still participate in
// parallel matching — each one runs as a single whole-graph Search task —
// but cannot be split across workers.
type ShardedRewrite interface {
	Rewrite
	// SearchClasses returns the rewrite's matches within the given
	// canonical classes, in class order.
	SearchClasses(g *EGraph, classes []*EClass) []Match
}

// SearchClasses restricts the syntactic pattern search to the given
// classes, making every parsed rewrite shardable.
func (r *patternRewrite) SearchClasses(g *EGraph, classes []*EClass) []Match {
	var out []Match
	for _, cls := range classes {
		out = append(out, g.matchClass(r.lhs, cls.ID)...)
	}
	return out
}

// DefaultMatchWorkers is the worker-pool size used when Limits.MatchWorkers
// is zero: one worker per available CPU.
func DefaultMatchWorkers() int { return runtime.GOMAXPROCS(0) }

// matchShardMin is the smallest shard handed to one match task. Shards
// cheaper than this cost more in scheduling than they win in parallelism.
const matchShardMin = 32

// matchParallelMinClasses gates the parallel matcher: graphs smaller than
// this search faster serially than the pool spins up. The cutover is
// behavior-neutral — results are identical on both paths.
const matchParallelMinClasses = 64

// ruleMatches is one rule's merged search result for one iteration.
type ruleMatches struct {
	matches []Match
	// searchDur sums the rule's per-shard search times — attributed CPU
	// time, not wall time (shards run concurrently). The iteration wall
	// time in the Journal and the saturate stage span stay wall-clock.
	searchDur time.Duration
}

// searchParallel runs the read-only match phase for rules over g on a
// bounded worker pool, returning per-rule matches in the same order and
// with the same contents the serial matcher would produce: within each
// rule, matches appear in canonical e-class order. The caller must pass
// only rules eligible to search this iteration (bans already filtered).
//
// cancelled reports that ctx fired before every task completed; partial
// results are discarded and the caller stops the run, mirroring the serial
// matcher's between-rules cancellation check.
func searchParallel(ctx context.Context, g *EGraph, rules []Rewrite, workers int) (out []ruleMatches, cancelled bool) {
	// Serial prologue: after this, Find is write-free until the next Union.
	g.CompressPaths()
	classes := g.CanonicalClasses()
	ix := HeadIndex(classes)

	// Shard granularity is derived from the full class count, not per-rule
	// candidate counts, so the cost of one shard is comparable across rules
	// regardless of how selective their head-op filters are.
	shardSize := len(classes) / (workers * 4)
	if shardSize < matchShardMin {
		shardSize = matchShardMin
	}

	type task struct{ rule, shard int }
	var tasks []task
	results := make([][][]Match, len(rules))
	durs := make([][]time.Duration, len(rules))
	candidates := make([][]*EClass, len(rules))
	for i, r := range rules {
		shards := 1
		if _, ok := r.(ShardedRewrite); ok {
			// Shardable rules scan only their head-op candidates, split into
			// contiguous runs of the (ID-ordered) candidate list. Shard
			// boundaries differ from the pre-index layout, but the rule-major,
			// class-ordered merge below is unchanged, so the merged match
			// lists — and everything downstream — are bit-identical.
			candidates[i] = ix.Candidates(r)
			shards = (len(candidates[i]) + shardSize - 1) / shardSize
			if shards < 1 {
				shards = 1
			}
		}
		results[i] = make([][]Match, shards)
		durs[i] = make([]time.Duration, shards)
		for s := 0; s < shards; s++ {
			tasks = append(tasks, task{rule: i, shard: s})
		}
	}

	var next atomic.Int64
	var stopped atomic.Bool
	done := ctx.Done()
	run := func(t task) {
		r := rules[t.rule]
		start := time.Now()
		var ms []Match
		if sr, ok := r.(ShardedRewrite); ok {
			cand := candidates[t.rule]
			lo := t.shard * shardSize
			hi := lo + shardSize
			if hi > len(cand) {
				hi = len(cand)
			}
			ms = sr.SearchClasses(g, cand[lo:hi])
		} else {
			ms = r.Search(g)
		}
		results[t.rule][t.shard] = ms
		durs[t.rule][t.shard] = time.Since(start)
	}

	n := workers
	if n > len(tasks) {
		n = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				run(tasks[i])
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return nil, true
	}

	// Deterministic merge: rule order, then shard (= canonical class) order.
	out = make([]ruleMatches, len(rules))
	for i := range rules {
		total := 0
		for _, ms := range results[i] {
			total += len(ms)
		}
		merged := make([]Match, 0, total)
		var d time.Duration
		for s, ms := range results[i] {
			merged = append(merged, ms...)
			d += durs[i][s]
		}
		out[i] = ruleMatches{matches: merged, searchDur: d}
	}
	return out, false
}
