package egraph

import (
	"fmt"
	"strings"
	"testing"

	"diospyros/internal/expr"
)

func TestToDotStructure(t *testing.T) {
	g := New()
	root := g.AddExpr(expr.MustParse("(+ a (* a 2))"))
	out := g.ToDot()

	if !strings.HasPrefix(out, "digraph egraph {\n") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a dot digraph:\n%s", out)
	}
	// One dashed cluster per class: a, 2, (* a 2), (+ ...) — four classes.
	if n := strings.Count(out, "subgraph cluster_"); n != 4 {
		t.Errorf("clusters = %d, want 4:\n%s", n, out)
	}
	rootCluster := fmt.Sprintf("subgraph cluster_%d", root)
	if !strings.Contains(out, rootCluster) {
		t.Errorf("missing %s:\n%s", rootCluster, out)
	}
	for _, label := range []string{`[label="a"]`, `[label="2"]`, `[label="*"]`, `[label="+"]`} {
		if !strings.Contains(out, label) {
			t.Errorf("missing node %s:\n%s", label, out)
		}
	}
	// The + node has two argument edges (indices 0 and 1) into clusters.
	if n := strings.Count(out, "lhead=cluster_"); n != 4 {
		t.Errorf("argument edges = %d, want 4 (two for +, two for *):\n%s", n, out)
	}
	for _, idx := range []string{`label="0"`, `label="1"`} {
		if !strings.Contains(out, idx) {
			t.Errorf("missing argument-index edge %s:\n%s", idx, out)
		}
	}
}

func TestToDotMergedClassesShareCluster(t *testing.T) {
	g := New()
	a := g.AddExpr(expr.MustParse("(+ x y)"))
	b := g.AddExpr(expr.MustParse("(+ y x)"))
	g.Union(a, b)
	g.Rebuild()
	out := g.ToDot()

	// x, y, and the merged sum class: three clusters, with both + nodes
	// rendered inside the merged one.
	if n := strings.Count(out, "subgraph cluster_"); n != 3 {
		t.Errorf("clusters after union = %d, want 3:\n%s", n, out)
	}
	if n := strings.Count(out, `[label="+"]`); n != 2 {
		t.Errorf("+ nodes = %d, want both forms kept:\n%s", n, out)
	}
	// Every edge targets a representative that exists as a node.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, " -> ") {
			continue
		}
		target := strings.Fields(strings.TrimSpace(line))[2]
		if !strings.Contains(out, "    "+target+" [label=") {
			t.Errorf("edge targets undeclared node %q:\n%s", target, out)
		}
	}
}

func TestDotLabelEscaping(t *testing.T) {
	g := New()
	g.AddExpr(expr.Sym(`we"ird\sym`))
	out := g.ToDot()
	if !strings.Contains(out, `[label="we\"ird\\sym"]`) {
		t.Errorf("symbol not escaped for dot:\n%s", out)
	}
}
