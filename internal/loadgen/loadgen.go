// Package loadgen is the serving SLO observatory's load half: it drives
// sustained concurrent compile traffic at one or more diosserve replicas,
// records the latency distribution HDR-style (recorder.go), folds the
// server's per-request phase breakdown (X-Dios-Server-Timing) and cache
// outcomes (X-Dios-Cache) into the result, and judges runs against a
// committed baseline under SLO tolerances (compare.go). cmd/diosload is
// the CLI; the HTML soak report lives in report.go.
//
// Two driving modes:
//
//   - closed loop (Rate == 0): Concurrency workers each keep exactly one
//     request in flight — throughput follows server capacity, latency
//     measures the server under a fixed multiprogramming level;
//   - open loop (Rate > 0): requests arrive on a fixed schedule regardless
//     of completions — latency includes queueing the way real clients see
//     it, and overload shows up as shed rate rather than falling arrival
//     rate.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one run.
type Config struct {
	// URLs are the replica base URLs (e.g. http://localhost:8080),
	// round-robined across requests.
	URLs []string
	// Kernels is the source mix, cycled per request. Empty means
	// BuiltinMix().
	Kernels []Kernel
	// Concurrency is the closed-loop worker count. 0 means 4.
	Concurrency int
	// Rate switches to open-loop driving at this many arrivals/second;
	// 0 keeps the closed loop.
	Rate float64
	// Duration bounds the run. 0 means 10 s.
	Duration time.Duration
	// Timeout bounds one request. 0 means 60 s.
	Timeout time.Duration
	// CacheBust is the fraction of requests (0..1) salted with a unique
	// comment so they miss the server's content-addressed cache. 0 leaves
	// the mix fully cacheable; 1 makes every compile run the pipeline.
	CacheBust float64
	// Salt namespaces the cache-busting comments, so concurrent or repeated
	// runs don't accidentally share salted entries.
	Salt string
	// Targets asks each compile for these machine targets (JSON requests).
	// Empty sends plain-text requests for the server default.
	Targets []string
	// Window is the time-series bucket width. 0 means 1 s.
	Window time.Duration
	// Logger receives run progress. nil means silent.
	Logger *slog.Logger
	// Client overrides the HTTP client (tests). nil builds one sized to the
	// concurrency.
	Client *http.Client
}

// outcome is one completed request as the collector sees it.
type outcome struct {
	kernel  string
	status  int // HTTP status; 0 means transport failure
	timeout bool
	latency time.Duration
	at      time.Duration // completion offset from run start
	cache   string
	phases  map[string]time.Duration // from X-Dios-Server-Timing; nil if absent
}

// Run drives the configured load until the duration elapses or ctx is
// cancelled (a cancel ends the run early but still returns the result so
// far). The error is non-nil only for unusable configuration.
func Run(ctx context.Context, cfg Config) (*SoakResult, error) {
	if len(cfg.URLs) == 0 {
		return nil, errors.New("no replica URLs")
	}
	if len(cfg.Kernels) == 0 {
		cfg.Kernels = BuiltinMix()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.Concurrency + 8,
		}}
		defer client.CloseIdleConnections()
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	outcomes := make(chan outcome, 256)
	start := time.Now()

	var seq atomic.Uint64
	shoot := func() outcome {
		n := seq.Add(1) - 1
		k := cfg.Kernels[n%uint64(len(cfg.Kernels))]
		url := cfg.URLs[n%uint64(len(cfg.URLs))]
		return oneRequest(runCtx, client, cfg, url, k, n, start)
	}

	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: fixed arrival schedule, one goroutine per arrival.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					wg.Add(1)
					go func() {
						defer wg.Done()
						outcomes <- shoot()
					}()
				}
			}
		}()
	} else {
		// Closed loop: each worker keeps one request in flight.
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					o := shoot()
					select {
					case outcomes <- o:
					case <-ctx.Done():
						return
					}
				}
			}()
		}
	}
	go func() { wg.Wait(); close(outcomes) }()

	col := newCollector(cfg)
	lastLog := time.Now()
	for o := range outcomes {
		col.add(o)
		if time.Since(lastLog) >= 5*time.Second {
			lastLog = time.Now()
			cfg.Logger.Info("soaking",
				"requests", int64(col.total.Count())+col.failures,
				"ok", col.okCount, "sheds", col.sheds,
				"p50", col.ok.Quantile(0.5), "p99", col.ok.Quantile(0.99))
		}
	}
	return col.finalize(cfg, start, time.Since(start)), nil
}

// oneRequest fires one compile and classifies the reply.
func oneRequest(ctx context.Context, client *http.Client, cfg Config, url string, k Kernel, n uint64, start time.Time) outcome {
	src := k.Source
	if cfg.CacheBust > 0 && float64(n%1000) < cfg.CacheBust*1000 {
		// A unique comment changes the normalized source, so the server's
		// content-addressed cache cannot serve this request.
		src = fmt.Sprintf("%s\n// bust %s-%d\n", src, cfg.Salt, n)
	}
	body, contentType := []byte(src), "text/plain"
	if len(cfg.Targets) > 0 {
		body, _ = json.Marshal(map[string]any{"source": src, "targets": cfg.Targets})
		contentType = "application/json"
	}

	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	began := time.Now()
	req, err := http.NewRequestWithContext(rctx, "POST", url+"/compile", bytes.NewReader(body))
	if err != nil {
		return outcome{kernel: k.Name, at: time.Since(start)}
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	o := outcome{kernel: k.Name, latency: time.Since(began), at: time.Since(start)}
	if err != nil {
		o.timeout = errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		return o
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain so the conn is reusable
	o.latency = time.Since(began)
	o.status = resp.StatusCode
	o.cache = resp.Header.Get("X-Dios-Cache")
	if o.cache == "" {
		o.cache = "bypass"
	}
	o.phases = parseServerTiming(resp.Header.Get("X-Dios-Server-Timing"))
	return o
}

// parseServerTiming parses an X-Dios-Server-Timing value
// ("queue;dur=0.012, cache;dur=0.004, ...") into per-phase durations,
// returning nil when the header is absent or unparseable.
func parseServerTiming(h string) map[string]time.Duration {
	if h == "" {
		return nil
	}
	out := map[string]time.Duration{}
	for _, part := range strings.Split(h, ",") {
		name, dur, ok := strings.Cut(strings.TrimSpace(part), ";dur=")
		if !ok {
			continue
		}
		ms, err := strconv.ParseFloat(dur, 64)
		if err != nil {
			continue
		}
		out[name] = time.Duration(ms * float64(time.Millisecond))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// kernelAgg accumulates one kernel's share of the run.
type kernelAgg struct {
	requests, ok int64
	hist         Hist
}

// windowAgg accumulates one time-series bucket.
type windowAgg struct {
	requests, ok, sheds, errors int64
	hist                        Hist
}

// collector folds outcomes into the aggregates a SoakResult reports. One
// goroutine owns it; no locking.
type collector struct {
	window time.Duration

	total    Hist // every completed request that got an HTTP status
	ok       Hist // 200s only
	failures int64

	okCount, sheds, timeouts, aborts, errors int64
	hits, misses, coalesced                  int64

	perKernel map[string]*kernelAgg
	perCache  map[string]*Hist
	perPhase  map[string]*Hist
	windows   []*windowAgg
}

func newCollector(cfg Config) *collector {
	return &collector{
		window:    cfg.Window,
		perKernel: map[string]*kernelAgg{},
		perCache:  map[string]*Hist{},
		perPhase:  map[string]*Hist{},
	}
}

func (c *collector) add(o outcome) {
	ka := c.perKernel[o.kernel]
	if ka == nil {
		ka = &kernelAgg{}
		c.perKernel[o.kernel] = ka
	}
	ka.requests++

	wi := int(o.at / c.window)
	for len(c.windows) <= wi {
		c.windows = append(c.windows, &windowAgg{})
	}
	w := c.windows[wi]
	w.requests++

	if o.status == 0 {
		c.failures++
		if o.timeout {
			c.timeouts++
		} else {
			c.errors++
		}
		w.errors++
		return
	}
	c.total.Record(o.latency)
	switch o.status {
	case http.StatusOK:
		c.okCount++
		ka.ok++
		ka.hist.Record(o.latency)
		c.ok.Record(o.latency)
		w.ok++
		w.hist.Record(o.latency)
		switch o.cache {
		case "hit":
			c.hits++
		case "miss":
			c.misses++
		case "coalesced":
			c.coalesced++
		}
		ch := c.perCache[o.cache]
		if ch == nil {
			ch = &Hist{}
			c.perCache[o.cache] = ch
		}
		ch.Record(o.latency)
		for name, d := range o.phases {
			ph := c.perPhase[name]
			if ph == nil {
				ph = &Hist{}
				c.perPhase[name] = ph
			}
			ph.Record(d)
		}
	case http.StatusServiceUnavailable:
		c.sheds++
		w.sheds++
	case http.StatusGatewayTimeout:
		c.timeouts++
		w.errors++
	case http.StatusUnprocessableEntity:
		c.aborts++
		w.errors++
	default:
		c.errors++
		w.errors++
	}
}

func (c *collector) finalize(cfg Config, start time.Time, elapsed time.Duration) *SoakResult {
	names := make([]string, len(cfg.Kernels))
	for i, k := range cfg.Kernels {
		names[i] = k.Name
	}
	requests := int64(c.total.Count()) + c.failures
	res := &SoakResult{
		Schema:    SoakSchema,
		StartedAt: start.UTC().Format(time.RFC3339),
		Config: SoakConfig{
			URLs:        cfg.URLs,
			Kernels:     names,
			Concurrency: cfg.Concurrency,
			RatePerSec:  cfg.Rate,
			DurationSec: cfg.Duration.Seconds(),
			TimeoutSec:  cfg.Timeout.Seconds(),
			CacheBust:   cfg.CacheBust,
			Targets:     cfg.Targets,
		},
		Requests:       requests,
		OK:             c.okCount,
		Sheds:          c.sheds,
		Timeouts:       c.timeouts,
		Aborts:         c.aborts,
		Errors:         c.errors,
		CacheHits:      c.hits,
		CacheMisses:    c.misses,
		CacheCoalesced: c.coalesced,
		Latency:        c.ok.Summary(),
		AllLatency:     c.total.Summary(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.ThroughputRPS = float64(requests) / sec
	}
	if requests > 0 {
		res.ErrorRate = float64(c.errors+c.timeouts+c.aborts) / float64(requests)
		res.ShedRate = float64(c.sheds) / float64(requests)
	}
	if mediated := c.hits + c.misses + c.coalesced; mediated > 0 {
		res.CacheHitRatio = float64(c.hits+c.coalesced) / float64(mediated)
	}
	if len(c.perPhase) > 0 {
		res.Phases = map[string]LatencyMS{}
		for name, h := range c.perPhase {
			res.Phases[name] = h.Summary()
		}
	}
	for name, ka := range c.perKernel {
		res.PerKernel = append(res.PerKernel, KernelStats{
			Kernel: name, Requests: ka.requests, OK: ka.ok, Latency: ka.hist.Summary(),
		})
	}
	sort.Slice(res.PerKernel, func(i, j int) bool {
		return res.PerKernel[i].Kernel < res.PerKernel[j].Kernel
	})
	for outcome, h := range c.perCache {
		res.PerCache = append(res.PerCache, CacheStats{
			Outcome: outcome, Requests: int64(h.Count()), Latency: h.Summary(),
		})
	}
	sort.Slice(res.PerCache, func(i, j int) bool {
		return res.PerCache[i].Outcome < res.PerCache[j].Outcome
	})
	for i, w := range c.windows {
		win := Window{
			T:        float64(i) * c.window.Seconds(),
			Requests: w.requests,
			OK:       w.ok,
			Sheds:    w.sheds,
			Errors:   w.errors,
			P50:      float64(w.hist.Quantile(0.5)) / float64(time.Millisecond),
			P99:      float64(w.hist.Quantile(0.99)) / float64(time.Millisecond),
		}
		if s := c.window.Seconds(); s > 0 {
			win.RPS = float64(w.requests) / s
		}
		res.Series = append(res.Series, win)
	}
	return res
}
