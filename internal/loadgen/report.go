package loadgen

import (
	"bytes"
	_ "embed"
	"fmt"
	"html/template"
	"strings"
	"time"

	"diospyros/internal/telemetry"
)

// The HTML soak report: a self-contained page for one SoakResult —
// latency-over-time lanes (p50/p99), the throughput and shed/error
// timeline, whole-run percentile tiles, and per-phase / per-kernel /
// per-cache breakdowns. The charts are the shared telemetry line-chart
// machinery (telemetry.ChartHTML), so this report and the diospyros
// -report compile report render from one SVG template.

//go:embed soak.tmpl.html
var soakTmplSrc string

var soakTmpl = template.Must(template.New("soak").
	Funcs(telemetry.ChartTemplateFuncs).
	Funcs(template.FuncMap{
		// mulpct renders a 0..1 rate as a percentage number.
		"mulpct": func(v float64) float64 { return v * 100 },
	}).
	Parse(soakTmplSrc))

// soakView is the template model.
type soakView struct {
	Res         *SoakResult
	GeneratedAt string
	ChartCSS    template.CSS
	Latency     template.HTML // p50/p99 over time
	Throughput  template.HTML // rps + sheds/s + errors/s over time
	Phases      []phaseRow
	Gate        string // optional -compare verdict, preformatted
}

type phaseRow struct {
	Phase string
	LatencyMS
}

// Report renders the soak report page for res. gate, when non-empty, is a
// preformatted FormatGate verdict embedded verbatim.
func Report(res *SoakResult, gate string) ([]byte, error) {
	v := &soakView{
		Res:         res,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ChartCSS:    template.CSS(telemetry.ChartCSS),
		Gate:        gate,
	}
	if len(res.Series) >= 2 {
		var err error
		if v.Latency, err = latencyChart(res.Series); err != nil {
			return nil, err
		}
		if v.Throughput, err = throughputChart(res.Series); err != nil {
			return nil, err
		}
	}
	// Phases in pipeline order, not map order.
	for _, name := range []string{"queue", "cache", "compile", "serialize"} {
		if p, ok := res.Phases[name]; ok {
			v.Phases = append(v.Phases, phaseRow{Phase: name, LatencyMS: p})
		}
	}
	var b bytes.Buffer
	if err := soakTmpl.Execute(&b, v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// latencyChart plots per-window p50 and p99 in milliseconds.
func latencyChart(series []Window) (template.HTML, error) {
	xs := make([]float64, len(series))
	p50 := make([]float64, len(series))
	p99 := make([]float64, len(series))
	hi := 0.0
	for i, w := range series {
		xs[i], p50[i], p99[i] = w.T, w.P50, w.P99
		hi = max(hi, w.P99)
	}
	c := telemetry.NewLineChart(xs)
	c.XLabel = "seconds into run"
	c.SetYRange(0, hi*1.05)
	c.AddSeries("p50 ms", "s1", xs, p50, func(i int) string {
		return fmt.Sprintf("t=%.0fs: p50 %.1f ms", xs[i], p50[i])
	})
	c.AddSeries("p99 ms", "s2", xs, p99, func(i int) string {
		return fmt.Sprintf("t=%.0fs: p99 %.1f ms", xs[i], p99[i])
	})
	c.Legend = true
	return telemetry.ChartHTML(c.LineChart)
}

// throughputChart plots per-window completion rate with the shed and error
// rates on the same lane — overload shows as the orange line rising into
// the blue one.
func throughputChart(series []Window) (template.HTML, error) {
	xs := make([]float64, len(series))
	rps := make([]float64, len(series))
	sheds := make([]float64, len(series))
	errs := make([]float64, len(series))
	hi := 0.0
	for i, w := range series {
		width := 1.0
		if i+1 < len(series) {
			width = series[i+1].T - w.T
		} else if i > 0 {
			width = w.T - series[i-1].T
		}
		xs[i] = w.T
		rps[i] = w.RPS
		sheds[i] = float64(w.Sheds) / width
		errs[i] = float64(w.Errors) / width
		hi = max(hi, rps[i], sheds[i], errs[i])
	}
	c := telemetry.NewLineChart(xs)
	c.XLabel = "seconds into run"
	c.SetYRange(0, hi*1.05)
	c.AddSeries("completed/s", "s1", xs, rps, func(i int) string {
		return fmt.Sprintf("t=%.0fs: %.1f req/s", xs[i], rps[i])
	})
	c.AddSeries("shed/s", "s2", xs, sheds, func(i int) string {
		return fmt.Sprintf("t=%.0fs: %.1f shed/s", xs[i], sheds[i])
	})
	c.AddSeries("errors/s", "s3", xs, errs, func(i int) string {
		return fmt.Sprintf("t=%.0fs: %.1f errors/s", xs[i], errs[i])
	})
	c.Legend = true
	return telemetry.ChartHTML(c.LineChart)
}

// kernelList joins the config's kernel names for the report header.
func (v *soakView) KernelList() string { return strings.Join(v.Res.Config.Kernels, ", ") }

// URLList joins the replica URLs for the report header.
func (v *soakView) URLList() string { return strings.Join(v.Res.Config.URLs, ", ") }
