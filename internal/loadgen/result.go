package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SoakResult is the JSON artifact of one load-generation run — the serving
// counterpart of diosbench's -bench-json rows. A committed SoakResult
// (BENCH_SERVE_PR8.json at the repo root) is the baseline the -compare -slo
// gate judges fresh runs against, and the input the -report HTML renders.

// SoakSchema identifies the SoakResult JSON format.
const SoakSchema = "diosload/serve-soak/v1"

// LatencyMS is one latency distribution flattened to the percentiles an
// SLO speaks, in milliseconds.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// KernelStats is one kernel's share of the run.
type KernelStats struct {
	Kernel   string    `json:"kernel"`
	Requests int64     `json:"requests"`
	OK       int64     `json:"ok"`
	Latency  LatencyMS `json:"latency_ms"`
}

// CacheStats is one cache outcome's share of successful compiles, keyed by
// the X-Dios-Cache header ("hit", "miss", "coalesced") or "bypass" when the
// server sent none.
type CacheStats struct {
	Outcome  string    `json:"outcome"`
	Requests int64     `json:"requests"`
	Latency  LatencyMS `json:"latency_ms"`
}

// Window is one time-series bucket of the run's trajectory.
type Window struct {
	// T is the window's start offset from the run's start, in seconds.
	T float64 `json:"t"`
	// RPS is completed requests per second in this window.
	RPS      float64 `json:"rps"`
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Sheds    int64   `json:"sheds"`
	Errors   int64   `json:"errors"`
	P50      float64 `json:"p50_ms"`
	P99      float64 `json:"p99_ms"`
}

// SoakConfig echoes the knobs that shaped the run, so a committed baseline
// documents how to reproduce it and the gate can refuse to compare runs
// with different shapes.
type SoakConfig struct {
	URLs        []string `json:"urls"`
	Kernels     []string `json:"kernels"`
	Concurrency int      `json:"concurrency"`
	RatePerSec  float64  `json:"rate_per_sec,omitempty"`
	DurationSec float64  `json:"duration_sec"`
	TimeoutSec  float64  `json:"timeout_sec,omitempty"`
	CacheBust   float64  `json:"cache_bust,omitempty"`
	Targets     []string `json:"targets,omitempty"`
}

// SoakResult is the complete outcome of one run.
type SoakResult struct {
	Schema    string     `json:"schema"`
	StartedAt string     `json:"started_at"`
	Build     string     `json:"build,omitempty"`
	Config    SoakConfig `json:"config"`

	// Requests counts every completed request, successful or not.
	Requests int64 `json:"requests"`
	// ThroughputRPS is Requests over the measured run duration.
	ThroughputRPS float64 `json:"throughput_rps"`

	// Outcome counts. OK are 200s; Sheds are 503s (admission control);
	// Timeouts are 504s and client-side deadline misses; Aborts are 422s
	// (watchdog budgets); Errors is everything else, including transport
	// failures.
	OK       int64 `json:"ok"`
	Sheds    int64 `json:"sheds"`
	Timeouts int64 `json:"timeouts"`
	Aborts   int64 `json:"aborts"`
	Errors   int64 `json:"errors"`
	// ErrorRate is (Errors+Timeouts+Aborts)/Requests — the error budget the
	// SLO gate spends. ShedRate is Sheds/Requests, budgeted separately:
	// shedding is the server protecting itself, not failing.
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`

	// Cache outcome counts across successful compiles, from X-Dios-Cache.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheCoalesced int64 `json:"cache_coalesced"`
	// CacheHitRatio is (hits+coalesced) / (hits+misses+coalesced): the
	// fraction of cache-mediated compiles that avoided running the pipeline.
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// Latency is the whole-run distribution of successful (200) requests.
	Latency LatencyMS `json:"latency_ms"`
	// AllLatency includes every completed request — sheds resolve fast, so
	// this is usually lower than Latency under overload.
	AllLatency LatencyMS `json:"all_latency_ms"`

	// Phases breaks successful requests down by the server-reported
	// X-Dios-Server-Timing spans: queue, cache, compile, serialize.
	Phases map[string]LatencyMS `json:"phases_ms,omitempty"`

	PerKernel []KernelStats `json:"per_kernel"`
	PerCache  []CacheStats  `json:"per_cache,omitempty"`
	Series    []Window      `json:"series,omitempty"`
}

// WriteJSON writes the result as indented JSON — the committed-baseline
// format.
func WriteJSON(path string, res *SoakResult) error {
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// FormatSummary renders the run's headline numbers as the text block
// diosload prints after a soak.
func FormatSummary(res *SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== soak: %d requests over %.0fs against %s ==\n",
		res.Requests, res.Config.DurationSec, strings.Join(res.Config.URLs, ","))
	fmt.Fprintf(&b, "throughput  %8.1f req/s\n", res.ThroughputRPS)
	fmt.Fprintf(&b, "latency ms  p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f  (successful requests)\n",
		res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max)
	fmt.Fprintf(&b, "outcomes    %d ok, %d shed, %d timeout, %d aborted, %d errored (error rate %.2f%%, shed rate %.2f%%)\n",
		res.OK, res.Sheds, res.Timeouts, res.Aborts, res.Errors,
		res.ErrorRate*100, res.ShedRate*100)
	fmt.Fprintf(&b, "cache       %d hit, %d miss, %d coalesced (hit ratio %.0f%%)\n",
		res.CacheHits, res.CacheMisses, res.CacheCoalesced, res.CacheHitRatio*100)
	if len(res.Phases) > 0 {
		fmt.Fprintf(&b, "phases p99  ")
		var parts []string
		for _, name := range []string{"queue", "cache", "compile", "serialize"} {
			if p, ok := res.Phases[name]; ok {
				parts = append(parts, fmt.Sprintf("%s %.2fms", name, p.P99))
			}
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(parts, ", "))
	}
	return b.String()
}
