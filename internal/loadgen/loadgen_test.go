package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diospyros/internal/bench"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1..1000 ms uniformly: quantiles are known to ~3% bucket error.
	for ms := 1; ms <= 1000; ms++ {
		h.Record(time.Duration(ms) * time.Millisecond)
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(c.q)
		if ratio := float64(got) / float64(c.want); ratio < 0.95 || ratio > 1.05 {
			t.Errorf("q%.2f = %v, want %v ±5%%", c.q, got, c.want)
		}
	}
	if h.Max() != 1000*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if mean := h.Mean(); mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("mean = %v, want ~500ms", mean)
	}
}

func TestHistMergeMatchesCombinedRecording(t *testing.T) {
	// Recording into windows and merging must equal recording everything
	// into one histogram — the property finalize depends on.
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Hist
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(2_000_000)) * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%g: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if a.Max() != whole.Max() {
		t.Errorf("merged max %v != %v", a.Max(), whole.Max())
	}
}

func TestHistBucketError(t *testing.T) {
	// Every representable value must round-trip within the log-linear
	// design error (1/32 of its magnitude).
	for _, us := range []uint64{1, 31, 32, 33, 100, 999, 1023, 1024, 5_000_000, 1 << 35} {
		mid := histValue(histIndex(us))
		if diff := float64(mid) - float64(us); diff > float64(us)/16 || -diff > float64(us)/16 {
			t.Errorf("us=%d lands at %d (err %.1f%%)", us, mid, 100*diff/float64(us))
		}
	}
}

// stubServe imitates diosserve's /compile surface: statuses, cache and
// phase headers, controllable per request by kernel name.
func stubServe(t *testing.T) *httptest.Server {
	t.Helper()
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/compile" {
			http.NotFound(w, r)
			return
		}
		i := n.Add(1)
		w.Header().Set("X-Dios-Queue-Wait-Ms", "0.100")
		switch {
		case i%10 == 0: // every 10th request is shed
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		case i%10 == 5: // and one in ten is a cache hit
			w.Header().Set("X-Dios-Cache", "hit")
			w.Header().Set("X-Dios-Server-Timing",
				"queue;dur=0.000, cache;dur=0.050, compile;dur=0.050, serialize;dur=0.200")
			fmt.Fprintln(w, "{}")
		default:
			w.Header().Set("X-Dios-Cache", "miss")
			w.Header().Set("X-Dios-Server-Timing",
				"queue;dur=0.100, cache;dur=0.020, compile;dur=5.000, serialize;dur=0.300")
			fmt.Fprintln(w, "{}")
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunClosedLoopAgainstStub drives the closed loop at a deterministic
// stub and checks the collector's whole accounting: outcome counts, cache
// ratio, phase folding, per-kernel split, and the time series.
func TestRunClosedLoopAgainstStub(t *testing.T) {
	ts := stubServe(t)
	res, err := Run(context.Background(), Config{
		URLs:        []string{ts.URL},
		Kernels:     []Kernel{{Name: "a", Source: "ka"}, {Name: "b", Source: "kb"}},
		Concurrency: 4,
		Duration:    600 * time.Millisecond,
		Window:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SoakSchema {
		t.Errorf("schema = %q", res.Schema)
	}
	if res.Requests < 50 {
		t.Fatalf("only %d requests against an instant stub", res.Requests)
	}
	if res.Requests != res.OK+res.Sheds+res.Timeouts+res.Aborts+res.Errors {
		t.Errorf("outcome counts don't sum: %+v", res)
	}
	if res.Sheds == 0 || res.ShedRate == 0 {
		t.Error("stub sheds every 10th request; none recorded")
	}
	if res.CacheHits == 0 || res.CacheMisses == 0 {
		t.Errorf("cache outcomes not folded: hits=%d misses=%d", res.CacheHits, res.CacheMisses)
	}
	wantRatio := float64(res.CacheHits) / float64(res.CacheHits+res.CacheMisses)
	if diff := res.CacheHitRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("hit ratio %v, want %v", res.CacheHitRatio, wantRatio)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Errorf("degenerate latency summary: %+v", res.Latency)
	}
	if res.ThroughputRPS <= 0 {
		t.Error("no throughput")
	}
	for _, phase := range []string{"queue", "cache", "compile", "serialize"} {
		if _, ok := res.Phases[phase]; !ok {
			t.Errorf("phase %q missing from server-timing fold: %v", phase, res.Phases)
		}
	}
	// The stub reports 5 ms compile p50 for misses; the fold must be in
	// that region, not in seconds or microseconds.
	if p := res.Phases["compile"]; p.P50 < 1 || p.P50 > 10 {
		t.Errorf("compile phase p50 %.3f ms, want ~5", p.P50)
	}
	if len(res.PerKernel) != 2 {
		t.Fatalf("per-kernel rows = %d, want 2", len(res.PerKernel))
	}
	for _, k := range res.PerKernel {
		if k.Requests == 0 {
			t.Errorf("kernel %s never driven", k.Kernel)
		}
	}
	if len(res.Series) < 3 {
		t.Errorf("only %d series windows for a 600ms/100ms run", len(res.Series))
	}
}

// TestRunOpenLoop pins the open-loop mode: arrivals follow the configured
// rate, not the completion rate.
func TestRunOpenLoop(t *testing.T) {
	ts := stubServe(t)
	res, err := Run(context.Background(), Config{
		URLs:     []string{ts.URL},
		Kernels:  []Kernel{{Name: "a", Source: "ka"}},
		Rate:     200,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 arrivals scheduled; allow wide slop for runner jitter.
	if res.Requests < 40 || res.Requests > 160 {
		t.Errorf("open loop at 200/s for 0.5s completed %d requests", res.Requests)
	}
	if res.Config.RatePerSec != 200 {
		t.Errorf("config echo lost the rate: %+v", res.Config)
	}
}

func TestCacheBustSaltsRequests(t *testing.T) {
	var busted, plain atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, 4096)
		n, _ := r.Body.Read(body)
		if strings.Contains(string(body[:n]), "// bust s-") {
			busted.Add(1)
		} else {
			plain.Add(1)
		}
		fmt.Fprintln(w, "{}")
	}))
	defer ts.Close()
	_, err := Run(context.Background(), Config{
		URLs:        []string{ts.URL},
		Kernels:     []Kernel{{Name: "a", Source: "ka"}},
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		CacheBust:   0.5,
		Salt:        "s",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, p := busted.Load(), plain.Load()
	if b == 0 || p == 0 {
		t.Fatalf("cache-bust 0.5 produced %d salted / %d plain requests", b, p)
	}
	// The split is deterministic in the sequence number: close to half.
	if ratio := float64(b) / float64(b+p); ratio < 0.3 || ratio > 0.7 {
		t.Errorf("salted fraction %.2f, want ~0.5", ratio)
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming("queue;dur=0.012, cache;dur=0.004, compile;dur=412.331, serialize;dur=0.187")
	if len(got) != 4 {
		t.Fatalf("parsed %d phases: %v", len(got), got)
	}
	if d := got["compile"]; d < 412*time.Millisecond || d > 413*time.Millisecond {
		t.Errorf("compile = %v", d)
	}
	if parseServerTiming("") != nil {
		t.Error("empty header should parse to nil")
	}
	if parseServerTiming("garbage") != nil {
		t.Error("unparseable header should parse to nil")
	}
}

// baselineResult is a healthy run the gate table tests judge against.
func baselineResult() *SoakResult {
	return &SoakResult{
		Schema:        SoakSchema,
		Requests:      1000,
		OK:            995,
		ThroughputRPS: 100,
		ErrorRate:     0.002,
		ShedRate:      0.003,
		Latency:       LatencyMS{P50: 10, P90: 20, P99: 40, P999: 80, Max: 100, Mean: 12},
	}
}

// TestSLOGateTable is the acceptance-criteria table test: the gate passes a
// healthy run and fails each deliberately degraded run for the expected
// reason.
func TestSLOGateTable(t *testing.T) {
	slo := SLO{LatencyTolerance: 0.5, ErrorBudget: 0.01, ShedBudget: 0.05}
	cases := []struct {
		name        string
		mutate      func(*SoakResult)
		regressions int
		failMetric  string
	}{
		{"healthy run passes", func(r *SoakResult) {}, 0, ""},
		{"slightly slower within tolerance", func(r *SoakResult) {
			r.Latency.P50, r.Latency.P99 = 13, 55
		}, 0, ""},
		{"p99 blowup fails", func(r *SoakResult) {
			r.Latency.P99 = 90 // +125% > +50%
		}, 1, "p99 latency ms"},
		{"tail-only blowup fails", func(r *SoakResult) {
			r.Latency.P999 = 400
		}, 1, "p99.9 latency ms"},
		{"throughput collapse fails", func(r *SoakResult) {
			r.ThroughputRPS = 40 // -60% < -50%
		}, 1, "throughput rps"},
		{"error budget blown fails", func(r *SoakResult) {
			r.ErrorRate = 0.05
		}, 1, "error rate"},
		{"shed budget blown fails", func(r *SoakResult) {
			r.ShedRate = 0.20
		}, 1, "shed rate"},
		{"fully degraded run fails everything", func(r *SoakResult) {
			r.Latency = LatencyMS{P50: 100, P90: 200, P99: 400, P999: 800, Max: 900, Mean: 150}
			r.ThroughputRPS = 10
			r.ErrorRate = 0.30
			r.ShedRate = 0.40
		}, 7, "p50 latency ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur := baselineResult()
			c.mutate(cur)
			rows := CompareResults(baselineResult(), cur, slo)
			if got := CountRegressions(rows); got != c.regressions {
				t.Fatalf("regressions = %d, want %d\n%s",
					got, c.regressions, FormatGate(rows, slo))
			}
			text := FormatGate(rows, slo)
			if c.regressions == 0 {
				if !strings.Contains(text, "OK: serving SLO held") {
					t.Errorf("missing OK verdict:\n%s", text)
				}
				return
			}
			if !strings.Contains(text, "FAIL:") {
				t.Errorf("missing FAIL verdict:\n%s", text)
			}
			found := false
			for _, r := range rows {
				if r.Metric == c.failMetric && r.Status == bench.CompareRegressed {
					found = true
				}
			}
			if !found {
				t.Errorf("expected %q to regress:\n%s", c.failMetric, text)
			}
		})
	}
}

// TestSLOGateLatencyFloor pins the floor: percentiles below it are all
// "fast enough", so sub-floor jitter passes while a jump past the floor
// still fails.
func TestSLOGateLatencyFloor(t *testing.T) {
	slo := SLO{LatencyTolerance: 0.5, ErrorBudget: 1, ShedBudget: 1, LatencyFloorMS: 5}
	base := baselineResult()
	base.Latency.P50 = 0.6 // a cache-hit-dominated p50: pure noise territory

	// 0.6 ms -> 4.4 ms is +633%, but both sit under the 5 ms floor: ok.
	cur := baselineResult()
	cur.Latency.P50 = 4.4
	if n := CountRegressions(CompareResults(base, cur, slo)); n != 0 {
		t.Errorf("sub-floor jitter regressed the gate (%d)", n)
	}

	// 0.6 ms -> 40 ms clears the floor by far more than the tolerance.
	cur = baselineResult()
	cur.Latency.P50 = 40
	rows := CompareResults(base, cur, slo)
	if n := CountRegressions(rows); n != 1 {
		t.Errorf("past-floor jump did not regress:\n%s", FormatGate(rows, slo))
	}

	// Without the floor the jitter fails — the case the floor exists for.
	noFloor := slo
	noFloor.LatencyFloorMS = 0
	cur = baselineResult()
	cur.Latency.P50 = 4.4
	if n := CountRegressions(CompareResults(base, cur, noFloor)); n != 1 {
		t.Error("floorless gate should flag the +633% move")
	}
}

// TestCompareRejectsForeignBaselines pins the schema check.
func TestCompareRejectsForeignBaselines(t *testing.T) {
	if _, err := Compare([]byte(`{"schema":"something-else"}`), baselineResult(), DefaultSLO); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := Compare([]byte(`not json`), baselineResult(), DefaultSLO); err == nil {
		t.Error("garbage baseline accepted")
	}
	if _, err := Compare([]byte(`{"schema":"`+SoakSchema+`"}`), baselineResult(), DefaultSLO); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestMixByNames(t *testing.T) {
	mix, ok := MixByNames([]string{"qr3", "dot8"})
	if !ok || len(mix) != 2 || mix[0].Name != "qr3" || mix[1].Name != "dot8" {
		t.Fatalf("MixByNames = %v, %v", mix, ok)
	}
	if _, ok := MixByNames([]string{"nope"}); ok {
		t.Error("unknown kernel accepted")
	}
	if _, ok := MixByNames(nil); ok {
		t.Error("empty selection accepted")
	}
}

// TestReportRendersSoak asserts the HTML soak report carries every section
// the acceptance criteria name: latency lanes, the shed timeline, phase,
// per-kernel and per-cache tables, and the embedded gate verdict.
func TestReportRendersSoak(t *testing.T) {
	res := baselineResult()
	res.Config = SoakConfig{
		URLs: []string{"http://localhost:8175"}, Kernels: []string{"dot8", "qr3"},
		Concurrency: 4, DurationSec: 20,
	}
	res.Phases = map[string]LatencyMS{
		"queue":     {P50: 0.01, P99: 0.2, Max: 1, Mean: 0.05},
		"cache":     {P50: 0.02, P99: 0.1, Max: 0.5, Mean: 0.03},
		"compile":   {P50: 8, P99: 60, Max: 90, Mean: 12},
		"serialize": {P50: 0.2, P99: 1, Max: 2, Mean: 0.3},
	}
	res.PerKernel = []KernelStats{
		{Kernel: "dot8", Requests: 500, OK: 498, Latency: LatencyMS{P50: 6, P99: 20, Max: 30, Mean: 8}},
		{Kernel: "qr3", Requests: 500, OK: 497, Latency: LatencyMS{P50: 60, P99: 90, Max: 120, Mean: 65}},
	}
	res.PerCache = []CacheStats{
		{Outcome: "hit", Requests: 700, Latency: LatencyMS{P50: 1, P99: 3, Max: 5, Mean: 1.2}},
		{Outcome: "miss", Requests: 300, Latency: LatencyMS{P50: 30, P99: 80, Max: 100, Mean: 35}},
	}
	for i := 0; i < 20; i++ {
		res.Series = append(res.Series, Window{
			T: float64(i), RPS: 100, Requests: 100, OK: 95, Sheds: 3, Errors: 2,
			P50: 10 + float64(i), P99: 40 + float64(i),
		})
	}
	gate := FormatGate(CompareResults(baselineResult(), res, DefaultSLO), DefaultSLO)

	page, err := Report(res, gate)
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Latency over time",
		"Throughput, sheds, and errors",
		"Server-side phase breakdown",
		"Per-kernel",
		"Per cache outcome",
		"SLO gate",
		"serving SLO check",
		"polyline", // the shared chart partial actually rendered
		"p99 ms",
		"qr3",
		"coalesced", // absent outcome must not appear...
	} {
		if want == "coalesced" {
			if strings.Contains(html, want) {
				t.Errorf("report mentions %q though the run had none", want)
			}
			continue
		}
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(html, "</html>") {
		t.Error("report truncated")
	}
}
