package loadgen

// The built-in kernel mix: five kernels spanning the suite's compile-cost
// range, from a ~1 ms 2x2 matmul to the ~60 ms Householder QR, so a soak
// exercises both the fast path (where queueing and serialization dominate)
// and real saturation work. Sources mirror testdata/*.dios but are embedded
// so diosload runs standalone against any replica.

// Kernel is one entry of the load mix.
type Kernel struct {
	// Name labels the kernel in results and reports.
	Name string
	// Source is the kernel in the imperative text language.
	Source string
}

// BuiltinMix returns the default five-kernel mix, cheapest first.
func BuiltinMix() []Kernel {
	return []Kernel{
		{Name: "matmul2x2", Source: matmul2x2Src},
		{Name: "matmul2x3", Source: matmul2x3Src},
		{Name: "dot8", Source: dot8Src},
		{Name: "fir8", Source: fir8Src},
		{Name: "qr3", Source: qr3Src},
	}
}

// MixByNames resolves a comma-separated selection against the built-in
// mix; see cmd/diosload's -kernels flag.
func MixByNames(names []string) ([]Kernel, bool) {
	byName := map[string]Kernel{}
	for _, k := range BuiltinMix() {
		byName[k.Name] = k
	}
	var out []Kernel
	for _, n := range names {
		k, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, k)
	}
	return out, len(out) > 0
}

const dot8Src = `
kernel dot8(a[8], b[8]) -> (out[1]) {
    out[0] = 0.0;
    for i in 0..8 {
        out[0] = out[0] + a[i] * b[i];
    }
}
`

const fir8Src = `
kernel fir8(x[16], h[8]) -> (y[16]) {
    for n in 0..16 {
        y[n] = 0.0;
        for k in 0..8 {
            let j = n - k;
            if j >= 0 {
                y[n] = y[n] + h[k] * x[j];
            }
        }
    }
}
`

const matmul2x2Src = `
kernel matmul2(a[2][2], b[2][2]) -> (c[2][2]) {
    for i in 0..2 {
        for j in 0..2 {
            c[i][j] = 0.0;
            for k in 0..2 {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
}
`

const matmul2x3Src = `
kernel matmul(a[2][3], b[3][3]) -> (c[2][3]) {
    for i in 0..2 {
        for j in 0..3 {
            c[i][j] = 0.0;
            for k in 0..3 {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
}
`

const qr3Src = `
kernel qrdecomp(a[3][3]) -> (q[3][3], r[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            r[i][j] = a[i][j];
            if i == j {
                q[i][j] = 1.0;
            } else {
                q[i][j] = 0.0;
            }
        }
    }
    var v[3];
    for k in 0..2 {
        let norm2 = 0.0;
        for i in k..3 {
            norm2 = norm2 + r[i][k] * r[i][k];
        }
        let alpha = 0.0 - sgn(r[k][k]) * sqrt(norm2);
        for i in 0..3 {
            if i < k {
                v[i] = 0.0;
            } else if i == k {
                v[i] = r[k][k] - alpha;
            } else {
                v[i] = r[i][k];
            }
        }
        let vnorm2 = 0.0;
        for i in k..3 {
            vnorm2 = vnorm2 + v[i] * v[i];
        }
        let beta = 2.0 / vnorm2;
        for j in 0..3 {
            let dot = 0.0;
            for i in k..3 {
                dot = dot + v[i] * r[i][j];
            }
            let s = beta * dot;
            for i in k..3 {
                r[i][j] = r[i][j] - v[i] * s;
            }
        }
        for i in 0..3 {
            let dot = 0.0;
            for j in k..3 {
                dot = dot + q[i][j] * v[j];
            }
            let s = beta * dot;
            for j in k..3 {
                q[i][j] = q[i][j] - v[j] * s;
            }
        }
    }
}
`
