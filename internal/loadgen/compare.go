package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"

	"diospyros/internal/bench"
)

// The serving SLO gate: diosload -compare -slo judges a fresh SoakResult
// against a committed baseline (BENCH_SERVE_PR8.json) the same way the
// diosbench cycle/memory gates judge Table 1 — shared bench.JudgeDelta
// verdicts, a table, a one-line verdict, and a non-zero exit on regression.
// Latency percentiles and throughput are judged relative to the baseline;
// error and shed rates are judged against absolute budgets, because "we
// errored 3x more than a near-zero baseline" is noise while "we errored on
// more than 1% of requests" is an SLO.

// SLO is the gate's tolerances.
type SLO struct {
	// LatencyTolerance is the allowed relative worsening of each gated
	// latency percentile (0.25 = +25% fails). It also bounds relative
	// throughput loss.
	LatencyTolerance float64
	// ErrorBudget is the maximum acceptable error rate
	// ((errors+timeouts+aborts)/requests), absolute.
	ErrorBudget float64
	// ShedBudget is the maximum acceptable shed rate (sheds/requests),
	// absolute.
	ShedBudget float64
	// LatencyFloorMS treats every percentile below it as "fast enough":
	// both sides of a comparison are clamped up to the floor before
	// judging, so sub-floor jitter (a cache-hit p50 moving from 0.5 ms to
	// 3 ms under CPU contention) never trips the gate, while a genuine
	// jump past the floor still does. 0 disables the floor.
	LatencyFloorMS float64
}

// DefaultSLO is the gate CI runs: generous enough for shared-runner noise,
// tight enough to catch a real serving regression.
var DefaultSLO = SLO{LatencyTolerance: 0.50, ErrorBudget: 0.01, ShedBudget: 0.05, LatencyFloorMS: 5}

// GateRow is one gated metric's verdict.
type GateRow struct {
	Metric   string
	Baseline float64
	Current  float64
	Delta    float64
	Status   bench.CompareStatus
	// Budget marks rows judged against an absolute budget (shown in the
	// baseline column) rather than a baseline value.
	Budget bool
}

// Compare judges current against a JSON-encoded baseline SoakResult under
// the SLO.
func Compare(baseline []byte, current *SoakResult, slo SLO) ([]GateRow, error) {
	var base SoakResult
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("bad baseline: %w", err)
	}
	if base.Schema != "" && base.Schema != SoakSchema {
		return nil, fmt.Errorf("baseline schema %q, want %q", base.Schema, SoakSchema)
	}
	return CompareResults(&base, current, slo), nil
}

// CompareResults judges current against a parsed baseline under the SLO.
func CompareResults(base, current *SoakResult, slo SLO) []GateRow {
	rows := []GateRow{}
	latency := []struct {
		name string
		b, c float64
	}{
		{"p50 latency ms", base.Latency.P50, current.Latency.P50},
		{"p90 latency ms", base.Latency.P90, current.Latency.P90},
		{"p99 latency ms", base.Latency.P99, current.Latency.P99},
		{"p99.9 latency ms", base.Latency.P999, current.Latency.P999},
	}
	for _, m := range latency {
		delta, status := bench.JudgeDelta(
			max(m.b, slo.LatencyFloorMS), max(m.c, slo.LatencyFloorMS), slo.LatencyTolerance)
		rows = append(rows, GateRow{
			Metric: m.name, Baseline: m.b, Current: m.c, Delta: delta, Status: status,
		})
	}

	// Throughput: higher is better, so the verdict flips.
	delta, status := bench.JudgeDelta(base.ThroughputRPS, current.ThroughputRPS, slo.LatencyTolerance)
	switch status {
	case bench.CompareRegressed:
		status = bench.CompareImproved
	case bench.CompareImproved:
		status = bench.CompareRegressed
	}
	rows = append(rows, GateRow{
		Metric: "throughput rps", Baseline: base.ThroughputRPS,
		Current: current.ThroughputRPS, Delta: delta, Status: status,
	})

	// Absolute budgets: the baseline column carries the budget itself.
	for _, m := range []struct {
		name   string
		budget float64
		rate   float64
	}{
		{"error rate", slo.ErrorBudget, current.ErrorRate},
		{"shed rate", slo.ShedBudget, current.ShedRate},
	} {
		st := bench.CompareOK
		if m.rate > m.budget {
			st = bench.CompareRegressed
		}
		rows = append(rows, GateRow{
			Metric: m.name, Baseline: m.budget, Current: m.rate,
			Delta: m.rate - m.budget, Status: st, Budget: true,
		})
	}
	return rows
}

// CountRegressions returns how many gate rows fail.
func CountRegressions(rows []GateRow) int {
	n := 0
	for _, r := range rows {
		if r.Status == bench.CompareRegressed {
			n++
		}
	}
	return n
}

// FormatGate renders the SLO verdict as a table, mirroring the diosbench
// gates' output shape.
func FormatGate(rows []GateRow, slo SLO) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== serving SLO check (latency %+.0f%%, error budget %.2f%%, shed budget %.2f%%) ==\n",
		slo.LatencyTolerance*100, slo.ErrorBudget*100, slo.ShedBudget*100)
	w := len("metric")
	for _, r := range rows {
		if len(r.Metric) > w {
			w = len(r.Metric)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %9s  %s\n", w, "metric", "baseline", "current", "delta", "status")
	for _, r := range rows {
		base := fmt.Sprintf("%.3f", r.Baseline)
		if r.Budget {
			base = fmt.Sprintf("<=%.3f", r.Baseline)
		}
		delta := fmt.Sprintf("%+.1f%%", r.Delta*100)
		if r.Budget {
			delta = fmt.Sprintf("%+.3f", r.Delta)
		} else if r.Status == bench.CompareNoBaseline {
			delta = "-"
		}
		fmt.Fprintf(&b, "%-*s  %12s  %12.3f  %9s  %s\n", w, r.Metric, base, r.Current, delta, r.Status)
	}
	if n := CountRegressions(rows); n > 0 {
		fmt.Fprintf(&b, "FAIL: %d serving metric(s) outside the SLO\n", n)
	} else {
		fmt.Fprintf(&b, "OK: serving SLO held\n")
	}
	return b.String()
}
