package loadgen

import (
	"math/bits"
	"time"
)

// HDR-style latency recorder: a log-linear histogram over microseconds with
// 32 linear sub-buckets per power of two, so every recorded value lands in
// a bucket within ~3% of its true magnitude. Recording is O(1) with no
// allocation on the hot path, percentiles are reconstructed from bucket
// midpoints, and two histograms merge bucket-wise — which is what lets the
// collector keep one histogram per time window and still produce whole-run
// percentiles at the end.

const (
	histSubBits  = 5 // 32 sub-buckets per power of two: ~3% worst-case error
	histSubCount = 1 << histSubBits
	// histBuckets covers 1 µs up to ~2^40 µs (~12 days) — far past any
	// request deadline, so Record never clips a real latency.
	histBuckets = histSubCount + (40-histSubBits)*histSubCount
)

// Hist is the latency histogram. The zero value is ready to use. Not
// concurrency-safe: the collector goroutine owns each instance.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sumUS  uint64
	maxUS  uint64
	minUS  uint64
}

// histIndex maps a microsecond value to its bucket.
func histIndex(us uint64) int {
	if us < histSubCount {
		return int(us)
	}
	exp := bits.Len64(us) - 1 // 2^exp <= us < 2^(exp+1)
	sub := (us >> (exp - histSubBits)) - histSubCount
	idx := histSubCount + (exp-histSubBits)*histSubCount + int(sub)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histValue returns the midpoint microsecond value of a bucket — the
// inverse of histIndex, used to reconstruct percentiles.
func histValue(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	rel := idx - histSubCount
	exp := rel/histSubCount + histSubBits
	sub := uint64(rel % histSubCount)
	lo := (histSubCount + sub) << (exp - histSubBits)
	width := uint64(1) << (exp - histSubBits)
	return lo + width/2
}

// Record folds one latency into the histogram.
func (h *Hist) Record(d time.Duration) {
	us := uint64(max(d.Microseconds(), 1))
	h.counts[histIndex(us)]++
	h.n++
	h.sumUS += us
	if us > h.maxUS {
		h.maxUS = us
	}
	if h.minUS == 0 || us < h.minUS {
		h.minUS = us
	}
}

// Count returns how many values were recorded.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Hist) Max() time.Duration { return time.Duration(h.maxUS) * time.Microsecond }

// Mean returns the arithmetic mean of recorded values.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sumUS/h.n) * time.Microsecond
}

// Quantile returns the q-quantile (0 < q <= 1) from bucket midpoints, or 0
// for an empty histogram. The error is bounded by the bucket width, ~3%.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return time.Duration(histValue(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Merge folds other into h bucket-wise.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sumUS += other.sumUS
	if other.maxUS > h.maxUS {
		h.maxUS = other.maxUS
	}
	if h.minUS == 0 || (other.minUS > 0 && other.minUS < h.minUS) {
		h.minUS = other.minUS
	}
}

// Summary flattens the histogram into the percentile set a SoakResult
// reports, in milliseconds.
func (h *Hist) Summary() LatencyMS {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyMS{
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Max:  ms(h.Max()),
		Mean: ms(h.Mean()),
	}
}
