// Package frontend implements Diospyros's imperative scalar input language
// (the role played in the paper by an embedded Racket DSL, §3.1): a small
// C-like kernel language with fixed-size float arrays, counted loops,
// conditionals, and scalar arithmetic. A kernel can be
//
//   - symbolically evaluated (Lift) into the vector DSL — the specification
//     Diospyros optimizes — provided its control flow is input-independent;
//   - concretely interpreted (Interp) as the host reference semantics;
//   - compiled to FG3-lite by package kcc as the paper's Naive /
//     Naive-fixed-size baselines (which additionally allow data-dependent
//     while/if, as used by the Eigen-like library routines).
//
// Example:
//
//	kernel matmul(a[2][3], b[3][3]) -> (c[2][3]) {
//	    for i in 0..2 {
//	        for j in 0..3 {
//	            c[i][j] = 0.0;
//	            for k in 0..3 {
//	                c[i][j] = c[i][j] + a[i][k] * b[k][j];
//	            }
//	        }
//	    }
//	}
package frontend

import (
	"fmt"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // ( ) [ ] { } , ; -> .. = + - * / % < <= > >= == != && || !
	tokKeyword
)

var keywords = map[string]bool{
	"kernel": true, "for": true, "in": true, "if": true, "else": true,
	"while": true, "let": true, "var": true,
}

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	pos  Pos
}

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a frontend diagnostic with position information.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src   string
	off   int
	line  int
	col   int
	toks  []token
	fname string
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		if c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.advance()
	}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

var twoCharPunct = map[string]bool{
	"->": true, "..": true, "<=": true, ">=": true, "==": true,
	"!=": true, "&&": true, "||": true,
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()

	// Identifiers and keywords.
	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.off
		for l.off < len(l.src) {
			c := l.peekByte()
			if !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) && c != '_' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, pos: pos}, nil
	}

	// Numbers: integer or float (with '.', but not '..').
	if unicode.IsDigit(rune(c)) {
		start := l.off
		isFloat := false
		for l.off < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
			l.advance()
		}
		if l.off+1 < len(l.src) && l.peekByte() == '.' && l.src[l.off+1] != '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
				l.advance()
			}
		}
		if l.off < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') {
			isFloat = true
			l.advance()
			if l.off < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
				l.advance()
			}
			for l.off < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if isFloat {
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return token{}, errf(pos, "bad float literal %q", text)
			}
			return token{kind: tokFloat, text: text, fval: f, pos: pos}, nil
		}
		var i int64
		if _, err := fmt.Sscanf(text, "%d", &i); err != nil {
			return token{}, errf(pos, "bad int literal %q", text)
		}
		return token{kind: tokInt, text: text, ival: i, pos: pos}, nil
	}

	// Punctuation.
	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		if twoCharPunct[two] {
			l.advance()
			l.advance()
			return token{kind: tokPunct, text: two, pos: pos}, nil
		}
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', '=', '+', '-', '*', '/', '%', '<', '>', '!':
		l.advance()
		return token{kind: tokPunct, text: string(c), pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", c)
}
