package frontend

// Type is the scalar type of an expression.
type Type uint8

const (
	TypeInvalid Type = iota
	TypeInt          // loop counters, indices, bounds
	TypeFloat        // data values
	TypeBool         // conditions
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	}
	return "invalid"
}

// Kernel is one kernel definition.
type Kernel struct {
	Name   string
	Params []Param // inputs
	Outs   []Param // outputs
	Body   *Block
	Pos    Pos
	// UserFuncs records uninterpreted functions used by the kernel
	// (name → arity), filled in by the typechecker.
	UserFuncs map[string]int
}

// Param is an input or output array. A scalar parameter is written a[1].
type Param struct {
	Name string
	Dims []int // 1 or 2 dimensions
	Pos  Pos
}

// Len returns the flattened element count.
func (p Param) Len() int {
	n := 1
	for _, d := range p.Dims {
		n *= d
	}
	return n
}

// Block is a statement list.
type Block struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// ForStmt is `for i in lo..hi { ... }` (hi exclusive).
type ForStmt struct {
	Var    string
	Lo, Hi Expr
	Body   *Block
	Pos    Pos
}

// WhileStmt is `while cond { ... }`. Data-dependent conditions are allowed
// only in baseline compilation, not in lifting.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// IfStmt is `if cond { ... } else { ... }`.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// LetStmt declares a scalar local: `let x = e;`. The type is inferred.
type LetStmt struct {
	Name string
	Val  Expr
	Type Type // set by the typechecker
	Pos  Pos
}

// VarArrayStmt declares a zero-initialized local float array: `var t[3][3];`.
type VarArrayStmt struct {
	Name string
	Dims []int
	Pos  Pos
}

// AssignStmt assigns to a scalar local or an array element.
type AssignStmt struct {
	Name    string
	Indices []Expr // nil for scalar locals
	Val     Expr
	Pos     Pos
}

func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*LetStmt) stmt()      {}
func (*VarArrayStmt) stmt() {}
func (*AssignStmt) stmt()   {}

// Expr is an expression node. Types are filled in by the typechecker.
type Expr interface {
	ExprType() Type
	ExprPos() Pos
}

type exprBase struct {
	Type Type
	Pos  Pos
}

func (e *exprBase) ExprType() Type { return e.Type }
func (e *exprBase) ExprPos() Pos   { return e.Pos }

// NumLit is a numeric literal; IsInt distinguishes `3` from `3.0`.
type NumLit struct {
	exprBase
	F     float64
	I     int64
	IsInt bool
}

// VarRef reads a scalar local or loop variable.
type VarRef struct {
	exprBase
	Name string
}

// IndexExpr reads an array element: a[i] or a[i][j].
type IndexExpr struct {
	exprBase
	Name    string
	Indices []Expr
}

// BinExpr is a binary operation. Op is the surface token:
// + - * / % < <= > >= == != && ||.
type BinExpr struct {
	exprBase
	Op   string
	L, R Expr
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	exprBase
	Op string // "-" or "!"
	X  Expr
}

// CastExpr is an implicit int→float promotion inserted by the typechecker.
type CastExpr struct {
	exprBase
	X Expr
}

// CallExpr calls a builtin (sqrt, abs, sgn) or a user-defined (uninterpreted)
// float function.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
}

// Builtins are the intrinsic float functions.
var Builtins = map[string]int{"sqrt": 1, "abs": 1, "sgn": 1}
