package frontend

import (
	"fmt"

	"diospyros/internal/kernel"
)

// Lift symbolically evaluates a kernel into the vector DSL (paper §3.1):
// integer values (indices, bounds, conditions) are computed concretely,
// while float data values remain symbolic. Control flow must therefore be
// input-independent; a condition that inspects float data is rejected with
// an explanatory error.
func Lift(k *Kernel) (*kernel.Lifted, error) {
	b := kernel.NewBuilder(k.Name)
	sc := newSScope(nil)
	for _, p := range k.Params {
		rows, cols := dims2(p.Dims)
		sc.arrays[p.Name] = &sArray{mat: b.Input(p.Name, rows, cols), dims: p.Dims}
	}
	for _, p := range k.Outs {
		rows, cols := dims2(p.Dims)
		sc.arrays[p.Name] = &sArray{mat: b.Output(p.Name, rows, cols), dims: p.Dims}
	}
	e := &liftEnv{}
	if err := e.block(k.Body, sc); err != nil {
		return nil, err
	}
	return b.Lift(), nil
}

func dims2(dims []int) (rows, cols int) {
	if len(dims) == 1 {
		return dims[0], 1
	}
	return dims[0], dims[1]
}

// sArray is either a kernel-builder matrix (params/outs) or a local
// symbolic array.
type sArray struct {
	mat   *kernel.Matrix // nil for locals
	local []kernel.Scalar
	dims  []int
}

func (a *sArray) flat(idx []int, pos Pos) (int, error) {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= a.dims[d] {
			return 0, errf(pos, "index %d out of bounds for dimension %d (size %d)", i, d, a.dims[d])
		}
		off = off*a.dims[d] + i
	}
	return off, nil
}

func (a *sArray) read(idx []int, pos Pos) (kernel.Scalar, error) {
	off, err := a.flat(idx, pos)
	if err != nil {
		return kernel.Scalar{}, err
	}
	if a.mat != nil {
		cols := 1
		if len(a.dims) == 2 {
			cols = a.dims[1]
		}
		return a.mat.At(off/cols, off%cols), nil
	}
	return a.local[off], nil
}

func (a *sArray) write(idx []int, v kernel.Scalar, pos Pos) error {
	off, err := a.flat(idx, pos)
	if err != nil {
		return err
	}
	if a.mat != nil {
		cols := 1
		if len(a.dims) == 2 {
			cols = a.dims[1]
		}
		a.mat.Set(off/cols, off%cols, v)
		return nil
	}
	a.local[off] = v
	return nil
}

type sScope struct {
	parent *sScope
	ints   map[string]int
	floats map[string]kernel.Scalar
	arrays map[string]*sArray
}

func newSScope(parent *sScope) *sScope {
	return &sScope{parent: parent, ints: map[string]int{}, floats: map[string]kernel.Scalar{}, arrays: map[string]*sArray{}}
}

func (s *sScope) findInt(name string) (*sScope, bool) {
	for c := s; c != nil; c = c.parent {
		if _, ok := c.ints[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (s *sScope) findFloat(name string) (*sScope, bool) {
	for c := s; c != nil; c = c.parent {
		if _, ok := c.floats[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (s *sScope) findArray(name string) (*sArray, bool) {
	for c := s; c != nil; c = c.parent {
		if a, ok := c.arrays[name]; ok {
			return a, true
		}
	}
	return nil, false
}

type liftEnv struct {
	steps int
}

// ErrDataDependent wraps errors caused by control flow over float data.
type ErrDataDependent struct{ Pos Pos }

func (e *ErrDataDependent) Error() string {
	return fmt.Sprintf("%s: data-dependent control flow cannot be lifted (conditions must be over integer index values)", e.Pos)
}

func (e *liftEnv) block(b *Block, parent *sScope) error {
	sc := newSScope(parent)
	for _, st := range b.Stmts {
		if err := e.stmt(st, sc); err != nil {
			return err
		}
	}
	return nil
}

func (e *liftEnv) stmt(st Stmt, sc *sScope) error {
	switch s := st.(type) {
	case *ForStmt:
		lo, err := e.intExpr(s.Lo, sc)
		if err != nil {
			return err
		}
		hi, err := e.intExpr(s.Hi, sc)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			body := newSScope(sc)
			body.ints[s.Var] = i
			for _, inner := range s.Body.Stmts {
				if err := e.stmt(inner, body); err != nil {
					return err
				}
			}
		}
		return nil
	case *WhileStmt:
		for {
			e.steps++
			if e.steps > maxWhileIters {
				return errf(s.Pos, "while loop exceeded %d iterations during lifting", maxWhileIters)
			}
			cond, err := e.boolExpr(s.Cond, sc)
			if err != nil {
				return err
			}
			if !cond {
				return nil
			}
			if err := e.block(s.Body, sc); err != nil {
				return err
			}
		}
	case *IfStmt:
		cond, err := e.boolExpr(s.Cond, sc)
		if err != nil {
			return err
		}
		if cond {
			return e.block(s.Then, sc)
		}
		if s.Else != nil {
			return e.block(s.Else, sc)
		}
		return nil
	case *LetStmt:
		if s.Type == TypeInt {
			v, err := e.intExpr(s.Val, sc)
			if err != nil {
				return err
			}
			sc.ints[s.Name] = v
			return nil
		}
		v, err := e.floatExpr(s.Val, sc)
		if err != nil {
			return err
		}
		sc.floats[s.Name] = v
		return nil
	case *VarArrayStmt:
		n := 1
		for _, d := range s.Dims {
			n *= d
		}
		local := make([]kernel.Scalar, n)
		for i := range local {
			local[i] = kernel.Const(0)
		}
		sc.arrays[s.Name] = &sArray{local: local, dims: s.Dims}
		return nil
	case *AssignStmt:
		if len(s.Indices) == 0 {
			if owner, ok := sc.findInt(s.Name); ok {
				v, err := e.intExpr(s.Val, sc)
				if err != nil {
					return err
				}
				owner.ints[s.Name] = v
				return nil
			}
			owner, ok := sc.findFloat(s.Name)
			if !ok {
				return errf(s.Pos, "assignment to undefined %q", s.Name)
			}
			v, err := e.floatExpr(s.Val, sc)
			if err != nil {
				return err
			}
			owner.floats[s.Name] = v
			return nil
		}
		arr, ok := sc.findArray(s.Name)
		if !ok {
			return errf(s.Pos, "unknown array %q", s.Name)
		}
		idx := make([]int, len(s.Indices))
		for i, ix := range s.Indices {
			v, err := e.intExpr(ix, sc)
			if err != nil {
				return err
			}
			idx[i] = v
		}
		v, err := e.floatExpr(s.Val, sc)
		if err != nil {
			return err
		}
		return arr.write(idx, v, s.Pos)
	}
	return fmt.Errorf("frontend: unknown statement %T", st)
}

func (e *liftEnv) intExpr(x Expr, sc *sScope) (int, error) {
	switch v := x.(type) {
	case *NumLit:
		return int(v.I), nil
	case *VarRef:
		if owner, ok := sc.findInt(v.Name); ok {
			return owner.ints[v.Name], nil
		}
		return 0, errf(v.Pos, "undefined int variable %q", v.Name)
	case *BinExpr:
		l, err := e.intExpr(v.L, sc)
		if err != nil {
			return 0, err
		}
		r, err := e.intExpr(v.R, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, errf(v.Pos, "integer division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, errf(v.Pos, "integer modulo by zero")
			}
			return l % r, nil
		}
		return 0, errf(v.Pos, "operator %q not an int operator", v.Op)
	case *UnExpr:
		val, err := e.intExpr(v.X, sc)
		if err != nil {
			return 0, err
		}
		return -val, nil
	}
	return 0, errf(x.ExprPos(), "expected integer expression")
}

func (e *liftEnv) floatExpr(x Expr, sc *sScope) (kernel.Scalar, error) {
	zero := kernel.Scalar{}
	switch v := x.(type) {
	case *NumLit:
		if v.IsInt {
			return kernel.Const(float64(v.I)), nil
		}
		return kernel.Const(v.F), nil
	case *CastExpr:
		i, err := e.intExpr(v.X, sc)
		if err != nil {
			return zero, err
		}
		return kernel.Const(float64(i)), nil
	case *VarRef:
		if owner, ok := sc.findFloat(v.Name); ok {
			return owner.floats[v.Name], nil
		}
		return zero, errf(v.Pos, "undefined float variable %q", v.Name)
	case *IndexExpr:
		arr, ok := sc.findArray(v.Name)
		if !ok {
			return zero, errf(v.Pos, "unknown array %q", v.Name)
		}
		idx := make([]int, len(v.Indices))
		for i, ix := range v.Indices {
			iv, err := e.intExpr(ix, sc)
			if err != nil {
				return zero, err
			}
			idx[i] = iv
		}
		return arr.read(idx, v.Pos)
	case *BinExpr:
		l, err := e.floatExpr(v.L, sc)
		if err != nil {
			return zero, err
		}
		r, err := e.floatExpr(v.R, sc)
		if err != nil {
			return zero, err
		}
		switch v.Op {
		case "+":
			return kernel.Add(l, r), nil
		case "-":
			return kernel.Sub(l, r), nil
		case "*":
			return kernel.Mul(l, r), nil
		case "/":
			return kernel.DivS(l, r), nil
		}
		return zero, errf(v.Pos, "operator %q not a float operator", v.Op)
	case *UnExpr:
		val, err := e.floatExpr(v.X, sc)
		if err != nil {
			return zero, err
		}
		return kernel.NegS(val), nil
	case *CallExpr:
		args := make([]kernel.Scalar, len(v.Args))
		for i, a := range v.Args {
			av, err := e.floatExpr(a, sc)
			if err != nil {
				return zero, err
			}
			args[i] = av
		}
		switch v.Name {
		case "sqrt":
			return kernel.SqrtS(args[0]), nil
		case "abs":
			// |x| = x · sgn(x) in the DSL (sgn ∈ {−1, +1}).
			return kernel.Mul(args[0], kernel.SgnS(args[0])), nil
		case "sgn":
			return kernel.SgnS(args[0]), nil
		}
		return kernel.Call(v.Name, args...), nil
	}
	return zero, errf(x.ExprPos(), "expected float expression")
}

// boolExpr evaluates a condition concretely. Comparisons over float data
// are data-dependent and cannot be lifted.
func (e *liftEnv) boolExpr(x Expr, sc *sScope) (bool, error) {
	switch v := x.(type) {
	case *BinExpr:
		switch v.Op {
		case "&&":
			l, err := e.boolExpr(v.L, sc)
			if err != nil || !l {
				return false, err
			}
			return e.boolExpr(v.R, sc)
		case "||":
			l, err := e.boolExpr(v.L, sc)
			if err != nil || l {
				return l, err
			}
			return e.boolExpr(v.R, sc)
		case "<", "<=", ">", ">=", "==", "!=":
			if v.L.ExprType() == TypeFloat {
				return false, &ErrDataDependent{Pos: v.Pos}
			}
			l, err := e.intExpr(v.L, sc)
			if err != nil {
				return false, err
			}
			r, err := e.intExpr(v.R, sc)
			if err != nil {
				return false, err
			}
			return cmpInt(v.Op, l, r), nil
		}
	case *UnExpr:
		if v.Op == "!" {
			b, err := e.boolExpr(v.X, sc)
			return !b, err
		}
	}
	return false, errf(x.ExprPos(), "expected boolean expression")
}
