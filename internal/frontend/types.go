package frontend

import "fmt"

// Check typechecks a kernel in place: it infers types for let bindings,
// inserts implicit int→float promotions, verifies indexing arity, and
// ensures inputs are read-only. It also records user-defined (uninterpreted)
// function arities on the kernel.
func Check(k *Kernel) error {
	c := &checker{kernel: k}
	k.UserFuncs = map[string]int{}
	scope := newScope(nil)
	seen := map[string]bool{}
	declare := func(p Param, writable bool) error {
		if seen[p.Name] {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		scope.arrays[p.Name] = arrayInfo{dims: p.Dims, writable: writable}
		return nil
	}
	for _, p := range k.Params {
		if err := declare(p, false); err != nil {
			return err
		}
	}
	for _, p := range k.Outs {
		if err := declare(p, true); err != nil {
			return err
		}
	}
	return c.block(k.Body, scope)
}

type arrayInfo struct {
	dims     []int
	writable bool
}

type scope struct {
	parent  *scope
	scalars map[string]Type
	arrays  map[string]arrayInfo
	loops   map[string]bool // loop variables: int, not assignable
}

func newScope(parent *scope) *scope {
	return &scope{
		parent:  parent,
		scalars: map[string]Type{},
		arrays:  map[string]arrayInfo{},
		loops:   map[string]bool{},
	}
}

func (s *scope) lookupScalar(name string) (Type, bool, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.scalars[name]; ok {
			return t, cur.loops[name], true
		}
		if cur.loops[name] {
			return TypeInt, true, true
		}
	}
	return TypeInvalid, false, false
}

func (s *scope) lookupArray(name string) (arrayInfo, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if a, ok := cur.arrays[name]; ok {
			return a, true
		}
	}
	return arrayInfo{}, false
}

func (s *scope) definedHere(name string) bool {
	if _, ok := s.scalars[name]; ok {
		return true
	}
	if _, ok := s.arrays[name]; ok {
		return true
	}
	return s.loops[name]
}

type checker struct {
	kernel *Kernel
}

func (c *checker) block(b *Block, parent *scope) error {
	sc := newScope(parent)
	for _, st := range b.Stmts {
		if err := c.stmt(st, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(st Stmt, sc *scope) error {
	switch s := st.(type) {
	case *ForStmt:
		if err := c.exprWant(&s.Lo, sc, TypeInt); err != nil {
			return err
		}
		if err := c.exprWant(&s.Hi, sc, TypeInt); err != nil {
			return err
		}
		body := newScope(sc)
		body.loops[s.Var] = true
		for _, inner := range s.Body.Stmts {
			if err := c.stmt(inner, body); err != nil {
				return err
			}
		}
		return nil
	case *WhileStmt:
		if err := c.exprWant(&s.Cond, sc, TypeBool); err != nil {
			return err
		}
		return c.block(s.Body, sc)
	case *IfStmt:
		if err := c.exprWant(&s.Cond, sc, TypeBool); err != nil {
			return err
		}
		if err := c.block(s.Then, sc); err != nil {
			return err
		}
		if s.Else != nil {
			return c.block(s.Else, sc)
		}
		return nil
	case *LetStmt:
		if sc.definedHere(s.Name) {
			return errf(s.Pos, "redeclaration of %q", s.Name)
		}
		t, err := c.expr(&s.Val, sc)
		if err != nil {
			return err
		}
		if t != TypeInt && t != TypeFloat {
			return errf(s.Pos, "let %s: cannot bind a %s value", s.Name, t)
		}
		s.Type = t
		sc.scalars[s.Name] = t
		return nil
	case *VarArrayStmt:
		if sc.definedHere(s.Name) {
			return errf(s.Pos, "redeclaration of %q", s.Name)
		}
		sc.arrays[s.Name] = arrayInfo{dims: s.Dims, writable: true}
		return nil
	case *AssignStmt:
		if len(s.Indices) == 0 {
			t, isLoop, ok := sc.lookupScalar(s.Name)
			if !ok {
				if _, isArr := sc.lookupArray(s.Name); isArr {
					return errf(s.Pos, "cannot assign whole array %q", s.Name)
				}
				return errf(s.Pos, "assignment to undeclared variable %q", s.Name)
			}
			if isLoop {
				return errf(s.Pos, "cannot assign to loop variable %q", s.Name)
			}
			return c.exprWant(&s.Val, sc, t)
		}
		info, ok := sc.lookupArray(s.Name)
		if !ok {
			return errf(s.Pos, "assignment to unknown array %q", s.Name)
		}
		if !info.writable {
			return errf(s.Pos, "input array %q is read-only", s.Name)
		}
		if len(s.Indices) != len(info.dims) {
			return errf(s.Pos, "array %q has %d dimensions, got %d indices", s.Name, len(info.dims), len(s.Indices))
		}
		for i := range s.Indices {
			if err := c.exprWant(&s.Indices[i], sc, TypeInt); err != nil {
				return err
			}
		}
		return c.exprWant(&s.Val, sc, TypeFloat)
	}
	return fmt.Errorf("frontend: unknown statement %T", st)
}

// exprWant typechecks *e and coerces it to the wanted type (inserting an
// int→float cast when needed).
func (c *checker) exprWant(e *Expr, sc *scope, want Type) error {
	t, err := c.expr(e, sc)
	if err != nil {
		return err
	}
	if t == want {
		return nil
	}
	if t == TypeInt && want == TypeFloat {
		*e = &CastExpr{exprBase: exprBase{Type: TypeFloat, Pos: (*e).ExprPos()}, X: *e}
		return nil
	}
	return errf((*e).ExprPos(), "expected %s, got %s", want, t)
}

func (c *checker) expr(e *Expr, sc *scope) (Type, error) {
	switch x := (*e).(type) {
	case *NumLit:
		if x.IsInt {
			x.Type = TypeInt
		} else {
			x.Type = TypeFloat
		}
		return x.Type, nil
	case *VarRef:
		t, _, ok := sc.lookupScalar(x.Name)
		if !ok {
			if _, isArr := sc.lookupArray(x.Name); isArr {
				return 0, errf(x.Pos, "array %q used without indices", x.Name)
			}
			return 0, errf(x.Pos, "undefined variable %q", x.Name)
		}
		x.Type = t
		return t, nil
	case *IndexExpr:
		info, ok := sc.lookupArray(x.Name)
		if !ok {
			return 0, errf(x.Pos, "unknown array %q", x.Name)
		}
		if len(x.Indices) != len(info.dims) {
			return 0, errf(x.Pos, "array %q has %d dimensions, got %d indices", x.Name, len(info.dims), len(x.Indices))
		}
		for i := range x.Indices {
			if err := c.exprWant(&x.Indices[i], sc, TypeInt); err != nil {
				return 0, err
			}
		}
		x.Type = TypeFloat
		return TypeFloat, nil
	case *BinExpr:
		switch x.Op {
		case "&&", "||":
			if err := c.exprWant(&x.L, sc, TypeBool); err != nil {
				return 0, err
			}
			if err := c.exprWant(&x.R, sc, TypeBool); err != nil {
				return 0, err
			}
			x.Type = TypeBool
			return TypeBool, nil
		case "%":
			if err := c.exprWant(&x.L, sc, TypeInt); err != nil {
				return 0, err
			}
			if err := c.exprWant(&x.R, sc, TypeInt); err != nil {
				return 0, err
			}
			x.Type = TypeInt
			return TypeInt, nil
		case "+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=":
			lt, err := c.expr(&x.L, sc)
			if err != nil {
				return 0, err
			}
			rt, err := c.expr(&x.R, sc)
			if err != nil {
				return 0, err
			}
			if lt == TypeBool || rt == TypeBool {
				return 0, errf(x.Pos, "operator %q not defined on bool", x.Op)
			}
			opnd := TypeInt
			if lt == TypeFloat || rt == TypeFloat {
				opnd = TypeFloat
				if lt == TypeInt {
					x.L = &CastExpr{exprBase: exprBase{Type: TypeFloat, Pos: x.L.ExprPos()}, X: x.L}
				}
				if rt == TypeInt {
					x.R = &CastExpr{exprBase: exprBase{Type: TypeFloat, Pos: x.R.ExprPos()}, X: x.R}
				}
			}
			switch x.Op {
			case "+", "-", "*", "/":
				x.Type = opnd
			default:
				x.Type = TypeBool
			}
			return x.Type, nil
		}
		return 0, errf(x.Pos, "unknown operator %q", x.Op)
	case *UnExpr:
		if x.Op == "!" {
			if err := c.exprWant(&x.X, sc, TypeBool); err != nil {
				return 0, err
			}
			x.Type = TypeBool
			return TypeBool, nil
		}
		t, err := c.expr(&x.X, sc)
		if err != nil {
			return 0, err
		}
		if t != TypeInt && t != TypeFloat {
			return 0, errf(x.Pos, "unary - on %s", t)
		}
		x.Type = t
		return t, nil
	case *CastExpr:
		x.Type = TypeFloat
		return TypeFloat, nil
	case *CallExpr:
		if arity, ok := Builtins[x.Name]; ok {
			if len(x.Args) != arity {
				return 0, errf(x.Pos, "%s expects %d argument(s)", x.Name, arity)
			}
		} else {
			// User-defined (uninterpreted) function; arity fixed at first use.
			if prev, ok := c.kernel.UserFuncs[x.Name]; ok && prev != len(x.Args) {
				return 0, errf(x.Pos, "function %q used with %d args, previously %d", x.Name, len(x.Args), prev)
			}
			c.kernel.UserFuncs[x.Name] = len(x.Args)
		}
		for i := range x.Args {
			if err := c.exprWant(&x.Args[i], sc, TypeFloat); err != nil {
				return 0, err
			}
		}
		x.Type = TypeFloat
		return TypeFloat, nil
	}
	return 0, fmt.Errorf("frontend: unknown expression %T", *e)
}
