package frontend

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/kernels"
)

const matmulSrc = `
kernel matmul(a[2][3], b[3][3]) -> (c[2][3]) {
    for i in 0..2 {
        for j in 0..3 {
            c[i][j] = 0.0;
            for k in 0..3 {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
}
`

const convSrc = `
kernel conv2d(i[3][5], f[3][3]) -> (o[5][7]) {
    for oRow in 0..5 {
        for oCol in 0..7 {
            for fRow in 0..3 {
                for fCol in 0..3 {
                    let fRT = 3 - 1 - fRow;
                    let fCT = 3 - 1 - fCol;
                    let iRow = oRow - fRT;
                    let iCol = oCol - fCT;
                    if iRow >= 0 && iRow < 3 && iCol >= 0 && iCol < 5 {
                        o[oRow][oCol] = o[oRow][oCol] + i[iRow][iCol] * f[fRT][fCT];
                    }
                }
            }
        }
    }
}
`

func TestParseMatmul(t *testing.T) {
	k, err := Parse(matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "matmul" || len(k.Params) != 2 || len(k.Outs) != 1 {
		t.Fatalf("unexpected kernel shape: %+v", k)
	}
	if k.Outs[0].Len() != 6 {
		t.Fatalf("output len = %d", k.Outs[0].Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ src, wantSub string }{
		{"", `expected "kernel"`},
		{"kernel f() -> (o[1]) {}", ""},                                 // ok actually? no params is legal
		{"kernel f(a[2]) -> (o[2]) { a[0] = 1.0; }", "read-only"},       // write to input
		{"kernel f(a[2]) -> (o[2]) { o[0][0] = 1.0; }", "1 dimensions"}, // extra index
		{"kernel f(a[2]) -> (o[2]) { o[0] = x; }", "undefined"},
		{"kernel f(a[2]) -> (o[2]) { let i = 1; let i = 2; }", "redeclaration"},
		{"kernel f(a[2]) -> (o[2]) { o[0] = a[0] % 2; }", "expected int"},
		{"kernel f(a[2]) -> (o[2]) { for i in 0..a[0] { } }", "expected int"},
		{"kernel f(a[2]) -> (o[2]) { if a[0] { } }", "expected bool"},
		{"kernel f(a[2]) -> (o[2]) { for i in 0..2 { i = 3; } }", "loop variable"},
		{"kernel f(a[0]) -> (o[2]) { }", "positive"},
		{"kernel f(a[2][2][2]) -> (o[2]) { }", "1 or 2 dimensions"},
		{"kernel f(a[2], a[3]) -> (o[2]) { }", "duplicate"},
		{"kernel f(a[2]) -> (o[2]) { o[0] = sqrt(1.0, 2.0); }", "expects 1"},
	}
	for _, c := range bad {
		_, err := Parse(c.src)
		if c.wantSub == "" {
			if err != nil {
				t.Errorf("Parse(%q) failed: %v", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestInterpMatmul(t *testing.T) {
	k := MustParse(matmulSrc)
	r := rand.New(rand.NewSource(1))
	a := make([]float64, 6)
	b := make([]float64, 9)
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range b {
		b[i] = r.Float64()
	}
	out, err := Interp(k, map[string][]float64{"a": a, "b": b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := kernels.MatMulRef(2, 3, 3, a, b)
	for i := range want {
		if math.Abs(out["c"][i]-want[i]) > 1e-12 {
			t.Fatalf("c[%d] = %g, want %g", i, out["c"][i], want[i])
		}
	}
}

func TestLiftMatmulMatchesBuilderKernel(t *testing.T) {
	k := MustParse(matmulSrc)
	lifted, err := Lift(k)
	if err != nil {
		t.Fatal(err)
	}
	builder := kernels.MatMul(2, 3, 3)
	if got, want := lifted.Spec.String(), builder.Spec.String(); got != want {
		t.Fatalf("frontend lift != builder lift:\n got %s\nwant %s", got, want)
	}
}

func TestLiftConvMatchesBuilderKernel(t *testing.T) {
	k := MustParse(convSrc)
	lifted, err := Lift(k)
	if err != nil {
		t.Fatal(err)
	}
	builder := kernels.Conv2D(3, 5, 3, 3)
	if got, want := lifted.Spec.String(), builder.Spec.String(); got != want {
		t.Fatalf("frontend conv lift != builder lift")
	}
}

func TestLiftRejectsDataDependentControlFlow(t *testing.T) {
	src := `
kernel clamp(a[4]) -> (o[4]) {
    for i in 0..4 {
        if a[i] < 0.0 {
            o[i] = 0.0;
        } else {
            o[i] = a[i];
        }
    }
}
`
	k := MustParse(src)
	_, err := Lift(k)
	var dd *ErrDataDependent
	if !errors.As(err, &dd) {
		t.Fatalf("expected ErrDataDependent, got %v", err)
	}
	// But concrete interpretation works fine.
	out, err := Interp(k, map[string][]float64{"a": {-1, 2, -3, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 0, 4}
	for i := range want {
		if out["o"][i] != want[i] {
			t.Fatalf("clamp[%d] = %g", i, out["o"][i])
		}
	}
}

func TestWhileLoopInterp(t *testing.T) {
	// Integer while loops work in both interpretation and lifting.
	src := `
kernel powsum(a[1]) -> (o[1]) {
    let n = 0;
    let acc = 0.0;
    while n < 5 {
        acc = acc + a[0];
        n = n + 1;
    }
    o[0] = acc;
}
`
	k := MustParse(src)
	out, err := Interp(k, map[string][]float64{"a": {3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["o"][0] != 15 {
		t.Fatalf("powsum = %g, want 15", out["o"][0])
	}
	lifted, err := Lift(k)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.NewEnv()
	env.Arrays["a"] = []float64{3}
	v, err := lifted.Spec.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v.Elems[0] != 15 {
		t.Fatalf("lifted powsum = %g", v.Elems[0])
	}
}

func TestBuiltinsAndUserFuncs(t *testing.T) {
	src := `
kernel funcs(a[4]) -> (o[4]) {
    o[0] = sqrt(a[0]);
    o[1] = abs(a[1]);
    o[2] = sgn(a[2]);
    o[3] = myfn(a[3], 2.0);
}
`
	k := MustParse(src)
	if k.UserFuncs["myfn"] != 2 {
		t.Fatalf("UserFuncs = %v", k.UserFuncs)
	}
	funcs := map[string]func([]float64) float64{
		"myfn": func(args []float64) float64 { return args[0] * args[1] },
	}
	out, err := Interp(k, map[string][]float64{"a": {9, -2, -7, 5}}, funcs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1, 10}
	for i := range want {
		if out["o"][i] != want[i] {
			t.Fatalf("o[%d] = %g, want %g", i, out["o"][i], want[i])
		}
	}
	// Lifted abs becomes x*sgn(x); evaluate to check.
	lifted, err := Lift(k)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.NewEnv()
	env.Arrays["a"] = []float64{9, -2, -7, 5}
	env.Funcs["myfn"] = funcs["myfn"]
	v, err := lifted.Spec.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if v.Elems[i] != want[i] {
			t.Fatalf("lifted o[%d] = %g, want %g", i, v.Elems[i], want[i])
		}
	}
}

func TestLocalVarArrays(t *testing.T) {
	src := `
kernel transpose_mul(a[2][2]) -> (o[2][2]) {
    var t[2][2];
    for i in 0..2 {
        for j in 0..2 {
            t[i][j] = a[j][i];
        }
    }
    for i in 0..2 {
        for j in 0..2 {
            o[i][j] = 0.0;
            for k in 0..2 {
                o[i][j] = o[i][j] + a[i][k] * t[k][j];
            }
        }
    }
}
`
	k := MustParse(src)
	a := []float64{1, 2, 3, 4}
	out, err := Interp(k, map[string][]float64{"a": a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a * aT = [[5, 11], [11, 25]]
	want := []float64{5, 11, 11, 25}
	for i := range want {
		if out["o"][i] != want[i] {
			t.Fatalf("o[%d] = %g, want %g", i, out["o"][i], want[i])
		}
	}
	// Same through lifting.
	lifted, err := Lift(k)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.NewEnv()
	env.Arrays["a"] = a
	v, err := lifted.Spec.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if v.Elems[i] != want[i] {
			t.Fatalf("lifted o[%d] = %g, want %g", i, v.Elems[i], want[i])
		}
	}
}

func TestIntFloatPromotion(t *testing.T) {
	src := `
kernel promo(a[2]) -> (o[2]) {
    for i in 0..2 {
        o[i] = a[i] * 2 + 1;
    }
}
`
	k := MustParse(src)
	out, err := Interp(k, map[string][]float64{"a": {1.5, -2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["o"][0] != 4 || out["o"][1] != -3 {
		t.Fatalf("promotion wrong: %v", out["o"])
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
kernel sel(a[3]) -> (o[3]) {
    for i in 0..3 {
        if i == 0 {
            o[i] = a[0];
        } else if i == 1 {
            o[i] = a[1] * 10.0;
        } else {
            o[i] = a[2] * 100.0;
        }
    }
}
`
	k := MustParse(src)
	out, err := Interp(k, map[string][]float64{"a": {1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 20, 300}
	for i := range want {
		if out["o"][i] != want[i] {
			t.Fatalf("o[%d] = %g", i, out["o"][i])
		}
	}
}

func TestInterpInputValidation(t *testing.T) {
	k := MustParse(matmulSrc)
	if _, err := Interp(k, map[string][]float64{"a": make([]float64, 6)}, nil); err == nil {
		t.Error("missing input not rejected")
	}
	if _, err := Interp(k, map[string][]float64{"a": make([]float64, 5), "b": make([]float64, 9)}, nil); err == nil {
		t.Error("wrong-size input not rejected")
	}
}

func TestRuntimeOOBIndex(t *testing.T) {
	src := `
kernel oob(a[2]) -> (o[2]) {
    for i in 0..3 {
        o[i] = a[0];
    }
}
`
	k := MustParse(src)
	if _, err := Interp(k, map[string][]float64{"a": {1, 2}}, nil); err == nil {
		t.Fatal("out-of-bounds write not caught")
	}
	if _, err := Lift(k); err == nil {
		t.Fatal("out-of-bounds write not caught during lifting")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// doubling kernel
kernel dbl(a[2]) -> (o[2]) {
    for i in 0..2 { // loop over elements
        o[i] = a[i] + a[i];
    }
}
`
	k := MustParse(src)
	out, err := Interp(k, map[string][]float64{"a": {1, 2}}, nil)
	if err != nil || out["o"][0] != 2 || out["o"][1] != 4 {
		t.Fatalf("comment handling broken: %v %v", out, err)
	}
}

// TestParserNeverPanics mutates a valid kernel source at random positions
// and checks the parser/typechecker fail gracefully (error, not panic).
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	base := matmulSrc
	glyphs := []byte("(){}[]+-*/%<>=!&|;,.0123456789abczforinletvarwhile \n")
	for trial := 0; trial < 500; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(4); k++ {
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0: // substitute
				b[pos] = glyphs[r.Intn(len(glyphs))]
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			default: // insert
				b = append(b[:pos], append([]byte{glyphs[r.Intn(len(glyphs))]}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on mutated input: %v\n%s", p, b)
				}
			}()
			if k, err := Parse(string(b)); err == nil {
				// Valid mutants must also lift or interp without panicking.
				_, _ = Lift(k)
			}
		}()
	}
}

// TestLiftInterpAgreeOnRandomStraightLine cross-checks the two evaluators
// on randomly generated straight-line kernels.
func TestLiftInterpAgreeOnRandomStraightLine(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	ops := []string{"+", "-", "*"}
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		src := fmt.Sprintf("kernel k(a[%d]) -> (o[%d]) {\n", n, n)
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("    o[%d] = a[%d] %s a[%d] %s %d.5;\n",
				i, r.Intn(n), ops[r.Intn(len(ops))], r.Intn(n), ops[r.Intn(len(ops))], r.Intn(5))
		}
		src += "}\n"
		k, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		in := make([]float64, n)
		for i := range in {
			in[i] = r.Float64()*4 - 2
		}
		got, err := Interp(k, map[string][]float64{"a": in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		lifted, err := Lift(k)
		if err != nil {
			t.Fatal(err)
		}
		env := expr.NewEnv()
		env.Arrays["a"] = in
		v, err := lifted.Spec.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(v.Elems[i]-got["o"][i]) > 1e-9 {
				t.Fatalf("trial %d: lift %g vs interp %g at %d\n%s",
					trial, v.Elems[i], got["o"][i], i, src)
			}
		}
	}
}
