package frontend

import (
	"fmt"
)

// Parse parses a kernel definition from source and typechecks it.
func Parse(src string) (*Kernel, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	k, err := p.parseKernel()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, errf(p.cur().pos, "unexpected %q after kernel", p.cur().text)
	}
	if err := Check(k); err != nil {
		return nil, err
	}
	return k, nil
}

// MustParse is Parse, panicking on error; for registered library kernels.
func MustParse(src string) *Kernel {
	k, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return k
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, errf(p.cur().pos, "expected %q, got %q", want, p.cur().text)
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseKernel() (*Kernel, error) {
	start, err := p.eat(tokKeyword, "kernel")
	if err != nil {
		return nil, err
	}
	name, err := p.eat(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, "("); err != nil {
		return nil, err
	}
	params, err := p.parseParams(")")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, "->"); err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, "("); err != nil {
		return nil, err
	}
	outs, err := p.parseParams(")")
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Kernel{Name: name.text, Params: params, Outs: outs, Body: body, Pos: start.pos}, nil
}

func (p *parser) parseParams(closer string) ([]Param, error) {
	var out []Param
	for {
		if p.accept(tokPunct, closer) {
			return out, nil
		}
		if len(out) > 0 {
			if _, err := p.eat(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		name, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		prm := Param{Name: name.text, Pos: name.pos}
		for p.accept(tokPunct, "[") {
			d, err := p.eat(tokInt, "")
			if err != nil {
				return nil, err
			}
			if d.ival <= 0 {
				return nil, errf(d.pos, "array dimension must be positive")
			}
			prm.Dims = append(prm.Dims, int(d.ival))
			if _, err := p.eat(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if len(prm.Dims) == 0 || len(prm.Dims) > 2 {
			return nil, errf(name.pos, "parameter %s must have 1 or 2 dimensions", name.text)
		}
		out = append(out, prm)
	}
}

func (p *parser) parseBlock() (*Block, error) {
	if _, err := p.eat(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokKeyword, "for"):
		p.pos++
		v, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokKeyword, "in"); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ".."); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.text, Lo: lo, Hi: hi, Body: body, Pos: t.pos}, nil

	case p.at(tokKeyword, "while"):
		p.pos++
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.pos}, nil

	case p.at(tokKeyword, "if"):
		p.pos++
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els *Block
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = &Block{Stmts: []Stmt{s}}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: t.pos}, nil

	case p.at(tokKeyword, "let"):
		p.pos++
		name, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &LetStmt{Name: name.text, Val: val, Pos: t.pos}, nil

	case p.at(tokKeyword, "var"):
		p.pos++
		name, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		st := &VarArrayStmt{Name: name.text, Pos: t.pos}
		for p.accept(tokPunct, "[") {
			d, err := p.eat(tokInt, "")
			if err != nil {
				return nil, err
			}
			if d.ival <= 0 {
				return nil, errf(d.pos, "array dimension must be positive")
			}
			st.Dims = append(st.Dims, int(d.ival))
			if _, err := p.eat(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if len(st.Dims) == 0 || len(st.Dims) > 2 {
			return nil, errf(t.pos, "var array must have 1 or 2 dimensions")
		}
		if _, err := p.eat(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil

	case p.at(tokIdent, ""):
		name := t
		p.pos++
		var indices []Expr
		for p.accept(tokPunct, "[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			indices = append(indices, idx)
			if _, err := p.eat(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if _, err := p.eat(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.text, Indices: indices, Val: val, Pos: t.pos}, nil
	}
	return nil, errf(t.pos, "expected statement, got %q", t.text)
}

// Expression parsing: precedence climbing.
// || < && < comparisons < + - < * / % < unary < primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinLevel([]string{"||"}, p.parseAnd)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinLevel([]string{"&&"}, p.parseCmp)
}

func (p *parser) parseCmp() (Expr, error) {
	return p.parseBinLevel([]string{"<", "<=", ">", ">=", "==", "!="}, p.parseAdd)
}

func (p *parser) parseAdd() (Expr, error) {
	return p.parseBinLevel([]string{"+", "-"}, p.parseMul)
}

func (p *parser) parseMul() (Expr, error) {
	return p.parseBinLevel([]string{"*", "/", "%"}, p.parseUnary)
}

func (p *parser) parseBinLevel(ops []string, next func() (Expr, error)) (Expr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tokPunct, op) {
				pos := p.cur().pos
				p.pos++
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = &BinExpr{exprBase: exprBase{Pos: pos}, Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if p.at(tokPunct, "-") || p.at(tokPunct, "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{exprBase: exprBase{Pos: t.pos}, Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.pos++
		return &NumLit{exprBase: exprBase{Pos: t.pos}, I: t.ival, IsInt: true}, nil
	case t.kind == tokFloat:
		p.pos++
		return &NumLit{exprBase: exprBase{Pos: t.pos}, F: t.fval}, nil
	case p.accept(tokPunct, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		// Call?
		if p.accept(tokPunct, "(") {
			var args []Expr
			for !p.accept(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.eat(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			return &CallExpr{exprBase: exprBase{Pos: t.pos}, Name: t.text, Args: args}, nil
		}
		// Index?
		var indices []Expr
		for p.accept(tokPunct, "[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			indices = append(indices, idx)
			if _, err := p.eat(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if len(indices) > 0 {
			return &IndexExpr{exprBase: exprBase{Pos: t.pos}, Name: t.text, Indices: indices}, nil
		}
		return &VarRef{exprBase: exprBase{Pos: t.pos}, Name: t.text}, nil
	}
	return nil, errf(t.pos, "expected expression, got %q", t.text)
}
