package frontend

import (
	"fmt"
	"math"

	"diospyros/internal/expr"
)

// Interp concretely executes a kernel on float64 inputs, returning its
// outputs. This is the host reference semantics used for differential
// testing of every other execution path (lifting, baseline compilation,
// library kernels).
func Interp(k *Kernel, inputs map[string][]float64, funcs map[string]func([]float64) float64) (map[string][]float64, error) {
	env := &interpEnv{funcs: funcs}
	sc := newIScope(nil)
	for _, p := range k.Params {
		data, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("frontend: missing input %q", p.Name)
		}
		if len(data) != p.Len() {
			return nil, fmt.Errorf("frontend: input %q has %d elements, want %d", p.Name, len(data), p.Len())
		}
		sc.arrays[p.Name] = &iArray{dims: p.Dims, vals: append([]float64(nil), data...)}
	}
	outputs := map[string][]float64{}
	for _, p := range k.Outs {
		arr := &iArray{dims: p.Dims, vals: make([]float64, p.Len()), writable: true}
		sc.arrays[p.Name] = arr
		outputs[p.Name] = arr.vals
	}
	if err := env.block(k.Body, sc); err != nil {
		return nil, err
	}
	return outputs, nil
}

// maxWhileIters guards against non-terminating kernels.
const maxWhileIters = 50_000_000

type iArray struct {
	dims     []int
	vals     []float64
	writable bool
}

func (a *iArray) flat(idx []int) (int, error) {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= a.dims[d] {
			return 0, fmt.Errorf("index %d out of bounds for dimension %d (size %d)", i, d, a.dims[d])
		}
		off = off*a.dims[d] + i
	}
	return off, nil
}

type iScope struct {
	parent *iScope
	ints   map[string]int
	floats map[string]float64
	arrays map[string]*iArray
}

func newIScope(parent *iScope) *iScope {
	return &iScope{parent: parent, ints: map[string]int{}, floats: map[string]float64{}, arrays: map[string]*iArray{}}
}

func (s *iScope) findInt(name string) (*iScope, bool) {
	for c := s; c != nil; c = c.parent {
		if _, ok := c.ints[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (s *iScope) findFloat(name string) (*iScope, bool) {
	for c := s; c != nil; c = c.parent {
		if _, ok := c.floats[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (s *iScope) findArray(name string) (*iArray, bool) {
	for c := s; c != nil; c = c.parent {
		if a, ok := c.arrays[name]; ok {
			return a, true
		}
	}
	return nil, false
}

type interpEnv struct {
	funcs map[string]func([]float64) float64
	steps int
}

func (e *interpEnv) block(b *Block, parent *iScope) error {
	sc := newIScope(parent)
	for _, st := range b.Stmts {
		if err := e.stmt(st, sc); err != nil {
			return err
		}
	}
	return nil
}

func (e *interpEnv) stmt(st Stmt, sc *iScope) error {
	switch s := st.(type) {
	case *ForStmt:
		lo, err := e.intExpr(s.Lo, sc)
		if err != nil {
			return err
		}
		hi, err := e.intExpr(s.Hi, sc)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			body := newIScope(sc)
			body.ints[s.Var] = i
			for _, inner := range s.Body.Stmts {
				if err := e.stmt(inner, body); err != nil {
					return err
				}
			}
		}
		return nil
	case *WhileStmt:
		for {
			e.steps++
			if e.steps > maxWhileIters {
				return errf(s.Pos, "while loop exceeded %d iterations", maxWhileIters)
			}
			cond, err := e.boolExpr(s.Cond, sc)
			if err != nil {
				return err
			}
			if !cond {
				return nil
			}
			if err := e.block(s.Body, sc); err != nil {
				return err
			}
		}
	case *IfStmt:
		cond, err := e.boolExpr(s.Cond, sc)
		if err != nil {
			return err
		}
		if cond {
			return e.block(s.Then, sc)
		}
		if s.Else != nil {
			return e.block(s.Else, sc)
		}
		return nil
	case *LetStmt:
		if s.Type == TypeInt {
			v, err := e.intExpr(s.Val, sc)
			if err != nil {
				return err
			}
			sc.ints[s.Name] = v
			return nil
		}
		v, err := e.floatExpr(s.Val, sc)
		if err != nil {
			return err
		}
		sc.floats[s.Name] = v
		return nil
	case *VarArrayStmt:
		n := 1
		for _, d := range s.Dims {
			n *= d
		}
		sc.arrays[s.Name] = &iArray{dims: s.Dims, vals: make([]float64, n), writable: true}
		return nil
	case *AssignStmt:
		if len(s.Indices) == 0 {
			if owner, ok := sc.findInt(s.Name); ok {
				v, err := e.intExpr(s.Val, sc)
				if err != nil {
					return err
				}
				owner.ints[s.Name] = v
				return nil
			}
			owner, ok := sc.findFloat(s.Name)
			if !ok {
				return errf(s.Pos, "assignment to undefined %q", s.Name)
			}
			v, err := e.floatExpr(s.Val, sc)
			if err != nil {
				return err
			}
			owner.floats[s.Name] = v
			return nil
		}
		arr, ok := sc.findArray(s.Name)
		if !ok {
			return errf(s.Pos, "unknown array %q", s.Name)
		}
		idx := make([]int, len(s.Indices))
		for i, ix := range s.Indices {
			v, err := e.intExpr(ix, sc)
			if err != nil {
				return err
			}
			idx[i] = v
		}
		off, err := arr.flat(idx)
		if err != nil {
			return errf(s.Pos, "%s: %v", s.Name, err)
		}
		v, err := e.floatExpr(s.Val, sc)
		if err != nil {
			return err
		}
		arr.vals[off] = v
		return nil
	}
	return fmt.Errorf("frontend: unknown statement %T", st)
}

func (e *interpEnv) intExpr(x Expr, sc *iScope) (int, error) {
	switch v := x.(type) {
	case *NumLit:
		return int(v.I), nil
	case *VarRef:
		if owner, ok := sc.findInt(v.Name); ok {
			return owner.ints[v.Name], nil
		}
		return 0, errf(v.Pos, "undefined int variable %q", v.Name)
	case *BinExpr:
		l, err := e.intExpr(v.L, sc)
		if err != nil {
			return 0, err
		}
		r, err := e.intExpr(v.R, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, errf(v.Pos, "integer division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, errf(v.Pos, "integer modulo by zero")
			}
			return l % r, nil
		}
		return 0, errf(v.Pos, "operator %q not an int operator", v.Op)
	case *UnExpr:
		val, err := e.intExpr(v.X, sc)
		if err != nil {
			return 0, err
		}
		return -val, nil
	}
	return 0, errf(x.ExprPos(), "expected integer expression")
}

func (e *interpEnv) floatExpr(x Expr, sc *iScope) (float64, error) {
	switch v := x.(type) {
	case *NumLit:
		if v.IsInt {
			return float64(v.I), nil
		}
		return v.F, nil
	case *CastExpr:
		i, err := e.intExpr(v.X, sc)
		if err != nil {
			return 0, err
		}
		return float64(i), nil
	case *VarRef:
		if owner, ok := sc.findFloat(v.Name); ok {
			return owner.floats[v.Name], nil
		}
		return 0, errf(v.Pos, "undefined float variable %q", v.Name)
	case *IndexExpr:
		arr, ok := sc.findArray(v.Name)
		if !ok {
			return 0, errf(v.Pos, "unknown array %q", v.Name)
		}
		idx := make([]int, len(v.Indices))
		for i, ix := range v.Indices {
			iv, err := e.intExpr(ix, sc)
			if err != nil {
				return 0, err
			}
			idx[i] = iv
		}
		off, err := arr.flat(idx)
		if err != nil {
			return 0, errf(v.Pos, "%s: %v", v.Name, err)
		}
		return arr.vals[off], nil
	case *BinExpr:
		l, err := e.floatExpr(v.L, sc)
		if err != nil {
			return 0, err
		}
		r, err := e.floatExpr(v.R, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			return l / r, nil
		}
		return 0, errf(v.Pos, "operator %q not a float operator", v.Op)
	case *UnExpr:
		val, err := e.floatExpr(v.X, sc)
		if err != nil {
			return 0, err
		}
		return -val, nil
	case *CallExpr:
		args := make([]float64, len(v.Args))
		for i, a := range v.Args {
			av, err := e.floatExpr(a, sc)
			if err != nil {
				return 0, err
			}
			args[i] = av
		}
		switch v.Name {
		case "sqrt":
			return math.Sqrt(args[0]), nil
		case "abs":
			return math.Abs(args[0]), nil
		case "sgn":
			return expr.Sign(args[0]), nil
		}
		fn, ok := e.funcs[v.Name]
		if !ok {
			return 0, errf(v.Pos, "no semantics for function %q", v.Name)
		}
		return fn(args), nil
	}
	return 0, errf(x.ExprPos(), "expected float expression")
}

func (e *interpEnv) boolExpr(x Expr, sc *iScope) (bool, error) {
	switch v := x.(type) {
	case *BinExpr:
		switch v.Op {
		case "&&":
			l, err := e.boolExpr(v.L, sc)
			if err != nil || !l {
				return false, err
			}
			return e.boolExpr(v.R, sc)
		case "||":
			l, err := e.boolExpr(v.L, sc)
			if err != nil || l {
				return l, err
			}
			return e.boolExpr(v.R, sc)
		case "<", "<=", ">", ">=", "==", "!=":
			if v.L.ExprType() == TypeFloat {
				l, err := e.floatExpr(v.L, sc)
				if err != nil {
					return false, err
				}
				r, err := e.floatExpr(v.R, sc)
				if err != nil {
					return false, err
				}
				return cmpFloat(v.Op, l, r), nil
			}
			l, err := e.intExpr(v.L, sc)
			if err != nil {
				return false, err
			}
			r, err := e.intExpr(v.R, sc)
			if err != nil {
				return false, err
			}
			return cmpInt(v.Op, l, r), nil
		}
	case *UnExpr:
		if v.Op == "!" {
			b, err := e.boolExpr(v.X, sc)
			return !b, err
		}
	}
	return false, errf(x.ExprPos(), "expected boolean expression")
}

func cmpInt(op string, l, r int) bool {
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "==":
		return l == r
	default:
		return l != r
	}
}

func cmpFloat(op string, l, r float64) bool {
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "==":
		return l == r
	default:
		return l != r
	}
}
