package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"diospyros/internal/telemetry"
)

func getTraces(t *testing.T, url string) (*http.Response, []map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("/traces not valid JSON: %v\n%s", err, raw)
	}
	return resp, f.TraceEvents
}

// TestTracesEndpoint is the concurrent-lanes acceptance check: two
// compiles land in the ring, and GET /traces exports them as one Chrome
// trace file with a distinct thread lane per request ID under a single
// server process.
func TestTracesEndpoint(t *testing.T) {
	// The cache is off so the second identical compile really runs and
	// lands in the ring; cached responses deliberately skip it.
	_, ts := newTestServer(t, Config{Workers: 2, CacheBytes: -1})

	var ids []string
	for i := 0; i < 2; i++ {
		resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d failed: %d (%s)", i, resp.StatusCode, cr.Error)
		}
		ids = append(ids, cr.RequestID)
	}

	resp, events := getTraces(t, ts.URL)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(events) == 0 {
		t.Fatal("no trace events after two compiles")
	}

	lanes := map[string]float64{} // request id -> stages tid
	for _, ev := range events {
		if pid := ev["pid"].(float64); pid != 1 {
			t.Errorf("event on pid %v, want shared pid 1: %v", pid, ev)
		}
		if ev["name"] == "process_name" {
			if got := ev["args"].(map[string]any)["name"]; got != "diosserve" {
				t.Errorf("process name = %v", got)
			}
		}
		if ev["name"] == "thread_name" {
			lane := ev["args"].(map[string]any)["name"].(string)
			for _, id := range ids {
				if strings.HasPrefix(lane, id+" ") && strings.HasSuffix(lane, " stages") {
					lanes[id] = ev["tid"].(float64)
				}
			}
		}
	}
	if len(lanes) != 2 || lanes[ids[0]] == lanes[ids[1]] {
		t.Errorf("want a distinct stages lane per request %v, got %v", ids, lanes)
	}
}

func TestTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceLog: -1})
	resp, _ := getTraces(t, ts.URL)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /traces status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceRingWraps checks the bounded-retention contract: the ring keeps
// only the newest entries, snapshot ordered oldest first.
func TestTraceRingWraps(t *testing.T) {
	g := newTraceRing(2)
	base := g.epoch
	for i, id := range []string{"r1", "r2", "r3"} {
		g.record(id, "k", base.Add(time.Duration(i)*time.Millisecond), &telemetry.Trace{})
	}
	snap := g.snapshot()
	if len(snap) != 2 || snap[0].RequestID != "r2" || snap[1].RequestID != "r3" {
		t.Fatalf("snapshot = %+v, want [r2 r3]", snap)
	}
	if snap[1].Epoch != 2*time.Millisecond {
		t.Errorf("epoch offset = %v, want 2ms", snap[1].Epoch)
	}
	g.record("r4", "k", base, nil) // nil traces are dropped
	if len(g.snapshot()) != 2 || g.snapshot()[1].RequestID != "r3" {
		t.Error("nil trace was recorded")
	}
}
