package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	diospyros "diospyros"
)

// This file is the content-addressed compile cache behind POST /compile:
// identical (source, options) pairs are compiled once and served from
// memory afterwards. Three mechanisms cooperate (DESIGN.md §9):
//
//   - the cache key is a SHA-256 over the normalized kernel source and a
//     canonical rendering of every Options field that can change the
//     compiled output — notably NOT MatchWorkers, whose results are
//     bit-for-bit identical at any worker count;
//   - a byte-budgeted LRU bounds memory: each stored Result is charged an
//     estimated response size and the least-recently-used entries are
//     evicted until the new one fits;
//   - an in-flight table coalesces concurrent identical requests
//     (singleflight): the first request becomes the leader and compiles,
//     later ones wait for its result instead of compiling again.
//
// The response carries the decision in an X-Dios-Cache header (hit, miss,
// or coalesced) and the diospyros_serve_cache_*_total counters aggregate
// it on /metrics. Requests that stream (SSE), install a custom cost model,
// or carry a journal bypass the cache entirely and get no header.

// compileCache is the LRU + singleflight state. All fields are guarded by
// mu; waiting for an in-flight leader happens outside the lock on the
// flight's done channel.
type compileCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	flights map[string]*cacheFlight
}

type cacheEntry struct {
	key  string
	res  *diospyros.Result
	size int64
}

// cacheFlight is one in-flight compile that followers may wait on. The
// leader sets res (nil on failure) and closes done exactly once.
type cacheFlight struct {
	done chan struct{}
	res  *diospyros.Result
}

func newCompileCache(budget int64) *compileCache {
	return &compileCache{
		budget:  budget,
		ll:      list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*cacheFlight{},
	}
}

// acquireState is the outcome of compileCache.acquire.
type acquireState int

const (
	cacheHit      acquireState = iota // res is the stored result
	cacheLeader                       // caller must compile and call finish
	cacheFollower                     // caller waits on the returned flight
)

// acquire resolves a key under one lock pass: a stored entry wins (and is
// refreshed in the LRU), else an in-flight leader is joined, else the
// caller becomes the leader of a new flight.
func (c *compileCache) acquire(key string) (*diospyros.Result, *cacheFlight, acquireState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res, nil, cacheHit
	}
	if fl, ok := c.flights[key]; ok {
		return nil, fl, cacheFollower
	}
	fl := &cacheFlight{done: make(chan struct{})}
	c.flights[key] = fl
	return nil, fl, cacheLeader
}

// wait blocks until the flight's leader finishes or ctx is cancelled,
// returning the leader's result (nil on leader failure or cancellation).
func (fl *cacheFlight) wait(ctx context.Context) *diospyros.Result {
	select {
	case <-fl.done:
		return fl.res
	case <-ctx.Done():
		return nil
	}
}

// finish completes a leader's flight: a non-nil result is published to
// waiting followers and stored in the LRU; nil (failed compile) just
// releases the followers to compile for themselves. Returns the number of
// entries evicted to make room.
func (c *compileCache) finish(key string, fl *cacheFlight, res *diospyros.Result) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fl.res = res
	close(fl.done)
	delete(c.flights, key)
	if res == nil {
		return 0
	}
	size := resultSize(res)
	if size > c.budget {
		return 0 // larger than the whole cache; serve it but never store it
	}
	if el, ok := c.entries[key]; ok { // a racing leader already stored it
		c.ll.MoveToFront(el)
		return 0
	}
	for c.bytes+size > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= old.size
		evicted++
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, size: size})
	c.bytes += size
	return evicted
}

// sizeBytes reports the cache's current charged size (for the gauge).
func (c *compileCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// resultSize estimates what caching a Result costs: the dominant response
// payloads (C text, assembly, trace JSON) plus a fixed overhead for the
// structs themselves. An estimate is fine — the budget bounds order of
// magnitude, not bytes.
func resultSize(res *diospyros.Result) int64 {
	size := int64(len(res.C)) + 1024
	if res.Program != nil {
		size += int64(len(res.Program.Disassemble()))
	}
	for i := range res.Targets {
		tr := &res.Targets[i]
		size += int64(len(tr.C)) + 256
		if tr.Program != nil {
			size += int64(len(tr.Program.Disassemble()))
		}
	}
	if res.Trace != nil {
		if raw, err := res.Trace.JSON(); err == nil {
			size += int64(len(raw))
		}
	}
	return size
}

// cacheableRequest reports whether a compile may be served from (and
// stored into) the cache. Streaming compiles replay the live flight
// recorder and must run; a caller-supplied cost model or journal is
// process state the key cannot capture.
func cacheableRequest(opts diospyros.Options) bool {
	return opts.CostModel == nil && opts.Journal == nil && opts.Progress == nil
}

// compileCacheKey derives the content address of a compile: SHA-256 over
// the normalized source and the canonical options rendering.
func compileCacheKey(src string, opts diospyros.Options) string {
	h := sha256.New()
	h.Write([]byte(normalizeSource(src)))
	h.Write([]byte{0})
	h.Write([]byte(canonicalOptions(opts)))
	return hex.EncodeToString(h.Sum(nil))
}

// normalizeSource canonicalizes representation-only differences so
// trivially re-encoded kernels share a cache entry: CRLF line endings
// become LF, trailing whitespace is stripped per line, and trailing blank
// lines are dropped. Anything deeper (indentation, comments) is left
// alone — the language is whitespace-sensitive enough that aggressive
// normalization could merge kernels that do not compile identically.
func normalizeSource(src string) string {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return strings.Join(lines, "\n")
}

// canonicalOptions renders every output-affecting Options field in a fixed
// order. MatchWorkers is deliberately absent: DESIGN.md §9's determinism
// contract makes its output identical at every setting, so requests that
// differ only in worker count share an entry. Map iteration order is
// neutralized by sorting OpCost keys.
func canonicalOptions(o diospyros.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "width=%d;timeout=%d;nodes=%d;iters=%d;novec=%t;ac=%t;backoff=%t;validate=%t;explain=%t;",
		o.Width, int64(o.Timeout), o.NodeLimit, o.MaxIterations,
		o.DisableVectorRules, o.EnableAC, o.UseBackoff, o.Validate, o.Explain)
	fmt.Fprintf(&b, "target=%q;", o.Target)
	for _, t := range o.Targets {
		fmt.Fprintf(&b, "targets=%q;", t)
	}
	for _, r := range o.ExtraRules {
		fmt.Fprintf(&b, "rule=%q|%q|%q;", r.Name, r.LHS, r.RHS)
	}
	if len(o.OpCost) > 0 {
		keys := make([]string, 0, len(o.OpCost))
		for k := range o.OpCost {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "opcost=%q=%v;", k, o.OpCost[k])
		}
	}
	return b.String()
}
