package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/kernel"
	"diospyros/internal/telemetry"
)

// dotprod is a small kernel that compiles in well under a second — the
// workhorse of the end-to-end tests.
const dotprod = `
kernel dot4(a[4], b[4]) -> (out[1]) {
    out[0] = 0.0;
    for i in 0..4 {
        out[0] = out[0] + a[i] * b[i];
    }
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NewLogger(io.Discard, slog.LevelDebug, false)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url, body, contentType string) (*http.Response, *CompileResponse) {
	t.Helper()
	resp, err := http.Post(url+"/compile", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return resp, &cr
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestCompileAndMetricsChangeAcrossRequests is the acceptance-criteria
// core: concurrent compiles succeed, and the /metrics gauges and
// histograms move as requests flow through.
func TestCompileAndMetricsChangeAcrossRequests(t *testing.T) {
	// The cache is off so both identical compiles really run; cache.go's
	// coalescing behavior has its own tests in cache_test.go.
	_, ts := newTestServer(t, Config{Workers: 2, CacheBytes: -1})

	before := scrape(t, ts.URL)
	if strings.Contains(before, "diospyros_serve_requests_total") &&
		strings.Contains(before, `path="/compile"`) {
		t.Fatalf("compile metrics present before any compile:\n%s", before)
	}

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d (%s)", resp.StatusCode, cr.Error)
				return
			}
			if cr.Kernel != "dot4" || !strings.Contains(cr.C, "dot4") {
				t.Errorf("bad response: kernel %q", cr.Kernel)
			}
			if cr.Trace == nil || len(cr.Trace.Stages) == 0 {
				t.Error("response missing trace")
			}
			if cr.Assembly == "" {
				t.Error("response missing assembly")
			}
			ids[i] = cr.RequestID
		}()
	}
	wg.Wait()
	if ids[0] == ids[1] || ids[0] == "" {
		t.Errorf("request IDs not unique: %v", ids)
	}

	after := scrape(t, ts.URL)
	for _, want := range []string{
		`diospyros_serve_requests_total{code="200",path="/compile"} 2`,
		`diospyros_stage_duration_seconds_count{stage="saturate"} 2`,
		`diospyros_compile_duration_seconds_count 2`,
		`diospyros_serve_compiles_in_flight 0`,
		`diospyros_saturation_stop_total{reason="saturated"} 2`,
	} {
		if !strings.Contains(after, want+"\n") {
			t.Errorf("missing %q in metrics:\n%s", want, after)
		}
	}
	if !strings.Contains(after, "diospyros_saturation_nodes_max ") {
		t.Error("missing node high-water mark")
	}
}

// TestWatchdogNodeBudgetAbort sets a node budget below the kernel's
// initial e-graph size, so the watchdog must fire on its first sample; the
// abort is asserted in the response trace AND the aborts counter — the
// acceptance criterion.
func TestWatchdogNodeBudgetAbort(t *testing.T) {
	src, err := os.ReadFile("../../testdata/conv3x5.dios")
	if err != nil {
		t.Fatal(err)
	}
	// AC rules make the saturation explode, so the compile reliably
	// outlives the first watchdog sample; the saturation timeout is only a
	// safety net should the watchdog ever fail to fire.
	_, ts := newTestServer(t, Config{
		Workers:       1,
		WatchdogNodes: 10,
		WatchdogPoll:  time.Millisecond,
		Options:       diospyros.Options{EnableAC: true, Timeout: 10 * time.Second},
	})

	resp, cr := postCompile(t, ts.URL, string(src), "text/plain")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if cr.Aborted != "node-budget" {
		t.Fatalf("aborted = %q", cr.Aborted)
	}
	if cr.Trace == nil || cr.Trace.StopReason != "aborted:node-budget" {
		t.Fatalf("trace stop reason = %+v", cr.Trace)
	}
	metrics := scrape(t, ts.URL)
	if !strings.Contains(metrics,
		`diospyros_serve_saturation_aborts_total{reason="node-budget"} 1`+"\n") {
		t.Errorf("abort counter missing:\n%s", metrics)
	}
}

// TestWatchdogHeapBudgetAbort mirrors the node-budget test with a 1-byte
// heap budget: any live process heap exceeds it, so the watchdog must abort
// on its first sample with the heap-budget reason, flowing through the same
// 422 + trace + counter path as node budgets.
func TestWatchdogHeapBudgetAbort(t *testing.T) {
	src, err := os.ReadFile("../../testdata/conv3x5.dios")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Workers:      1,
		WatchdogHeap: 1,
		WatchdogPoll: time.Millisecond,
		Options:      diospyros.Options{EnableAC: true, Timeout: 10 * time.Second},
	})

	resp, cr := postCompile(t, ts.URL, string(src), "text/plain")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if cr.Aborted != "heap-budget" {
		t.Fatalf("aborted = %q", cr.Aborted)
	}
	if cr.Trace == nil || cr.Trace.StopReason != "aborted:heap-budget" {
		t.Fatalf("trace stop reason = %+v", cr.Trace)
	}
	metrics := scrape(t, ts.URL)
	if !strings.Contains(metrics,
		`diospyros_serve_saturation_aborts_total{reason="heap-budget"} 1`+"\n") {
		t.Errorf("abort counter missing:\n%s", metrics)
	}
}

// TestWatchdogLiveGaugesResetAfterCompile pins the gauge lifecycle: the
// watchdog-nodes and egraph-bytes gauges exist after a compile but read 0
// once it finishes — the stop path clears them instead of freezing the last
// mid-compile sample (which used to make an idle server look busy).
func TestWatchdogLiveGaugesResetAfterCompile(t *testing.T) {
	// No budgets: the sampler must run for pure observability.
	_, ts := newTestServer(t, Config{Workers: 1, WatchdogPoll: time.Millisecond})
	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	metrics := scrape(t, ts.URL)
	for _, want := range []string{
		"diospyros_serve_watchdog_nodes 0",
		"diospyros_serve_egraph_bytes 0",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("missing idle reset %q in metrics:\n%s", want, metrics)
		}
	}
	// The heap high-water gauge is a max, not a live sample: it must be
	// present and positive after a compile.
	if !strings.Contains(metrics, "diospyros_serve_heap_highwater_bytes ") ||
		strings.Contains(metrics, "diospyros_serve_heap_highwater_bytes 0\n") {
		t.Errorf("heap high-water gauge missing or zero:\n%s", metrics)
	}
}

// blockingCompileFn returns a stub whose first call blocks until its
// context ends (reporting the cancellation cause) and signals entry;
// later calls succeed instantly.
func blockingCompileFn(entered chan<- struct{}) func(context.Context, string, diospyros.Options) (*diospyros.Result, error) {
	var once sync.Once
	return func(ctx context.Context, _ string, _ diospyros.Options) (*diospyros.Result, error) {
		blocked := false
		once.Do(func() {
			blocked = true
			entered <- struct{}{}
			<-ctx.Done()
		})
		if blocked {
			err := context.Cause(ctx)
			if err == nil {
				err = ctx.Err()
			}
			return nil, err
		}
		return &diospyros.Result{
			Kernel: &kernel.Lifted{Name: "stub"},
			Trace:  &telemetry.Trace{},
		}, nil
	}
}

// TestClientCancellationReleasesWorkerSlot is the satellite requirement:
// a cancelled request returns promptly, frees its worker slot for the next
// request, and increments the cancellation counter.
func TestClientCancellationReleasesWorkerSlot(t *testing.T) {
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 1})
	s.compileFn = blockingCompileFn(entered)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/compile",
		strings.NewReader(dotprod))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-entered // the compile holds the only worker slot
	cancel()  // client gives up

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled request returned a response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return promptly")
	}

	// The slot must be free again: a second compile completes quickly.
	done := make(chan *http.Response, 1)
	go func() {
		resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
		_ = cr
		done <- resp
	}()
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follow-up compile status = %d", resp.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot not released after cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		metrics := scrape(t, ts.URL)
		if strings.Contains(metrics, `diospyros_serve_cancelled_total{phase="compiling"} 1`+"\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation counter missing:\n%s", metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueFullSheds fills the single worker and the zero-depth queue,
// then expects 503 + Retry-After for the overflow request.
func TestQueueFullSheds(t *testing.T) {
	// The cache is off: with it on, the identical second request would
	// coalesce onto the in-flight compile instead of reaching admission.
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, CacheBytes: -1})
	s.compileFn = blockingCompileFn(entered)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/compile",
		strings.NewReader(dotprod))
	go func() { _, _ = http.DefaultClient.Do(req) }()
	<-entered

	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if !strings.Contains(scrape(t, ts.URL),
		`diospyros_serve_rejected_total{reason="queue_full"} 1`+"\n") {
		t.Error("rejected counter missing")
	}
	cancel()
}

// TestRequestDeadline asserts the server-imposed deadline maps to 504 and
// the timeout counter.
func TestRequestDeadline(t *testing.T) {
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	s.compileFn = blockingCompileFn(entered)

	go func() { <-entered }()
	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if !strings.Contains(scrape(t, ts.URL), "diospyros_serve_timeouts_total 1\n") {
		t.Error("timeout counter missing")
	}
}

func TestJSONRequestWithOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(CompileRequest{Source: dotprod, NoVector: true, Validate: true})
	resp, cr := postCompile(t, ts.URL, string(body), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if !cr.Validated {
		t.Error("validate option not honored")
	}
	if strings.Contains(cr.C, "vec_") {
		t.Error("no_vector option not honored (vector intrinsics in output)")
	}
}

// TestMultiTargetCompile is the serve-layer multi-target acceptance test:
// a two-target JSON compile returns both per-target programs, is cached
// under a key distinct from the single-target request for the same source,
// and repeats as a cache hit.
func TestMultiTargetCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	body, _ := json.Marshal(CompileRequest{Source: dotprod, Targets: []string{"fg3lite-4", "fg3lite-8"}})
	resp, cr := postCompile(t, ts.URL, string(body), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	if got := resp.Header.Get("X-Dios-Cache"); got != "miss" {
		t.Fatalf("first multi-target compile X-Dios-Cache = %q, want miss", got)
	}
	if len(cr.Targets) != 2 {
		t.Fatalf("got %d target programs, want 2", len(cr.Targets))
	}
	for i, want := range []struct {
		name  string
		width int
	}{{"fg3lite-4", 4}, {"fg3lite-8", 8}} {
		tp := cr.Targets[i]
		if tp.Target != want.name || tp.Width != want.width {
			t.Errorf("targets[%d] = %s/%d, want %s/%d", i, tp.Target, tp.Width, want.name, want.width)
		}
		if tp.C == "" || tp.Assembly == "" {
			t.Errorf("%s: missing C or assembly", tp.Target)
		}
		if tp.Cycles <= 0 {
			t.Errorf("%s: no simulated cycles", tp.Target)
		}
	}
	// The primary artifacts mirror the first requested target.
	if cr.Assembly != cr.Targets[0].Assembly || cr.C != cr.Targets[0].C {
		t.Error("primary artifacts do not mirror targets[0]")
	}

	// Same request again: a cache hit with the same per-target payload.
	resp2, cr2 := postCompile(t, ts.URL, string(body), "application/json")
	if got := resp2.Header.Get("X-Dios-Cache"); got != "hit" {
		t.Fatalf("repeat multi-target compile X-Dios-Cache = %q, want hit", got)
	}
	if len(cr2.Targets) != 2 || cr2.Targets[1].Assembly != cr.Targets[1].Assembly {
		t.Error("cached multi-target response lost per-target programs")
	}

	// The single-target request for the same source must NOT share the
	// multi-target entry: it compiles fresh (miss) and carries no targets
	// array.
	resp3, cr3 := postCompile(t, ts.URL, dotprod, "text/plain")
	if got := resp3.Header.Get("X-Dios-Cache"); got != "miss" {
		t.Fatalf("single-target compile X-Dios-Cache = %q, want miss", got)
	}
	if len(cr3.Targets) != 0 {
		t.Errorf("single-target response has %d targets, want none", len(cr3.Targets))
	}

	// And the key derivation itself: target set membership and order are
	// part of the content address.
	base := compileCacheKey(dotprod, diospyros.Options{})
	multi := compileCacheKey(dotprod, diospyros.Options{Targets: []string{"fg3lite-4", "fg3lite-8"}})
	if multi == base {
		t.Error("targets did not change the cache key")
	}
	if one := compileCacheKey(dotprod, diospyros.Options{Targets: []string{"fg3lite-4"}}); one == multi || one == base {
		t.Error("single-entry targets key collides")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, c := range []struct {
		body, ct string
	}{
		{"", "text/plain"},                     // empty body
		{"{not json", "application/json"},      // malformed JSON
		{`{"source": ""}`, "application/json"}, // missing source
		{"kernel oops(", "text/plain"},         // parse error
	} {
		resp, cr := postCompile(t, ts.URL, c.body, c.ct)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d", c.body, resp.StatusCode)
		}
		if cr.Error == "" {
			t.Errorf("body %q: no error message", c.body)
		}
	}
}

func TestProbesAndPprof(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if got := get("/healthz").StatusCode; got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := get("/readyz").StatusCode; got != http.StatusOK {
		t.Errorf("readyz = %d", got)
	}
	s.SetReady(false)
	if got := get("/readyz").StatusCode; got != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", got)
	}
	if got := get("/healthz").StatusCode; got != http.StatusOK {
		t.Errorf("healthz while draining = %d", got)
	}
	if got := get("/debug/pprof/").StatusCode; got != http.StatusOK {
		t.Errorf("pprof index = %d", got)
	}
	if got := get("/debug/pprof/cmdline").StatusCode; got != http.StatusOK {
		t.Errorf("pprof cmdline = %d", got)
	}
}

// TestRequestIDInLogs ties the per-request ID to the stage-level log
// lines — the structured-logging acceptance point.
func TestRequestIDInLogs(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	logger := telemetry.NewLogger(lockedWriter{&mu, &buf}, slog.LevelDebug, true)
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if cr.RequestID == "" || resp.Header.Get("X-Request-Id") != cr.RequestID {
		t.Fatalf("request ID mismatch: body %q, header %q",
			cr.RequestID, resp.Header.Get("X-Request-Id"))
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	var stageLines, taggedLines int
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		if rec["msg"] == "stage complete" {
			stageLines++
			if rec["request_id"] == cr.RequestID {
				taggedLines++
			}
		}
	}
	if stageLines < 4 {
		t.Errorf("only %d stage log lines:\n%s", stageLines, logs)
	}
	if taggedLines != stageLines {
		t.Errorf("%d/%d stage lines carry the request ID", taggedLines, stageLines)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestErrorClassification(t *testing.T) {
	s := New(Config{Workers: 1})
	s.compileFn = func(ctx context.Context, _ string, _ diospyros.Options) (*diospyros.Result, error) {
		return nil, errors.New("boom")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(cr.Error, "boom") {
		t.Fatalf("status = %d, err = %q", resp.StatusCode, cr.Error)
	}
}
