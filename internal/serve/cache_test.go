package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/kernel"
	"diospyros/internal/telemetry"
)

func TestCacheKeyNormalization(t *testing.T) {
	base := compileCacheKey("kernel k(a[4]) -> (o[4]) {\n  o[0] = a[0];\n}", diospyros.Options{})
	for name, src := range map[string]string{
		"crlf":            "kernel k(a[4]) -> (o[4]) {\r\n  o[0] = a[0];\r\n}",
		"trailing spaces": "kernel k(a[4]) -> (o[4]) {  \n  o[0] = a[0];\t\n}",
		"trailing blanks": "kernel k(a[4]) -> (o[4]) {\n  o[0] = a[0];\n}\n\n\n",
	} {
		if got := compileCacheKey(src, diospyros.Options{}); got != base {
			t.Errorf("%s: key %s differs from base %s", name, got, base)
		}
	}
	if got := compileCacheKey("kernel k2(a[4]) -> (o[4]) {\n  o[0] = a[0];\n}", diospyros.Options{}); got == base {
		t.Error("different source produced the same key")
	}
	if got := compileCacheKey("kernel k(a[4]) -> (o[4]) {\n  o[0] = a[0];\n}",
		diospyros.Options{DisableVectorRules: true}); got == base {
		t.Error("output-affecting option did not change the key")
	}
	// The determinism contract (DESIGN.md §9): worker count cannot change
	// the output, so it must not fragment the cache.
	if got := compileCacheKey("kernel k(a[4]) -> (o[4]) {\n  o[0] = a[0];\n}",
		diospyros.Options{MatchWorkers: 8}); got != base {
		t.Error("MatchWorkers fragmented the cache key")
	}
}

func TestCanonicalOptionsOrderIndependent(t *testing.T) {
	a := canonicalOptions(diospyros.Options{OpCost: map[string]float64{"x": 1, "y": 2, "z": 3}})
	for i := 0; i < 10; i++ {
		if b := canonicalOptions(diospyros.Options{OpCost: map[string]float64{"z": 3, "x": 1, "y": 2}}); b != a {
			t.Fatalf("OpCost rendering depends on map order:\n%s\nvs\n%s", a, b)
		}
	}
}

// fakeResult builds a Result whose resultSize is dominated by n bytes of C.
func fakeResult(n int) *diospyros.Result {
	return &diospyros.Result{
		Kernel: &kernel.Lifted{Name: "stub"},
		C:      strings.Repeat("x", n),
		Trace:  &telemetry.Trace{},
	}
}

func TestCacheLRUEviction(t *testing.T) {
	res := fakeResult(1 << 10)
	budget := 3 * resultSize(res) // room for three entries
	c := newCompileCache(budget)
	store := func(key string) int {
		_, fl, state := c.acquire(key)
		if state != cacheLeader {
			t.Fatalf("acquire(%s) = %v, want leader", key, state)
		}
		return c.finish(key, fl, res)
	}
	for _, k := range []string{"a", "b", "c"} {
		if ev := store(k); ev != 0 {
			t.Fatalf("storing %s evicted %d entries under budget", k, ev)
		}
	}
	// Refresh "a" so "b" is now the least recently used.
	if _, _, state := c.acquire("a"); state != cacheHit {
		t.Fatal("a missing before eviction")
	}
	if ev := store("d"); ev != 1 {
		t.Fatalf("storing d evicted %d entries, want 1", ev)
	}
	if _, _, state := c.acquire("b"); state == cacheHit {
		t.Error("b survived eviction despite being LRU")
	}
	if _, _, state := c.acquire("a"); state != cacheHit {
		t.Error("recently used a was evicted")
	}
	if got := c.sizeBytes(); got > budget {
		t.Errorf("cache holds %d bytes, budget %d", got, budget)
	}
	// An entry larger than the whole budget is served but never stored.
	huge := fakeResult(int(budget))
	_, fl, _ := c.acquire("huge")
	c.finish("huge", fl, huge)
	if _, _, state := c.acquire("huge"); state == cacheHit {
		t.Error("over-budget entry was stored")
	}
}

// TestCacheHitOnRepeatCompile is the acceptance criterion end to end: the
// second identical POST /compile is served from the cache with the same
// artifacts, and the /metrics counters record one miss then one hit.
func TestCacheHitOnRepeatCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp1, cr1 := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first compile: %d (%s)", resp1.StatusCode, cr1.Error)
	}
	if got := resp1.Header.Get("X-Dios-Cache"); got != "miss" {
		t.Fatalf("first compile X-Dios-Cache = %q, want miss", got)
	}

	resp2, cr2 := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second compile: %d (%s)", resp2.StatusCode, cr2.Error)
	}
	if got := resp2.Header.Get("X-Dios-Cache"); got != "hit" {
		t.Fatalf("second compile X-Dios-Cache = %q, want hit", got)
	}
	if cr2.C != cr1.C || cr2.Assembly != cr1.Assembly || cr2.Cost != cr1.Cost {
		t.Error("cached response artifacts differ from the compiled ones")
	}
	if cr2.RequestID == cr1.RequestID || cr2.RequestID == "" {
		t.Errorf("request IDs not distinct: %q vs %q", cr1.RequestID, cr2.RequestID)
	}

	metrics := scrape(t, ts.URL)
	for _, want := range []string{
		"diospyros_serve_cache_hits_total 1",
		"diospyros_serve_cache_misses_total 1",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("missing %q in metrics:\n%s", want, metrics)
		}
	}

	// A representation-only change (CRLF) still hits.
	resp3, _ := postCompile(t, ts.URL, strings.ReplaceAll(dotprod, "\n", "\r\n"), "text/plain")
	if got := resp3.Header.Get("X-Dios-Cache"); got != "hit" {
		t.Errorf("CRLF re-encoding missed the cache: X-Dios-Cache = %q", got)
	}
}

// TestCacheCoalescesConcurrentCompiles is the singleflight race test (run
// under -race in CI): 8 concurrent identical requests plus 8 distinct ones
// produce exactly one compile per distinct key, with the identical group
// resolved as one miss and seven coalesced/hit responses.
func TestCacheCoalescesConcurrentCompiles(t *testing.T) {
	var (
		mu       sync.Mutex
		compiles = map[string]int{}
		release  = make(chan struct{})
		entered  atomic.Int64
	)
	s, ts := newTestServer(t, Config{Workers: 16, QueueDepth: 64})
	s.compileFn = func(ctx context.Context, src string, _ diospyros.Options) (*diospyros.Result, error) {
		mu.Lock()
		compiles[src]++
		mu.Unlock()
		entered.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeResult(64), nil
	}

	const identical = 8
	const distinct = 8
	headers := make([]string, identical+distinct)
	var wg sync.WaitGroup
	for i := 0; i < identical+distinct; i++ {
		i := i
		src := dotprod
		if i >= identical {
			src = fmt.Sprintf("%s\n// variant %d", dotprod, i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, cr := postCompile(t, ts.URL, src, "text/plain")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d (%s)", i, resp.StatusCode, cr.Error)
			}
			headers[i] = resp.Header.Get("X-Dios-Cache")
		}()
	}
	// Hold every leader inside compileFn until all 9 distinct keys have
	// entered — by then the 7 followers are either waiting on the identical
	// flight or will land on the stored entry afterwards.
	deadline := time.Now().Add(10 * time.Second)
	for entered.Load() < distinct+1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d compiles entered", entered.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(compiles) != distinct+1 {
		t.Fatalf("%d distinct compiles ran, want %d", len(compiles), distinct+1)
	}
	for src, n := range compiles {
		if n != 1 {
			t.Errorf("key compiled %d times, want exactly 1:\n%s", n, src)
		}
	}
	var miss, shared int
	for _, h := range headers[:identical] {
		switch h {
		case "miss":
			miss++
		case "coalesced", "hit":
			shared++
		default:
			t.Errorf("identical request header = %q", h)
		}
	}
	if miss != 1 || shared != identical-1 {
		t.Errorf("identical group: %d miss + %d shared, want 1 + %d (headers %v)",
			miss, shared, identical-1, headers[:identical])
	}
	for i, h := range headers[identical:] {
		if h != "miss" {
			t.Errorf("distinct request %d header = %q, want miss", i, h)
		}
	}
}

// TestCacheLeaderFailureReleasesFollowers: when the leader's compile
// fails, waiting followers fall back to compiling for themselves instead
// of inheriting the failure or deadlocking.
func TestCacheLeaderFailureReleasesFollowers(t *testing.T) {
	var calls atomic.Int64
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 2})
	s.compileFn = func(ctx context.Context, _ string, _ diospyros.Options) (*diospyros.Result, error) {
		if calls.Add(1) == 1 {
			entered <- struct{}{}
			time.Sleep(50 * time.Millisecond)
			return nil, fmt.Errorf("transient failure")
		}
		return fakeResult(64), nil
	}

	errc := make(chan int, 1)
	go func() {
		resp, _ := postCompile(t, ts.URL, dotprod, "text/plain")
		errc <- resp.StatusCode
	}()
	<-entered // leader is in flight and will fail
	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower fallback failed: %d (%s)", resp.StatusCode, cr.Error)
	}
	if got := <-errc; got != http.StatusBadRequest {
		t.Errorf("leader status = %d, want 400", got)
	}
	if calls.Load() != 2 {
		t.Errorf("%d compiles ran, want 2 (leader + fallback)", calls.Load())
	}
}

// TestStreamingBypassesCache: SSE compiles replay the live flight recorder
// and must never be served from (or stored into) the cache.
func TestStreamingBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, _ := postCompile(t, ts.URL, dotprod, "text/plain"); resp.Header.Get("X-Dios-Cache") != "miss" {
		t.Fatal("priming compile was not a miss")
	}

	req, _ := http.NewRequest("POST", ts.URL+"/compile", strings.NewReader(dotprod))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Dios-Cache"); got != "" {
		t.Errorf("streaming compile got X-Dios-Cache = %q, want none", got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("Content-Type = %q", ct)
	}
}
