package serve

import (
	"fmt"
	"strings"
	"time"

	"diospyros/internal/telemetry"
)

// Per-request phase breakdown: every POST /compile is decomposed into the
// four phases a serving SLO cares about —
//
//   - queue-wait: time between admission and a worker slot (0 when a slot
//     was free, and for cache hits, which never enter admission);
//   - cache-lookup: time resolving the content-addressed cache (acquire,
//     and for followers the coalesced wait rides under compile);
//   - compile: time producing the compiled artifact for THIS request —
//     the pipeline run on a miss/bypass, the lookup on a hit, the wait on
//     a coalesced follower;
//   - serialize: time marshalling the JSON response body.
//
// The breakdown is triple-exposed: as the X-Dios-Server-Timing response
// header (Server-Timing syntax, durations in milliseconds), as the
// diospyros_serve_phase_seconds{phase=...} histograms, and — compile only,
// split by how the cache resolved it — as
// diospyros_serve_compile_seconds{cache="hit"|"miss"|"coalesced"|"bypass"}.
// Queue wait additionally gets its own X-Dios-Queue-Wait-Ms header and
// diospyros_serve_queue_wait_seconds histogram, so shedding and admission
// behavior are explainable from outside the process. diosload reads the
// headers to build its per-phase soak breakdown.

// cacheBypass labels compiles that never consulted the cache (cache
// disabled, streaming, or non-cacheable options) in the
// diospyros_serve_compile_seconds histogram.
const cacheBypass = "bypass"

// requestPhases accumulates one request's phase durations as the handler
// moves through admission, cache, compile, and response marshalling.
type requestPhases struct {
	QueueWait   time.Duration
	CacheLookup time.Duration
	Compile     time.Duration
	Serialize   time.Duration
	// Outcome is how the cache resolved the request: "hit", "miss",
	// "coalesced", or cacheBypass.
	Outcome string
}

// timingHeader renders the X-Dios-Server-Timing value in Server-Timing
// syntax: `queue;dur=0.012, cache;dur=0.004, compile;dur=412.331,
// serialize;dur=0.187`, durations in milliseconds.
func (p *requestPhases) timingHeader() string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	parts := []string{
		fmt.Sprintf("queue;dur=%.3f", ms(p.QueueWait)),
		fmt.Sprintf("cache;dur=%.3f", ms(p.CacheLookup)),
		fmt.Sprintf("compile;dur=%.3f", ms(p.Compile)),
		fmt.Sprintf("serialize;dur=%.3f", ms(p.Serialize)),
	}
	return strings.Join(parts, ", ")
}

// queueWaitHeader renders the X-Dios-Queue-Wait-Ms value.
func (p *requestPhases) queueWaitHeader() string {
	return fmt.Sprintf("%.3f", float64(p.QueueWait)/float64(time.Millisecond))
}

// observe folds the finished request's phases into the live registry.
func (p *requestPhases) observe(reg *telemetry.Registry) {
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"queue_wait", p.QueueWait},
		{"cache_lookup", p.CacheLookup},
		{"compile", p.Compile},
		{"serialize", p.Serialize},
	} {
		reg.Observe("diospyros_serve_phase_seconds",
			"Per-request latency by phase (queue_wait, cache_lookup, compile, serialize).",
			map[string]string{"phase": ph.name}, nil, ph.d.Seconds())
	}
	reg.Observe("diospyros_serve_queue_wait_seconds",
		"Admission-queue wait per request.", nil, nil, p.QueueWait.Seconds())
	outcome := p.Outcome
	if outcome == "" {
		outcome = cacheBypass
	}
	reg.Observe("diospyros_serve_compile_seconds",
		"Time producing the compiled artifact per request, by cache outcome: "+
			"the pipeline run for miss/bypass, the lookup for a hit, the coalesced wait for a follower.",
		map[string]string{"cache": outcome}, nil, p.Compile.Seconds())
}
