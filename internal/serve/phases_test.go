package serve

import (
	"context"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// timingPattern matches the Server-Timing-style header value:
// queue;dur=0.012, cache;dur=0.004, compile;dur=412.331, serialize;dur=0.187
var timingPattern = regexp.MustCompile(
	`^queue;dur=\d+\.\d{3}, cache;dur=\d+\.\d{3}, compile;dur=\d+\.\d{3}, serialize;dur=\d+\.\d{3}$`)

// TestPhaseBreakdownOnCompile is the tentpole's serve-side acceptance
// check: a plain compile carries the full phase breakdown in its response
// headers, and the phase histograms land on /metrics.
func TestPhaseBreakdownOnCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: -1})

	resp, cr := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, cr.Error)
	}
	timing := resp.Header.Get("X-Dios-Server-Timing")
	if !timingPattern.MatchString(timing) {
		t.Fatalf("X-Dios-Server-Timing = %q, want queue/cache/compile/serialize durs", timing)
	}
	// The compile phase of a real (uncached) compile is the dominant span:
	// parse it back out and sanity-check it is non-zero.
	var compileMS float64
	for _, part := range strings.Split(timing, ", ") {
		if rest, ok := strings.CutPrefix(part, "compile;dur="); ok {
			compileMS, _ = strconv.ParseFloat(rest, 64)
		}
	}
	if compileMS <= 0 {
		t.Errorf("compile phase %.3f ms, want > 0 (header %q)", compileMS, timing)
	}
	if qw := resp.Header.Get("X-Dios-Queue-Wait-Ms"); qw == "" {
		t.Error("missing X-Dios-Queue-Wait-Ms header")
	} else if _, err := strconv.ParseFloat(qw, 64); err != nil {
		t.Errorf("X-Dios-Queue-Wait-Ms = %q: %v", qw, err)
	}

	metrics := scrape(t, ts.URL)
	for _, want := range []string{
		`diospyros_serve_phase_seconds_count{phase="queue_wait"} 1`,
		`diospyros_serve_phase_seconds_count{phase="cache_lookup"} 1`,
		`diospyros_serve_phase_seconds_count{phase="compile"} 1`,
		`diospyros_serve_phase_seconds_count{phase="serialize"} 1`,
		`diospyros_serve_queue_wait_seconds_count 1`,
		`diospyros_serve_compile_seconds_count{cache="bypass"} 1`,
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("missing %q in metrics:\n%s", want, metrics)
		}
	}
}

// TestPhaseCacheOutcomeLabels pins the satellite: the serve compile-latency
// histogram is split by cache outcome, so sub-millisecond cache hits stop
// masquerading as implausibly fast compiles.
func TestPhaseCacheOutcomeLabels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// First compile: a miss that runs the pipeline.
	resp1, _ := postCompile(t, ts.URL, dotprod, "text/plain")
	if got := resp1.Header.Get("X-Dios-Cache"); got != "miss" {
		t.Fatalf("first compile X-Dios-Cache = %q", got)
	}
	// Second compile: a hit whose "compile" phase is the cache lookup.
	resp2, _ := postCompile(t, ts.URL, dotprod, "text/plain")
	if got := resp2.Header.Get("X-Dios-Cache"); got != "hit" {
		t.Fatalf("second compile X-Dios-Cache = %q", got)
	}
	timing := resp2.Header.Get("X-Dios-Server-Timing")
	if !timingPattern.MatchString(timing) {
		t.Fatalf("cached response X-Dios-Server-Timing = %q", timing)
	}
	if qw := resp2.Header.Get("X-Dios-Queue-Wait-Ms"); qw != "0.000" {
		t.Errorf("cache hit X-Dios-Queue-Wait-Ms = %q, want 0.000 (hits skip admission)", qw)
	}

	metrics := scrape(t, ts.URL)
	for _, want := range []string{
		`diospyros_serve_compile_seconds_count{cache="miss"} 1`,
		`diospyros_serve_compile_seconds_count{cache="hit"} 1`,
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("missing %q in metrics:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, `diospyros_serve_compile_seconds_count{cache="bypass"}`) {
		t.Error("cache-mediated compiles must not count as bypass")
	}
}

// TestPhaseQueueWaitMeasuredWhenQueued parks a request in the admission
// queue behind a blocked worker and asserts the recorded queue wait is the
// real wait, not zero.
func TestPhaseQueueWaitMeasuredWhenQueued(t *testing.T) {
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 1, CacheBytes: -1})
	s.compileFn = blockingCompileFn(entered)

	// Occupy the only worker slot with a compile that blocks until its
	// request is cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/compile",
		strings.NewReader(dotprod))
	go func() { _, _ = http.DefaultClient.Do(req) }()
	<-entered

	// This request queues behind it (the cache is off, so the identical
	// source cannot coalesce onto the in-flight compile).
	done := make(chan *http.Response, 1)
	go func() {
		resp, _ := postCompile(t, ts.URL, dotprod, "text/plain")
		done <- resp
	}()

	// Let it genuinely wait, then free the worker; the stub's later calls
	// complete instantly, so all remaining latency is queue wait.
	time.Sleep(120 * time.Millisecond)
	cancel()

	resp := <-done
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request status = %d", resp.StatusCode)
	}
	qw, err := strconv.ParseFloat(resp.Header.Get("X-Dios-Queue-Wait-Ms"), 64)
	if err != nil {
		t.Fatalf("bad queue-wait header: %v", err)
	}
	if qw < 50 {
		t.Errorf("queued request reported %.3f ms queue wait, want >= 50ms", qw)
	}
}

// TestQueueWaitHeaderOnShed asserts the shed path carries the queue-wait
// header too: a 503 that can show its wait is explainable from outside.
func TestQueueWaitHeaderOnShed(t *testing.T) {
	entered := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, CacheBytes: -1})
	s.compileFn = blockingCompileFn(entered)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/compile",
		strings.NewReader(dotprod))
	go func() { _, _ = http.DefaultClient.Do(req) }()
	<-entered

	resp, _ := postCompile(t, ts.URL, dotprod, "text/plain")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if _, err := strconv.ParseFloat(resp.Header.Get("X-Dios-Queue-Wait-Ms"), 64); err != nil {
		t.Errorf("shed response X-Dios-Queue-Wait-Ms = %q: %v",
			resp.Header.Get("X-Dios-Queue-Wait-Ms"), err)
	}
	if !strings.Contains(scrape(t, ts.URL), "diospyros_serve_queue_wait_seconds_count 1\n") {
		t.Error("shed request missing from the queue-wait histogram")
	}
}

// TestBuildInfoGauge asserts the build-identity gauge is on /metrics from
// boot with its full label set.
func TestBuildInfoGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	metrics := scrape(t, ts.URL)
	if !strings.Contains(metrics, "diospyros_build_info{") {
		t.Fatalf("diospyros_build_info missing:\n%s", metrics)
	}
	line := ""
	for _, l := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(l, "diospyros_build_info{") {
			line = l
		}
	}
	for _, label := range []string{"version=", "revision=", "goversion=", "targets="} {
		if !strings.Contains(line, label) {
			t.Errorf("build info line %q missing %s label", line, label)
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build info gauge %q should read 1", line)
	}
}
