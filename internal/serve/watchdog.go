package serve

import (
	"context"
	"log/slog"
	"time"

	"diospyros/internal/egraph"
	"diospyros/internal/telemetry"
)

// startWatchdog launches the per-request saturation watchdog: a goroutine
// that samples the compile's live e-graph gauges (egraph.Progress) every
// WatchdogPoll and aborts the compile — by cancelling its context with a
// *telemetry.AbortError cause — when the node-count, heap-byte, or
// wall-clock budget is exceeded. The abort reason then surfaces in the
// response trace's StopReason ("aborted:<reason>") and in the
// diospyros_serve_saturation_aborts_total counter.
//
// While it runs, the watchdog keeps two live gauges fresh:
// diospyros_serve_watchdog_nodes (the sampled compile's node count) and
// diospyros_serve_egraph_bytes (its logical footprint), plus the
// diospyros_serve_heap_highwater_bytes high-water mark of the process's
// live heap. The per-compile gauges are reset to zero in the stop path so
// /metrics never reports a finished compile as live.
//
// The returned stop function halts the watchdog; it is idempotent and must
// be called once the compile returns. The sampler runs even with every
// budget disabled — the live gauges are observability in their own right —
// and budgets only add the abort check on top.
func (s *Server) startWatchdog(ctx context.Context, prog *egraph.Progress, cancel context.CancelCauseFunc, log *slog.Logger) (stop func()) {
	// Publish the live gauges immediately so even compiles faster than one
	// poll interval leave the families present on /metrics.
	s.setLiveGauges(0, 0)
	stopped := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.cfg.WatchdogPoll)
		defer ticker.Stop()
		for {
			select {
			case <-stopped:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			snap := prog.Snapshot()
			s.setLiveGauges(snap.Nodes, snap.Bytes)
			heap := telemetry.HeapInUse()
			s.reg.GaugeMax("diospyros_serve_heap_highwater_bytes",
				"High-water mark of the process's live heap (runtime/metrics).",
				nil, float64(heap))
			var reason string
			switch {
			case s.cfg.WatchdogNodes > 0 && snap.Nodes > s.cfg.WatchdogNodes:
				reason = "node-budget"
			case s.cfg.WatchdogHeap > 0 && int64(heap) > s.cfg.WatchdogHeap:
				reason = "heap-budget"
			case s.cfg.WatchdogWall > 0 && time.Since(start) > s.cfg.WatchdogWall:
				reason = "wall-budget"
			default:
				continue
			}
			log.Warn("saturation watchdog firing",
				"reason", reason, "iteration", snap.Iteration,
				"nodes", snap.Nodes, "classes", snap.Classes,
				"egraph_bytes", snap.Bytes, "heap_bytes", heap,
				"elapsed", time.Since(start))
			cancel(&telemetry.AbortError{Reason: reason})
			return
		}
	}()
	return func() {
		select {
		case <-stopped:
		default:
			close(stopped)
		}
		<-done
		// The compile is over: its node count and footprint are no longer
		// live, so zero the gauges instead of freezing the last sample.
		s.setLiveGauges(0, 0)
	}
}

// observeCompile folds one finished compile's trace into the live registry
// (latency histograms, e-graph high-water marks, stop reasons, the peak
// footprint histogram) and raises the serve heap high-water gauge with the
// compile's own heap-sampler peak, which sees between-poll spikes the
// watchdog ticker misses.
func (s *Server) observeCompile(trace *telemetry.Trace) {
	s.reg.ObserveTrace(trace)
	if trace != nil && trace.Memory != nil && trace.Memory.HeapPeakBytes > 0 {
		s.reg.GaugeMax("diospyros_serve_heap_highwater_bytes",
			"High-water mark of the process's live heap (runtime/metrics).",
			nil, float64(trace.Memory.HeapPeakBytes))
	}
}

// setLiveGauges publishes the running compile's sampled node count and
// logical e-graph bytes.
func (s *Server) setLiveGauges(nodes int, bytes int64) {
	s.reg.GaugeSet("diospyros_serve_watchdog_nodes",
		"E-graph nodes of the most recently sampled running compile (0 when idle).",
		nil, float64(nodes))
	s.reg.GaugeSet("diospyros_serve_egraph_bytes",
		"Logical e-graph footprint of the most recently sampled running compile (0 when idle).",
		nil, float64(bytes))
}
