package serve

import (
	"context"
	"log/slog"
	"time"

	"diospyros/internal/egraph"
	"diospyros/internal/telemetry"
)

// startWatchdog launches the per-request saturation watchdog: a goroutine
// that samples the compile's live e-graph gauges (egraph.Progress) every
// WatchdogPoll and aborts the compile — by cancelling its context with a
// *telemetry.AbortError cause — when the node-count or wall-clock budget
// is exceeded. The abort reason then surfaces in the response trace's
// StopReason ("aborted:<reason>") and in the
// diospyros_serve_saturation_aborts_total counter.
//
// The returned stop function halts the watchdog; it is idempotent and must
// be called once the compile returns. With both budgets disabled no
// goroutine starts.
func (s *Server) startWatchdog(ctx context.Context, prog *egraph.Progress, cancel context.CancelCauseFunc, log *slog.Logger) (stop func()) {
	if s.cfg.WatchdogNodes <= 0 && s.cfg.WatchdogWall <= 0 {
		return func() {}
	}
	stopped := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.cfg.WatchdogPoll)
		defer ticker.Stop()
		for {
			select {
			case <-stopped:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			snap := prog.Snapshot()
			s.reg.GaugeSet("diospyros_serve_watchdog_nodes",
				"E-graph nodes of the most recently sampled running compile.",
				nil, float64(snap.Nodes))
			var reason string
			switch {
			case s.cfg.WatchdogNodes > 0 && snap.Nodes > s.cfg.WatchdogNodes:
				reason = "node-budget"
			case s.cfg.WatchdogWall > 0 && time.Since(start) > s.cfg.WatchdogWall:
				reason = "wall-budget"
			default:
				continue
			}
			log.Warn("saturation watchdog firing",
				"reason", reason, "iteration", snap.Iteration,
				"nodes", snap.Nodes, "classes", snap.Classes,
				"elapsed", time.Since(start))
			cancel(&telemetry.AbortError{Reason: reason})
			return
		}
	}()
	return func() {
		select {
		case <-stopped:
		default:
			close(stopped)
		}
		<-done
	}
}
