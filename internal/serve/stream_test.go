package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	diospyros "diospyros"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Name string
	Data string
}

// readSSE consumes a text/event-stream body into parsed events, stopping
// after the terminal "result" event (or EOF).
func readSSE(t *testing.T, r *bufio.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.Name != "":
			events = append(events, cur)
			if cur.Name == "result" {
				return events
			}
			cur = sseEvent{}
		}
	}
}

func openStream(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/compile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamCompile is the SSE acceptance path: a compile opened with
// Accept: text/event-stream streams per-iteration rule attribution and
// ends with a result event carrying the compiled artifacts.
func TestStreamCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := openStream(t, ts.URL, dotprod)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := readSSE(t, bufio.NewReader(resp.Body))
	var iterations, rules int
	var result *sseEvent
	for i, ev := range events {
		switch ev.Name {
		case "iteration":
			iterations++
		case "rule":
			rules++
		case "result":
			result = &events[i]
		}
	}
	if iterations == 0 {
		t.Error("no iteration events streamed")
	}
	if rules == 0 {
		t.Error("no per-rule attribution events streamed")
	}
	if result == nil {
		t.Fatal("stream did not end with a result event")
	}

	var final streamResult
	if err := json.Unmarshal([]byte(result.Data), &final); err != nil {
		t.Fatalf("result event not JSON: %v", err)
	}
	if final.Status != http.StatusOK || final.Error != "" {
		t.Fatalf("result status=%d error=%q", final.Status, final.Error)
	}
	if final.C == "" || final.Kernel != "dot4" {
		t.Errorf("result missing artifacts: kernel=%q, %d bytes of C", final.Kernel, len(final.C))
	}
	if final.Trace == nil || final.Trace.Search == nil {
		t.Error("result trace missing the search flight record")
	} else if len(final.Trace.Search.Rules) == 0 {
		t.Error("search flight record has no rule attribution")
	}

	// A rule event must parse and carry attribution fields.
	for _, ev := range events {
		if ev.Name != "rule" {
			continue
		}
		var ruleEv struct {
			Iteration int    `json:"iteration"`
			Rule      string `json:"rule"`
			Matches   int    `json:"matches"`
		}
		if err := json.Unmarshal([]byte(ev.Data), &ruleEv); err != nil {
			t.Fatalf("rule event not JSON: %v", err)
		}
		if ruleEv.Iteration == 0 || ruleEv.Rule == "" || ruleEv.Matches == 0 {
			t.Errorf("rule event incomplete: %+v", ruleEv)
		}
		break
	}
}

// TestStreamCompileError: a failing compile still streams, ending with a
// result event that carries the error and the status the JSON path would
// have returned.
func TestStreamCompileError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := openStream(t, ts.URL, "kernel oops(")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (SSE commits to 200 before compiling)", resp.StatusCode)
	}
	events := readSSE(t, bufio.NewReader(resp.Body))
	if len(events) == 0 || events[len(events)-1].Name != "result" {
		t.Fatal("stream did not end with a result event")
	}
	var final streamResult
	if err := json.Unmarshal([]byte(events[len(events)-1].Data), &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != http.StatusBadRequest || final.Error == "" {
		t.Fatalf("want embedded 400 + error, got status=%d error=%q", final.Status, final.Error)
	}
}

// TestStreamClientDisconnect: dropping the SSE connection mid-compile
// cancels the compile and lands in the cancellation metrics under the
// "streaming" phase.
func TestStreamClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.compileFn = func(ctx context.Context, src string, opts diospyros.Options) (*diospyros.Result, error) {
		// Compile "runs" until the server propagates the client's
		// disconnect through the request context (10 s = test safety net).
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Second):
		}
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/compile", strings.NewReader(dotprod))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // hang up mid-stream
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrape(t, ts.URL)
		if strings.Contains(m, `diospyros_serve_cancelled_total{phase="streaming"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streaming cancellation not counted:\n%s", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamHeartbeat: with a fast heartbeat configured, keep-alive
// comments appear between events while a slow compile runs.
func TestStreamHeartbeat(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, StreamHeartbeat: 5 * time.Millisecond})
	s.compileFn = func(ctx context.Context, src string, opts diospyros.Options) (*diospyros.Result, error) {
		<-release
		return diospyros.CompileSourceContext(ctx, src, opts)
	}

	resp := openStream(t, ts.URL, dotprod)
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)

	sawHeartbeat := false
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, ": heartbeat") {
			sawHeartbeat = true
		}
		if strings.HasPrefix(line, "event: result") {
			break
		}
	}
	if !sawHeartbeat {
		t.Error("no heartbeat comment while the compile was stalled")
	}
}
