package serve

import (
	"net/http"
	"sync"
	"time"

	diospyros "diospyros"
	"diospyros/internal/telemetry"
)

// kernelName names a result for the trace ring; compiles that fail before
// lifting have no kernel.
func kernelName(res *diospyros.Result) string {
	if res == nil || res.Kernel == nil {
		return ""
	}
	return res.Kernel.Name
}

// Completed-compile trace retention: the server keeps the last
// Config.TraceLog request traces in a ring and exports them from
// GET /traces as one Chrome trace-event file. Each request becomes its own
// thread lane (request ID → tid) under a shared "diosserve" process, with
// timestamps offset to the request's start relative to server boot — so
// loading the file in Perfetto shows concurrent compiles side by side on a
// common timeline instead of interleaved into one lane.

// traceRing is a bounded, concurrency-safe ring of completed request
// traces. A nil ring (retention disabled) drops everything.
type traceRing struct {
	mu sync.Mutex
	// epoch is the common time base all retained traces are offset
	// against — the moment the server was built.
	epoch time.Time
	buf   []telemetry.NamedTrace
	next  int
	count int
}

func newTraceRing(size int) *traceRing {
	if size <= 0 {
		return nil
	}
	return &traceRing{epoch: time.Now(), buf: make([]telemetry.NamedTrace, size)}
}

// record retains one completed compile's trace. start is when the compile
// began; kernel may be empty for compiles that failed before parsing.
func (g *traceRing) record(id, kernel string, start time.Time, t *telemetry.Trace) {
	if g == nil || t == nil {
		return
	}
	nt := telemetry.NamedTrace{
		Name:      kernel,
		RequestID: id,
		Epoch:     start.Sub(g.epoch),
		Trace:     t,
	}
	g.mu.Lock()
	g.buf[g.next] = nt
	g.next = (g.next + 1) % len(g.buf)
	if g.count < len(g.buf) {
		g.count++
	}
	g.mu.Unlock()
}

// snapshot returns the retained traces, oldest first.
func (g *traceRing) snapshot() []telemetry.NamedTrace {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]telemetry.NamedTrace, 0, g.count)
	start := g.next - g.count
	for i := 0; i < g.count; i++ {
		out = append(out, g.buf[(start+i+len(g.buf))%len(g.buf)])
	}
	return out
}

// handleTraces serves GET /traces: the retained request traces as a Chrome
// trace-event JSON file, one thread lane per request.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "trace retention disabled", http.StatusNotFound)
		return
	}
	raw, err := telemetry.ChromeTraces(s.traces.snapshot())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="diosserve-trace.json"`)
	_, _ = w.Write(raw)
}
