package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	diospyros "diospyros"
	"diospyros/internal/egraph"
	"diospyros/internal/telemetry"
)

// Live compile streaming: a POST /compile with "Accept: text/event-stream"
// watches its own equality saturation as Server-Sent Events. The handler
// arms the search flight recorder (egraph.Journal), polls it while the
// compile runs, and relays every journal event — per-iteration per-rule
// attribution, Backoff bans, iteration summaries, the best-cost and memory
// trajectories — as an SSE event named by its kind ("rule", "ban", "unban",
// "iteration", "cost", "memory"). The stream ends with a "result" event carrying the
// same CompileResponse the plain JSON path returns, plus a "status" field
// holding the HTTP status the JSON path would have used (SSE commits to
// 200 before the compile finishes). Keep-alive comments flow every
// Config.StreamHeartbeat so idle proxies keep the connection open.
//
//	curl -N -H 'Accept: text/event-stream' --data-binary @kernel.dios \
//	     http://localhost:8080/compile

// streamPoll is the journal polling cadence. Saturation iterations on real
// kernels take milliseconds to seconds; 25 ms keeps the stream snappy
// without measurable polling load.
const streamPoll = 25 * time.Millisecond

// streamResult is the terminal SSE event: the plain endpoint's response
// plus the status code it would have carried.
type streamResult struct {
	*CompileResponse
	Status int `json:"status"`
}

// wantsStream reports whether the client asked for Server-Sent Events.
func wantsStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamCompile runs the compile with the journal armed and streams its
// events to w. Returns false (without writing anything) when w cannot
// stream, letting the caller fall back to the plain JSON path. The caller
// has already taken a worker slot and armed the watchdog; streamCompile
// only returns once the compile goroutine has finished, so the deferred
// slot release stays correct.
func (s *Server) streamCompile(w http.ResponseWriter, r *http.Request, cctx context.Context, id, src string, opts diospyros.Options) bool {
	fl, ok := w.(http.Flusher)
	if !ok {
		return false
	}
	log := telemetry.LoggerFrom(r.Context())

	jr := egraph.NewJournal(0)
	opts.Journal = jr

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	s.reg.CounterAdd("diospyros_serve_streams_total",
		"Compiles streamed over SSE.", nil, 1)
	log.Info("compile stream start", "bytes", len(src))

	type outcome struct {
		res *diospyros.Result
		err error
	}
	done := make(chan outcome, 1)
	started := time.Now()
	go func() {
		res, err := s.compileFn(cctx, src, opts)
		done <- outcome{res, err}
	}()

	var cursor uint64
	clientGone := false
	flush := func() {
		var evs []egraph.JournalEvent
		evs, cursor = jr.EventsSince(cursor)
		if clientGone || len(evs) == 0 {
			return
		}
		for _, ev := range evs {
			writeSSE(w, string(ev.Kind), ev)
		}
		fl.Flush()
	}

	poll := time.NewTicker(streamPoll)
	defer poll.Stop()
	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()

	for {
		select {
		case <-poll.C:
			flush()
		case <-heartbeat.C:
			if !clientGone {
				fmt.Fprint(w, ": heartbeat\n\n")
				fl.Flush()
			}
		case <-cctx.Done():
			if r.Context().Err() != nil && !clientGone {
				// The client hung up mid-stream — the SSE twin of the
				// plain path's 499. Keep draining until the compile
				// goroutine notices the cancellation, so the worker slot
				// is not released while the compile still runs.
				clientGone = true
				s.countCancelled("streaming")
				log.Info("compile stream client went away")
			}
		case out := <-done:
			flush()
			if out.res != nil {
				s.observeCompile(out.res.Trace)
				s.traces.record(id, kernelName(out.res), started, out.res.Trace)
			}
			if !clientGone && r.Context().Err() != nil {
				// The compile's return and the disconnect notification
				// race; a dead client is a streaming cancellation no
				// matter which select case saw it first.
				clientGone = true
				s.countCancelled("streaming")
				log.Info("compile stream client went away")
			}
			if clientGone {
				// Counted as a streaming cancellation; nobody is
				// listening for the result event.
				return true
			}
			var resp *CompileResponse
			status := http.StatusOK
			if out.err != nil {
				resp, status = s.classifyError(r, id, out.err, traceOf(out.res))
			} else {
				resp = s.successResponse(r, id, out.res)
			}
			writeSSE(w, "result", streamResult{CompileResponse: resp, Status: status})
			fl.Flush()
			return true
		}
	}
}

func traceOf(res *diospyros.Result) *telemetry.Trace {
	if res == nil {
		return nil
	}
	return res.Trace
}

// writeSSE emits one Server-Sent Event. JSON marshalling never embeds raw
// newlines, so a single data: line is always enough.
func writeSSE(w http.ResponseWriter, event string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
}
