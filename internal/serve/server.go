// Package serve is the long-running HTTP compile service on top of the
// staged pipeline: a bounded worker pool compiling kernels submitted to
// POST /compile, with live observability as a first-class concern —
//
//   - GET /metrics: a Prometheus scrape endpoint backed by a
//     telemetry.Registry aggregating counters, gauges, and latency
//     histograms across requests (in-flight compiles, queue depth,
//     per-stage latency, e-graph high-water marks, cancellations, and
//     saturation stop/abort reasons);
//   - structured per-request logs: every request gets an ID that threads
//     through the pipeline's context, so stage-level slog lines correlate
//     with the response;
//   - GET /traces: the last completed compiles as one Chrome trace-event
//     file, one thread lane per request (traces.go);
//   - GET /debug/pprof/...: live CPU/heap/goroutine profiles;
//   - GET /healthz and /readyz: liveness and readiness probes;
//   - a saturation watchdog per request (watchdog.go) sampling the running
//     e-graph's gauges and aborting compiles that blow a node or
//     wall-clock budget;
//   - a content-addressed compile cache (cache.go): repeat requests with
//     identical normalized source and output-affecting options are served
//     from a byte-budgeted LRU, concurrent identical requests coalesce
//     into one compile, and the X-Dios-Cache response header reports the
//     outcome (hit, miss, coalesced);
//   - a per-request phase breakdown (phases.go): queue-wait, cache-lookup,
//     compile, and serialize spans on every compile, exposed three ways —
//     the diospyros_serve_phase_seconds{phase} and
//     diospyros_serve_compile_seconds{cache} histograms, the
//     X-Dios-Server-Timing response header, and the X-Dios-Queue-Wait-Ms
//     header feeding the diosload soak harness.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	diospyros "diospyros"
	"diospyros/internal/buildinfo"
	"diospyros/internal/egraph"
	"diospyros/internal/telemetry"
)

// Config parameterizes a Server. The zero value serves with sane defaults:
// GOMAXPROCS workers, a 64-deep admission queue, a 120 s request deadline,
// and no watchdog budgets.
type Config struct {
	// Workers bounds concurrent compiles. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it the
	// server sheds load with 503. 0 means 64; negative means no queue
	// (immediate 503 when all workers are busy).
	QueueDepth int
	// RequestTimeout bounds one compile end to end. 0 means 120 s;
	// negative means no deadline.
	RequestTimeout time.Duration
	// WatchdogNodes aborts a compile whose e-graph exceeds this many
	// nodes. 0 disables the node budget.
	WatchdogNodes int
	// WatchdogWall aborts a compile running longer than this. 0 disables
	// the wall budget.
	WatchdogWall time.Duration
	// WatchdogHeap aborts a compile once the process's live heap
	// (runtime/metrics objects bytes) exceeds this many bytes — the budget
	// guarding the resource that actually OOMs a replica. 0 disables the
	// heap budget.
	WatchdogHeap int64
	// WatchdogPoll is the watchdog sampling interval. 0 means 10 ms.
	WatchdogPoll time.Duration
	// StreamHeartbeat is the SSE keep-alive comment interval for streaming
	// compiles (stream.go). 0 means 15 s.
	StreamHeartbeat time.Duration
	// TraceLog bounds how many completed request traces the server retains
	// for GET /traces (traces.go). 0 means 64; negative disables retention.
	TraceLog int
	// CacheBytes budgets the content-addressed compile cache (cache.go):
	// repeat POST /compile requests with identical normalized source and
	// output-affecting options are served from memory, and concurrent
	// identical requests are coalesced into one compile. 0 means 64 MiB;
	// negative disables the cache.
	CacheBytes int64
	// Options is the base compile configuration; per-request fields
	// (timeout, ablations, validation) may override it.
	Options diospyros.Options
	// Logger receives structured request and stage logs. nil means no
	// logging.
	Logger *slog.Logger
	// Registry receives live metrics. nil means New creates one.
	Registry *telemetry.Registry
}

// Server is the compile service. Create with New, expose via Handler.
type Server struct {
	cfg    Config
	log    *slog.Logger
	reg    *telemetry.Registry
	slots  chan struct{}
	traces *traceRing
	cache  *compileCache // nil when Config.CacheBytes < 0

	queued   atomic.Int64
	inFlight atomic.Int64
	seq      atomic.Uint64
	ready    atomic.Bool

	// compileFn is the compile entry point, injectable in tests.
	compileFn func(ctx context.Context, src string, opts diospyros.Options) (*diospyros.Result, error)
}

// New builds a Server from cfg, applying defaults. The server starts
// ready; SetReady(false) drains it from load balancers before shutdown.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	switch {
	case cfg.RequestTimeout == 0:
		cfg.RequestTimeout = 120 * time.Second
	case cfg.RequestTimeout < 0:
		cfg.RequestTimeout = 0
	}
	if cfg.WatchdogPoll <= 0 {
		cfg.WatchdogPoll = 10 * time.Millisecond
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 15 * time.Second
	}
	if cfg.TraceLog == 0 {
		cfg.TraceLog = 64
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NewLogger(io.Discard, slog.LevelError, false)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// A long-running compile service wants its own runtime on the scrape:
	// goroutines, heap in use, and GC pauses alongside the compile metrics.
	reg.EnableRuntimeMetrics()
	s := &Server{
		cfg:       cfg,
		log:       log,
		reg:       reg,
		slots:     make(chan struct{}, cfg.Workers),
		traces:    newTraceRing(cfg.TraceLog),
		compileFn: diospyros.CompileSourceContext,
	}
	if cfg.CacheBytes > 0 {
		s.cache = newCompileCache(cfg.CacheBytes)
	}
	s.ready.Store(true)
	s.reg.GaugeSet("diospyros_serve_workers", "Configured worker slots.", nil, float64(cfg.Workers))
	// The build-info gauge ties every scrape (and thus every soak result)
	// to the exact build serving it.
	s.reg.GaugeSet("diospyros_build_info",
		"Build identity of this server; always 1, the labels carry the information.",
		buildinfo.MetricLabels(), 1)
	return s
}

// Registry returns the server's live metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// SetReady flips the /readyz probe — false drains traffic before shutdown.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler returns the service's HTTP handler: /compile, /metrics,
// /healthz, /readyz, and /debug/pprof, all wrapped in request logging and
// request-rate metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.Handle("GET /metrics", s.reg)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		_, _ = io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// statusWriter captures the response code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the SSE stream (stream.go) still
// sees a flushable connection through the instrumentation layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the mux with per-request structured logging and the
// request-rate metrics every endpoint shares.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%08x", s.seq.Add(1))
		ctx := telemetry.WithRequestID(telemetry.WithLogger(r.Context(), s.log), id)
		w.Header().Set("X-Request-Id", id)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		labels := map[string]string{"path": r.URL.Path, "code": strconv.Itoa(sw.code)}
		s.reg.CounterAdd("diospyros_serve_requests_total",
			"HTTP requests by path and status code.", labels, 1)
		s.reg.Observe("diospyros_serve_request_duration_seconds",
			"HTTP request latency by path.",
			map[string]string{"path": r.URL.Path}, nil, elapsed.Seconds())

		log := telemetry.LoggerFrom(ctx)
		level := slog.LevelDebug // probe/scrape endpoints are noise at info
		if r.URL.Path == "/compile" {
			level = slog.LevelInfo
		}
		log.Log(ctx, level, "request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.code, "duration", elapsed)
	})
}

// CompileRequest is the JSON body of POST /compile (Content-Type
// application/json). Any other content type is treated as raw kernel
// source in the imperative kernel language.
type CompileRequest struct {
	// Source is the kernel in the imperative text language.
	Source string `json:"source"`
	// TimeoutMS overrides the saturation timeout, in milliseconds.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoVector disables vector rewrite rules (the scalar ablation).
	NoVector bool `json:"no_vector,omitempty"`
	// Validate runs translation validation on the result.
	Validate bool `json:"validate,omitempty"`
	// Explain attaches the rewrite-provenance report to the trace.
	Explain bool `json:"explain,omitempty"`
	// Targets names the machine targets to compile for ("fg3lite-4",
	// "fg3lite-8", "scalar", ...). One saturation search serves every
	// target; the first is the primary that fills the top-level C/Assembly
	// fields, and per-target artifacts land in the response's "targets"
	// list. Empty means the server's default target.
	Targets []string `json:"targets,omitempty"`
}

// TargetProgram is one target's artifacts in a multi-target compile reply.
type TargetProgram struct {
	Target    string  `json:"target"`
	Width     int     `json:"width"`
	Cost      float64 `json:"cost"`
	Cycles    int64   `json:"cycles,omitempty"`
	Validated bool    `json:"validated,omitempty"`
	C         string  `json:"c,omitempty"`
	Assembly  string  `json:"assembly,omitempty"`
}

// CompileResponse is the JSON reply of POST /compile. Trace is present
// whenever the pipeline ran at all — including failed, timed-out, and
// watchdog-aborted compiles — so clients always see where time went.
type CompileResponse struct {
	RequestID string           `json:"request_id"`
	Kernel    string           `json:"kernel,omitempty"`
	C         string           `json:"c,omitempty"`
	Assembly  string           `json:"assembly,omitempty"`
	Cost      float64          `json:"cost,omitempty"`
	Validated bool             `json:"validated,omitempty"`
	Trace     *telemetry.Trace `json:"trace,omitempty"`
	Error     string           `json:"error,omitempty"`
	// Aborted names the watchdog budget that killed the compile
	// ("node-budget", "heap-budget", "wall-budget"); empty otherwise.
	Aborted string `json:"aborted,omitempty"`
	// Targets carries per-target artifacts when the request asked for more
	// than one machine target.
	Targets []TargetProgram `json:"targets,omitempty"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	log := telemetry.LoggerFrom(ctx)
	id := telemetry.RequestID(ctx)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, id, "request body too large")
		return
	}
	src, opts, err := s.parseRequest(r, body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, id, err.Error())
		return
	}
	ph := &requestPhases{}

	// Content-addressed compile cache (cache.go): a hit or a coalesced
	// result answers before admission, without taking a worker slot. A miss
	// makes this request the flight's leader; the deferred finish publishes
	// its result — or, on failure, releases the followers to compile for
	// themselves.
	var (
		flight    *cacheFlight
		flightKey string
		flightRes *diospyros.Result
	)
	if s.cache != nil && !wantsStream(r) && cacheableRequest(opts) {
		flightKey = compileCacheKey(src, opts)
		lookupStart := time.Now()
		res, fl, state := s.cache.acquire(flightKey)
		ph.CacheLookup = time.Since(lookupStart)
		switch state {
		case cacheHit:
			// A hit's "compile" latency is the lookup itself — what the
			// cache-outcome histogram label makes visible.
			ph.Compile = ph.CacheLookup
			s.serveCached(w, r, id, res, "hit", ph)
			return
		case cacheFollower:
			waitStart := time.Now()
			res := fl.wait(ctx)
			ph.Compile = time.Since(waitStart)
			if res != nil {
				s.serveCached(w, r, id, res, "coalesced", ph)
				return
			}
			if ctx.Err() != nil {
				s.countCancelled("coalesced")
				s.writeError(w, httpStatusClientClosedRequest, id, "client went away while awaiting a coalesced compile")
				return
			}
			// The leader failed; fall through and compile independently.
			ph.Compile = 0
		case cacheLeader:
			flight = fl
			defer func() {
				evicted := s.cache.finish(flightKey, flight, flightRes)
				if evicted > 0 {
					s.cacheCount("evictions", float64(evicted))
				}
				s.reg.GaugeSet("diospyros_serve_cache_bytes",
					"Estimated bytes held by the compile cache.", nil,
					float64(s.cache.sizeBytes()))
			}()
		}
		ph.Outcome = "miss"
		w.Header().Set("X-Dios-Cache", "miss")
		s.cacheCount("misses", 1)
	}

	// Admission: take a free worker slot if one is available, otherwise
	// queue up to QueueDepth waiters and shed the rest with 503, watching
	// for the client to give up while queued. The wait is recorded on
	// every outcome — including sheds, so a client holding a 503 can see
	// the queue was genuinely full rather than slow.
	admission := time.Now()
	select {
	case s.slots <- struct{}{}:
		ph.QueueWait = time.Since(admission)
	default:
		if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			ph.QueueWait = time.Since(admission)
			s.reg.CounterAdd("diospyros_serve_rejected_total",
				"Requests shed by admission control.",
				map[string]string{"reason": "queue_full"}, 1)
			s.reg.Observe("diospyros_serve_queue_wait_seconds",
				"Admission-queue wait per request.", nil, nil, ph.QueueWait.Seconds())
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Dios-Queue-Wait-Ms", ph.queueWaitHeader())
			s.writeError(w, http.StatusServiceUnavailable, id, "compile queue full")
			return
		}
		s.setQueueGauge()
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
			s.setQueueGauge()
			ph.QueueWait = time.Since(admission)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.setQueueGauge()
			ph.QueueWait = time.Since(admission)
			s.reg.Observe("diospyros_serve_queue_wait_seconds",
				"Admission-queue wait per request.", nil, nil, ph.QueueWait.Seconds())
			s.countCancelled("queued")
			s.writeError(w, httpStatusClientClosedRequest, id, "client went away while queued")
			return
		}
	}
	defer func() { <-s.slots }() // release the worker slot on every path
	// The wait is known before any response bytes flow, so even the SSE
	// path (which commits its headers before compiling) can carry it.
	w.Header().Set("X-Dios-Queue-Wait-Ms", ph.queueWaitHeader())

	s.reg.GaugeAdd("diospyros_serve_compiles_in_flight",
		"Compiles currently executing.", nil, 1)
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		s.reg.GaugeAdd("diospyros_serve_compiles_in_flight",
			"Compiles currently executing.", nil, -1)
	}()

	// Per-request compile context: deadline, cancellation cause for the
	// watchdog, and the live e-graph gauge feed it samples.
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	if s.cfg.RequestTimeout > 0 {
		var cancelT context.CancelFunc
		cctx, cancelT = context.WithTimeout(cctx, s.cfg.RequestTimeout)
		defer cancelT()
	}
	prog := &egraph.Progress{}
	opts.Progress = prog
	stopWatch := s.startWatchdog(cctx, prog, cancel, log)
	defer stopWatch()

	if wantsStream(r) && s.streamCompile(w, r, cctx, id, src, opts) {
		// SSE commits its headers before the compile runs, so the stream
		// carries the queue wait (set above) but no full phase header; the
		// queue-wait histogram still sees the request.
		s.reg.Observe("diospyros_serve_queue_wait_seconds",
			"Admission-queue wait per request.", nil, nil, ph.QueueWait.Seconds())
		return
	}

	log.Info("compile start", "bytes", len(src))
	started := time.Now()
	res, err := s.compileFn(cctx, src, opts)
	ph.Compile = time.Since(started)
	stopWatch()

	var trace *telemetry.Trace
	if res != nil {
		trace = res.Trace
		s.observeCompile(trace)
		s.traces.record(id, kernelName(res), started, trace)
	}
	if err != nil {
		resp, code := s.classifyError(r, id, err, trace)
		s.writePhased(w, code, resp, ph)
		return
	}
	flightRes = res // publish to the cache and any coalesced followers
	resp := s.successResponse(r, id, res)
	s.writePhased(w, http.StatusOK, resp, ph)
}

// serveCached answers a compile request from a cached Result, marking the
// response with how the cache resolved it ("hit" or "coalesced"). Cached
// responses skip trace aggregation — the pipeline did not run — but still
// carry the phase breakdown, whose compile phase is the lookup (hit) or
// the coalesced wait (follower).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, id string, res *diospyros.Result, how string, ph *requestPhases) {
	ph.Outcome = how
	w.Header().Set("X-Dios-Cache", how)
	w.Header().Set("X-Dios-Queue-Wait-Ms", ph.queueWaitHeader())
	if how == "hit" {
		s.cacheCount("hits", 1)
	} else {
		s.cacheCount("coalesced", 1)
	}
	telemetry.LoggerFrom(r.Context()).Info("compile served from cache",
		"kernel", res.Kernel.Name, "cache", how)
	s.writePhased(w, http.StatusOK, s.successResponse(r, id, res), ph)
}

// writePhased is writeJSON with the per-request phase breakdown attached:
// it marshals the response (timing the serialize phase), stamps the
// X-Dios-Server-Timing header, folds the phases into the live histograms,
// and writes the body. Every compile response that got far enough to have
// phases funnels through here.
func (s *Server) writePhased(w http.ResponseWriter, code int, v any, ph *requestPhases) {
	serStart := time.Now()
	body, err := json.MarshalIndent(v, "", "  ")
	ph.Serialize = time.Since(serStart)
	if err != nil { // a Trace that cannot marshal; vanishingly unlikely
		s.writeError(w, http.StatusInternalServerError, "", "response marshalling failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dios-Server-Timing", ph.timingHeader())
	ph.observe(s.reg)
	w.WriteHeader(code)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

// cacheCount bumps one of the diospyros_serve_cache_*_total counters.
func (s *Server) cacheCount(kind string, n float64) {
	help := map[string]string{
		"hits":      "Compiles served from the content-addressed cache.",
		"misses":    "Compiles that had to run because no cache entry matched.",
		"coalesced": "Compiles served by waiting on an identical in-flight request.",
		"evictions": "Cache entries evicted to respect the byte budget.",
	}[kind]
	s.reg.CounterAdd("diospyros_serve_cache_"+kind+"_total", help, nil, n)
}

// successResponse assembles the reply for a completed compile and logs it.
func (s *Server) successResponse(r *http.Request, id string, res *diospyros.Result) *CompileResponse {
	resp := &CompileResponse{
		RequestID: id,
		Kernel:    res.Kernel.Name,
		C:         res.C,
		Cost:      res.Cost,
		Validated: res.Validated,
		Trace:     res.Trace,
	}
	if res.Program != nil {
		resp.Assembly = res.Program.Disassemble()
	}
	if len(res.Targets) > 1 {
		for _, tr := range res.Targets {
			tp := TargetProgram{
				Target:    tr.Target,
				Width:     tr.Width,
				Cost:      tr.Cost,
				Cycles:    tr.Cycles,
				Validated: tr.Validated,
				C:         tr.C,
			}
			if tr.Program != nil {
				tp.Assembly = tr.Program.Disassemble()
			}
			resp.Targets = append(resp.Targets, tp)
		}
	}
	telemetry.LoggerFrom(r.Context()).Info("compile done",
		"kernel", resp.Kernel, "cost", res.Cost,
		"nodes", res.Saturation.Nodes, "stop", string(res.Saturation.Reason))
	return resp
}

// httpStatusClientClosedRequest is nginx's 499: the client disconnected
// before the response. There is no standard constant.
const httpStatusClientClosedRequest = 499

// classifyError maps a compile error to a response and status code,
// bumping the matching counters: watchdog aborts (422), server deadline
// (504), client cancellation (499), and plain compile failures (400). The
// partial trace still ships. The SSE path reuses the same classification,
// carrying the code in the final stream event instead of the HTTP status.
func (s *Server) classifyError(r *http.Request, id string, err error, trace *telemetry.Trace) (*CompileResponse, int) {
	log := telemetry.LoggerFrom(r.Context())
	resp := &CompileResponse{RequestID: id, Error: err.Error(), Trace: trace}

	var abort *telemetry.AbortError
	switch {
	case errors.As(err, &abort):
		resp.Aborted = abort.Reason
		s.reg.CounterAdd("diospyros_serve_saturation_aborts_total",
			"Compiles aborted by the saturation watchdog, by budget.",
			map[string]string{"reason": abort.Reason}, 1)
		log.Warn("compile aborted by watchdog", "reason", abort.Reason)
		return resp, http.StatusUnprocessableEntity
	case r.Context().Err() != nil:
		s.countCancelled("compiling")
		log.Info("compile cancelled by client")
		return resp, httpStatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.CounterAdd("diospyros_serve_timeouts_total",
			"Compiles that hit the server's request deadline.", nil, 1)
		log.Warn("compile hit request deadline", "err", err)
		return resp, http.StatusGatewayTimeout
	default:
		log.Warn("compile failed", "err", err)
		return resp, http.StatusBadRequest
	}
}

func (s *Server) setQueueGauge() {
	s.reg.GaugeSet("diospyros_serve_queue_depth",
		"Requests waiting for a worker slot.", nil, float64(s.queued.Load()))
}

func (s *Server) countCancelled(phase string) {
	s.reg.CounterAdd("diospyros_serve_cancelled_total",
		"Requests cancelled by the client, by phase.",
		map[string]string{"phase": phase}, 1)
}

// parseRequest extracts kernel source and per-request option overrides:
// JSON (CompileRequest) when the Content-Type says so, raw kernel source
// otherwise.
func (s *Server) parseRequest(r *http.Request, body []byte) (string, diospyros.Options, error) {
	opts := s.cfg.Options
	if ct := r.Header.Get("Content-Type"); ct == "application/json" {
		var req CompileRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", opts, fmt.Errorf("bad JSON request: %w", err)
		}
		if req.Source == "" {
			return "", opts, errors.New("missing \"source\" field")
		}
		if req.TimeoutMS > 0 {
			opts.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		opts.DisableVectorRules = opts.DisableVectorRules || req.NoVector
		opts.Validate = opts.Validate || req.Validate
		opts.Explain = opts.Explain || req.Explain
		if len(req.Targets) > 0 {
			opts.Targets = req.Targets
		}
		return req.Source, opts, nil
	}
	if len(body) == 0 {
		return "", opts, errors.New("empty request body")
	}
	return string(body), opts, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, id, msg string) {
	s.writeJSON(w, code, &CompileResponse{RequestID: id, Error: msg})
}
