package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/kernel"
	"diospyros/internal/telemetry"
)

// slowCompileFn returns a stub compile that takes d per call (respecting
// cancellation) — fast enough to sustain load in a test, slow enough that a
// small worker pool saturates under concurrent traffic.
func slowCompileFn(d time.Duration) func(context.Context, string, diospyros.Options) (*diospyros.Result, error) {
	return func(ctx context.Context, _ string, _ diospyros.Options) (*diospyros.Result, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &diospyros.Result{
			Kernel: &kernel.Lifted{Name: "stub"},
			Trace:  &telemetry.Trace{},
		}, nil
	}
}

// TestSustainedOverloadShedsBounded drives far more concurrent traffic than
// the worker pool and admission queue can hold, for long enough that the
// queue churns many times over. Every request must resolve as either a
// success or a 503-with-Retry-After — no hangs, no other statuses — with
// real shedding observed, and the server must return to a quiescent
// goroutine count once the storm drains (the leak check that -race runs
// make meaningful).
func TestSustainedOverloadShedsBounded(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2, CacheBytes: -1})
	s.compileFn = slowCompileFn(5 * time.Millisecond)

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
	const (
		clients = 16
		perGoro = 25 // 16×25 = 400 requests through a 2+2 capacity server
	)
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				// Distinct sources via a comment so nothing coalesces even
				// if a future change re-enables the cache here.
				body := fmt.Sprintf("%s\n// storm %d-%d", dotprod, c, i)
				resp, err := client.Post(ts.URL+"/compile", "text/plain", strings.NewReader(body))
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
					}
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d under overload", resp.StatusCode)
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	total := ok.Load() + shed.Load() + other.Load()
	if total != clients*perGoro {
		t.Fatalf("accounted for %d of %d requests", total, clients*perGoro)
	}
	if ok.Load() == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed.Load() == 0 {
		t.Error("no request was shed — the storm never overloaded the server")
	}
	if other.Load() != 0 {
		t.Errorf("%d requests failed outside the success/shed contract", other.Load())
	}

	// The shed accounting on /metrics must match what clients saw.
	metrics := scrape(t, ts.URL)
	want := fmt.Sprintf(`diospyros_serve_rejected_total{reason="queue_full"} %d`, shed.Load())
	if !strings.Contains(metrics, want+"\n") {
		t.Errorf("rejected counter disagrees with observed sheds (%d):\n%s",
			shed.Load(), metrics)
	}

	// Drain: after the storm, in-flight work finishes and per-request
	// goroutines exit. Idle HTTP keep-alives are ours to close.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.inFlight.Load() == 0 && s.queued.Load() == 0 &&
			runtime.NumGoroutine() <= baseline+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		runtime.GC() // nudge finalizer-held conns
		time.Sleep(50 * time.Millisecond)
	}
}

// TestGracefulShutdownCompletesInFlight mirrors the diosserve drain path:
// SetReady(false) flips /readyz to 503 while an in-flight compile keeps
// running, and http.Server.Shutdown returns only after that compile's
// response has been delivered intact.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, CacheBytes: -1})
	s.compileFn = func(ctx context.Context, _ string, _ diospyros.Options) (*diospyros.Result, error) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &diospyros.Result{
			Kernel: &kernel.Lifted{Name: "stub"},
			Trace:  &telemetry.Trace{},
		}, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// An in-flight compile that outlives the shutdown call.
	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(url+"/compile", "text/plain", strings.NewReader(dotprod))
		if err != nil {
			t.Errorf("in-flight compile failed across shutdown: %v", err)
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	<-entered

	// Drain exactly as cmd/diosserve does: readiness off, then Shutdown.
	s.SetReady(false)
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- httpSrv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight compile, and new connections
	// must be refused while it does.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) with a compile still in flight", err)
	case <-time.After(200 * time.Millisecond):
	}
	if _, err := http.Post(url+"/compile", "text/plain", strings.NewReader(dotprod)); err == nil {
		t.Error("new request accepted during shutdown")
	}

	close(release)
	r := <-inflight
	if r == nil {
		t.Fatal("in-flight response lost")
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("in-flight compile finished with %d across shutdown", r.StatusCode)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown did not complete cleanly after drain: %v", err)
	}
}
