package diff

import (
	"encoding/json"
	"fmt"

	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// Artifact is one parsed compile artifact: either a single compile trace
// (`diospyros -json` / -trace output) or a per-kernel bench array
// (`diosbench -bench-json` / -json output), normalized to one Input per
// kernel.
type Artifact struct {
	// Label names the artifact in diffs and error messages (usually the
	// file name).
	Label string
	// Inputs holds one entry per kernel, in artifact order. A bare trace
	// artifact has exactly one entry with an empty Kernel.
	Inputs []Input
}

// Find returns the Input for the given kernel ID. An empty ID matches a
// single-entry artifact, the bare-trace case.
func (a *Artifact) Find(kernel string) (Input, bool) {
	if kernel == "" && len(a.Inputs) == 1 {
		return a.Inputs[0], true
	}
	for _, in := range a.Inputs {
		if in.Kernel == kernel {
			return in, true
		}
	}
	return Input{}, false
}

// Kernels lists the kernel IDs present in the artifact, in order.
func (a *Artifact) Kernels() []string {
	out := make([]string, 0, len(a.Inputs))
	for _, in := range a.Inputs {
		out = append(out, in.Kernel)
	}
	return out
}

// artifactRow is the common shape of one kernel's row in the bench array
// formats: diosbench -bench-json rows carry id/cycles/profile/
// peak_egraph_bytes, and the richer -json Table 1 rows add the full trace.
type artifactRow struct {
	ID              string           `json:"id"`
	Cycles          int64            `json:"cycles"`
	Profile         *sim.Profile     `json:"profile"`
	PeakEGraphBytes int64            `json:"peak_egraph_bytes"`
	Trace           *telemetry.Trace `json:"trace"`
}

// LoadArtifact parses a compile artifact from its raw bytes. It accepts a
// single trace object or a bench row array, and rejects artifacts whose
// embedded traces are missing the diospyros/trace/v1 schema stamp (or
// carry a different one) with an error naming the expected schema — a
// stale artifact diffing cleanly would be worse than no diff.
func LoadArtifact(label string, data []byte) (*Artifact, error) {
	first, ok := firstJSONByte(data)
	if !ok {
		return nil, fmt.Errorf("%s: empty artifact", label)
	}
	a := &Artifact{Label: label}
	switch first {
	case '[':
		var rows []artifactRow
		if err := json.Unmarshal(data, &rows); err != nil {
			return nil, fmt.Errorf("%s: parsing bench rows: %w", label, err)
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("%s: artifact holds no kernel rows", label)
		}
		for _, r := range rows {
			if r.ID == "" {
				return nil, fmt.Errorf("%s: row without a kernel id — not a diosbench artifact", label)
			}
			if err := checkTraceSchema(label, r.ID, r.Trace); err != nil {
				return nil, err
			}
			a.Inputs = append(a.Inputs, Input{
				Label:     label,
				Kernel:    r.ID,
				Trace:     r.Trace,
				Profile:   r.Profile,
				Cycles:    r.Cycles,
				PeakBytes: r.PeakEGraphBytes,
			})
		}
	case '{':
		var tr telemetry.Trace
		if err := json.Unmarshal(data, &tr); err != nil {
			return nil, fmt.Errorf("%s: parsing compile trace: %w", label, err)
		}
		if err := checkTraceSchema(label, "", &tr); err != nil {
			return nil, err
		}
		a.Inputs = append(a.Inputs, Input{Label: label, Trace: &tr})
	default:
		return nil, fmt.Errorf("%s: unrecognized artifact (expected a trace object or a bench row array)", label)
	}
	return a, nil
}

// checkTraceSchema enforces the trace schema stamp on any embedded trace.
func checkTraceSchema(label, kernel string, tr *telemetry.Trace) error {
	if tr == nil {
		return nil
	}
	where := label
	if kernel != "" {
		where = fmt.Sprintf("%s (kernel %s)", label, kernel)
	}
	switch tr.Schema {
	case telemetry.TraceSchema:
		return nil
	case "":
		return fmt.Errorf("%s: trace carries no schema stamp — stale artifact; regenerate it with a build that writes %q",
			where, telemetry.TraceSchema)
	default:
		return fmt.Errorf("%s: trace schema %q, want %q — regenerate the artifact with a matching build",
			where, tr.Schema, telemetry.TraceSchema)
	}
}

// firstJSONByte returns the first non-whitespace byte of the payload.
func firstJSONByte(data []byte) (byte, bool) {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b, true
	}
	return 0, false
}
