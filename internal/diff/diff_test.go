package diff

import (
	"strings"
	"testing"
	"time"

	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// synthTrace builds a fully populated compile trace. Each call returns fresh
// structures, so tests can mutate one side without aliasing the other.
func synthTrace() *telemetry.Trace {
	return &telemetry.Trace{
		Schema: telemetry.TraceSchema,
		Stages: []telemetry.Span{
			{Name: "lift", Duration: 10 * time.Microsecond},
			{Name: "saturate", Duration: 900 * time.Microsecond},
			{Name: "extract", Duration: 100 * time.Microsecond},
		},
		Iterations: []telemetry.IterationGauge{
			{Iteration: 1, Nodes: 10, Classes: 8, Matches: 4, Applied: 3,
				PerRuleMatches: map[string]int{"vec-mac": 2, "add-zero": 2},
				PerRuleApplied: map[string]int{"vec-mac": 2, "add-zero": 1}},
			{Iteration: 2, Nodes: 14, Classes: 9, Matches: 2, Applied: 1,
				PerRuleMatches: map[string]int{"vec-mac": 2},
				PerRuleApplied: map[string]int{"vec-mac": 1}},
		},
		StopReason: "saturated",
		Search: &telemetry.SearchTrace{
			Rules: []telemetry.RuleAttribution{
				{Rule: "vec-mac", Matches: 4, Applied: 3, NewNodes: 5, Duration: time.Microsecond},
				{Rule: "add-zero", Matches: 2, Applied: 1, NewNodes: 0},
			},
			Bans:     []telemetry.BanSpan{{Rule: "vec-mac", Iteration: 2, Until: 4, Matches: 4, Bans: 1}},
			BestCost: []telemetry.CostPoint{{Iteration: 1, Cost: 20}, {Iteration: 2, Cost: 12}},
			Events:   9,
		},
		Extraction: &telemetry.ExtractionTrace{
			TotalCost: 12, Classes: 9, Contested: 2,
			Decisions: []telemetry.ExtractionDecision{
				{Class: 7, Winner: "(VecMAC /3)", WinnerCost: 7.5,
					RunnerUp: "(VecAdd /2)", RunnerUpCost: 9.5, Candidates: 2},
			},
			Contiguous: 1, Shuffles: 3,
		},
		Memory: &telemetry.MemoryTrace{
			PeakBytes: 2000, PeakIteration: 2,
			Components: []telemetry.MemoryComponent{
				{Name: "nodes", Entries: 14, Bytes: 1400},
				{Name: "journal", Entries: 9, Bytes: 600},
			},
		},
		Duration: time.Millisecond,
	}
}

// synthProfile builds a matching simulator cycle profile.
func synthProfile() *sim.Profile {
	return &sim.Profile{
		PerOp: []sim.OpProfile{
			{Op: "vmac", Count: 1, Cycles: 3},
			{Op: "vadd", Count: 2, Cycles: 2, Stall: 1},
		},
		Slots:        []sim.SlotProfile{{Slot: "alu", Issued: 3, Cycles: 5}},
		OperandStall: 1,
		Cycles:       9,
	}
}

func synthInput(label string) Input {
	return Input{Label: label, Kernel: "k", Trace: synthTrace(), Profile: synthProfile(), Cycles: 9}
}

// kinds collects the divergence kinds present in the diff.
func kinds(d *Diff) map[string]bool {
	out := map[string]bool{}
	for _, dv := range d.Divergences {
		out[dv.Kind] = true
	}
	return out
}

func TestSelfCompareEmpty(t *testing.T) {
	d := Compare(synthInput("a"), synthInput("b"))
	if !d.Empty() {
		t.Fatalf("self-diff not empty:\n%s", d.Format())
	}
	if d.Schema != Schema {
		t.Errorf("schema = %q, want %q", d.Schema, Schema)
	}
	if d.Truncation != nil {
		t.Errorf("unexpected truncation: %+v", d.Truncation)
	}
	if len(d.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(d.Rules))
	}
	for _, r := range d.Rules {
		if r.Diverged() {
			t.Errorf("rule %s diverged on identical inputs: %+v", r.Rule, r)
		}
	}
	if d.Saturation == nil || d.Saturation.SplitIteration != 0 {
		t.Errorf("saturation split on identical inputs: %+v", d.Saturation)
	}
	if d.Bans == nil || d.Bans.FirstDivergence != -1 {
		t.Errorf("ban timelines misaligned on identical inputs: %+v", d.Bans)
	}
	if !strings.Contains(d.Format(), "runs are equivalent") {
		t.Errorf("Format lacks the equivalence verdict:\n%s", d.Format())
	}
}

// TestWallTimeNeverDiverges pins the determinism-contract boundary: wall
// time and allocation counters are informational, so a run that is slower
// but semantically identical must still self-diff empty.
func TestWallTimeNeverDiverges(t *testing.T) {
	base, cur := synthInput("fast"), synthInput("slow")
	cur.Trace.Duration *= 3
	for i := range cur.Trace.Stages {
		cur.Trace.Stages[i].Duration *= 7
		cur.Trace.Stages[i].AllocBytes += 12345
	}
	for i := range cur.Trace.Search.Rules {
		cur.Trace.Search.Rules[i].Duration += time.Millisecond
	}
	d := Compare(base, cur)
	if !d.Empty() {
		t.Fatalf("wall-time delta produced divergences:\n%s", d.Format())
	}
	// The waterfall still reports the (informational) slowdown.
	var saturate *StageDelta
	for i := range d.Stages {
		if d.Stages[i].Stage == "saturate" {
			saturate = &d.Stages[i]
		}
	}
	if saturate == nil || saturate.DeltaPct <= 0 {
		t.Errorf("waterfall lost the wall-time delta: %+v", d.Stages)
	}
}

func TestRuleDivergenceSplitIteration(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.Search.Rules[0].Applied = 4 // vec-mac: 3 -> 4
	cur.Trace.Search.Rules[0].NewNodes = 6
	cur.Trace.Iterations[1].PerRuleApplied["vec-mac"] = 2
	d := Compare(base, cur)
	if d.Empty() {
		t.Fatal("rule count change not flagged")
	}
	if !kinds(d)["rule"] {
		t.Fatalf("no rule divergence in %+v", d.Divergences)
	}
	// Diverged rules sort first, biggest applied swing on top.
	if d.Rules[0].Rule != "vec-mac" || !d.Rules[0].Diverged() {
		t.Fatalf("rules[0] = %+v, want diverged vec-mac", d.Rules[0])
	}
	if d.Rules[0].SplitIteration != 2 {
		t.Errorf("split iteration = %d, want 2", d.Rules[0].SplitIteration)
	}
	if !strings.Contains(d.Format(), "vec-mac") {
		t.Errorf("Format does not name the rule:\n%s", d.Format())
	}
}

func TestStopReasonAndSaturationDivergence(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.StopReason = "node-limit"
	cur.Trace.Iterations = append(cur.Trace.Iterations,
		telemetry.IterationGauge{Iteration: 3, Nodes: 20, Classes: 10})
	d := Compare(base, cur)
	k := kinds(d)
	if !k["stop-reason"] || !k["saturation"] {
		t.Fatalf("kinds = %v, want stop-reason and saturation in %+v", k, d.Divergences)
	}
	if d.Saturation.Iterations != (Pair{2, 3}) {
		t.Errorf("iterations = %+v, want {2 3}", d.Saturation.Iterations)
	}
}

// TestTruncationFlagged pins the ring-eviction caveat: dropped journal
// events set Truncation (surfaced as a warning) but are not themselves a
// semantic divergence.
func TestTruncationFlagged(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.Search.EventsDropped = 7
	d := Compare(base, cur)
	if d.Truncation == nil || d.Truncation.CurDropped != 7 || d.Truncation.BaseDropped != 0 {
		t.Fatalf("truncation = %+v, want CurDropped 7", d.Truncation)
	}
	if !d.Empty() {
		t.Errorf("truncation alone counted as divergence:\n%s", d.Format())
	}
	out := d.Format()
	if !strings.Contains(out, "warning:") || !strings.Contains(out, "evicted") {
		t.Errorf("Format lacks the truncation warning:\n%s", out)
	}
}

func TestExtractionFlipNamesWinner(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.Extraction.TotalCost = 14
	cur.Trace.Extraction.Decisions[0].Winner = "(VecAdd /2)"
	cur.Trace.Extraction.Decisions[0].WinnerCost = 9.5
	cur.Trace.Extraction.Shuffles = 4
	d := Compare(base, cur)
	k := kinds(d)
	if !k["extraction"] || !k["movement"] {
		t.Fatalf("kinds = %v, want extraction and movement in %+v", k, d.Divergences)
	}
	if len(d.Extraction.Flips) != 1 || d.Extraction.Flips[0].CurWinner != "(VecAdd /2)" {
		t.Fatalf("flips = %+v", d.Extraction.Flips)
	}
	var flip string
	for _, dv := range d.Divergences {
		if dv.Kind == "extraction" && strings.Contains(dv.Detail, "flipped") {
			flip = dv.Detail
		}
	}
	if !strings.Contains(flip, "(VecMAC /3)") || !strings.Contains(flip, "(VecAdd /2)") {
		t.Errorf("flip divergence does not name both winners: %q", flip)
	}
}

func TestBanTimelineDivergence(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.Search.Bans[0].Until = 5
	d := Compare(base, cur)
	if !kinds(d)["ban"] {
		t.Fatalf("no ban divergence in %+v", d.Divergences)
	}
	if d.Bans.FirstDivergence != 0 {
		t.Errorf("first ban divergence = %d, want 0", d.Bans.FirstDivergence)
	}
}

func TestCostTrajectorySplit(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Trace.Search.BestCost[1].Cost = 13
	d := Compare(base, cur)
	if !kinds(d)["cost"] {
		t.Fatalf("no cost divergence in %+v", d.Divergences)
	}
	if d.CostSplit == nil || d.CostSplit.Iteration != 2 ||
		d.CostSplit.Base != 12 || d.CostSplit.Cur != 13 {
		t.Fatalf("cost split = %+v, want iteration 2, 12 -> 13", d.CostSplit)
	}
}

// TestOneSidedJournalExclusion pins the forensics asymmetry: a value-only
// baseline (measured journal-off) compared against a journal-armed recompile
// must not see the flight recorder's own ring bytes as a memory regression.
func TestOneSidedJournalExclusion(t *testing.T) {
	base := Input{Label: "BENCH.json", Kernel: "k", Cycles: 9, PeakBytes: 1400}
	cur := synthInput("current") // peak 2000, of which 600 is the journal ring
	d := Compare(base, cur)
	if !d.Empty() {
		t.Fatalf("journal ring bytes counted as divergence:\n%s", d.Format())
	}
	if d.Memory == nil || d.Memory.PeakBytes != (Pair{1400, 1400}) {
		t.Fatalf("memory = %+v, want adjusted peaks {1400 1400}", d.Memory)
	}
	var noted bool
	for _, n := range d.Notes {
		if strings.Contains(n, "journal ring bytes (600) excluded") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("missing journal-exclusion note in %v", d.Notes)
	}
}

// TestOneSidedCyclesDivergence is the forensics happy path: a value-only
// baseline that genuinely regressed produces exactly the cycles divergence.
func TestOneSidedCyclesDivergence(t *testing.T) {
	base := Input{Label: "BENCH.json", Kernel: "k", Cycles: 4, PeakBytes: 1400}
	d := Compare(base, synthInput("current"))
	if len(d.Divergences) != 1 || d.Divergences[0].Kind != "cycles" {
		t.Fatalf("divergences = %+v, want exactly one cycles divergence", d.Divergences)
	}
	if !strings.Contains(d.Divergences[0].Detail, "4 → 9") {
		t.Errorf("cycles detail = %q, want 4 → 9", d.Divergences[0].Detail)
	}
}

// TestOneSidedZeroPeakIsInformational pins the no-baseline rule for memory:
// an old value-only row without peak_egraph_bytes must not read as 0 → N.
func TestOneSidedZeroPeakIsInformational(t *testing.T) {
	base := Input{Label: "old.json", Kernel: "k", Cycles: 9} // no PeakBytes
	d := Compare(base, synthInput("current"))
	if !d.Empty() {
		t.Fatalf("zero baseline peak counted as divergence:\n%s", d.Format())
	}
}

func TestValueOnlyComparison(t *testing.T) {
	base := Input{Label: "a", Kernel: "k", Cycles: 100, PeakBytes: 500}
	cur := Input{Label: "b", Kernel: "k", Cycles: 100, PeakBytes: 600}
	d := Compare(base, cur)
	if !kinds(d)["memory"] {
		t.Fatalf("peak-bytes delta not flagged: %+v", d.Divergences)
	}
	var noted bool
	for _, n := range d.Notes {
		if strings.Contains(n, "neither artifact carries a compile trace") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("missing value-only note in %v", d.Notes)
	}
}

func TestProfileDeltasPerOpcodeAndSlot(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	cur.Cycles = 11
	cur.Profile.Cycles = 11
	cur.Profile.PerOp[0].Count = 0 // vmac gone
	cur.Profile.PerOp[0].Cycles = 0
	cur.Profile.PerOp[1].Count = 3 // one more vadd
	cur.Profile.Slots[0].Issued = 4
	d := Compare(base, cur)
	if !kinds(d)["cycles"] {
		t.Fatalf("no cycles divergence in %+v", d.Divergences)
	}
	var subjects []string
	for _, dv := range d.Divergences {
		if dv.Kind == "cycles" {
			subjects = append(subjects, dv.Subject)
		}
	}
	joined := strings.Join(subjects, " ")
	for _, want := range []string{"vmac", "vadd", "alu"} {
		if !strings.Contains(joined, want) {
			t.Errorf("cycle divergences %v miss subject %q", subjects, want)
		}
	}
}
