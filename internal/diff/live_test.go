package diff_test

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/diff"
	"diospyros/internal/egraph"
)

// These tests exercise the diff package against real compilations of the
// matmul2x2 testdata kernel: the self-diff-empty invariant, the induced
// regressions the acceptance criteria pin (a nerfed cost weight must name
// the responsible op; a disabled rule family must name the missing rules),
// and the journal-truncation caveat on a real wrapped ring.

// compileMM compiles testdata/matmul2x2.dios with the journal armed (ring
// capacity ringCap; 0 means the default) and simulates it, returning the
// diff input and the journal.
func compileMM(t *testing.T, opts diospyros.Options, ringCap int) (diff.Input, *egraph.Journal) {
	t.Helper()
	src, err := os.ReadFile("../../testdata/matmul2x2.dios")
	if err != nil {
		t.Fatal(err)
	}
	jr := egraph.NewJournal(ringCap)
	opts.Journal = jr
	if opts.Timeout == 0 {
		opts.Timeout = time.Minute
	}
	res, err := diospyros.CompileSource(string(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	in := diff.Input{Label: "live", Kernel: res.Kernel.Name, Trace: res.Trace}
	if res.Program != nil {
		r := rand.New(rand.NewSource(1))
		inputs := map[string][]float64{}
		for _, d := range res.Kernel.Inputs {
			s := make([]float64, d.Len())
			for i := range s {
				s[i] = float64(int(r.Float64()*200-100)) / 10
			}
			inputs[d.Name] = s
		}
		if _, sres, err := res.Run(inputs, nil); err == nil {
			in.Profile = sres.Profile
			in.Cycles = sres.Cycles
		}
	}
	return in, jr
}

// TestLiveSelfDiffEmpty checks the determinism anchor on real compiles: the
// same kernel compiled twice — and across match-worker counts — diffs empty.
func TestLiveSelfDiffEmpty(t *testing.T) {
	a, _ := compileMM(t, diospyros.Options{}, 0)
	b, _ := compileMM(t, diospyros.Options{}, 0)
	if d := diff.Compare(a, b); !d.Empty() {
		t.Errorf("identical compiles diverged:\n%s", d.Format())
	}
	p, _ := compileMM(t, diospyros.Options{MatchWorkers: 8}, 0)
	if d := diff.Compare(a, p); !d.Empty() {
		t.Errorf("workers=1 vs workers=8 diverged:\n%s", d.Format())
	}
}

// TestInducedCostRegressionNamesRule is the acceptance pin for the induced
// regression: nerfing VecMAC's cost weight must produce a non-empty diff
// that names VecMAC in the divergence list, the JSON artifact, and the HTML
// report.
func TestInducedCostRegressionNamesRule(t *testing.T) {
	base, _ := compileMM(t, diospyros.Options{}, 0)
	cur, _ := compileMM(t, diospyros.Options{OpCost: map[string]float64{"VecMAC": 50}}, 0)
	d := diff.Compare(base, cur)
	if d.Empty() {
		t.Fatal("nerfed VecMAC cost produced an empty diff")
	}
	var named bool
	for _, dv := range d.Divergences {
		if strings.Contains(dv.Detail, "VecMAC") {
			named = true
		}
	}
	if !named {
		t.Fatalf("no divergence names VecMAC:\n%s", d.Format())
	}
	raw, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "VecMAC") || !strings.Contains(string(raw), diff.Schema) {
		t.Error("JSON artifact does not name VecMAC under the diff schema")
	}
	page, err := diff.Report(d, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "VecMAC") {
		t.Error("HTML report does not name VecMAC")
	}
	// A cost-weight change leaves the search untouched: the e-graph and the
	// rule attribution must agree, only extraction-side sections may differ.
	for _, dv := range d.Divergences {
		switch dv.Kind {
		case "rule", "saturation", "stop-reason", "ban":
			t.Errorf("cost-only change produced a search divergence: %+v", dv)
		}
	}
}

// TestInducedRuleDisableDivergence pins the other induced-regression lever:
// disabling the vectorization rules must surface as rules running only in
// the baseline.
func TestInducedRuleDisableDivergence(t *testing.T) {
	base, _ := compileMM(t, diospyros.Options{}, 0)
	cur, _ := compileMM(t, diospyros.Options{DisableVectorRules: true}, 0)
	d := diff.Compare(base, cur)
	if d.Empty() {
		t.Fatal("disabling vector rules produced an empty diff")
	}
	var baselineOnly bool
	for _, r := range d.Rules {
		if r.OnlyIn == "baseline" {
			baselineOnly = true
		}
	}
	if !baselineOnly {
		t.Errorf("no rule attributed to the baseline only:\n%s", d.Format())
	}
}

// TestJournalTruncationRealRun wraps a real compile's journal ring and
// checks the drop count flows end to end: Journal.Dropped into the trace's
// EventsDropped and from there into the diff's Truncation caveat.
func TestJournalTruncationRealRun(t *testing.T) {
	full, _ := compileMM(t, diospyros.Options{}, 0)
	short, jr := compileMM(t, diospyros.Options{}, 8)
	if jr.Dropped() == 0 {
		t.Fatalf("ring of 8 evicted nothing (total %d events); enlarge the kernel", jr.Total())
	}
	if short.Trace.Search == nil || short.Trace.Search.EventsDropped != jr.Dropped() {
		t.Fatalf("trace EventsDropped = %+v, want %d", short.Trace.Search, jr.Dropped())
	}
	d := diff.Compare(full, short)
	if d.Truncation == nil || d.Truncation.CurDropped != jr.Dropped() {
		t.Fatalf("truncation = %+v, want CurDropped %d", d.Truncation, jr.Dropped())
	}
	if !strings.Contains(d.Format(), "incomplete window") {
		t.Error("Format lacks the truncation caveat")
	}
}
