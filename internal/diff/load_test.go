package diff

import (
	"encoding/json"
	"strings"
	"testing"

	"diospyros/internal/telemetry"
)

func TestLoadArtifactTraceObject(t *testing.T) {
	raw, err := json.Marshal(synthTrace())
	if err != nil {
		t.Fatal(err)
	}
	a, err := LoadArtifact("trace.json", raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Inputs) != 1 || a.Inputs[0].Trace == nil {
		t.Fatalf("inputs = %+v, want one traced entry", a.Inputs)
	}
	if _, ok := a.Find(""); !ok {
		t.Error("empty kernel ID does not match the single bare-trace entry")
	}
	if _, ok := a.Find("nope"); ok {
		t.Error("Find matched a kernel the artifact does not hold")
	}
}

func TestLoadArtifactBenchRows(t *testing.T) {
	raw := []byte(`[
		{"id": "A", "cycles": 10, "peak_egraph_bytes": 100},
		{"id": "B", "cycles": 20, "peak_egraph_bytes": 200}
	]`)
	a, err := LoadArtifact("bench.json", raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Kernels(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("kernels = %v, want [A B]", got)
	}
	in, ok := a.Find("B")
	if !ok || in.Cycles != 20 || in.PeakBytes != 200 || in.Trace != nil {
		t.Fatalf("Find(B) = %+v, %v", in, ok)
	}
}

func TestLoadArtifactRejectsStaleTraces(t *testing.T) {
	stale := synthTrace()
	stale.Schema = ""
	staleRaw, _ := json.Marshal(stale)

	wrong := synthTrace()
	wrong.Schema = "diospyros/trace/v0"
	wrongRaw, _ := json.Marshal(wrong)

	// A bench row embedding a stale trace is rejected too, naming the kernel.
	row, _ := json.Marshal([]map[string]any{{"id": "MatMul 2x2 2x2", "cycles": 9,
		"trace": json.RawMessage(staleRaw)}})

	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"missing stamp", staleRaw, "no schema stamp"},
		{"wrong version", wrongRaw, telemetry.TraceSchema},
		{"stale row trace", row, "MatMul 2x2 2x2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadArtifact("artifact.json", tc.raw)
			if err == nil {
				t.Fatal("stale artifact accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadArtifactErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"empty", ""},
		{"whitespace", "  \n\t"},
		{"scalar", "42"},
		{"empty array", "[]"},
		{"row without id", `[{"cycles": 10}]`},
		{"malformed rows", `[{"id": "A"`},
		{"malformed trace", `{"schema":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadArtifact("bad.json", []byte(tc.raw)); err == nil {
				t.Errorf("accepted %q", tc.raw)
			}
		})
	}
}
