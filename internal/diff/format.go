package diff

import (
	"fmt"
	"strings"
	"time"
)

// Format renders the diff as the human-readable autopsy printed by
// diosdiff without -json/-html: the divergence list first (the verdict),
// then the informational stage waterfall and the diverged sections.
func (d *Diff) Format() string {
	var b strings.Builder
	header := fmt.Sprintf("diff %s → %s", d.BaseLabel, d.CurLabel)
	if d.Kernel != "" {
		header = fmt.Sprintf("diff %s: %s → %s", d.Kernel, d.BaseLabel, d.CurLabel)
	}
	b.WriteString(header)
	b.WriteByte('\n')

	if d.Truncation != nil {
		fmt.Fprintf(&b, "warning: %s\n", d.Truncation.Note)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}

	if d.Empty() {
		b.WriteString("runs are equivalent: no semantic divergence\n")
	} else {
		fmt.Fprintf(&b, "%d divergences:\n", len(d.Divergences))
		for _, dv := range d.Divergences {
			fmt.Fprintf(&b, "  [%s] %s\n", dv.Kind, dv.Detail)
		}
	}

	if len(d.Stages) > 0 {
		b.WriteString("\nstage waterfall (wall time, informational):\n")
		nameW := len("stage")
		for _, s := range d.Stages {
			if len(s.Stage) > nameW {
				nameW = len(s.Stage)
			}
		}
		fmt.Fprintf(&b, "  %-*s %14s %14s %9s\n", nameW, "stage", "baseline", "current", "delta")
		for _, s := range d.Stages {
			switch s.OnlyIn {
			case "baseline":
				fmt.Fprintf(&b, "  %-*s %14v %14s %9s\n", nameW, s.Stage,
					roundNS(s.BaseNS), "—", "")
			case "current":
				fmt.Fprintf(&b, "  %-*s %14s %14v %9s\n", nameW, s.Stage,
					"—", roundNS(s.CurNS), "")
			default:
				fmt.Fprintf(&b, "  %-*s %14v %14v %+8.1f%%\n", nameW, s.Stage,
					roundNS(s.BaseNS), roundNS(s.CurNS), 100*s.DeltaPct)
			}
		}
	}

	if d.Rules != nil {
		var diverged int
		for _, r := range d.Rules {
			if r.Diverged() {
				diverged++
			}
		}
		if diverged > 0 {
			b.WriteString("\ndiverged rules:\n")
			for _, r := range d.Rules {
				if !r.Diverged() {
					continue
				}
				fmt.Fprintf(&b, "  %s: matches %d → %d, applied %d → %d, nodes+ %d → %d, bans %d → %d",
					r.Rule, r.Matches.Base, r.Matches.Cur, r.Applied.Base, r.Applied.Cur,
					r.NewNodes.Base, r.NewNodes.Cur, r.Bans.Base, r.Bans.Cur)
				if r.SplitIteration > 0 {
					fmt.Fprintf(&b, " (from iteration %d)", r.SplitIteration)
				}
				b.WriteByte('\n')
			}
		}
	}

	if d.Extraction != nil && len(d.Extraction.Flips) > 0 {
		b.WriteString("\nextraction flips:\n")
		for _, f := range d.Extraction.Flips {
			fmt.Fprintf(&b, "  class %d: %s (%.2f) → %s (%.2f)\n",
				f.Class, f.BaseWinner, f.BaseCost, f.CurWinner, f.CurCost)
		}
	}

	if d.Memory != nil && d.Memory.PeakBytes.Diverged() {
		fmt.Fprintf(&b, "\npeak e-graph footprint: %d → %d bytes (%+d)\n",
			d.Memory.PeakBytes.Base, d.Memory.PeakBytes.Cur, d.Memory.PeakBytes.Delta())
	}

	if d.Cycles != nil && d.Cycles.Total.Diverged() &&
		d.Cycles.Total.Base != 0 && d.Cycles.Total.Cur != 0 {
		fmt.Fprintf(&b, "\nsimulated cycles: %d → %d (%+d)\n",
			d.Cycles.Total.Base, d.Cycles.Total.Cur, d.Cycles.Total.Delta())
	}

	return b.String()
}

// roundNS renders a nanosecond reading as a rounded duration.
func roundNS(ns int64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}
