package diff

import (
	"strings"
	"testing"
)

// divergentPair builds a base/cur pair whose diff carries a bit of every
// section: a rule delta, an extraction flip, and a cycles delta.
func divergentPair() (Input, Input) {
	base, cur := synthInput("baseline.json"), synthInput("current")
	cur.Trace.Search.Rules[0].Applied = 4
	cur.Trace.Iterations[1].PerRuleApplied["vec-mac"] = 2
	cur.Trace.Extraction.Decisions[0].Winner = "(VecAdd /2)"
	cur.Cycles = 11
	cur.Profile.Cycles = 11
	return base, cur
}

func TestDiffJSONCarriesSchema(t *testing.T) {
	base, cur := divergentPair()
	raw, err := Compare(base, cur).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{Schema, "vec-mac", "divergences"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("JSON artifact missing %q", want)
		}
	}
}

func TestReportHTML(t *testing.T) {
	base, cur := divergentPair()
	d := Compare(base, cur)
	page, err := Report(d, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", // self-contained page with trajectory charts
		"baseline.json", "current", // both side labels
		"vec-mac",     // the responsible rule
		"(VecAdd /2)", // the flipped winner
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestReportHTMLEquivalentRuns(t *testing.T) {
	base, cur := synthInput("a"), synthInput("b")
	d := Compare(base, cur)
	if !d.Empty() {
		t.Fatalf("fixture not equivalent:\n%s", d.Format())
	}
	page, err := Report(d, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "equivalent") {
		t.Error("report of an empty diff lacks the equivalence verdict")
	}
}

// TestReportValueOnlyBaseline renders the forensics shape: one side has no
// trace at all, so the charts must degrade gracefully instead of erroring.
func TestReportValueOnlyBaseline(t *testing.T) {
	base := Input{Label: "BENCH.json", Kernel: "k", Cycles: 4, PeakBytes: 1400}
	cur := synthInput("current")
	d := Compare(base, cur)
	page, err := Report(d, base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "BENCH.json") {
		t.Error("report lost the value-only side's label")
	}
}
