// Package diff computes attributed deltas between two compilations of the
// same kernel — the regression-forensics layer behind cmd/diosdiff and
// diosbench's -forensics mode. Given two compile artifacts (telemetry
// traces, simulator cycle profiles, or the value-only rows of a committed
// bench baseline) it produces a structured Diff: the per-stage latency
// waterfall, per-rule journal divergence, Backoff ban-timeline alignment,
// the first iteration where the best-cost trajectories split, extraction
// decision flips, e-graph memory-component deltas, and per-opcode/per-slot
// simulated cycle deltas.
//
// The determinism contract (DESIGN.md §9) is the package's correctness
// anchor: identical compiles produce identical deterministic fields, so a
// self-diff is empty — Divergences covers only fields the contract pins
// (counts, costs, decisions, footprints, cycles), never wall-clock time,
// which is reported in the waterfall but can never make a diff non-empty.
package diff

import (
	"encoding/json"
	"fmt"
	"sort"

	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// Schema identifies the Diff JSON format, the way telemetry.TraceSchema
// identifies trace artifacts.
const Schema = "diospyros/diff/v1"

// Input is one side of a comparison. Trace and Profile are optional: a
// value-only side (e.g. a committed bench baseline row) still diffs its
// Cycles and PeakBytes, and the missing sections are surfaced as Notes on
// the Diff rather than silently skipped.
type Input struct {
	// Label names the side in reports ("BENCH_PR7.json", "current").
	Label string
	// Kernel is the kernel ID both sides should share.
	Kernel string
	// Trace is the side's compile trace, when the artifact carries one.
	Trace *telemetry.Trace
	// Profile is the side's simulated cycle profile, when available.
	Profile *sim.Profile
	// Cycles is the side's total simulated cycle count (0 when unknown;
	// falls back to Profile.Cycles).
	Cycles int64
	// PeakBytes is the e-graph's peak logical footprint (0 when unknown;
	// falls back to Trace.Memory.PeakBytes).
	PeakBytes int64
}

// Pair is a baseline/current pair of integer readings.
type Pair struct {
	Base int64 `json:"base"`
	Cur  int64 `json:"cur"`
}

// Delta returns Cur - Base.
func (p Pair) Delta() int64 { return p.Cur - p.Base }

// Diverged reports whether the two readings differ.
func (p Pair) Diverged() bool { return p.Base != p.Cur }

// FPair is a baseline/current pair of float readings.
type FPair struct {
	Base float64 `json:"base"`
	Cur  float64 `json:"cur"`
}

// Diverged reports whether the two readings differ exactly — deterministic
// fields are bit-identical across equivalent runs, so no epsilon.
func (p FPair) Diverged() bool { return p.Base != p.Cur }

// Divergence is one attributed semantic difference between the two runs —
// the autopsy lines. Wall-clock deltas never appear here.
type Divergence struct {
	// Kind classifies the divergence: "stop-reason", "saturation", "rule",
	// "ban", "cost", "extraction", "movement", "memory", "cycles", "stage-set".
	Kind string `json:"kind"`
	// Subject names the diverging entity (rule, opcode, component, class).
	Subject string `json:"subject,omitempty"`
	// Detail is the human-readable one-liner.
	Detail string `json:"detail"`
}

// StageDelta is one pipeline stage's latency-waterfall row. Wall time is
// informational: it never contributes a Divergence.
type StageDelta struct {
	Stage  string `json:"stage"`
	BaseNS int64  `json:"base_ns"`
	CurNS  int64  `json:"cur_ns"`
	// DeltaPct is the relative wall-time change ((cur-base)/base; 0 when
	// the baseline duration is 0 or the stage is one-sided).
	DeltaPct float64 `json:"delta_pct"`
	// OnlyIn marks a stage present on one side only ("baseline"/"current").
	OnlyIn string `json:"only_in,omitempty"`
}

// SaturationDiff compares the searches' shape: iteration count, final
// e-graph size, stop reason, and where the size trajectories split.
type SaturationDiff struct {
	Iterations Pair   `json:"iterations"`
	Nodes      Pair   `json:"nodes"`
	Classes    Pair   `json:"classes"`
	BaseStop   string `json:"base_stop,omitempty"`
	CurStop    string `json:"cur_stop,omitempty"`
	// SplitIteration is the first 1-based iteration whose node/class gauge
	// differs between the runs; 0 means the trajectories are aligned.
	SplitIteration int `json:"split_iteration,omitempty"`
}

// RuleDelta is one rewrite rule's journal divergence across the two runs.
type RuleDelta struct {
	Rule     string `json:"rule"`
	Matches  Pair   `json:"matches"`
	Applied  Pair   `json:"applied"`
	NewNodes Pair   `json:"new_nodes"`
	Bans     Pair   `json:"bans"`
	// BaseNS/CurNS total the rule's search+apply wall time (informational).
	BaseNS int64 `json:"base_ns,omitempty"`
	CurNS  int64 `json:"cur_ns,omitempty"`
	// OnlyIn marks a rule that ran on one side only.
	OnlyIn string `json:"only_in,omitempty"`
	// SplitIteration is the first 1-based iteration whose per-rule
	// match/apply counts differ; 0 when per-iteration data agrees or is
	// unavailable.
	SplitIteration int `json:"split_iteration,omitempty"`
}

// Diverged reports whether any deterministic count differs.
func (r RuleDelta) Diverged() bool {
	return r.OnlyIn != "" || r.Matches.Diverged() || r.Applied.Diverged() ||
		r.NewNodes.Diverged() || r.Bans.Diverged()
}

// BanDiff aligns the Backoff ban timelines of the two runs.
type BanDiff struct {
	Base []telemetry.BanSpan `json:"base,omitempty"`
	Cur  []telemetry.BanSpan `json:"cur,omitempty"`
	// FirstDivergence is the 0-based index of the first misaligned ban
	// (-1 when the timelines agree).
	FirstDivergence int `json:"first_divergence"`
}

// CostSplit records where the per-iteration best-cost trajectories part.
type CostSplit struct {
	// Iteration is the first 1-based iteration whose best extractable cost
	// differs between the runs.
	Iteration int     `json:"iteration"`
	Base      float64 `json:"base"`
	Cur       float64 `json:"cur"`
}

// DecisionFlip is one contested e-class whose winning implementation
// changed between the runs, with the cost breakdown behind each choice.
type DecisionFlip struct {
	Class      int     `json:"class"`
	BaseWinner string  `json:"base_winner"`
	CurWinner  string  `json:"cur_winner"`
	BaseCost   float64 `json:"base_cost"`
	CurCost    float64 `json:"cur_cost"`
}

// MovementDelta is one data-movement kind's census change (shuffles,
// selects, gathers, ... — the §4 cost-model distinction).
type MovementDelta struct {
	Kind  string `json:"kind"`
	Count Pair   `json:"count"`
}

// ExtractionDiff compares what extraction chose.
type ExtractionDiff struct {
	TotalCost FPair           `json:"total_cost"`
	Contested Pair            `json:"contested"`
	Flips     []DecisionFlip  `json:"flips,omitempty"`
	Movement  []MovementDelta `json:"movement,omitempty"`
}

// ComponentDelta is one e-graph memory component's footprint change.
type ComponentDelta struct {
	Component string `json:"component"`
	Entries   Pair   `json:"entries"`
	Bytes     Pair   `json:"bytes"`
}

// MemoryDiff compares the e-graph peak footprints.
type MemoryDiff struct {
	PeakBytes     Pair             `json:"peak_bytes"`
	PeakIteration Pair             `json:"peak_iteration"`
	Components    []ComponentDelta `json:"components,omitempty"`
}

// OpDelta is one opcode's simulated-cycle change.
type OpDelta struct {
	Op     string `json:"op"`
	Count  Pair   `json:"count"`
	Cycles Pair   `json:"cycles"`
	Stall  Pair   `json:"stall"`
	OnlyIn string `json:"only_in,omitempty"`
}

// SlotDelta is one issue slot's simulated-cycle change.
type SlotDelta struct {
	Slot   string `json:"slot"`
	Issued Pair   `json:"issued"`
	Cycles Pair   `json:"cycles"`
}

// CycleDiff compares the simulator cycle profiles per opcode and slot.
type CycleDiff struct {
	Total        Pair        `json:"total"`
	OperandStall Pair        `json:"operand_stall"`
	MemoryStall  Pair        `json:"memory_stall"`
	BranchBubble Pair        `json:"branch_bubble"`
	Ops          []OpDelta   `json:"ops,omitempty"`
	Slots        []SlotDelta `json:"slots,omitempty"`
}

// Truncation flags that at least one side's journal ring evicted events,
// so the per-rule comparison covers an incomplete window and must not be
// read as full-run attribution.
type Truncation struct {
	BaseDropped uint64 `json:"base_dropped,omitempty"`
	CurDropped  uint64 `json:"cur_dropped,omitempty"`
	Note        string `json:"note"`
}

// Diff is the structured, attributed delta between two compilations — the
// diospyros/diff/v1 artifact. Divergences lists every semantic difference;
// the section fields carry the data behind them plus the informational
// wall-time waterfall.
type Diff struct {
	// Schema is always the package Schema constant.
	Schema string `json:"schema"`
	// Kernel names the compared kernel, when known.
	Kernel string `json:"kernel,omitempty"`
	// BaseLabel and CurLabel name the two sides.
	BaseLabel string `json:"base_label"`
	CurLabel  string `json:"cur_label"`

	// Divergences is the autopsy: every attributed semantic difference,
	// most significant first. Empty means the runs are equivalent under
	// the determinism contract.
	Divergences []Divergence `json:"divergences,omitempty"`

	// BaseDurationNS and CurDurationNS are the end-to-end compile times
	// (informational, like every wall-time field).
	BaseDurationNS int64 `json:"base_duration_ns,omitempty"`
	CurDurationNS  int64 `json:"cur_duration_ns,omitempty"`

	Stages     []StageDelta    `json:"stages,omitempty"`
	Saturation *SaturationDiff `json:"saturation,omitempty"`
	Rules      []RuleDelta     `json:"rules,omitempty"`
	Bans       *BanDiff        `json:"bans,omitempty"`
	CostSplit  *CostSplit      `json:"cost_split,omitempty"`
	Extraction *ExtractionDiff `json:"extraction,omitempty"`
	Memory     *MemoryDiff     `json:"memory,omitempty"`
	Cycles     *CycleDiff      `json:"cycles,omitempty"`

	// Truncation is set when either journal ring dropped events.
	Truncation *Truncation `json:"truncation,omitempty"`

	// Notes lists sections that could not be compared (e.g. the baseline
	// artifact carries no trace) — context, not divergence.
	Notes []string `json:"notes,omitempty"`
}

// Empty reports whether the two runs are equivalent: no semantic
// divergence was found (wall-time deltas do not count).
func (d *Diff) Empty() bool { return len(d.Divergences) == 0 }

// JSON renders the diff artifact.
func (d *Diff) JSON() ([]byte, error) { return json.MarshalIndent(d, "", "  ") }

// Compare diffs two compilations of the same kernel. Either side may be
// partial (no trace, no profile); whatever both sides carry is compared,
// and one-sided sections become Notes.
func Compare(base, cur Input) *Diff {
	d := &Diff{
		Schema:    Schema,
		Kernel:    firstNonEmpty(cur.Kernel, base.Kernel),
		BaseLabel: firstNonEmpty(base.Label, "baseline"),
		CurLabel:  firstNonEmpty(cur.Label, "current"),
	}
	if base.Trace != nil {
		d.BaseDurationNS = int64(base.Trace.Duration)
	}
	if cur.Trace != nil {
		d.CurDurationNS = int64(cur.Trace.Duration)
	}

	switch {
	case base.Trace != nil && cur.Trace != nil:
		compareStages(d, base.Trace, cur.Trace)
		compareSaturation(d, base.Trace, cur.Trace)
		compareSearch(d, base.Trace, cur.Trace)
		compareExtraction(d, base.Trace.Extraction, cur.Trace.Extraction)
		compareMemory(d, base, cur)
	case base.Trace == nil && cur.Trace == nil:
		d.Notes = append(d.Notes, "neither artifact carries a compile trace; comparing cycles and footprint values only")
		comparePeakValues(d, base, cur)
	default:
		side := d.BaseLabel
		if cur.Trace == nil {
			side = d.CurLabel
		}
		d.Notes = append(d.Notes,
			fmt.Sprintf("%s carries no compile trace; stage, rule, and extraction divergence unavailable", side))
		compareMemory(d, base, cur)
	}

	compareCycles(d, base, cur)
	return d
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func (d *Diff) diverge(kind, subject, format string, args ...any) {
	d.Divergences = append(d.Divergences, Divergence{
		Kind: kind, Subject: subject, Detail: fmt.Sprintf(format, args...),
	})
}

// compareStages builds the latency waterfall and flags stage-set
// mismatches (a stage running on one side only is semantic: the pipelines
// took different paths).
func compareStages(d *Diff, base, cur *telemetry.Trace) {
	curIdx := map[string]telemetry.Span{}
	for _, s := range cur.Stages {
		if _, dup := curIdx[s.Name]; !dup {
			curIdx[s.Name] = s
		}
	}
	seen := map[string]bool{}
	for _, b := range base.Stages {
		if seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		c, ok := curIdx[b.Name]
		if !ok {
			d.Stages = append(d.Stages, StageDelta{Stage: b.Name, BaseNS: int64(b.Duration), OnlyIn: "baseline"})
			d.diverge("stage-set", b.Name, "stage %s ran only in %s", b.Name, d.BaseLabel)
			continue
		}
		sd := StageDelta{Stage: b.Name, BaseNS: int64(b.Duration), CurNS: int64(c.Duration)}
		if b.Duration > 0 {
			sd.DeltaPct = float64(c.Duration-b.Duration) / float64(b.Duration)
		}
		d.Stages = append(d.Stages, sd)
	}
	for _, c := range cur.Stages {
		if !seen[c.Name] {
			seen[c.Name] = true
			d.Stages = append(d.Stages, StageDelta{Stage: c.Name, CurNS: int64(c.Duration), OnlyIn: "current"})
			d.diverge("stage-set", c.Name, "stage %s ran only in %s", c.Name, d.CurLabel)
		}
	}
}

// compareSaturation diffs the search shape: stop reason, iteration count,
// final size, and the first iteration where the size trajectories split.
func compareSaturation(d *Diff, base, cur *telemetry.Trace) {
	sd := &SaturationDiff{
		Iterations: Pair{int64(len(base.Iterations)), int64(len(cur.Iterations))},
		BaseStop:   base.StopReason,
		CurStop:    cur.StopReason,
	}
	if g, ok := base.FinalGauge(); ok {
		sd.Nodes.Base, sd.Classes.Base = int64(g.Nodes), int64(g.Classes)
	}
	if g, ok := cur.FinalGauge(); ok {
		sd.Nodes.Cur, sd.Classes.Cur = int64(g.Nodes), int64(g.Classes)
	}
	n := min(len(base.Iterations), len(cur.Iterations))
	for i := 0; i < n; i++ {
		b, c := base.Iterations[i], cur.Iterations[i]
		if b.Nodes != c.Nodes || b.Classes != c.Classes {
			sd.SplitIteration = b.Iteration
			break
		}
	}
	if sd.SplitIteration == 0 && len(base.Iterations) != len(cur.Iterations) && n > 0 {
		sd.SplitIteration = n + 1
	}
	d.Saturation = sd

	if base.StopReason != cur.StopReason {
		d.diverge("stop-reason", "", "stop reason %s → %s", base.StopReason, cur.StopReason)
	}
	if sd.Iterations.Diverged() {
		d.diverge("saturation", "", "iterations %d → %d", sd.Iterations.Base, sd.Iterations.Cur)
	}
	if sd.Nodes.Diverged() || sd.Classes.Diverged() {
		d.diverge("saturation", "", "final e-graph %d nodes / %d classes → %d / %d",
			sd.Nodes.Base, sd.Classes.Base, sd.Nodes.Cur, sd.Classes.Cur)
	} else if sd.SplitIteration > 0 {
		d.diverge("saturation", "", "size trajectories split at iteration %d", sd.SplitIteration)
	}
}

// compareSearch diffs the flight-recorder sections: per-rule attribution,
// the ban timeline, the best-cost trajectory, and journal truncation.
func compareSearch(d *Diff, base, cur *telemetry.Trace) {
	bs, cs := base.Search, cur.Search
	switch {
	case bs == nil && cs == nil:
		d.Notes = append(d.Notes, "neither run recorded a search journal; rule attribution unavailable")
		return
	case bs == nil || cs == nil:
		side := d.BaseLabel
		if cs == nil {
			side = d.CurLabel
		}
		d.Notes = append(d.Notes,
			fmt.Sprintf("%s recorded no search journal; rule attribution unavailable", side))
		return
	}

	if bs.EventsDropped > 0 || cs.EventsDropped > 0 {
		d.Truncation = &Truncation{
			BaseDropped: bs.EventsDropped,
			CurDropped:  cs.EventsDropped,
			Note: fmt.Sprintf("journal ring evicted events (%d baseline, %d current): "+
				"per-rule attribution covers an incomplete window and deltas may be under-counted",
				bs.EventsDropped, cs.EventsDropped),
		}
	}

	// Per-rule attribution, keyed by rule name, baseline order first.
	type side struct{ b, c *telemetry.RuleAttribution }
	rules := map[string]*side{}
	var order []string
	at := func(name string) *side {
		s := rules[name]
		if s == nil {
			s = &side{}
			rules[name] = s
			order = append(order, name)
		}
		return s
	}
	for i := range bs.Rules {
		at(bs.Rules[i].Rule).b = &bs.Rules[i]
	}
	for i := range cs.Rules {
		at(cs.Rules[i].Rule).c = &cs.Rules[i]
	}
	for _, name := range order {
		s := rules[name]
		rd := RuleDelta{Rule: name}
		if s.b != nil {
			rd.Matches.Base, rd.Applied.Base = int64(s.b.Matches), int64(s.b.Applied)
			rd.NewNodes.Base, rd.Bans.Base = int64(s.b.NewNodes), int64(s.b.Bans)
			rd.BaseNS = int64(s.b.Duration)
		}
		if s.c != nil {
			rd.Matches.Cur, rd.Applied.Cur = int64(s.c.Matches), int64(s.c.Applied)
			rd.NewNodes.Cur, rd.Bans.Cur = int64(s.c.NewNodes), int64(s.c.Bans)
			rd.CurNS = int64(s.c.Duration)
		}
		switch {
		case s.c == nil:
			rd.OnlyIn = "baseline"
		case s.b == nil:
			rd.OnlyIn = "current"
		}
		if rd.Diverged() {
			rd.SplitIteration = ruleSplitIteration(name, base.Iterations, cur.Iterations)
		}
		d.Rules = append(d.Rules, rd)
	}
	// Diverged rules first, biggest applied-count swing on top, so the
	// autopsy leads with the responsible rewrite.
	sort.SliceStable(d.Rules, func(i, j int) bool {
		di, dj := d.Rules[i].Diverged(), d.Rules[j].Diverged()
		if di != dj {
			return di
		}
		return abs64(d.Rules[i].Applied.Delta()) > abs64(d.Rules[j].Applied.Delta())
	})
	for _, rd := range d.Rules {
		if !rd.Diverged() {
			continue
		}
		switch rd.OnlyIn {
		case "baseline":
			d.diverge("rule", rd.Rule, "rule %s ran only in %s (%d matches, %d applied)",
				rd.Rule, d.BaseLabel, rd.Matches.Base, rd.Applied.Base)
		case "current":
			d.diverge("rule", rd.Rule, "rule %s ran only in %s (%d matches, %d applied)",
				rd.Rule, d.CurLabel, rd.Matches.Cur, rd.Applied.Cur)
		default:
			detail := fmt.Sprintf("rule %s: matches %d → %d, applied %d → %d, new nodes %d → %d",
				rd.Rule, rd.Matches.Base, rd.Matches.Cur,
				rd.Applied.Base, rd.Applied.Cur, rd.NewNodes.Base, rd.NewNodes.Cur)
			if rd.SplitIteration > 0 {
				detail += fmt.Sprintf(" (diverging from iteration %d)", rd.SplitIteration)
			}
			d.diverge("rule", rd.Rule, "%s", detail)
		}
	}

	compareBans(d, bs.Bans, cs.Bans)
	compareCostTrajectory(d, bs.BestCost, cs.BestCost)
}

// ruleSplitIteration finds the first 1-based iteration whose per-rule
// match/apply counts differ between the runs (0 when aligned or unknown).
func ruleSplitIteration(rule string, base, cur []telemetry.IterationGauge) int {
	n := min(len(base), len(cur))
	for i := 0; i < n; i++ {
		b, c := base[i], cur[i]
		if b.PerRuleMatches[rule] != c.PerRuleMatches[rule] ||
			b.PerRuleApplied[rule] != c.PerRuleApplied[rule] {
			return b.Iteration
		}
	}
	for i := n; i < len(base); i++ {
		if base[i].PerRuleMatches[rule] > 0 || base[i].PerRuleApplied[rule] > 0 {
			return base[i].Iteration
		}
	}
	for i := n; i < len(cur); i++ {
		if cur[i].PerRuleMatches[rule] > 0 || cur[i].PerRuleApplied[rule] > 0 {
			return cur[i].Iteration
		}
	}
	return 0
}

// compareBans aligns the Backoff ban timelines.
func compareBans(d *Diff, base, cur []telemetry.BanSpan) {
	if len(base) == 0 && len(cur) == 0 {
		return
	}
	bd := &BanDiff{Base: base, Cur: cur, FirstDivergence: -1}
	n := min(len(base), len(cur))
	for i := 0; i < n; i++ {
		b, c := base[i], cur[i]
		if b.Rule != c.Rule || b.Iteration != c.Iteration || b.Until != c.Until || b.Matches != c.Matches {
			bd.FirstDivergence = i
			break
		}
	}
	if bd.FirstDivergence == -1 && len(base) != len(cur) {
		bd.FirstDivergence = n
	}
	d.Bans = bd
	if bd.FirstDivergence < 0 {
		return
	}
	i := bd.FirstDivergence
	switch {
	case i >= len(base):
		b := cur[i]
		d.diverge("ban", b.Rule, "extra ban in %s: %s at iteration %d (until %d)",
			d.CurLabel, b.Rule, b.Iteration, b.Until)
	case i >= len(cur):
		b := base[i]
		d.diverge("ban", b.Rule, "ban missing from %s: %s at iteration %d (until %d)",
			d.CurLabel, b.Rule, b.Iteration, b.Until)
	default:
		b, c := base[i], cur[i]
		d.diverge("ban", c.Rule, "ban timelines diverge at entry %d: %s@%d(until %d) → %s@%d(until %d)",
			i, b.Rule, b.Iteration, b.Until, c.Rule, c.Iteration, c.Until)
	}
}

// compareCostTrajectory finds the first iteration where the best-cost
// trajectories split.
func compareCostTrajectory(d *Diff, base, cur []telemetry.CostPoint) {
	n := min(len(base), len(cur))
	for i := 0; i < n; i++ {
		b, c := base[i], cur[i]
		if b.Iteration != c.Iteration || b.Cost != c.Cost {
			d.CostSplit = &CostSplit{Iteration: c.Iteration, Base: b.Cost, Cur: c.Cost}
			d.diverge("cost", "", "best-cost trajectories split at iteration %d: %g → %g",
				c.Iteration, b.Cost, c.Cost)
			return
		}
	}
	if len(base) != len(cur) && n > 0 {
		var p telemetry.CostPoint
		if len(base) > n {
			p = base[n]
			d.CostSplit = &CostSplit{Iteration: p.Iteration, Base: p.Cost}
		} else {
			p = cur[n]
			d.CostSplit = &CostSplit{Iteration: p.Iteration, Cur: p.Cost}
		}
		d.diverge("cost", "", "best-cost trajectories split at iteration %d: one run stopped sampling", p.Iteration)
	}
}

// compareExtraction diffs the decision traces: total cost, contested-class
// counts, winner flips per e-class, and the data-movement census.
func compareExtraction(d *Diff, base, cur *telemetry.ExtractionTrace) {
	if base == nil && cur == nil {
		return
	}
	if base == nil || cur == nil {
		side := d.BaseLabel
		if cur == nil {
			side = d.CurLabel
		}
		d.Notes = append(d.Notes,
			fmt.Sprintf("%s recorded no extraction trace; decision flips unavailable", side))
		return
	}
	ed := &ExtractionDiff{
		TotalCost: FPair{base.TotalCost, cur.TotalCost},
		Contested: Pair{int64(base.Contested), int64(cur.Contested)},
	}
	curBy := map[int]telemetry.ExtractionDecision{}
	for _, c := range cur.Decisions {
		curBy[c.Class] = c
	}
	for _, b := range base.Decisions {
		c, ok := curBy[b.Class]
		if !ok || b.Winner == c.Winner {
			continue
		}
		ed.Flips = append(ed.Flips, DecisionFlip{
			Class: b.Class, BaseWinner: b.Winner, CurWinner: c.Winner,
			BaseCost: b.WinnerCost, CurCost: c.WinnerCost,
		})
	}
	for _, m := range []struct {
		kind string
		b, c int
	}{
		{"literal", base.Literal, cur.Literal},
		{"contiguous", base.Contiguous, cur.Contiguous},
		{"shuffles", base.Shuffles, cur.Shuffles},
		{"selects", base.Selects, cur.Selects},
		{"gathers", base.Gathers, cur.Gathers},
		{"scalar lanes", base.ScalarLanes, cur.ScalarLanes},
	} {
		if m.b == 0 && m.c == 0 {
			continue
		}
		ed.Movement = append(ed.Movement, MovementDelta{Kind: m.kind, Count: Pair{int64(m.b), int64(m.c)}})
	}
	d.Extraction = ed

	if ed.TotalCost.Diverged() {
		d.diverge("extraction", "", "extracted cost %g → %g", ed.TotalCost.Base, ed.TotalCost.Cur)
	}
	for _, f := range ed.Flips {
		d.diverge("extraction", f.BaseWinner,
			"class %d winner flipped: %s (cost %g) → %s (cost %g)",
			f.Class, f.BaseWinner, f.BaseCost, f.CurWinner, f.CurCost)
	}
	if ed.Contested.Diverged() {
		d.diverge("extraction", "", "contested classes %d → %d", ed.Contested.Base, ed.Contested.Cur)
	}
	for _, m := range ed.Movement {
		if m.Count.Diverged() {
			d.diverge("movement", m.Kind, "%s %d → %d", m.Kind, m.Count.Base, m.Count.Cur)
		}
	}
}

// compareMemory diffs the e-graph peak footprints per component, falling
// back to scalar peak values when a side lacks a memory trace.
func compareMemory(d *Diff, base, cur Input) {
	bm, cm := traceMemory(base), traceMemory(cur)
	if bm == nil && cm == nil {
		comparePeakValues(d, base, cur)
		return
	}
	// Asymmetric comparisons (a traced side vs a value-only side) exclude
	// the journal ring from the traced side's peak: value-only baselines
	// are measured journal-off (the ring would count against the memory
	// gate), so comparing raw peaks would mis-attribute the flight
	// recorder's own footprint as a regression.
	oneSided := (bm == nil) != (cm == nil)
	adjusted := func(m *telemetry.MemoryTrace) int64 {
		if !oneSided {
			return m.PeakBytes
		}
		if jb := journalComponentBytes(m); jb > 0 {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"journal ring bytes (%d) excluded from the footprint comparison: the value-only side was measured journal-off", jb))
			return m.PeakBytes - jb
		}
		return m.PeakBytes
	}
	md := &MemoryDiff{}
	if bm != nil {
		md.PeakBytes.Base, md.PeakIteration.Base = adjusted(bm), int64(bm.PeakIteration)
	} else {
		md.PeakBytes.Base = base.PeakBytes
	}
	if cm != nil {
		md.PeakBytes.Cur, md.PeakIteration.Cur = adjusted(cm), int64(cm.PeakIteration)
	} else {
		md.PeakBytes.Cur = cur.PeakBytes
	}
	if bm != nil && cm != nil {
		curBy := map[string]telemetry.MemoryComponent{}
		var order []string
		for _, c := range cm.Components {
			curBy[c.Name] = c
			order = append(order, c.Name)
		}
		seen := map[string]bool{}
		for _, b := range bm.Components {
			seen[b.Name] = true
			c := curBy[b.Name]
			md.Components = append(md.Components, ComponentDelta{
				Component: b.Name,
				Entries:   Pair{int64(b.Entries), int64(c.Entries)},
				Bytes:     Pair{b.Bytes, c.Bytes},
			})
		}
		for _, name := range order {
			if !seen[name] {
				c := curBy[name]
				md.Components = append(md.Components, ComponentDelta{
					Component: name,
					Entries:   Pair{0, int64(c.Entries)},
					Bytes:     Pair{0, c.Bytes},
				})
			}
		}
	}
	d.Memory = md
	// A zero side means the value carrier predates the metric (the same
	// no-baseline rule the bench gate applies): informational, never a
	// divergence.
	if md.PeakBytes.Diverged() && md.PeakBytes.Base != 0 && md.PeakBytes.Cur != 0 {
		d.diverge("memory", "", "peak e-graph footprint %d → %d bytes (%+d)",
			md.PeakBytes.Base, md.PeakBytes.Cur, md.PeakBytes.Delta())
	}
	for _, c := range md.Components {
		if c.Bytes.Diverged() || c.Entries.Diverged() {
			d.diverge("memory", c.Component, "component %s: %d entries / %d bytes → %d / %d",
				c.Component, c.Entries.Base, c.Bytes.Base, c.Entries.Cur, c.Bytes.Cur)
		}
	}
}

// comparePeakValues diffs the scalar peak-footprint values when at most
// one side has a full memory trace.
func comparePeakValues(d *Diff, base, cur Input) {
	b, c := peakBytes(base), peakBytes(cur)
	if b == 0 && c == 0 {
		return
	}
	if d.Memory == nil {
		d.Memory = &MemoryDiff{PeakBytes: Pair{b, c}}
	}
	if b != c && b != 0 && c != 0 {
		d.diverge("memory", "", "peak e-graph footprint %d → %d bytes (%+d)", b, c, c-b)
	}
}

// journalComponentBytes returns the footprint share of the journal ring
// at the peak (0 when the run had no journal).
func journalComponentBytes(m *telemetry.MemoryTrace) int64 {
	for _, c := range m.Components {
		if c.Name == "journal" {
			return c.Bytes
		}
	}
	return 0
}

// traceMemory returns the side's memory trace, if any.
func traceMemory(in Input) *telemetry.MemoryTrace {
	if in.Trace == nil {
		return nil
	}
	return in.Trace.Memory
}

// peakBytes resolves the side's peak footprint from the trace or the
// value-only field.
func peakBytes(in Input) int64 {
	if m := traceMemory(in); m != nil {
		return m.PeakBytes
	}
	return in.PeakBytes
}

// compareCycles diffs the simulated cycle profiles per opcode and slot.
func compareCycles(d *Diff, base, cur Input) {
	bc, cc := totalCycles(base), totalCycles(cur)
	if bc == 0 && cc == 0 {
		return
	}
	cd := &CycleDiff{Total: Pair{bc, cc}}
	bp, cp := base.Profile, cur.Profile
	if bp != nil && cp != nil {
		cd.OperandStall = Pair{bp.OperandStall, cp.OperandStall}
		cd.MemoryStall = Pair{bp.MemoryStall, cp.MemoryStall}
		cd.BranchBubble = Pair{bp.BranchBubble, cp.BranchBubble}

		curOps := map[string]sim.OpProfile{}
		var curOrder []string
		for _, o := range cp.PerOp {
			curOps[o.Op] = o
			curOrder = append(curOrder, o.Op)
		}
		seen := map[string]bool{}
		for _, b := range bp.PerOp {
			seen[b.Op] = true
			c, ok := curOps[b.Op]
			od := OpDelta{
				Op:     b.Op,
				Count:  Pair{b.Count, c.Count},
				Cycles: Pair{b.Cycles, c.Cycles},
				Stall:  Pair{b.Stall, c.Stall},
			}
			if !ok {
				od.OnlyIn = "baseline"
			}
			cd.Ops = append(cd.Ops, od)
		}
		for _, op := range curOrder {
			if !seen[op] {
				c := curOps[op]
				cd.Ops = append(cd.Ops, OpDelta{
					Op: op, OnlyIn: "current",
					Count: Pair{0, c.Count}, Cycles: Pair{0, c.Cycles}, Stall: Pair{0, c.Stall},
				})
			}
		}
		curSlots := map[string]sim.SlotProfile{}
		for _, s := range cp.Slots {
			curSlots[s.Slot] = s
		}
		for _, b := range bp.Slots {
			c := curSlots[b.Slot]
			cd.Slots = append(cd.Slots, SlotDelta{
				Slot: b.Slot, Issued: Pair{b.Issued, c.Issued}, Cycles: Pair{b.Cycles, c.Cycles},
			})
		}
	} else if bp == nil && cp == nil {
		d.Notes = append(d.Notes, "neither artifact carries a cycle profile; comparing total cycles only")
	} else {
		side := d.BaseLabel
		if cp == nil {
			side = d.CurLabel
		}
		d.Notes = append(d.Notes,
			fmt.Sprintf("%s carries no cycle profile; per-opcode deltas unavailable", side))
	}
	d.Cycles = cd

	if cd.Total.Diverged() && bc != 0 && cc != 0 {
		d.diverge("cycles", "", "simulated cycles %d → %d (%+d, %+.1f%%)",
			bc, cc, cc-bc, 100*float64(cc-bc)/float64(bc))
	}
	for _, o := range cd.Ops {
		if o.Count.Diverged() || o.Cycles.Diverged() || o.Stall.Diverged() {
			d.diverge("cycles", o.Op, "opcode %s: count %d → %d, cycles %d → %d, stall %d → %d",
				o.Op, o.Count.Base, o.Count.Cur, o.Cycles.Base, o.Cycles.Cur,
				o.Stall.Base, o.Stall.Cur)
		}
	}
	for _, s := range cd.Slots {
		if s.Issued.Diverged() || s.Cycles.Diverged() {
			d.diverge("cycles", s.Slot, "slot %s: issued %d → %d, cycles %d → %d",
				s.Slot, s.Issued.Base, s.Issued.Cur, s.Cycles.Base, s.Cycles.Cur)
		}
	}
}

// totalCycles resolves the side's total simulated cycles from the
// value-only field or the profile.
func totalCycles(in Input) int64 {
	if in.Cycles != 0 {
		return in.Cycles
	}
	if in.Profile != nil {
		return in.Profile.Cycles
	}
	return 0
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
