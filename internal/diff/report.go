package diff

import (
	"bytes"
	_ "embed"
	"fmt"
	"html/template"
	"time"

	"diospyros/internal/telemetry"
)

// The side-by-side HTML autopsy: a self-contained page for one Diff —
// verdict banner, attributed divergence list, overlaid best-cost and
// e-graph-size trajectories (baseline vs current on one chart), the stage
// waterfall, and the diverged rule/extraction/memory/cycle tables. Charts
// come from the shared telemetry line-chart machinery (telemetry.ChartHTML)
// so this report, the compile report, and the soak report render from one
// SVG template.

//go:embed diff.tmpl.html
var diffTmplSrc string

var diffTmpl = template.Must(template.New("diff").
	Funcs(telemetry.ChartTemplateFuncs).
	Funcs(template.FuncMap{
		// dur renders a nanosecond reading as a rounded duration string.
		"dur": func(ns int64) string { return roundNS(ns).String() },
		// mulpct renders a 0..1 ratio as a percentage number.
		"mulpct": func(v float64) float64 { return v * 100 },
	}).
	Parse(diffTmplSrc))

// reportView is the template model; everything is precomputed in Go so the
// template stays logic-free.
type reportView struct {
	D           *Diff
	GeneratedAt string
	ChartCSS    template.CSS
	CostChart   template.HTML // baseline vs current best-cost trajectories
	SizeChart   template.HTML // baseline vs current node-count trajectories
	Diverged    []RuleDelta   // rules with semantic deltas, pre-filtered
	Agreeing    int           // rules with identical counts
	DivergedOps []OpDelta     // opcode rows with semantic deltas
}

// Report renders the self-contained HTML autopsy for d. base and cur are
// the same Inputs given to Compare; their traces feed the trajectory
// charts (sections a side lacks are simply omitted).
func Report(d *Diff, base, cur Input) ([]byte, error) {
	v := &reportView{
		D:           d,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ChartCSS:    template.CSS(telemetry.ChartCSS),
	}
	var err error
	if v.CostChart, err = costChart(d, base.Trace, cur.Trace); err != nil {
		return nil, err
	}
	if v.SizeChart, err = sizeChart(d, base.Trace, cur.Trace); err != nil {
		return nil, err
	}
	for _, r := range d.Rules {
		if r.Diverged() {
			v.Diverged = append(v.Diverged, r)
		} else {
			v.Agreeing++
		}
	}
	if d.Cycles != nil {
		for _, o := range d.Cycles.Ops {
			if o.Count.Diverged() || o.Cycles.Diverged() || o.Stall.Diverged() {
				v.DivergedOps = append(v.DivergedOps, o)
			}
		}
	}
	var b bytes.Buffer
	if err := diffTmpl.Execute(&b, v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// costChart overlays the two best-cost trajectories on one lane, baseline
// in series-1, current in series-2, so the split iteration is visible as
// the point where the lines part.
func costChart(d *Diff, base, cur *telemetry.Trace) (template.HTML, error) {
	bXs, bYs := costSeries(base)
	cXs, cYs := costSeries(cur)
	if len(bXs) < 2 && len(cXs) < 2 {
		return "", nil
	}
	xs := longer(bXs, cXs)
	hi := 0.0
	for _, y := range append(append([]float64{}, bYs...), cYs...) {
		hi = max(hi, y)
	}
	c := telemetry.NewLineChart(xs)
	c.XLabel = "iteration"
	c.SetYRange(0, hi*1.05)
	if len(bXs) >= 2 {
		c.AddSeries(d.BaseLabel, "s1", bXs, bYs, func(i int) string {
			return fmt.Sprintf("iteration %.0f: cost %.2f", bXs[i], bYs[i])
		})
	}
	if len(cXs) >= 2 {
		c.AddSeries(d.CurLabel, "s2", cXs, cYs, func(i int) string {
			return fmt.Sprintf("iteration %.0f: cost %.2f", cXs[i], cYs[i])
		})
	}
	c.Legend = true
	return telemetry.ChartHTML(c.LineChart)
}

// sizeChart overlays the two node-count trajectories.
func sizeChart(d *Diff, base, cur *telemetry.Trace) (template.HTML, error) {
	bXs, bYs := nodeSeries(base)
	cXs, cYs := nodeSeries(cur)
	if len(bXs) < 2 && len(cXs) < 2 {
		return "", nil
	}
	xs := longer(bXs, cXs)
	hi := 0.0
	for _, y := range append(append([]float64{}, bYs...), cYs...) {
		hi = max(hi, y)
	}
	c := telemetry.NewLineChart(xs)
	c.XLabel = "iteration"
	c.SetYRange(0, hi*1.05)
	if len(bXs) >= 2 {
		c.AddSeries(d.BaseLabel, "s1", bXs, bYs, func(i int) string {
			return fmt.Sprintf("iteration %.0f: %.0f nodes", bXs[i], bYs[i])
		})
	}
	if len(cXs) >= 2 {
		c.AddSeries(d.CurLabel, "s2", cXs, cYs, func(i int) string {
			return fmt.Sprintf("iteration %.0f: %.0f nodes", cXs[i], cYs[i])
		})
	}
	c.Legend = true
	return telemetry.ChartHTML(c.LineChart)
}

// costSeries extracts the best-cost trajectory as chart series.
func costSeries(t *telemetry.Trace) (xs, ys []float64) {
	if t == nil || t.Search == nil {
		return nil, nil
	}
	for _, p := range t.Search.BestCost {
		xs = append(xs, float64(p.Iteration))
		ys = append(ys, p.Cost)
	}
	return xs, ys
}

// nodeSeries extracts the node-count trajectory as chart series.
func nodeSeries(t *telemetry.Trace) (xs, ys []float64) {
	if t == nil {
		return nil, nil
	}
	for _, g := range t.Iterations {
		xs = append(xs, float64(g.Iteration))
		ys = append(ys, float64(g.Nodes))
	}
	return xs, ys
}

// longer returns whichever x-axis spans more points, so the chart covers
// both trajectories.
func longer(a, b []float64) []float64 {
	if len(a) >= len(b) {
		return a
	}
	return b
}
