package diff_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/bench"
	"diospyros/internal/diff"
	"diospyros/internal/egraph"
)

// TestSelfDiffEmptyAcrossSuite is the tentpole's suite-wide invariant: every
// kernel of the 21-kernel suite, compiled with the journal armed, self-diffs
// empty — against itself and across -match-workers 1 vs 8. Any divergence
// here means either the determinism contract (DESIGN.md §9) broke or the
// diff is counting an informational field as semantic.
func TestSelfDiffEmptyAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	compileAt := func(k bench.Kernel, workers int) diff.Input {
		jr := egraph.NewJournal(0)
		res, err := diospyros.Compile(k.Lift(), diospyros.Options{
			Timeout:      time.Minute,
			MatchWorkers: workers,
			Journal:      jr,
		})
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", k.ID, workers, err)
		}
		in := diff.Input{
			Label:  fmt.Sprintf("workers=%d", workers),
			Kernel: k.ID,
			Trace:  res.Trace,
		}
		if res.Program != nil {
			if _, sres, err := res.Run(k.Inputs(rand.New(rand.NewSource(1))), nil); err == nil {
				in.Profile = sres.Profile
				in.Cycles = sres.Cycles
			}
		}
		return in
	}
	for _, k := range bench.Suite() {
		serial := compileAt(k, 1)
		parallel := compileAt(k, 8)
		if d := diff.Compare(serial, serial); !d.Empty() {
			t.Errorf("%s: self-diff not empty:\n%s", k.ID, d.Format())
		}
		if d := diff.Compare(serial, parallel); !d.Empty() {
			t.Errorf("%s: workers=1 vs workers=8 diverged:\n%s", k.ID, d.Format())
		}
	}
}
