package expr

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		e    *Expr
		want string
	}{
		{Lit(1.5), "1.5"},
		{Zero(), "0"},
		{Sym("x"), "x"},
		{Get("a", 3), "(Get a 3)"},
		{Add(Get("a", 0), Get("b", 0)), "(+ (Get a 0) (Get b 0))"},
		{Sub(Sym("x"), Lit(2)), "(- x 2)"},
		{Mul(Sym("x"), Sym("y")), "(* x y)"},
		{Div(Lit(1), Sym("x")), "(/ 1 x)"},
		{Neg(Sym("x")), "(neg x)"},
		{Sqrt(Sym("x")), "(sqrt x)"},
		{Sgn(Sym("x")), "(sgn x)"},
		{Func("f", Sym("x"), Sym("y")), "(func f x y)"},
		{Vec(Lit(0), Lit(1)), "(Vec 0 1)"},
		{Concat(Vec(Lit(0)), Vec(Lit(1))), "(Concat (Vec 0) (Vec 1))"},
		{VecAdd(Vec(Sym("a")), Vec(Sym("b"))), "(VecAdd (Vec a) (Vec b))"},
		{VecMAC(Vec(Sym("a")), Vec(Sym("b")), Vec(Sym("c"))), "(VecMAC (Vec a) (Vec b) (Vec c))"},
		{List(Lit(1), Lit(2)), "(List 1 2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)))",
		"(Concat (Vec (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1))) (Vec 0 0))",
		"(VecMAC (Vec 0 0 0 0) (Vec (Get i 6) (Get i 7) (Get i 8) (Get i 9)) (Vec (Get f 0) (Get f 0) (Get f 0) (Get f 0)))",
		"(func sq (Get a 0))",
		"(VecFunc sq (Vec (Get a 0)))",
		"(sgn (sqrt (neg x)))",
		"(/ (Get a 0) (- (Get a 1) 3.25))",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := e.String(); got != src {
			t.Errorf("round trip: got %q, want %q", got, src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"()",
		"(+ 1)",
		"(+ 1 2 3)",
		"(Unknown 1 2)",
		"(Get a)",
		"(Get a x)",
		"(Vec)",
		"(List)",
		"(+ 1 2) extra",
		"(VecMAC (Vec 0) (Vec 0))",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// genExpr builds a random scalar expression over arrays a,b and symbol x.
func genExpr(r *rand.Rand, depth int) *Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return Lit(float64(r.Intn(7)) - 3)
		case 1:
			return Sym("x")
		case 2:
			return Get("a", r.Intn(8))
		default:
			return Get("b", r.Intn(8))
		}
	}
	switch r.Intn(7) {
	case 0:
		return Add(genExpr(r, depth-1), genExpr(r, depth-1))
	case 1:
		return Sub(genExpr(r, depth-1), genExpr(r, depth-1))
	case 2:
		return Mul(genExpr(r, depth-1), genExpr(r, depth-1))
	case 3:
		return Div(genExpr(r, depth-1), genExpr(r, depth-1))
	case 4:
		return Neg(genExpr(r, depth-1))
	case 5:
		return Sqrt(genExpr(r, depth-1))
	default:
		return Sgn(genExpr(r, depth-1))
	}
}

func TestPropertyParsePrintIdentity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(v ref) bool {
		s := v.E.String()
		parsed, err := Parse(s)
		if err != nil {
			return false
		}
		return parsed.Equal(v.E) && parsed.String() == s
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// ref wraps *Expr so testing/quick can generate random expressions.
type ref struct{ E *Expr }

func (ref) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(ref{genExpr(r, 4)})
}

func TestEvalScalarOps(t *testing.T) {
	env := NewEnv()
	env.Scalars["x"] = 2
	env.Arrays["a"] = []float64{10, 20, 30}
	cases := []struct {
		src  string
		want float64
	}{
		{"(+ x 3)", 5},
		{"(- x 3)", -1},
		{"(* x 3)", 6},
		{"(/ x 4)", 0.5},
		{"(neg x)", -2},
		{"(sqrt 9)", 3},
		{"(sgn -5)", -1},
		{"(sgn 0)", 1},
		{"(sgn 7)", 1},
		{"(Get a 1)", 20},
	}
	for _, c := range cases {
		v, err := MustParse(c.src).Eval(env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if v.IsVec || v.Scalar != c.want {
			t.Errorf("Eval(%q) = %v, want %g", c.src, v, c.want)
		}
	}
}

func TestEvalVectorOps(t *testing.T) {
	env := NewEnv()
	env.Arrays["a"] = []float64{1, 2, 3, 4}
	env.Arrays["b"] = []float64{10, 20, 30, 40}
	cases := []struct {
		src  string
		want []float64
	}{
		{"(Vec (Get a 0) (Get a 1))", []float64{1, 2}},
		{"(Concat (Vec 1 2) (Vec 3 4))", []float64{1, 2, 3, 4}},
		{"(VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)))", []float64{11, 22}},
		{"(VecMinus (Vec (Get b 0) (Get b 1)) (Vec (Get a 0) (Get a 1)))", []float64{9, 18}},
		{"(VecMul (Vec 2 3) (Vec 4 5))", []float64{8, 15}},
		{"(VecDiv (Vec 8 9) (Vec 2 3))", []float64{4, 3}},
		{"(VecMAC (Vec 1 1) (Vec 2 3) (Vec 10 10))", []float64{21, 31}},
		{"(VecNeg (Vec 1 -2))", []float64{-1, 2}},
		{"(VecSqrt (Vec 4 9))", []float64{2, 3}},
		{"(VecSgn (Vec -4 0))", []float64{-1, 1}},
		{"(List (+ 1 2) (* 2 3))", []float64{3, 6}},
	}
	for _, c := range cases {
		v, err := MustParse(c.src).Eval(env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if !v.IsVec {
			t.Fatalf("Eval(%q) returned scalar %v", c.src, v.Scalar)
		}
		if len(v.Elems) != len(c.want) {
			t.Fatalf("Eval(%q) len = %d, want %d", c.src, len(v.Elems), len(c.want))
		}
		for i := range c.want {
			if math.Abs(v.Elems[i]-c.want[i]) > 1e-12 {
				t.Errorf("Eval(%q)[%d] = %g, want %g", c.src, i, v.Elems[i], c.want[i])
			}
		}
	}
}

func TestEvalUninterpretedFunc(t *testing.T) {
	env := NewEnv()
	env.Funcs["sq"] = func(args []float64) float64 { return args[0] * args[0] }
	v, err := MustParse("(func sq 3)").Eval(env)
	if err != nil || v.Scalar != 9 {
		t.Fatalf("(func sq 3) = %v, %v; want 9", v, err)
	}
	v, err = MustParse("(VecFunc sq (Vec 2 3))").Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v.Elems[0] != 4 || v.Elems[1] != 9 {
		t.Fatalf("VecFunc sq = %v", v.Elems)
	}
	if _, err := MustParse("(func nosuch 3)").Eval(env); err == nil {
		t.Error("expected error for missing function semantics")
	}
}

func TestEvalErrors(t *testing.T) {
	env := NewEnv()
	env.Arrays["a"] = []float64{1}
	bad := []string{
		"y",
		"(Get nosuch 0)",
		"(Get a 5)",
		"(VecAdd (Vec 1 2) (Vec 1))",
		"(VecMAC (Vec 1) (Vec 1 2) (Vec 1))",
	}
	for _, src := range bad {
		if _, err := MustParse(src).Eval(env); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestVectorEquivalentBijection(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if vop, ok := op.VectorEquivalent(); ok {
			back, ok2 := vop.ScalarEquivalent()
			if !ok2 || back != op {
				t.Errorf("round trip failed for %s -> %s -> %s", op, vop, back)
			}
		}
	}
}

func TestOutputLen(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"(+ 1 2)", 1},
		{"(Vec 1 2 3 4)", 4},
		{"(Concat (Vec 1 2) (Vec 3 4))", 4},
		{"(List 1 2 3)", 3},
		{"(VecAdd (Vec 1 2) (Vec 3 4))", 2},
		{"(VecMAC (Vec 1 2 3) (Vec 1 2 3) (Vec 1 2 3))", 3},
		{"(List (Vec 1 2) (Vec 3 4))", 4},
	}
	for _, c := range cases {
		if got := MustParse(c.src).OutputLen(); got != c.want {
			t.Errorf("OutputLen(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestSizeDepthWalkClone(t *testing.T) {
	e := MustParse("(+ (* (Get a 0) (Get f 1)) (* (Get a 1) (Get f 0)))")
	if e.Size() != 7 {
		t.Errorf("Size = %d, want 7", e.Size())
	}
	if e.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", e.Depth())
	}
	count := 0
	e.Walk(func(*Expr) bool { count++; return true })
	if count != 7 {
		t.Errorf("Walk visited %d nodes, want 7", count)
	}
	// Walk with pruning stops descent.
	count = 0
	e.Walk(func(x *Expr) bool { count++; return x.Op == OpAdd })
	if count != 3 {
		t.Errorf("pruned Walk visited %d nodes, want 3", count)
	}
	c := e.Clone()
	if !c.Equal(e) {
		t.Error("Clone not equal to original")
	}
	c.Args[0].Op = OpSub
	if c.Equal(e) {
		t.Error("mutating clone affected original (shared structure)")
	}
}

func TestPretty(t *testing.T) {
	e := MustParse("(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)))")
	p := Pretty(e)
	if !strings.Contains(p, "(List\n") {
		t.Errorf("Pretty output missing multi-line list:\n%s", p)
	}
	if !strings.Contains(p, "(+ (Get a 0) (Get b 0))") {
		t.Errorf("Pretty output missing inline small terms:\n%s", p)
	}
}
