package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses an s-expression in the syntax produced by (*Expr).String.
// It accepts the full vector DSL of Figure 3.
func Parse(src string) (*Expr, error) {
	p := &sexpParser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("expr: trailing input at offset %d", p.pos)
	}
	return e, nil
}

// MustParse is Parse but panics on error; it is intended for tests and
// package-internal constant expressions.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type sexpParser struct {
	src string
	pos int
}

func (p *sexpParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		p.pos++
	}
}

func (p *sexpParser) parseExpr() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("expr: unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		return p.parseForm()
	}
	tok := p.token()
	if tok == "" {
		return nil, fmt.Errorf("expr: unexpected character %q at offset %d", p.src[p.pos], p.pos)
	}
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		return Lit(v), nil
	}
	return Sym(tok), nil
}

func (p *sexpParser) token() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

var headOps = func() map[string]Op {
	m := map[string]Op{}
	for op := Op(0); op < NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *sexpParser) parseForm() (*Expr, error) {
	p.skipSpace()
	head := p.token()
	if head == "" {
		return nil, fmt.Errorf("expr: empty form head at offset %d", p.pos)
	}
	op, ok := headOps[head]
	if !ok {
		return nil, fmt.Errorf("expr: unknown operator %q", head)
	}
	e := &Expr{Op: op}
	switch op {
	case OpGet:
		p.skipSpace()
		e.Sym = p.token()
		if e.Sym == "" {
			return nil, fmt.Errorf("expr: Get missing array name")
		}
		p.skipSpace()
		idxTok := p.token()
		idx, err := strconv.Atoi(idxTok)
		if err != nil {
			return nil, fmt.Errorf("expr: Get index %q: %v", idxTok, err)
		}
		e.Idx = idx
	case OpFunc, OpVecFunc:
		p.skipSpace()
		e.Sym = p.token()
		if e.Sym == "" {
			return nil, fmt.Errorf("expr: %s missing function name", op)
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		e.Args = args
	case OpLit, OpSym:
		return nil, fmt.Errorf("expr: %q is not a form head", head)
	default:
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		e.Args = args
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, fmt.Errorf("expr: missing ')' for %s", head)
	}
	p.pos++
	if err := checkArity(e); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *sexpParser) parseArgs() ([]*Expr, error) {
	var args []*Expr
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("expr: unexpected end of input in form")
		}
		if p.src[p.pos] == ')' {
			return args, nil
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
}

// Arity returns the required argument count for fixed-arity operators and -1
// for variadic operators (Vec, List, Func, VecFunc).
func Arity(op Op) int {
	switch op {
	case OpLit, OpSym, OpGet:
		return 0
	case OpNeg, OpSqrt, OpSgn, OpVecNeg, OpVecSqrt, OpVecSgn:
		return 1
	case OpAdd, OpSub, OpMul, OpDiv, OpConcat,
		OpVecAdd, OpVecMinus, OpVecMul, OpVecDiv:
		return 2
	case OpVecMAC:
		return 3
	default:
		return -1
	}
}

func checkArity(e *Expr) error {
	want := Arity(e.Op)
	if want >= 0 && len(e.Args) != want {
		return fmt.Errorf("expr: %s expects %d args, got %d", e.Op, want, len(e.Args))
	}
	if (e.Op == OpVec || e.Op == OpList) && len(e.Args) == 0 {
		return fmt.Errorf("expr: %s expects at least one arg", e.Op)
	}
	return nil
}

// ParseList is a convenience for parsing several whitespace-separated
// expressions (used by test fixtures).
func ParseList(src string) ([]*Expr, error) {
	p := &sexpParser{src: src}
	var out []*Expr
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return out, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// Pretty renders an expression with indentation, for diagnostics and the
// compiler's -dump flags.
func Pretty(e *Expr) string {
	var b strings.Builder
	pretty(&b, e, 0)
	return b.String()
}

func pretty(b *strings.Builder, e *Expr, depth int) {
	indent := strings.Repeat("  ", depth)
	if e == nil {
		b.WriteString(indent + "<nil>\n")
		return
	}
	switch e.Op {
	case OpLit, OpSym, OpGet:
		b.WriteString(indent + e.String() + "\n")
	default:
		if e.Size() <= 8 {
			b.WriteString(indent + e.String() + "\n")
			return
		}
		head := e.Op.String()
		if e.Op == OpFunc || e.Op == OpVecFunc {
			head += " " + e.Sym
		}
		b.WriteString(indent + "(" + head + "\n")
		for _, a := range e.Args {
			pretty(b, a, depth+1)
		}
		b.WriteString(indent + ")\n")
	}
}
