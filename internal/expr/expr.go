// Package expr defines Diospyros's vector DSL: the abstract language that
// scalar kernels are lifted into and that the equality-saturation engine
// rewrites (Figure 3 of the paper).
//
// A top-level program is a (possibly singleton) List of outputs. Expressions
// operate over both scalars and vectors:
//
//	prog   ::= (List expr+) | expr
//	scalar ::= lit | sym | (Get arr i)
//	        | (+ s s) | (- s s) | (* s s) | (/ s s)
//	        | (neg s) | (sqrt s) | (sgn s) | (func f s*)
//	vector ::= (Vec scalar+) | (Concat v v)
//	        | (VecAdd v v) | (VecMinus v v) | (VecMul v v) | (VecDiv v v)
//	        | (VecMAC v v v) | (VecNeg v) | (VecSqrt v) | (VecSgn v)
//	        | (VecFunc f v*)
//
// Get is flattened 1-D access into a named input memory (2-D arrays are
// flattened row-major before lifting).
package expr

import (
	"fmt"
	"math"
	"strings"
)

// Op identifies a DSL operator.
type Op uint8

// DSL operators. Scalar operators come first, then vector operators.
const (
	// Terminals.
	OpLit Op = iota // floating-point literal (payload Lit)
	OpSym           // free scalar variable (payload Sym)
	OpGet           // element of a named input memory (payload Sym, Idx)

	// Scalar arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpNeg
	OpSqrt
	OpSgn
	OpFunc // uninterpreted user-defined scalar function (payload Sym)

	// Vector constructors and data movement.
	OpVec    // machine-width vector of scalar lanes
	OpConcat // concatenation of two vector-valued expressions

	// Vector arithmetic.
	OpVecAdd
	OpVecMinus
	OpVecMul
	OpVecDiv
	OpVecMAC // fused multiply–accumulate: acc + b*c, elementwise
	OpVecNeg
	OpVecSqrt
	OpVecSgn
	OpVecFunc // uninterpreted vector function (payload Sym)

	// Top-level output list of scalar elements.
	OpList

	// NumOps is the number of distinct operators (for table sizing).
	NumOps
)

var opNames = [NumOps]string{
	OpLit:      "lit",
	OpSym:      "sym",
	OpGet:      "Get",
	OpAdd:      "+",
	OpSub:      "-",
	OpMul:      "*",
	OpDiv:      "/",
	OpNeg:      "neg",
	OpSqrt:     "sqrt",
	OpSgn:      "sgn",
	OpFunc:     "func",
	OpVec:      "Vec",
	OpConcat:   "Concat",
	OpVecAdd:   "VecAdd",
	OpVecMinus: "VecMinus",
	OpVecMul:   "VecMul",
	OpVecDiv:   "VecDiv",
	OpVecMAC:   "VecMAC",
	OpVecNeg:   "VecNeg",
	OpVecSqrt:  "VecSqrt",
	OpVecSgn:   "VecSgn",
	OpVecFunc:  "VecFunc",
	OpList:     "List",
}

// String returns the operator's s-expression head symbol.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsVector reports whether the operator produces a vector or list value.
func (o Op) IsVector() bool {
	switch o {
	case OpVec, OpConcat, OpVecAdd, OpVecMinus, OpVecMul, OpVecDiv,
		OpVecMAC, OpVecNeg, OpVecSqrt, OpVecSgn, OpVecFunc, OpList:
		return true
	}
	return false
}

// IsScalarArith reports whether the operator is a scalar arithmetic operator
// (excluding terminals).
func (o Op) IsScalarArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpNeg, OpSqrt, OpSgn, OpFunc:
		return true
	}
	return false
}

// VectorEquivalent returns the vector operator corresponding to a scalar
// arithmetic operator, and whether one exists.
func (o Op) VectorEquivalent() (Op, bool) {
	switch o {
	case OpAdd:
		return OpVecAdd, true
	case OpSub:
		return OpVecMinus, true
	case OpMul:
		return OpVecMul, true
	case OpDiv:
		return OpVecDiv, true
	case OpNeg:
		return OpVecNeg, true
	case OpSqrt:
		return OpVecSqrt, true
	case OpSgn:
		return OpVecSgn, true
	case OpFunc:
		return OpVecFunc, true
	}
	return 0, false
}

// ScalarEquivalent is the inverse of VectorEquivalent.
func (o Op) ScalarEquivalent() (Op, bool) {
	switch o {
	case OpVecAdd:
		return OpAdd, true
	case OpVecMinus:
		return OpSub, true
	case OpVecMul:
		return OpMul, true
	case OpVecDiv:
		return OpDiv, true
	case OpVecNeg:
		return OpNeg, true
	case OpVecSqrt:
		return OpSqrt, true
	case OpVecSgn:
		return OpSgn, true
	case OpVecFunc:
		return OpFunc, true
	}
	return 0, false
}

// Expr is a node in a DSL expression tree. Expressions are immutable by
// convention: helpers never mutate their arguments.
type Expr struct {
	Op   Op
	Lit  float64 // payload for OpLit
	Sym  string  // payload for OpSym, OpGet (array name), OpFunc, OpVecFunc
	Idx  int     // payload for OpGet (flattened element index)
	Args []*Expr
}

// Lit constructs a literal.
func Lit(v float64) *Expr { return &Expr{Op: OpLit, Lit: v} }

// Zero is the literal 0, used pervasively for lane padding.
func Zero() *Expr { return Lit(0) }

// Sym constructs a free scalar variable.
func Sym(name string) *Expr { return &Expr{Op: OpSym, Sym: name} }

// Get constructs an element access into named input memory arr at flat index i.
func Get(arr string, i int) *Expr { return &Expr{Op: OpGet, Sym: arr, Idx: i} }

// Add, Sub, Mul, Div, Neg, Sqrt and Sgn construct scalar arithmetic nodes.
func Add(a, b *Expr) *Expr { return &Expr{Op: OpAdd, Args: []*Expr{a, b}} }
func Sub(a, b *Expr) *Expr { return &Expr{Op: OpSub, Args: []*Expr{a, b}} }
func Mul(a, b *Expr) *Expr { return &Expr{Op: OpMul, Args: []*Expr{a, b}} }
func Div(a, b *Expr) *Expr { return &Expr{Op: OpDiv, Args: []*Expr{a, b}} }
func Neg(a *Expr) *Expr    { return &Expr{Op: OpNeg, Args: []*Expr{a}} }
func Sqrt(a *Expr) *Expr   { return &Expr{Op: OpSqrt, Args: []*Expr{a}} }
func Sgn(a *Expr) *Expr    { return &Expr{Op: OpSgn, Args: []*Expr{a}} }

// Func constructs a call to an uninterpreted scalar function.
func Func(name string, args ...*Expr) *Expr {
	return &Expr{Op: OpFunc, Sym: name, Args: args}
}

// Vec constructs a vector from scalar lanes.
func Vec(lanes ...*Expr) *Expr { return &Expr{Op: OpVec, Args: lanes} }

// Concat concatenates two vector-valued expressions.
func Concat(a, b *Expr) *Expr { return &Expr{Op: OpConcat, Args: []*Expr{a, b}} }

// VecAdd, VecMinus, VecMul, VecDiv, VecMAC, VecNeg, VecSqrt and VecSgn
// construct elementwise vector arithmetic nodes.
func VecAdd(a, b *Expr) *Expr   { return &Expr{Op: OpVecAdd, Args: []*Expr{a, b}} }
func VecMinus(a, b *Expr) *Expr { return &Expr{Op: OpVecMinus, Args: []*Expr{a, b}} }
func VecMul(a, b *Expr) *Expr   { return &Expr{Op: OpVecMul, Args: []*Expr{a, b}} }
func VecDiv(a, b *Expr) *Expr   { return &Expr{Op: OpVecDiv, Args: []*Expr{a, b}} }
func VecMAC(acc, b, c *Expr) *Expr {
	return &Expr{Op: OpVecMAC, Args: []*Expr{acc, b, c}}
}
func VecNeg(a *Expr) *Expr  { return &Expr{Op: OpVecNeg, Args: []*Expr{a}} }
func VecSqrt(a *Expr) *Expr { return &Expr{Op: OpVecSqrt, Args: []*Expr{a}} }
func VecSgn(a *Expr) *Expr  { return &Expr{Op: OpVecSgn, Args: []*Expr{a}} }

// VecFunc constructs a call to an uninterpreted vector function.
func VecFunc(name string, args ...*Expr) *Expr {
	return &Expr{Op: OpVecFunc, Sym: name, Args: args}
}

// List constructs a top-level output list of scalar elements.
func List(elems ...*Expr) *Expr { return &Expr{Op: OpList, Args: elems} }

// IsZero reports whether e is the literal 0.
func (e *Expr) IsZero() bool { return e != nil && e.Op == OpLit && e.Lit == 0 }

// IsLit reports whether e is a literal with the given value.
func (e *Expr) IsLit(v float64) bool { return e != nil && e.Op == OpLit && e.Lit == v }

// Equal reports structural equality of two expressions.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return false
	}
	if e.Op != o.Op || e.Sym != o.Sym || e.Idx != o.Idx || len(e.Args) != len(o.Args) {
		return false
	}
	if e.Op == OpLit && !sameFloat(e.Lit, o.Lit) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Size returns the number of nodes in the tree.
func (e *Expr) Size() int {
	if e == nil {
		return 0
	}
	n := 1
	for _, a := range e.Args {
		n += a.Size()
	}
	return n
}

// Depth returns the height of the tree (a leaf has depth 1).
func (e *Expr) Depth() int {
	if e == nil {
		return 0
	}
	d := 0
	for _, a := range e.Args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return d + 1
}

// Walk calls f on e and all descendants, pre-order. If f returns false the
// subtree below the node is skipped.
func (e *Expr) Walk(f func(*Expr) bool) {
	if e == nil {
		return
	}
	if !f(e) {
		return
	}
	for _, a := range e.Args {
		a.Walk(f)
	}
}

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Op: e.Op, Lit: e.Lit, Sym: e.Sym, Idx: e.Idx}
	if len(e.Args) > 0 {
		c.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = a.Clone()
		}
	}
	return c
}

// String renders the expression in s-expression syntax; Parse inverts it.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	if e == nil {
		b.WriteString("<nil>")
		return
	}
	switch e.Op {
	case OpLit:
		fmt.Fprintf(b, "%g", e.Lit)
	case OpSym:
		b.WriteString(e.Sym)
	case OpGet:
		fmt.Fprintf(b, "(Get %s %d)", e.Sym, e.Idx)
	case OpFunc, OpVecFunc:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		b.WriteString(e.Sym)
		for _, a := range e.Args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		for _, a := range e.Args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// OutputLen returns the number of scalar elements a vector-valued expression
// produces, or 1 for a scalar expression.
func (e *Expr) OutputLen() int {
	switch e.Op {
	case OpList:
		n := 0
		for _, a := range e.Args {
			n += a.OutputLen()
		}
		return n
	case OpVec:
		return len(e.Args)
	case OpConcat:
		return e.Args[0].OutputLen() + e.Args[1].OutputLen()
	case OpVecAdd, OpVecMinus, OpVecMul, OpVecDiv, OpVecNeg, OpVecSqrt,
		OpVecSgn, OpVecMAC, OpVecFunc:
		return e.Args[0].OutputLen()
	default:
		return 1
	}
}
