package expr

import (
	"fmt"
	"math"
)

// Env supplies concrete values for the free terminals of an expression:
// scalar variables, input memories (flattened), and user-defined functions.
type Env struct {
	Scalars map[string]float64
	Arrays  map[string][]float64
	// Funcs gives concrete semantics to user-defined (otherwise
	// uninterpreted) functions, used for differential testing.
	Funcs map[string]func([]float64) float64
}

// NewEnv returns an empty environment ready for population.
func NewEnv() *Env {
	return &Env{
		Scalars: map[string]float64{},
		Arrays:  map[string][]float64{},
		Funcs:   map[string]func([]float64) float64{},
	}
}

// Value is the result of evaluating a DSL expression: either a scalar or a
// flat list of scalars (for Vec/Concat/List/vector-arith nodes).
type Value struct {
	Scalar float64
	Elems  []float64
	IsVec  bool
}

// AsSlice returns the value as a flat slice regardless of kind.
func (v Value) AsSlice() []float64 {
	if v.IsVec {
		return v.Elems
	}
	return []float64{v.Scalar}
}

// Eval evaluates the expression under env. Vector operators apply
// elementwise; Concat and List flatten. It returns an error on malformed
// programs (e.g. mismatched vector lengths) or missing bindings. Shared
// subterm pointers (expression DAGs) are evaluated once.
func (e *Expr) Eval(env *Env) (Value, error) {
	ev := &evaluator{env: env, memo: map[*Expr]Value{}}
	return ev.eval(e)
}

type evaluator struct {
	env  *Env
	memo map[*Expr]Value
}

func (ev *evaluator) eval(e *Expr) (Value, error) {
	if v, ok := ev.memo[e]; ok {
		return v, nil
	}
	v, err := ev.evalUncached(e)
	if err != nil {
		return Value{}, err
	}
	ev.memo[e] = v
	return v, nil
}

func (ev *evaluator) evalUncached(e *Expr) (Value, error) {
	env := ev.env
	switch e.Op {
	case OpLit:
		return Value{Scalar: e.Lit}, nil
	case OpSym:
		v, ok := env.Scalars[e.Sym]
		if !ok {
			return Value{}, fmt.Errorf("expr: unbound scalar %q", e.Sym)
		}
		return Value{Scalar: v}, nil
	case OpGet:
		arr, ok := env.Arrays[e.Sym]
		if !ok {
			return Value{}, fmt.Errorf("expr: unbound array %q", e.Sym)
		}
		if e.Idx < 0 || e.Idx >= len(arr) {
			return Value{}, fmt.Errorf("expr: (Get %s %d) out of bounds (len %d)", e.Sym, e.Idx, len(arr))
		}
		return Value{Scalar: arr[e.Idx]}, nil

	case OpAdd, OpSub, OpMul, OpDiv:
		a, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := ev.eval(e.Args[1])
		if err != nil {
			return Value{}, err
		}
		return Value{Scalar: scalarBinop(e.Op, a.Scalar, b.Scalar)}, nil

	case OpNeg, OpSqrt, OpSgn:
		a, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		return Value{Scalar: scalarUnop(e.Op, a.Scalar)}, nil

	case OpFunc:
		f, ok := env.Funcs[e.Sym]
		if !ok {
			return Value{}, fmt.Errorf("expr: no semantics for function %q", e.Sym)
		}
		args := make([]float64, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.eval(a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v.Scalar
		}
		return Value{Scalar: f(args)}, nil

	case OpVec, OpList:
		var out []float64
		for _, a := range e.Args {
			v, err := ev.eval(a)
			if err != nil {
				return Value{}, err
			}
			out = append(out, v.AsSlice()...)
		}
		return Value{Elems: out, IsVec: true}, nil

	case OpConcat:
		a, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := ev.eval(e.Args[1])
		if err != nil {
			return Value{}, err
		}
		return Value{Elems: append(append([]float64{}, a.AsSlice()...), b.AsSlice()...), IsVec: true}, nil

	case OpVecAdd, OpVecMinus, OpVecMul, OpVecDiv:
		op, _ := e.Op.ScalarEquivalent()
		a, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := ev.eval(e.Args[1])
		if err != nil {
			return Value{}, err
		}
		as, bs := a.AsSlice(), b.AsSlice()
		if len(as) != len(bs) {
			return Value{}, fmt.Errorf("expr: %s length mismatch %d vs %d", e.Op, len(as), len(bs))
		}
		out := make([]float64, len(as))
		for i := range as {
			out[i] = scalarBinop(op, as[i], bs[i])
		}
		return Value{Elems: out, IsVec: true}, nil

	case OpVecMAC:
		acc, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := ev.eval(e.Args[1])
		if err != nil {
			return Value{}, err
		}
		c, err := ev.eval(e.Args[2])
		if err != nil {
			return Value{}, err
		}
		as, bs, cs := acc.AsSlice(), b.AsSlice(), c.AsSlice()
		if len(as) != len(bs) || len(bs) != len(cs) {
			return Value{}, fmt.Errorf("expr: VecMAC length mismatch %d/%d/%d", len(as), len(bs), len(cs))
		}
		out := make([]float64, len(as))
		for i := range as {
			out[i] = as[i] + bs[i]*cs[i]
		}
		return Value{Elems: out, IsVec: true}, nil

	case OpVecNeg, OpVecSqrt, OpVecSgn:
		op, _ := e.Op.ScalarEquivalent()
		a, err := ev.eval(e.Args[0])
		if err != nil {
			return Value{}, err
		}
		as := a.AsSlice()
		out := make([]float64, len(as))
		for i := range as {
			out[i] = scalarUnop(op, as[i])
		}
		return Value{Elems: out, IsVec: true}, nil

	case OpVecFunc:
		f, ok := env.Funcs[e.Sym]
		if !ok {
			return Value{}, fmt.Errorf("expr: no semantics for function %q", e.Sym)
		}
		var argSlices [][]float64
		n := -1
		for _, a := range e.Args {
			v, err := ev.eval(a)
			if err != nil {
				return Value{}, err
			}
			s := v.AsSlice()
			if n == -1 {
				n = len(s)
			} else if len(s) != n {
				return Value{}, fmt.Errorf("expr: VecFunc %q length mismatch", e.Sym)
			}
			argSlices = append(argSlices, s)
		}
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			lane := make([]float64, len(argSlices))
			for j := range argSlices {
				lane[j] = argSlices[j][i]
			}
			out[i] = f(lane)
		}
		return Value{Elems: out, IsVec: true}, nil
	}
	return Value{}, fmt.Errorf("expr: cannot evaluate op %s", e.Op)
}

func scalarBinop(op Op, a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	}
	panic("expr: not a binop: " + op.String())
}

func scalarUnop(op Op, a float64) float64 {
	switch op {
	case OpNeg:
		return -a
	case OpSqrt:
		return math.Sqrt(a)
	case OpSgn:
		return Sign(a)
	}
	panic("expr: not a unop: " + op.String())
}

// Sign is the sgn function used by the DSL and the QR decomposition kernels:
// -1 for negative, +1 for zero or positive. (Householder reflections use the
// convention sgn(0)=1 so that the pivot never cancels.)
func Sign(a float64) float64 {
	if a < 0 {
		return -1
	}
	return 1
}
