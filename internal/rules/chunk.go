package rules

import (
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// chunkRule rewrites a List of n scalar elements into a right-nested Concat
// of ⌈n/W⌉ width-W Vecs, padding the final chunk with zeros (§3.2). The
// padded program computes the original outputs in its first n elements;
// the compiler records n and stores only that prefix.
type chunkRule struct {
	width int
}

func (chunkRule) Name() string { return "list-chunk" }

// RootOps declares the head-op filter for the dispatch index: chunking only
// matches at classes containing a List node.
func (chunkRule) RootOps() []expr.Op { return []expr.Op{expr.OpList} }

type chunkMatch struct {
	elems []egraph.ClassID
}

func (r chunkRule) Search(g *egraph.EGraph) []egraph.Match {
	return r.SearchClasses(g, g.CanonicalClasses())
}

// SearchClasses restricts the search to the given classes (read-only), so
// the runner can shard List matching across workers.
func (r chunkRule) SearchClasses(g *egraph.EGraph, classes []*egraph.EClass) []egraph.Match {
	var out []egraph.Match
	for _, cls := range classes {
		for _, n := range cls.Nodes {
			if n.Op == expr.OpList {
				out = append(out, egraph.Match{
					Class: cls.ID,
					Data:  chunkMatch{elems: append([]egraph.ClassID(nil), n.Args...)},
				})
			}
		}
	}
	return out
}

func (r chunkRule) Apply(g *egraph.EGraph, m egraph.Match) bool {
	cm := m.Data.(chunkMatch)
	zero := g.AddLit(0)

	var chunks []egraph.ClassID
	for start := 0; start < len(cm.elems); start += r.width {
		lanes := make([]egraph.ClassID, r.width)
		for i := 0; i < r.width; i++ {
			if start+i < len(cm.elems) {
				lanes[i] = cm.elems[start+i]
			} else {
				lanes[i] = zero
			}
		}
		chunks = append(chunks, g.Add(egraph.ENode{Op: expr.OpVec, Args: lanes}))
	}
	// Right-nest: Concat(c0, Concat(c1, ... cK)).
	root := chunks[len(chunks)-1]
	for i := len(chunks) - 2; i >= 0; i-- {
		root = g.Add(egraph.ENode{Op: expr.OpConcat, Args: []egraph.ClassID{chunks[i], root}})
	}
	_, changed := g.Union(m.Class, root)
	return changed
}
