package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/extract"
)

// saturateAndExtract runs the full rule set and extracts the best program.
func saturateAndExtract(t *testing.T, src string, cfg Config) (*expr.Expr, egraph.Report) {
	t.Helper()
	g := egraph.New()
	root := g.AddExpr(expr.MustParse(src))
	rep := egraph.Run(g, cfg.Rules(), egraph.Limits{MaxIterations: 30, MaxNodes: 200000})
	ex := extract.New(g, cost.Diospyros{Width: cfg.Width})
	out, err := ex.Expr(root)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return out, rep
}

func countOps(e *expr.Expr) map[expr.Op]int {
	m := map[expr.Op]int{}
	e.Walk(func(n *expr.Expr) bool { m[n.Op]++; return true })
	return m
}

// evalPrefix evaluates a program and returns its first n elements.
func evalPrefix(t *testing.T, e *expr.Expr, env *expr.Env, n int) []float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	s := v.AsSlice()
	if len(s) < n {
		t.Fatalf("program yields %d elements, want at least %d", len(s), n)
	}
	return s[:n]
}

func randEnv(r *rand.Rand, arrays map[string]int) *expr.Env {
	env := expr.NewEnv()
	for name, n := range arrays {
		a := make([]float64, n)
		for i := range a {
			a[i] = math.Round((r.Float64()*10-5)*16) / 16 // exact dyadics
		}
		env.Arrays[name] = a
	}
	return env
}

func TestVectorAddSpecFullyVectorizes(t *testing.T) {
	// The paper's §3.2 example: 4-element vector-vector add at width 4
	// becomes a single VecAdd of two contiguous loads.
	spec := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
	out, rep := saturateAndExtract(t, spec, Default(4))
	if !rep.Saturated() {
		t.Fatalf("did not saturate: %+v", rep)
	}
	ops := countOps(out)
	if ops[expr.OpVecAdd] != 1 {
		t.Fatalf("want exactly 1 VecAdd, got %d in %s", ops[expr.OpVecAdd], out)
	}
	if ops[expr.OpAdd] != 0 {
		t.Fatalf("scalar adds remain: %s", out)
	}
	// Semantics preserved.
	r := rand.New(rand.NewSource(1))
	env := randEnv(r, map[string]int{"a": 4, "b": 4})
	specE := expr.MustParse(spec)
	want := evalPrefix(t, specE, env, 4)
	got := evalPrefix(t, out, env, 4)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("lane %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestVectorAddWidth2Chunks(t *testing.T) {
	// §3.2 at width 2: the same spec becomes a Concat of two VecAdds.
	spec := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
	out, _ := saturateAndExtract(t, spec, Default(2))
	ops := countOps(out)
	if ops[expr.OpVecAdd] != 2 || ops[expr.OpConcat] != 1 {
		t.Fatalf("want 2 VecAdd under 1 Concat, got %v in %s", ops, out)
	}
}

func TestZeroPaddingVectorizes(t *testing.T) {
	// 3 outputs at width 4: the pad lane is 0 and must not block VecAdd
	// (the custom zero-tolerant matcher, §3.3).
	spec := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)))"
	out, _ := saturateAndExtract(t, spec, Default(4))
	ops := countOps(out)
	if ops[expr.OpVecAdd] != 1 || ops[expr.OpAdd] != 0 {
		t.Fatalf("ragged add not vectorized: %s", out)
	}
	// Padded lane must still evaluate to 0.
	r := rand.New(rand.NewSource(2))
	env := randEnv(r, map[string]int{"a": 3, "b": 3})
	got := evalPrefix(t, out, env, 4)
	if got[3] != 0 {
		t.Fatalf("pad lane = %g, want 0", got[3])
	}
}

func TestMACIntroduced(t *testing.T) {
	// Dot-product-style lanes: each output is a sum of two products, which
	// should become VecMul followed by VecMAC (or a MAC chain), with no
	// scalar ops left.
	spec := `(List
		(+ (* (Get a 0) (Get b 0)) (* (Get a 4) (Get b 4)))
		(+ (* (Get a 1) (Get b 1)) (* (Get a 5) (Get b 5)))
		(+ (* (Get a 2) (Get b 2)) (* (Get a 6) (Get b 6)))
		(+ (* (Get a 3) (Get b 3)) (* (Get a 7) (Get b 7))))`
	out, _ := saturateAndExtract(t, strings.ReplaceAll(spec, "\n", " "), Default(4))
	ops := countOps(out)
	if ops[expr.OpVecMAC] < 1 {
		t.Fatalf("no VecMAC introduced: %s", out)
	}
	if ops[expr.OpAdd] != 0 || ops[expr.OpMul] != 0 {
		t.Fatalf("scalar ops remain: %s", out)
	}
	r := rand.New(rand.NewSource(3))
	env := randEnv(r, map[string]int{"a": 8, "b": 8})
	specE := expr.MustParse(strings.ReplaceAll(spec, "\n", " "))
	want := evalPrefix(t, specE, env, 4)
	got := evalPrefix(t, out, env, 4)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("lane %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestRaggedMAC(t *testing.T) {
	// Lanes of uneven reduction depth (the paper's convolution boundary
	// conditions): lane 0 has one product, others have two or three.
	spec := `(List
		(* (Get a 0) (Get b 0))
		(+ (* (Get a 1) (Get b 1)) (* (Get a 5) (Get b 5)))
		(+ (+ (* (Get a 2) (Get b 2)) (* (Get a 6) (Get b 6))) (* (Get a 7) (Get b 7)))
		(+ (* (Get a 3) (Get b 3)) (* (Get a 4) (Get b 4))))`
	out, _ := saturateAndExtract(t, strings.ReplaceAll(spec, "\n", " "), Default(4))
	ops := countOps(out)
	if ops[expr.OpAdd] != 0 || ops[expr.OpMul] != 0 {
		t.Fatalf("ragged reduction not fully vectorized: %s", out)
	}
	r := rand.New(rand.NewSource(4))
	env := randEnv(r, map[string]int{"a": 8, "b": 8})
	specE := expr.MustParse(strings.ReplaceAll(spec, "\n", " "))
	want := evalPrefix(t, specE, env, 4)
	got := evalPrefix(t, out, env, 4)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("lane %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestUnaryVectorization(t *testing.T) {
	spec := "(List (sqrt (Get a 0)) (sqrt (Get a 1)) (sqrt (Get a 2)) (sqrt (Get a 3)))"
	out, _ := saturateAndExtract(t, spec, Default(4))
	ops := countOps(out)
	if ops[expr.OpVecSqrt] != 1 || ops[expr.OpSqrt] != 0 {
		t.Fatalf("sqrt not vectorized: %s", out)
	}
}

func TestSgnZeroLaneNotVectorized(t *testing.T) {
	// sgn(x) is never 0 under our semantics (sgn(0)=1), so a zero pad lane
	// must NOT be absorbed into VecSgn; the extracted program must still
	// evaluate correctly.
	spec := "(List (sgn (Get a 0)) (sgn (Get a 1)) (sgn (Get a 2)))"
	out, _ := saturateAndExtract(t, spec, Default(4))
	r := rand.New(rand.NewSource(5))
	env := randEnv(r, map[string]int{"a": 3})
	specE := expr.MustParse(spec)
	want := evalPrefix(t, specE, env, 3)
	got := evalPrefix(t, out, env, 3)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("lane %d: got %g want %g (program %s)", i, got[i], want[i], out)
		}
	}
	// The pad lane, if present, must be 0, not sgn(something).
	full := evalPrefix(t, out, env, out.OutputLen())
	if len(full) == 4 && full[3] != 0 {
		t.Fatalf("pad lane corrupted: %v from %s", full, out)
	}
}

func TestDivisionVectorization(t *testing.T) {
	spec := "(List (/ (Get a 0) (Get b 0)) (/ (Get a 1) (Get b 1)) (/ (Get a 2) (Get b 2)) (/ (Get a 3) (Get b 3)))"
	out, _ := saturateAndExtract(t, spec, Default(4))
	ops := countOps(out)
	if ops[expr.OpVecDiv] != 1 || ops[expr.OpDiv] != 0 {
		t.Fatalf("div not vectorized: %s", out)
	}
	// Ragged division: pad lane uses 0/1, never 0/0.
	spec3 := "(List (/ (Get a 0) (Get b 0)) (/ (Get a 1) (Get b 1)) (/ (Get a 2) (Get b 2)))"
	out3, _ := saturateAndExtract(t, spec3, Default(4))
	r := rand.New(rand.NewSource(6))
	env := randEnv(r, map[string]int{"a": 3, "b": 3})
	for i, v := range env.Arrays["b"] {
		if v == 0 {
			env.Arrays["b"][i] = 1
		}
	}
	got := evalPrefix(t, out3, env, out3.OutputLen())
	for _, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("division padding produced non-finite lane: %v from %s", got, out3)
		}
	}
}

func TestDisableVectorAblation(t *testing.T) {
	// §5.6: with vector rules disabled the extracted program has no vector
	// arithmetic but is still simplified scalar code.
	spec := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
	cfg := Default(4)
	cfg.DisableVector = true
	out, rep := saturateAndExtract(t, spec, cfg)
	if !rep.Saturated() {
		t.Fatalf("scalar run did not saturate: %+v", rep)
	}
	ops := countOps(out)
	if ops[expr.OpVecAdd] != 0 || ops[expr.OpVec] != 0 {
		t.Fatalf("vector ops present despite DisableVector: %s", out)
	}
	if ops[expr.OpAdd] != 4 {
		t.Fatalf("expected 4 scalar adds, got %v", ops)
	}
}

func TestScalarSimplification(t *testing.T) {
	cases := []struct {
		src, wantContains string
	}{
		{"(List (+ (Get a 0) 0))", "(Get a 0)"},
		{"(List (* (Get a 0) 1))", "(Get a 0)"},
		{"(List (* (Get a 0) 0))", "0"},
		{"(List (- (Get a 0) (Get a 0)))", "0"},
		{"(List (neg (neg (Get a 0))))", "(Get a 0)"},
		{"(List (+ 2 3))", "5"},
		{"(List (sqrt 9))", "3"},
	}
	cfg := Default(4)
	cfg.DisableVector = true
	for _, c := range cases {
		out, _ := saturateAndExtract(t, c.src, cfg)
		if !strings.Contains(out.String(), c.wantContains) {
			t.Errorf("simplify %s: got %s, want to contain %s", c.src, out, c.wantContains)
		}
	}
}

func TestConstFoldSkipsUnsound(t *testing.T) {
	cfg := Default(4)
	cfg.DisableVector = true
	// 1/0 and sqrt(-1) must not fold.
	for _, src := range []string{"(List (/ 1 0))", "(List (sqrt (neg 1)))"} {
		out, _ := saturateAndExtract(t, src, cfg)
		if out.Op == expr.OpLit {
			t.Errorf("unsound fold of %s to %s", src, out)
		}
	}
}

// Property-style soundness: for random sum-of-products specs, the extracted
// program always evaluates to the same outputs as the spec.
func TestRandomSpecSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(7) // outputs
		elems := make([]*expr.Expr, n)
		for i := range elems {
			depth := r.Intn(4)
			e := expr.Mul(expr.Get("a", r.Intn(8)), expr.Get("b", r.Intn(8)))
			for d := 0; d < depth; d++ {
				e = expr.Add(e, expr.Mul(expr.Get("a", r.Intn(8)), expr.Get("b", r.Intn(8))))
			}
			elems[i] = e
		}
		spec := expr.List(elems...)
		g := egraph.New()
		root := g.AddExpr(spec)
		cfg := Default(4)
		egraph.Run(g, cfg.Rules(), egraph.Limits{MaxIterations: 20, MaxNodes: 50000})
		ex := extract.New(g, cost.Diospyros{Width: cfg.Width})
		out, err := ex.Expr(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		env := randEnv(r, map[string]int{"a": 8, "b": 8})
		want := evalPrefix(t, spec, env, n)
		got := evalPrefix(t, out, env, n)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("trial %d lane %d: got %g want %g\nspec: %s\nout:  %s",
					trial, i, got[i], want[i], spec, out)
			}
		}
	}
}

func TestEnableACFindsCommutedMatch(t *testing.T) {
	// With AC on, (+ a b) and (+ b a) share a class.
	g := egraph.New()
	l := g.AddExpr(expr.MustParse("(+ x y)"))
	rr := g.AddExpr(expr.MustParse("(+ y x)"))
	cfg := Default(4)
	cfg.EnableAC = true
	egraph.Run(g, cfg.Rules(), egraph.Limits{MaxIterations: 5, MaxNodes: 10000})
	if g.Find(l) != g.Find(rr) {
		t.Fatal("AC rules did not merge commuted additions")
	}
}

func TestExtractedCostReflectsMovement(t *testing.T) {
	// Gathering from one array must extract cheaper than from two arrays.
	single := "(List (+ (Get a 0) (Get a 4)) (+ (Get a 1) (Get a 5)) (+ (Get a 2) (Get a 6)) (+ (Get a 3) (Get a 7)))"
	cross := "(List (+ (Get a 0) (Get b 0)) (+ (Get a 3) (Get c 1)) (+ (Get c 2) (Get b 6)) (+ (Get b 3) (Get a 7)))"
	costOf := func(src string) float64 {
		g := egraph.New()
		root := g.AddExpr(expr.MustParse(src))
		cfg := Default(4)
		egraph.Run(g, cfg.Rules(), egraph.Limits{MaxIterations: 20, MaxNodes: 50000})
		ex := extract.New(g, cost.Diospyros{Width: cfg.Width})
		return ex.Cost(root)
	}
	if cs, cc := costOf(single), costOf(cross); cs >= cc {
		t.Fatalf("single-array cost %g >= cross-array cost %g", cs, cc)
	}
}
