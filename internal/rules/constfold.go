package rules

import (
	"math"

	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// constFoldRule folds scalar arithmetic over literal operands, e.g.
// (+ 2 3) ⇝ 5. It skips foldings whose result is not a finite real
// (division by zero, sqrt of a negative), keeping every rewrite sound.
type constFoldRule struct{}

func (constFoldRule) Name() string { return "const-fold" }

// RootOps declares the head-op filter for the dispatch index: folding only
// fires at classes containing a foldable scalar operator node.
func (constFoldRule) RootOps() []expr.Op {
	return []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv,
		expr.OpNeg, expr.OpSqrt, expr.OpSgn}
}

type foldMatch struct{ value float64 }

// classLit returns a literal in the class, if any.
func classLit(g *egraph.EGraph, id egraph.ClassID) (float64, bool) {
	cls := g.Class(id)
	if cls == nil {
		return 0, false
	}
	for _, n := range cls.Nodes {
		if n.Op == expr.OpLit {
			return n.Lit, true
		}
	}
	return 0, false
}

func (r constFoldRule) Search(g *egraph.EGraph) []egraph.Match {
	return r.SearchClasses(g, g.CanonicalClasses())
}

// SearchClasses restricts the search to the given classes (read-only), so
// the runner can shard constant folding across workers.
func (constFoldRule) SearchClasses(g *egraph.EGraph, classes []*egraph.EClass) []egraph.Match {
	var out []egraph.Match
	for _, cls := range classes {
		// One folding per class is enough: all its nodes are equal, so a
		// class that already holds a literal needs no further folding.
		if _, already := classLit(g, cls.ID); already {
			continue
		}
		for _, n := range cls.Nodes {
			v, ok := foldNode(g, n)
			if !ok {
				continue
			}
			out = append(out, egraph.Match{Class: cls.ID, Data: foldMatch{value: v}})
			break
		}
	}
	return out
}

func foldNode(g *egraph.EGraph, n egraph.ENode) (float64, bool) {
	var vals []float64
	for _, a := range n.Args {
		v, ok := classLit(g, a)
		if !ok {
			return 0, false
		}
		vals = append(vals, v)
	}
	var v float64
	switch n.Op {
	case expr.OpAdd:
		v = vals[0] + vals[1]
	case expr.OpSub:
		v = vals[0] - vals[1]
	case expr.OpMul:
		v = vals[0] * vals[1]
	case expr.OpDiv:
		if vals[1] == 0 {
			return 0, false
		}
		v = vals[0] / vals[1]
	case expr.OpNeg:
		v = -vals[0]
	case expr.OpSqrt:
		if vals[0] < 0 {
			return 0, false
		}
		v = math.Sqrt(vals[0])
	case expr.OpSgn:
		v = expr.Sign(vals[0])
	default:
		return 0, false
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

func (constFoldRule) Apply(g *egraph.EGraph, m egraph.Match) bool {
	fm := m.Data.(foldMatch)
	id := g.AddLit(fm.value)
	_, changed := g.Union(m.Class, id)
	return changed
}
