// Package rules defines Diospyros's rewrite-rule families (paper §3.2–3.3):
//
//   - list chunking: a List output is equivalent to a Concat of
//     machine-width Vecs, padding the tail with zeros;
//   - lane-wise vectorization: a Vec whose lanes are all applications of the
//     same scalar operator (some lanes may be the constant 0) is equivalent
//     to the corresponding vector operation over Vecs of the operands;
//   - fused multiply–accumulate: a custom searcher that matches each lane
//     against (+ a (* b c)), (+ (* b c) a), (* b c), or 0 and combines the
//     per-lane results into a VecMAC — the paper's workaround for the
//     NP-complete AC-matching problem;
//   - scalar simplifications and constant folding;
//   - optional full associativity/commutativity rules (disabled by default,
//     as in the paper's evaluation).
package rules

import (
	"sort"

	"diospyros/internal/egraph"
)

// Config selects and parameterizes the rule set.
type Config struct {
	// Width is the machine vector width (lanes per Vec). The Fusion G3
	// target of the paper has Width 4. Ignored when Widths is set.
	Width int

	// Widths, when non-empty, requests multi-width saturation: one chunk
	// rule per width populates the e-graph with Vec decompositions of
	// every listed width simultaneously, and the lane-wise/MAC searchers
	// match Vec nodes of any listed width. Per-target extraction then
	// picks one width via the cost model (cost.Diospyros.Width). The list
	// is deduplicated and sorted, so the rule set — and therefore the
	// e-graph — is identical regardless of request order.
	Widths []int

	// EnableAC turns on full associativity/commutativity rules for + and *.
	// As §3.3 discusses, these blow up the e-graph; they are off by default
	// and partially recovered by the custom searchers.
	EnableAC bool

	// DisableVector removes every vector-introducing rule, leaving scalar
	// simplification and CSE only (the §5.6 ablation).
	DisableVector bool

	// MaxLaneAlts caps how many alternative decompositions are considered
	// per lane in the custom searchers. 0 means the default (2).
	MaxLaneAlts int

	// MaxCombos caps how many lane-combination candidates one Vec node can
	// produce per rule per iteration. 0 means the default (4).
	MaxCombos int
}

// Default returns the configuration used throughout the evaluation.
func Default(width int) Config { return Config{Width: width} }

// widths returns the effective, sorted, deduplicated width list.
func (c Config) widths() []int {
	if len(c.Widths) == 0 {
		if c.Width <= 0 {
			return nil
		}
		return []int{c.Width}
	}
	seen := map[int]bool{}
	var out []int
	for _, w := range c.Widths {
		if w > 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

func (c Config) laneAlts() int {
	if c.MaxLaneAlts <= 0 {
		return 2
	}
	return c.MaxLaneAlts
}

func (c Config) combos() int {
	if c.MaxCombos <= 0 {
		return 4
	}
	return c.MaxCombos
}

// Rules builds the rewrite list for the configuration.
func (c Config) Rules() []egraph.Rewrite {
	widths := c.widths()
	if len(widths) == 0 {
		panic("rules: Width must be positive")
	}
	out := scalarRules()
	out = append(out, constFoldRule{})
	if c.EnableAC {
		out = append(out, acRules()...)
	}
	if !c.DisableVector {
		for _, w := range widths {
			out = append(out, chunkRule{width: w})
		}
		out = append(out,
			newVectorizeRule(c),
			newMACRule(c),
		)
	}
	return out
}

// scalarRules are sound syntactic identities over the reals (§3.4 notes the
// rules are correct over ℝ, not IEEE floats, like other kernel compilers).
func scalarRules() []egraph.Rewrite {
	mk := egraph.MustRewrite
	return []egraph.Rewrite{
		mk("add-0-r", "(+ ?a 0)", "?a"),
		mk("add-0-l", "(+ 0 ?a)", "?a"),
		mk("sub-0-r", "(- ?a 0)", "?a"),
		mk("sub-self", "(- ?a ?a)", "0"),
		mk("sub-0-l", "(- 0 ?a)", "(neg ?a)"),
		mk("mul-1-r", "(* ?a 1)", "?a"),
		mk("mul-1-l", "(* 1 ?a)", "?a"),
		mk("mul-0-r", "(* ?a 0)", "0"),
		mk("mul-0-l", "(* 0 ?a)", "0"),
		mk("div-1", "(/ ?a 1)", "?a"),
		mk("neg-neg", "(neg (neg ?a))", "?a"),
		mk("neg-mul", "(* (neg ?a) ?b)", "(neg (* ?a ?b))"),
		mk("mul-neg", "(neg (* ?a ?b))", "(* (neg ?a) ?b)"),
	}
}

// acRules are the optional full associativity/commutativity rules (§3.3).
func acRules() []egraph.Rewrite {
	mk := egraph.MustRewrite
	return []egraph.Rewrite{
		mk("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
		mk("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
		mk("assoc-add-r", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
		mk("assoc-add-l", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
		mk("assoc-mul-r", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
		mk("assoc-mul-l", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
	}
}
