package rules

import (
	"reflect"
	"testing"

	"diospyros/internal/egraph"
	"diospyros/internal/kernel"
	"diospyros/internal/kernels"
)

// suiteSpecs returns the lifted programs of the paper's 21-kernel suite
// (the same sizes internal/bench.Suite() enumerates — duplicated here
// because importing bench would cycle through the root package).
func suiteSpecs() []*kernel.Lifted {
	var out []*kernel.Lifted
	for _, sz := range [][4]int{
		{3, 3, 2, 2}, {3, 3, 3, 3}, {3, 5, 3, 3}, {4, 4, 3, 3},
		{8, 8, 3, 3}, {10, 10, 2, 2}, {10, 10, 3, 3}, {10, 10, 4, 4},
		{16, 16, 2, 2}, {16, 16, 3, 3}, {16, 16, 4, 4},
	} {
		out = append(out, kernels.Conv2D(sz[0], sz[1], sz[2], sz[3]))
	}
	for _, sz := range [][3]int{
		{2, 2, 2}, {2, 3, 3}, {3, 3, 3}, {4, 4, 4},
		{8, 8, 8}, {10, 10, 10}, {16, 16, 16},
	} {
		out = append(out, kernels.MatMul(sz[0], sz[1], sz[2]))
	}
	out = append(out, kernels.QProd(), kernels.QRDecomp(3), kernels.QRDecomp(4))
	return out
}

// TestDispatchIndexCompleteness pins the head-op index's soundness across
// the 21-kernel suite: for every rule, searching only the rule's indexed
// candidate classes must return exactly the match list a full scan over
// all canonical classes returns — element for element, in order. This is
// the property that makes indexed dispatch (DESIGN.md §14) a pure
// optimization: a class the index prunes is one where the rule cannot
// match, so the apply phase sees identical input.
func TestDispatchIndexCompleteness(t *testing.T) {
	specs := suiteSpecs()
	if len(specs) != 21 {
		t.Fatalf("suite has %d kernels, want 21", len(specs))
	}
	if testing.Short() {
		specs = specs[:4]
	}
	cfg := Default(4)
	for _, lf := range specs {
		rules := cfg.Rules()
		g := egraph.New()
		g.AddExpr(lf.Spec)
		// A short, node-capped run grows a representative mid-search graph;
		// completeness must hold at any point, so one snapshot per kernel
		// is enough.
		egraph.Run(g, rules, egraph.Limits{MaxIterations: 3, MaxNodes: 20000})
		g.CompressPaths()
		classes := g.CanonicalClasses()
		ix := egraph.HeadIndex(classes)
		for _, r := range rules {
			sr, ok := r.(egraph.ShardedRewrite)
			if !ok {
				// Non-shardable rules always run their own whole-graph
				// Search; the index never restricts them.
				continue
			}
			full := sr.SearchClasses(g, classes)
			indexed := sr.SearchClasses(g, ix.Candidates(r))
			if len(full) != len(indexed) {
				t.Errorf("%s: rule %s: %d matches full scan, %d indexed",
					lf.Name, r.Name(), len(full), len(indexed))
				continue
			}
			for i := range full {
				if !reflect.DeepEqual(full[i], indexed[i]) {
					t.Errorf("%s: rule %s: match %d differs:\nfull    %+v\nindexed %+v",
						lf.Name, r.Name(), i, full[i], indexed[i])
					break
				}
			}
		}
	}
}

// TestHeadIndexCandidateOrder checks the multi-root merge path: a rule
// declaring several head operators gets a candidate list in canonical ID
// order with no duplicates, even when one class holds nodes under several
// of its heads.
func TestHeadIndexCandidateOrder(t *testing.T) {
	g := egraph.New()
	lf := kernels.MatMul(3, 3, 3)
	g.AddExpr(lf.Spec)
	rules := Default(4).Rules()
	egraph.Run(g, rules, egraph.Limits{MaxIterations: 2, MaxNodes: 10000})
	g.CompressPaths()
	ix := egraph.HeadIndex(g.CanonicalClasses())
	for _, r := range rules {
		hi, ok := r.(egraph.HeadIndexed)
		if !ok || len(hi.RootOps()) < 2 {
			continue
		}
		cand := ix.Candidates(r)
		for i := 1; i < len(cand); i++ {
			if cand[i].ID <= cand[i-1].ID {
				t.Fatalf("rule %s: candidates out of order or duplicated at %d: %d then %d",
					r.Name(), i, cand[i-1].ID, cand[i].ID)
			}
		}
		return // found and checked a multi-root rule
	}
	t.Fatal("no multi-root rule in the default set (const-fold should be)")
}
