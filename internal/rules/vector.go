package rules

import (
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
)

// operand is one argument of a per-lane decomposition: either an existing
// e-class or a literal to be created at apply time (searchers never mutate
// the graph).
type operand struct {
	class egraph.ClassID
	lit   float64
	isLit bool
}

func litOperand(v float64) operand { return operand{lit: v, isLit: true} }

func (o operand) resolve(g *egraph.EGraph) egraph.ClassID {
	if o.isLit {
		return g.AddLit(o.lit)
	}
	return o.class
}

// vecMatch is the applier payload for lane-wise vectorization: the vector
// operator to introduce and, for each lane, the operand tuple it
// decomposes into.
type vecMatch struct {
	op    expr.Op      // vector operator (VecAdd, VecMul, ..., VecFunc)
	sym   egraph.SymID // interned function name for VecFunc
	lanes [][]operand
}

// classHasLit reports whether the class contains the literal v.
func classHasLit(g *egraph.EGraph, id egraph.ClassID, v float64) bool {
	cls := g.Class(id)
	if cls == nil {
		return false
	}
	for _, n := range cls.Nodes {
		if n.Op == expr.OpLit && n.Lit == v {
			return true
		}
	}
	return false
}

// vectorizeRule is the custom searcher/applier for lane-wise vectorization
// of scalar operators, tolerant of zero lanes (§3.3 "custom matching for
// vectorization"). For each Vec node it tries every scalar operator family:
// if each lane either applies that operator or is a constant zero that the
// operator can produce, it emits the vectorized equivalent, e.g.
//
//	(Vec (+ a b) 0 (+ c d) 0) ⇝ (VecAdd (Vec a 0 c 0) (Vec b 0 d 0))
type vectorizeRule struct {
	cfg Config
	ws  widthSet
}

func newVectorizeRule(cfg Config) egraph.Rewrite {
	return vectorizeRule{cfg: cfg, ws: newWidthSet(cfg)}
}

// widthSet is the set of configured machine widths, precomputed once so the
// per-node match filter allocates nothing.
type widthSet map[int]bool

func newWidthSet(cfg Config) widthSet {
	ws := widthSet{}
	for _, w := range cfg.widths() {
		ws[w] = true
	}
	return ws
}

func (vectorizeRule) Name() string { return "vec-lanewise" }

// RootOps declares the head-op filter for the dispatch index
// (egraph.HeadIndexed): lane-wise vectorization only matches at classes
// containing a Vec node.
func (vectorizeRule) RootOps() []expr.Op { return []expr.Op{expr.OpVec} }

// laneOps are the scalar operator families handled by vectorizeRule.
// zeroOps gives the operand tuple that makes the operator yield 0 for
// padding lanes, or nil when the operator cannot produce 0.
var laneOps = []struct {
	scalar, vector expr.Op
	arity          int
	zero           []operand
}{
	{expr.OpAdd, expr.OpVecAdd, 2, []operand{litOperand(0), litOperand(0)}},
	{expr.OpSub, expr.OpVecMinus, 2, []operand{litOperand(0), litOperand(0)}},
	{expr.OpMul, expr.OpVecMul, 2, []operand{litOperand(0), litOperand(0)}},
	{expr.OpDiv, expr.OpVecDiv, 2, []operand{litOperand(0), litOperand(1)}},
	{expr.OpNeg, expr.OpVecNeg, 1, []operand{litOperand(0)}},
	{expr.OpSqrt, expr.OpVecSqrt, 1, []operand{litOperand(0)}},
	// sgn never yields 0 (sgn(0)=1), so no zero-lane padding for it.
	{expr.OpSgn, expr.OpVecSgn, 1, nil},
}

func (r vectorizeRule) Search(g *egraph.EGraph) []egraph.Match {
	return r.SearchClasses(g, g.CanonicalClasses())
}

// SearchClasses restricts the search to the given classes (read-only), so
// the runner can shard lane-wise matching across workers.
func (r vectorizeRule) SearchClasses(g *egraph.EGraph, classes []*egraph.EClass) []egraph.Match {
	var out []egraph.Match
	maxAlts, maxCombos := r.cfg.laneAlts(), r.cfg.combos()
	for _, cls := range classes {
		for _, vecNode := range cls.Nodes {
			if vecNode.Op != expr.OpVec || !r.ws[len(vecNode.Args)] {
				continue
			}
			for _, fam := range laneOps {
				alts, anyReal := laneDecompositions(g, vecNode.Args, fam.scalar, fam.zero, maxAlts)
				if alts == nil || !anyReal {
					continue
				}
				for _, combo := range enumerate(alts, maxCombos) {
					out = append(out, egraph.Match{
						Class: cls.ID,
						Data:  vecMatch{op: fam.vector, lanes: combo},
					})
				}
			}
			out = append(out, r.searchFunc(g, cls.ID, vecNode, maxAlts, maxCombos)...)
		}
	}
	return out
}

// searchFunc vectorizes lanes that all call the same uninterpreted function
// with the same arity: (Vec (func f a) (func f b) ...) ⇝ (VecFunc f (Vec a b ...)).
// This is the extension hook §6 describes (e.g. a target recip instruction).
func (vectorizeRule) searchFunc(g *egraph.EGraph, class egraph.ClassID, vecNode egraph.ENode, maxAlts, maxCombos int) []egraph.Match {
	// Collect candidate (name, arity) pairs from the first lane.
	first := g.Class(vecNode.Args[0])
	if first == nil {
		return nil
	}
	var out []egraph.Match
	tried := map[egraph.SymID]bool{}
	for _, n := range first.Nodes {
		if n.Op != expr.OpFunc || tried[n.Sym] {
			continue
		}
		tried[n.Sym] = true
		arity := len(n.Args)
		alts := make([][][]operand, 0, len(vecNode.Args))
		ok := true
		for _, lane := range vecNode.Args {
			var laneAlts [][]operand
			for _, ln := range g.Class(lane).Nodes {
				if ln.Op == expr.OpFunc && ln.Sym == n.Sym && len(ln.Args) == arity {
					ops := make([]operand, arity)
					for i, a := range ln.Args {
						ops[i] = operand{class: a}
					}
					laneAlts = append(laneAlts, ops)
					if len(laneAlts) >= maxAlts {
						break
					}
				}
			}
			if len(laneAlts) == 0 {
				ok = false
				break
			}
			alts = append(alts, laneAlts)
		}
		if !ok {
			continue
		}
		for _, combo := range enumerate(alts, maxCombos) {
			out = append(out, egraph.Match{
				Class: class,
				Data:  vecMatch{op: expr.OpVecFunc, sym: n.Sym, lanes: combo},
			})
		}
	}
	return out
}

// laneDecompositions finds, for every lane class, up to maxAlts operand
// tuples under the scalar operator op (or the zero tuple for literal-zero
// lanes). It returns nil if some lane has no decomposition. anyReal reports
// whether at least one lane decomposed through an actual operator node.
func laneDecompositions(g *egraph.EGraph, lanes []egraph.ClassID, op expr.Op, zero []operand, maxAlts int) (alts [][][]operand, anyReal bool) {
	alts = make([][][]operand, 0, len(lanes))
	for _, lane := range lanes {
		var laneAlts [][]operand
		cls := g.Class(lane)
		if cls == nil {
			return nil, false
		}
		for _, n := range cls.Nodes {
			if n.Op != op {
				continue
			}
			ops := make([]operand, len(n.Args))
			for i, a := range n.Args {
				ops[i] = operand{class: a}
			}
			laneAlts = append(laneAlts, ops)
			anyReal = true
			if len(laneAlts) >= maxAlts {
				break
			}
		}
		if len(laneAlts) == 0 && zero != nil && classHasLit(g, lane, 0) {
			laneAlts = append(laneAlts, zero)
		}
		if len(laneAlts) == 0 {
			return nil, false
		}
		alts = append(alts, laneAlts)
	}
	return alts, anyReal
}

// enumerate takes per-lane alternative lists and yields up to maxCombos
// full combinations (odometer order, so the first combination uses each
// lane's first alternative).
func enumerate(alts [][][]operand, maxCombos int) [][][]operand {
	idx := make([]int, len(alts))
	var out [][][]operand
	for {
		combo := make([][]operand, len(alts))
		for i, k := range idx {
			combo[i] = alts[i][k]
		}
		out = append(out, combo)
		if len(out) >= maxCombos {
			return out
		}
		// Advance odometer.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(alts[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

func (r vectorizeRule) Apply(g *egraph.EGraph, m egraph.Match) bool {
	vm := m.Data.(vecMatch)
	arity := len(vm.lanes[0])
	argVecs := make([]egraph.ClassID, arity)
	for j := 0; j < arity; j++ {
		laneIDs := make([]egraph.ClassID, len(vm.lanes))
		for i := range vm.lanes {
			laneIDs[i] = vm.lanes[i][j].resolve(g)
		}
		argVecs[j] = g.Add(egraph.ENode{Op: expr.OpVec, Args: laneIDs})
	}
	node := egraph.ENode{Op: vm.op, Sym: vm.sym, Args: argVecs}
	id := g.Add(node)
	_, changed := g.Union(m.Class, id)
	return changed
}

// macRule is the custom VecMAC searcher (§3.3 "associativity &
// commutativity"): each lane independently matches one of
//
//	(+ a (* b c))   (+ (* b c) a)   (* b c)   0
//
// and the applier collects the per-lane (a, b, c) triples into
// (VecMAC (Vec a...) (Vec b...) (Vec c...)), mapping missing values to 0.
// These equivalences are recomputed every iteration rather than persisted
// in the e-graph, trading compute for memory exactly as the paper does.
type macRule struct {
	cfg Config
	ws  widthSet
}

func newMACRule(cfg Config) egraph.Rewrite {
	return macRule{cfg: cfg, ws: newWidthSet(cfg)}
}

func (macRule) Name() string { return "vec-mac" }

// RootOps declares the head-op filter for the dispatch index: MAC fusion
// only matches at classes containing a Vec node.
func (macRule) RootOps() []expr.Op { return []expr.Op{expr.OpVec} }

func (r macRule) Search(g *egraph.EGraph) []egraph.Match {
	return r.SearchClasses(g, g.CanonicalClasses())
}

// SearchClasses restricts the search to the given classes (read-only), so
// the runner can shard MAC matching across workers.
func (r macRule) SearchClasses(g *egraph.EGraph, classes []*egraph.EClass) []egraph.Match {
	var out []egraph.Match
	maxAlts, maxCombos := r.cfg.laneAlts(), r.cfg.combos()
	for _, cls := range classes {
		for _, vecNode := range cls.Nodes {
			if vecNode.Op != expr.OpVec || !r.ws[len(vecNode.Args)] {
				continue
			}
			alts, anySum := macLanes(g, vecNode.Args, maxAlts)
			if alts == nil || !anySum {
				continue
			}
			for _, combo := range enumerate(alts, maxCombos) {
				out = append(out, egraph.Match{
					Class: cls.ID,
					Data:  vecMatch{op: expr.OpVecMAC, lanes: combo},
				})
			}
		}
	}
	return out
}

// macLanes computes per-lane (acc, b, c) triples. anySum reports whether at
// least one lane matched a genuine (+ _ (* _ _)) form — if none did, the
// plain VecMul rule is the right tool and MAC would only add noise.
func macLanes(g *egraph.EGraph, lanes []egraph.ClassID, maxAlts int) (alts [][][]operand, anySum bool) {
	zero := litOperand(0)
	alts = make([][][]operand, 0, len(lanes))
	for _, lane := range lanes {
		var laneAlts [][]operand
		cls := g.Class(lane)
		if cls == nil {
			return nil, false
		}
		addAlt := func(a []operand) bool {
			laneAlts = append(laneAlts, a)
			return len(laneAlts) >= maxAlts
		}
	scan:
		for _, n := range cls.Nodes {
			switch n.Op {
			case expr.OpAdd:
				// (+ acc (* b c)) and (+ (* b c) acc).
				for side := 0; side < 2; side++ {
					prod, acc := n.Args[1-side], n.Args[side]
					for _, pn := range g.Class(prod).Nodes {
						if pn.Op == expr.OpMul {
							anySum = true
							if addAlt([]operand{{class: acc}, {class: pn.Args[0]}, {class: pn.Args[1]}}) {
								break scan
							}
						}
					}
				}
			case expr.OpMul:
				// Bare product: acc = 0.
				if addAlt([]operand{zero, {class: n.Args[0]}, {class: n.Args[1]}}) {
					break scan
				}
			}
		}
		if len(laneAlts) == 0 && classHasLit(g, lane, 0) {
			laneAlts = append(laneAlts, []operand{zero, zero, zero})
		}
		if len(laneAlts) == 0 {
			return nil, false
		}
		alts = append(alts, laneAlts)
	}
	return alts, anySum
}

func (r macRule) Apply(g *egraph.EGraph, m egraph.Match) bool {
	return vectorizeRule{cfg: r.cfg}.Apply(g, m)
}
